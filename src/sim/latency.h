// Network latency models for the discrete-event simulator.
#ifndef SRC_SIM_LATENCY_H_
#define SRC_SIM_LATENCY_H_

#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/types.h"

namespace sim {

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  // One-way propagation delay from -> to, excluding transmission (size) cost.
  virtual common::Duration Propagation(common::ProcessId from, common::ProcessId to,
                                       common::Rng& rng) const = 0;

  // One-way delay without jitter; used to rank peers by proximity.
  virtual common::Duration BasePropagation(common::ProcessId from,
                                           common::ProcessId to) const = 0;
};

// Uniform delay with optional +/- jitter; handy for unit tests.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(common::Duration one_way, common::Duration jitter)
      : one_way_(one_way), jitter_(jitter) {}

  common::Duration Propagation(common::ProcessId from, common::ProcessId to,
                               common::Rng& rng) const override {
    if (from == to) {
      return 0;
    }
    common::Duration d = one_way_;
    if (jitter_ > 0) {
      d += rng.Range(0, jitter_);
    }
    return d;
  }

  common::Duration BasePropagation(common::ProcessId from,
                                   common::ProcessId to) const override {
    return from == to ? 0 : one_way_;
  }

 private:
  common::Duration one_way_;
  common::Duration jitter_;
};

// Full pairwise one-way latency matrix (values in microseconds), with multiplicative
// log-normal-ish jitter drawn per message.
class MatrixLatency final : public LatencyModel {
 public:
  // matrix[from][to] = one-way base delay. jitter_frac: each message is delayed by an
  // extra Exponential(base * jitter_frac) term, matching the long-ish WAN tail.
  MatrixLatency(std::vector<std::vector<common::Duration>> matrix, double jitter_frac);

  common::Duration Propagation(common::ProcessId from, common::ProcessId to,
                               common::Rng& rng) const override;
  common::Duration BasePropagation(common::ProcessId from,
                                   common::ProcessId to) const override;

  size_t size() const { return matrix_.size(); }

 private:
  std::vector<std::vector<common::Duration>> matrix_;
  double jitter_frac_;
};

}  // namespace sim

#endif  // SRC_SIM_LATENCY_H_
