// Deterministic discrete-event simulator.
//
// Drives a cluster of sans-I/O engines (src/smr/engine.h) with simulated WAN links:
// per-link propagation delays from a LatencyModel, optional per-process egress
// bandwidth/CPU modeling (to reproduce leader saturation, Figures 6 and 7), FIFO links
// (TCP-like) or reordering links (stress testing), process crashes, and link failures.
//
// Determinism: all events are ordered by (time, insertion sequence) and all randomness
// comes from a single seeded generator, so runs are exactly reproducible.
//
// Hot path: events are a typed variant (Deliver/Timer/ClientOp/Closure) stored by
// value in the priority queue — delivering a message performs no heap allocation
// (the old design heap-allocated a std::function closure per message and timer).
// Link-down and extra-delay state live in flat n*n vectors guarded by any-set flags,
// so the per-send checks are two branch-predictable loads in the common case.
#ifndef SRC_SIM_SIMULATOR_H_
#define SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <variant>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/sim/latency.h"
#include "src/smr/engine.h"

namespace sim {

// Per-send fault decision filled by a FaultHook. The simulator applies it after the
// sender-crash check: `drop` loses the message on the wire (after it consumed egress
// and its propagation draw), `duplicates` posts extra copies at arrival + dup_delay
// outside the FIFO clamp (so duplicates also reorder), and `extra_delay` shifts the
// original delivery.
struct FaultPlan {
  bool drop = false;
  // When dropping, attribute the drop to payload corruption instead of plain loss.
  bool corrupted = false;
  uint32_t duplicates = 0;
  common::Duration dup_delay = 0;
  common::Duration extra_delay = 0;
};

// Deterministic fault-injection seam. The hook sees every inter-process send (it may
// mutate the message in place, e.g. truncate-and-reencode) and every engine timer
// registration. Implementations must be deterministic functions of their own seeded
// state: the simulator calls them in event order and never re-orders calls.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  virtual void OnSend(common::ProcessId from, common::ProcessId to, msg::Message& m,
                      FaultPlan& plan) = 0;
  // Returns the (possibly skewed) delay for an engine timer at process p.
  virtual common::Duration OnTimer(common::ProcessId p, common::Duration delay) {
    return delay;
  }
};

class Simulator {
 public:
  struct Options {
    uint64_t seed = 1;
    // TCP-like in-order delivery per (from, to) link.
    bool fifo_links = true;
    // Per-process egress bandwidth in bytes/second; 0 disables the transmission model.
    double egress_bytes_per_sec = 0;
    // Fixed CPU cost charged per message sent (serialization, syscalls).
    common::Duration per_message_cost = 0;
  };

  using ExecutedFn = std::function<void(common::ProcessId, const common::Dot&,
                                        const smr::Command&)>;
  using CommittedFn = std::function<void(common::ProcessId, const common::Dot&,
                                         const smr::Command&, bool fast_path)>;
  using DroppedFn = std::function<void(common::ProcessId, const common::Dot&,
                                       const smr::Command&)>;

  Simulator(std::unique_ptr<LatencyModel> latency, Options opts);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Registers engines; process ids are assigned 0..n-1 in registration order.
  // Engines are borrowed, not owned. Call Start() once after all registrations.
  void AddEngine(smr::Engine* engine);
  void Start();

  void SetExecutedHandler(ExecutedFn fn) { executed_ = std::move(fn); }
  void SetCommittedHandler(CommittedFn fn) { committed_ = std::move(fn); }
  void SetDroppedHandler(DroppedFn fn) { dropped_ = std::move(fn); }

  common::Time Now() const { return now_; }
  uint32_t n() const { return static_cast<uint32_t>(engines_.size()); }
  common::Rng& rng() { return rng_; }
  const LatencyModel& latency() const { return *latency_; }

  // Schedules fn at absolute time t (>= Now()). Closure events are for harness /
  // test logic; per-message hot-path work uses the typed events below.
  void Post(common::Time t, std::function<void()> fn);
  void PostIn(common::Duration delay, std::function<void()> fn);

  // Schedules a client command submission at process p after `delay` (a typed event:
  // no closure allocation). The submission is silently skipped if p has crashed by
  // delivery time — clients of a dead site resubmit via their migration logic.
  void PostSubmitIn(common::Duration delay, common::ProcessId p, smr::Command cmd);

  // Runs the next event. Returns false when the queue is empty.
  bool Step();
  void RunUntil(common::Time t);
  void RunFor(common::Duration d) { RunUntil(now_ + d); }
  // Runs until no events remain (only safe with finite workloads).
  void RunUntilIdle(uint64_t max_events = 100'000'000);

  // Failure injection.
  void Crash(common::ProcessId p);
  bool IsCrashed(common::ProcessId p) const { return crashed_[p]; }
  // Brings a crashed process back with a fresh engine (the old engine is forgotten,
  // modeling a crash-stop node that lost its volatile state). The new engine is
  // Bound and OnStart()ed immediately; events addressed to the previous incarnation
  // (in-flight messages, stale timers, queued client ops) are dropped at dispatch.
  void Restart(common::ProcessId p, smr::Engine* engine);
  // Incarnation counter for p: bumped by every Restart. Exposed for harness logic.
  uint32_t Incarnation(common::ProcessId p) const { return incarnation_[p]; }
  // Installs a fault hook observing every send and timer registration (nullptr to
  // remove). Borrowed, not owned; must outlive the simulation.
  void SetFaultHook(FaultHook* hook) { fault_hook_ = hook; }
  // Marks the directed link from->to down (messages silently dropped at delivery).
  void SetLinkDown(common::ProcessId from, common::ProcessId to, bool down);
  bool IsLinkDown(common::ProcessId from, common::ProcessId to) const {
    return any_link_down_ && link_down_[LinkIndex(from, to)] != 0;
  }
  // Adds a deterministic extra delay on the directed link (applied at send time);
  // 0 restores the base latency model. Models slow links (§5.1 style degradations).
  void SetLinkDelay(common::ProcessId from, common::ProcessId to,
                    common::Duration extra);

  // Submits cmd at process p right now (convenience for tests).
  void Submit(common::ProcessId p, smr::Command cmd);

  // Per-reason drop attribution; the sum over all reasons equals messages_dropped().
  struct DropStats {
    uint64_t src_crashed = 0;        // sender was crashed at send time
    uint64_t dest_crashed = 0;       // destination crashed before delivery
    uint64_t link_down = 0;          // SetLinkDown partition at delivery time
    uint64_t stale_incarnation = 0;  // destination restarted while in flight
    uint64_t injected = 0;           // FaultHook loss
    uint64_t corrupted = 0;          // FaultHook corruption made the payload undecodable
  };

  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  // Drops attributed to the directed link from->to (all reasons combined).
  uint64_t messages_dropped(common::ProcessId from, common::ProcessId to) const {
    return drops_per_link_.empty() ? 0 : drops_per_link_[LinkIndex(from, to)];
  }
  const DropStats& drop_stats() const { return drop_stats_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t events_run() const { return events_run_; }

 private:
  class SimContext;

  void SendMessage(common::ProcessId from, common::ProcessId to, msg::Message m);
  void SetEngineTimer(common::ProcessId p, common::Duration delay, uint64_t token);

  size_t LinkIndex(common::ProcessId from, common::ProcessId to) const {
    return static_cast<size_t>(from) * n() + to;
  }
  // Sizes the flat link-state vectors (idempotent; links can be configured before or
  // after Start as long as all engines are registered).
  void EnsureLinkState();

  // Typed event payloads: the hot paths (message delivery, engine timers, client
  // submissions) carry their data by value instead of a heap-allocated closure.
  // Each carries the destination's incarnation at post time: events addressed to a
  // process that has since restarted are dropped at dispatch.
  struct DeliverEvent {
    common::ProcessId from;
    common::ProcessId to;
    msg::Message m;
    uint32_t inc;
  };
  struct TimerEvent {
    common::ProcessId p;
    uint64_t token;
    uint32_t inc;
  };
  struct ClientOpEvent {
    common::ProcessId p;
    smr::Command cmd;
    uint32_t inc;
  };
  struct ClosureEvent {
    std::function<void()> fn;
  };
  using Payload = std::variant<DeliverEvent, TimerEvent, ClientOpEvent, ClosureEvent>;

  // The priority queue holds only this small POD; the fat payload sits in a pooled
  // slot. Heap sift operations therefore move 24 bytes instead of a ~250-byte
  // message-carrying variant, and slots are recycled, so the steady state performs
  // no allocation at all.
  struct Event {
    common::Time t;
    uint64_t seq;
    uint32_t slot;

    bool operator>(const Event& other) const {
      if (t != other.t) {
        return t > other.t;
      }
      return seq > other.seq;
    }
  };

  void PostEvent(common::Time t, Payload payload);
  void Dispatch(Payload& payload);

  std::unique_ptr<LatencyModel> latency_;
  Options opts_;
  common::Rng rng_;

  std::vector<smr::Engine*> engines_;
  std::vector<std::unique_ptr<SimContext>> contexts_;
  std::vector<bool> crashed_;
  std::vector<uint32_t> incarnation_;
  FaultHook* fault_hook_ = nullptr;

  // Flat n*n link state; any_* flags skip the loads entirely while no link is
  // degraded (the overwhelmingly common case).
  std::vector<uint8_t> link_down_;
  std::vector<common::Duration> link_extra_delay_;
  bool any_link_down_ = false;
  bool any_link_extra_ = false;

  // Egress transmission model: time at which each process's NIC frees up.
  std::vector<common::Time> egress_free_;
  // FIFO links: earliest admissible next delivery per (from, to).
  std::vector<common::Time> last_arrival_;  // n*n flattened

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  // Payload slot pool: slots_[Event::slot] holds the queued payload; freed slots are
  // recycled. A deque keeps references stable while handlers post new events
  // (growing the pool), so Dispatch runs payloads in place with no extra move.
  std::deque<Payload> slots_;
  std::vector<uint32_t> free_slots_;
  common::Time now_ = 0;
  uint64_t next_seq_ = 0;
  bool started_ = false;

  ExecutedFn executed_;
  CommittedFn committed_;
  DroppedFn dropped_;

  uint64_t messages_delivered_ = 0;
  uint64_t messages_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t events_run_ = 0;
  DropStats drop_stats_;
  std::vector<uint64_t> drops_per_link_;  // n*n flattened, sized in Start()
};

}  // namespace sim

#endif  // SRC_SIM_SIMULATOR_H_
