// The WAN model: 17 Google Cloud Platform regions (the maximum available at the time of
// the paper's measurement study, §5.1) with their physical coordinates.
//
// Substitution note (see DESIGN.md): the paper measured RTTs on GCP itself. We derive
// RTTs from great-circle distances with a fiber-path inflation factor and a base
// processing cost, the standard first-order model for WAN latency; this preserves the
// latency *geometry* (relative distances, closest-quorum structure) that Atlas's
// evaluation depends on.
#ifndef SRC_SIM_REGIONS_H_
#define SRC_SIM_REGIONS_H_

#include <string>
#include <vector>

#include "src/common/types.h"

namespace sim {

enum class Continent : uint8_t { kAsia, kOceania, kEurope, kNorthAmerica, kSouthAmerica };

struct Region {
  const char* name;   // GCP region id
  const char* label;  // short label used in the paper (e.g. "TW", "FI", "SC")
  double lat;
  double lon;
  Continent continent;
};

// All 17 regions. Indexes into this table are stable identifiers.
const std::vector<Region>& AllRegions();

// Region table index by short label ("TW"); aborts if unknown.
size_t RegionIndexByLabel(const std::string& label);

// Great-circle distance in kilometers.
double DistanceKm(const Region& a, const Region& b);

// Modeled round-trip time between two regions (microseconds):
//   RTT = 2 * distance / (0.66 c) * path_inflation(corridor) + base_overhead,
// where the inflation factor depends on the continent pair (real fiber routes between
// some continents detour heavily, e.g. Europe-Asia). Calibrated against published GCP
// inter-region RTTs to within ~10%.
common::Duration ModeledRtt(const Region& a, const Region& b);

// One-way latency matrix (RTT/2) for the given subset of regions (indexes into
// AllRegions()); entry [i][j] is the one-way delay between subset[i] and subset[j].
std::vector<std::vector<common::Duration>> OneWayMatrix(const std::vector<size_t>& subset);

// The paper's deployments:
//  - ScaleOutSites(k) for k in {3,5,7,9,11,13}: the first k sites of the scale-out
//    order used by Figures 5 and 6 (grows coverage continent by continent).
//  - ClientSites(): the 13 client locations (fixed across all scale-out steps).
//  - ThreeSites(): {TW, FI, SC} used by Figure 8.
std::vector<size_t> ScaleOutSites(size_t k);
std::vector<size_t> ClientSites();
std::vector<size_t> ThreeSites();

// All 17 region indexes (Figure 3's ping mesh).
std::vector<size_t> AllSiteIndexes();

}  // namespace sim

#endif  // SRC_SIM_REGIONS_H_
