#include "src/sim/simulator.h"

#include <algorithm>

#include "src/common/check.h"

namespace sim {

class Simulator::SimContext final : public smr::Context {
 public:
  SimContext(Simulator* sim, common::ProcessId id) : sim_(sim), id_(id) {}

  void Send(common::ProcessId to, msg::Message m) override {
    sim_->SendMessage(id_, to, std::move(m));
  }

  common::Time Now() const override { return sim_->now_; }

  void SetTimer(common::Duration delay, uint64_t token) override {
    sim_->SetEngineTimer(id_, delay, token);
  }

  void Committed(const common::Dot& dot, const smr::Command& cmd,
                 bool fast_path) override {
    if (sim_->committed_) {
      sim_->committed_(id_, dot, cmd, fast_path);
    }
  }

  void Executed(const common::Dot& dot, const smr::Command& cmd) override {
    if (sim_->executed_) {
      sim_->executed_(id_, dot, cmd);
    }
  }

  void Dropped(const common::Dot& dot, const smr::Command& original) override {
    if (sim_->dropped_) {
      sim_->dropped_(id_, dot, original);
    }
  }

 private:
  Simulator* sim_;
  common::ProcessId id_;
};

Simulator::Simulator(std::unique_ptr<LatencyModel> latency, Options opts)
    : latency_(std::move(latency)), opts_(opts), rng_(opts.seed) {}

Simulator::~Simulator() = default;

void Simulator::AddEngine(smr::Engine* engine) {
  CHECK(!started_);
  auto id = static_cast<common::ProcessId>(engines_.size());
  engines_.push_back(engine);
  contexts_.push_back(std::make_unique<SimContext>(this, id));
  crashed_.push_back(false);
  incarnation_.push_back(0);
  egress_free_.push_back(0);
}

void Simulator::Start() {
  CHECK(!started_);
  started_ = true;
  uint32_t n = this->n();
  last_arrival_.assign(static_cast<size_t>(n) * n, 0);
  drops_per_link_.assign(static_cast<size_t>(n) * n, 0);
  EnsureLinkState();
  for (uint32_t i = 0; i < n; i++) {
    engines_[i]->Bind(static_cast<common::ProcessId>(i), n, contexts_[i].get());
  }
  for (uint32_t i = 0; i < n; i++) {
    engines_[i]->OnStart();
  }
}

void Simulator::EnsureLinkState() {
  CHECK_GT(n(), 0u);  // links can only be configured once engines are registered
  size_t want = static_cast<size_t>(n()) * n();
  if (link_down_.size() != want) {
    CHECK_EQ(link_down_.size(), 0u);  // links are configured after all AddEngine calls
    link_down_.assign(want, 0);
    link_extra_delay_.assign(want, 0);
  }
}

void Simulator::PostEvent(common::Time t, Payload payload) {
  CHECK_GE(t, now_);
  uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.push_back(std::move(payload));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(payload);
  }
  queue_.push(Event{t, next_seq_++, slot});
}

void Simulator::Post(common::Time t, std::function<void()> fn) {
  PostEvent(t, ClosureEvent{std::move(fn)});
}

void Simulator::PostIn(common::Duration delay, std::function<void()> fn) {
  Post(now_ + delay, std::move(fn));
}

void Simulator::PostSubmitIn(common::Duration delay, common::ProcessId p,
                             smr::Command cmd) {
  PostEvent(now_ + delay, ClientOpEvent{p, std::move(cmd), incarnation_[p]});
}

void Simulator::SendMessage(common::ProcessId from, common::ProcessId to,
                            msg::Message m) {
  CHECK_NE(from, to);  // self-sends are handled inline by the engine base class
  if (crashed_[from]) {
    messages_dropped_++;
    drop_stats_.src_crashed++;
    if (!drops_per_link_.empty()) {
      drops_per_link_[LinkIndex(from, to)]++;
    }
    return;
  }
  FaultPlan plan;
  if (fault_hook_ != nullptr) {
    fault_hook_->OnSend(from, to, m, plan);
  }
  size_t bytes = msg::EncodedSize(m);
  bytes_sent_ += bytes;

  // Egress serialization: the sender's NIC/CPU transmits messages one at a time.
  common::Time tx_start = std::max(now_, egress_free_[from]);
  common::Duration tx_cost = opts_.per_message_cost;
  if (opts_.egress_bytes_per_sec > 0) {
    tx_cost += static_cast<common::Duration>(static_cast<double>(bytes) /
                                             opts_.egress_bytes_per_sec *
                                             static_cast<double>(common::kSecond));
  }
  common::Time tx_done = tx_start + tx_cost;
  egress_free_[from] = tx_done;

  common::Time base = tx_done + latency_->Propagation(from, to, rng_);
  if (any_link_extra_) {
    base += link_extra_delay_[LinkIndex(from, to)];
  }
  if (plan.drop) {
    // The message occupied the NIC and its propagation draw, then was lost on the
    // wire (or arrived undecodable). It never constrains FIFO ordering.
    messages_dropped_++;
    if (plan.corrupted) {
      drop_stats_.corrupted++;
    } else {
      drop_stats_.injected++;
    }
    if (!drops_per_link_.empty()) {
      drops_per_link_[LinkIndex(from, to)]++;
    }
    return;
  }
  common::Time arrival = base + plan.extra_delay;
  if (opts_.fifo_links) {
    size_t link = LinkIndex(from, to);
    arrival = std::max(arrival, last_arrival_[link]);
    last_arrival_[link] = arrival;
  }
  // Duplicates bypass the FIFO clamp and do not advance it: a duplicate landing
  // before (or long after) the original models reordering retransmission paths.
  for (uint32_t i = 0; i < plan.duplicates; i++) {
    PostEvent(std::max(now_, base + plan.dup_delay),
              DeliverEvent{from, to, m, incarnation_[to]});
  }
  PostEvent(arrival, DeliverEvent{from, to, std::move(m), incarnation_[to]});
}

void Simulator::SetEngineTimer(common::ProcessId p, common::Duration delay,
                               uint64_t token) {
  if (fault_hook_ != nullptr) {
    delay = fault_hook_->OnTimer(p, delay);
  }
  PostEvent(now_ + delay, TimerEvent{p, token, incarnation_[p]});
}

void Simulator::Dispatch(Payload& payload) {
  switch (payload.index()) {
    case 0: {  // DeliverEvent
      auto& d = std::get<DeliverEvent>(payload);
      if (crashed_[d.to] || d.inc != incarnation_[d.to] || IsLinkDown(d.from, d.to)) {
        messages_dropped_++;
        if (crashed_[d.to]) {
          drop_stats_.dest_crashed++;
        } else if (d.inc != incarnation_[d.to]) {
          drop_stats_.stale_incarnation++;
        } else {
          drop_stats_.link_down++;
        }
        if (!drops_per_link_.empty()) {
          drops_per_link_[LinkIndex(d.from, d.to)]++;
        }
        return;
      }
      messages_delivered_++;
      engines_[d.to]->OnMessage(d.from, d.m);
      return;
    }
    case 1: {  // TimerEvent
      auto& t = std::get<TimerEvent>(payload);
      if (!crashed_[t.p] && t.inc == incarnation_[t.p]) {
        engines_[t.p]->OnTimer(t.token);
      }
      return;
    }
    case 2: {  // ClientOpEvent
      auto& c = std::get<ClientOpEvent>(payload);
      if (!crashed_[c.p] && c.inc == incarnation_[c.p]) {
        engines_[c.p]->Submit(std::move(c.cmd));
      }
      return;
    }
    default: {  // ClosureEvent
      std::get<ClosureEvent>(payload).fn();
      return;
    }
  }
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  Event ev = queue_.top();  // POD copy
  queue_.pop();
  CHECK_GE(ev.t, now_);
  now_ = ev.t;
  events_run_++;
  // Run the payload in place (deque references stay valid while handlers post new
  // events); the slot is recycled only after the handler returns.
  Dispatch(slots_[ev.slot]);
  free_slots_.push_back(ev.slot);
  return true;
}

void Simulator::RunUntil(common::Time t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    Step();
  }
  now_ = std::max(now_, t);
}

void Simulator::RunUntilIdle(uint64_t max_events) {
  uint64_t steps = 0;
  while (Step()) {
    CHECK_LT(++steps, max_events);
  }
}

void Simulator::Crash(common::ProcessId p) {
  CHECK_LT(p, crashed_.size());
  crashed_[p] = true;
}

void Simulator::Restart(common::ProcessId p, smr::Engine* engine) {
  CHECK(started_);
  CHECK_LT(p, crashed_.size());
  CHECK(crashed_[p]);  // only crashed processes restart
  crashed_[p] = false;
  incarnation_[p]++;
  engines_[p] = engine;
  egress_free_[p] = now_;
  // Fresh TCP connections in both directions: the FIFO clamp restarts from now so
  // the new incarnation's traffic is not held behind pre-crash arrivals.
  for (uint32_t q = 0; q < n(); q++) {
    if (q != p) {
      last_arrival_[LinkIndex(p, q)] = now_;
      last_arrival_[LinkIndex(q, p)] = now_;
    }
  }
  engine->Bind(p, n(), contexts_[p].get());
  engine->OnStart();
}

void Simulator::SetLinkDown(common::ProcessId from, common::ProcessId to, bool down) {
  EnsureLinkState();
  link_down_[LinkIndex(from, to)] = down ? 1 : 0;
  if (down) {
    any_link_down_ = true;
  } else {
    any_link_down_ =
        std::find(link_down_.begin(), link_down_.end(), 1) != link_down_.end();
  }
}

void Simulator::SetLinkDelay(common::ProcessId from, common::ProcessId to,
                             common::Duration extra) {
  EnsureLinkState();
  link_extra_delay_[LinkIndex(from, to)] = extra;
  if (extra != 0) {
    any_link_extra_ = true;
  } else {
    any_link_extra_ = std::find_if(link_extra_delay_.begin(), link_extra_delay_.end(),
                                   [](common::Duration d) { return d != 0; }) !=
                      link_extra_delay_.end();
  }
}

void Simulator::Submit(common::ProcessId p, smr::Command cmd) {
  CHECK(started_);
  CHECK(!crashed_[p]);
  engines_[p]->Submit(std::move(cmd));
}

}  // namespace sim
