#include "src/sim/simulator.h"

#include <algorithm>

#include "src/common/check.h"

namespace sim {

class Simulator::SimContext final : public smr::Context {
 public:
  SimContext(Simulator* sim, common::ProcessId id) : sim_(sim), id_(id) {}

  void Send(common::ProcessId to, msg::Message m) override {
    sim_->SendMessage(id_, to, std::move(m));
  }

  common::Time Now() const override { return sim_->now_; }

  void SetTimer(common::Duration delay, uint64_t token) override {
    sim_->SetEngineTimer(id_, delay, token);
  }

  void Committed(const common::Dot& dot, const smr::Command& cmd,
                 bool fast_path) override {
    if (sim_->committed_) {
      sim_->committed_(id_, dot, cmd, fast_path);
    }
  }

  void Executed(const common::Dot& dot, const smr::Command& cmd) override {
    if (sim_->executed_) {
      sim_->executed_(id_, dot, cmd);
    }
  }

  void Dropped(const common::Dot& dot, const smr::Command& original) override {
    if (sim_->dropped_) {
      sim_->dropped_(id_, dot, original);
    }
  }

 private:
  Simulator* sim_;
  common::ProcessId id_;
};

Simulator::Simulator(std::unique_ptr<LatencyModel> latency, Options opts)
    : latency_(std::move(latency)), opts_(opts), rng_(opts.seed) {}

Simulator::~Simulator() = default;

void Simulator::AddEngine(smr::Engine* engine) {
  CHECK(!started_);
  auto id = static_cast<common::ProcessId>(engines_.size());
  engines_.push_back(engine);
  contexts_.push_back(std::make_unique<SimContext>(this, id));
  crashed_.push_back(false);
  egress_free_.push_back(0);
}

void Simulator::Start() {
  CHECK(!started_);
  started_ = true;
  uint32_t n = this->n();
  last_arrival_.assign(static_cast<size_t>(n) * n, 0);
  for (uint32_t i = 0; i < n; i++) {
    engines_[i]->Bind(static_cast<common::ProcessId>(i), n, contexts_[i].get());
  }
  for (uint32_t i = 0; i < n; i++) {
    engines_[i]->OnStart();
  }
}

void Simulator::Post(common::Time t, std::function<void()> fn) {
  CHECK_GE(t, now_);
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::PostIn(common::Duration delay, std::function<void()> fn) {
  Post(now_ + delay, std::move(fn));
}

void Simulator::SendMessage(common::ProcessId from, common::ProcessId to,
                            msg::Message m) {
  CHECK_NE(from, to);  // self-sends are handled inline by the engine base class
  if (crashed_[from]) {
    messages_dropped_++;
    return;
  }
  size_t bytes = msg::EncodedSize(m);
  bytes_sent_ += bytes;

  // Egress serialization: the sender's NIC/CPU transmits messages one at a time.
  common::Time tx_start = std::max(now_, egress_free_[from]);
  common::Duration tx_cost = opts_.per_message_cost;
  if (opts_.egress_bytes_per_sec > 0) {
    tx_cost += static_cast<common::Duration>(static_cast<double>(bytes) /
                                             opts_.egress_bytes_per_sec *
                                             static_cast<double>(common::kSecond));
  }
  common::Time tx_done = tx_start + tx_cost;
  egress_free_[from] = tx_done;

  common::Time arrival = tx_done + latency_->Propagation(from, to, rng_);
  auto extra = link_extra_delay_.find({from, to});
  if (extra != link_extra_delay_.end()) {
    arrival += extra->second;
  }
  if (opts_.fifo_links) {
    size_t link = static_cast<size_t>(from) * n() + to;
    arrival = std::max(arrival, last_arrival_[link]);
    last_arrival_[link] = arrival;
  }

  Post(arrival, [this, from, to, m = std::move(m)]() mutable {
    if (crashed_[to] || IsLinkDown(from, to)) {
      messages_dropped_++;
      return;
    }
    messages_delivered_++;
    engines_[to]->OnMessage(from, m);
  });
}

void Simulator::SetEngineTimer(common::ProcessId p, common::Duration delay,
                               uint64_t token) {
  Post(now_ + delay, [this, p, token]() {
    if (!crashed_[p]) {
      engines_[p]->OnTimer(token);
    }
  });
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue has no non-const top-move; the const_cast is safe because the
  // element is popped immediately after.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  CHECK_GE(ev.t, now_);
  now_ = ev.t;
  events_run_++;
  ev.fn();
  return true;
}

void Simulator::RunUntil(common::Time t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    Step();
  }
  now_ = std::max(now_, t);
}

void Simulator::RunUntilIdle(uint64_t max_events) {
  uint64_t steps = 0;
  while (Step()) {
    CHECK_LT(++steps, max_events);
  }
}

void Simulator::Crash(common::ProcessId p) {
  CHECK_LT(p, crashed_.size());
  crashed_[p] = true;
}

void Simulator::SetLinkDown(common::ProcessId from, common::ProcessId to, bool down) {
  if (down) {
    links_down_.insert({from, to});
  } else {
    links_down_.erase({from, to});
  }
}

bool Simulator::IsLinkDown(common::ProcessId from, common::ProcessId to) const {
  return links_down_.count({from, to}) > 0;
}

void Simulator::SetLinkDelay(common::ProcessId from, common::ProcessId to,
                             common::Duration extra) {
  if (extra == 0) {
    link_extra_delay_.erase({from, to});
  } else {
    link_extra_delay_[{from, to}] = extra;
  }
}

void Simulator::Submit(common::ProcessId p, smr::Command cmd) {
  CHECK(started_);
  CHECK(!crashed_[p]);
  engines_[p]->Submit(std::move(cmd));
}

}  // namespace sim
