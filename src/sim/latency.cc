#include "src/sim/latency.h"

namespace sim {

MatrixLatency::MatrixLatency(std::vector<std::vector<common::Duration>> matrix,
                             double jitter_frac)
    : matrix_(std::move(matrix)), jitter_frac_(jitter_frac) {
  for (const auto& row : matrix_) {
    CHECK_EQ(row.size(), matrix_.size());
  }
}

common::Duration MatrixLatency::Propagation(common::ProcessId from, common::ProcessId to,
                                            common::Rng& rng) const {
  CHECK_LT(from, matrix_.size());
  CHECK_LT(to, matrix_.size());
  common::Duration base = matrix_[from][to];
  if (from == to) {
    return 0;
  }
  common::Duration jitter = 0;
  if (jitter_frac_ > 0) {
    jitter = static_cast<common::Duration>(
        rng.Exponential(static_cast<double>(base) * jitter_frac_));
  }
  return base + jitter;
}

common::Duration MatrixLatency::BasePropagation(common::ProcessId from,
                                                common::ProcessId to) const {
  CHECK_LT(from, matrix_.size());
  CHECK_LT(to, matrix_.size());
  return from == to ? 0 : matrix_[from][to];
}

}  // namespace sim
