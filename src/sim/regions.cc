#include "src/sim/regions.h"

#include <cmath>
#include <utility>

#include "src/common/check.h"

namespace sim {

namespace {

constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusKm = 6371.0;
// Effective signal speed in fiber ~ 2/3 c ~ 200 km/ms.
constexpr double kKmPerMs = 200.0;
// Baseline great-circle inflation; multiplied by the corridor factor below.
constexpr double kPathInflation = 1.25;
// Per-hop processing/serialization overhead added to each RTT.
constexpr double kBaseOverheadMs = 5.0;

// Extra inflation per continent corridor, calibrated against public GCP inter-region
// RTT measurements (see DESIGN.md). Europe-Asia terrestrial routes detour the most;
// transatlantic and transpacific cables are nearly direct.
double CorridorFactor(Continent a, Continent b) {
  if (a > b) {
    std::swap(a, b);
  }
  using C = Continent;
  if (a == C::kAsia && b == C::kAsia) {
    return 1.15;
  }
  if (a == C::kAsia && b == C::kOceania) {
    return 1.15;
  }
  if (a == C::kAsia && b == C::kEurope) {
    return 1.90;
  }
  if (a == C::kAsia && b == C::kNorthAmerica) {
    return 1.00;
  }
  if (a == C::kAsia && b == C::kSouthAmerica) {
    return 1.35;
  }
  if (a == C::kOceania && b == C::kEurope) {
    return 1.40;
  }
  if (a == C::kOceania && b == C::kNorthAmerica) {
    return 1.00;
  }
  if (a == C::kOceania && b == C::kSouthAmerica) {
    return 1.10;
  }
  if (a == C::kEurope && b == C::kEurope) {
    return 1.70;
  }
  if (a == C::kEurope && b == C::kNorthAmerica) {
    return 1.00;
  }
  if (a == C::kEurope && b == C::kSouthAmerica) {
    return 1.30;
  }
  if (a == C::kNorthAmerica && b == C::kNorthAmerica) {
    return 1.30;
  }
  if (a == C::kNorthAmerica && b == C::kSouthAmerica) {
    return 1.40;
  }
  return 1.30;
}

}  // namespace

const std::vector<Region>& AllRegions() {
  using C = Continent;
  static const std::vector<Region> kRegions = {
      {"asia-east1", "TW", 24.05, 120.52, C::kAsia},       // Changhua County, Taiwan
      {"asia-east2", "HK", 22.32, 114.17, C::kAsia},       // Hong Kong
      {"asia-northeast1", "TY", 35.68, 139.69, C::kAsia},  // Tokyo
      {"asia-south1", "BM", 19.08, 72.88, C::kAsia},       // Mumbai
      {"asia-southeast1", "SG", 1.35, 103.82, C::kAsia},   // Singapore
      {"australia-southeast1", "SY", -33.87, 151.21, C::kOceania},  // Sydney
      {"europe-north1", "FI", 60.57, 27.19, C::kEurope},   // Hamina, Finland
      {"europe-west1", "BE", 50.45, 3.82, C::kEurope},     // St. Ghislain, Belgium
      {"europe-west2", "LN", 51.51, -0.13, C::kEurope},    // London
      {"europe-west3", "FR", 50.11, 8.68, C::kEurope},     // Frankfurt
      {"europe-west4", "NL", 53.43, 6.83, C::kEurope},     // Eemshaven, Netherlands
      {"northamerica-northeast1", "QC", 45.50, -73.57, C::kNorthAmerica},  // Montreal
      {"southamerica-east1", "SP", -23.55, -46.63, C::kSouthAmerica},  // Sao Paulo
      {"us-central1", "IA", 41.26, -95.86, C::kNorthAmerica},  // Council Bluffs, Iowa
      {"us-east1", "SC", 33.20, -80.01, C::kNorthAmerica},     // Moncks Corner, SC
      {"us-east4", "VA", 39.04, -77.49, C::kNorthAmerica},     // Ashburn, Virginia
      {"us-west1", "OR", 45.59, -121.18, C::kNorthAmerica},    // The Dalles, Oregon
  };
  return kRegions;
}

size_t RegionIndexByLabel(const std::string& label) {
  const auto& regions = AllRegions();
  for (size_t i = 0; i < regions.size(); i++) {
    if (label == regions[i].label) {
      return i;
    }
  }
  CHECK(false && "unknown region label");
  return 0;
}

double DistanceKm(const Region& a, const Region& b) {
  double lat1 = a.lat * kPi / 180.0;
  double lat2 = b.lat * kPi / 180.0;
  double dlat = (b.lat - a.lat) * kPi / 180.0;
  double dlon = (b.lon - a.lon) * kPi / 180.0;
  double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) * std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

common::Duration ModeledRtt(const Region& a, const Region& b) {
  double rtt_ms = 2.0 * DistanceKm(a, b) / kKmPerMs * kPathInflation *
                      CorridorFactor(a.continent, b.continent) +
                  kBaseOverheadMs;
  return static_cast<common::Duration>(rtt_ms * static_cast<double>(common::kMillisecond));
}

std::vector<std::vector<common::Duration>> OneWayMatrix(
    const std::vector<size_t>& subset) {
  const auto& regions = AllRegions();
  size_t k = subset.size();
  std::vector<std::vector<common::Duration>> m(k, std::vector<common::Duration>(k, 0));
  for (size_t i = 0; i < k; i++) {
    for (size_t j = 0; j < k; j++) {
      if (i == j) {
        continue;
      }
      m[i][j] = ModeledRtt(regions[subset[i]], regions[subset[j]]) / 2;
    }
  }
  return m;
}

std::vector<size_t> ScaleOutSites(size_t k) {
  // Grows coverage so that the optimal leaderless latency improves monotonically with
  // every step (the paper's "bring the service closer to clients" narrative): EU + NA
  // + Asia core first, then densify, then the geographic extremes.
  static const char* kOrder[] = {"BE", "SC", "TW", "FI", "IA", "TY", "SP",
                                 "LN", "QC", "SY", "BM", "FR", "SG"};
  CHECK_LE(k, sizeof(kOrder) / sizeof(kOrder[0]));
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; i++) {
    out.push_back(RegionIndexByLabel(kOrder[i]));
  }
  return out;
}

std::vector<size_t> ClientSites() { return ScaleOutSites(13); }

std::vector<size_t> ThreeSites() {
  return {RegionIndexByLabel("TW"), RegionIndexByLabel("FI"), RegionIndexByLabel("SC")};
}

std::vector<size_t> AllSiteIndexes() {
  std::vector<size_t> out;
  for (size_t i = 0; i < AllRegions().size(); i++) {
    out.push_back(i);
  }
  return out;
}

}  // namespace sim
