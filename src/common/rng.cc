#include "src/common/rng.h"

#include <cmath>

namespace common {

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 1e-18;
  }
  return -mean * std::log(u);
}

double Rng::Pareto(double xm, double alpha) {
  double u = NextDouble();
  if (u <= 0.0) {
    u = 1e-18;
  }
  return xm / std::pow(u, 1.0 / alpha);
}

double Zipf::ZetaStatic(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

Zipf::Zipf(uint64_t n, double theta) : n_(n), theta_(theta) {
  CHECK_GT(n, 0u);
  zetan_ = ZetaStatic(n, theta);
  zeta2theta_ = ZetaStatic(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

uint64_t Zipf::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= n_) {
    v = n_ - 1;
  }
  return v;
}

}  // namespace common
