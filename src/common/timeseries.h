// Fixed-width time-bucketed counter, used for throughput timelines (Figure 8).
#ifndef SRC_COMMON_TIMESERIES_H_
#define SRC_COMMON_TIMESERIES_H_

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace common {

class TimeSeries {
 public:
  // Buckets of `bucket_width` starting at time 0.
  explicit TimeSeries(Duration bucket_width) : width_(bucket_width) {}

  void Record(Time t, uint64_t count = 1) {
    if (t < 0) {
      return;
    }
    size_t idx = static_cast<size_t>(t / width_);
    if (idx >= buckets_.size()) {
      buckets_.resize(idx + 1, 0);
    }
    buckets_[idx] += count;
  }

  // Count in the bucket containing time t (0 if out of range).
  uint64_t At(Time t) const {
    if (t < 0) {
      return 0;
    }
    size_t idx = static_cast<size_t>(t / width_);
    return idx < buckets_.size() ? buckets_[idx] : 0;
  }

  size_t num_buckets() const { return buckets_.size(); }
  Duration bucket_width() const { return width_; }
  const std::vector<uint64_t>& buckets() const { return buckets_; }

  // Ops/second in the bucket containing t.
  double RatePerSecond(Time t) const {
    return static_cast<double>(At(t)) * static_cast<double>(kSecond) /
           static_cast<double>(width_);
  }

 private:
  Duration width_;
  std::vector<uint64_t> buckets_;
};

}  // namespace common

#endif  // SRC_COMMON_TIMESERIES_H_
