#include "src/common/dep_set.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"

namespace common {

DepSet::DepSet(std::initializer_list<Dot> dots) {
  Reserve(dots.size());
  for (const Dot& d : dots) {
    data_[size_++] = d;
  }
  SortUnique();
}

DepSet::DepSet(std::vector<Dot> dots) {
  Reserve(dots.size());
  for (const Dot& d : dots) {
    data_[size_++] = d;
  }
  SortUnique();
}

DepSet::DepSet(const DepSet& other) {
  Reserve(other.size_);
  std::memcpy(data_, other.data_, other.size_ * sizeof(Dot));
  size_ = other.size_;
}

DepSet::DepSet(DepSet&& other) noexcept {
  if (other.IsInline()) {
    std::memcpy(inline_, other.inline_, other.size_ * sizeof(Dot));
    size_ = other.size_;
  } else {
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = other.inline_;
    other.capacity_ = kInlineCapacity;
  }
  other.size_ = 0;
}

DepSet& DepSet::operator=(const DepSet& other) {
  if (this == &other) {
    return *this;
  }
  size_ = 0;
  Reserve(other.size_);
  std::memcpy(data_, other.data_, other.size_ * sizeof(Dot));
  size_ = other.size_;
  return *this;
}

DepSet& DepSet::operator=(DepSet&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  if (other.IsInline()) {
    // Keep our buffer (it may already be big enough); just copy the few dots.
    size_ = 0;
    if (other.size_ > capacity_) {
      Grow(other.size_);
    }
    std::memcpy(data_, other.data_, other.size_ * sizeof(Dot));
    size_ = other.size_;
    other.size_ = 0;
    return *this;
  }
  if (!IsInline()) {
    delete[] data_;
  }
  data_ = other.data_;
  size_ = other.size_;
  capacity_ = other.capacity_;
  other.data_ = other.inline_;
  other.size_ = 0;
  other.capacity_ = kInlineCapacity;
  return *this;
}

DepSet::~DepSet() {
  if (!IsInline()) {
    delete[] data_;
  }
}

void DepSet::Grow(size_t min_capacity) {
  size_t cap = static_cast<size_t>(capacity_) * 2;
  if (cap < min_capacity) {
    cap = min_capacity;
  }
  Dot* fresh = new Dot[cap];
  std::memcpy(fresh, data_, size_ * sizeof(Dot));
  if (!IsInline()) {
    delete[] data_;
  }
  data_ = fresh;
  capacity_ = static_cast<uint32_t>(cap);
}

void DepSet::SortUnique() {
  std::sort(data_, data_ + size_);
  Dot* last = std::unique(data_, data_ + size_);
  size_ = static_cast<uint32_t>(last - data_);
}

void DepSet::Insert(const Dot& d) {
  Dot* it = std::lower_bound(data_, data_ + size_, d);
  if (it != data_ + size_ && *it == d) {
    return;
  }
  size_t pos = static_cast<size_t>(it - data_);
  if (size_ == capacity_) {
    Grow(size_ + 1);
  }
  std::memmove(data_ + pos + 1, data_ + pos, (size_ - pos) * sizeof(Dot));
  data_[pos] = d;
  size_++;
}

bool DepSet::Contains(const Dot& d) const {
  return std::binary_search(data_, data_ + size_, d);
}

void DepSet::Remove(const Dot& d) {
  Dot* it = std::lower_bound(data_, data_ + size_, d);
  if (it != data_ + size_ && *it == d) {
    std::memmove(it, it + 1, (size_ - (it - data_) - 1) * sizeof(Dot));
    size_--;
  }
}

void DepSet::UnionWith(const DepSet& other) {
  if (other.size_ == 0) {
    return;
  }
  if (size_ == 0) {
    *this = other;
    return;
  }
  // Count duplicates so the merged size is known up front.
  size_t dup = 0;
  {
    const Dot* a = data_;
    const Dot* ae = data_ + size_;
    const Dot* b = other.data_;
    const Dot* be = other.data_ + other.size_;
    while (a != ae && b != be) {
      if (*a < *b) {
        ++a;
      } else if (*b < *a) {
        ++b;
      } else {
        ++dup;
        ++a;
        ++b;
      }
    }
  }
  size_t merged = size_ + other.size_ - dup;
  if (merged > capacity_) {
    Grow(merged);
  }
  // Merge backwards in place: writes land at indices >= the unread portion of data_,
  // so nothing is clobbered before it is read.
  size_t i = size_;
  size_t j = other.size_;
  size_t k = merged;
  while (j > 0) {
    if (i > 0 && other.data_[j - 1] < data_[i - 1]) {
      data_[--k] = data_[--i];
    } else if (i > 0 && data_[i - 1] == other.data_[j - 1]) {
      data_[--k] = data_[--i];
      --j;
    } else {
      data_[--k] = other.data_[--j];
    }
  }
  // Remaining data_[0..i) is already in place.
  size_ = static_cast<uint32_t>(merged);
}

bool operator==(const DepSet& a, const DepSet& b) {
  // Element-wise (not memcmp): Dot has internal padding with unspecified content.
  return a.size_ == b.size_ && std::equal(a.data_, a.data_ + a.size_, b.data_);
}

std::string DepSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < size_; i++) {
    if (i > 0) {
      out += ",";
    }
    out += common::ToString(data_[i]);
  }
  out += "}";
  return out;
}

namespace {

// Merge all replies into a sorted (dot, count) list in `scratch.counts` in one pass
// over sorted arrays. Reply sets are tiny, so a simple k-way merge via repeated
// two-way merging into the ping-pong buffer is fine; both buffers are reused across
// calls, so the steady state allocates nothing.
void CountOccurrences(const std::vector<DepSet>& replies, DepScratch& scratch) {
  auto& counts = scratch.counts;
  auto& merged = scratch.merged;
  counts.clear();
  for (const DepSet& r : replies) {
    merged.clear();
    auto ai = counts.begin();
    const Dot* bi = r.begin();
    while (ai != counts.end() && bi != r.end()) {
      if (ai->first < *bi) {
        merged.push_back(*ai++);
      } else if (*bi < ai->first) {
        merged.emplace_back(*bi++, 1);
      } else {
        merged.emplace_back(ai->first, ai->second + 1);
        ++ai;
        ++bi;
      }
    }
    merged.insert(merged.end(), ai, counts.end());
    for (; bi != r.end(); ++bi) {
      merged.emplace_back(*bi, 1);
    }
    counts.swap(merged);
  }
}

// Returns the reporter count recorded for proc, or 0.
uint32_t ProcCount(const std::vector<std::pair<ProcessId, uint32_t>>& proc_counts,
                   ProcessId proc) {
  for (const auto& [p, c] : proc_counts) {
    if (p == proc) {
      return c;
    }
  }
  return 0;
}

}  // namespace

void UnionInto(const std::vector<DepSet>& replies, DepSet& out) {
  out.clear();
  for (const DepSet& r : replies) {
    out.UnionWith(r);
  }
}

void ThresholdUnionInto(const std::vector<DepSet>& replies, size_t threshold,
                        DepScratch& scratch, DepSet& out) {
  CHECK_GE(threshold, 1u);
  CountOccurrences(replies, scratch);
  out.clear();
  out.Reserve(scratch.counts.size());
  for (const auto& [dot, count] : scratch.counts) {
    if (count >= threshold) {
      out.Insert(dot);  // counts are sorted: appends at the back, O(1)
    }
  }
}

void ThresholdUnionByProcInto(const std::vector<DepSet>& replies, size_t threshold,
                              DepScratch& scratch, DepSet& out) {
  CHECK_GE(threshold, 1u);
  // Count, per originating process, how many replies mention at least one of its
  // dots (a reply with several dots of one process counts once). The process universe
  // is tiny (n <= 32), so a flat vector beats a hash map.
  auto& proc_counts = scratch.proc_counts;
  proc_counts.clear();
  for (const DepSet& r : replies) {
    for (const Dot& d : r) {
      // Count d.proc once per reply: skip if an earlier dot of this reply already
      // carried it (dots are sorted by (seq, proc), so same-proc dots need a scan;
      // reply sets are tiny).
      bool earlier_in_reply = false;
      for (const Dot& e : r) {
        if (&e == &d) {
          break;
        }
        if (e.proc == d.proc) {
          earlier_in_reply = true;
          break;
        }
      }
      if (earlier_in_reply) {
        continue;
      }
      bool found = false;
      for (auto& [p, c] : proc_counts) {
        if (p == d.proc) {
          c++;
          found = true;
          break;
        }
      }
      if (!found) {
        proc_counts.emplace_back(d.proc, 1);
      }
    }
  }
  CountOccurrences(replies, scratch);
  out.clear();
  out.Reserve(scratch.counts.size());
  for (const auto& [dot, count] : scratch.counts) {
    if (ProcCount(proc_counts, dot.proc) >= threshold) {
      out.Insert(dot);
    }
  }
}

bool FastPathCondition(const std::vector<DepSet>& replies, size_t threshold,
                       DepScratch& scratch) {
  if (threshold <= 1) {
    // Every id trivially appears at least once; the condition always holds (Atlas f=1).
    return true;
  }
  CountOccurrences(replies, scratch);
  for (const auto& [dot, count] : scratch.counts) {
    if (count < threshold) {
      return false;
    }
  }
  return true;
}

DepSet Union(const std::vector<DepSet>& replies) {
  DepSet out;
  UnionInto(replies, out);
  return out;
}

DepSet ThresholdUnion(const std::vector<DepSet>& replies, size_t threshold) {
  DepScratch scratch;
  DepSet out;
  ThresholdUnionInto(replies, threshold, scratch, out);
  return out;
}

DepSet ThresholdUnionByProc(const std::vector<DepSet>& replies, size_t threshold) {
  DepScratch scratch;
  DepSet out;
  ThresholdUnionByProcInto(replies, threshold, scratch, out);
  return out;
}

bool FastPathCondition(const std::vector<DepSet>& replies, size_t threshold) {
  DepScratch scratch;
  return FastPathCondition(replies, threshold, scratch);
}

}  // namespace common
