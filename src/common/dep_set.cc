#include "src/common/dep_set.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/check.h"

namespace common {

DepSet::DepSet(std::initializer_list<Dot> dots) : dots_(dots) {
  std::sort(dots_.begin(), dots_.end());
  dots_.erase(std::unique(dots_.begin(), dots_.end()), dots_.end());
}

DepSet::DepSet(std::vector<Dot> dots) : dots_(std::move(dots)) {
  std::sort(dots_.begin(), dots_.end());
  dots_.erase(std::unique(dots_.begin(), dots_.end()), dots_.end());
}

void DepSet::Insert(const Dot& d) {
  auto it = std::lower_bound(dots_.begin(), dots_.end(), d);
  if (it != dots_.end() && *it == d) {
    return;
  }
  dots_.insert(it, d);
}

bool DepSet::Contains(const Dot& d) const {
  return std::binary_search(dots_.begin(), dots_.end(), d);
}

void DepSet::Remove(const Dot& d) {
  auto it = std::lower_bound(dots_.begin(), dots_.end(), d);
  if (it != dots_.end() && *it == d) {
    dots_.erase(it);
  }
}

void DepSet::UnionWith(const DepSet& other) {
  if (other.empty()) {
    return;
  }
  std::vector<Dot> merged;
  merged.reserve(dots_.size() + other.dots_.size());
  std::set_union(dots_.begin(), dots_.end(), other.dots_.begin(), other.dots_.end(),
                 std::back_inserter(merged));
  dots_ = std::move(merged);
}

std::string DepSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < dots_.size(); i++) {
    if (i > 0) {
      out += ",";
    }
    out += common::ToString(dots_[i]);
  }
  out += "}";
  return out;
}

namespace {

// Merge all replies into a (dot, count) list in one pass over sorted vectors.
// Reply sets are tiny, so a simple k-way merge via repeated two-way merging is fine.
std::vector<std::pair<Dot, uint32_t>> CountOccurrences(const std::vector<DepSet>& replies) {
  std::vector<std::pair<Dot, uint32_t>> counts;
  for (const DepSet& r : replies) {
    std::vector<std::pair<Dot, uint32_t>> merged;
    merged.reserve(counts.size() + r.size());
    auto ai = counts.begin();
    auto bi = r.begin();
    while (ai != counts.end() && bi != r.end()) {
      if (ai->first < *bi) {
        merged.push_back(*ai++);
      } else if (*bi < ai->first) {
        merged.emplace_back(*bi++, 1);
      } else {
        merged.emplace_back(ai->first, ai->second + 1);
        ++ai;
        ++bi;
      }
    }
    merged.insert(merged.end(), ai, counts.end());
    for (; bi != r.end(); ++bi) {
      merged.emplace_back(*bi, 1);
    }
    counts = std::move(merged);
  }
  return counts;
}

}  // namespace

DepSet Union(const std::vector<DepSet>& replies) {
  DepSet out;
  for (const DepSet& r : replies) {
    out.UnionWith(r);
  }
  return out;
}

DepSet ThresholdUnion(const std::vector<DepSet>& replies, size_t threshold) {
  CHECK_GE(threshold, 1u);
  std::vector<Dot> kept;
  for (const auto& [dot, count] : CountOccurrences(replies)) {
    if (count >= threshold) {
      kept.push_back(dot);
    }
  }
  return DepSet(std::move(kept));
}

DepSet ThresholdUnionByProc(const std::vector<DepSet>& replies, size_t threshold) {
  CHECK_GE(threshold, 1u);
  // Count, per originating process, how many replies mention at least one of its
  // dots (a reply with several dots of one process counts once).
  std::unordered_map<ProcessId, uint32_t> proc_counts;
  for (const DepSet& r : replies) {
    std::unordered_map<ProcessId, bool> seen;
    for (const Dot& d : r) {
      if (!seen[d.proc]) {
        seen[d.proc] = true;
        proc_counts[d.proc]++;
      }
    }
  }
  std::vector<Dot> kept;
  for (const auto& [dot, count] : CountOccurrences(replies)) {
    if (proc_counts[dot.proc] >= threshold) {
      kept.push_back(dot);
    }
  }
  return DepSet(std::move(kept));
}

bool FastPathCondition(const std::vector<DepSet>& replies, size_t threshold) {
  if (threshold <= 1) {
    // Every id trivially appears at least once; the condition always holds (Atlas f=1).
    return true;
  }
  for (const auto& [dot, count] : CountOccurrences(replies)) {
    if (count < threshold) {
      return false;
    }
  }
  return true;
}

}  // namespace common
