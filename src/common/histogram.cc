#include "src/common/histogram.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace common {

Histogram::Histogram() : buckets_(kBucketGroups * kSubBuckets, 0) {}

int Histogram::BucketIndex(int64_t v) {
  if (v < 0) {
    v = 0;
  }
  uint64_t u = static_cast<uint64_t>(v);
  if (u < kSubBuckets) {
    return static_cast<int>(u);
  }
  // Group g >= 1 covers [kSubBuckets * 2^(g-1), kSubBuckets * 2^g) with kSubBuckets
  // linear sub-buckets of width 2^(g-1) each; groups tile contiguously from index
  // kSubBuckets.
  int msb = 63 - __builtin_clzll(u);  // u >= kSubBuckets > 0 here (C++17: no <bit>)
  int group = msb - kSubBucketBits + 1;
  int sub = static_cast<int>(u >> (group - 1)) - kSubBuckets;
  int index = group * kSubBuckets + sub;
  CHECK_LT(index, static_cast<int>(kBucketGroups) * kSubBuckets);
  return index;
}

int64_t Histogram::BucketMidpoint(int index) {
  if (index < kSubBuckets) {
    return index;
  }
  int group = index / kSubBuckets;
  int sub = index % kSubBuckets;
  int shift = group - 1;
  int64_t lo = (static_cast<int64_t>(kSubBuckets + sub)) << shift;
  int64_t width = static_cast<int64_t>(1) << shift;
  return lo + width / 2;
}

void Histogram::Record(int64_t value_us) {
  if (count_ == 0) {
    min_ = value_us;
    max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  count_++;
  sum_ += static_cast<double>(value_us);
  buckets_[static_cast<size_t>(BucketIndex(value_us))]++;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::Mean() const {
  if (count_ == 0) {
    return 0;
  }
  return sum_ / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p <= 0) {
    return min_;
  }
  if (p >= 100) {
    return max_;
  }
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  if (rank >= count_) {
    rank = count_ - 1;
  }
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen > rank) {
      int64_t mid = BucketMidpoint(static_cast<int>(i));
      return std::clamp(mid, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "mean=%.1fms p50=%.1fms p95=%.1fms p99=%.1fms n=%llu",
                Mean() / 1000.0, static_cast<double>(Percentile(50)) / 1000.0,
                static_cast<double>(Percentile(95)) / 1000.0,
                static_cast<double>(Percentile(99)) / 1000.0,
                static_cast<unsigned long long>(count_));
  return buf;
}

}  // namespace common
