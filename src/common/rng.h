// Deterministic random number generation.
//
// All randomness in the library (simulator jitter, workload key choice, fast-quorum
// tie-breaking in tests) flows from explicitly seeded generators so that every test and
// benchmark run is exactly reproducible.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace common {

// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: fast, high-quality, and deterministic across platforms (unlike
// std::mt19937 distributions, whose results are implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) {
      s = sm.Next();
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection method.
  uint64_t Below(uint64_t bound) {
    CHECK_GT(bound, 0u);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (l < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial.
  bool Chance(double p) { return NextDouble() < p; }

  // Exponentially distributed sample with the given mean (for jitter / outage gaps).
  double Exponential(double mean);

  // Pareto-distributed sample (heavy tail) with scale xm and shape alpha.
  double Pareto(double xm, double alpha);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

// Zipfian distribution over [0, n) with parameter theta (YCSB default 0.99), using the
// Gray et al. rejection-free method popularized by the YCSB generator.
class Zipf {
 public:
  Zipf(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double ZetaStatic(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace common

#endif  // SRC_COMMON_RNG_H_
