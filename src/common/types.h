// Fundamental identifiers and time types shared across the library.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace common {

// A process (site / data center) identifier. Processes are numbered 0..n-1.
using ProcessId = uint32_t;

constexpr ProcessId kInvalidProcess = 0xffffffffu;

// Simulated / wall-clock time in microseconds.
using Time = int64_t;
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;

// Command identifier <i, l> from the paper: the l-th command submitted by process i.
// The paper calls this an "identifier"; following the EPaxos/fantoch lineage we call it
// a Dot. Dots are totally ordered (the fixed order "<" used inside execution batches).
struct Dot {
  ProcessId proc = kInvalidProcess;
  uint64_t seq = 0;

  constexpr bool valid() const { return proc != kInvalidProcess; }

  friend constexpr bool operator==(const Dot& a, const Dot& b) {
    return a.proc == b.proc && a.seq == b.seq;
  }
  friend constexpr bool operator!=(const Dot& a, const Dot& b) { return !(a == b); }
  friend constexpr bool operator<(const Dot& a, const Dot& b) {
    if (a.seq != b.seq) {
      return a.seq < b.seq;
    }
    return a.proc < b.proc;
  }
  friend constexpr bool operator<=(const Dot& a, const Dot& b) { return a < b || a == b; }
  friend constexpr bool operator>(const Dot& a, const Dot& b) { return b < a; }
};

inline std::string ToString(const Dot& d) {
  return "<" + std::to_string(d.proc) + "," + std::to_string(d.seq) + ">";
}

struct DotHash {
  size_t operator()(const Dot& d) const {
    // splitmix-style combine; Dots are dense so this distributes well.
    uint64_t x = (static_cast<uint64_t>(d.proc) << 48) ^ d.seq;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

// Ballot numbers for the per-identifier consensus. Ballot 0 means "nothing accepted".
// Ballot i+1 (<= n) is reserved for the initial coordinator i; recovery ballots are > n
// and allocated round-robin per process, the 0-based analog of Algorithm 2, line 32
// (b = i + n * (floor(bal / n) + 1)).
using Ballot = uint64_t;

inline Ballot InitialBallot(ProcessId coordinator) {
  return static_cast<Ballot>(coordinator) + 1;
}

inline Ballot NextRecoveryBallot(ProcessId self, Ballot current, uint32_t n) {
  Ballot b = static_cast<Ballot>(self) + 1 + static_cast<Ballot>(n) * (current / n + 1);
  while (b <= current) {
    b += n;
  }
  return b;
}

inline ProcessId BallotOwner(Ballot b, uint32_t n) {
  return static_cast<ProcessId>((b - 1) % n);
}

}  // namespace common

#endif  // SRC_COMMON_TYPES_H_
