// Lightweight assertion macros for invariant enforcement on protocol paths.
//
// CHECK* macros are always on (protocol invariants must hold in release builds too;
// a violated invariant means replica divergence, which is strictly worse than a crash).
// DCHECK* compiles out in NDEBUG builds and is used on hot paths.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace common {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace common

#define CHECK(expr)                                    \
  do {                                                 \
    if (!(expr)) {                                     \
      ::common::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                  \
  } while (0)

#define CHECK_EQ(a, b) CHECK((a) == (b))
#define CHECK_NE(a, b) CHECK((a) != (b))
#define CHECK_LT(a, b) CHECK((a) < (b))
#define CHECK_LE(a, b) CHECK((a) <= (b))
#define CHECK_GT(a, b) CHECK((a) > (b))
#define CHECK_GE(a, b) CHECK((a) >= (b))

#ifdef NDEBUG
#define DCHECK(expr) \
  do {               \
  } while (0)
#else
#define DCHECK(expr) CHECK(expr)
#endif

#endif  // SRC_COMMON_CHECK_H_
