// DepSet: a set of command identifiers (Dots) stored as a sorted vector.
//
// Dependency sets are small on the benchmarked workloads (a handful of dots), so a
// sorted flat vector beats tree/hash sets on both time and space. All Atlas set algebra
// lives here: plain union, the f-threshold union (union over ids reported by at least f
// quorum members, §3.2.4), and majority-intersection helpers used by recovery.
#ifndef SRC_COMMON_DEP_SET_H_
#define SRC_COMMON_DEP_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace common {

class DepSet {
 public:
  DepSet() = default;
  DepSet(std::initializer_list<Dot> dots);
  explicit DepSet(std::vector<Dot> dots);  // takes ownership; sorts and dedups

  void Insert(const Dot& d);
  bool Contains(const Dot& d) const;
  void UnionWith(const DepSet& other);
  void Remove(const Dot& d);

  bool empty() const { return dots_.empty(); }
  size_t size() const { return dots_.size(); }
  void clear() { dots_.clear(); }

  const std::vector<Dot>& dots() const { return dots_; }
  std::vector<Dot>::const_iterator begin() const { return dots_.begin(); }
  std::vector<Dot>::const_iterator end() const { return dots_.end(); }

  friend bool operator==(const DepSet& a, const DepSet& b) { return a.dots_ == b.dots_; }
  friend bool operator!=(const DepSet& a, const DepSet& b) { return !(a == b); }

  std::string ToString() const;

 private:
  std::vector<Dot> dots_;  // sorted, unique
};

// Plain union of all reply sets.
DepSet Union(const std::vector<DepSet>& replies);

// Threshold union: ids that appear in at least `threshold` of the reply sets
// (the paper's  ∪_f Q dep  with threshold = f).
DepSet ThresholdUnion(const std::vector<DepSet>& replies, size_t threshold);

// Alias-aware threshold union used for slow-path dependency pruning (§4) under
// dependency compression: replies may report *different* dots of the same
// originating process's conflict chain (e.g. <2,3> at one replica, its successor
// <2,4> at another), which would split per-dot counts below the threshold and prune a
// dependency chain entirely — breaking Invariant 2'. Counting reporters per
// originating process and keeping every dot of processes reported by >= threshold
// replies is strictly more conservative than the per-dot rule (any dot the plain rule
// keeps is kept here), hence sound in both index modes.
DepSet ThresholdUnionByProc(const std::vector<DepSet>& replies, size_t threshold);

// True iff Union(replies) == ThresholdUnion(replies, threshold): the Atlas fast-path
// condition (Algorithm 1, line 15). Computed in one pass.
bool FastPathCondition(const std::vector<DepSet>& replies, size_t threshold);

}  // namespace common

#endif  // SRC_COMMON_DEP_SET_H_
