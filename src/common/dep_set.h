// DepSet: a set of command identifiers (Dots) stored as a sorted flat array with
// inline small-buffer storage.
//
// Dependency sets are small on the benchmarked workloads (a handful of dots), so a
// sorted flat array beats tree/hash sets on both time and space — and the first
// kInlineCapacity dots live inside the DepSet itself, so the common case performs no
// heap allocation at all (construction, copies, unions, message encode/decode). All
// Atlas set algebra lives here: plain union, the f-threshold union (union over ids
// reported by at least f quorum members, §3.2.4), and majority-intersection helpers
// used by recovery. The *Into variants take caller-provided scratch so steady-state
// protocol processing is allocation-free.
#ifndef SRC_COMMON_DEP_SET_H_
#define SRC_COMMON_DEP_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace common {

class DepSet {
 public:
  // Covers the vast majority of dependency sets on the paper's workloads (compressed
  // index, f<=2): sizeof(DepSet) stays at one cache line pair (80 bytes).
  static constexpr uint32_t kInlineCapacity = 4;

  DepSet() = default;
  DepSet(std::initializer_list<Dot> dots);
  explicit DepSet(std::vector<Dot> dots);  // sorts and dedups
  DepSet(const DepSet& other);
  DepSet(DepSet&& other) noexcept;
  DepSet& operator=(const DepSet& other);
  DepSet& operator=(DepSet&& other) noexcept;
  ~DepSet();

  void Insert(const Dot& d);
  bool Contains(const Dot& d) const;
  void UnionWith(const DepSet& other);
  void Remove(const Dot& d);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  void clear() { size_ = 0; }
  // Pre-sizes the backing array (decode path); contents are unchanged.
  void Reserve(size_t n) {
    if (n > capacity_) {
      Grow(n);
    }
  }

  const Dot* dots() const { return data_; }
  const Dot* begin() const { return data_; }
  const Dot* end() const { return data_ + size_; }

  friend bool operator==(const DepSet& a, const DepSet& b);
  friend bool operator!=(const DepSet& a, const DepSet& b) { return !(a == b); }

  std::string ToString() const;

 private:
  bool IsInline() const { return data_ == inline_; }
  void Grow(size_t min_capacity);
  void SortUnique();

  // Sorted, unique. data_ points at inline_ until the set spills to the heap.
  Dot* data_ = inline_;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineCapacity;
  Dot inline_[kInlineCapacity];
};

// Reusable scratch for the set-algebra helpers below: callers that process one quorum
// reply set after another (the engines) keep one of these per engine and pay zero
// steady-state allocations.
struct DepScratch {
  std::vector<std::pair<Dot, uint32_t>> counts;
  std::vector<std::pair<Dot, uint32_t>> merged;
  std::vector<std::pair<ProcessId, uint32_t>> proc_counts;
};

// Plain union of all reply sets, accumulated into `out` (cleared first).
void UnionInto(const std::vector<DepSet>& replies, DepSet& out);

// Threshold union into `out`: ids that appear in at least `threshold` of the reply
// sets (the paper's ∪_f Q dep with threshold = f).
void ThresholdUnionInto(const std::vector<DepSet>& replies, size_t threshold,
                        DepScratch& scratch, DepSet& out);

// Alias-aware threshold union used for slow-path dependency pruning (§4) under
// dependency compression: replies may report *different* dots of the same
// originating process's conflict chain (e.g. <2,3> at one replica, its successor
// <2,4> at another), which would split per-dot counts below the threshold and prune a
// dependency chain entirely — breaking Invariant 2'. Counting reporters per
// originating process and keeping every dot of processes reported by >= threshold
// replies is strictly more conservative than the per-dot rule (any dot the plain rule
// keeps is kept here), hence sound in both index modes.
void ThresholdUnionByProcInto(const std::vector<DepSet>& replies, size_t threshold,
                              DepScratch& scratch, DepSet& out);

// True iff Union(replies) == ThresholdUnion(replies, threshold): the Atlas fast-path
// condition (Algorithm 1, line 15). Computed in one pass over `scratch`.
bool FastPathCondition(const std::vector<DepSet>& replies, size_t threshold,
                       DepScratch& scratch);

// Allocating conveniences (tests, non-hot paths).
DepSet Union(const std::vector<DepSet>& replies);
DepSet ThresholdUnion(const std::vector<DepSet>& replies, size_t threshold);
DepSet ThresholdUnionByProc(const std::vector<DepSet>& replies, size_t threshold);
bool FastPathCondition(const std::vector<DepSet>& replies, size_t threshold);

}  // namespace common

#endif  // SRC_COMMON_DEP_SET_H_
