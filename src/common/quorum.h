// Quorum: a set of processes represented as a bitmask (n <= 32 everywhere in the
// paper's deployments; we support up to 32 sites).
#ifndef SRC_COMMON_QUORUM_H_
#define SRC_COMMON_QUORUM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace common {

class Quorum {
 public:
  constexpr Quorum() = default;
  constexpr explicit Quorum(uint32_t mask) : mask_(mask) {}

  static Quorum Of(std::initializer_list<ProcessId> procs) {
    Quorum q;
    for (ProcessId p : procs) {
      q.Add(p);
    }
    return q;
  }

  void Add(ProcessId p) {
    DCHECK(p < 32);
    mask_ |= (1u << p);
  }
  void Remove(ProcessId p) { mask_ &= ~(1u << p); }
  bool Contains(ProcessId p) const { return (mask_ >> p) & 1u; }
  size_t size() const { return static_cast<size_t>(__builtin_popcount(mask_)); }
  bool empty() const { return mask_ == 0; }
  uint32_t mask() const { return mask_; }

  Quorum Intersect(const Quorum& other) const { return Quorum(mask_ & other.mask_); }

  // Allocation-free member iteration (ascending process id): `for (ProcessId p : q)`.
  class Iterator {
   public:
    explicit Iterator(uint32_t mask) : mask_(mask) {}
    ProcessId operator*() const { return static_cast<ProcessId>(__builtin_ctz(mask_)); }
    Iterator& operator++() {
      mask_ &= mask_ - 1;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return mask_ != other.mask_; }

   private:
    uint32_t mask_;
  };
  Iterator begin() const { return Iterator(mask_); }
  Iterator end() const { return Iterator(0); }

  std::vector<ProcessId> Members() const {
    std::vector<ProcessId> out;
    for (uint32_t m = mask_; m != 0; m &= m - 1) {
      out.push_back(static_cast<ProcessId>(__builtin_ctz(m)));
    }
    return out;
  }

  friend bool operator==(const Quorum& a, const Quorum& b) { return a.mask_ == b.mask_; }
  friend bool operator!=(const Quorum& a, const Quorum& b) { return !(a == b); }

  std::string ToString() const {
    std::string s = "{";
    bool first = true;
    for (ProcessId p : Members()) {
      if (!first) {
        s += ",";
      }
      first = false;
      s += std::to_string(p);
    }
    return s + "}";
  }

 private:
  uint32_t mask_ = 0;
};

}  // namespace common

#endif  // SRC_COMMON_QUORUM_H_
