// Latency histogram with log-linear buckets (HDR-histogram style).
//
// Values are recorded in microseconds. The bucket layout gives a relative error bound of
// ~1/32 across the full range, which is ample for latency percentiles.
#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace common {

class Histogram {
 public:
  Histogram();

  void Record(int64_t value_us);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  // p in [0, 100].
  int64_t Percentile(double p) const;

  // "mean=172.3ms p50=160.1ms p99=301.2ms n=12345"
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets per power of two.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBucketGroups = 64 - kSubBucketBits + 1;

  static int BucketIndex(int64_t v);
  static int64_t BucketMidpoint(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace common

#endif  // SRC_COMMON_HISTOGRAM_H_
