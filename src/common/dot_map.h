// Open-addressed flat hash map keyed by command identifiers (Dots).
//
// The engines' per-command state (`infos_`, the decided-value cache) used to live in
// std::unordered_map, whose node-per-entry layout was the largest remaining
// steady-state allocation on the commit hot path and the top cache-miss source in
// profiles. DotMap stores {Dot, V} slots inline in one power-of-two array with linear
// probing; an invalid Dot (proc == kInvalidProcess, which no real command carries)
// marks an empty slot, and erase uses backward-shift deletion, so there are no
// tombstones and probe chains stay short. Inserting allocates only when the table
// grows past its 70% load factor — the steady state performs no allocation at all.
//
// Reference stability: rehashing and erasure move values, so references returned by
// operator[]/Find are invalidated by any later insert or erase (unlike
// std::unordered_map). Callers must not hold references across mutating calls; the
// engines copy into per-engine scratch where that pattern used to be relied upon.
#ifndef SRC_COMMON_DOT_MAP_H_
#define SRC_COMMON_DOT_MAP_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace common {

template <class V>
class DotMap {
 public:
  struct Slot {
    Dot key;  // !key.valid() marks an empty slot
    V value;
  };

  DotMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  // Returns the value for `key`, default-constructing it on first access. A lookup
  // of an existing key never mutates the table (and never invalidates references);
  // the table only grows when the key is genuinely new.
  V& operator[](const Dot& key) {
    CHECK(key.valid());
    if (slots_.empty()) {
      Rehash(kInitialCapacity);
    }
    size_t i = ProbeStart(key);
    while (slots_[i].key.valid()) {
      if (slots_[i].key == key) {
        return slots_[i].value;
      }
      i = (i + 1) & mask_;
    }
    if ((size_ + 1) * 10 >= slots_.size() * 7) {
      Rehash(slots_.size() * 2);
      i = ProbeStart(key);
      while (slots_[i].key.valid()) {
        i = (i + 1) & mask_;
      }
    }
    slots_[i].key = key;
    size_++;
    return slots_[i].value;
  }

  V* Find(const Dot& key) {
    return const_cast<V*>(static_cast<const DotMap*>(this)->Find(key));
  }
  const V* Find(const Dot& key) const {
    if (size_ == 0) {
      return nullptr;
    }
    size_t i = ProbeStart(key);
    while (slots_[i].key.valid()) {
      if (slots_[i].key == key) {
        return &slots_[i].value;
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  bool Contains(const Dot& key) const { return Find(key) != nullptr; }

  // Removes `key` if present. Backward-shift deletion: entries displaced past the
  // vacated slot are moved back so lookups never need tombstone skipping.
  bool Erase(const Dot& key) {
    if (size_ == 0) {
      return false;
    }
    size_t i = ProbeStart(key);
    while (slots_[i].key.valid() && slots_[i].key != key) {
      i = (i + 1) & mask_;
    }
    if (!slots_[i].key.valid()) {
      return false;
    }
    size_t hole = i;
    size_t j = (i + 1) & mask_;
    while (slots_[j].key.valid()) {
      size_t home = ProbeStart(slots_[j].key);
      // Shift j into the hole iff its home position does not lie in (hole, j]
      // (cyclically) — i.e. the probe chain passed through the hole.
      if (!InCyclicRange(home, hole, j)) {
        slots_[hole] = std::move(slots_[j]);
        slots_[j].key = Dot{};
        slots_[j].value = V();
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole].key = Dot{};
    slots_[hole].value = V();
    size_--;
    return true;
  }

  // Iteration: visits occupied slots in table order (an arbitrary but deterministic
  // function of the insertion history). Mutating the map invalidates iterators.
  template <class Fn>
  void ForEach(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.key.valid()) {
        fn(s.key, s.value);
      }
    }
  }

  // Pre-sizes the table for `n` entries (no-op if already large enough).
  void Reserve(size_t n) {
    size_t want = kInitialCapacity;
    while (want * 7 / 10 < n) {
      want *= 2;
    }
    if (want > slots_.size()) {
      Rehash(want);
    }
  }

  size_t capacity() const { return slots_.size(); }

 private:
  static constexpr size_t kInitialCapacity = 16;

  size_t ProbeStart(const Dot& key) const { return DotHash{}(key)&mask_; }

  // True iff x lies in the half-open cyclic interval (lo, hi].
  static bool InCyclicRange(size_t x, size_t lo, size_t hi) {
    if (lo <= hi) {
      return lo < x && x <= hi;
    }
    return lo < x || x <= hi;
  }

  void Rehash(size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_capacity);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (s.key.valid()) {
        (*this)[s.key] = std::move(s.value);
      }
    }
  }

  std::vector<Slot> slots_;  // power-of-two size
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace common

#endif  // SRC_COMMON_DOT_MAP_H_
