// DenseDotSet: membership set for Dots backed by one bitmap per process, with a
// hash-set overflow for outliers.
//
// Dot sequence numbers are allocated densely from 1 by each process, so a bitmap
// indexed by seq is both smaller and much faster than a node-based hash set — and,
// crucially for the allocation-free hot path, inserting a dot performs no per-element
// heap allocation (the per-process bitmaps grow amortized, like a vector).
//
// Dots can arrive from the network, so bitmap growth is bounded: a dot whose proc or
// seq is far beyond what has been seen (e.g. a malformed message claiming seq 2^60)
// is stored in the overflow hash set instead of resizing the bitmap. Memory therefore
// stays proportional to the number of inserted dots, never to their magnitude —
// malformed input cannot OOM a replica.
#ifndef SRC_COMMON_DOT_SET_H_
#define SRC_COMMON_DOT_SET_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"

namespace common {

class DenseDotSet {
 public:
  bool Contains(const Dot& d) const {
    if (d.proc < bits_.size()) {
      const std::vector<uint64_t>& words = bits_[d.proc];
      size_t word = static_cast<size_t>(d.seq >> 6);
      if (word < words.size()) {
        return (words[word] >> (d.seq & 63)) & 1;
      }
    }
    return !overflow_.empty() && overflow_.count(d) > 0;
  }

  // Returns true if the dot was newly inserted.
  bool Insert(const Dot& d) {
    if (!InDenseRange(d)) {
      if (!overflow_.insert(d).second) {
        return false;
      }
      size_++;
      return true;
    }
    if (d.proc >= bits_.size()) {
      bits_.resize(d.proc + 1);
    }
    std::vector<uint64_t>& words = bits_[d.proc];
    size_t word = static_cast<size_t>(d.seq >> 6);
    if (word >= words.size()) {
      // Grow geometrically so repeated inserts of increasing seqs stay amortized O(1).
      size_t cap = words.size() * 2;
      words.resize(word + 1 > cap ? word + 1 : cap, 0);
    }
    uint64_t mask = 1ull << (d.seq & 63);
    if (words[word] & mask) {
      return false;
    }
    words[word] |= mask;
    size_++;
    return true;
  }

  void Erase(const Dot& d) {
    if (d.proc < bits_.size()) {
      std::vector<uint64_t>& words = bits_[d.proc];
      size_t word = static_cast<size_t>(d.seq >> 6);
      if (word < words.size()) {
        uint64_t mask = 1ull << (d.seq & 63);
        if (words[word] & mask) {
          words[word] &= ~mask;
          size_--;
        }
        return;
      }
    }
    if (overflow_.erase(d) > 0) {
      size_--;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  // Accept into the bitmap only dots near the already-covered range: any process id
  // a real deployment can have (quorum masks cap n at 32), and seqs within a
  // bounded step past the current per-process high-water mark. Everything else —
  // i.e. adversarial or corrupt dots — goes to the overflow hash set.
  bool InDenseRange(const Dot& d) const {
    if (d.proc >= kMaxDenseProcs) {
      return false;
    }
    size_t word = static_cast<size_t>(d.seq >> 6);
    size_t covered =
        d.proc < bits_.size() ? bits_[d.proc].size() : 0;
    return word <= covered * 2 + kSlackWords;
  }

  static constexpr uint32_t kMaxDenseProcs = 64;
  static constexpr size_t kSlackWords = 1024;  // 64Ki seqs of headroom per process

  std::vector<std::vector<uint64_t>> bits_;  // bits_[proc][seq/64]
  std::unordered_set<Dot, DotHash> overflow_;
  size_t size_ = 0;
};

}  // namespace common

#endif  // SRC_COMMON_DOT_SET_H_
