#include "src/smr/sharded_engine.h"

#include <utility>

#include "src/common/check.h"

namespace smr {

// Per-shard driver context: stamps outgoing messages and timer tokens with the shard
// id and forwards everything else to the node's real Context. Commit/execute/drop
// notifications pass through unchanged — dots stay in the inner engine's per-shard
// dot space (the harness routes by command key, not by dot).
class ShardedEngine::ShardContext final : public Context {
 public:
  ShardContext(ShardedEngine* owner, uint32_t shard) : owner_(owner), shard_(shard) {}

  void Send(common::ProcessId to, msg::Message m) override {
    m.shard = shard_;
    owner_->ctx_->Send(to, std::move(m));
  }

  common::Time Now() const override { return owner_->ctx_->Now(); }

  void SetTimer(common::Duration delay, uint64_t token) override {
    owner_->ctx_->SetTimer(delay, InnerToken(token, shard_));
  }

  void Committed(const common::Dot& dot, const Command& cmd, bool fast_path) override {
    owner_->ctx_->Committed(dot, cmd, fast_path);
  }

  void Executed(const common::Dot& dot, const Command& cmd) override {
    owner_->ctx_->Executed(dot, cmd);
  }

  void Dropped(const common::Dot& dot, const Command& original) override {
    owner_->ctx_->Dropped(dot, original);
  }

 private:
  ShardedEngine* owner_;
  uint32_t shard_;
};

ShardedEngine::ShardedEngine(ShardedOptions opts, EngineFactory factory)
    : opts_(opts), partitioner_(opts.partitions) {
  CHECK_GE(opts_.partitions, 1u);
  CHECK_LE(opts_.partitions, kMaxPartitions);
  CHECK_GE(opts_.batch_max, 1u);
  CHECK(factory != nullptr);
  for (uint32_t s = 0; s < opts_.partitions; s++) {
    shards_.push_back(factory(s));
    CHECK(shards_.back() != nullptr);
  }
  pending_.resize(opts_.partitions);
  batch_writers_.resize(opts_.partitions);
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::OnStart() {
  CHECK(!started_);
  started_ = true;
  // Bind happened on the wrapper; fan it out to the partitions, each behind its own
  // shard-tagging context. Inner engines see the same (self, n) identity.
  for (uint32_t s = 0; s < opts_.partitions; s++) {
    contexts_.push_back(std::make_unique<ShardContext>(this, s));
    shards_[s]->Bind(self_, n_, contexts_[s].get());
  }
  for (auto& shard : shards_) {
    shard->OnStart();
  }
}

void ShardedEngine::Submit(Command cmd) {
  CHECK(started_);
  CHECK(!cmd.is_batch());  // the wrapper owns batch composition
  uint32_t s = partitioner_.ShardOf(cmd);  // CHECKs shard-local keys
  if (opts_.batch_window == 0) {
    shards_[s]->Submit(std::move(cmd));
    return;
  }
  std::vector<Command>& buf = pending_[s];
  buf.push_back(std::move(cmd));
  if (buf.size() >= opts_.batch_max) {
    Flush(s);
    return;
  }
  if (!drain_armed_) {
    // First buffered command while no drain is scheduled: arm one window for the
    // whole replica. The fire drains every shard round-robin, so P shards share
    // one timer per window instead of arming one per shard per fresh batch
    // (whose uncancellable stale copies flushed partial batches early — the
    // simulated P=8 throughput regression). The generation makes stale timers
    // exact no-ops instead of early flushes.
    drain_armed_ = true;
    drain_generation_++;
    ctx_->SetTimer(opts_.batch_window, DrainToken(drain_generation_));
  }
}

void ShardedEngine::Flush(uint32_t shard) {
  std::vector<Command>& buf = pending_[shard];
  if (buf.empty()) {
    return;
  }
  if (buf.size() == 1) {
    // A batch of one skips the composite wrapper: identical wire cost to unbatched
    // submission, and per-command commit/drop semantics stay exact.
    shards_[shard]->Submit(std::move(buf[0]));
  } else {
    Command batch;
    MakeBatchInto(buf, batch_writers_[shard], batch, &batch_pool_);
    shards_[shard]->Submit(std::move(batch));
  }
  buf.clear();
}

void ShardedEngine::FlushAll() {
  for (uint32_t s = 0; s < opts_.partitions; s++) {
    Flush(s);
  }
}

void ShardedEngine::OnMessage(common::ProcessId from, const msg::Message& m) {
  if (m.shard >= opts_.partitions) {
    return;  // malformed/foreign tag; drop rather than crash (network input)
  }
  shards_[m.shard]->OnMessage(from, m);
}

void ShardedEngine::OnTimer(uint64_t token) {
  if ((token & 1) == 0) {
    if ((token >> 1) != drain_generation_ || !drain_armed_) {
      return;  // stale drain timer from an earlier arming; current one still runs
    }
    drain_armed_ = false;
    FlushAll();
    return;
  }
  uint64_t t = token >> 1;
  uint32_t s = static_cast<uint32_t>(t & (kMaxPartitions - 1));
  CHECK_LT(s, opts_.partitions);
  shards_[s]->OnTimer(t >> kShardBits);
}

void ShardedEngine::OnSuspect(common::ProcessId p) {
  for (auto& shard : shards_) {
    shard->OnSuspect(p);
  }
}

EngineStats ShardedEngine::stats() const {
  EngineStats agg;
  for (const auto& shard : shards_) {
    agg += shard->stats();
  }
  return agg;
}

}  // namespace smr
