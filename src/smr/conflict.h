// Conflict (non-commutativity) detection between commands.
//
// Per footnote 2 of the paper, conflicts must be decidable without executing commands.
// The default model is the key-based one used throughout the paper's evaluation:
// commands conflict iff they share a key and at least one of them writes, and noOp
// conflicts with everything. The model also reports whether the conflict relation
// restricted around reads is transitive, which gates the NFR optimization (§4).
#ifndef SRC_SMR_CONFLICT_H_
#define SRC_SMR_CONFLICT_H_

#include "src/smr/command.h"

namespace smr {

class ConflictModel {
 public:
  virtual ~ConflictModel() = default;

  virtual bool Conflicts(const Command& a, const Command& b) const = 0;

  // True if reads of this model have transitive conflicts (read* in §B.4), enabling NFR.
  virtual bool ReadsTransitive() const = 0;
};

// Key-based model: conflict iff key sets intersect and not both commands are reads.
class KeyConflictModel final : public ConflictModel {
 public:
  bool Conflicts(const Command& a, const Command& b) const override;
  bool ReadsTransitive() const override { return true; }

  static bool SharesKey(const Command& a, const Command& b);
};

// Degenerate model where every pair of commands conflicts (always safe; footnote 2).
class AllConflictModel final : public ConflictModel {
 public:
  bool Conflicts(const Command& a, const Command& b) const override { return true; }
  bool ReadsTransitive() const override { return false; }
};

}  // namespace smr

#endif  // SRC_SMR_CONFLICT_H_
