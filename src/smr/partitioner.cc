#include "src/smr/partitioner.h"

#include "src/common/check.h"

namespace smr {

Partitioner::Partitioner(uint32_t partitions) : partitions_(partitions) {
  CHECK_GE(partitions_, 1u);
}

uint64_t Partitioner::HashKey(std::string_view key) {
  // FNV-1a, 64-bit: tiny, allocation-free, and byte-stable across platforms.
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint32_t Partitioner::ShardOf(const Command& cmd) const {
  uint32_t shard = 0;
  CHECK(SingleShard(cmd, &shard));
  return shard;
}

bool Partitioner::SingleShard(const Command& cmd, uint32_t* shard) const {
  if (cmd.is_noop()) {
    return false;  // conflicts with every partition; not routable
  }
  uint32_t s = ShardOf(cmd.key);
  for (const auto& k : cmd.more_keys) {
    if (ShardOf(k) != s) {
      return false;
    }
  }
  *shard = s;
  return true;
}

}  // namespace smr
