// Sharded replica: P independent protocol engines per node, multiplexed over one
// driver Context.
//
// The paper's Atlas replica (like EPaxos/FPaxos/Mencius) serializes every command
// through one engine — one dot space, one conflict index, one graph executor — so a
// replica's throughput is bounded by a single dependency-tracking pipeline.
// Compartmentalization (Whittaker et al.) and parallel SMR (Marandi et al.) both get
// past that wall the same way: partition the key space and give each partition its
// own independently-ordered instance. ShardedEngine does exactly that, reusing the
// sans-I/O Engine interface unchanged:
//
//   * a Partitioner routes every command to shard s = hash(key) % P;
//   * shard s runs its own inner Engine (any protocol) with its own dot space,
//     conflict index and executor — commands in different shards never conflict
//     (they share no key), so ordering them independently is safe;
//   * inner engines talk through per-shard Contexts that stamp msg::Message::shard,
//     and incoming messages are demultiplexed back to their shard;
//   * timer tokens are shard-tagged the same way (low bits), so one driver timer
//     wheel serves all partitions.
//
// Submission batching rides the same multiplexer: with a batch window configured,
// commands routed to one shard within the window coalesce into a single kBatch
// composite command — one dot and one protocol round for the whole batch — which is
// what keeps cross-shard fan-out from multiplying message count. P=1 without
// batching is byte-identical to running the inner engine directly (the harness
// builds unsharded engines in that case; the equivalence is pinned by tests).
#ifndef SRC_SMR_SHARDED_ENGINE_H_
#define SRC_SMR_SHARDED_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/codec/codec.h"
#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/smr/engine.h"
#include "src/smr/partitioner.h"

namespace smr {

struct ShardedOptions {
  uint32_t partitions = 1;  // 1..kMaxPartitions

  // Submission batching: 0 disables (every Submit goes straight to its shard).
  // Otherwise commands buffer per shard and flush as one kBatch when the window
  // elapses or batch_max commands accumulate, whichever comes first.
  common::Duration batch_window = 0;
  size_t batch_max = 64;
};

class ShardedEngine final : public Engine {
 public:
  // Timer tokens carry the shard in their low bits; 64 partitions is far beyond the
  // per-node core counts that make partitions useful.
  static constexpr uint32_t kShardBits = 6;
  static constexpr uint32_t kMaxPartitions = 1u << kShardBits;

  // `factory(shard)` builds the inner engine for one partition (same protocol and
  // config for every shard of a node; the shard argument is for tracing/tests).
  using EngineFactory = std::function<std::unique_ptr<Engine>(uint32_t shard)>;

  ShardedEngine(ShardedOptions opts, EngineFactory factory);
  ~ShardedEngine() override;

  void OnStart() override;
  void Submit(Command cmd) override;
  void OnMessage(common::ProcessId from, const msg::Message& m) override;
  void OnTimer(uint64_t token) override;
  void OnSuspect(common::ProcessId p) override;

  // Aggregate over all partitions (recomputed per call; snapshot-path only).
  EngineStats stats() const override;

  uint32_t partitions() const { return opts_.partitions; }
  const Partitioner& partitioner() const { return partitioner_; }
  Engine& shard(uint32_t s) { return *shards_[s]; }
  const Engine& shard(uint32_t s) const { return *shards_[s]; }
  EngineStats shard_stats(uint32_t s) const { return shards_[s]->stats(); }

  // Flushes every pending submission batch immediately (tests / drain).
  void FlushAll();

 private:
  class ShardContext;

  // Timer-token layout: bit 0 selects between the wrapper's own batch-drain timer
  // (0: token >> 1 is the arming generation) and inner-engine timers (1:
  // token >> 1 packs (inner_token << kShardBits) | shard).
  static uint64_t DrainToken(uint64_t generation) { return generation << 1; }
  static uint64_t InnerToken(uint64_t token, uint32_t shard) {
    return (((token << kShardBits) | shard) << 1) | 1;
  }

  void Flush(uint32_t shard);

  ShardedOptions opts_;
  Partitioner partitioner_;
  std::vector<std::unique_ptr<Engine>> shards_;
  std::vector<std::unique_ptr<ShardContext>> contexts_;
  // Per-shard submission buffers (batching mode); cleared (capacity kept) on flush.
  std::vector<std::vector<Command>> pending_;
  // Per-shard kBatch encode scratch (MakeBatchInto): the composite's payload is
  // encoded through a reused writer so flushing never regrows a fresh buffer
  // (ROADMAP known-allocation, pinned by alloc_test).
  std::vector<codec::Writer> batch_writers_;
  // Recycled buffers for the composite payloads themselves: the one string a
  // flush still assigned lands in a pooled refcounted buffer that is reused
  // once the batch command's copies die (pinned by alloc_test).
  PayloadPool batch_pool_;
  // Single round-robin drain timer for all shards: armed by the first command
  // buffered anywhere while unarmed, it flushes every shard's pending batch
  // when it fires. One timer per window regardless of P — per-shard windows
  // armed one timer per fresh batch per shard, and their uncancellable stale
  // timers chopped high-P batches into fragments (the simulated-P=8 regression
  // this replaces). The generation in the token discards stale timers exactly.
  uint64_t drain_generation_ = 0;
  bool drain_armed_ = false;
  bool started_ = false;
};

}  // namespace smr

#endif  // SRC_SMR_SHARDED_ENGINE_H_
