#include "src/smr/conflict.h"

#include <algorithm>

namespace smr {

bool KeyConflictModel::SharesKey(const Command& a, const Command& b) {
  auto touches = [](const Command& c, const std::string& k) {
    if (c.key == k) {
      return true;
    }
    return std::find(c.more_keys.begin(), c.more_keys.end(), k) != c.more_keys.end();
  };
  if (touches(b, a.key)) {
    return true;
  }
  for (const auto& k : a.more_keys) {
    if (touches(b, k)) {
      return true;
    }
  }
  return false;
}

bool KeyConflictModel::Conflicts(const Command& a, const Command& b) const {
  if (a.is_noop() || b.is_noop()) {
    return true;  // noOp conflicts with all commands (§3.2.6)
  }
  if (a.is_read() && b.is_read()) {
    return false;  // reads commute
  }
  return SharesKey(a, b);
}

}  // namespace smr
