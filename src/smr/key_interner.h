// String-key interning for the conflict index hot path.
//
// Every Conflicts()/Record() call used to hash the command's std::string key into an
// unordered_map. The interner maps each distinct key to a dense uint32_t id exactly
// once; afterwards the conflict index runs on flat vectors indexed by key-id. Lookups
// use an open-addressed power-of-two table of (hash, id) slots with linear probing —
// no buckets, no per-node allocation, cache-friendly probes.
#ifndef SRC_SMR_KEY_INTERNER_H_
#define SRC_SMR_KEY_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace smr {

class KeyInterner {
 public:
  static constexpr uint32_t kNotFound = 0xffffffffu;

  KeyInterner();

  // Returns the id of `key`, assigning the next dense id on first sight.
  uint32_t Intern(std::string_view key);

  // Returns the id of `key` or kNotFound. Never allocates.
  uint32_t Find(std::string_view key) const;

  const std::string& KeyOf(uint32_t id) const { return keys_[id]; }
  size_t size() const { return keys_.size(); }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint32_t id = kNotFound;  // kNotFound marks an empty slot
  };

  static uint64_t Hash(std::string_view s);
  void Rehash(size_t new_capacity);

  std::vector<Slot> table_;  // power-of-two capacity
  std::vector<std::string> keys_;
  size_t mask_ = 0;
};

}  // namespace smr

#endif  // SRC_SMR_KEY_INTERNER_H_
