#include "src/smr/deployment.h"

#include <utility>

#include "src/core/atlas.h"
#include "src/epaxos/epaxos.h"
#include "src/kvs/kvs.h"
#include "src/mencius/mencius.h"
#include "src/paxos/multipaxos.h"

namespace smr {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kAtlas:
      return "Atlas";
    case Protocol::kEPaxos:
      return "EPaxos";
    case Protocol::kFPaxos:
      return "FPaxos";
    case Protocol::kPaxos:
      return "Paxos";
    case Protocol::kMencius:
      return "Mencius";
  }
  return "?";
}

namespace {

// The one place in the tree where protocol engines are constructed for a replica.
// Every partition of a node gets an identical configuration.
std::unique_ptr<Engine> MakeProtocolEngine(const DeploymentOptions& o) {
  switch (o.protocol) {
    case Protocol::kAtlas: {
      atlas::Config cfg;
      cfg.n = o.n;
      cfg.f = o.f;
      cfg.nfr = o.nfr;
      cfg.prune_slow_path = o.prune_slow_path;
      cfg.index_mode = o.index_mode;
      cfg.by_proximity = o.by_proximity;
      cfg.commit_timeout = o.commit_timeout;
      if (o.recovery_scan_interval > 0) {
        cfg.recovery_scan_interval = o.recovery_scan_interval;
      }
      if (o.recovery_retry_interval > 0) {
        cfg.recovery_retry_interval = o.recovery_retry_interval;
      }
      return std::make_unique<atlas::AtlasEngine>(cfg);
    }
    case Protocol::kEPaxos: {
      epaxos::Config cfg;
      cfg.n = o.n;
      cfg.nfr = o.nfr;
      cfg.index_mode = o.index_mode;
      cfg.by_proximity = o.by_proximity;
      cfg.commit_timeout = o.commit_timeout;
      if (o.recovery_scan_interval > 0) {
        cfg.recovery_scan_interval = o.recovery_scan_interval;
      }
      if (o.recovery_retry_interval > 0) {
        cfg.recovery_retry_interval = o.recovery_retry_interval;
      }
      return std::make_unique<epaxos::EPaxosEngine>(cfg);
    }
    case Protocol::kFPaxos:
    case Protocol::kPaxos: {
      paxos::Config cfg;
      cfg.n = o.n;
      cfg.f = o.f;
      cfg.mode = o.protocol == Protocol::kFPaxos ? paxos::QuorumMode::kFlexible
                                                 : paxos::QuorumMode::kClassic;
      cfg.initial_leader = o.leader != common::kInvalidProcess ? o.leader : 0;
      cfg.by_proximity = o.by_proximity;
      return std::make_unique<paxos::PaxosEngine>(cfg);
    }
    case Protocol::kMencius: {
      mencius::Config cfg;
      cfg.n = o.n;
      cfg.commit_timeout = o.commit_timeout;
      if (o.revoke_retry_interval > 0) {
        cfg.revoke_retry_interval = o.revoke_retry_interval;
      }
      return std::make_unique<mencius::MenciusEngine>(cfg);
    }
  }
  return nullptr;
}

}  // namespace

Deployment::Deployment(DeploymentOptions opts)
    : opts_(std::move(opts)), partitioner_(opts_.partitions) {
  CHECK_GE(opts_.partitions, 1u);
  CHECK_LE(opts_.partitions, ShardedEngine::kMaxPartitions);
  if (opts_.partitions == 1) {
    // Classic single-engine replica: exactly the seeded deployment, no wrapper in
    // the message path (the determinism pins rely on this).
    engine_ = MakeProtocolEngine(opts_);
  } else {
    ShardedOptions so;
    so.partitions = opts_.partitions;
    so.batch_window = opts_.batch_window;
    so.batch_max = opts_.batch_max;
    auto sharded = std::make_unique<ShardedEngine>(
        so, [this](uint32_t) { return MakeProtocolEngine(opts_); });
    sharded_ = sharded.get();
    engine_ = std::move(sharded);
  }
  CHECK(engine_ != nullptr);
  for (uint32_t s = 0; s < opts_.partitions; s++) {
    if (opts_.executor_threads > 0) {
      // Parallel execution pipeline: lane-partitioned store per shard, with
      // each lane an instance of the configured backend (kvs::KvStore by
      // default) routed via StateMachine::LaneHint.
      auto laned = std::make_unique<exec::LanedStore>(
          static_cast<uint32_t>(opts_.executor_threads),
          opts_.state_machine_factory);
      laned_.push_back(laned.get());
      stores_.push_back(std::move(laned));
    } else {
      stores_.push_back(opts_.state_machine_factory != nullptr
                            ? opts_.state_machine_factory()
                            : std::make_unique<kvs::KvStore>());
    }
    CHECK(stores_.back() != nullptr);
  }
  applied_counts_ = std::make_unique<std::atomic<uint64_t>[]>(opts_.partitions);
  for (uint32_t s = 0; s < opts_.partitions; s++) {
    applied_counts_[s].store(0, std::memory_order_relaxed);
  }

  if (!opts_.data_dir.empty()) {
    // Open per-shard persistence and recover whatever is on disk: snapshot
    // restore + log-tail replay re-derive the store state and applied counts
    // this incarnation starts from. The catch-up advert (frontiers + floors)
    // is captured here, before any live traffic, so the I/O thread can read
    // it race-free while shard workers run.
    catchup_advert_.shards.resize(opts_.partitions);
    for (uint32_t s = 0; s < opts_.partitions; s++) {
      dur::ShardDurability::Options dopts;
      dopts.log.fsync_mode = opts_.fsync_mode;
      dopts.snapshot_every = opts_.snapshot_every;
      auto d = std::make_unique<dur::ShardDurability>(
          opts_.data_dir + "/shard-" + std::to_string(s), dopts);
      CHECK(d->Open());
      if (d->had_state()) {
        recovered_ = true;
        uint64_t applied = d->Recover(*stores_[s]);
        applied_counts_[s].store(applied, std::memory_order_relaxed);
      }
      codec::Writer w;
      d->frontier().EncodeTo(w);
      catchup_advert_.shards[s].seq_floor = d->persisted_seq_floor();
      catchup_advert_.shards[s].frontier.assign(
          reinterpret_cast<const char*>(w.buffer().data()), w.buffer().size());
      durability_.push_back(std::move(d));
    }
  }
}

Deployment::~Deployment() = default;

EngineStats Deployment::shard_stats(uint32_t shard) const {
  CHECK_LT(shard, opts_.partitions);
  return sharded_ != nullptr ? sharded_->shard_stats(shard) : engine_->stats();
}

Engine& Deployment::shard_engine(uint32_t shard) {
  CHECK_LT(shard, opts_.partitions);
  return sharded_ != nullptr ? sharded_->shard(shard) : *engine_;
}

const Engine& Deployment::shard_engine(uint32_t shard) const {
  CHECK_LT(shard, opts_.partitions);
  return sharded_ != nullptr ? sharded_->shard(shard) : *engine_;
}

void Deployment::FlushAll() {
  if (sharded_ != nullptr) {
    sharded_->FlushAll();
  }
}

std::vector<RestartHint> Deployment::RestartHints() const {
  std::vector<RestartHint> hints;
  hints.reserve(opts_.partitions);
  for (uint32_t s = 0; s < opts_.partitions; s++) {
    hints.push_back(shard_engine(s).restart_hint());
  }
  return hints;
}

void Deployment::ApplyRestartHints(const std::vector<RestartHint>& hints) {
  CHECK_EQ(hints.size(), static_cast<size_t>(opts_.partitions));
  for (uint32_t s = 0; s < opts_.partitions; s++) {
    shard_engine(s).ApplyRestartHint(hints[s]);
  }
}

void Deployment::NotifyRestore(common::ProcessId p,
                               const std::vector<RestartHint>& hints) {
  CHECK_EQ(hints.size(), static_cast<size_t>(opts_.partitions));
  for (uint32_t s = 0; s < opts_.partitions; s++) {
    shard_engine(s).OnRestore(p, hints[s].seq_floor);
  }
}

std::vector<RestartHint> Deployment::RecoveredRestartHints() const {
  std::vector<RestartHint> hints(opts_.partitions);
  for (uint32_t s = 0; s < opts_.partitions && s < durability_.size(); s++) {
    hints[s].seq_floor = durability_[s]->persisted_seq_floor();
    // The recovered store reflects everything executed below this frontier
    // (snapshot restore + log-tail replay), so the engine may resume there;
    // slots between it and the crash frontier are re-learned from peers and
    // deduplicated by the durable admit filter.
    hints[s].exec_floor = durability_[s]->persisted_exec_floor();
  }
  return hints;
}

bool Deployment::AdmitDurable(uint32_t shard, const common::Dot& dot,
                              const Command& cmd) {
  if (durability_.empty() || !dot.valid()) {
    return true;
  }
  if (!durability_[shard]->Admit(dot, cmd)) {
    return false;
  }
  // Keep the reserved sequence floor ahead of the live engine's counter so a
  // restart never re-mints a dot some peer already executed.
  durability_[shard]->NoteSeqFloor(shard_engine(shard).restart_hint().seq_floor);
  return true;
}

}  // namespace smr
