#include "src/smr/command.h"

#include <algorithm>

#include "src/common/check.h"

namespace smr {

const char* OpName(Op op) {
  switch (op) {
    case Op::kNoOp:
      return "noop";
    case Op::kGet:
      return "get";
    case Op::kPut:
      return "put";
    case Op::kRmw:
      return "rmw";
    case Op::kScan:
      return "scan";
    case Op::kMPut:
      return "mput";
    case Op::kBatch:
      return "batch";
    case Op::kRange:
      return "range";
  }
  return "?";
}

size_t Command::PayloadSize() const {
  size_t n = key.size() + value.size();
  for (const auto& k : more_keys) {
    n += k.size();
  }
  return n;
}

Command Command::Decode(codec::Reader& r) {
  Command c;
  c.client = r.Varint();
  c.seq = r.Varint();
  c.op = static_cast<Op>(r.U8());
  c.key = r.Bytes();
  uint64_t n = r.Varint();
  if (n > r.remaining()) {
    return c;  // poisoned reader; caller checks r.ok()
  }
  c.more_keys.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    c.more_keys.push_back(r.Bytes());
  }
  c.value = r.Bytes();
  return c;
}

bool operator==(const Command& a, const Command& b) {
  return a.client == b.client && a.seq == b.seq && a.op == b.op && a.key == b.key &&
         a.more_keys == b.more_keys && a.value == b.value;
}

std::string Command::ToString() const {
  std::string s = OpName(op);
  s += "(";
  s += key;
  s += ")@";
  s += std::to_string(client) + ":" + std::to_string(seq);
  return s;
}

Command MakeGet(uint64_t client, uint64_t seq, std::string key) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = Op::kGet;
  c.key = std::move(key);
  return c;
}

Command MakePut(uint64_t client, uint64_t seq, std::string key, std::string value) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = Op::kPut;
  c.key = std::move(key);
  c.value = std::move(value);
  return c;
}

Command MakeRmw(uint64_t client, uint64_t seq, std::string key, std::string value) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = Op::kRmw;
  c.key = std::move(key);
  c.value = std::move(value);
  return c;
}

Command MakeNoOp() { return Command{}; }

Command MakeRange(uint64_t client, uint64_t seq, std::string begin,
                  std::string end) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = Op::kRange;
  c.key = std::move(begin);
  c.more_keys.push_back(std::move(end));
  return c;
}

Command MakeBatch(const std::vector<Command>& cmds) {
  Command b;
  codec::Writer w;
  MakeBatchInto(cmds, w, b);
  return b;
}

void MakeBatchInto(const std::vector<Command>& cmds, codec::Writer& scratch,
                   Command& out, PayloadPool* pool) {
  CHECK(!cmds.empty());
  out.client = 0;
  out.seq = 0;
  out.op = Op::kBatch;
  scratch.Clear();
  scratch.Varint(cmds.size());
  for (const Command& c : cmds) {
    CHECK(!c.is_batch());  // no nesting
    CHECK(!c.is_noop());   // noOps conflict with everything; never batched
    c.EncodeTo(scratch);
  }
  std::string_view encoded(reinterpret_cast<const char*>(scratch.buffer().data()),
                           scratch.size());
  if (pool != nullptr) {
    out.value = pool->Make(encoded);
  } else {
    out.value.Assign(encoded.data(), encoded.size());
  }
  // Deduplicated union of sub-command keys, sized once up front; batches are
  // small, so the quadratic scan beats building a hash set.
  size_t max_keys = 0;
  for (const Command& c : cmds) {
    max_keys += 1 + c.more_keys.size();
  }
  out.more_keys.clear();
  out.more_keys.reserve(max_keys - 1);
  bool have_primary = false;
  auto add_key = [&out, &have_primary](const std::string& k) {
    if (!have_primary) {
      out.key = k;
      have_primary = true;
      return;
    }
    if (k == out.key ||
        std::find(out.more_keys.begin(), out.more_keys.end(), k) !=
            out.more_keys.end()) {
      return;
    }
    out.more_keys.push_back(k);
  };
  for (const Command& c : cmds) {
    add_key(c.key);
    for (const auto& k : c.more_keys) {
      add_key(k);
    }
  }
}

bool UnpackBatch(const Command& batch, std::vector<Command>& out) {
  out.clear();
  if (!batch.is_batch()) {
    return false;
  }
  codec::Reader r(reinterpret_cast<const uint8_t*>(batch.value.data()),
                  batch.value.size());
  uint64_t n = r.Varint();
  if (!r.ok() || n == 0 || n > batch.value.size()) {
    return false;
  }
  out.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    out.push_back(Command::Decode(r));
    // Enforce MakeBatch's no-nesting invariant on the decode path too: untrusted
    // input (the TCP runtime submits client commands verbatim) must not be able to
    // nest batches and drive Apply/UnpackBatch into unbounded recursion.
    if (!r.ok() || out.back().is_batch()) {
      out.clear();
      return false;
    }
  }
  return true;
}

}  // namespace smr
