#include "src/smr/command.h"

namespace smr {

const char* OpName(Op op) {
  switch (op) {
    case Op::kNoOp:
      return "noop";
    case Op::kGet:
      return "get";
    case Op::kPut:
      return "put";
    case Op::kRmw:
      return "rmw";
    case Op::kScan:
      return "scan";
    case Op::kMPut:
      return "mput";
  }
  return "?";
}

size_t Command::PayloadSize() const {
  size_t n = key.size() + value.size();
  for (const auto& k : more_keys) {
    n += k.size();
  }
  return n;
}

Command Command::Decode(codec::Reader& r) {
  Command c;
  c.client = r.Varint();
  c.seq = r.Varint();
  c.op = static_cast<Op>(r.U8());
  c.key = r.Bytes();
  uint64_t n = r.Varint();
  if (n > r.remaining()) {
    return c;  // poisoned reader; caller checks r.ok()
  }
  c.more_keys.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    c.more_keys.push_back(r.Bytes());
  }
  c.value = r.Bytes();
  return c;
}

bool operator==(const Command& a, const Command& b) {
  return a.client == b.client && a.seq == b.seq && a.op == b.op && a.key == b.key &&
         a.more_keys == b.more_keys && a.value == b.value;
}

std::string Command::ToString() const {
  std::string s = OpName(op);
  s += "(";
  s += key;
  s += ")@";
  s += std::to_string(client) + ":" + std::to_string(seq);
  return s;
}

Command MakeGet(uint64_t client, uint64_t seq, std::string key) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = Op::kGet;
  c.key = std::move(key);
  return c;
}

Command MakePut(uint64_t client, uint64_t seq, std::string key, std::string value) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = Op::kPut;
  c.key = std::move(key);
  c.value = std::move(value);
  return c;
}

Command MakeRmw(uint64_t client, uint64_t seq, std::string key, std::string value) {
  Command c;
  c.client = client;
  c.seq = seq;
  c.op = Op::kRmw;
  c.key = std::move(key);
  c.value = std::move(value);
  return c;
}

Command MakeNoOp() { return Command{}; }

}  // namespace smr
