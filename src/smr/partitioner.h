// Key-space partitioner for sharded replicas.
//
// A sharded replica (smr::ShardedEngine) runs P independent protocol engines per
// node, each owning one partition of the key space. The partitioner is the single
// source of truth for key -> shard routing: a pure, deterministic function of the key
// bytes (stable FNV-1a hash mod P), identical at every replica and every layer
// (engine routing, harness store/checker wiring, partition-aware workloads). Single-
// key commands therefore route to exactly one shard everywhere.
//
// Commands whose keys span multiple partitions cannot be ordered by one shard alone;
// sharded deployments require shard-local commands (SingleShard reports violations,
// ShardOf CHECK-fails on them). Cross-partition transactions are future work.
#ifndef SRC_SMR_PARTITIONER_H_
#define SRC_SMR_PARTITIONER_H_

#include <cstdint>
#include <string_view>

#include "src/smr/command.h"

namespace smr {

class Partitioner {
 public:
  explicit Partitioner(uint32_t partitions);

  uint32_t partitions() const { return partitions_; }

  // Stable 64-bit FNV-1a over the key bytes; shared by every layer that needs
  // key placement (never tied to std::hash, which may differ across platforms).
  static uint64_t HashKey(std::string_view key);

  uint32_t ShardOf(std::string_view key) const {
    return static_cast<uint32_t>(HashKey(key) % partitions_);
  }

  // Shard of a command's primary key. CHECK-fails on multi-key commands that span
  // partitions and on noOps (which conflict with everything and are created inside
  // an engine, never routed across one).
  uint32_t ShardOf(const Command& cmd) const;

  // Returns true and sets *shard iff every key of cmd lives in one partition.
  bool SingleShard(const Command& cmd, uint32_t* shard) const;

 private:
  uint32_t partitions_;
};

}  // namespace smr

#endif  // SRC_SMR_PARTITIONER_H_
