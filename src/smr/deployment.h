// Replica assembly: one node's full protocol deployment, shared by every driver.
//
// The paper's methodology is one codebase where protocols differ only in the commit
// component. The sans-I/O engines honor that, but until this layer existed the
// *assembly* of a replica — which protocol engine to build, whether to shard it,
// how to wire per-shard stores, stats and submission batching — was duplicated
// between the simulator harness and the TCP runtime (and the TCP runtime only knew
// how to run a single bare engine). Deployment is the single construction site:
//
//   * P == 1: a bare protocol engine, byte-identical to the seeded single-engine
//     replica (no wrapper in the message path, no batching — the determinism pins
//     rely on this);
//   * P > 1: a smr::ShardedEngine multiplexing P per-partition engines, each with
//     its own dot space/conflict index/executor, plus per-shard service replicas
//     (kvs::KvStore by default), per-shard applied counts and submission batching.
//
// Drivers (sim::Simulator via harness::Cluster, rt::Node over TCP) talk to the
// assembled replica exclusively through the smr::Engine/Context interfaces, and use
// the unpack helpers here to demultiplex executed/committed/dropped commands —
// including kBatch composites — back to per-shard stores and per-client completions.
// Compartmentalization (Whittaker et al.) calls this decoupling of replica roles
// from deployment shape the enabler for deployment-side scaling; every future
// deployment feature (membership, reconnection, multi-backend storage) lands here
// once instead of per-driver.
#ifndef SRC_SMR_DEPLOYMENT_H_
#define SRC_SMR_DEPLOYMENT_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/dur/shard_durability.h"
#include "src/exec/laned_store.h"
#include "src/smr/command.h"
#include "src/smr/conflict_index.h"
#include "src/smr/engine.h"
#include "src/smr/partitioner.h"
#include "src/smr/sharded_engine.h"
#include "src/smr/state_machine.h"

namespace smr {

// The commit component this deployment runs; everything else is shared.
enum class Protocol {
  kAtlas,
  kEPaxos,
  kFPaxos,
  kPaxos,    // classic majority quorums
  kMencius,
};

const char* ProtocolName(Protocol p);

struct DeploymentOptions {
  Protocol protocol = Protocol::kAtlas;
  uint32_t n = 3;
  uint32_t f = 1;
  bool nfr = false;
  bool prune_slow_path = true;
  IndexMode index_mode = IndexMode::kCompressed;

  // Peers of this node ordered by increasing network distance (self excluded);
  // empty lets the engine fall back to id order.
  std::vector<common::ProcessId> by_proximity;

  // FPaxos/Paxos initial leader; kInvalidProcess defaults to process 0 (drivers
  // with a latency model pick the fairest site and pass it in).
  common::ProcessId leader = common::kInvalidProcess;

  // Recovery / fault-tolerance knobs forwarded to the protocol engines that support
  // them (Atlas, EPaxos, Mencius). 0 keeps each engine's own default — for
  // commit_timeout that means disabled, matching failure-free deployments.
  common::Duration commit_timeout = 0;
  common::Duration recovery_scan_interval = 0;
  common::Duration recovery_retry_interval = 0;
  common::Duration revoke_retry_interval = 0;  // Mencius revocation pacing

  // Partitioned replica: `partitions` independent engines behind a ShardedEngine,
  // with per-(node, partition) stores. 1 builds the classic bare-engine replica.
  uint32_t partitions = 1;
  // Submission batching on sharded replicas (ignored at partitions == 1, which
  // must stay identical to the unbatched seed).
  common::Duration batch_window = 0;
  size_t batch_max = 64;

  // Builds the per-shard service replica; nullptr defaults to kvs::KvStore.
  std::function<std::unique_ptr<StateMachine>()> state_machine_factory;

  // Runtime threading (honored by rt::Node only; the simulator path stays
  // single-threaded and byte-identical regardless of these). With `threaded`
  // set, each shard's engine runs on its own OS worker thread fed by bounded
  // SPSC mailboxes (src/rt/shard_runtime.h) instead of being multiplexed over
  // the I/O thread. `pin_cores` additionally pins worker s to CPU s % ncpus.
  bool threaded = false;
  bool pin_cores = false;
  size_t mailbox_capacity = 8192;  // slots per (I/O <-> shard) mailbox edge

  // Parallel execution pipeline (ordering/execution split): with
  // executor_threads > 0 each shard's store becomes an exec::LanedStore with
  // that many commute lanes, and the *threaded* runtime applies non-conflicting
  // commands concurrently on a per-shard executor pool (src/exec/exec_pool.h).
  // Single-threaded drivers (the simulator, the non-threaded runtime) honor the
  // laned store but apply inline through it — a deterministic fallback with
  // byte-identical state and digests at every thread count. 0 keeps plain
  // per-shard stores and inline execution (byte-identical to the seed; the
  // determinism pins rely on this). Composes with state_machine_factory: the
  // laned store builds one backend instance per lane through the factory and
  // routes via StateMachine::LaneHint.
  size_t executor_threads = 0;

  // Persistence (src/dur): non-empty enables the per-shard commit log +
  // snapshot subsystem under <data_dir>/shard-N/. The Deployment constructor
  // recovers from whatever it finds there (snapshot restore + log-tail
  // replay), so restart-from-disk is just "construct with the same data_dir".
  // Empty (the default) keeps the deployment fully in-memory and
  // byte-identical to the seed — the determinism/alloc pins rely on this.
  std::string data_dir;
  // Appends between automatic per-shard snapshots (0: only explicit ones).
  uint64_t snapshot_every = 4096;
  dur::FsyncMode fsync_mode = dur::FsyncMode::kBatch;
};

class Deployment {
 public:
  explicit Deployment(DeploymentOptions opts);
  ~Deployment();

  // The replica's engine: bare at P=1, the ShardedEngine wrapper at P>1. Drivers
  // Bind/OnStart/Submit/OnMessage/OnTimer through this single object; sharded
  // deployments keep the shard tag on messages and timer tokens end-to-end.
  Engine& engine() { return *engine_; }
  const Engine& engine() const { return *engine_; }

  uint32_t partitions() const { return opts_.partitions; }
  Protocol protocol() const { return opts_.protocol; }
  const Partitioner& partitioner() const { return partitioner_; }
  const DeploymentOptions& options() const { return opts_; }

  // Partition of an executed/dropped command's key (0 for noOps, which apply
  // nowhere and are skipped by checkers anyway).
  uint32_t ShardOfCmd(const Command& cmd) const {
    return cmd.is_noop() ? 0 : partitioner_.ShardOf(cmd.key);
  }

  // Per-shard service replica and its applied-command count (non-noop commands,
  // the per-shard executed_count used for digest comparability between replicas).
  // The counts are atomics because executor-pool lanes bump them from their own
  // threads (single-threaded drivers pay one relaxed add, nothing observable).
  StateMachine& store(uint32_t shard = 0) { return *stores_[shard]; }
  const StateMachine& store(uint32_t shard = 0) const { return *stores_[shard]; }
  uint64_t applied_count(uint32_t shard = 0) const {
    return applied_counts_[shard].load(std::memory_order_acquire);
  }

  // The shard's store as a lane-partitioned store, or nullptr when
  // executor_threads == 0 (plain store, inline execution). The threaded
  // runtime hands this to the shard's exec::ExecPool.
  exec::LanedStore* laned_store(uint32_t shard) const {
    return laned_.empty() ? nullptr : laned_[shard];
  }

  // Post-apply accounting for executor pools, callable from lane threads:
  // the inline Apply* paths below count through the same atomics.
  void CountApplied(uint32_t shard, const Command& cmd) {
    if (!cmd.is_noop()) {
      applied_counts_[shard].fetch_add(1, std::memory_order_release);
    }
  }

  // Engine stats: aggregate over the replica, and per partition. shard_engine
  // exposes the inner engine for protocol-specific introspection (downcasts in
  // benches/tests); at P=1 shard 0 is the bare engine itself.
  EngineStats stats() const { return engine_->stats(); }
  EngineStats shard_stats(uint32_t shard) const;
  Engine& shard_engine(uint32_t shard);
  const Engine& shard_engine(uint32_t shard) const;

  // Flushes pending submission batches (tests / drain); no-op on bare replicas.
  void FlushAll();

  // Restart plumbing (crash/recovery drivers). RestartHints reads the per-shard
  // stable-storage floors off a dying replica; ApplyRestartHints seeds them into the
  // freshly built replacement (after Bind + OnStart); NotifyRestore tells a live
  // replica that peer `p` restarted with the given per-shard floors.
  std::vector<RestartHint> RestartHints() const;
  void ApplyRestartHints(const std::vector<RestartHint>& hints);
  void NotifyRestore(common::ProcessId p, const std::vector<RestartHint>& hints);

  // ---- Durability (only meaningful with a non-empty data_dir) ----

  bool durable() const { return !durability_.empty(); }

  // True when the constructor found and recovered prior on-disk state; the
  // driver must then ApplyRestartHints(RecoveredRestartHints()) after
  // Bind + OnStart, and should announce itself to peers for catch-up.
  bool HasRecoveredState() const { return recovered_; }
  std::vector<RestartHint> RecoveredRestartHints() const;

  // What a restarted replica advertises to peers: per-shard executed-dot
  // frontiers (encoded) plus reserved sequence floors, captured immutably at
  // construction so any thread may read it without touching live shard state.
  struct CatchupAdvert {
    struct Shard {
      uint64_t seq_floor = 0;
      std::string frontier;  // dur::DotFrontier encoding
    };
    std::vector<Shard> shards;
  };
  const CatchupAdvert& catchup_advert() const { return catchup_advert_; }

  // Duplicate filter + commit-log append for an executed engine-level command.
  // True => first execution, caller applies it; false => the dot was already
  // executed (restart replay / catch-up re-delivery), skip the apply. Always
  // true when durability is off or the dot is invalid (timer-less drivers).
  // Also refreshes the shard's reserved sequence floor off the live engine.
  bool AdmitDurable(uint32_t shard, const common::Dot& dot, const Command& cmd);

  // Snapshot policy for drivers that must quiesce concurrent appliers first
  // (the executor-pool worker calls WaitIdle, then WriteShardSnapshot). The
  // inline apply paths below snapshot automatically.
  bool SnapshotDue(uint32_t shard) const {
    return durable() && durability_[shard]->SnapshotDue();
  }
  void WriteShardSnapshot(uint32_t shard) {
    if (durable()) {
      // restart_hint() is read from the shard's own apply path (the same
      // thread that runs the engine), like the AdmitDurable floor refresh.
      durability_[shard]->WriteSnapshot(*stores_[shard],
                                       shard_engine(shard).restart_hint().exec_floor);
    }
  }

  // The shard's durability facade (catch-up streaming), or nullptr.
  dur::ShardDurability* durability(uint32_t shard) const {
    return durability_.empty() ? nullptr : durability_[shard].get();
  }

  // Applies one executed engine-level command — unpacking kBatch composites in
  // encoded order — to the right per-shard store, bumping applied counts, then
  // invokes fn(shard, sub_command, result) per client command (noOps included;
  // they apply as no-ops and carry client 0). The unpack scratch is reused
  // across calls (allocation-free for warm capacities). `dot` is the executed
  // command's identifier, used for durable logging/dedup; pass an invalid dot
  // (default Dot{}) when durability is off.
  template <class Fn>
  void ApplyExecuted(const common::Dot& dot, const Command& cmd, Fn&& fn) {
    if (cmd.is_batch()) {
      CHECK(UnpackBatch(cmd, exec_scratch_));
      // Every sub-command of a batch shares its shard (the submission path
      // routed the batch there), so admit the composite once.
      uint32_t shard = ShardOfCmd(exec_scratch_.front());
      if (!AdmitDurable(shard, dot, cmd)) {
        return;
      }
      for (const Command& sub : exec_scratch_) {
        ApplyOne(sub, fn);
      }
      MaybeSnapshotInline(shard);
      return;
    }
    uint32_t shard = ShardOfCmd(cmd);
    if (!AdmitDurable(shard, dot, cmd)) {
      return;
    }
    ApplyOne(cmd, fn);
    MaybeSnapshotInline(shard);
  }

  // Threaded-runtime variant of ApplyExecuted: applies a command executed by
  // shard `shard`'s engine using caller-owned unpack scratch, so one worker
  // thread per shard may apply concurrently (exec_scratch_ and the ShardOfCmd
  // routing above are single-driver state). Every sub-command of a sharded
  // engine's command belongs to that shard by construction (the submission
  // path routed it there); noOps apply as no-ops on the shard's own store.
  // applied_counts_[shard] is written by shard's worker alone — readers must
  // synchronize via worker join (or use the runtime's atomic counters).
  template <class Fn>
  void ApplyExecutedShard(uint32_t shard, const common::Dot& dot,
                          const Command& cmd, std::vector<Command>& scratch,
                          Fn&& fn) {
    if (!AdmitDurable(shard, dot, cmd)) {
      return;
    }
    if (cmd.is_batch()) {
      CHECK(UnpackBatch(cmd, scratch));
      for (const Command& sub : scratch) {
        ApplyOneShard(shard, sub, fn);
      }
    } else {
      ApplyOneShard(shard, cmd, fn);
    }
    MaybeSnapshotInline(shard);
  }

  // Invokes fn(sub_command) for every client command a committed engine-level
  // command carries. Separate scratch from ApplyExecuted: the Committed hook fires
  // mid-ApplyCommit and the execute path may unpack later in the same call chain.
  template <class Fn>
  void ForEachCommitted(const Command& cmd, Fn&& fn) {
    if (cmd.is_batch()) {
      CHECK(UnpackBatch(cmd, commit_scratch_));
      for (const Command& sub : commit_scratch_) {
        fn(sub);
      }
      return;
    }
    fn(cmd);
  }

  // Invokes fn(sub_command) for every client command a dropped engine-level
  // command carried. Uses a fresh buffer, not the exec scratch: drop handlers
  // typically resubmit, which may reenter Submit -> batch -> unpack.
  template <class Fn>
  void ForEachDropped(const Command& orig, Fn&& fn) {
    if (orig.is_batch()) {
      std::vector<Command> subs;
      CHECK(UnpackBatch(orig, subs));
      for (const Command& sub : subs) {
        fn(sub);
      }
      return;
    }
    fn(orig);
  }

 private:
  // Inline-apply snapshot trigger: the caller just applied through the store
  // on this thread, so no quiesce is needed.
  void MaybeSnapshotInline(uint32_t shard) {
    if (durable() && durability_[shard]->SnapshotDue()) {
      durability_[shard]->WriteSnapshot(*stores_[shard],
                                       shard_engine(shard).restart_hint().exec_floor);
    }
  }

  template <class Fn>
  void ApplyOne(const Command& cmd, Fn&& fn) {
    uint32_t shard = ShardOfCmd(cmd);
    ApplyOneShard(shard, cmd, fn);
  }

  template <class Fn>
  void ApplyOneShard(uint32_t shard, const Command& cmd, Fn&& fn) {
    std::string result = stores_[shard]->Apply(cmd);
    CountApplied(shard, cmd);
    fn(shard, cmd, std::move(result));
  }

  DeploymentOptions opts_;
  Partitioner partitioner_;
  std::unique_ptr<Engine> engine_;
  ShardedEngine* sharded_ = nullptr;  // engine_ downcast when partitions > 1
  std::vector<std::unique_ptr<StateMachine>> stores_;
  // stores_ downcasts when executor_threads > 0 (empty otherwise).
  std::vector<exec::LanedStore*> laned_;
  std::unique_ptr<std::atomic<uint64_t>[]> applied_counts_;
  std::vector<Command> exec_scratch_;    // kBatch unpack reuse (execute path)
  std::vector<Command> commit_scratch_;  // ... commit-notification path
  // Per-shard persistence (empty when data_dir is empty).
  std::vector<std::unique_ptr<dur::ShardDurability>> durability_;
  bool recovered_ = false;
  CatchupAdvert catchup_advert_;
};

}  // namespace smr

#endif  // SRC_SMR_DEPLOYMENT_H_
