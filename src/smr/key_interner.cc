#include "src/smr/key_interner.h"

namespace smr {

namespace {
constexpr size_t kInitialCapacity = 64;
}  // namespace

KeyInterner::KeyInterner() : table_(kInitialCapacity), mask_(kInitialCapacity - 1) {}

uint64_t KeyInterner::Hash(std::string_view s) {
  // FNV-1a with an avalanche finish: keys are short (<= a few dozen bytes) and this
  // beats fancier hashes on setup cost while distributing well for power-of-2 masks.
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  h ^= h >> 29;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 32;
  return h;
}

uint32_t KeyInterner::Find(std::string_view key) const {
  uint64_t h = Hash(key);
  size_t i = static_cast<size_t>(h) & mask_;
  while (true) {
    const Slot& slot = table_[i];
    if (slot.id == kNotFound) {
      return kNotFound;
    }
    if (slot.hash == h && keys_[slot.id] == key) {
      return slot.id;
    }
    i = (i + 1) & mask_;
  }
}

uint32_t KeyInterner::Intern(std::string_view key) {
  uint64_t h = Hash(key);
  size_t i = static_cast<size_t>(h) & mask_;
  while (true) {
    Slot& slot = table_[i];
    if (slot.id == kNotFound) {
      uint32_t id = static_cast<uint32_t>(keys_.size());
      keys_.emplace_back(key);
      slot.hash = h;
      slot.id = id;
      // Keep the load factor under ~0.7 so probe chains stay short.
      if (keys_.size() * 10 > table_.size() * 7) {
        Rehash(table_.size() * 2);
      }
      return id;
    }
    if (slot.hash == h && keys_[slot.id] == key) {
      return slot.id;
    }
    i = (i + 1) & mask_;
  }
}

void KeyInterner::Rehash(size_t new_capacity) {
  std::vector<Slot> fresh(new_capacity);
  size_t new_mask = new_capacity - 1;
  for (const Slot& slot : table_) {
    if (slot.id == kNotFound) {
      continue;
    }
    size_t i = static_cast<size_t>(slot.hash) & new_mask;
    while (fresh[i].id != kNotFound) {
      i = (i + 1) & new_mask;
    }
    fresh[i] = slot;
  }
  table_.swap(fresh);
  mask_ = new_mask;
}

}  // namespace smr
