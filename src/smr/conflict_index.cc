#include "src/smr/conflict_index.h"

#include <algorithm>

namespace smr {

namespace {

using Entry = std::pair<common::ProcessId, common::Dot>;

void CollectAll(const std::vector<Entry>& entries, const common::Dot& self,
                common::DepSet& out) {
  for (const auto& [proc, dot] : entries) {
    if (dot != self) {
      out.Insert(dot);
    }
  }
}

// Replace the entry of `dot.proc` (compressed) or append (full).
void AddEntry(std::vector<Entry>& entries, const common::Dot& dot, IndexMode mode) {
  if (mode == IndexMode::kCompressed) {
    for (auto& [proc, d] : entries) {
      if (proc == dot.proc) {
        // Keep the newest dot from this process: handlers may record a process's
        // commands out of submission order under message reordering.
        if (d < dot) {
          d = dot;
        }
        return;
      }
    }
  }
  entries.emplace_back(dot.proc, dot);
}

}  // namespace

void KeyConflictIndex::CollectKey(const std::string& key, bool cmd_is_read,
                                  const common::Dot& self, common::DepSet& out) const {
  auto it = keys_.find(key);
  if (it == keys_.end()) {
    return;
  }
  CollectAll(it->second.writes, self, out);
  if (!cmd_is_read) {
    // Writes additionally conflict with reads on the key; reads commute with reads.
    CollectAll(it->second.reads, self, out);
  }
}

common::DepSet KeyConflictIndex::Conflicts(const Command& cmd,
                                           const common::Dot& self) const {
  common::DepSet out;
  if (cmd.is_noop()) {
    // noOp conflicts with everything recorded.
    for (const auto& [key, per_key] : keys_) {
      CollectAll(per_key.writes, self, out);
      CollectAll(per_key.reads, self, out);
    }
    CollectAll(noops_, self, out);
    return out;
  }
  CollectKey(cmd.key, cmd.is_read(), self, out);
  for (const auto& k : cmd.more_keys) {
    CollectKey(k, cmd.is_read(), self, out);
  }
  CollectAll(noops_, self, out);
  return out;
}

void KeyConflictIndex::RecordKey(const std::string& key, bool is_read,
                                 const common::Dot& dot) {
  PerKey& pk = keys_[key];
  if (is_read) {
    // Reads are never compressed per process: reads do not depend on one another, so
    // dropping an older read would break the chain-cover property. In compressed mode
    // the set stays bounded because each write clears it.
    AddEntry(pk.reads, dot, IndexMode::kFull);
  } else {
    AddEntry(pk.writes, dot, mode_);
    if (mode_ == IndexMode::kCompressed) {
      // The new write depends on every read collected so far, so those reads are
      // chain-covered through it; later commands reach them via this write.
      pk.reads.clear();
    }
  }
}

void KeyConflictIndex::Record(const common::Dot& dot, const Command& cmd) {
  if (!seen_.insert(dot).second) {
    return;
  }
  if (cmd.is_noop()) {
    AddEntry(noops_, dot, mode_);
    return;
  }
  RecordKey(cmd.key, cmd.is_read(), dot);
  for (const auto& k : cmd.more_keys) {
    RecordKey(k, cmd.is_read(), dot);
  }
}

common::DepSet LinearConflictIndex::Conflicts(const Command& cmd,
                                              const common::Dot& self) const {
  common::DepSet out;
  for (const auto& [dot, recorded] : recorded_) {
    if (dot != self && model_->Conflicts(cmd, recorded)) {
      out.Insert(dot);
    }
  }
  return out;
}

void LinearConflictIndex::Record(const common::Dot& dot, const Command& cmd) {
  if (!seen_.insert(dot).second) {
    return;
  }
  recorded_.emplace_back(dot, cmd);
}

std::unique_ptr<ConflictIndex> MakeKeyIndex(IndexMode mode) {
  return std::make_unique<KeyConflictIndex>(mode);
}

}  // namespace smr
