#include "src/smr/conflict_index.h"

#include <algorithm>

namespace smr {

namespace {

using Entry = std::pair<common::ProcessId, common::Dot>;

void CollectAll(const std::vector<Entry>& entries, const common::Dot& self,
                common::DepSet& out) {
  for (const auto& [proc, dot] : entries) {
    if (dot != self) {
      out.Insert(dot);
    }
  }
}

// Replace the entry of `dot.proc` (compressed) or append (full).
void AddEntry(std::vector<Entry>& entries, const common::Dot& dot, IndexMode mode) {
  if (mode == IndexMode::kCompressed) {
    for (auto& [proc, d] : entries) {
      if (proc == dot.proc) {
        // Keep the newest dot from this process: handlers may record a process's
        // commands out of submission order under message reordering.
        if (d < dot) {
          d = dot;
        }
        return;
      }
    }
  }
  entries.emplace_back(dot.proc, dot);
}

}  // namespace

void KeyConflictIndex::CollectKeyId(uint32_t key_id, bool cmd_is_read,
                                    const common::Dot& self,
                                    common::DepSet& out) const {
  if (key_id == KeyInterner::kNotFound || key_id >= keys_.size()) {
    return;  // key never recorded: nothing conflicts
  }
  const PerKey& pk = keys_[key_id];
  CollectAll(pk.writes, self, out);
  if (!cmd_is_read) {
    // Writes additionally conflict with reads on the key; reads commute with reads.
    CollectAll(pk.reads, self, out);
  }
}

void KeyConflictIndex::CollectInto(const Command& cmd, const common::Dot& self,
                                   common::DepSet& out) const {
  out.clear();
  if (cmd.is_noop()) {
    // noOp conflicts with everything recorded.
    for (const PerKey& pk : keys_) {
      CollectAll(pk.writes, self, out);
      CollectAll(pk.reads, self, out);
    }
    CollectAll(noops_, self, out);
    return;
  }
  CollectKeyId(interner_.Find(cmd.key), cmd.is_read(), self, out);
  for (const auto& k : cmd.more_keys) {
    CollectKeyId(interner_.Find(k), cmd.is_read(), self, out);
  }
  CollectAll(noops_, self, out);
}

void KeyConflictIndex::RecordKey(std::string_view key, bool is_read,
                                 const common::Dot& dot) {
  uint32_t key_id = interner_.Intern(key);
  if (key_id >= keys_.size()) {
    keys_.resize(key_id + 1);
  }
  PerKey& pk = keys_[key_id];
  if (is_read) {
    // Reads are never compressed per process: reads do not depend on one another, so
    // dropping an older read would break the chain-cover property. In compressed mode
    // the set stays bounded because each write clears it.
    AddEntry(pk.reads, dot, IndexMode::kFull);
  } else {
    AddEntry(pk.writes, dot, mode_);
    if (mode_ == IndexMode::kCompressed) {
      // The new write depends on every read collected so far, so those reads are
      // chain-covered through it; later commands reach them via this write.
      pk.reads.clear();
    }
  }
}

void KeyConflictIndex::Record(const common::Dot& dot, const Command& cmd) {
  if (!seen_.Insert(dot)) {
    return;
  }
  if (cmd.is_noop()) {
    AddEntry(noops_, dot, mode_);
    return;
  }
  RecordKey(cmd.key, cmd.is_read(), dot);
  for (const auto& k : cmd.more_keys) {
    RecordKey(k, cmd.is_read(), dot);
  }
}

void LinearConflictIndex::CollectInto(const Command& cmd, const common::Dot& self,
                                      common::DepSet& out) const {
  out.clear();
  for (const auto& [dot, recorded] : recorded_) {
    if (dot != self && model_->Conflicts(cmd, recorded)) {
      out.Insert(dot);
    }
  }
}

void LinearConflictIndex::Record(const common::Dot& dot, const Command& cmd) {
  if (!seen_.Insert(dot)) {
    return;
  }
  recorded_.emplace_back(dot, cmd);
}

std::unique_ptr<ConflictIndex> MakeKeyIndex(IndexMode mode) {
  return std::make_unique<KeyConflictIndex>(mode);
}

}  // namespace smr
