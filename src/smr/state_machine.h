// The deterministic state machine interface (§2 of the paper).
#ifndef SRC_SMR_STATE_MACHINE_H_
#define SRC_SMR_STATE_MACHINE_H_

#include <string>

#include "src/smr/command.h"

namespace smr {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  // Applies cmd and returns its response value. Must be deterministic.
  virtual std::string Apply(const Command& cmd) = 0;

  // A digest of the current state; replicas that executed the same command sequence
  // (modulo commutations) must produce equal digests. Used by the convergence checker.
  virtual uint64_t StateDigest() const = 0;
};

}  // namespace smr

#endif  // SRC_SMR_STATE_MACHINE_H_
