// The deterministic state machine interface (§2 of the paper), plus the two
// seams deployments compose through:
//
//   * snapshots — SnapshotTo/RestoreFrom serialize the full state through the
//     codec, so the durability tier (src/dur) can persist and recover any
//     backend without knowing its representation;
//   * commute decomposition — LaneHint/ApplyAcross let the parallel execution
//     pipeline (src/exec) partition a backend's key space into commute lanes
//     without hard-wiring a concrete store type. The backend owns the
//     semantics (which commands stay single-lane, how a cross-lane command
//     decomposes); the executor owns the threads.
#ifndef SRC_SMR_STATE_MACHINE_H_
#define SRC_SMR_STATE_MACHINE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/codec/codec.h"
#include "src/smr/command.h"

namespace smr {

// Returned by StateMachine::LaneHint for commands whose keys span lanes (or
// whose footprint — e.g. a kRange — cannot be pinned to one lane at all).
constexpr uint32_t kCrossLane = 0xffffffffu;

// A stable partition of the key space into lanes. Implemented by
// exec::LanedStore; passed to LaneHint so the backend can route without
// depending on the executor layer.
class LaneRouter {
 public:
  virtual ~LaneRouter() = default;
  virtual uint32_t lanes() const = 0;
  virtual uint32_t LaneOfKey(std::string_view key) const = 0;
};

class LanePartition;

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  // Applies cmd and returns its response value. Must be deterministic.
  virtual std::string Apply(const Command& cmd) = 0;

  // A digest of the current state; replicas that executed the same command sequence
  // (modulo commutations) must produce equal digests. Used by the convergence checker.
  // Backends intended for lane partitioning must keep this XOR-decomposable
  // (digest of the whole == XOR of the lane digests).
  virtual uint64_t StateDigest() const = 0;

  // Serializes the complete state. The encoding must be self-delimiting (a
  // RestoreFrom on the same reader position consumes exactly what SnapshotTo
  // wrote), so snapshots of composite stores concatenate lane blobs.
  virtual void SnapshotTo(codec::Writer& w) const = 0;
  // Rebuilds state from a snapshot, replacing current contents. Returns false
  // (state unspecified) on malformed input — callers treat that as a corrupt
  // snapshot and fall back to log replay from genesis.
  virtual bool RestoreFrom(codec::Reader& r) = 0;

  // Commute-decomposition hook: the lane all of cmd's keys map to under
  // `router`, or kCrossLane. The default pins single-key commands to their
  // key's lane, multi-key commands to the common lane when one exists, and
  // declares kRange cross-lane (its footprint is an interval, not a key set).
  // Callers handle noOps and kBatch composites before routing.
  virtual uint32_t LaneHint(const Command& cmd, const LaneRouter& router) const;

  // Applies a command whose LaneHint was kCrossLane against a lane partition
  // of sibling backends (every lane the same concrete type as *this). The
  // caller has quiesced all lanes. The default decomposes kScan (gather in
  // command key order) and kMPut (scatter per key) through LookupKey/PutKey,
  // and routes anything else to the primary key's lane — exactly the flat
  // store's semantics. Note: dispatched on the backend type, but must only
  // touch state through `lanes` (the receiver is just the routing prototype).
  virtual std::string ApplyAcross(const Command& cmd, LanePartition& lanes);

  // Point read/write primitives the default ApplyAcross decomposition uses.
  // Backends that rely on the default must override both; the base versions
  // are inert (lookup misses, writes vanish).
  virtual const std::string* LookupKey(const std::string& key) const;
  virtual void PutKey(const std::string& key, std::string_view value);
};

// A LaneRouter that also exposes the per-lane backends; what ApplyAcross
// decomposes against.
class LanePartition : public LaneRouter {
 public:
  virtual StateMachine& lane(uint32_t lane) = 0;
};

}  // namespace smr

#endif  // SRC_SMR_STATE_MACHINE_H_
