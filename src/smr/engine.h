// Sans-I/O protocol engine interface.
//
// A protocol engine is a pure state machine: inputs are Submit / OnMessage / OnTimer /
// OnSuspect calls; outputs (sends, timers, commit and execute notifications) flow
// through the Context interface provided by a driver. The same engine code runs on the
// discrete-event simulator (src/sim, all benchmarks and deterministic tests) and on the
// epoll/TCP runtime (src/rt). This mirrors the paper's methodology of sharing one
// codebase across protocols that differ only in the commit component.
#ifndef SRC_SMR_ENGINE_H_
#define SRC_SMR_ENGINE_H_

#include <cstdint>
#include <string>

#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/smr/command.h"

namespace smr {

// Cumulative per-engine counters exposed to harnesses and benches.
struct EngineStats {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t executed = 0;
  uint64_t fast_paths = 0;      // commands this engine coordinated that took the fast path
  uint64_t slow_paths = 0;      // ... the slow path
  uint64_t recoveries_started = 0;
  uint64_t noops_committed = 0;
  uint64_t messages_sent = 0;

  // Single aggregation point (sharded engines, harness snapshots): a new counter
  // added above only needs to be summed here.
  EngineStats& operator+=(const EngineStats& o) {
    submitted += o.submitted;
    committed += o.committed;
    executed += o.executed;
    fast_paths += o.fast_paths;
    slow_paths += o.slow_paths;
    recoveries_started += o.recoveries_started;
    noops_committed += o.noops_committed;
    messages_sent += o.messages_sent;
    return *this;
  }
};

class Context {
 public:
  virtual ~Context() = default;

  // Queues m for delivery to `to`. Self-sends are legal but engines normally
  // short-circuit them (the paper assumes immediate self-delivery).
  virtual void Send(common::ProcessId to, msg::Message m) = 0;

  virtual common::Time Now() const = 0;

  // Requests an OnTimer(token) callback after `delay`. Timers cannot be cancelled;
  // engines must tolerate stale tokens.
  virtual void SetTimer(common::Duration delay, uint64_t token) = 0;

  // A command became committed at this process (its final dependencies/slot are known).
  virtual void Committed(const common::Dot& dot, const Command& cmd, bool fast_path) {}

  // A command must be applied to the local service replica, in the exact call order.
  virtual void Executed(const common::Dot& dot, const Command& cmd) = 0;

  // A locally submitted command was replaced by noOp during recovery (its payload was
  // never seen by any surviving process); it will not execute under this identifier.
  // The client may safely resubmit.
  virtual void Dropped(const common::Dot& dot, const Command& original) {}
};

// The minimal stable storage a crash-stop replica carries across a restart: floors
// below which the new incarnation must not reuse identifiers. In the paper's model
// every process persists at least its sequence counter; snapshots/log persistence are
// out of scope, so a restarted replica re-learns committed state via the protocols'
// recovery paths instead of local replay.
struct RestartHint {
  uint64_t seq_floor = 0;   // first locally-owned sequence number / slot safe to use
  uint64_t exec_floor = 0;  // execution frontier at crash time (protocol-specific)
};

class Engine {
 public:
  virtual ~Engine() = default;

  // Binds the engine to its identity and driver. Must be called exactly once,
  // before any other call.
  void Bind(common::ProcessId self, uint32_t n, Context* ctx) {
    self_ = self;
    n_ = n;
    ctx_ = ctx;
  }

  // Invoked once after Bind, when the cluster is ready (leaders start heartbeats etc.).
  virtual void OnStart() {}

  // Client command submission at this replica (the paper's submit(c)).
  virtual void Submit(Command cmd) = 0;

  virtual void OnMessage(common::ProcessId from, const msg::Message& m) = 0;

  virtual void OnTimer(uint64_t token) {}

  // Failure-detector hint: process p is suspected to have crashed.
  virtual void OnSuspect(common::ProcessId p) {}

  // Failure-detector hint: a previously suspected process restarted (with the given
  // sequence floor) and is reachable again. Engines clear suspicion state and take
  // over recovery of the old incarnation's abandoned identifiers below the floor.
  virtual void OnRestore(common::ProcessId p, uint64_t seq_floor) {}

  // Reads the dying engine's stable-storage floors (called on the old engine right
  // before teardown) / seeds them into a freshly built replacement (called after
  // Bind + OnStart, so protocol OnStart initialization cannot clobber the floors).
  virtual RestartHint restart_hint() const { return {}; }
  virtual void ApplyRestartHint(const RestartHint& hint) {}

  // Returned by value: composite engines (smr::ShardedEngine) aggregate over their
  // inner engines on each call, so a reference would alias the recomputation buffer
  // and make successive snapshots compare equal. Not a hot path (harness snapshots).
  virtual EngineStats stats() const { return stats_; }
  common::ProcessId self() const { return self_; }
  uint32_t n() const { return n_; }

 protected:
  // Self-addressed messages are processed inline (immediately), per §3.2.
  void SendTo(common::ProcessId to, const msg::Message& m) {
    if (to == self_) {
      OnMessage(self_, m);
    } else {
      stats_.messages_sent++;
      ctx_->Send(to, m);
    }
  }

  // Sends to every member of the cluster; remote processes first, self last, so that
  // nested self-handling observes a fully issued broadcast.
  void SendAll(const msg::Message& m) {
    for (common::ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, m);
      }
    }
    SendTo(self_, m);
  }

  common::ProcessId self_ = common::kInvalidProcess;
  uint32_t n_ = 0;
  Context* ctx_ = nullptr;
  EngineStats stats_;
};

}  // namespace smr

#endif  // SRC_SMR_ENGINE_H_
