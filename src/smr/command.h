// The command model shared by every protocol in the library.
//
// A Command is an opaque-to-the-protocol operation on the replicated state machine,
// plus the metadata protocols need without executing it: the keys it touches (for
// conflict detection, footnote 2 of the paper) and whether it is a read.
#ifndef SRC_SMR_COMMAND_H_
#define SRC_SMR_COMMAND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/codec/codec.h"
#include "src/smr/payload.h"

namespace smr {

enum class Op : uint8_t {
  kNoOp = 0,  // conflicts with every command, executes as a no-op (recovery, §3.2.6)
  kGet = 1,
  kPut = 2,
  kRmw = 3,   // read-modify-write (e.g. increment); both reads and writes its key
  kScan = 4,  // multi-key read
  kMPut = 5,  // multi-key write
  // Composite command: `value` holds a codec-encoded sequence of sub-commands, all of
  // which live in one partition. Sharded replicas coalesce client submissions into
  // batches so a batch pays one protocol round (one dot, one MCollect fan-out) for
  // many client commands. key/more_keys carry the union of sub-command keys, so the
  // conflict index and checker-side conflict model treat the batch like the multi-key
  // write it is. Executors/state machines unpack it (UnpackBatch) and apply the
  // sub-commands in encoded order.
  kBatch = 6,
  // Ordered range read: returns the values of every key in [key, more_keys[0])
  // in key order. Supported by ordered backends (kvs::OrderedKvs); hash-map
  // backends return "". Its conflict footprint is an interval, which the
  // key-set conflict model over-approximates with just the two endpoint keys —
  // a coarse but safe-for-our-workloads bound (checker workloads never mix
  // ranges with writes to interior keys). Routing across partitions is also
  // key-set based, so at P > 1 a range is client-routable only when both
  // endpoints hash to one shard; P = 1 and per-shard local use are the
  // intended scopes.
  kRange = 7,
};

const char* OpName(Op op);

struct Command {
  uint64_t client = 0;  // submitting client id (0 = internal)
  uint64_t seq = 0;     // per-client sequence number; (client, seq) is unique
  Op op = Op::kNoOp;
  std::string key;                      // primary key (unused for kNoOp)
  std::vector<std::string> more_keys;   // extra keys for kScan / kMPut
  // Payload for writes; ignored for reads. Values above the SSO threshold are
  // refcounted (src/smr/payload.h), so the many copies a command undergoes —
  // protocol state, message fan-out, executor nodes, mailbox slots, the
  // executor-pool handoff — share one buffer instead of reallocating it.
  Payload value;

  bool is_noop() const { return op == Op::kNoOp; }
  bool is_read() const {
    return op == Op::kGet || op == Op::kScan || op == Op::kRange;
  }
  bool is_write() const {
    return op == Op::kPut || op == Op::kRmw || op == Op::kMPut || op == Op::kBatch;
  }
  bool is_batch() const { return op == Op::kBatch; }

  // Total bytes of key + payload; used by benches to model message sizes.
  size_t PayloadSize() const;

  // Works with codec::Writer (emit bytes) and codec::SizeWriter (count bytes only):
  // the simulator charges wire sizes on every send without serializing.
  template <class W>
  void EncodeTo(W& w) const {
    w.Varint(client);
    w.Varint(seq);
    w.U8(static_cast<uint8_t>(op));
    w.Bytes(key);
    w.Varint(more_keys.size());
    for (const auto& k : more_keys) {
      w.Bytes(k);
    }
    w.Bytes(value.view());
  }
  void Encode(codec::Writer& w) const { EncodeTo(w); }
  static Command Decode(codec::Reader& r);

  friend bool operator==(const Command& a, const Command& b);

  std::string ToString() const;
};

// Convenience constructors.
Command MakeGet(uint64_t client, uint64_t seq, std::string key);
Command MakePut(uint64_t client, uint64_t seq, std::string key, std::string value);
Command MakeRmw(uint64_t client, uint64_t seq, std::string key, std::string value);
Command MakeNoOp();
// Range read over [begin, end) — ordered backends only (see Op::kRange).
Command MakeRange(uint64_t client, uint64_t seq, std::string begin, std::string end);

// Builds a kBatch composite from `cmds` (none may itself be a batch or noOp). The
// batch carries client=0/seq=0 — sub-commands keep their own (client, seq) for
// completion routing — and the deduplicated union of sub-command keys for conflict
// detection.
Command MakeBatch(const std::vector<Command>& cmds);

// Rebuilds `out` as the kBatch composite of `cmds`, encoding through `scratch`
// (cleared first, capacity kept). The batching hot path calls this once per flush
// with a per-shard scratch writer, so the encode buffer never reallocates once
// warm; `out` is fully overwritten. With `pool` set, the composite payload lands
// in a recycled PayloadPool buffer instead of a fresh string — the last
// per-flush allocation on the batching hot path (pinned by alloc_test).
void MakeBatchInto(const std::vector<Command>& cmds, codec::Writer& scratch,
                   Command& out, PayloadPool* pool = nullptr);

// Decodes a kBatch's sub-commands into `out` (cleared first). Returns false if
// `batch` is not a well-formed batch. `out` reuses its capacity across calls.
bool UnpackBatch(const Command& batch, std::vector<Command>& out);

}  // namespace smr

#endif  // SRC_SMR_COMMAND_H_
