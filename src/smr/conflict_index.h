// Conflict indexes: data structures answering the paper's conflicts(c) function
// ("the set of non-start identifiers whose command conflicts with c", Algorithm 1).
//
// Two implementations:
//  - KeyConflictIndex: indexes commands by key (the KeyConflictModel hard-wired for
//    speed). Supports two modes:
//      * kFull        — record every dot per key; conflicts() returns all of them.
//                       Literal paper semantics; dependency sets grow with history.
//      * kCompressed  — keep only the latest write per (key, process) and the latest
//                       reads since the last write. Every new command's dependencies
//                       chain-cover all earlier conflicting commands (the standard
//                       EPaxos-lineage dependency compression), keeping sets bounded.
//  - LinearConflictIndex: O(history) scan against an arbitrary ConflictModel; used by
//    tests to cross-validate KeyConflictIndex and by exotic state machines.
//
// noOps conflict with everything, so they are tracked globally, and a noOp's own
// dependency set is the union of everything recorded.
#ifndef SRC_SMR_CONFLICT_INDEX_H_
#define SRC_SMR_CONFLICT_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/dep_set.h"
#include "src/common/types.h"
#include "src/smr/conflict.h"

namespace smr {

class ConflictIndex {
 public:
  virtual ~ConflictIndex() = default;

  // Dependencies of cmd over all recorded commands, excluding `self`.
  virtual common::DepSet Conflicts(const Command& cmd, const common::Dot& self) const = 0;

  // Records cmd under dot. Idempotent.
  virtual void Record(const common::Dot& dot, const Command& cmd) = 0;

  virtual bool Seen(const common::Dot& dot) const = 0;

  virtual size_t RecordedCount() const = 0;
};

enum class IndexMode {
  kFull,
  kCompressed,
};

class KeyConflictIndex final : public ConflictIndex {
 public:
  explicit KeyConflictIndex(IndexMode mode) : mode_(mode) {}

  common::DepSet Conflicts(const Command& cmd, const common::Dot& self) const override;
  void Record(const common::Dot& dot, const Command& cmd) override;
  bool Seen(const common::Dot& dot) const override { return seen_.count(dot) > 0; }
  size_t RecordedCount() const override { return seen_.size(); }

 private:
  struct PerKey {
    // kFull: every write/read dot on this key.
    // kCompressed: latest write per process / latest reads since the last write.
    std::vector<std::pair<common::ProcessId, common::Dot>> writes;
    std::vector<std::pair<common::ProcessId, common::Dot>> reads;
  };

  void CollectKey(const std::string& key, bool cmd_is_read, const common::Dot& self,
                  common::DepSet& out) const;
  void RecordKey(const std::string& key, bool is_read, const common::Dot& dot);

  IndexMode mode_;
  std::unordered_map<std::string, PerKey> keys_;
  std::vector<std::pair<common::ProcessId, common::Dot>> noops_;
  std::unordered_set<common::Dot, common::DotHash> seen_;
};

class LinearConflictIndex final : public ConflictIndex {
 public:
  explicit LinearConflictIndex(const ConflictModel* model) : model_(model) {}

  common::DepSet Conflicts(const Command& cmd, const common::Dot& self) const override;
  void Record(const common::Dot& dot, const Command& cmd) override;
  bool Seen(const common::Dot& dot) const override { return seen_.count(dot) > 0; }
  size_t RecordedCount() const override { return recorded_.size(); }

 private:
  const ConflictModel* model_;
  std::vector<std::pair<common::Dot, Command>> recorded_;
  std::unordered_set<common::Dot, common::DotHash> seen_;
};

std::unique_ptr<ConflictIndex> MakeKeyIndex(IndexMode mode);

}  // namespace smr

#endif  // SRC_SMR_CONFLICT_INDEX_H_
