// Conflict indexes: data structures answering the paper's conflicts(c) function
// ("the set of non-start identifiers whose command conflicts with c", Algorithm 1).
//
// Two implementations:
//  - KeyConflictIndex: indexes commands by key (the KeyConflictModel hard-wired for
//    speed). Keys are interned to dense uint32_t ids on first sight (KeyInterner), so
//    the steady state never hashes a std::string: per-key state lives in a flat vector
//    indexed by key-id. Supports two modes:
//      * kFull        — record every dot per key; conflicts() returns all of them.
//                       Literal paper semantics; dependency sets grow with history.
//      * kCompressed  — keep only the latest write per (key, process) and the latest
//                       reads since the last write. Every new command's dependencies
//                       chain-cover all earlier conflicting commands (the standard
//                       EPaxos-lineage dependency compression), keeping sets bounded.
//  - LinearConflictIndex: O(history) scan against an arbitrary ConflictModel; used by
//    tests to cross-validate KeyConflictIndex and by exotic state machines.
//
// The hot-path API is CollectInto: callers keep a scratch DepSet and pay no
// allocation per call. Conflicts() is a convenience wrapper for tests.
//
// noOps conflict with everything, so they are tracked globally, and a noOp's own
// dependency set is the union of everything recorded.
#ifndef SRC_SMR_CONFLICT_INDEX_H_
#define SRC_SMR_CONFLICT_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/dep_set.h"
#include "src/common/dot_set.h"
#include "src/common/types.h"
#include "src/smr/conflict.h"
#include "src/smr/key_interner.h"

namespace smr {

class ConflictIndex {
 public:
  virtual ~ConflictIndex() = default;

  // Appends the dependencies of cmd over all recorded commands, excluding `self`,
  // into `out` (cleared first). The hot-path entry point: no allocation when `out`
  // has capacity from previous calls (or fits its inline buffer).
  virtual void CollectInto(const Command& cmd, const common::Dot& self,
                           common::DepSet& out) const = 0;

  // Records cmd under dot. Idempotent.
  virtual void Record(const common::Dot& dot, const Command& cmd) = 0;

  virtual bool Seen(const common::Dot& dot) const = 0;

  virtual size_t RecordedCount() const = 0;

  // Allocating convenience (tests, cold paths).
  common::DepSet Conflicts(const Command& cmd, const common::Dot& self) const {
    common::DepSet out;
    CollectInto(cmd, self, out);
    return out;
  }
};

enum class IndexMode {
  kFull,
  kCompressed,
};

class KeyConflictIndex final : public ConflictIndex {
 public:
  explicit KeyConflictIndex(IndexMode mode) : mode_(mode) {}

  void CollectInto(const Command& cmd, const common::Dot& self,
                   common::DepSet& out) const override;
  void Record(const common::Dot& dot, const Command& cmd) override;
  bool Seen(const common::Dot& dot) const override { return seen_.Contains(dot); }
  size_t RecordedCount() const override { return seen_.size(); }

 private:
  struct PerKey {
    // kFull: every write/read dot on this key.
    // kCompressed: latest write per process / latest reads since the last write.
    std::vector<std::pair<common::ProcessId, common::Dot>> writes;
    std::vector<std::pair<common::ProcessId, common::Dot>> reads;
  };

  void CollectKeyId(uint32_t key_id, bool cmd_is_read, const common::Dot& self,
                    common::DepSet& out) const;
  void RecordKey(std::string_view key, bool is_read, const common::Dot& dot);

  IndexMode mode_;
  KeyInterner interner_;
  std::vector<PerKey> keys_;  // indexed by interned key id
  std::vector<std::pair<common::ProcessId, common::Dot>> noops_;
  common::DenseDotSet seen_;
};

class LinearConflictIndex final : public ConflictIndex {
 public:
  explicit LinearConflictIndex(const ConflictModel* model) : model_(model) {}

  void CollectInto(const Command& cmd, const common::Dot& self,
                   common::DepSet& out) const override;
  void Record(const common::Dot& dot, const Command& cmd) override;
  bool Seen(const common::Dot& dot) const override { return seen_.Contains(dot); }
  size_t RecordedCount() const override { return recorded_.size(); }

 private:
  const ConflictModel* model_;
  std::vector<std::pair<common::Dot, Command>> recorded_;
  common::DenseDotSet seen_;
};

std::unique_ptr<ConflictIndex> MakeKeyIndex(IndexMode mode);

}  // namespace smr

#endif  // SRC_SMR_CONFLICT_INDEX_H_
