// Refcounted command payloads (ROADMAP known-allocation: `Command::value`).
//
// A command's value travels far: it is stored in per-command protocol state
// (Atlas/EPaxos Info), copied into every fan-out message, parked in executor
// graph nodes, moved through mailbox slots, and — with the executor pool —
// copied once more from the ordering thread to an apply lane. With a plain
// std::string every one of those copies heap-allocates for values above the
// small-string optimization. Payload keeps small values in an SSO std::string
// (byte-for-byte the old behaviour, zero overhead) and moves larger values
// into an intrusively refcounted buffer, so copying a big payload is one
// atomic increment instead of an allocation + memcpy.
//
// PayloadPool recycles those big buffers: the kBatch flush path encodes every
// batch composite into a pooled buffer whose previous holders have all
// released it, so steady-state flushes reuse warm capacity instead of
// allocating a fresh composite string per batch (pinned by alloc_test).
//
// Thread-safety: a Payload value is as thread-safe as a std::string — distinct
// copies may be read/destroyed concurrently (the refcount is atomic), but one
// Payload object must not be mutated while another thread reads it. Pool reuse
// is sound across threads: the acquire load that observes refs == 1 pairs with
// the release decrement of the last foreign holder, so all of its reads
// happen-before the buffer is overwritten.
#ifndef SRC_SMR_PAYLOAD_H_
#define SRC_SMR_PAYLOAD_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smr {

namespace detail {

// Heap buffer for a >SSO payload. `refs` counts Payload holders plus (for
// pooled buffers) the owning pool's own reference.
struct PayloadBuf {
  std::atomic<uint32_t> refs{1};
  std::string bytes;
};

}  // namespace detail

class PayloadPool;

class Payload {
 public:
  // Values at or below this stay in the inline std::string. 15 bytes is the
  // libstdc++ SSO capacity; the exact threshold only affects where the bytes
  // live, never the observable value.
  static constexpr size_t kInlineMax = 15;

  Payload() = default;
  Payload(const char* s) : Payload(std::string_view(s)) {}          // NOLINT
  Payload(std::string_view s) { Assign(s.data(), s.size()); }       // NOLINT
  Payload(std::string s) {                                          // NOLINT
    if (s.size() <= kInlineMax) {
      small_ = std::move(s);
    } else {
      big_ = new detail::PayloadBuf;
      big_->bytes = std::move(s);
    }
  }

  Payload(const Payload& o) : small_(o.small_), big_(o.big_) { Ref(); }
  Payload(Payload&& o) noexcept
      : small_(std::move(o.small_)), big_(o.big_) {
    o.big_ = nullptr;
    o.small_.clear();
  }

  Payload& operator=(const Payload& o) {
    if (this == &o) {
      return *this;
    }
    detail::PayloadBuf* old = big_;
    small_ = o.small_;
    big_ = o.big_;
    Ref();
    UnrefBuf(old);
    return *this;
  }

  Payload& operator=(Payload&& o) noexcept {
    if (this == &o) {
      return *this;
    }
    detail::PayloadBuf* old = big_;
    small_ = std::move(o.small_);
    big_ = o.big_;
    o.big_ = nullptr;
    o.small_.clear();
    UnrefBuf(old);
    return *this;
  }

  Payload& operator=(const char* s) { return *this = Payload(std::string_view(s)); }
  Payload& operator=(std::string s) { return *this = Payload(std::move(s)); }
  Payload& operator=(std::string_view s) { return *this = Payload(s); }

  ~Payload() { UnrefBuf(big_); }

  std::string_view view() const {
    return big_ != nullptr ? std::string_view(big_->bytes)
                           : std::string_view(small_);
  }
  const char* data() const {
    return big_ != nullptr ? big_->bytes.data() : small_.data();
  }
  size_t size() const {
    return big_ != nullptr ? big_->bytes.size() : small_.size();
  }
  bool empty() const { return size() == 0; }

  void clear() {
    UnrefBuf(big_);
    big_ = nullptr;
    small_.clear();
  }

  // Replaces the value with a copy of the bytes. Small values reuse the inline
  // string's capacity; big values get a fresh buffer (use a PayloadPool to
  // recycle those on hot paths).
  void Assign(const char* data, size_t n) {
    if (n <= kInlineMax) {
      UnrefBuf(big_);
      big_ = nullptr;
      small_.assign(data, n);
      return;
    }
    detail::PayloadBuf* buf = new detail::PayloadBuf;
    buf->bytes.assign(data, n);
    UnrefBuf(big_);
    big_ = buf;
    small_.clear();
  }

  std::string str() const { return std::string(view()); }

  // True when this value shares a refcounted buffer (diagnostics/tests).
  bool shared() const {
    return big_ != nullptr &&
           big_->refs.load(std::memory_order_relaxed) > 1;
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.view() == b.view();
  }
  friend bool operator!=(const Payload& a, const Payload& b) { return !(a == b); }
  friend bool operator==(const Payload& a, std::string_view b) {
    return a.view() == b;
  }
  friend bool operator==(std::string_view a, const Payload& b) {
    return a == b.view();
  }

 private:
  friend class PayloadPool;

  // Adopts a buffer the caller already holds a reference for.
  struct AdoptRef {};
  Payload(detail::PayloadBuf* buf, AdoptRef) : big_(buf) {}

  void Ref() {
    if (big_ != nullptr) {
      big_->refs.fetch_add(1, std::memory_order_relaxed);
    }
  }
  static void UnrefBuf(detail::PayloadBuf* buf) {
    if (buf != nullptr &&
        buf->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete buf;
    }
  }

  std::string small_;                    // value when big_ == nullptr
  detail::PayloadBuf* big_ = nullptr;    // refcounted value otherwise
};

// Bounded ring of recyclable big-payload buffers. Single-threaded producer
// (one pool per shard's batching state); the Payloads it hands out may be
// copied to and released from other threads — a slot is reused only once every
// holder outside the pool has released it.
class PayloadPool {
 public:
  explicit PayloadPool(size_t max_slots = 16) : max_slots_(max_slots) {}

  PayloadPool(const PayloadPool&) = delete;
  PayloadPool& operator=(const PayloadPool&) = delete;

  ~PayloadPool() {
    for (detail::PayloadBuf* buf : slots_) {
      Payload::UnrefBuf(buf);
    }
  }

  // Returns a payload holding a copy of `bytes`. Small values stay inline
  // (never pooled). Big values land in a recycled slot when one is free —
  // steady state reuses the slot string's capacity, allocating nothing — and
  // fall back to a fresh unpooled buffer when every slot is still held.
  Payload Make(std::string_view bytes) {
    if (bytes.size() <= Payload::kInlineMax) {
      return Payload(bytes);
    }
    for (size_t i = 0; i < slots_.size(); i++) {
      size_t at = (next_ + i) % slots_.size();
      detail::PayloadBuf* buf = slots_[at];
      // Acquire pairs with the release decrement of the last outside holder:
      // its reads of the buffer happen-before this overwrite.
      if (buf->refs.load(std::memory_order_acquire) == 1) {
        buf->bytes.assign(bytes.data(), bytes.size());
        buf->refs.fetch_add(1, std::memory_order_relaxed);
        next_ = (at + 1) % slots_.size();
        return Payload(buf, Payload::AdoptRef{});
      }
    }
    detail::PayloadBuf* buf = new detail::PayloadBuf;
    buf->bytes.assign(bytes.data(), bytes.size());
    if (slots_.size() < max_slots_) {
      buf->refs.fetch_add(1, std::memory_order_relaxed);  // the pool's own ref
      slots_.push_back(buf);
      next_ = 0;
    }
    return Payload(buf, Payload::AdoptRef{});
  }

  size_t slots() const { return slots_.size(); }

 private:
  size_t max_slots_;
  std::vector<detail::PayloadBuf*> slots_;
  size_t next_ = 0;
};

}  // namespace smr

#endif  // SRC_SMR_PAYLOAD_H_
