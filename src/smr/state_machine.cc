#include "src/smr/state_machine.h"

namespace smr {

uint32_t StateMachine::LaneHint(const Command& cmd,
                                const LaneRouter& router) const {
  if (cmd.op == Op::kRange) {
    // An interval footprint touches every lane that holds a key in [key, end).
    return kCrossLane;
  }
  uint32_t l = router.LaneOfKey(cmd.key);
  if (router.lanes() > 1) {
    for (const std::string& k : cmd.more_keys) {
      if (router.LaneOfKey(k) != l) {
        return kCrossLane;
      }
    }
  }
  return l;
}

std::string StateMachine::ApplyAcross(const Command& cmd, LanePartition& lanes) {
  switch (cmd.op) {
    case Op::kScan: {
      // Concatenate in command key order (not lane order) — identical to the
      // flat store's scan.
      std::string out;
      const std::string* v = lanes.lane(lanes.LaneOfKey(cmd.key)).LookupKey(cmd.key);
      if (v != nullptr) {
        out += *v;
      }
      for (const std::string& k : cmd.more_keys) {
        const std::string* mv = lanes.lane(lanes.LaneOfKey(k)).LookupKey(k);
        if (mv != nullptr) {
          out += *mv;
        }
      }
      return out;
    }
    case Op::kMPut: {
      std::string_view value(cmd.value.data(), cmd.value.size());
      lanes.lane(lanes.LaneOfKey(cmd.key)).PutKey(cmd.key, value);
      for (const std::string& k : cmd.more_keys) {
        lanes.lane(lanes.LaneOfKey(k)).PutKey(k, value);
      }
      return "";
    }
    default:
      // Single-key ops never span lanes; route to the primary key's lane.
      return lanes.lane(lanes.LaneOfKey(cmd.key)).Apply(cmd);
  }
}

const std::string* StateMachine::LookupKey(const std::string& key) const {
  (void)key;
  return nullptr;
}

void StateMachine::PutKey(const std::string& key, std::string_view value) {
  (void)key;
  (void)value;
}

}  // namespace smr
