#include "src/codec/codec.h"

namespace codec {

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; i++) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; i++) {
    buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void Writer::Varint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void Writer::Bytes(std::string_view s) {
  Varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::Dot(const common::Dot& d) {
  Varint(d.proc);
  Varint(d.seq);
}

void Writer::Deps(const common::DepSet& deps) {
  Varint(deps.size());
  for (const common::Dot& d : deps) {
    Dot(d);
  }
}

uint8_t Reader::U8() {
  if (!Need(1)) {
    return 0;
  }
  return data_[pos_++];
}

uint32_t Reader::U32() {
  if (!Need(4)) {
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) {
    v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

uint64_t Reader::U64() {
  if (!Need(8)) {
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) {
    v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

uint64_t Reader::Varint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (!Need(1) || shift > 63) {
      ok_ = false;
      return 0;
    }
    uint8_t b = data_[pos_++];
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      break;
    }
    shift += 7;
  }
  return v;
}

std::string Reader::Bytes() {
  uint64_t n = Varint();
  if (!Need(n)) {
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

common::Dot Reader::Dot() {
  common::Dot d;
  d.proc = static_cast<common::ProcessId>(Varint());
  d.seq = Varint();
  return d;
}

common::DepSet Reader::Deps() {
  uint64_t n = Varint();
  if (n > remaining()) {  // each dot takes >= 2 bytes; cheap sanity bound
    ok_ = false;
    return {};
  }
  common::DepSet out;
  out.Reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    // Wire order is sorted (we encode sorted sets), so Insert appends; Insert also
    // tolerates adversarial unsorted input from the network.
    out.Insert(Dot());
    if (!ok_) {
      return {};
    }
  }
  return out;
}

}  // namespace codec
