// Binary serialization used by every protocol message and the TCP transport framing.
//
// Format: little-endian fixed-width integers for sized fields, LEB128 varints for
// counts/ids, length-prefixed byte strings. Decoding is bounds-checked and never reads
// past the buffer; a failed decode poisons the Reader (ok() == false) rather than
// aborting, so malformed network input cannot crash a replica.
#ifndef SRC_CODEC_CODEC_H_
#define SRC_CODEC_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/dep_set.h"
#include "src/common/types.h"

namespace codec {

class Writer {
 public:
  Writer() = default;

  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Varint(uint64_t v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void Bytes(std::string_view s);
  void Dot(const common::Dot& d);
  void Deps(const common::DepSet& deps);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> TakeBuffer() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }
  void Reserve(size_t n) { buf_.reserve(n); }
  // Drops the content but keeps the capacity: a long-lived Writer encodes message
  // after message without reallocating (clear-not-reallocate).
  void Clear() { buf_.clear(); }

 private:
  std::vector<uint8_t> buf_;
};

// Drop-in Writer replacement that only counts bytes. Encoding logic templated over
// the writer type (msg::EncodedSize, smr::Command::EncodeTo) computes exact wire
// sizes with zero allocation and zero byte shuffling.
class SizeWriter {
 public:
  void U8(uint8_t) { n_ += 1; }
  void U32(uint32_t) { n_ += 4; }
  void U64(uint64_t) { n_ += 8; }
  void Varint(uint64_t v) {
    n_ += 1;
    while (v >= 0x80) {
      n_ += 1;
      v >>= 7;
    }
  }
  void Bool(bool) { n_ += 1; }
  void Bytes(std::string_view s) {
    Varint(s.size());
    n_ += s.size();
  }
  void Dot(const common::Dot& d) {
    Varint(d.proc);
    Varint(d.seq);
  }
  void Deps(const common::DepSet& deps) {
    Varint(deps.size());
    for (const common::Dot& d : deps) {
      Dot(d);
    }
  }

  size_t size() const { return n_; }

 private:
  size_t n_ = 0;
};

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<uint8_t>& buf) : Reader(buf.data(), buf.size()) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  uint64_t Varint();
  bool Bool() { return U8() != 0; }
  std::string Bytes();
  common::Dot Dot();
  common::DepSet Deps();

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  bool Need(size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace codec

#endif  // SRC_CODEC_CODEC_H_
