#include "src/chk/checker.h"

#include <algorithm>

#include "src/common/check.h"

namespace chk {

std::string CheckResult::Describe() const {
  if (ok) {
    return "OK";
  }
  std::string out = "FAILED:\n";
  for (const auto& e : errors) {
    out += "  - " + e + "\n";
  }
  return out;
}

HistoryChecker::HistoryChecker(uint32_t n, const smr::ConflictModel* model)
    : n_(n), model_(model != nullptr ? model : &default_model_) {
  exec_index_.resize(n);
  exec_counter_.assign(n, 0);
}

void HistoryChecker::OnSubmit(const smr::Command& cmd, common::Time now,
                              common::ProcessId home) {
  CmdKey key{cmd.client, cmd.seq};
  CmdInfo& info = commands_[key];
  info.cmd = cmd;
  info.submit_time = now;
  info.submitted = true;
  info.home = home;
}

void HistoryChecker::OnExecute(common::ProcessId p, const smr::Command& cmd,
                               common::Time now) {
  if (cmd.is_noop()) {
    return;  // noOps are "not executed by the protocol" (§3.2.6)
  }
  CHECK_LT(p, n_);
  CmdKey key{cmd.client, cmd.seq};
  total_executions_++;
  uint64_t order = exec_counter_[p]++;
  exec_index_[p][key] = order;  // duplicate detection happens in Validate

  CmdInfo& info = commands_[key];
  if (info.first_exec_time < 0) {
    info.first_exec_time = now;
    info.cmd = info.submitted ? info.cmd : cmd;
  }

  if (nfr_mode_ && cmd.is_read() && info.home != common::kInvalidProcess &&
      info.home != p) {
    // NFR: executions of a read away from its home site are not externally visible
    // and carry no ordering obligation (§B.4).
    return;
  }

  auto track_key = [&](const std::string& k) {
    auto& seqs = per_key_[k];
    if (seqs.size() < n_) {  // n_ grows when restart columns are added
      seqs.resize(n_);
    }
    seqs[p].push_back(key);
  };
  if (!cmd.key.empty() || cmd.op != smr::Op::kNoOp) {
    track_key(cmd.key);
  }
  for (const auto& k : cmd.more_keys) {
    track_key(k);
  }
}

uint32_t HistoryChecker::AddRestartColumn() {
  uint32_t col = n_++;
  exec_index_.emplace_back();
  exec_counter_.push_back(0);
  return col;
}

void HistoryChecker::OnStateDigest(common::ProcessId p, uint64_t digest,
                                   uint64_t executed_count) {
  (void)p;
  digests_.emplace_back(digest, executed_count);
}

void HistoryChecker::CheckKeySequences(CheckResult& result) const {
  // For every state key and every pair of conflicting commands on it, all processes
  // that executed both must agree on their relative order.
  for (const auto& [state_key, seqs] : per_key_) {
    // Reference order: the process with the longest sequence.
    size_t ref = 0;
    for (size_t p = 1; p < seqs.size(); p++) {
      if (seqs[p].size() > seqs[ref].size()) {
        ref = p;
      }
    }
    if (seqs[ref].empty()) {
      continue;
    }
    std::unordered_map<CmdKey, uint64_t, CmdKeyHash> ref_pos;
    for (size_t i = 0; i < seqs[ref].size(); i++) {
      ref_pos[seqs[ref][i]] = i;
    }
    for (size_t p = 0; p < seqs.size(); p++) {
      if (p == ref || seqs[p].empty()) {
        continue;
      }
      // Project process p's sequence onto commands known to ref; for conflicting pairs
      // the ref positions must be increasing.
      int64_t last_write_pos = -1;          // ref position of last write seen
      std::vector<uint64_t> reads_since;    // ref positions of reads since that write
      for (const CmdKey& ck : seqs[p]) {
        auto it = ref_pos.find(ck);
        if (it == ref_pos.end()) {
          continue;  // ref did not execute it (e.g. crashed before)
        }
        auto cit = commands_.find(ck);
        bool is_read = cit != commands_.end() && cit->second.cmd.is_read();
        int64_t pos = static_cast<int64_t>(it->second);
        if (is_read) {
          // Reads must come after the last conflicting write both executed.
          if (pos < last_write_pos) {
            result.Fail("key '" + state_key + "': process " + std::to_string(p) +
                        " ordered a read before a conflicting write that ref process " +
                        std::to_string(ref) + " ordered after");
          }
          reads_since.push_back(static_cast<uint64_t>(pos));
        } else {
          if (pos < last_write_pos) {
            result.Fail("key '" + state_key + "': write order differs between process " +
                        std::to_string(p) + " and process " + std::to_string(ref));
          }
          for (uint64_t rp : reads_since) {
            if (pos < static_cast<int64_t>(rp)) {
              result.Fail("key '" + state_key + "': process " + std::to_string(p) +
                          " ordered a write before a conflicting read that ref ordered "
                          "after");
              break;
            }
          }
          reads_since.clear();
          last_write_pos = pos;
        }
      }
    }
  }
}

void HistoryChecker::CheckRealTime(CheckResult& result) const {
  // For conflicting pairs: if c's first execution anywhere precedes d's submission,
  // every process executing both must order c before d.
  for (const auto& [state_key, seqs] : per_key_) {
    // Collect commands on this key with their times.
    std::vector<CmdKey> cmds;
    for (const auto& s : seqs) {
      cmds.insert(cmds.end(), s.begin(), s.end());
    }
    std::sort(cmds.begin(), cmds.end());
    cmds.erase(std::unique(cmds.begin(), cmds.end()), cmds.end());
    for (const CmdKey& a : cmds) {
      auto ia = commands_.find(a);
      if (ia == commands_.end() || ia->second.first_exec_time < 0) {
        continue;
      }
      for (const CmdKey& b : cmds) {
        if (a == b) {
          continue;
        }
        auto ib = commands_.find(b);
        if (ib == commands_.end() || !ib->second.submitted) {
          continue;
        }
        if (!model_->Conflicts(ia->second.cmd, ib->second.cmd)) {
          continue;
        }
        if (ia->second.first_exec_time >= ib->second.submit_time) {
          continue;  // no real-time edge a -> b
        }
        for (uint32_t p = 0; p < n_; p++) {
          auto pa = exec_index_[p].find(a);
          auto pb = exec_index_[p].find(b);
          if (pa != exec_index_[p].end() && pb != exec_index_[p].end() &&
              pa->second > pb->second) {
            result.Fail("real-time violation on key '" + state_key + "' at process " +
                        std::to_string(p));
          }
        }
      }
    }
  }
}

CheckResult HistoryChecker::Validate() const {
  CheckResult result;
  // Validity + Integrity.
  std::vector<uint64_t> per_proc_execs(n_, 0);
  for (uint32_t p = 0; p < n_; p++) {
    per_proc_execs[p] = exec_index_[p].size();
  }
  uint64_t distinct_execs = 0;
  for (uint32_t p = 0; p < n_; p++) {
    distinct_execs += per_proc_execs[p];
  }
  if (distinct_execs != total_executions_) {
    result.Fail("Integrity: " + std::to_string(total_executions_ - distinct_execs) +
                " duplicate executions detected");
  }
  for (const auto& [key, info] : commands_) {
    if (info.first_exec_time >= 0 && !info.submitted) {
      result.Fail("Validity: executed command <" + std::to_string(key.client) + "," +
                  std::to_string(key.seq) + "> was never submitted");
    }
  }
  CheckKeySequences(result);
  CheckRealTime(result);
  // Convergence: digests with equal executed_count must match.
  for (size_t i = 0; i < digests_.size(); i++) {
    for (size_t j = i + 1; j < digests_.size(); j++) {
      if (digests_[i].second == digests_[j].second &&
          digests_[i].first != digests_[j].first) {
        result.Fail("Convergence: replicas with equal execution counts diverge");
      }
    }
  }
  return result;
}

}  // namespace chk
