// Execution-history checker for the SMR specification of §2:
//   Validity  — only submitted commands execute;
//   Integrity — each command executes at most once per process;
//   Ordering  — conflicting commands execute in a consistent order everywhere, and the
//               order respects real time (a command executed before another was
//               submitted must precede it at every process).
// Plus replica convergence: state digests must match across replicas that executed the
// same number of commands after quiescence.
//
// Every integration test runs its cluster through this checker. Per the paper's §3.4 /
// §B, these properties imply linearizability of the replicated service.
#ifndef SRC_CHK_CHECKER_H_
#define SRC_CHK_CHECKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/types.h"
#include "src/smr/command.h"
#include "src/smr/conflict.h"

namespace chk {

// Unique command key: (client, seq).
struct CmdKey {
  uint64_t client = 0;
  uint64_t seq = 0;

  friend bool operator==(const CmdKey& a, const CmdKey& b) {
    return a.client == b.client && a.seq == b.seq;
  }
  friend bool operator<(const CmdKey& a, const CmdKey& b) {
    if (a.client != b.client) {
      return a.client < b.client;
    }
    return a.seq < b.seq;
  }
};

struct CmdKeyHash {
  size_t operator()(const CmdKey& k) const {
    uint64_t x = k.client * 0x9e3779b97f4a7c15ull ^ k.seq;
    x ^= x >> 31;
    x *= 0xbf58476d1ce4e5b9ull;
    return static_cast<size_t>(x ^ (x >> 29));
  }
};

struct CheckResult {
  bool ok = true;
  std::vector<std::string> errors;

  void Fail(std::string message) {
    ok = false;
    if (errors.size() < 32) {  // cap noise
      errors.push_back(std::move(message));
    }
  }
  std::string Describe() const;
};

class HistoryChecker {
 public:
  explicit HistoryChecker(uint32_t n, const smr::ConflictModel* model = nullptr);

  // NFR mode (§4/§B.4): reads are excluded from other commands' dependencies, so
  // replicas may execute a read at different points relative to concurrent writes.
  // Only the execution at the read's home site (its caller's replica) is externally
  // visible; in NFR mode the checker validates exactly that execution. Writes are
  // checked across all replicas either way.
  void SetNfrMode(bool nfr) { nfr_mode_ = nfr; }

  // Call sites (harness hooks). home is the replica serving the submitting client
  // (kInvalidProcess when unknown).
  void OnSubmit(const smr::Command& cmd, common::Time now,
                common::ProcessId home = common::kInvalidProcess);
  void OnExecute(common::ProcessId p, const smr::Command& cmd, common::Time now);
  void OnStateDigest(common::ProcessId p, uint64_t digest, uint64_t executed_count);

  // Crash/restart support: a restarted replica is a fresh process as far as the
  // history is concerned (the amnesia model allows it to re-execute commands its dead
  // incarnation already executed — within one column that would read as an Integrity
  // violation). Returns the new incarnation's process column; the harness routes the
  // restarted site's OnExecute/home through it.
  uint32_t AddRestartColumn();

  // Validates the recorded history.
  CheckResult Validate() const;

  uint64_t total_executions() const { return total_executions_; }

 private:
  struct Execution {
    CmdKey key;
    uint64_t order = 0;  // per-process execution index
  };

  struct CmdInfo {
    smr::Command cmd;
    common::Time submit_time = 0;
    common::Time first_exec_time = -1;
    bool submitted = false;
    common::ProcessId home = common::kInvalidProcess;
  };

  void CheckKeySequences(CheckResult& result) const;
  void CheckRealTime(CheckResult& result) const;

  uint32_t n_;
  const smr::ConflictModel* model_;
  smr::KeyConflictModel default_model_;
  bool nfr_mode_ = false;

  std::unordered_map<CmdKey, CmdInfo, CmdKeyHash> commands_;
  // Per process: execution order index per command.
  std::vector<std::unordered_map<CmdKey, uint64_t, CmdKeyHash>> exec_index_;
  std::vector<uint64_t> exec_counter_;
  // Per (state key, process): execution sequence of commands touching that key.
  std::map<std::string, std::vector<std::vector<CmdKey>>> per_key_;
  std::vector<std::pair<uint64_t, uint64_t>> digests_;  // (digest, executed_count)
  uint64_t total_executions_ = 0;
};

}  // namespace chk

#endif  // SRC_CHK_CHECKER_H_
