#include "src/dur/commit_log.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"
#include "src/dur/crc32.h"

namespace dur {

namespace {

constexpr size_t kFrameHeader = 8;  // u32 len + u32 crc
// A single command is bounded well below this; anything larger is corruption.
constexpr uint32_t kMaxRecordBytes = 64u << 20;

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t ReadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

// Reads a whole file into `out`. Returns false when it cannot be opened.
bool ReadFileBytes(const std::string& path, std::vector<uint8_t>& out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  out.clear();
  uint8_t chunk[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    out.insert(out.end(), chunk, chunk + n);
  }
  ::close(fd);
  return true;
}

// Length of the valid record prefix of `bytes` starting at `start`.
uint64_t ValidPrefixOf(const std::vector<uint8_t>& bytes, uint64_t start) {
  uint64_t off = start;
  while (off + kFrameHeader <= bytes.size()) {
    uint32_t len = ReadU32(bytes.data() + off);
    uint32_t crc = ReadU32(bytes.data() + off + 4);
    if (len == 0 || len > kMaxRecordBytes ||
        off + kFrameHeader + len > bytes.size()) {
      break;
    }
    if (Crc32(bytes.data() + off + kFrameHeader, len) != crc) {
      break;
    }
    off += kFrameHeader + len;
  }
  return off;
}

}  // namespace

const char* FsyncModeName(FsyncMode m) {
  switch (m) {
    case FsyncMode::kNone:
      return "none";
    case FsyncMode::kBatch:
      return "batch";
    case FsyncMode::kAlways:
      return "always";
  }
  return "?";
}

CommitLog::CommitLog(std::string dir, Options opts)
    : dir_(std::move(dir)), opts_(opts) {
  buf_.reserve(opts_.flush_bytes + 4096);
}

CommitLog::~CommitLog() {
  Flush();
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

std::string CommitLog::SegPath(uint64_t seg) const {
  char name[32];
  std::snprintf(name, sizeof(name), "log-%08" PRIu64 ".seg", seg);
  return dir_ + "/" + name;
}

bool CommitLog::Open() {
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return false;
  }
  uint64_t lo = 0;
  uint64_t hi = 0;
  while (struct dirent* e = ::readdir(d)) {
    uint64_t seg = 0;
    if (std::sscanf(e->d_name, "log-%08" SCNu64 ".seg", &seg) == 1 &&
        seg > 0) {
      if (lo == 0 || seg < lo) {
        lo = seg;
      }
      hi = std::max(hi, seg);
    }
  }
  ::closedir(d);

  if (hi == 0) {
    // Fresh directory: start at segment 1.
    first_segment_ = 1;
    cur_segment_ = 1;
    cur_offset_ = 0;
    return OpenAppendFd();
  }

  first_segment_ = lo;
  cur_segment_ = hi;
  // Validate the last segment and drop any torn tail; earlier segments were
  // completed (rolled) so their tails were validated when they were last.
  uint64_t valid = ValidPrefix(SegPath(hi));
  cur_offset_ = valid;
  if (!OpenAppendFd()) {
    return false;
  }
  if (::ftruncate(fd_, static_cast<off_t>(valid)) != 0) {
    return false;
  }
  if (::lseek(fd_, static_cast<off_t>(valid), SEEK_SET) < 0) {
    return false;
  }
  return true;
}

uint64_t CommitLog::ValidPrefix(const std::string& path) const {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, bytes)) {
    return 0;
  }
  return ValidPrefixOf(bytes, 0);
}

bool CommitLog::OpenAppendFd() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  fd_ = ::open(SegPath(cur_segment_).c_str(),
               O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  return fd_ >= 0;
}

void CommitLog::RollIfNeeded() {
  if (cur_offset_ < opts_.segment_bytes) {
    return;
  }
  Flush();
  if (fd_ >= 0 && opts_.fsync_mode != FsyncMode::kNone) {
    ::fsync(fd_);
  }
  cur_segment_++;
  cur_offset_ = 0;
  CHECK(OpenAppendFd());
}

void CommitLog::Append(const common::Dot& dot, const smr::Command& cmd) {
  RollIfNeeded();
  payload_scratch_.Clear();
  payload_scratch_.Dot(dot);
  cmd.EncodeTo(payload_scratch_);
  const std::vector<uint8_t>& payload = payload_scratch_.buffer();
  CHECK(!payload.empty() && payload.size() <= kMaxRecordBytes);
  PutU32(buf_, static_cast<uint32_t>(payload.size()));
  PutU32(buf_, Crc32(payload.data(), payload.size()));
  buf_.insert(buf_.end(), payload.begin(), payload.end());
  cur_offset_ += kFrameHeader + payload.size();
  records_++;
  appends_since_sync_++;

  switch (opts_.fsync_mode) {
    case FsyncMode::kAlways:
      Sync();
      break;
    case FsyncMode::kBatch:
      if (appends_since_sync_ >= opts_.fsync_every) {
        Sync();
      } else if (buf_.size() >= opts_.flush_bytes) {
        Flush();
      }
      break;
    case FsyncMode::kNone:
      if (buf_.size() >= opts_.flush_bytes) {
        Flush();
      }
      break;
  }
}

void CommitLog::Flush() {
  if (buf_.empty() || fd_ < 0) {
    return;
  }
  const uint8_t* p = buf_.data();
  size_t left = buf_.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      // Disk failure mid-write: drop the buffer; the torn tail is truncated
      // by the next Open(). Nothing actionable on the fast path.
      break;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  buf_.clear();
}

void CommitLog::Sync() {
  Flush();
  if (fd_ >= 0) {
    ::fsync(fd_);
  }
  appends_since_sync_ = 0;
}

size_t CommitLog::ReplayFrom(const Position& from, const ReplayFn& fn) {
  Flush();
  size_t delivered = 0;
  for (uint64_t seg = std::max(from.segment, first_segment_);
       seg <= cur_segment_; seg++) {
    std::vector<uint8_t> bytes;
    if (!ReadFileBytes(SegPath(seg), bytes)) {
      break;
    }
    uint64_t off = (seg == from.segment) ? from.offset : 0;
    if (off > bytes.size()) {
      break;
    }
    while (off + kFrameHeader <= bytes.size()) {
      uint32_t len = ReadU32(bytes.data() + off);
      uint32_t crc = ReadU32(bytes.data() + off + 4);
      if (len == 0 || len > kMaxRecordBytes ||
          off + kFrameHeader + len > bytes.size() ||
          Crc32(bytes.data() + off + kFrameHeader, len) != crc) {
        // Torn/corrupt frame poisons the rest of the log: stop replay here.
        return delivered;
      }
      codec::Reader r(bytes.data() + off + kFrameHeader, len);
      common::Dot dot = r.Dot();
      smr::Command cmd = smr::Command::Decode(r);
      if (!r.ok()) {
        return delivered;
      }
      fn(dot, cmd);
      delivered++;
      off += kFrameHeader + len;
    }
  }
  return delivered;
}

}  // namespace dur
