// Per-shard append-only commit log: segmented, CRC-framed, fsync-batched.
//
// The executor emits commands in a deterministic per-shard order; the log
// records exactly that emission order as (dot, command) records, so replay
// reproduces the store state the shard had (same order => same state, and the
// order is conflict-compatible across replicas by the SMR guarantee). Appends
// buffer in user space and flush in batches behind the ordering fast path —
// durability policy (FsyncMode) decides when the OS is forced to stabilize
// them, it never blocks ordering.
//
// On-disk format, per segment file (log-%08llu.seg, rolled by size):
//   record := [u32 len][u32 crc32(payload)][payload]
//   payload := dot(varint proc, varint seq) ++ smr::Command encoding
// A torn or corrupt record poisons the rest of its segment: replay stops at
// the first bad frame, and Open() truncates trailing garbage off the last
// segment so appends resume at a clean boundary. Completed segments are
// retained (not GC'd) — peers stream catch-up from the full log, and the
// snapshot only bounds *local* replay via its recorded position.
#ifndef SRC_DUR_COMMIT_LOG_H_
#define SRC_DUR_COMMIT_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/codec/codec.h"
#include "src/common/types.h"
#include "src/smr/command.h"

namespace dur {

// When appended records are forced to stable storage:
//   kNone   — never fsync'd (page cache only; survives process death, not
//             power loss). The fastest mode; what the benches compare against.
//   kBatch  — fsync every `fsync_every` appends (bounded-loss window).
//   kAlways — fsync every append (no loss window; the slow, safe mode).
enum class FsyncMode : uint8_t { kNone = 0, kBatch = 1, kAlways = 2 };

const char* FsyncModeName(FsyncMode m);

class CommitLog {
 public:
  struct Options {
    FsyncMode fsync_mode = FsyncMode::kBatch;
    size_t fsync_every = 64;            // kBatch: appends per fsync
    size_t segment_bytes = 8u << 20;    // roll threshold
    size_t flush_bytes = 64u * 1024;    // user-space buffer flush threshold
  };

  // A record boundary: (segment sequence number, byte offset within it).
  struct Position {
    uint64_t segment = 1;
    uint64_t offset = 0;
  };

  CommitLog(std::string dir, Options opts);
  ~CommitLog();

  CommitLog(const CommitLog&) = delete;
  CommitLog& operator=(const CommitLog&) = delete;

  // Scans `dir` for segments, validates the last one's tail (truncating torn
  // records), and positions appends after the last valid record. Returns
  // false when the directory is unusable.
  bool Open();

  // Appends one record (buffered; flushed/synced per Options policy).
  void Append(const common::Dot& dot, const smr::Command& cmd);

  // Writes buffered bytes to the file (no fsync).
  void Flush();
  // Flush + fsync.
  void Sync();

  // Position just past the last appended record.
  Position position() const { return Position{cur_segment_, cur_offset_}; }
  Position begin() const { return Position{first_segment_, 0}; }
  uint64_t records() const { return records_; }

  using ReplayFn =
      std::function<void(const common::Dot& dot, const smr::Command& cmd)>;

  // Delivers every valid record from `from` (a record boundary) in log order,
  // stopping at the first torn/corrupt frame. Flushes buffered appends first
  // so the files are current. Returns records delivered.
  size_t ReplayFrom(const Position& from, const ReplayFn& fn);
  size_t Replay(const ReplayFn& fn) { return ReplayFrom(begin(), fn); }

 private:
  std::string SegPath(uint64_t seg) const;
  bool OpenAppendFd();
  void RollIfNeeded();
  // Valid prefix length of the segment file at `path`.
  uint64_t ValidPrefix(const std::string& path) const;

  std::string dir_;
  Options opts_;
  uint64_t first_segment_ = 1;
  uint64_t cur_segment_ = 1;
  uint64_t cur_offset_ = 0;  // valid bytes incl. user-space buffered ones
  uint64_t records_ = 0;     // appended this incarnation
  int fd_ = -1;
  std::vector<uint8_t> buf_;        // frames awaiting write()
  codec::Writer payload_scratch_;   // per-record payload encode reuse
  size_t appends_since_sync_ = 0;
};

}  // namespace dur

#endif  // SRC_DUR_COMMIT_LOG_H_
