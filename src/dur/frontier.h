// Executed-dot frontier: the durable "what has this shard already applied"
// watermark.
//
// Catch-up and restart dedup cannot be log-sequence based: two replicas emit
// non-conflicting commands in different per-shard orders, so "my log has N
// entries" says nothing a peer can act on. Dots (proc, seq identifiers minted
// at submission) are the stable names commands keep across replicas, so the
// frontier is a dot set: a per-process floor (every seq <= floor executed)
// plus a sparse overlay of executed dots above their floor (out-of-order
// execution, or protocols like Mencius whose per-process slot numbers stride).
// Insert compacts the overlay into the floor whenever it becomes contiguous.
#ifndef SRC_DUR_FRONTIER_H_
#define SRC_DUR_FRONTIER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/codec/codec.h"
#include "src/common/types.h"

namespace dur {

class DotFrontier {
 public:
  // True iff `d` was already inserted.
  bool Covers(const common::Dot& d) const;

  // Marks `d` executed. Returns false (no state change) when already covered —
  // the duplicate-delivery filter.
  bool Insert(const common::Dot& d);

  void Clear();
  bool Empty() const { return floors_.empty() && extras_.empty(); }
  uint64_t floor(common::ProcessId p) const {
    return p < floors_.size() ? floors_[p] : 0;
  }
  size_t extras() const { return extras_.size(); }

  // Self-delimiting encoding (floors then extras); DecodeFrom consumes exactly
  // what EncodeTo wrote and returns false on malformed input.
  void EncodeTo(codec::Writer& w) const;
  bool DecodeFrom(codec::Reader& r);

 private:
  std::vector<uint64_t> floors_;  // floors_[p]: all of p's seqs 1..floor executed
  std::unordered_set<common::Dot, common::DotHash> extras_;
};

}  // namespace dur

#endif  // SRC_DUR_FRONTIER_H_
