#include "src/dur/crc32.h"

namespace dur {

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; i++) {
      uint32_t c = i;
      for (int k = 0; k < 8; k++) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

const Crc32Table kTable;

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < size; i++) {
    c = kTable.t[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace dur
