// CRC-32 (IEEE 802.3 polynomial, reflected) for log-record and snapshot
// framing. Table-driven, no external dependency.
#ifndef SRC_DUR_CRC32_H_
#define SRC_DUR_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace dur {

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

}  // namespace dur

#endif  // SRC_DUR_CRC32_H_
