#include "src/dur/frontier.h"

namespace dur {

bool DotFrontier::Covers(const common::Dot& d) const {
  if (d.proc < floors_.size() && d.seq <= floors_[d.proc]) {
    return true;
  }
  return extras_.find(d) != extras_.end();
}

bool DotFrontier::Insert(const common::Dot& d) {
  if (Covers(d)) {
    return false;
  }
  if (d.proc >= floors_.size()) {
    floors_.resize(d.proc + 1, 0);
  }
  uint64_t& floor = floors_[d.proc];
  if (d.seq != floor + 1) {
    extras_.insert(d);
    return true;
  }
  // Contiguous: advance the floor and absorb any overlay dots it now covers.
  floor = d.seq;
  auto it = extras_.find(common::Dot{d.proc, floor + 1});
  while (it != extras_.end()) {
    extras_.erase(it);
    floor++;
    it = extras_.find(common::Dot{d.proc, floor + 1});
  }
  return true;
}

void DotFrontier::Clear() {
  floors_.clear();
  extras_.clear();
}

void DotFrontier::EncodeTo(codec::Writer& w) const {
  w.Varint(floors_.size());
  for (uint64_t f : floors_) {
    w.Varint(f);
  }
  w.Varint(extras_.size());
  for (const common::Dot& d : extras_) {
    w.Dot(d);
  }
}

bool DotFrontier::DecodeFrom(codec::Reader& r) {
  Clear();
  uint64_t nf = r.Varint();
  if (!r.ok() || nf > r.remaining() + 1) {
    return false;
  }
  floors_.reserve(nf);
  for (uint64_t i = 0; i < nf; i++) {
    floors_.push_back(r.Varint());
  }
  uint64_t ne = r.Varint();
  if (!r.ok() || ne > r.remaining() + 1) {
    return false;
  }
  for (uint64_t i = 0; i < ne; i++) {
    extras_.insert(r.Dot());
  }
  if (!r.ok()) {
    Clear();
    return false;
  }
  return true;
}

}  // namespace dur
