#include "src/dur/shard_durability.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>

#include "src/codec/codec.h"

namespace dur {

namespace {

bool EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return true;
  }
  if (errno != ENOENT) {
    return false;
  }
  // Create missing parents (paths here are short: data_dir/site-N/shard-M).
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos || slash == 0) {
    return false;
  }
  if (!EnsureDir(path.substr(0, slash))) {
    return false;
  }
  return ::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST;
}

}  // namespace

ShardDurability::ShardDurability(std::string dir, Options opts)
    : dir_(std::move(dir)), opts_(opts), log_(dir_, opts.log) {}

bool ShardDurability::Open() {
  if (!EnsureDir(dir_)) {
    return false;
  }
  if (!log_.Open()) {
    return false;
  }
  have_snapshot_ = LoadSnapshotFile(dir_, snap_);
  if (have_snapshot_) {
    persisted_exec_floor_ = snap_.exec_floor;
  }
  FloorRecord fr;
  if (LoadFloorsFile(dir_, fr)) {
    persisted_seq_floor_ = fr.seq_floor;
  }
  had_state_ = have_snapshot_ || persisted_seq_floor_ > 0 ||
               log_.position().segment > log_.begin().segment ||
               log_.position().offset > 0;
  return true;
}

uint64_t ShardDurability::Recover(smr::StateMachine& store) {
  frontier_.Clear();
  applied_count_ = 0;
  CommitLog::Position replay_from = log_.begin();
  if (have_snapshot_) {
    codec::Reader r(
        reinterpret_cast<const uint8_t*>(snap_.store_blob.data()),
        snap_.store_blob.size());
    if (store.RestoreFrom(r)) {
      frontier_ = snap_.frontier;
      applied_count_ = snap_.applied_count;
      replay_from = snap_.log_pos;
    }
    // A corrupt blob falls back to full-log replay from a fresh store: the
    // store was just cleared by the failed RestoreFrom.
  }
  log_.ReplayFrom(replay_from,
                  [&](const common::Dot& dot, const smr::Command& cmd) {
                    if (!frontier_.Insert(dot)) {
                      return;  // already in the snapshot
                    }
                    store.Apply(cmd);
                    applied_count_ += CountOps(cmd);
                  });
  appends_since_snapshot_ = 0;
  return applied_count_;
}

bool ShardDurability::Admit(const common::Dot& dot, const smr::Command& cmd) {
  if (!frontier_.Insert(dot)) {
    return false;
  }
  log_.Append(dot, cmd);
  appends_since_snapshot_++;
  applied_count_ += CountOps(cmd);
  return true;
}

bool ShardDurability::WriteSnapshot(const smr::StateMachine& store,
                                    uint64_t exec_floor) {
  // The snapshot's log position must only cover records that are actually on
  // disk, so sync first (which also makes persisting exec_floor sound — see
  // SnapshotMeta::exec_floor).
  log_.Sync();
  SnapshotMeta meta;
  meta.applied_count = applied_count_;
  meta.exec_floor = exec_floor;
  meta.log_pos = log_.position();
  meta.frontier = frontier_;
  codec::Writer w;
  store.SnapshotTo(w);
  meta.store_blob.assign(
      reinterpret_cast<const char*>(w.buffer().data()), w.buffer().size());
  if (!WriteSnapshotFile(dir_, meta)) {
    return false;
  }
  persisted_exec_floor_ = exec_floor;
  appends_since_snapshot_ = 0;
  return true;
}

size_t ShardDurability::StreamMissing(const DotFrontier& have,
                                      const CommitLog::ReplayFn& fn) {
  return log_.Replay([&](const common::Dot& dot, const smr::Command& cmd) {
    if (!have.Covers(dot)) {
      fn(dot, cmd);
    }
  });
}

void ShardDurability::NoteSeqFloor(uint64_t seq_floor) {
  if (persisted_seq_floor_ >= seq_floor + opts_.floor_refresh) {
    return;
  }
  uint64_t reserved = seq_floor + opts_.floor_slack;
  if (WriteFloorsFile(dir_, FloorRecord{reserved})) {
    persisted_seq_floor_ = reserved;
  }
}

uint64_t ShardDurability::CountOps(const smr::Command& cmd) {
  if (cmd.is_noop()) {
    return 0;
  }
  if (!cmd.is_batch()) {
    return 1;
  }
  // A batch's value leads with a varint sub-command count.
  codec::Reader r(reinterpret_cast<const uint8_t*>(cmd.value.data()),
                  cmd.value.size());
  uint64_t n = r.Varint();
  return r.ok() ? n : 0;
}

}  // namespace dur
