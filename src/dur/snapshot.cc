#include "src/dur/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <vector>

#include "src/codec/codec.h"
#include "src/dur/crc32.h"

namespace dur {

namespace {

constexpr uint32_t kSnapMagic = 0x4e535441u;   // 'ATSN' little-endian
constexpr uint32_t kFloorMagic = 0x4c465441u;  // 'ATFL'
constexpr uint8_t kVersion = 1;

// Writes `payload` to <dir>/<name> atomically with a
// [u32 magic][u8 version][u32 crc][payload] envelope.
bool WriteAtomic(const std::string& dir, const char* name, uint32_t magic,
                 const std::vector<uint8_t>& payload) {
  codec::Writer w;
  w.U32(magic);
  w.U8(kVersion);
  w.U32(Crc32(payload.data(), payload.size()));
  std::string tmp = dir + "/" + name + ".tmp";
  std::string final_path = dir + "/" + name;
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    return false;
  }
  auto write_all = [fd](const uint8_t* p, size_t left) {
    while (left > 0) {
      ssize_t n = ::write(fd, p, left);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return false;
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return true;
  };
  bool ok = write_all(w.buffer().data(), w.buffer().size()) &&
            write_all(payload.data(), payload.size());
  if (ok) {
    ok = ::fsync(fd) == 0;
  }
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

// Loads and envelope-checks <dir>/<name>; on success `payload` holds the
// verified payload bytes.
bool LoadVerified(const std::string& dir, const char* name, uint32_t magic,
                  std::vector<uint8_t>& payload) {
  std::string path = dir + "/" + name;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return false;
  }
  std::vector<uint8_t> bytes;
  uint8_t chunk[64 * 1024];
  for (;;) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  ::close(fd);
  constexpr size_t kEnvelope = 9;  // u32 magic + u8 version + u32 crc
  if (bytes.size() < kEnvelope) {
    return false;
  }
  codec::Reader r(bytes.data(), kEnvelope);
  if (r.U32() != magic || r.U8() != kVersion) {
    return false;
  }
  uint32_t crc = r.U32();
  if (!r.ok() ||
      Crc32(bytes.data() + kEnvelope, bytes.size() - kEnvelope) != crc) {
    return false;
  }
  payload.assign(bytes.begin() + kEnvelope, bytes.end());
  return true;
}

}  // namespace

bool WriteSnapshotFile(const std::string& dir, const SnapshotMeta& meta) {
  codec::Writer w;
  w.Varint(meta.applied_count);
  w.Varint(meta.exec_floor);
  w.Varint(meta.log_pos.segment);
  w.Varint(meta.log_pos.offset);
  meta.frontier.EncodeTo(w);
  w.Bytes(meta.store_blob);
  return WriteAtomic(dir, "snap.bin", kSnapMagic, w.buffer());
}

bool LoadSnapshotFile(const std::string& dir, SnapshotMeta& meta) {
  std::vector<uint8_t> payload;
  if (!LoadVerified(dir, "snap.bin", kSnapMagic, payload)) {
    return false;
  }
  codec::Reader r(payload.data(), payload.size());
  meta.applied_count = r.Varint();
  meta.exec_floor = r.Varint();
  meta.log_pos.segment = r.Varint();
  meta.log_pos.offset = r.Varint();
  if (!meta.frontier.DecodeFrom(r)) {
    return false;
  }
  meta.store_blob = r.Bytes();
  return r.ok();
}

bool WriteFloorsFile(const std::string& dir, const FloorRecord& rec) {
  codec::Writer w;
  w.Varint(rec.seq_floor);
  return WriteAtomic(dir, "floors.bin", kFloorMagic, w.buffer());
}

bool LoadFloorsFile(const std::string& dir, FloorRecord& rec) {
  std::vector<uint8_t> payload;
  if (!LoadVerified(dir, "floors.bin", kFloorMagic, payload)) {
    return false;
  }
  codec::Reader r(payload.data(), payload.size());
  rec.seq_floor = r.Varint();
  return r.ok();
}

}  // namespace dur
