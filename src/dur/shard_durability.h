// Per-shard durability facade: commit log + snapshots + executed-dot frontier
// + reserved sequence floors, under one directory (<data_dir>/shard-N/).
//
// Lifecycle:
//   Open()            — mkdir, open/repair the log, load the latest snapshot.
//   Recover(store)    — restore the snapshot blob into the store and replay
//                       the log tail past the snapshot position, building the
//                       frontier; returns ops applied.
//   Admit(dot, cmd)   — duplicate filter + log append. Called on every
//                       executed command *before* it is applied; returns false
//                       when the dot was already executed (restart replay or
//                       catch-up re-delivery) so the caller skips the apply.
//   WriteSnapshot()   — syncs the log, then atomically writes the store blob +
//                       frontier + log position.
//   StreamMissing()   — replays the full log, filtering by a peer's frontier;
//                       the catch-up sender side.
//
// Sequence floors: a restarting replica must never re-mint a dot it already
// used (a new command under an executed dot would be silently dropped by
// every peer's frontier). PersistFloors() reserves a block of sequence
// numbers ahead of the engine's current floor; recovery hands the reserved
// floor back to the engine so fresh submissions start above it.
#ifndef SRC_DUR_SHARD_DURABILITY_H_
#define SRC_DUR_SHARD_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/dur/commit_log.h"
#include "src/dur/frontier.h"
#include "src/dur/snapshot.h"
#include "src/smr/state_machine.h"

namespace dur {

class ShardDurability {
 public:
  struct Options {
    CommitLog::Options log;
    // Appended records between automatic snapshots (0 disables auto
    // snapshots; WriteSnapshot can still be called explicitly).
    uint64_t snapshot_every = 4096;
    // Sequence numbers reserved ahead of the engine floor per floors-file
    // write, and the refresh threshold (re-persist when the engine floor
    // gets within `floor_refresh` of the reserved value).
    uint64_t floor_slack = 4096;
    uint64_t floor_refresh = 1024;
  };

  ShardDurability(std::string dir, Options opts);

  // Creates the directory if needed, opens/repairs the log, and loads the
  // snapshot + floors files. Returns false when the directory is unusable.
  bool Open();

  // True when Open() found prior state (snapshot, log records, or floors).
  bool had_state() const { return had_state_; }

  // Restores snapshot blob into `store` (when present) and replays the log
  // tail, applying through `store` and populating the frontier. Returns the
  // recovered applied-op count.
  uint64_t Recover(smr::StateMachine& store);

  // Duplicate filter + append. True => new dot, logged; caller applies it.
  bool Admit(const common::Dot& dot, const smr::Command& cmd);

  bool SnapshotDue() const {
    return opts_.snapshot_every > 0 &&
           appends_since_snapshot_ >= opts_.snapshot_every;
  }

  // Log sync + atomic snapshot write. Resets the snapshot counter.
  // `exec_floor` is the engine's execution frontier at this moment (see
  // SnapshotMeta::exec_floor); pass 0 for engines without one.
  bool WriteSnapshot(const smr::StateMachine& store, uint64_t exec_floor = 0);

  // Streams every logged record not covered by `have`, in log order.
  size_t StreamMissing(const DotFrontier& have, const CommitLog::ReplayFn& fn);

  // Reserves sequence numbers: persists floor + slack when `seq_floor` is
  // within `floor_refresh` of the persisted reservation.
  void NoteSeqFloor(uint64_t seq_floor);
  uint64_t persisted_seq_floor() const { return persisted_seq_floor_; }

  // Execution frontier recorded by the snapshot Open() loaded (0 when there
  // was none). The recovered store already reflects everything below it.
  uint64_t persisted_exec_floor() const { return persisted_exec_floor_; }

  const DotFrontier& frontier() const { return frontier_; }
  uint64_t applied_count() const { return applied_count_; }
  CommitLog& log() { return log_; }
  const std::string& dir() const { return dir_; }

 private:
  // Ops a command contributes to the applied count (batches count their
  // sub-commands; noops count zero, matching the executor's accounting).
  static uint64_t CountOps(const smr::Command& cmd);

  std::string dir_;
  Options opts_;
  CommitLog log_;
  DotFrontier frontier_;
  SnapshotMeta snap_;
  bool have_snapshot_ = false;
  bool had_state_ = false;
  uint64_t applied_count_ = 0;
  uint64_t appends_since_snapshot_ = 0;
  uint64_t persisted_seq_floor_ = 0;
  uint64_t persisted_exec_floor_ = 0;
};

}  // namespace dur

#endif  // SRC_DUR_SHARD_DURABILITY_H_
