// Atomic snapshot and floor files.
//
// A snapshot captures a shard's applied state (store blob via
// StateMachine::SnapshotTo), the executed-dot frontier, the applied op count,
// and the commit-log position the snapshot corresponds to — recovery restores
// the blob and replays only the log tail past that position. Files are
// written tmp + fsync + rename so a crash mid-write leaves the previous
// snapshot intact, and the payload is CRC-framed so a corrupt file is
// rejected (falling back to full-log replay) rather than restored.
//
// The floors file is a tiny separately-updated record of reserved sequence
// floors (see ShardDurability::PersistFloors): it must survive crashes that
// happen between snapshots, so it gets its own atomic file instead of riding
// in the snapshot.
#ifndef SRC_DUR_SNAPSHOT_H_
#define SRC_DUR_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "src/dur/commit_log.h"
#include "src/dur/frontier.h"

namespace dur {

struct SnapshotMeta {
  uint64_t applied_count = 0;
  // Engine execution frontier at snapshot time (e.g. Mencius execute_upto_;
  // 0 for engines without one). Restored into RestartHint::exec_floor so a
  // recovered total-order engine resumes executing where the snapshot left
  // off instead of revoking its way up from slot 0. Safe to persist here —
  // and only here — because WriteSnapshot syncs the log first: every slot
  // below the frontier is already on disk, so a crash can never leave the
  // frontier ahead of the recovered store.
  uint64_t exec_floor = 0;
  CommitLog::Position log_pos;  // replay resumes here
  DotFrontier frontier;
  std::string store_blob;  // opaque StateMachine::SnapshotTo bytes
};

// Writes `meta` to <dir>/snap.bin atomically. Returns false on I/O failure
// (the previous snapshot, if any, is left untouched).
bool WriteSnapshotFile(const std::string& dir, const SnapshotMeta& meta);

// Loads <dir>/snap.bin. Returns false when absent, torn, or corrupt.
bool LoadSnapshotFile(const std::string& dir, SnapshotMeta& meta);

struct FloorRecord {
  uint64_t seq_floor = 0;
};

bool WriteFloorsFile(const std::string& dir, const FloorRecord& rec);
bool LoadFloorsFile(const std::string& dir, FloorRecord& rec);

}  // namespace dur

#endif  // SRC_DUR_SNAPSHOT_H_
