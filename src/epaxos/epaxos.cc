#include "src/epaxos/epaxos.h"

#include <algorithm>

#include "src/common/check.h"

namespace epaxos {

using common::Ballot;
using common::DepSet;
using common::Dot;
using common::ProcessId;
using common::Quorum;

EPaxosEngine::EPaxosEngine(Config config)
    : config_(config),
      index_(smr::MakeKeyIndex(config.index_mode)),
      executor_(exec::BatchOrder::kSeqDot,
                [this](const Dot& dot, const smr::Command& cmd) {
                  stats_.executed++;
                  infos_.Erase(dot);
                  ctx_->Executed(dot, cmd);
                }) {
  CHECK_GE(config_.n, 3u);
}

void EPaxosEngine::OnStart() {
  if (config_.by_proximity.empty()) {
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        config_.by_proximity.push_back(p);
      }
    }
  }
  CHECK_EQ(config_.by_proximity.size(), static_cast<size_t>(n_) - 1);
  CHECK_EQ(config_.n, n_);
}

uint64_t EPaxosEngine::MaxConflictSeq(const DepSet& deps) const {
  uint64_t max_seq = 0;
  for (const Dot& d : deps) {
    const uint64_t* s = seqnos_.Find(d);
    if (s != nullptr) {
      max_seq = std::max(max_seq, *s);
    }
  }
  return max_seq;
}

Quorum EPaxosEngine::PickQuorum(size_t size) const {
  Quorum q;
  q.Add(self_);
  // Closest responsive peers first; fall back to suspected ones when short.
  for (ProcessId p : config_.by_proximity) {
    if (q.size() >= size) {
      return q;
    }
    if (suspected_.count(p) == 0) {
      q.Add(p);
    }
  }
  for (ProcessId p : config_.by_proximity) {
    if (q.size() >= size) {
      break;
    }
    q.Add(p);
  }
  return q;
}

void EPaxosEngine::Submit(smr::Command cmd) {
  stats_.submitted++;
  Dot dot{self_, next_seq_++};
  bool nfr = NfrRead(cmd);
  size_t fq_size = nfr ? config_.MajoritySize() : config_.FastQuorumSize();
  Quorum q = PickQuorum(fq_size);

  msg::EpPreAccept pre;
  pre.dot = dot;
  pre.cmd = std::move(cmd);
  index_->CollectInto(pre.cmd, dot, pre.deps);
  pre.seqno = MaxConflictSeq(pre.deps) + 1;
  pre.quorum = q;
  pre.nfr = nfr;
  for (ProcessId p : q) {
    if (p != self_) {
      SendTo(p, pre);
    }
  }
  SendTo(self_, pre);
}

void EPaxosEngine::HandlePreAccept(ProcessId from, const msg::EpPreAccept& m) {
  Info& info = GetInfo(m.dot);
  if (info.phase != Phase::kNone || info.bal != 0) {
    return;  // already moved past pre-accept (e.g. recovery touched this id)
  }
  // Merge the leader's deps/seq with the local view, straight into the per-command
  // state (no temporary set).
  index_->CollectInto(m.cmd, m.dot, info.deps);
  info.deps.UnionWith(m.deps);
  uint64_t seqno = std::max(m.seqno, MaxConflictSeq(info.deps) + 1);
  if (!m.nfr) {
    index_->Record(m.dot, m.cmd);
    seqnos_[m.dot] = seqno;
  }
  info.phase = Phase::kPreAccepted;
  info.cmd = m.cmd;
  info.seqno = seqno;
  info.quorum = m.quorum;
  info.nfr = m.nfr;
  msg::EpPreAcceptAck ack;
  ack.dot = m.dot;
  ack.deps = info.deps;
  ack.seqno = seqno;
  SendTo(from, ack);
}

void EPaxosEngine::HandlePreAcceptAck(ProcessId from, const msg::EpPreAcceptAck& m) {
  Info* found = infos_.Find(m.dot);
  if (found == nullptr) {
    return;
  }
  Info& info = *found;
  if (m.dot.proc != self_ || info.phase != Phase::kPreAccepted ||
      !info.quorum.Contains(from) || info.preaccept_acked.Contains(from)) {
    return;
  }
  info.preaccept_acked.Add(from);
  info.preaccept_acks.push_back(m);
  if (info.preaccept_acked != info.quorum) {
    return;
  }

  if (info.nfr) {
    // NFR read: commit after one round trip to a majority with the union of deps.
    DepSet deps;
    uint64_t seqno = 0;
    for (const auto& ack : info.preaccept_acks) {
      deps.UnionWith(ack.deps);
      seqno = std::max(seqno, ack.seqno);
    }
    info.deps = std::move(deps);
    info.seqno = seqno;
    stats_.fast_paths++;
    CommitAndBroadcast(m.dot, info, /*fast_path=*/true);
    return;
  }

  // EPaxos fast-path condition: every reply matches the leader's own (deps, seq)
  // exactly. The leader processed its own EpPreAccept inline first, so its stored
  // (deps, seqno) are its own contribution; all replies must equal it.
  bool matching = true;
  for (const auto& ack : info.preaccept_acks) {
    if (ack.deps != info.deps || ack.seqno != info.seqno) {
      matching = false;
      break;
    }
  }
  if (matching) {
    stats_.fast_paths++;
    CommitAndBroadcast(m.dot, info, /*fast_path=*/true);
    return;
  }
  // Slow path: union deps, max seq, then Paxos-Accept with a majority.
  stats_.slow_paths++;
  DepSet deps;
  uint64_t seqno = 0;
  for (const auto& ack : info.preaccept_acks) {
    deps.UnionWith(ack.deps);
    seqno = std::max(seqno, ack.seqno);
  }
  RunAcceptPhase(m.dot, info, info.cmd, std::move(deps), seqno,
                 common::InitialBallot(self_));
}

void EPaxosEngine::RunAcceptPhase(const Dot& dot, Info& info, const smr::Command& cmd,
                                  DepSet deps, uint64_t seqno, Ballot ballot) {
  info.proposal_ballot = ballot;
  info.accept_acked = Quorum();
  msg::EpAccept acc;
  acc.dot = dot;
  acc.cmd = cmd;
  acc.deps = std::move(deps);
  acc.seqno = seqno;
  acc.ballot = ballot;
  // A majority acknowledgement suffices; send to the closest responsive majority.
  Quorum q = PickQuorum(config_.MajoritySize());
  for (ProcessId p : q) {
    if (p != self_) {
      SendTo(p, acc);
    }
  }
  SendTo(self_, acc);
}

void EPaxosEngine::HandleAccept(ProcessId from, const msg::EpAccept& m) {
  Info& info = GetInfo(m.dot);
  if (info.phase == Phase::kCommitted || info.bal > m.ballot) {
    return;
  }
  info.phase = Phase::kAccepted;
  info.cmd = m.cmd;
  info.deps = m.deps;
  info.seqno = m.seqno;
  info.bal = m.ballot;
  info.abal = m.ballot;
  if (!NfrRead(m.cmd)) {
    index_->Record(m.dot, m.cmd);
    seqnos_[m.dot] = m.seqno;
  }
  msg::EpAcceptAck ack;
  ack.dot = m.dot;
  ack.ballot = m.ballot;
  SendTo(from, ack);
}

void EPaxosEngine::HandleAcceptAck(ProcessId from, const msg::EpAcceptAck& m) {
  Info* found = infos_.Find(m.dot);
  if (found == nullptr) {
    return;
  }
  Info& info = *found;
  if (info.proposal_ballot != m.ballot || info.bal != m.ballot ||
      info.accept_acked.Contains(from)) {
    return;
  }
  info.accept_acked.Add(from);
  if (info.accept_acked.size() == config_.MajoritySize()) {
    CommitAndBroadcast(m.dot, info, /*fast_path=*/false);
  }
}

void EPaxosEngine::CommitAndBroadcast(const Dot& dot, Info& info, bool fast_path) {
  msg::EpCommit commit;
  commit.dot = dot;
  commit.cmd = info.cmd;
  commit.deps = info.deps;
  commit.seqno = info.seqno;
  for (ProcessId p = 0; p < n_; p++) {
    if (p != self_) {
      SendTo(p, commit);
    }
  }
  ApplyCommit(dot, commit.cmd, commit.deps, commit.seqno, fast_path);
}

void EPaxosEngine::HandleCommit(ProcessId from, const msg::EpCommit& m) {
  ApplyCommit(m.dot, m.cmd, m.deps, m.seqno, /*fast_path=*/false);
}

void EPaxosEngine::ApplyCommit(const Dot& dot, const smr::Command& cmd,
                               const DepSet& deps, uint64_t seqno, bool fast_path) {
  if (executor_.IsCommitted(dot)) {
    return;
  }
  Info& info = GetInfo(dot);
  info.phase = Phase::kCommitted;
  info.cmd = cmd;
  info.deps = deps;
  info.seqno = seqno;
  if (!NfrRead(cmd)) {
    index_->Record(dot, cmd);
    seqnos_[dot] = seqno;
  }
  stats_.committed++;
  ctx_->Committed(dot, cmd, fast_path);
  executor_.Commit(dot, cmd, deps, seqno);
}

// ---------------------------------------------------------------------------
// Conservative recovery (see header).
// ---------------------------------------------------------------------------

void EPaxosEngine::OnSuspect(ProcessId p) {
  if (p == self_) {
    return;
  }
  suspected_.insert(p);
  std::vector<Dot> to_recover;
  infos_.ForEach([&](const Dot& dot, const Info& info) {
    if (dot.proc == p && info.phase != Phase::kCommitted) {
      to_recover.push_back(dot);
    }
  });
  for (const Dot& dot : to_recover) {
    Info& info = GetInfo(dot);
    Ballot b = common::NextRecoveryBallot(self_, info.bal, n_);
    info.rec_ballot = b;
    info.rec_acked = Quorum();
    info.rec_acks.clear();
    msg::EpPrepare prep;
    prep.dot = dot;
    prep.ballot = b;
    SendAll(prep);
  }
}

void EPaxosEngine::HandlePrepare(ProcessId from, const msg::EpPrepare& m) {
  Info& info = GetInfo(m.dot);
  if (info.phase != Phase::kCommitted && info.bal >= m.ballot) {
    return;
  }
  if (info.phase != Phase::kCommitted) {
    info.bal = m.ballot;
  }
  msg::EpPrepareAck ack;
  ack.dot = m.dot;
  ack.cmd = info.cmd;
  ack.deps = info.deps;
  ack.seqno = info.seqno;
  ack.phase = static_cast<uint8_t>(info.phase);
  ack.accepted_ballot = info.abal;
  ack.ballot = m.ballot;
  ack.was_initial_coordinator_reply = (m.dot.proc == self_);
  SendTo(from, ack);
}

void EPaxosEngine::HandlePrepareAck(ProcessId from, const msg::EpPrepareAck& m) {
  Info* found = infos_.Find(m.dot);
  if (found == nullptr) {
    return;
  }
  Info& info = *found;
  if (info.rec_ballot != m.ballot || info.rec_acked.Contains(from)) {
    return;
  }
  info.rec_acked.Add(from);
  info.rec_acks.push_back(m);
  if (info.rec_acked.size() < config_.MajoritySize()) {
    return;
  }
  // Committed anywhere -> adopt. Accepted -> re-run Accept with the highest-ballot
  // value. Pre-accepted only -> conservative: union deps / max seq, Accept phase.
  const msg::EpPrepareAck* committed = nullptr;
  const msg::EpPrepareAck* accepted = nullptr;
  bool any_preaccepted = false;
  for (const auto& ack : info.rec_acks) {
    auto phase = static_cast<Phase>(ack.phase);
    if (phase == Phase::kCommitted) {
      committed = &ack;
    } else if (phase == Phase::kAccepted &&
               (accepted == nullptr || ack.accepted_ballot > accepted->accepted_ballot)) {
      accepted = &ack;
    } else if (phase == Phase::kPreAccepted) {
      any_preaccepted = true;
    }
  }
  if (committed != nullptr) {
    // Copy out of info.rec_acks first: ApplyCommit can execute the command
    // immediately, and the executed callback erases infos_[dot] — destroying the
    // rec_acks vector `committed` points into (and, with DotMap's backward-shift
    // deletion, possibly moving neighbouring entries too).
    msg::EpCommit commit;
    commit.dot = m.dot;
    commit.cmd = committed->cmd;
    commit.deps = committed->deps;
    commit.seqno = committed->seqno;
    ApplyCommit(m.dot, commit.cmd, commit.deps, commit.seqno, /*fast_path=*/false);
    // Let others know too.
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, commit);
      }
    }
    return;
  }
  if (accepted != nullptr) {
    RunAcceptPhase(m.dot, info, accepted->cmd, accepted->deps, accepted->seqno,
                   m.ballot);
    return;
  }
  if (any_preaccepted) {
    DepSet deps;
    uint64_t seqno = 0;
    smr::Command cmd;
    for (const auto& ack : info.rec_acks) {
      if (static_cast<Phase>(ack.phase) == Phase::kPreAccepted) {
        deps.UnionWith(ack.deps);
        seqno = std::max(seqno, ack.seqno);
        cmd = ack.cmd;
      }
    }
    RunAcceptPhase(m.dot, info, cmd, std::move(deps), seqno, m.ballot);
    return;
  }
  // Nobody saw the command: commit a noOp in its place.
  RunAcceptPhase(m.dot, info, smr::MakeNoOp(), DepSet(), 0, m.ballot);
}

void EPaxosEngine::OnMessage(ProcessId from, const msg::Message& m) {
  if (auto* v = msg::get_if<msg::EpPreAccept>(&m)) {
    HandlePreAccept(from, *v);
  } else if (auto* v = msg::get_if<msg::EpPreAcceptAck>(&m)) {
    HandlePreAcceptAck(from, *v);
  } else if (auto* v = msg::get_if<msg::EpAccept>(&m)) {
    HandleAccept(from, *v);
  } else if (auto* v = msg::get_if<msg::EpAcceptAck>(&m)) {
    HandleAcceptAck(from, *v);
  } else if (auto* v = msg::get_if<msg::EpCommit>(&m)) {
    HandleCommit(from, *v);
  } else if (auto* v = msg::get_if<msg::EpPrepare>(&m)) {
    HandlePrepare(from, *v);
  } else if (auto* v = msg::get_if<msg::EpPrepareAck>(&m)) {
    HandlePrepareAck(from, *v);
  }
}

}  // namespace epaxos
