#include "src/epaxos/epaxos.h"

#include <algorithm>

#include "src/common/check.h"

namespace epaxos {

using common::Ballot;
using common::DepSet;
using common::Dot;
using common::ProcessId;
using common::Quorum;

EPaxosEngine::EPaxosEngine(Config config)
    : config_(config),
      index_(smr::MakeKeyIndex(config.index_mode)),
      executor_(exec::BatchOrder::kSeqDot,
                [this](const Dot& dot, const smr::Command& cmd) {
                  stats_.executed++;
                  infos_.Erase(dot);
                  ctx_->Executed(dot, cmd);
                }) {
  CHECK_GE(config_.n, 3u);
}

void EPaxosEngine::OnStart() {
  if (config_.by_proximity.empty()) {
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        config_.by_proximity.push_back(p);
      }
    }
  }
  CHECK_EQ(config_.by_proximity.size(), static_cast<size_t>(n_) - 1);
  CHECK_EQ(config_.n, n_);
  commit_horizon_.assign(n_, 0);
}

uint64_t EPaxosEngine::MaxConflictSeq(const DepSet& deps) const {
  uint64_t max_seq = 0;
  for (const Dot& d : deps) {
    const uint64_t* s = seqnos_.Find(d);
    if (s != nullptr) {
      max_seq = std::max(max_seq, *s);
    }
  }
  return max_seq;
}

Quorum EPaxosEngine::PickQuorum(size_t size) const {
  Quorum q;
  q.Add(self_);
  // Closest responsive peers first; fall back to suspected ones when short.
  for (ProcessId p : config_.by_proximity) {
    if (q.size() >= size) {
      return q;
    }
    if (suspected_.count(p) == 0) {
      q.Add(p);
    }
  }
  for (ProcessId p : config_.by_proximity) {
    if (q.size() >= size) {
      break;
    }
    q.Add(p);
  }
  return q;
}

void EPaxosEngine::Submit(smr::Command cmd) {
  stats_.submitted++;
  Dot dot{self_, next_seq_++};
  bool nfr = NfrRead(cmd);
  size_t fq_size = nfr ? config_.MajoritySize() : config_.FastQuorumSize();
  Quorum q = PickQuorum(fq_size);

  msg::EpPreAccept pre;
  pre.dot = dot;
  pre.cmd = std::move(cmd);
  index_->CollectInto(pre.cmd, dot, pre.deps);
  pre.seqno = MaxConflictSeq(pre.deps) + 1;
  pre.quorum = q;
  pre.nfr = nfr;
  for (ProcessId p : q) {
    if (p != self_) {
      SendTo(p, pre);
    }
  }
  SendTo(self_, pre);
  if (config_.commit_timeout > 0) {
    ctx_->SetTimer(config_.commit_timeout, (dot.seq << 2) | kCommitTimeoutToken);
  }
}

void EPaxosEngine::HandlePreAccept(ProcessId from, const msg::EpPreAccept& m) {
  if (executor_.IsCommitted(m.dot)) {
    return;  // duplicate delivery after the command was decided locally
  }
  Info& info = GetInfo(m.dot);
  if (info.phase != Phase::kNone || info.bal != 0) {
    return;  // already moved past pre-accept (e.g. recovery touched this id)
  }
  if (m.dot.proc != self_) {
    // Watch for the commit so a lost EpCommit (or a partitioned leader) cannot
    // leave this command pending here forever.
    ArmWatch(m.dot, info);
  }
  // Merge the leader's deps/seq with the local view, straight into the per-command
  // state (no temporary set).
  index_->CollectInto(m.cmd, m.dot, info.deps);
  info.deps.UnionWith(m.deps);
  uint64_t seqno = std::max(m.seqno, MaxConflictSeq(info.deps) + 1);
  if (!m.nfr) {
    index_->Record(m.dot, m.cmd);
    seqnos_[m.dot] = seqno;
  }
  info.phase = Phase::kPreAccepted;
  info.cmd = m.cmd;
  info.seqno = seqno;
  info.quorum = m.quorum;
  info.nfr = m.nfr;
  msg::EpPreAcceptAck ack;
  ack.dot = m.dot;
  ack.deps = info.deps;
  ack.seqno = seqno;
  SendTo(from, ack);
}

void EPaxosEngine::HandlePreAcceptAck(ProcessId from, const msg::EpPreAcceptAck& m) {
  Info* found = infos_.Find(m.dot);
  if (found == nullptr) {
    return;
  }
  Info& info = *found;
  if (m.dot.proc != self_ || info.phase != Phase::kPreAccepted ||
      !info.quorum.Contains(from) || info.preaccept_acked.Contains(from)) {
    return;
  }
  if (info.bal != 0) {
    // A recovery Prepare touched this identifier: our implicit ballot-0 proposal is
    // dead. Committing (fast or slow) here could contradict the recoverer's choice.
    return;
  }
  // Fold the ack into the running aggregates instead of storing it: the decision
  // below needs only the union / max over all acks and whether every reply matched
  // the leader's own (deps, seqno) — which are fixed for the whole collection (set
  // when the leader processed its own EpPreAccept, mutated again only after the
  // decision). Storing the acks was the leader-side per-command allocation.
  info.preaccept_acked.Add(from);
  info.pre_union_deps.UnionWith(m.deps);
  info.pre_union_seqno = std::max(info.pre_union_seqno, m.seqno);
  if (m.deps != info.deps || m.seqno != info.seqno) {
    info.pre_acks_match = false;
  }
  if (info.preaccept_acked != info.quorum) {
    return;
  }

  if (info.nfr) {
    // NFR read: commit after one round trip to a majority with the union of deps.
    info.deps = std::move(info.pre_union_deps);
    info.seqno = info.pre_union_seqno;
    stats_.fast_paths++;
    CommitAndBroadcast(m.dot, info, /*fast_path=*/true);
    return;
  }

  // EPaxos fast-path condition: every reply matches the leader's own (deps, seq)
  // exactly. The leader processed its own EpPreAccept inline first, so its stored
  // (deps, seqno) are its own contribution; all replies must equal it.
  if (info.pre_acks_match) {
    stats_.fast_paths++;
    CommitAndBroadcast(m.dot, info, /*fast_path=*/true);
    return;
  }
  // Slow path: union deps, max seq, then Paxos-Accept with a majority. The
  // aggregates are dead after this (further acks are blocked by preaccept_acked),
  // so the union set is moved out, not copied.
  stats_.slow_paths++;
  RunAcceptPhase(m.dot, info, info.cmd, std::move(info.pre_union_deps),
                 info.pre_union_seqno, common::InitialBallot(self_));
}

void EPaxosEngine::RunAcceptPhase(const Dot& dot, Info& info, const smr::Command& cmd,
                                  DepSet deps, uint64_t seqno, Ballot ballot) {
  info.proposal_ballot = ballot;
  info.accept_acked = Quorum();
  msg::EpAccept acc;
  acc.dot = dot;
  acc.cmd = cmd;
  acc.deps = std::move(deps);
  acc.seqno = seqno;
  acc.ballot = ballot;
  // A majority acknowledgement suffices; send to the closest responsive majority.
  Quorum q = PickQuorum(config_.MajoritySize());
  for (ProcessId p : q) {
    if (p != self_) {
      SendTo(p, acc);
    }
  }
  SendTo(self_, acc);
}

void EPaxosEngine::HandleAccept(ProcessId from, const msg::EpAccept& m) {
  if (executor_.IsCommitted(m.dot)) {
    return;  // already decided locally; never re-accept (duplicates, stale recovery)
  }
  Info& info = GetInfo(m.dot);
  if (info.phase == Phase::kCommitted || info.bal > m.ballot) {
    return;
  }
  info.phase = Phase::kAccepted;
  info.cmd = m.cmd;
  info.deps = m.deps;
  info.seqno = m.seqno;
  info.bal = m.ballot;
  info.abal = m.ballot;
  if (!NfrRead(m.cmd)) {
    index_->Record(m.dot, m.cmd);
    seqnos_[m.dot] = m.seqno;
  }
  msg::EpAcceptAck ack;
  ack.dot = m.dot;
  ack.ballot = m.ballot;
  SendTo(from, ack);
}

void EPaxosEngine::HandleAcceptAck(ProcessId from, const msg::EpAcceptAck& m) {
  Info* found = infos_.Find(m.dot);
  if (found == nullptr) {
    return;
  }
  Info& info = *found;
  if (info.proposal_ballot != m.ballot || info.bal != m.ballot ||
      info.accept_acked.Contains(from)) {
    return;
  }
  info.accept_acked.Add(from);
  if (info.accept_acked.size() == config_.MajoritySize()) {
    CommitAndBroadcast(m.dot, info, /*fast_path=*/false);
  }
}

void EPaxosEngine::CommitAndBroadcast(const Dot& dot, Info& info, bool fast_path) {
  msg::EpCommit commit;
  commit.dot = dot;
  commit.cmd = info.cmd;
  commit.deps = info.deps;
  commit.seqno = info.seqno;
  for (ProcessId p = 0; p < n_; p++) {
    if (p != self_) {
      SendTo(p, commit);
    }
  }
  ApplyCommit(dot, commit.cmd, commit.deps, commit.seqno, fast_path);
}

void EPaxosEngine::HandleCommit(ProcessId from, const msg::EpCommit& m) {
  ApplyCommit(m.dot, m.cmd, m.deps, m.seqno, /*fast_path=*/false);
}

void EPaxosEngine::ApplyCommit(const Dot& dot, const smr::Command& cmd,
                               const DepSet& deps, uint64_t seqno, bool fast_path) {
  if (executor_.IsCommitted(dot)) {
    return;
  }
  Info& info = GetInfo(dot);
  info.phase = Phase::kCommitted;
  info.cmd = cmd;
  info.deps = deps;
  info.seqno = seqno;
  if (!NfrRead(cmd)) {
    index_->Record(dot, cmd);
    seqnos_[dot] = seqno;
  }
  stats_.committed++;
  ctx_->Committed(dot, cmd, fast_path);
  RememberDecided(dot, cmd, deps, seqno);
  // Every dependency must eventually commit for `dot` to execute; track unknown
  // dependencies so the recovery scan can find them if their coordinator failed.
  // Inserting may rehash infos_, so `info` is dead from here on.
  for (const Dot& dep : deps) {
    if (executor_.IsCommitted(dep)) {
      continue;
    }
    Info& di = GetInfo(dep);
    // A committed command is blocked on this dependency; if its commit never
    // arrives (lost on the wire), the watch runs explicit prepare without
    // requiring the leader to be suspected.
    ArmWatch(dep, di);
    bool needs_scan = suspected_.count(dep.proc) > 0;
    if (!peer_floors_.empty()) {
      auto it = peer_floors_.find(dep.proc);
      if (it != peer_floors_.end() && dep.seq < it->second) {
        // Dependency owned by a dead incarnation: nobody will finish it for us.
        di.orphaned = true;
        any_orphaned_ = true;
        needs_scan = true;
      }
    }
    if (restarted_) {
      if (di.next_recovery_at == 0) {
        // Grace before this engine recovers it: the dep may simply be in flight.
        di.next_recovery_at = ctx_->Now() + config_.recovery_retry_interval;
      }
      needs_scan = true;
    }
    if (needs_scan) {
      ArmScanTimer();
    }
  }
  // Identifier-space gap watch: per-process identifiers are dense, so committing q:s
  // while earlier identifiers of q are unknown here means their commits were lost
  // (e.g. dropped across a partition). Watch them all *now* — compressed dependency
  // sets only reveal the newest missing identifier, so waiting for dep chains would
  // recover one identifier per commit_timeout and wedge the executor for
  // gap*timeout.
  if (config_.commit_timeout > 0 && dot.proc != self_) {
    uint64_t& horizon = commit_horizon_[dot.proc];
    for (uint64_t s = dot.seq; s > horizon + 1;) {
      Dot missing{dot.proc, --s};
      if (!executor_.IsCommitted(missing)) {
        ArmWatch(missing, GetInfo(missing));
      }
    }
    horizon = std::max(horizon, dot.seq);
  }
  executor_.Commit(dot, cmd, deps, seqno);
}

void EPaxosEngine::RememberDecided(const Dot& dot, const smr::Command& cmd,
                                   const DepSet& deps, uint64_t seqno) {
  Decided& d = decided_[dot];
  d.cmd = cmd;
  d.deps = deps;
  d.seqno = seqno;
  if (decided_ring_.size() < decided_cache_limit_) {
    decided_ring_.push_back(dot);
  } else {
    decided_.Erase(decided_ring_[decided_ring_pos_]);
    decided_ring_[decided_ring_pos_] = dot;
    decided_ring_pos_ = (decided_ring_pos_ + 1) % decided_cache_limit_;
  }
}

// ---------------------------------------------------------------------------
// Conservative recovery (see header).
// ---------------------------------------------------------------------------

void EPaxosEngine::OnSuspect(ProcessId p) {
  if (p == self_ || !suspected_.insert(p).second) {
    return;
  }
  if (RecoveryScan()) {
    ArmScanTimer();
  }
}

void EPaxosEngine::OnRestore(ProcessId p, uint64_t seq_floor) {
  if (p == self_) {
    return;
  }
  suspected_.erase(p);
  uint64_t& floor = peer_floors_[p];
  floor = std::max(floor, seq_floor);
  // Dots below the floor belong to the dead incarnation: it will never finish them,
  // and p is no longer suspected, so mark them to keep the scan interested.
  std::vector<Dot> stale;
  infos_.ForEach([&](const Dot& dot, const Info& info) {
    if (dot.proc == p && dot.seq < floor && !info.orphaned &&
        info.phase != Phase::kCommitted) {
      stale.push_back(dot);
    }
  });
  for (const Dot& dot : stale) {
    GetInfo(dot).orphaned = true;
    any_orphaned_ = true;
  }
  if (!stale.empty()) {
    ArmScanTimer();
  }
}

smr::RestartHint EPaxosEngine::restart_hint() const {
  return smr::RestartHint{next_seq_, 0};
}

void EPaxosEngine::ApplyRestartHint(const smr::RestartHint& hint) {
  next_seq_ = std::max(next_seq_, hint.seq_floor);
  restart_floor_ = next_seq_;
  restarted_ = true;
  // Old commands resurface as dependencies of new commits; the scan recovers them.
  ArmScanTimer();
}

void EPaxosEngine::ArmScanTimer() {
  if (!scan_timer_armed_) {
    scan_timer_armed_ = true;
    ctx_->SetTimer(config_.recovery_scan_interval, kRecoveryScanToken);
  }
}

void EPaxosEngine::OnTimer(uint64_t token) {
  if (token == kRecoveryScanToken) {
    scan_timer_armed_ = false;
    if (RecoveryScan()) {
      ArmScanTimer();
    }
    return;
  }
  if ((token & 3) == kCommitTimeoutToken) {
    Dot dot{self_, token >> 2};
    if (executor_.IsCommitted(dot)) {
      return;
    }
    Info* found = infos_.Find(dot);
    if (found == nullptr) {
      return;
    }
    StartRecovery(dot, *found);
    ctx_->SetTimer(config_.commit_timeout, token);
    return;
  }
  if ((token & 3) == kWatchToken) {
    uint64_t packed = token >> 2;
    Dot dot{static_cast<ProcessId>(packed >> 44), packed & ((uint64_t{1} << 44) - 1)};
    if (executor_.IsCommitted(dot)) {
      return;
    }
    Info* found = infos_.Find(dot);
    if (found == nullptr) {
      return;  // reclaimed (e.g. restart); the recovery scan owns it now
    }
    // The commit outcome never reached us within the timeout: run explicit prepare
    // ourselves (safe against a live leader — Prepare carries a higher ballot and
    // learns any committed or accepted value from the quorum).
    StartRecovery(dot, *found);
    ctx_->SetTimer(config_.commit_timeout, token);
  }
}

void EPaxosEngine::ArmWatch(const Dot& dot, Info& info) {
  if (config_.commit_timeout <= 0 || info.watched) {
    return;
  }
  CHECK_LT(dot.seq, uint64_t{1} << 44);
  info.watched = true;
  ctx_->SetTimer(config_.commit_timeout,
                 (((static_cast<uint64_t>(dot.proc) << 44) | dot.seq) << 2) |
                     kWatchToken);
}

bool EPaxosEngine::RecoveryScan() {
  if (suspected_.empty() && !restarted_ && !any_orphaned_) {
    return false;
  }
  // Recover every known uncommitted command coordinated by a suspected process (or
  // orphaned by a restart; or, on a restarted engine, any pending identifier that is
  // not one of our own new commands). New ballots are only started if the previous
  // attempt has had time to finish.
  std::vector<Dot> to_recover;
  std::vector<Dot> grace;
  bool any_pending = false;
  common::Time now = ctx_->Now();
  infos_.ForEach([&](const Dot& dot, const Info& info) {
    if (info.phase == Phase::kCommitted) {
      return;
    }
    bool direct = suspected_.count(dot.proc) > 0 || info.orphaned;
    if (!direct && !(restarted_ &&
                     !(dot.proc == self_ && dot.seq >= restart_floor_))) {
      return;
    }
    any_pending = true;
    if (!direct && info.next_recovery_at == 0) {
      // Restart-driven eligibility gets a grace period: the command may simply be
      // in flight at its live coordinator.
      grace.push_back(dot);
      return;
    }
    if (info.next_recovery_at > now) {
      return;
    }
    to_recover.push_back(dot);
  });
  for (const Dot& dot : grace) {
    GetInfo(dot).next_recovery_at = now + config_.recovery_retry_interval;
  }
  // Flat-map iteration order depends on the table layout; recover in canonical dot
  // order so seeded crash runs stay reproducible across map implementations.
  std::sort(to_recover.begin(), to_recover.end());
  for (const Dot& dot : to_recover) {
    if (executor_.IsCommitted(dot)) {
      continue;
    }
    StartRecovery(dot, GetInfo(dot));
  }
  return any_pending;
}

void EPaxosEngine::StartRecovery(const Dot& dot, Info& info) {
  stats_.recoveries_started++;
  Ballot b = common::NextRecoveryBallot(self_, std::max(info.bal, info.rec_ballot), n_);
  info.rec_ballot = b;
  info.rec_acked = Quorum();
  // One aggregate per recovering Info, allocated lazily (recovery is cold) and
  // reset in place for each ballot round.
  if (info.rec == nullptr) {
    info.rec = std::make_unique<RecState>();
  } else {
    *info.rec = RecState();
  }
  info.next_recovery_at = ctx_->Now() + config_.recovery_retry_interval;
  msg::EpPrepare prep;
  prep.dot = dot;
  prep.ballot = b;
  if (info.phase != Phase::kNone || info.rec_cmd_known) {
    prep.cmd = info.cmd;
    prep.has_cmd = true;
  }
  SendAll(prep);
}

void EPaxosEngine::HandlePrepare(ProcessId from, const msg::EpPrepare& m) {
  if (executor_.IsCommitted(m.dot)) {
    // Already decided here. Answer from the decided cache when possible; beyond its
    // horizon stay silent rather than claim ignorance — a kNone reply for an executed
    // command could let recovery commit a noOp in its place.
    const Decided* d = decided_.Find(m.dot);
    if (d != nullptr) {
      msg::EpCommit commit;
      commit.dot = m.dot;
      commit.cmd = d->cmd;
      commit.deps = d->deps;
      commit.seqno = d->seqno;
      SendTo(from, commit);
    }
    return;
  }
  Info& info = GetInfo(m.dot);
  if (info.phase != Phase::kCommitted && info.bal >= m.ballot) {
    return;
  }
  if (info.phase != Phase::kCommitted) {
    info.bal = m.ballot;
  }
  msg::EpPrepareAck ack;
  ack.dot = m.dot;
  ack.cmd = info.cmd;
  ack.deps = info.deps;
  ack.seqno = info.seqno;
  ack.phase = static_cast<uint8_t>(info.phase);
  ack.accepted_ballot = info.abal;
  ack.ballot = m.ballot;
  ack.was_initial_coordinator_reply = (m.dot.proc == self_);
  if (m.has_cmd && !NfrRead(m.cmd)) {
    // Report our *current* conflicts against the payload. A free-choice recovery
    // must take deps from a majority — any majority intersects the quorum that
    // (pre)accepted every conflicting commit, so the union below cannot miss an
    // ordering edge the way the recoverer's local index can (e.g. a commit whose
    // EpCommit to the recoverer was lost in a partition).
    index_->CollectInto(m.cmd, m.dot, ack.fresh_deps);
    ack.fresh_seqno = MaxConflictSeq(ack.fresh_deps) + 1;
  }
  SendTo(from, ack);
}

void EPaxosEngine::HandlePrepareAck(ProcessId from, const msg::EpPrepareAck& m) {
  Info* found = infos_.Find(m.dot);
  if (found == nullptr) {
    return;
  }
  Info& info = *found;
  if (info.rec_ballot != m.ballot || info.rec_acked.Contains(from)) {
    return;
  }
  if (info.rec == nullptr) {
    return;  // no recovery round live for this ballot (defensive; rec_ballot gated)
  }
  info.rec_acked.Add(from);
  // Fold the ack into this round's running aggregates (RecState) instead of
  // storing it: every criterion of the decision below — adopt-any-committed,
  // highest-ballot accepted, the coordinator-uncommitted proof, the first
  // non-coordinator pre-accept and whether later peers matched it, the
  // conservative union, and the majority-fresh conflict union — is computable
  // one ack at a time. (Ties in accepted_ballot keep first-arrival, matching the
  // old scan's strict `>` over arrival order.)
  RecState& rec = *info.rec;
  switch (static_cast<Phase>(m.phase)) {
    case Phase::kCommitted:
      // All committed reports for one dot carry the same decided value.
      rec.committed = true;
      rec.committed_cmd = m.cmd;
      rec.committed_deps = m.deps;
      rec.committed_seqno = m.seqno;
      break;
    case Phase::kAccepted:
      if (!rec.accepted || m.accepted_ballot > rec.best_abal) {
        rec.accepted = true;
        rec.best_abal = m.accepted_ballot;
        rec.accepted_cmd = m.cmd;
        rec.accepted_deps = m.deps;
        rec.accepted_seqno = m.seqno;
      }
      break;
    case Phase::kPreAccepted:
      if (!rec.any_preaccepted) {
        rec.any_preaccepted = true;
        rec.pre_cmd = m.cmd;  // same payload in every pre-accept of one dot
      }
      rec.pre_union_deps.UnionWith(m.deps);
      rec.pre_union_seqno = std::max(rec.pre_union_seqno, m.seqno);
      if (m.was_initial_coordinator_reply) {
        rec.coordinator_uncommitted = true;
      } else if (!rec.have_peer_pre) {
        rec.have_peer_pre = true;
        rec.peer_pre_cmd = m.cmd;
        rec.peer_pre_deps = m.deps;
        rec.peer_pre_seqno = m.seqno;
      } else if (m.deps != rec.peer_pre_deps || m.seqno != rec.peer_pre_seqno) {
        rec.peers_identical = false;
      }
      break;
    case Phase::kNone:
      break;
  }
  rec.fresh_deps.UnionWith(m.fresh_deps);
  rec.fresh_seqno = std::max(rec.fresh_seqno, m.fresh_seqno);
  if (info.rec_acked.size() != config_.MajoritySize()) {
    // Decide exactly once per ballot, on the first majority. A late ack must not
    // re-run the choice: that could propose a second, different value at the same
    // ballot, and mixed-value accept acks would then be counted together.
    return;
  }
  // Committed anywhere -> adopt. Accepted -> re-run Accept with the highest-ballot
  // value. Pre-accepted only -> conservative: union deps / max seq, Accept phase.
  if (rec.committed) {
    // Move out of the RecState first: ApplyCommit can execute the command
    // immediately, and the executed callback erases infos_[dot] — destroying the
    // Info (and the RecState it owns) the aggregates live in.
    msg::EpCommit commit;
    commit.dot = m.dot;
    commit.cmd = std::move(rec.committed_cmd);
    commit.deps = std::move(rec.committed_deps);
    commit.seqno = rec.committed_seqno;
    ApplyCommit(m.dot, commit.cmd, commit.deps, commit.seqno, /*fast_path=*/false);
    // Let others know too.
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, commit);
      }
    }
    return;
  }
  if (rec.accepted) {
    RunAcceptPhase(m.dot, info, rec.accepted_cmd, std::move(rec.accepted_deps),
                   rec.accepted_seqno, m.ballot);
    return;
  }
  if (rec.any_preaccepted) {
    // Split the pre-accept evidence. The original coordinator replying kPreAccepted
    // proves nothing was committed (the coordinator commits first on both paths), so
    // the value choice is free. Without that proof, identical non-coordinator
    // pre-accepts may be the surviving trace of a fast commit — adopt their
    // attributes exactly, never widened. Only when the choice is provably free do we
    // fold in our current conflict index: a command that stalled through a partition
    // must pick up dependencies on everything committed since, or it would execute
    // unordered against those commands on some replicas.
    if (rec.have_peer_pre && rec.peers_identical && !rec.coordinator_uncommitted) {
      RunAcceptPhase(m.dot, info, rec.peer_pre_cmd, std::move(rec.peer_pre_deps),
                     rec.peer_pre_seqno, m.ballot);
      return;
    }
    // Locals, not references into the RecState: StartRecovery below resets it.
    DepSet deps = std::move(rec.pre_union_deps);
    uint64_t seqno = rec.pre_union_seqno;
    smr::Command cmd = std::move(rec.pre_cmd);
    if (info.phase == Phase::kNone && !info.rec_cmd_known) {
      // This prepare round ran without the payload (we only just learned it from
      // the acks above), so no replier could report fresh conflicts against it.
      // Choosing a value from stale pre-accept deps alone can miss an ordering
      // edge; stash the command and re-prepare at a higher ballot carrying it.
      info.cmd = std::move(cmd);
      info.rec_cmd_known = true;
      StartRecovery(m.dot, info);
      return;
    }
    if (!NfrRead(cmd)) {
      // Majority-fresh dependency collection: every ack carries the replier's
      // current conflicts of the payload, and the recovery majority intersects the
      // quorum behind every conflicting commit — so some ack contributes the edge
      // even when our own index never saw that commit.
      deps.UnionWith(rec.fresh_deps);
      seqno = std::max(seqno, rec.fresh_seqno);
      DepSet local;  // CollectInto clears its output set; union via a scratch
      index_->CollectInto(cmd, m.dot, local);
      deps.UnionWith(local);
      seqno = std::max(seqno, MaxConflictSeq(deps) + 1);
    }
    RunAcceptPhase(m.dot, info, cmd, std::move(deps), seqno, m.ballot);
    return;
  }
  // Nobody saw the command: commit a noOp in its place.
  RunAcceptPhase(m.dot, info, smr::MakeNoOp(), DepSet(), 0, m.ballot);
}

void EPaxosEngine::OnMessage(ProcessId from, const msg::Message& m) {
  if (auto* v = msg::get_if<msg::EpPreAccept>(&m)) {
    HandlePreAccept(from, *v);
  } else if (auto* v = msg::get_if<msg::EpPreAcceptAck>(&m)) {
    HandlePreAcceptAck(from, *v);
  } else if (auto* v = msg::get_if<msg::EpAccept>(&m)) {
    HandleAccept(from, *v);
  } else if (auto* v = msg::get_if<msg::EpAcceptAck>(&m)) {
    HandleAcceptAck(from, *v);
  } else if (auto* v = msg::get_if<msg::EpCommit>(&m)) {
    HandleCommit(from, *v);
  } else if (auto* v = msg::get_if<msg::EpPrepare>(&m)) {
    HandlePrepare(from, *v);
  } else if (auto* v = msg::get_if<msg::EpPrepareAck>(&m)) {
    HandlePrepareAck(from, *v);
  }
}

}  // namespace epaxos
