// Egalitarian Paxos (EPaxos) baseline [Moraru et al., SOSP'13].
//
// EPaxos shares the leaderless message flow of Atlas (§3.3 of the paper) but differs
// in the two dimensions Atlas innovates on:
//   - the fast quorum is sized for f = floor((n-1)/2) failures:
//     |FQ| = F + floor((F+1)/2) (command leader included), the ~3n/4-class quorum the
//     paper attributes to EPaxos;
//   - the fast path is taken only when all non-leader fast-quorum replies match exactly
//     (same dependencies and sequence number).
// Commands additionally carry sequence numbers; execution orders strongly connected
// components by (seq, id) via the shared graph executor.
//
// Recovery: this baseline implements a conservative explicit-prepare fail-over that is
// correct for slow-path-committed and committed commands and re-runs the Accept phase
// with the union of surviving dependencies otherwise. Full EPaxos fast-path recovery is
// intentionally out of scope: the paper (§3.3) cites it as "very complex" and recently
// shown to contain a bug [Sutra, IPL 2020]; none of the reproduced experiments exercise
// EPaxos under failures. Recovery is driven by a paced scan (recovery_scan_interval /
// recovery_retry_interval, mirroring Atlas) so lost Prepare rounds retry, plus an
// optional per-command commit timeout for the submitting replica. A restarted replica
// (ApplyRestartHint) re-learns decided commands through the same scan; a bounded
// decided-value cache answers Prepares for recently executed commands whose Info was
// reclaimed.
//
// The NFR read optimization (§4) applies to EPaxos too (the paper's "*EPaxos"): enabled
// via Config::nfr.
#ifndef SRC_EPAXOS_EPAXOS_H_
#define SRC_EPAXOS_EPAXOS_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/dep_set.h"
#include "src/common/dot_map.h"
#include "src/common/quorum.h"
#include "src/common/types.h"
#include "src/exec/graph_executor.h"
#include "src/msg/message.h"
#include "src/smr/conflict_index.h"
#include "src/smr/engine.h"

namespace epaxos {

struct Config {
  uint32_t n = 3;
  bool nfr = false;
  smr::IndexMode index_mode = smr::IndexMode::kCompressed;
  std::vector<common::ProcessId> by_proximity;
  // When > 0, each locally submitted command arms a timer; if the command is still
  // uncommitted when it fires, the submitter runs explicit-prepare recovery on it.
  // 0 disables (failure-free deployments).
  common::Duration commit_timeout = 0;
  // Recovery scan pacing (armed only while some process is suspected, after a
  // restart, or while restarted-peer floors are known — failure-free runs never
  // arm the timer or touch the recovery structures).
  common::Duration recovery_scan_interval = 500 * common::kMillisecond;
  common::Duration recovery_retry_interval = 1 * common::kSecond;

  uint32_t F() const { return (n - 1) / 2; }
  // Fast quorum including the command leader: F + floor((F+1)/2), the optimized EPaxos
  // quorum (= ceil(3n/4) - 1 for odd n).
  size_t FastQuorumSize() const {
    size_t fq = F() + (F() + 1) / 2;
    return std::max(fq, static_cast<size_t>(n / 2 + 1));
  }
  size_t MajoritySize() const { return n / 2 + 1; }
};

class EPaxosEngine final : public smr::Engine {
 public:
  explicit EPaxosEngine(Config config);

  void OnStart() override;
  void Submit(smr::Command cmd) override;
  void OnMessage(common::ProcessId from, const msg::Message& m) override;
  void OnTimer(uint64_t token) override;
  void OnSuspect(common::ProcessId p) override;
  void OnRestore(common::ProcessId p, uint64_t seq_floor) override;
  smr::RestartHint restart_hint() const override;
  void ApplyRestartHint(const smr::RestartHint& hint) override;

  size_t PendingExecution() const { return executor_.PendingCount(); }

 private:
  enum class Phase : uint8_t { kNone, kPreAccepted, kAccepted, kCommitted };

  // Running aggregate of one recovery round's prepare acks. Every criterion of
  // the multi-criteria decision scan is incrementally computable, so acks are
  // folded in on arrival and never stored (the old per-round ack vector was a
  // ROADMAP known allocation). Heap-allocated per recovering Info — recovery is
  // the cold path — and reset (not reallocated) on each round.
  struct RecState {
    // Some ack reported kCommitted: its decided value (all such acks agree).
    bool committed = false;
    smr::Command committed_cmd;
    common::DepSet committed_deps;
    uint64_t committed_seqno = 0;
    // Highest-accepted-ballot kAccepted ack (first wins ties, arrival order).
    bool accepted = false;
    common::Ballot best_abal = 0;
    smr::Command accepted_cmd;
    common::DepSet accepted_deps;
    uint64_t accepted_seqno = 0;
    // kPreAccepted evidence: the coordinator-uncommitted proof, the first
    // non-coordinator reply's exact attributes (plus whether later peers
    // matched it), and the conservative union.
    bool any_preaccepted = false;
    bool coordinator_uncommitted = false;
    bool have_peer_pre = false;
    bool peers_identical = true;
    smr::Command peer_pre_cmd;
    common::DepSet peer_pre_deps;
    uint64_t peer_pre_seqno = 0;
    smr::Command pre_cmd;
    common::DepSet pre_union_deps;
    uint64_t pre_union_seqno = 0;
    // Majority-fresh conflict reports, unioned across every ack.
    common::DepSet fresh_deps;
    uint64_t fresh_seqno = 0;
  };

  struct Info {
    Phase phase = Phase::kNone;
    smr::Command cmd;
    common::DepSet deps;
    uint64_t seqno = 0;
    common::Ballot bal = 0;
    common::Ballot abal = 0;
    bool nfr = false;

    // Command-leader state. Pre-accept acks are aggregated as they arrive —
    // the fast-path check needs only "every reply matched my (deps, seqno)",
    // the NFR/slow paths only the running union and max — so the leader stores
    // no ack vector (ROADMAP known hot-path allocation, pinned by alloc_test).
    common::Quorum quorum;
    common::Quorum preaccept_acked;
    common::DepSet pre_union_deps;
    uint64_t pre_union_seqno = 0;
    bool pre_acks_match = true;
    common::Ballot proposal_ballot = 0;
    common::Quorum accept_acked;

    // Recovery state.
    common::Ballot rec_ballot = 0;
    common::Quorum rec_acked;
    std::unique_ptr<RecState> rec;
    common::Time next_recovery_at = 0;
    // Owned by a dead incarnation of a since-restarted process: stays eligible for
    // the recovery scan even though its owner is no longer suspected.
    bool orphaned = false;
    // The payload was learned from prepare acks (phase may still be kNone); lets the
    // next prepare round carry the command so repliers can report fresh conflicts.
    bool rec_cmd_known = false;
    // A commit-outcome watch timer is pending for this dot (see ArmWatch).
    bool watched = false;
  };

  void HandlePreAccept(common::ProcessId from, const msg::EpPreAccept& m);
  void HandlePreAcceptAck(common::ProcessId from, const msg::EpPreAcceptAck& m);
  void HandleAccept(common::ProcessId from, const msg::EpAccept& m);
  void HandleAcceptAck(common::ProcessId from, const msg::EpAcceptAck& m);
  void HandleCommit(common::ProcessId from, const msg::EpCommit& m);
  void HandlePrepare(common::ProcessId from, const msg::EpPrepare& m);
  void HandlePrepareAck(common::ProcessId from, const msg::EpPrepareAck& m);

  void RunAcceptPhase(const common::Dot& dot, Info& info, const smr::Command& cmd,
                      common::DepSet deps, uint64_t seqno, common::Ballot ballot);
  void CommitAndBroadcast(const common::Dot& dot, Info& info, bool fast_path);
  void ApplyCommit(const common::Dot& dot, const smr::Command& cmd,
                   const common::DepSet& deps, uint64_t seqno, bool fast_path);

  // True while some process is suspected / restarted state is live: only then do the
  // recovery structures (decided cache, dep placeholders, scan timer) engage, keeping
  // the failure-free hot path allocation-free and byte-identical.
  bool RecoveryActive() const {
    return restarted_ || !suspected_.empty() || !peer_floors_.empty();
  }
  // Returns true while uncommitted commands eligible for recovery remain.
  bool RecoveryScan();
  void ArmScanTimer();
  void StartRecovery(const common::Dot& dot, Info& info);

  // Highest sequence number among recorded commands conflicting with cmd.
  uint64_t MaxConflictSeq(const common::DepSet& deps) const;

  // DotMap references are invalidated by later inserts/erases (rehash and
  // backward-shift deletion move slots); handlers must not hold an Info& across a
  // call that can insert into or erase from infos_ — see HandlePrepareAck's
  // copy-into-locals before ApplyCommit.
  Info& GetInfo(const common::Dot& dot) { return infos_[dot]; }
  bool NfrRead(const smr::Command& cmd) const { return config_.nfr && cmd.is_read(); }
  common::Quorum PickQuorum(size_t size) const;

  Config config_;
  std::unique_ptr<smr::ConflictIndex> index_;
  exec::GraphExecutor executor_;

  uint64_t next_seq_ = 1;
  // Flat dot-keyed maps (ROADMAP known-allocation: the last engine still on
  // hash-map nodes): per-command state allocates only on amortized table growth,
  // not per command. alloc_test pins the steady-state behaviour.
  common::DotMap<Info> infos_;
  // seq numbers of every known command, for the max-conflict-seq computation.
  common::DotMap<uint64_t> seqnos_;
  std::unordered_set<common::ProcessId> suspected_;
  bool scan_timer_armed_ = false;

  // Restart bookkeeping (mirrors AtlasEngine): a restarted engine re-learns decided
  // commands through the explicit-prepare path; peer_floors_ keeps restarted peers'
  // abandoned dots scan-eligible after suspicion clears (per-Info `orphaned`).
  bool restarted_ = false;
  uint64_t restart_floor_ = 0;
  // Highest committed identifier seen per process; commits above the horizon arm
  // watches on every unknown identifier in the gap (lost-commit catch-up).
  std::vector<uint64_t> commit_horizon_;
  bool any_orphaned_ = false;
  std::unordered_map<common::ProcessId, uint64_t> peer_floors_;

  // Bounded cache of decided (committed) values, answering Prepares for commands whose
  // Info the execute callback already erased (e.g. a restarted replica re-learning a
  // dependency the rest of the cluster executed long ago). Insertion order lives in a
  // ring (not a deque) so steady-state commits stay amortized-allocation-free —
  // alloc_test pins the replica path.
  struct Decided {
    smr::Command cmd;
    common::DepSet deps;
    uint64_t seqno = 0;
  };
  void RememberDecided(const common::Dot& dot, const smr::Command& cmd,
                       const common::DepSet& deps, uint64_t seqno);
  common::DotMap<Decided> decided_;
  std::vector<common::Dot> decided_ring_;
  size_t decided_ring_pos_ = 0;
  size_t decided_cache_limit_ = 1 << 17;

  // Arms a commit-outcome watch for a dot this replica knows about but did not
  // coordinate: if the commit has not arrived after commit_timeout (lost EpCommit,
  // partitioned leader), the watcher runs explicit prepare itself. No-op unless
  // commit timeouts are configured, so failure-free deployments are unaffected.
  void ArmWatch(const common::Dot& dot, Info& info);

  static constexpr uint64_t kRecoveryScanToken = 1;
  static constexpr uint64_t kCommitTimeoutToken = 2;  // low bits of per-dot timers
  // Watch timers pack the full dot: ((proc << 44) | seq) << 2 | kWatchToken.
  static constexpr uint64_t kWatchToken = 3;
};

}  // namespace epaxos

#endif  // SRC_EPAXOS_EPAXOS_H_
