// Egalitarian Paxos (EPaxos) baseline [Moraru et al., SOSP'13].
//
// EPaxos shares the leaderless message flow of Atlas (§3.3 of the paper) but differs
// in the two dimensions Atlas innovates on:
//   - the fast quorum is sized for f = floor((n-1)/2) failures:
//     |FQ| = F + floor((F+1)/2) (command leader included), the ~3n/4-class quorum the
//     paper attributes to EPaxos;
//   - the fast path is taken only when all non-leader fast-quorum replies match exactly
//     (same dependencies and sequence number).
// Commands additionally carry sequence numbers; execution orders strongly connected
// components by (seq, id) via the shared graph executor.
//
// Recovery: this baseline implements a conservative explicit-prepare fail-over that is
// correct for slow-path-committed and committed commands and re-runs the Accept phase
// with the union of surviving dependencies otherwise. Full EPaxos fast-path recovery is
// intentionally out of scope: the paper (§3.3) cites it as "very complex" and recently
// shown to contain a bug [Sutra, IPL 2020]; none of the reproduced experiments exercise
// EPaxos under failures.
//
// The NFR read optimization (§4) applies to EPaxos too (the paper's "*EPaxos"): enabled
// via Config::nfr.
#ifndef SRC_EPAXOS_EPAXOS_H_
#define SRC_EPAXOS_EPAXOS_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "src/common/dep_set.h"
#include "src/common/dot_map.h"
#include "src/common/quorum.h"
#include "src/common/types.h"
#include "src/exec/graph_executor.h"
#include "src/msg/message.h"
#include "src/smr/conflict_index.h"
#include "src/smr/engine.h"

namespace epaxos {

struct Config {
  uint32_t n = 3;
  bool nfr = false;
  smr::IndexMode index_mode = smr::IndexMode::kCompressed;
  std::vector<common::ProcessId> by_proximity;

  uint32_t F() const { return (n - 1) / 2; }
  // Fast quorum including the command leader: F + floor((F+1)/2), the optimized EPaxos
  // quorum (= ceil(3n/4) - 1 for odd n).
  size_t FastQuorumSize() const {
    size_t fq = F() + (F() + 1) / 2;
    return std::max(fq, static_cast<size_t>(n / 2 + 1));
  }
  size_t MajoritySize() const { return n / 2 + 1; }
};

class EPaxosEngine final : public smr::Engine {
 public:
  explicit EPaxosEngine(Config config);

  void OnStart() override;
  void Submit(smr::Command cmd) override;
  void OnMessage(common::ProcessId from, const msg::Message& m) override;
  void OnSuspect(common::ProcessId p) override;

  size_t PendingExecution() const { return executor_.PendingCount(); }

 private:
  enum class Phase : uint8_t { kNone, kPreAccepted, kAccepted, kCommitted };

  struct Info {
    Phase phase = Phase::kNone;
    smr::Command cmd;
    common::DepSet deps;
    uint64_t seqno = 0;
    common::Ballot bal = 0;
    common::Ballot abal = 0;
    bool nfr = false;

    // Command-leader state.
    common::Quorum quorum;
    common::Quorum preaccept_acked;
    std::vector<msg::EpPreAcceptAck> preaccept_acks;
    common::Ballot proposal_ballot = 0;
    common::Quorum accept_acked;

    // Recovery state.
    common::Ballot rec_ballot = 0;
    common::Quorum rec_acked;
    std::vector<msg::EpPrepareAck> rec_acks;
  };

  void HandlePreAccept(common::ProcessId from, const msg::EpPreAccept& m);
  void HandlePreAcceptAck(common::ProcessId from, const msg::EpPreAcceptAck& m);
  void HandleAccept(common::ProcessId from, const msg::EpAccept& m);
  void HandleAcceptAck(common::ProcessId from, const msg::EpAcceptAck& m);
  void HandleCommit(common::ProcessId from, const msg::EpCommit& m);
  void HandlePrepare(common::ProcessId from, const msg::EpPrepare& m);
  void HandlePrepareAck(common::ProcessId from, const msg::EpPrepareAck& m);

  void RunAcceptPhase(const common::Dot& dot, Info& info, const smr::Command& cmd,
                      common::DepSet deps, uint64_t seqno, common::Ballot ballot);
  void CommitAndBroadcast(const common::Dot& dot, Info& info, bool fast_path);
  void ApplyCommit(const common::Dot& dot, const smr::Command& cmd,
                   const common::DepSet& deps, uint64_t seqno, bool fast_path);

  // Highest sequence number among recorded commands conflicting with cmd.
  uint64_t MaxConflictSeq(const common::DepSet& deps) const;

  // DotMap references are invalidated by later inserts/erases (rehash and
  // backward-shift deletion move slots); handlers must not hold an Info& across a
  // call that can insert into or erase from infos_ — see HandlePrepareAck's
  // copy-into-locals before ApplyCommit.
  Info& GetInfo(const common::Dot& dot) { return infos_[dot]; }
  bool NfrRead(const smr::Command& cmd) const { return config_.nfr && cmd.is_read(); }
  common::Quorum PickQuorum(size_t size) const;

  Config config_;
  std::unique_ptr<smr::ConflictIndex> index_;
  exec::GraphExecutor executor_;

  uint64_t next_seq_ = 1;
  // Flat dot-keyed maps (ROADMAP known-allocation: the last engine still on
  // hash-map nodes): per-command state allocates only on amortized table growth,
  // not per command. alloc_test pins the steady-state behaviour.
  common::DotMap<Info> infos_;
  // seq numbers of every known command, for the max-conflict-seq computation.
  common::DotMap<uint64_t> seqnos_;
  std::unordered_set<common::ProcessId> suspected_;
};

}  // namespace epaxos

#endif  // SRC_EPAXOS_EPAXOS_H_
