// Workload generators: the paper's microbenchmark (§5.2) and YCSB-style key-value
// workloads (§5.7).
#ifndef SRC_WL_WORKLOAD_H_
#define SRC_WL_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/smr/command.h"
#include "src/smr/partitioner.h"

namespace wl {

class Workload {
 public:
  virtual ~Workload() = default;

  // Generates the next command for (client, seq). Implementations must be
  // deterministic functions of the Rng stream.
  virtual smr::Command Next(uint64_t client, uint64_t seq, common::Rng& rng) = 0;
};

// §5.2: each command carries a key of 8 bytes and a payload of `value_size` bytes.
// With probability `conflict_rate` the key is 0 (shared); otherwise a per-client
// unique key. All commands are writes (dummy commands conflicting on equal keys).
class MicroWorkload final : public Workload {
 public:
  MicroWorkload(double conflict_rate, size_t value_size);

  smr::Command Next(uint64_t client, uint64_t seq, common::Rng& rng) override;

 private:
  double conflict_rate_;
  std::string value_;
};

// §5.2 microbenchmark for partitioned replicas. With P partitions the single shared
// key would funnel every conflicting command into one shard and leave the others
// conflict-free, so `conflict_rate` would stop meaning what §5.2 says per pipeline.
// This variant pre-computes one hot key per partition (keys chosen so the
// smr::Partitioner routes hot key s to shard s); a conflicting command picks a
// partition uniformly and uses its hot key, so every shard's command stream is itself
// a §5.2 microbenchmark with the same conflict_rate. Non-conflicting commands keep
// per-client unique keys, which the partitioner spreads across shards by hash. With
// partitions == 1 this is exactly MicroWorkload.
class PartitionedMicroWorkload final : public Workload {
 public:
  PartitionedMicroWorkload(uint32_t partitions, double conflict_rate,
                           size_t value_size);

  smr::Command Next(uint64_t client, uint64_t seq, common::Rng& rng) override;

  const std::string& hot_key(uint32_t shard) const { return hot_keys_[shard]; }

 private:
  double conflict_rate_;
  std::vector<std::string> hot_keys_;  // hot_keys_[s] routes to shard s
  std::string value_;
};

// Figure 8 client types: always the shared key 0, or always a per-client key.
class FixedKeyWorkload final : public Workload {
 public:
  // shared = true -> key 0; false -> key "c<client>".
  FixedKeyWorkload(bool shared, size_t value_size);

  smr::Command Next(uint64_t client, uint64_t seq, common::Rng& rng) override;

 private:
  bool shared_;
  std::string value_;
};

// §5.7: YCSB-style. `records` keys selected with a Zipfian distribution (default YCSB
// skew theta = 0.99); a fraction `read_pct` of operations are reads, the rest writes.
class YcsbWorkload final : public Workload {
 public:
  YcsbWorkload(uint64_t records, double read_pct, size_t value_size,
               double theta = 0.99);

  smr::Command Next(uint64_t client, uint64_t seq, common::Rng& rng) override;

  const common::Zipf& zipf() const { return zipf_; }

 private:
  common::Zipf zipf_;
  double read_pct_;
  std::string value_;
};

}  // namespace wl

#endif  // SRC_WL_WORKLOAD_H_
