#include "src/wl/workload.h"

#include <cstdio>

namespace wl {

namespace {

std::string ZeroPadKey(uint64_t k) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%08llu", static_cast<unsigned long long>(k));
  return buf;
}

}  // namespace

MicroWorkload::MicroWorkload(double conflict_rate, size_t value_size)
    : conflict_rate_(conflict_rate), value_(value_size, 'x') {}

smr::Command MicroWorkload::Next(uint64_t client, uint64_t seq, common::Rng& rng) {
  std::string key;
  if (rng.Chance(conflict_rate_)) {
    key = ZeroPadKey(0);
  } else {
    key = "c" + std::to_string(client);
  }
  return smr::MakePut(client, seq, std::move(key), value_);
}

PartitionedMicroWorkload::PartitionedMicroWorkload(uint32_t partitions,
                                                   double conflict_rate,
                                                   size_t value_size)
    : conflict_rate_(conflict_rate), value_(value_size, 'x') {
  // First zero-padded key routed to each shard, scanning from 0 — deterministic and
  // partitioner-stable, and shard 0's hot key stays the §5.2 key 0 when a scan hit
  // lands there. A few dozen probes cover any partition count we run.
  smr::Partitioner part(partitions);
  hot_keys_.resize(partitions);
  std::vector<bool> found(partitions, false);
  uint32_t remaining = partitions;
  for (uint64_t k = 0; remaining > 0; k++) {
    std::string key = ZeroPadKey(k);
    uint32_t s = part.ShardOf(key);
    if (!found[s]) {
      found[s] = true;
      hot_keys_[s] = std::move(key);
      remaining--;
    }
  }
}

smr::Command PartitionedMicroWorkload::Next(uint64_t client, uint64_t seq,
                                            common::Rng& rng) {
  std::string key;
  if (rng.Chance(conflict_rate_)) {
    // Uniform shard choice keeps hot traffic balanced across partitions; within a
    // shard the hot key is shared by every client, as in §5.2. P=1 must not draw
    // the extra shard choice: that keeps its RNG stream (and thus seeded runs)
    // exactly equal to MicroWorkload's.
    key = hot_keys_.size() > 1 ? hot_keys_[rng.Below(hot_keys_.size())]
                               : hot_keys_[0];
  } else {
    key = "c" + std::to_string(client);
  }
  return smr::MakePut(client, seq, std::move(key), value_);
}

FixedKeyWorkload::FixedKeyWorkload(bool shared, size_t value_size)
    : shared_(shared), value_(value_size, 'x') {}

smr::Command FixedKeyWorkload::Next(uint64_t client, uint64_t seq, common::Rng& rng) {
  std::string key = shared_ ? ZeroPadKey(0) : "c" + std::to_string(client);
  return smr::MakePut(client, seq, std::move(key), value_);
}

YcsbWorkload::YcsbWorkload(uint64_t records, double read_pct, size_t value_size,
                           double theta)
    : zipf_(records, theta), read_pct_(read_pct), value_(value_size, 'x') {}

smr::Command YcsbWorkload::Next(uint64_t client, uint64_t seq, common::Rng& rng) {
  std::string key = "user" + ZeroPadKey(zipf_.Sample(rng));
  if (rng.Chance(read_pct_)) {
    return smr::MakeGet(client, seq, std::move(key));
  }
  return smr::MakePut(client, seq, std::move(key), value_);
}

}  // namespace wl
