#include "src/wl/workload.h"

#include <cstdio>

namespace wl {

namespace {

std::string ZeroPadKey(uint64_t k) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%08llu", static_cast<unsigned long long>(k));
  return buf;
}

}  // namespace

MicroWorkload::MicroWorkload(double conflict_rate, size_t value_size)
    : conflict_rate_(conflict_rate), value_(value_size, 'x') {}

smr::Command MicroWorkload::Next(uint64_t client, uint64_t seq, common::Rng& rng) {
  std::string key;
  if (rng.Chance(conflict_rate_)) {
    key = ZeroPadKey(0);
  } else {
    key = "c" + std::to_string(client);
  }
  return smr::MakePut(client, seq, std::move(key), value_);
}

FixedKeyWorkload::FixedKeyWorkload(bool shared, size_t value_size)
    : shared_(shared), value_(value_size, 'x') {}

smr::Command FixedKeyWorkload::Next(uint64_t client, uint64_t seq, common::Rng& rng) {
  std::string key = shared_ ? ZeroPadKey(0) : "c" + std::to_string(client);
  return smr::MakePut(client, seq, std::move(key), value_);
}

YcsbWorkload::YcsbWorkload(uint64_t records, double read_pct, size_t value_size,
                           double theta)
    : zipf_(records, theta), read_pct_(read_pct), value_(value_size, 'x') {}

smr::Command YcsbWorkload::Next(uint64_t client, uint64_t seq, common::Rng& rng) {
  std::string key = "user" + ZeroPadKey(zipf_.Sample(rng));
  if (rng.Chance(read_pct_)) {
    return smr::MakeGet(client, seq, std::move(key));
  }
  return smr::MakePut(client, seq, std::move(key), value_);
}

}  // namespace wl
