// Mencius baseline [Mao et al., OSDI'08]: rotating slot ownership.
//
// The log is partitioned round-robin: process i owns slots {i, i+n, i+2n, ...}. A
// command submitted at i is proposed in i's next owned slot and broadcast to everyone;
// it commits once *all* replicas acknowledge (so the protocol runs at the speed of the
// slowest replica — the behaviour Figures 5 and 6 show). When a replica observes a
// proposal for a slot beyond its own frontier it "skips" its owned slots below that
// point, broadcasting an MnSkipRange so every replica can fill the gaps and keep
// in-order execution progressing.
//
// This implementation targets the failure-free case (the paper never benchmarks
// Mencius under failures); a crashed replica blocks progress until reconfiguration,
// which is out of scope.
#ifndef SRC_MENCIUS_MENCIUS_H_
#define SRC_MENCIUS_MENCIUS_H_

#include <map>
#include <vector>

#include "src/common/quorum.h"
#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/smr/engine.h"

namespace mencius {

struct Config {
  uint32_t n = 3;
};

class MenciusEngine final : public smr::Engine {
 public:
  explicit MenciusEngine(Config config);

  void OnStart() override;
  void Submit(smr::Command cmd) override;
  void OnMessage(common::ProcessId from, const msg::Message& m) override;

  uint64_t ExecutedUpto() const { return execute_upto_; }

 private:
  enum class SlotState : uint8_t { kEmpty, kProposed, kCommitted, kSkipped };

  struct Slot {
    SlotState state = SlotState::kEmpty;
    smr::Command cmd;
    common::Quorum acked;  // proposer-side
  };

  void HandlePropose(common::ProcessId from, const msg::MnPropose& m);
  void HandleAck(common::ProcessId from, const msg::MnAck& m);
  void HandleCommit(common::ProcessId from, const msg::MnCommit& m);
  void HandleSkipRange(common::ProcessId from, const msg::MnSkipRange& m);

  // Skips own slots < bound and announces the range (no-op if none pending).
  void SkipOwnSlotsBelow(uint64_t bound);
  void MarkSkipped(common::ProcessId owner, uint64_t from, uint64_t to);
  void TryExecute();

  common::ProcessId OwnerOf(uint64_t slot) const {
    return static_cast<common::ProcessId>(slot % n_);
  }

  Config config_;
  std::map<uint64_t, Slot> log_;
  uint64_t next_own_slot_ = 0;  // smallest unused slot owned by this process
  uint64_t execute_upto_ = 0;
};

}  // namespace mencius

#endif  // SRC_MENCIUS_MENCIUS_H_
