// Mencius baseline [Mao et al., OSDI'08]: rotating slot ownership.
//
// The log is partitioned round-robin: process i owns slots {i, i+n, i+2n, ...}. A
// command submitted at i is proposed in i's next owned slot and broadcast to everyone;
// it commits once every non-suspected replica acknowledges (so the protocol runs at
// the speed of the slowest replica — the behaviour Figures 5 and 6 show), with the
// additional requirement that the ack set forms a majority. When a replica observes a
// proposal for a slot beyond its own frontier it "skips" its owned slots below that
// point, broadcasting an MnSkipRange so every replica can fill the gaps and keep
// in-order execution progressing.
//
// Failure handling (revocation): the owner's MnPropose doubles as a Paxos accept at
// ballot 0. When a slot's owner is suspected (or a restarted replica needs to re-learn
// decided slots), any replica can revoke the slot by running classic single-decree
// Paxos at a higher ballot: Prepare/Promise surface any ballot-0 accept — if some
// majority member saw the owner's command it is re-proposed, otherwise the slot is
// decided as a skip. The majority-ack commit rule intersects every revocation
// majority, so a committed command can never be revoked into a skip and vice versa.
// Without stable storage this is sound under the usual crash-recovery assumption that
// at most f replicas are down (or amnesiac) at any instant.
#ifndef SRC_MENCIUS_MENCIUS_H_
#define SRC_MENCIUS_MENCIUS_H_

#include <map>
#include <set>
#include <vector>

#include "src/common/quorum.h"
#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/smr/engine.h"

namespace mencius {

struct Config {
  uint32_t n = 3;
  // When > 0, each locally proposed slot arms a timer; if the slot is still
  // undecided when it fires, the proposer revokes its own slot to learn (or force)
  // the outcome. 0 disables (failure-free deployments).
  common::Duration commit_timeout = 0;
  // Pacing between revocation attempts for a blocked execution frontier. Timers are
  // only armed while some process is suspected, after a restart, or while a
  // revocation is in flight — failure-free runs never arm them.
  common::Duration revoke_retry_interval = 100 * common::kMillisecond;
};

class MenciusEngine final : public smr::Engine {
 public:
  explicit MenciusEngine(Config config);

  void OnStart() override;
  void Submit(smr::Command cmd) override;
  void OnMessage(common::ProcessId from, const msg::Message& m) override;
  void OnTimer(uint64_t token) override;
  void OnSuspect(common::ProcessId p) override;
  void OnRestore(common::ProcessId p, uint64_t seq_floor) override;
  smr::RestartHint restart_hint() const override;
  void ApplyRestartHint(const smr::RestartHint& hint) override;

  uint64_t ExecutedUpto() const { return execute_upto_; }

 private:
  enum class SlotState : uint8_t { kEmpty, kProposed, kCommitted, kSkipped };

  struct Slot {
    SlotState state = SlotState::kEmpty;
    smr::Command cmd;
    common::Quorum acked;  // proposer-side

    // Paxos acceptor state (the owner's MnPropose is an implicit accept at ballot 0).
    common::Ballot promised = 0;
    common::Ballot vbal = 0;
    uint8_t vkind = 0;  // 0 = nothing accepted, 1 = cmd, 2 = skip

    // Revoker state (this process running Prepare/Accept for the slot).
    uint8_t rev_phase = 0;  // 0 idle, 1 prepare, 2 accept
    common::Ballot rev_ballot = 0;
    common::Quorum rev_promised;
    common::Quorum rev_accepted;
    common::Ballot rev_best_vbal = 0;
    uint8_t rev_choice = 0;
    smr::Command rev_cmd;
    common::Time next_revoke_at = 0;
  };

  // What a slot resolved to, retained after execution so retransmitted proposals and
  // revocations of old slots can be answered authoritatively (catch-up path). Kept in
  // a bounded ring indexed slot % history_limit_; `slot` validates the entry, so
  // evicted, never-filled, and pre-restart positions all read as unknown.
  struct Outcome {
    uint64_t slot = 0;
    uint8_t what = 0;  // 0 = unknown, 1 = command, 2 = skip
    smr::Command cmd;
  };

  void HandlePropose(common::ProcessId from, const msg::MnPropose& m);
  void HandleAck(common::ProcessId from, const msg::MnAck& m);
  void HandleCommit(common::ProcessId from, const msg::MnCommit& m);
  void HandleSkipRange(common::ProcessId from, const msg::MnSkipRange& m);
  void HandleRevoke(common::ProcessId from, const msg::MnRevoke& m);
  void HandleRevokePromise(common::ProcessId from, const msg::MnRevokePromise& m);
  void HandleRevokeAccept(common::ProcessId from, const msg::MnRevokeAccept& m);
  void HandleRevokeAccepted(common::ProcessId from, const msg::MnRevokeAccepted& m);
  void HandleRevokeSkip(common::ProcessId from, const msg::MnRevokeSkip& m);

  // Skips own slots < bound and announces the range (no-op if none pending).
  void SkipOwnSlotsBelow(uint64_t bound);
  void MarkSkipped(common::ProcessId owner, uint64_t from, uint64_t to);
  void TryExecute();

  // True when the decided outcome of `slot` is already known locally; replies to
  // `from` with MnCommit / MnRevokeSkip accordingly (catch-up short-circuit).
  bool AnswerIfDecided(common::ProcessId from, uint64_t slot);
  // Bounded executed-outcome ring: nullptr when the slot was evicted or never filled.
  const Outcome* FindOutcome(uint64_t slot) const;
  void RememberOutcome(uint64_t slot, uint8_t what, smr::Command cmd);
  // Commits an own proposed slot once its ack set is complete (all non-suspected
  // replicas) and forms a majority.
  bool AckSetComplete(const Slot& s) const;
  void CommitOwnSlot(uint64_t slot, Slot& s);
  void MaybeCommitOwn();
  // If the execution frontier is blocked on a slot whose owner is suspected (or after
  // a restart, or with a revocation already in flight), start / retry revocation.
  void MaybeRecoverBlocked();
  void StartRevoke(uint64_t slot);
  void ArmRetryTimer();
  // Commit-outcome watch: when traffic exists beyond an undecided frontier slot and
  // commit timeouts are configured, arm a timer that revokes the slot if it is still
  // undecided when the timer fires — no suspicion required (lost MnCommit, grey
  // link). No-op with commit_timeout == 0, so failure-free runs are unaffected.
  void ArmFrontierWatch();

  common::ProcessId OwnerOf(uint64_t slot) const {
    return static_cast<common::ProcessId>(slot % n_);
  }

  Config config_;
  std::map<uint64_t, Slot> log_;
  uint64_t next_own_slot_ = 0;  // smallest unused slot owned by this process
  uint64_t execute_upto_ = 0;
  uint64_t max_seen_slot_ = 0;  // highest slot observed in traffic (catch-up bound)
  std::vector<Outcome> history_;  // bounded ring, see Outcome
  size_t history_limit_ = 1 << 17;  // ring capacity, mirrors decided_cache_limit_
  std::set<common::ProcessId> suspected_;
  bool restarted_ = false;
  bool retry_timer_armed_ = false;
  // Slot with a pending frontier-watch timer (~0 = none); see ArmFrontierWatch.
  uint64_t frontier_watch_slot_ = ~uint64_t{0};
};

}  // namespace mencius

#endif  // SRC_MENCIUS_MENCIUS_H_
