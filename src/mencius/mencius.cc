#include "src/mencius/mencius.h"

#include <algorithm>

#include "src/common/check.h"

namespace mencius {

using common::ProcessId;

namespace {
// Timer tokens: low two bits select the type.
constexpr uint64_t kRetryToken = 1;             // revocation retry scan
constexpr uint64_t kCommitTimeoutType = 2;      // (slot << 2) | 2
constexpr uint64_t kFrontierWatchType = 3;      // (slot << 2) | 3, see ArmFrontierWatch
}  // namespace

MenciusEngine::MenciusEngine(Config config) : config_(config) {
  CHECK_GE(config_.n, 3u);
}

void MenciusEngine::OnStart() {
  CHECK_EQ(config_.n, n_);
  next_own_slot_ = self_;
}

smr::RestartHint MenciusEngine::restart_hint() const {
  return smr::RestartHint{next_own_slot_, execute_upto_};
}

void MenciusEngine::ApplyRestartHint(const smr::RestartHint& hint) {
  next_own_slot_ = std::max(next_own_slot_, hint.seq_floor);
  execute_upto_ = std::max(execute_upto_, hint.exec_floor);
  // Outcomes below the floor stay unknown: ring entries are slot-validated, so the
  // never-filled positions read as unknown without materializing them.
  restarted_ = true;
  MaybeRecoverBlocked();
}

void MenciusEngine::Submit(smr::Command cmd) {
  stats_.submitted++;
  // Our next own slot may already have been decided without us: a peer's revocation
  // can skip (or re-commit) a lagging slot of ours, and that does not advance
  // next_own_slot_. Proposing into a decided slot would strand a kProposed entry
  // below the execution frontier, where every "already decided" answer is discarded
  // and its commit-timeout retries forever.
  uint64_t slot = next_own_slot_;
  while (true) {
    if (slot < execute_upto_) {
      slot += n_;
      continue;
    }
    auto decided = log_.find(slot);
    if (decided != log_.end()) {
      const Slot& d = decided->second;
      // Decided slots are unusable, and so are slots carrying Paxos acceptor
      // state: proposing is an implicit self-accept at ballot 0, which must not
      // clobber a promise (or an accepted revocation value) at a higher ballot —
      // a revoker whose prepare majority meets the accept majority only here
      // would see cmd@0 instead of the accepted skip and decide a command for a
      // slot other replicas already executed as a skip.
      if (d.state == SlotState::kCommitted || d.state == SlotState::kSkipped ||
          d.promised > 0 || d.vkind != 0) {
        slot += n_;
        continue;
      }
    }
    break;
  }
  next_own_slot_ = slot;
  next_own_slot_ += n_;
  Slot& s = log_[slot];
  s.state = SlotState::kProposed;
  s.cmd = cmd;
  s.acked = common::Quorum();
  s.acked.Add(self_);
  s.vkind = 1;  // the proposal is an implicit self-accept at ballot 0
  s.vbal = 0;
  msg::MnPropose prop;
  prop.slot = slot;
  prop.cmd = std::move(cmd);
  prop.own_next = next_own_slot_;
  for (ProcessId p = 0; p < n_; p++) {
    if (p != self_) {
      SendTo(p, prop);
    }
  }
  if (config_.commit_timeout > 0) {
    ctx_->SetTimer(config_.commit_timeout, (slot << 2) | kCommitTimeoutType);
  }
  if (n_ == 1) {
    TryExecute();
  }
}

const MenciusEngine::Outcome* MenciusEngine::FindOutcome(uint64_t slot) const {
  uint64_t idx = slot % history_limit_;
  if (idx >= history_.size() || history_[idx].what == 0 ||
      history_[idx].slot != slot) {
    return nullptr;
  }
  return &history_[idx];
}

void MenciusEngine::RememberOutcome(uint64_t slot, uint8_t what, smr::Command cmd) {
  uint64_t idx = slot % history_limit_;
  if (history_.size() <= idx) {
    history_.resize(idx + 1);  // grows to at most history_limit_ entries
  }
  history_[idx] = Outcome{slot, what, std::move(cmd)};
}

bool MenciusEngine::AnswerIfDecided(ProcessId from, uint64_t slot) {
  uint8_t what = 0;
  const smr::Command* cmd = nullptr;
  if (slot < execute_upto_) {
    if (const Outcome* o = FindOutcome(slot)) {
      what = o->what;
      cmd = &o->cmd;
    }
  } else {
    auto it = log_.find(slot);
    if (it != log_.end()) {
      if (it->second.state == SlotState::kCommitted) {
        what = 1;
        cmd = &it->second.cmd;
      } else if (it->second.state == SlotState::kSkipped) {
        what = 2;
      }
    }
  }
  if (what == 1) {
    msg::MnCommit c;
    c.slot = slot;
    c.cmd = *cmd;
    SendTo(from, c);
    return true;
  }
  if (what == 2) {
    msg::MnRevokeSkip sk;
    sk.slot = slot;
    SendTo(from, sk);
    return true;
  }
  return false;
}

void MenciusEngine::HandlePropose(ProcessId from, const msg::MnPropose& m) {
  max_seen_slot_ = std::max(max_seen_slot_, std::max(m.slot, m.own_next));
  // Free our own lagging slots so the proposer's slot can eventually execute.
  SkipOwnSlotsBelow(m.slot);
  if (m.slot < execute_upto_) {
    // Already executed here: a retransmission (e.g. after the proposer healed).
    // Answer from retained history if we still know the outcome.
    AnswerIfDecided(from, m.slot);
    return;
  }
  Slot& s = log_[m.slot];
  if (s.state == SlotState::kCommitted || s.state == SlotState::kSkipped) {
    AnswerIfDecided(from, m.slot);
    return;
  }
  if (s.promised > 0) {
    // We promised a revocation ballot: the ballot-0 proposal can no longer be
    // accepted here (the revoker may decide a skip).
    return;
  }
  if (s.state == SlotState::kEmpty) {
    s.state = SlotState::kProposed;
    s.cmd = m.cmd;
  }
  s.vkind = 1;  // accepted at ballot 0
  s.vbal = 0;
  msg::MnAck ack;
  ack.slot = m.slot;
  ack.own_next = next_own_slot_;
  SendTo(from, ack);
}

void MenciusEngine::SkipOwnSlotsBelow(uint64_t bound) {
  if (next_own_slot_ >= bound) {
    return;
  }
  uint64_t from = next_own_slot_;
  MarkSkipped(self_, from, bound);
  // Advance to the smallest owned slot >= bound.
  uint64_t steps = (bound - next_own_slot_ + n_ - 1) / n_;
  next_own_slot_ += steps * n_;
  msg::MnSkipRange skip;
  skip.owner = self_;
  skip.from = from;
  skip.to = bound;
  for (ProcessId p = 0; p < n_; p++) {
    if (p != self_) {
      SendTo(p, skip);
    }
  }
  TryExecute();
}

void MenciusEngine::MarkSkipped(ProcessId owner, uint64_t from, uint64_t to) {
  // Owned slots of `owner` in [from, to).
  uint64_t first = from;
  uint64_t rem = first % n_;
  if (rem != owner) {
    first += (owner + n_ - rem) % n_;
  }
  for (uint64_t slot = first; slot < to; slot += n_) {
    if (slot < execute_upto_) {
      continue;  // already executed; do not recreate stale entries (dup delivery)
    }
    Slot& s = log_[slot];
    if (s.state == SlotState::kEmpty) {
      s.state = SlotState::kSkipped;
    }
  }
}

bool MenciusEngine::AckSetComplete(const Slot& s) const {
  // The ack set must form a majority so it intersects any revocation majority (a
  // committed command can then never be revoked into a skip), and must cover every
  // non-suspected replica (Mencius runs at the speed of the slowest live replica).
  if (s.acked.size() * 2 <= n_) {
    return false;
  }
  for (ProcessId p = 0; p < n_; p++) {
    if (!s.acked.Contains(p) && suspected_.count(p) == 0) {
      return false;
    }
  }
  return true;
}

void MenciusEngine::CommitOwnSlot(uint64_t slot, Slot& s) {
  s.state = SlotState::kCommitted;
  stats_.committed++;
  ctx_->Committed(common::Dot{self_, slot}, s.cmd, /*fast_path=*/false);
  msg::MnCommit commit;
  commit.slot = slot;
  commit.cmd = s.cmd;
  for (ProcessId p = 0; p < n_; p++) {
    if (p != self_) {
      SendTo(p, commit);
    }
  }
  TryExecute();  // may erase the slot; `s` must not be touched afterwards
}

void MenciusEngine::MaybeCommitOwn() {
  std::vector<uint64_t> ready;
  for (auto& [slot, s] : log_) {
    if (OwnerOf(slot) == self_ && s.state == SlotState::kProposed &&
        AckSetComplete(s)) {
      ready.push_back(slot);
    }
  }
  for (uint64_t slot : ready) {
    auto it = log_.find(slot);
    if (it != log_.end() && it->second.state == SlotState::kProposed) {
      CommitOwnSlot(slot, it->second);
    }
  }
}

void MenciusEngine::HandleAck(ProcessId from, const msg::MnAck& m) {
  max_seen_slot_ = std::max(max_seen_slot_, m.own_next);
  auto it = log_.find(m.slot);
  if (it == log_.end() || OwnerOf(m.slot) != self_) {
    return;
  }
  Slot& s = it->second;
  if (s.state != SlotState::kProposed || s.acked.Contains(from)) {
    return;
  }
  s.acked.Add(from);
  if (AckSetComplete(s)) {
    CommitOwnSlot(m.slot, s);
  }
}

void MenciusEngine::HandleCommit(ProcessId from, const msg::MnCommit& m) {
  max_seen_slot_ = std::max(max_seen_slot_, m.slot);
  if (m.slot < execute_upto_) {
    return;  // duplicate delivery of an already-executed slot
  }
  Slot& s = log_[m.slot];
  if (s.state == SlotState::kCommitted || s.state == SlotState::kSkipped) {
    return;
  }
  s.state = SlotState::kCommitted;
  s.cmd = m.cmd;
  stats_.committed++;
  ctx_->Committed(common::Dot{OwnerOf(m.slot), m.slot}, s.cmd, /*fast_path=*/false);
  TryExecute();
}

void MenciusEngine::HandleSkipRange(ProcessId from, const msg::MnSkipRange& m) {
  max_seen_slot_ = std::max(max_seen_slot_, m.to);
  MarkSkipped(m.owner, m.from, m.to);
  TryExecute();
}

void MenciusEngine::HandleRevoke(ProcessId from, const msg::MnRevoke& m) {
  if (AnswerIfDecided(from, m.slot)) {
    return;
  }
  if (m.slot < execute_upto_) {
    return;  // executed but outcome unknown (post-restart amnesia): abstain
  }
  Slot& s = log_[m.slot];
  if (m.ballot <= s.promised) {
    return;
  }
  s.promised = m.ballot;
  msg::MnRevokePromise p;
  p.slot = m.slot;
  p.ballot = m.ballot;
  p.vbal = s.vbal;
  p.vkind = s.vkind;
  if (s.vkind == 1) {
    p.cmd = s.cmd;
  }
  SendTo(from, p);
}

void MenciusEngine::HandleRevokePromise(ProcessId from,
                                        const msg::MnRevokePromise& m) {
  auto it = log_.find(m.slot);
  if (it == log_.end()) {
    return;
  }
  Slot& s = it->second;
  if (s.rev_phase != 1 || m.ballot != s.rev_ballot ||
      s.rev_promised.Contains(from)) {
    return;
  }
  s.rev_promised.Add(from);
  if (m.vkind != 0 && (s.rev_choice == 0 || m.vbal > s.rev_best_vbal)) {
    s.rev_best_vbal = m.vbal;
    s.rev_choice = m.vkind;
    s.rev_cmd = m.cmd;
  }
  if (s.rev_promised.size() * 2 > n_) {
    s.rev_phase = 2;
    if (s.rev_choice == 0) {
      s.rev_choice = 2;  // no majority member accepted anything: decide skip
    }
    msg::MnRevokeAccept a;
    a.slot = m.slot;
    a.ballot = s.rev_ballot;
    a.choice = s.rev_choice;
    if (s.rev_choice == 1) {
      a.cmd = s.rev_cmd;
    }
    SendAll(a);
  }
}

void MenciusEngine::HandleRevokeAccept(ProcessId from,
                                       const msg::MnRevokeAccept& m) {
  if (AnswerIfDecided(from, m.slot)) {
    return;
  }
  if (m.slot < execute_upto_) {
    return;
  }
  Slot& s = log_[m.slot];
  if (m.ballot < s.promised) {
    return;
  }
  s.promised = m.ballot;
  s.vbal = m.ballot;
  s.vkind = m.choice;
  if (m.choice == 1) {
    s.cmd = m.cmd;
    if (s.state == SlotState::kEmpty) {
      s.state = SlotState::kProposed;
    }
  }
  msg::MnRevokeAccepted a;
  a.slot = m.slot;
  a.ballot = m.ballot;
  SendTo(from, a);
}

void MenciusEngine::HandleRevokeAccepted(ProcessId from,
                                         const msg::MnRevokeAccepted& m) {
  auto it = log_.find(m.slot);
  if (it == log_.end()) {
    return;
  }
  Slot& s = it->second;
  if (s.rev_phase != 2 || m.ballot != s.rev_ballot ||
      s.rev_accepted.Contains(from)) {
    return;
  }
  s.rev_accepted.Add(from);
  if (s.rev_accepted.size() * 2 > n_) {
    // Decided. Copy out before broadcasting: the inline self-delivery executes and
    // erases the slot entry.
    uint8_t choice = s.rev_choice;
    smr::Command cmd = s.rev_cmd;
    s.rev_phase = 0;
    if (choice == 1) {
      msg::MnCommit c;
      c.slot = m.slot;
      c.cmd = std::move(cmd);
      SendAll(c);
    } else {
      msg::MnRevokeSkip sk;
      sk.slot = m.slot;
      SendAll(sk);
    }
  }
}

void MenciusEngine::HandleRevokeSkip(ProcessId from, const msg::MnRevokeSkip& m) {
  if (m.slot < execute_upto_) {
    return;
  }
  Slot& s = log_[m.slot];
  if (s.state == SlotState::kCommitted) {
    return;
  }
  if (s.state == SlotState::kProposed && OwnerOf(m.slot) == self_) {
    // Our own in-flight proposal was revoked into a skip: the payload is lost under
    // this slot; tell the client to resubmit.
    ctx_->Dropped(common::Dot{self_, m.slot}, s.cmd);
  }
  s.state = SlotState::kSkipped;
  TryExecute();
}

void MenciusEngine::TryExecute() {
  while (true) {
    auto it = log_.find(execute_upto_);
    if (it == log_.end()) {
      break;
    }
    Slot& s = it->second;
    if (s.state == SlotState::kCommitted) {
      stats_.executed++;
      ctx_->Executed(common::Dot{OwnerOf(execute_upto_), execute_upto_}, s.cmd);
      RememberOutcome(execute_upto_, 1, std::move(s.cmd));
    } else if (s.state == SlotState::kSkipped) {
      RememberOutcome(execute_upto_, 2, smr::Command());
    } else {
      break;
    }
    log_.erase(it);
    execute_upto_++;
  }
  if (!suspected_.empty() || restarted_) {
    MaybeRecoverBlocked();
  }
  ArmFrontierWatch();
}

void MenciusEngine::ArmFrontierWatch() {
  if (config_.commit_timeout <= 0 || execute_upto_ >= max_seen_slot_) {
    return;  // nothing decided (or even seen) beyond the frontier
  }
  auto it = log_.find(execute_upto_);
  if (it != log_.end() && (it->second.state == SlotState::kCommitted ||
                           it->second.state == SlotState::kSkipped)) {
    return;  // decided; TryExecute will advance
  }
  if (frontier_watch_slot_ == execute_upto_) {
    return;  // already watched
  }
  frontier_watch_slot_ = execute_upto_;
  ctx_->SetTimer(config_.commit_timeout,
                 (execute_upto_ << 2) | kFrontierWatchType);
}

void MenciusEngine::ArmRetryTimer() {
  if (retry_timer_armed_ || config_.revoke_retry_interval == 0) {
    return;
  }
  retry_timer_armed_ = true;
  ctx_->SetTimer(config_.revoke_retry_interval, kRetryToken);
}

void MenciusEngine::StartRevoke(uint64_t slot) {
  Slot& s = log_[slot];
  if (s.state == SlotState::kCommitted || s.state == SlotState::kSkipped) {
    return;
  }
  s.rev_ballot = common::NextRecoveryBallot(
      self_, std::max(s.promised, s.rev_ballot), n_);
  s.rev_phase = 1;
  s.rev_promised = common::Quorum();
  s.rev_accepted = common::Quorum();
  s.rev_best_vbal = 0;
  s.rev_choice = 0;
  s.rev_cmd = smr::Command();
  stats_.recoveries_started++;
  msg::MnRevoke m;
  m.slot = slot;
  m.ballot = s.rev_ballot;
  SendAll(m);
}

void MenciusEngine::MaybeRecoverBlocked() {
  common::Time now = ctx_->Now();
  // Catch-up burst: a restarted replica far behind the cluster revokes a window of
  // stale slots at once; peers short-circuit decided slots from retained history.
  if (restarted_ && execute_upto_ + n_ < max_seen_slot_) {
    uint64_t end = std::min(execute_upto_ + 32, max_seen_slot_);
    for (uint64_t slot = execute_upto_; slot < end; slot++) {
      Slot& s = log_[slot];
      if (s.state == SlotState::kCommitted || s.state == SlotState::kSkipped) {
        continue;
      }
      if (now >= s.next_revoke_at) {
        s.next_revoke_at = now + config_.revoke_retry_interval;
        StartRevoke(slot);
      }
    }
    ArmRetryTimer();
    return;
  }
  uint64_t slot = execute_upto_;
  auto it = log_.find(slot);
  // Idle frontier: nothing known about this slot and no traffic decided beyond it.
  // There is nothing to recover — revoking here would skip empty future slots
  // forever (a restarted replica stays restarted_, so the retry timer would never
  // quiesce and the run could not drain).
  if ((it == log_.end() ||
       (it->second.state == SlotState::kEmpty && it->second.rev_phase == 0)) &&
      execute_upto_ >= max_seen_slot_) {
    return;
  }
  Slot& s = log_[slot];
  if (s.state == SlotState::kCommitted || s.state == SlotState::kSkipped) {
    return;  // decided; TryExecute will advance
  }
  bool eligible = restarted_ || suspected_.count(OwnerOf(slot)) > 0 ||
                  s.rev_phase != 0;
  if (!eligible) {
    return;
  }
  if (s.next_revoke_at == 0) {
    // Grace period: the slot may simply be in flight; revoke only if it is still
    // undecided when the retry timer fires.
    s.next_revoke_at = now + config_.revoke_retry_interval;
    ArmRetryTimer();
    return;
  }
  if (now < s.next_revoke_at) {
    ArmRetryTimer();
    return;
  }
  s.next_revoke_at = now + config_.revoke_retry_interval;
  StartRevoke(slot);
  ArmRetryTimer();
}

void MenciusEngine::OnTimer(uint64_t token) {
  if (token == kRetryToken) {
    retry_timer_armed_ = false;
    if (!suspected_.empty() || restarted_) {
      MaybeRecoverBlocked();
      return;
    }
    // A revocation may still be in flight on the frontier (own-slot commit timeout).
    auto it = log_.find(execute_upto_);
    if (it != log_.end() && it->second.rev_phase != 0) {
      MaybeRecoverBlocked();
    }
    return;
  }
  if ((token & 3) == kCommitTimeoutType) {
    uint64_t slot = token >> 2;
    auto it = log_.find(slot);
    if (it != log_.end() && it->second.state == SlotState::kProposed &&
        OwnerOf(slot) == self_) {
      // Commit timeout: learn (or force) the outcome of our own slot via
      // revocation — if any majority member acked, the command is re-proposed;
      // otherwise it is skipped and the client told to resubmit.
      StartRevoke(slot);
      ctx_->SetTimer(config_.commit_timeout, token);  // per-slot retry
    }
    return;
  }
  if ((token & 3) == kFrontierWatchType) {
    uint64_t slot = token >> 2;
    if (frontier_watch_slot_ == slot) {
      frontier_watch_slot_ = ~uint64_t{0};
    }
    if (execute_upto_ != slot) {
      return;  // frontier advanced; a new watch was armed if still blocked
    }
    auto it = log_.find(slot);
    if (it != log_.end() && (it->second.state == SlotState::kCommitted ||
                             it->second.state == SlotState::kSkipped)) {
      return;
    }
    // Frontier stuck a full commit timeout with traffic decided beyond it: the
    // slot's outcome was lost on the wire. Revoke it — if anyone accepted the
    // owner's proposal, revocation re-commits it; otherwise the slot is skipped.
    StartRevoke(slot);
    frontier_watch_slot_ = slot;
    ctx_->SetTimer(config_.commit_timeout, token);
    return;
  }
}

void MenciusEngine::OnSuspect(ProcessId p) {
  if (p == self_) {
    return;
  }
  if (!suspected_.insert(p).second) {
    return;
  }
  MaybeCommitOwn();
  MaybeRecoverBlocked();
}

void MenciusEngine::OnRestore(ProcessId p, uint64_t seq_floor) {
  (void)seq_floor;
  suspected_.erase(p);
  // Re-offer pending proposals the restarted process never acked: its fresh
  // incarnation lost any in-flight MnPropose, and commit needs its ack.
  for (auto& [slot, s] : log_) {
    if (OwnerOf(slot) == self_ && s.state == SlotState::kProposed &&
        !s.acked.Contains(p)) {
      msg::MnPropose prop;
      prop.slot = slot;
      prop.cmd = s.cmd;
      prop.own_next = next_own_slot_;
      SendTo(p, prop);
    }
  }
}

void MenciusEngine::OnMessage(ProcessId from, const msg::Message& m) {
  if (auto* v = msg::get_if<msg::MnPropose>(&m)) {
    HandlePropose(from, *v);
  } else if (auto* v = msg::get_if<msg::MnAck>(&m)) {
    HandleAck(from, *v);
  } else if (auto* v = msg::get_if<msg::MnCommit>(&m)) {
    HandleCommit(from, *v);
  } else if (auto* v = msg::get_if<msg::MnSkipRange>(&m)) {
    HandleSkipRange(from, *v);
  } else if (auto* v = msg::get_if<msg::MnRevoke>(&m)) {
    HandleRevoke(from, *v);
  } else if (auto* v = msg::get_if<msg::MnRevokePromise>(&m)) {
    HandleRevokePromise(from, *v);
  } else if (auto* v = msg::get_if<msg::MnRevokeAccept>(&m)) {
    HandleRevokeAccept(from, *v);
  } else if (auto* v = msg::get_if<msg::MnRevokeAccepted>(&m)) {
    HandleRevokeAccepted(from, *v);
  } else if (auto* v = msg::get_if<msg::MnRevokeSkip>(&m)) {
    HandleRevokeSkip(from, *v);
  }
}

}  // namespace mencius
