#include "src/mencius/mencius.h"

#include <algorithm>

#include "src/common/check.h"

namespace mencius {

using common::ProcessId;

MenciusEngine::MenciusEngine(Config config) : config_(config) {
  CHECK_GE(config_.n, 3u);
}

void MenciusEngine::OnStart() {
  CHECK_EQ(config_.n, n_);
  next_own_slot_ = self_;
}

void MenciusEngine::Submit(smr::Command cmd) {
  stats_.submitted++;
  uint64_t slot = next_own_slot_;
  next_own_slot_ += n_;
  Slot& s = log_[slot];
  s.state = SlotState::kProposed;
  s.cmd = cmd;
  s.acked = common::Quorum();
  s.acked.Add(self_);
  msg::MnPropose prop;
  prop.slot = slot;
  prop.cmd = std::move(cmd);
  prop.own_next = next_own_slot_;
  for (ProcessId p = 0; p < n_; p++) {
    if (p != self_) {
      SendTo(p, prop);
    }
  }
  if (n_ == 1) {
    TryExecute();
  }
}

void MenciusEngine::HandlePropose(ProcessId from, const msg::MnPropose& m) {
  Slot& s = log_[m.slot];
  if (s.state == SlotState::kEmpty) {
    s.state = SlotState::kProposed;
    s.cmd = m.cmd;
  }
  // Free our own lagging slots so the proposer's slot can eventually execute.
  SkipOwnSlotsBelow(m.slot);
  msg::MnAck ack;
  ack.slot = m.slot;
  ack.own_next = next_own_slot_;
  SendTo(from, ack);
}

void MenciusEngine::SkipOwnSlotsBelow(uint64_t bound) {
  if (next_own_slot_ >= bound) {
    return;
  }
  uint64_t from = next_own_slot_;
  MarkSkipped(self_, from, bound);
  // Advance to the smallest owned slot >= bound.
  uint64_t steps = (bound - next_own_slot_ + n_ - 1) / n_;
  next_own_slot_ += steps * n_;
  msg::MnSkipRange skip;
  skip.owner = self_;
  skip.from = from;
  skip.to = bound;
  for (ProcessId p = 0; p < n_; p++) {
    if (p != self_) {
      SendTo(p, skip);
    }
  }
  TryExecute();
}

void MenciusEngine::MarkSkipped(ProcessId owner, uint64_t from, uint64_t to) {
  // Owned slots of `owner` in [from, to).
  uint64_t first = from;
  uint64_t rem = first % n_;
  if (rem != owner) {
    first += (owner + n_ - rem) % n_;
  }
  for (uint64_t slot = first; slot < to; slot += n_) {
    Slot& s = log_[slot];
    if (s.state == SlotState::kEmpty) {
      s.state = SlotState::kSkipped;
    }
  }
}

void MenciusEngine::HandleAck(ProcessId from, const msg::MnAck& m) {
  auto it = log_.find(m.slot);
  if (it == log_.end() || OwnerOf(m.slot) != self_) {
    return;
  }
  Slot& s = it->second;
  if (s.state != SlotState::kProposed || s.acked.Contains(from)) {
    return;
  }
  s.acked.Add(from);
  if (s.acked.size() == n_) {
    // Every replica acknowledged (and thereby skipped past this slot): commit.
    s.state = SlotState::kCommitted;
    stats_.committed++;
    ctx_->Committed(common::Dot{self_, m.slot}, s.cmd, /*fast_path=*/false);
    msg::MnCommit commit;
    commit.slot = m.slot;
    commit.cmd = s.cmd;
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, commit);
      }
    }
    TryExecute();
  }
}

void MenciusEngine::HandleCommit(ProcessId from, const msg::MnCommit& m) {
  Slot& s = log_[m.slot];
  if (s.state == SlotState::kCommitted) {
    return;
  }
  s.state = SlotState::kCommitted;
  s.cmd = m.cmd;
  stats_.committed++;
  ctx_->Committed(common::Dot{OwnerOf(m.slot), m.slot}, s.cmd, /*fast_path=*/false);
  TryExecute();
}

void MenciusEngine::HandleSkipRange(ProcessId from, const msg::MnSkipRange& m) {
  MarkSkipped(m.owner, m.from, m.to);
  TryExecute();
}

void MenciusEngine::TryExecute() {
  while (true) {
    auto it = log_.find(execute_upto_);
    if (it == log_.end()) {
      return;
    }
    Slot& s = it->second;
    if (s.state == SlotState::kCommitted) {
      stats_.executed++;
      ctx_->Executed(common::Dot{OwnerOf(execute_upto_), execute_upto_}, s.cmd);
    } else if (s.state != SlotState::kSkipped) {
      return;
    }
    log_.erase(it);
    execute_upto_++;
  }
}

void MenciusEngine::OnMessage(ProcessId from, const msg::Message& m) {
  if (auto* v = msg::get_if<msg::MnPropose>(&m)) {
    HandlePropose(from, *v);
  } else if (auto* v = msg::get_if<msg::MnAck>(&m)) {
    HandleAck(from, *v);
  } else if (auto* v = msg::get_if<msg::MnCommit>(&m)) {
    HandleCommit(from, *v);
  } else if (auto* v = msg::get_if<msg::MnSkipRange>(&m)) {
    HandleSkipRange(from, *v);
  }
}

}  // namespace mencius
