#include "src/rt/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cstring>

#include "src/common/check.h"

namespace rt {

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  CHECK_GE(epoll_fd_, 0);
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  CHECK_GE(wake_fd_, 0);
  WatchFd(wake_fd_, EPOLLIN, [this](uint32_t) {
    uint64_t junk;
    while (read(wake_fd_, &junk, sizeof(junk)) > 0) {
    }
    DrainPosted();
  });
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) {
    close(wake_fd_);
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

common::Time EventLoop::NowUs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<common::Time>(ts.tv_sec) * common::kSecond + ts.tv_nsec / 1000;
}

void EventLoop::WatchFd(int fd, uint32_t events, FdCallback cb) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  bool existed = watches_.count(fd) > 0;
  watches_[fd] = Watch{std::move(cb), events};
  int rc = epoll_ctl(epoll_fd_, existed ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd, &ev);
  CHECK_EQ(rc, 0);
}

void EventLoop::ModifyFd(int fd, uint32_t events) {
  auto it = watches_.find(fd);
  CHECK(it != watches_.end());
  if (it->second.events == events) {
    return;
  }
  it->second.events = events;
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  CHECK_EQ(epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev), 0);
}

void EventLoop::UnwatchFd(int fd) {
  if (watches_.erase(fd) > 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

uint64_t EventLoop::AddTimer(common::Duration delay, TimerCallback cb) {
  uint64_t id = next_timer_id_++;
  timers_.push(Timer{NowUs() + delay, id, std::move(cb)});
  return id;
}

void EventLoop::PostFromAnyThread(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
  }
  uint64_t one = 1;
  ssize_t rc = write(wake_fd_, &one, sizeof(one));
  (void)rc;
}

void EventLoop::DrainPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) {
    fn();
  }
}

void EventLoop::Run() {
  running_ = true;
  std::vector<struct epoll_event> events(64);
  while (running_) {
    int timeout_ms = -1;
    common::Time now = NowUs();
    while (!timers_.empty() && timers_.top().deadline <= now) {
      Timer t = timers_.top();
      timers_.pop();
      t.cb();
      now = NowUs();
    }
    if (!timers_.empty()) {
      timeout_ms = static_cast<int>((timers_.top().deadline - now) / 1000) + 1;
    }
    int nfds = epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                          timeout_ms);
    for (int i = 0; i < nfds && running_; i++) {
      auto it = watches_.find(events[static_cast<size_t>(i)].data.fd);
      if (it != watches_.end()) {
        // Copy: the callback may unwatch (and erase) itself.
        FdCallback cb = it->second.cb;
        cb(events[static_cast<size_t>(i)].events);
      }
    }
  }
}

void EventLoop::Stop() {
  PostFromAnyThread([this]() { running_ = false; });
}

}  // namespace rt
