#include "src/rt/node.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <thread>

#include "src/codec/codec.h"
#include "src/common/check.h"
#include "src/dur/frontier.h"
#include "src/dur/shard_durability.h"

namespace rt {

namespace {

constexpr uint8_t kFrameMessage = 0;
constexpr uint8_t kFramePeerHello = 1;
constexpr uint8_t kFrameClientHello = 2;
constexpr uint8_t kFrameCatchupReq = 3;
constexpr uint8_t kFrameCatchupEntries = 4;

constexpr common::Duration kRedialFloor = 50 * common::kMillisecond;
constexpr common::Duration kRedialCap = common::kSecond;

void SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  CHECK_GE(flags, 0);
  CHECK_GE(fcntl(fd, F_SETFL, flags | O_NONBLOCK), 0);
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// Framed, buffered, non-blocking TCP connection bound to a Node's event loop.
class Connection {
 public:
  Connection(Node* node, int fd) : node_(node), fd_(fd) {
    SetNonBlocking(fd_);
    SetNoDelay(fd_);
    node_->loop_.WatchFd(fd_, EPOLLIN, [this](uint32_t events) { OnReady(events); });
  }

  ~Connection() {
    if (fd_ >= 0) {
      node_->loop_.UnwatchFd(fd_);
      close(fd_);
    }
  }

  void SendFrame(const std::vector<uint8_t>& payload) {
    QueueFrame(payload);
    Flush();
  }

  // Appends a frame to the write buffer without flushing. The threaded drain
  // path queues every frame a drain pass produces, then flushes each dirty
  // connection once — one write syscall per socket per pass, however many
  // shards fed it.
  void QueueFrame(const std::vector<uint8_t>& payload) {
    uint8_t header[4];
    uint32_t len = static_cast<uint32_t>(payload.size());
    std::memcpy(header, &len, 4);
    out_.insert(out_.end(), header, header + 4);
    out_.insert(out_.end(), payload.begin(), payload.end());
  }

  void Flush() {
    while (!out_.empty()) {
      ssize_t n = write(fd_, out_.data(), out_.size());
      if (n > 0) {
        out_.erase(out_.begin(), out_.begin() + n);
      } else {
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          closed_ = true;
        }
        break;
      }
    }
    node_->loop_.ModifyFd(fd_, out_.empty() ? EPOLLIN : (EPOLLIN | EPOLLOUT));
    if (closed_) {
      node_->NoteClosed(this);
    }
  }

  bool closed() const { return closed_; }
  common::ProcessId peer_id = common::kInvalidProcess;  // set after peer hello
  bool is_client = false;
  bool dirty = false;  // queued frames awaiting the pass-end flush (threaded mode)

 private:
  void OnReady(uint32_t events) {
    if (events & EPOLLOUT) {
      Flush();
    }
    if (events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
      ReadAll();
    }
  }

  void ReadAll() {
    uint8_t buf[16 * 1024];
    while (true) {
      ssize_t n = read(fd_, buf, sizeof(buf));
      if (n > 0) {
        in_.insert(in_.end(), buf, buf + n);
      } else if (n == 0) {
        closed_ = true;
        break;
      } else {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          break;
        }
        closed_ = true;
        break;
      }
    }
    size_t off = 0;
    while (in_.size() - off >= 4) {
      uint32_t len;
      std::memcpy(&len, in_.data() + off, 4);
      if (len > 64u * 1024 * 1024) {  // sanity bound
        closed_ = true;
        break;
      }
      if (in_.size() - off - 4 < len) {
        break;
      }
      node_->OnFrame(this, in_.data() + off + 4, len);
      off += 4 + len;
    }
    if (off > 0) {
      in_.erase(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(off));
    }
    if (closed_) {
      node_->NoteClosed(this);
    }
  }

  Node* node_;
  int fd_;
  std::vector<uint8_t> in_;
  std::vector<uint8_t> out_;
  bool closed_ = false;
};

Node::Node(common::ProcessId id, std::vector<PeerAddress> peers,
           smr::Deployment* deployment)
    : self_(id), peers_(std::move(peers)), deployment_(deployment) {
  CHECK_LT(self_, peers_.size());
  CHECK(deployment_ != nullptr);
  if (deployment_->options().threaded) {
    ShardRuntime::Options ro;
    ro.pin_cores = deployment_->options().pin_cores;
    ro.mailbox_capacity = deployment_->options().mailbox_capacity;
    shards_ = std::make_unique<ShardRuntime>(deployment_, ro);
    shards_->set_output_notify([this]() { out_bell_.Ring(); });
    loop_.WatchFd(out_bell_.fd(), EPOLLIN, [this](uint32_t) { OnWorkerOutput(); });
    out_bell_.Arm();
  }
}

Node::~Node() {
  if (listen_fd_ >= 0) {
    close(listen_fd_);
  }
}

bool Node::Listen() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  CHECK_GE(listen_fd_, 0);
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(peers_[self_].port);
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    return false;
  }
  if (peers_[self_].port == 0) {
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    peers_[self_].port = ntohs(addr.sin_port);
  }
  CHECK_EQ(listen(listen_fd_, 64), 0);
  SetNonBlocking(listen_fd_);
  loop_.WatchFd(listen_fd_, EPOLLIN, [this](uint32_t) { AcceptReady(); });
  return true;
}

void Node::AcceptReady() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      break;
    }
    anonymous_.push_back(std::make_unique<Connection>(this, fd));
  }
}

void Node::Run() {
  CHECK_GE(listen_fd_, 0);
  // Dial peers with a higher id; retry until everyone is up.
  for (common::ProcessId p = self_ + 1; p < peers_.size(); p++) {
    int fd = -1;
    while (true) {
      fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
      CHECK_GE(fd, 0);
      struct sockaddr_in addr;
      std::memset(&addr, 0, sizeof(addr));
      addr.sin_family = AF_INET;
      addr.sin_port = htons(peers_[p].port);
      inet_pton(AF_INET, peers_[p].host.c_str(), &addr.sin_addr);
      if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) == 0) {
        break;
      }
      close(fd);
      usleep(50 * 1000);
    }
    auto conn = std::make_unique<Connection>(this, fd);
    // Send peer hello.
    encode_scratch_.Clear();
    encode_scratch_.U8(kFramePeerHello);
    encode_scratch_.U32(self_);
    conn->SendFrame(encode_scratch_.buffer());
    conn->peer_id = p;
    OnPeerConnected(p, std::move(conn));
  }
  MaybeStartEngine();
  loop_.Run();
  if (shards_ != nullptr) {
    // Join every shard worker before returning control to the caller (who may
    // destroy the deployment), then push out whatever the workers produced
    // between the last drain and the join.
    shards_->Stop();
    DrainShardOutputs();
    FlushDirty();
  }
}

void Node::OnPeerConnected(common::ProcessId peer, std::unique_ptr<Connection> conn) {
  // A reconnect replaces any stale connection to the same peer; scrub every
  // raw pointer to the old one before its unique_ptr frees it. An in-flight
  // dial to that peer (it beat us to reconnecting) is abandoned too.
  auto old = peer_conns_.find(peer);
  if (old != peer_conns_.end() && old->second != nullptr) {
    ForgetConn(old->second.get());
  }
  auto dial = dialing_.find(peer);
  if (dial != dialing_.end()) {
    loop_.UnwatchFd(dial->second);
    close(dial->second);
    dialing_.erase(dial);
  }
  redial_backoff_.erase(peer);
  peer_conns_[peer] = std::move(conn);
  MaybeStartEngine();
}

void Node::MaybeStartEngine() {
  if (engine_started_ || peer_conns_.size() + 1 < peers_.size()) {
    return;
  }
  engine_started_ = true;
  if (shards_ != nullptr) {
    // Threaded tier: each worker binds and starts its own shard engine on its
    // own thread; the ShardedEngine wrapper (and this node's Context methods)
    // stay out of the message path entirely. Workers apply recovered restart
    // hints themselves, right after OnStart.
    shards_->Start(self_, static_cast<uint32_t>(peers_.size()));
    SendCatchupRequests();
    ReplayPendingPeerFrames();
    for (smr::Command& cmd : pending_submits_) {
      uint32_t shard = 0;
      if (deployment_->partitions() > 1) {
        deployment_->partitioner().SingleShard(cmd, &shard);  // validated at OnFrame
      }
      RouteInput(common::kInvalidProcess, nullptr, shard, &cmd);
    }
    pending_submits_.clear();
    return;
  }
  deployment_->engine().Bind(self_, static_cast<uint32_t>(peers_.size()), this);
  deployment_->engine().OnStart();
  if (deployment_->HasRecoveredState()) {
    // After OnStart, so protocol initialization cannot clobber the floors.
    deployment_->ApplyRestartHints(deployment_->RecoveredRestartHints());
  }
  SendCatchupRequests();
  ReplayPendingPeerFrames();
  for (smr::Command& cmd : pending_submits_) {
    deployment_->engine().Submit(std::move(cmd));
  }
  pending_submits_.clear();
}

void Node::BufferPeerFrame(common::ProcessId from, const uint8_t* data,
                           size_t size) {
  // Overflow falls back to dropping, as before buffering existed; the window
  // between mesh completion and engine start is a handful of milliseconds, so
  // the cap exists only to bound a misbehaving peer.
  constexpr size_t kMaxPendingPeerFrames = 65536;
  if (pending_peer_frames_.size() >= kMaxPendingPeerFrames) {
    return;
  }
  pending_peer_frames_.push_back(
      PendingPeerFrame{from, std::vector<uint8_t>(data, data + size)});
}

void Node::ReplayPendingPeerFrames() {
  std::vector<PendingPeerFrame> frames;
  frames.swap(pending_peer_frames_);
  for (PendingPeerFrame& f : frames) {
    codec::Reader r(f.bytes.data(), f.bytes.size());
    uint8_t kind = r.U8();
    switch (kind) {
      case kFrameMessage: {
        msg::Message m;
        if (!msg::Decode(r, m)) {
          break;
        }
        if (shards_ != nullptr) {
          RouteInput(f.from, &m, /*shard=*/0, nullptr);
        } else {
          deployment_->engine().OnMessage(f.from, m);
        }
        break;
      }
      case kFrameCatchupReq:
        HandleCatchupRequest(r);
        break;
      case kFrameCatchupEntries:
        HandleCatchupEntries(r);
        break;
      default:
        break;
    }
  }
}

void Node::SendCatchupRequests() {
  if (catchup_requested_ || !deployment_->durable() ||
      !deployment_->HasRecoveredState()) {
    return;
  }
  catchup_requested_ = true;
  const smr::Deployment::CatchupAdvert& adv = deployment_->catchup_advert();
  encode_scratch_.Clear();
  encode_scratch_.U8(kFrameCatchupReq);
  encode_scratch_.U32(self_);
  encode_scratch_.Varint(adv.shards.size());
  for (const auto& s : adv.shards) {
    encode_scratch_.Varint(s.seq_floor);
    encode_scratch_.Bytes(s.frontier);
  }
  for (auto& [p, conn] : peer_conns_) {
    if (conn != nullptr && !conn->closed()) {
      conn->SendFrame(encode_scratch_.buffer());
    }
  }
}

void Node::OnFrame(Connection* conn, const uint8_t* data, size_t size) {
  codec::Reader r(data, size);
  uint8_t kind = r.U8();
  switch (kind) {
    case kFramePeerHello: {
      common::ProcessId peer = r.U32();
      if (!r.ok() || peer >= peers_.size()) {
        return;
      }
      conn->peer_id = peer;
      // Move from anonymous_ into peer_conns_.
      for (auto& holder : anonymous_) {
        if (holder.get() == conn) {
          OnPeerConnected(peer, std::move(holder));
          holder = nullptr;
          break;
        }
      }
      anonymous_.erase(std::remove(anonymous_.begin(), anonymous_.end(), nullptr),
                       anonymous_.end());
      break;
    }
    case kFrameClientHello:
      conn->is_client = true;
      break;
    case kFrameMessage: {
      msg::Message m;
      if (!msg::Decode(r, m)) {
        return;
      }
      if (conn->is_client) {
        if (auto* req = msg::get_if<msg::ClientRequest>(&m)) {
          // kBatch is an internal composite (built by the sharded submission
          // path, client 0): an untrusted client injecting one would crash the
          // whole cluster at the deployment's unpack CHECK once it replicated.
          // Reject it at the door, at any partition count.
          bool unroutable = req->cmd.is_batch();
          uint32_t shard = 0;
          if (!unroutable && deployment_->partitions() > 1) {
            // Partition-aware routing: validate against the deployment's
            // Partitioner before the command reaches an engine. A routable
            // command lands directly on its shard's engine inside
            // ShardedEngine::Submit — no extra hop. Unroutable input from an
            // untrusted client (noOps, key sets spanning partitions) is
            // rejected as dropped instead of CHECK-crashing the replica. P=1
            // submits verbatim, exactly as the seeded runtime did.
            unroutable = !deployment_->partitioner().SingleShard(req->cmd, &shard);
          }
          if (unroutable) {
            // Reply directly on this connection: going through waiting_clients_
            // could clobber an in-flight entry reusing the same (client, seq).
            SendReply(conn, req->cmd.client, req->cmd.seq, "", /*dropped=*/true);
            return;
          }
          chk::CmdKey key{req->cmd.client, req->cmd.seq};
          if (deployment_->durable()) {
            // Idempotent resubmission: a client that reconnected after its
            // socket died re-sends its last command. If it already completed,
            // answer from the completion cache instead of re-executing; if it
            // is still in flight, just re-point the reply at the new
            // connection.
            auto done = client_done_.find(req->cmd.client);
            if (done != client_done_.end() && req->cmd.seq <= done->second.first) {
              SendReply(conn, req->cmd.client, req->cmd.seq,
                        req->cmd.seq == done->second.first
                            ? std::string(done->second.second)
                            : std::string(),
                        /*dropped=*/false);
              return;
            }
            if (in_flight_.find(key) != in_flight_.end()) {
              waiting_clients_[key] = conn;
              return;
            }
            in_flight_.insert(key);
          }
          waiting_clients_[key] = conn;
          if (engine_started_) {
            if (shards_ != nullptr) {
              RouteInput(common::kInvalidProcess, nullptr, shard, &req->cmd);
            } else {
              deployment_->engine().Submit(req->cmd);
            }
          } else {
            pending_submits_.push_back(req->cmd);
          }
        }
        return;
      }
      if (conn->peer_id != common::kInvalidProcess) {
        if (!engine_started_) {
          BufferPeerFrame(conn->peer_id, data, size);
        } else if (shards_ != nullptr) {
          RouteInput(conn->peer_id, &m, /*shard=*/0, nullptr);
        } else {
          deployment_->engine().OnMessage(conn->peer_id, m);
        }
      }
      break;
    }
    case kFrameCatchupReq:
      if (conn->peer_id != common::kInvalidProcess) {
        if (!engine_started_) {
          BufferPeerFrame(conn->peer_id, data, size);
        } else {
          HandleCatchupRequest(r);
        }
      }
      break;
    case kFrameCatchupEntries:
      if (conn->peer_id != common::kInvalidProcess) {
        if (!engine_started_) {
          BufferPeerFrame(conn->peer_id, data, size);
        } else {
          HandleCatchupEntries(r);
        }
      }
      break;
    default:
      break;
  }
}

void Node::HandleCatchupRequest(codec::Reader& r) {
  common::ProcessId requester = r.U32();
  uint64_t nshards = r.Varint();
  if (!r.ok() || requester >= peers_.size() ||
      nshards != deployment_->partitions()) {
    return;
  }
  std::vector<uint64_t> floors(nshards);
  std::vector<std::string> frontiers(nshards);
  for (uint64_t s = 0; s < nshards; s++) {
    floors[s] = r.Varint();
    frontiers[s] = r.Bytes();
  }
  if (!r.ok()) {
    return;
  }
  if (shards_ != nullptr) {
    // Each shard worker OnRestore()s its engine and streams the missing log
    // records back as kCatchup outputs. Same bounded-retry discipline as
    // RouteInput: drain outboxes while an inbox is full, then give up (the
    // requester simply stays behind until protocol recovery catches it up).
    for (uint32_t s = 0; s < nshards; s++) {
      constexpr int kMaxSpins = 200000;
      for (int spin = 0;; spin++) {
        if (shards_->RouteCatchupRequest(s, requester, floors[s], frontiers[s])) {
          break;
        }
        if (DrainShardOutputs() > 0) {
          FlushDirty();
        }
        if (spin >= kMaxSpins) {
          shards_->CountDroppedInput();
          break;
        }
        std::this_thread::yield();
      }
    }
    return;
  }
  // Single-driver mode: restore notification + streaming happen inline.
  std::vector<smr::RestartHint> hints(nshards);
  for (uint64_t s = 0; s < nshards; s++) {
    hints[s].seq_floor = floors[s];
  }
  deployment_->NotifyRestore(requester, hints);
  if (!deployment_->durable()) {
    return;
  }
  for (uint32_t s = 0; s < nshards; s++) {
    dur::ShardDurability* d = deployment_->durability(s);
    if (d == nullptr) {
      continue;
    }
    dur::DotFrontier have;
    codec::Reader fr(reinterpret_cast<const uint8_t*>(frontiers[s].data()),
                     frontiers[s].size());
    have.DecodeFrom(fr);  // malformed decodes empty: over-stream, peer dedups
    constexpr size_t kEntriesPerFrame = 256;
    codec::Writer entries;
    size_t count = 0;
    auto flush = [&]() {
      if (count == 0) {
        return;
      }
      codec::Writer payload;
      payload.Varint(s);
      payload.Varint(count);
      std::string body(reinterpret_cast<const char*>(payload.buffer().data()),
                       payload.buffer().size());
      body.append(reinterpret_cast<const char*>(entries.buffer().data()),
                  entries.buffer().size());
      OnCatchupFrame(requester, std::move(body));
      entries.Clear();
      count = 0;
    };
    d->StreamMissing(have, [&](const common::Dot& dot, const smr::Command& cmd) {
      entries.Dot(dot);
      cmd.EncodeTo(entries);
      if (++count >= kEntriesPerFrame) {
        flush();
      }
    });
    flush();
  }
  FlushDirty();
}

void Node::HandleCatchupEntries(codec::Reader& r) {
  uint64_t shard = r.Varint();
  uint64_t count = r.Varint();
  if (!r.ok() || shard >= deployment_->partitions()) {
    return;
  }
  for (uint64_t i = 0; i < count; i++) {
    common::Dot dot = r.Dot();
    smr::Command cmd = smr::Command::Decode(r);
    if (!r.ok() || !dot.valid()) {
      return;
    }
    if (shards_ != nullptr) {
      constexpr int kMaxSpins = 200000;
      for (int spin = 0;; spin++) {
        if (shards_->RouteCatchupEntry(static_cast<uint32_t>(shard), dot, cmd)) {
          break;
        }
        if (DrainShardOutputs() > 0) {
          FlushDirty();
        }
        if (spin >= kMaxSpins) {
          shards_->CountDroppedInput();
          break;
        }
        std::this_thread::yield();
      }
    } else {
      // The normal executed path: the durable admit filter deduplicates
      // entries our own log replay (or another peer's stream) already covered.
      Executed(dot, cmd);
    }
  }
}

void Node::Send(common::ProcessId to, msg::Message m) {
  auto it = peer_conns_.find(to);
  if (it == peer_conns_.end() || it->second == nullptr || it->second->closed()) {
    return;  // peer down; engines tolerate message loss
  }
  // Reuse the encode scratch (clear-not-reallocate), pre-sized so Encode never
  // reallocates mid-message; SendFrame copies into the connection's write buffer.
  encode_scratch_.Clear();
  encode_scratch_.Reserve(1 + msg::EncodedSize(m));
  encode_scratch_.U8(kFrameMessage);
  msg::Encode(encode_scratch_, m);
  it->second->SendFrame(encode_scratch_.buffer());
}

void Node::SetTimer(common::Duration delay, uint64_t token) {
  // The token is round-tripped untouched back into the deployment's top-level
  // engine: on sharded replicas it already carries the shard tag (and the
  // flush-vs-inner discriminator bit) stamped by the ShardedEngine, so two inner
  // engines picking equal raw tokens can never collide in the timer wheel.
  loop_.AddTimer(delay,
                 [this, token]() { deployment_->engine().OnTimer(token); });
}

void Node::Executed(const common::Dot& dot, const smr::Command& cmd) {
  // The deployment demultiplexes the executed command — unpacking kBatch
  // composites — onto its per-shard stores; each client sub-command's result is
  // sent to the client waiting on it (if it submitted here). On durable
  // deployments the dot also drives the commit log and its dedup filter.
  deployment_->ApplyExecuted(
      dot, cmd, [this](uint32_t, const smr::Command& sub, std::string&& result) {
        if (!sub.is_noop()) {
          applied_ops_.fetch_add(1, std::memory_order_release);
        }
        ReplyToClient(sub.client, sub.seq, std::move(result), /*dropped=*/false);
      });
}

void Node::Dropped(const common::Dot& dot, const smr::Command& original) {
  deployment_->ForEachDropped(original, [this](const smr::Command& sub) {
    ReplyToClient(sub.client, sub.seq, "", /*dropped=*/true);
  });
}

void Node::CompleteClient(uint64_t client, uint64_t seq,
                          const std::string& value, bool dropped) {
  if (!deployment_->durable() || client == 0) {
    return;
  }
  in_flight_.erase(chk::CmdKey{client, seq});
  if (dropped) {
    return;  // not cached: the client may legitimately resubmit a drop
  }
  auto& entry = client_done_[client];
  if (seq >= entry.first) {
    entry.first = seq;
    entry.second = value;
  }
}

void Node::ReplyToClient(uint64_t client, uint64_t seq, std::string&& value,
                         bool dropped) {
  // Completion bookkeeping runs whether or not a client is waiting here:
  // catch-up entries and commands submitted via a since-dead connection still
  // complete, and a reconnecting client must find their cached results.
  CompleteClient(client, seq, value, dropped);
  auto it = waiting_clients_.find(chk::CmdKey{client, seq});
  if (it == waiting_clients_.end()) {
    return;
  }
  Connection* conn = it->second;
  waiting_clients_.erase(it);
  SendReply(conn, client, seq, std::move(value), dropped);
}

void Node::SendReply(Connection* conn, uint64_t client, uint64_t seq,
                     std::string&& value, bool dropped, bool flush) {
  if (conn == nullptr || conn->closed()) {
    return;
  }
  msg::ClientReply reply;
  reply.client = client;
  reply.seq = seq;
  reply.value = std::move(value);
  reply.dropped = dropped;
  encode_scratch_.Clear();
  encode_scratch_.U8(kFrameMessage);
  msg::Encode(encode_scratch_, msg::Message{reply});
  if (flush) {
    conn->SendFrame(encode_scratch_.buffer());
  } else {
    conn->QueueFrame(encode_scratch_.buffer());
    MarkDirty(conn);
  }
}

// --- Threaded-mode I/O tier ------------------------------------------------

void Node::RouteInput(common::ProcessId from, msg::Message* m, uint32_t shard,
                      smr::Command* cmd) {
  // Bounded retry, never a blocking wait: a full inbox with a live worker
  // drains in microseconds once we stop hogging the core; a dead worker's
  // inbox swallows input inside the runtime. Draining outboxes between
  // attempts keeps the worker from stalling on a full *outbox* while we spin
  // on its inbox (the deadlock the mailbox discipline forbids).
  constexpr int kMaxSpins = 200000;
  for (int spin = 0;; spin++) {
    bool ok = m != nullptr ? shards_->RouteMessage(from, *m)
                           : shards_->SubmitToShard(shard, *cmd);
    if (ok) {
      return;
    }
    if (DrainShardOutputs() > 0) {
      FlushDirty();
    }
    if (spin >= kMaxSpins) {
      shards_->CountDroppedInput();
      return;
    }
    std::this_thread::yield();
  }
}

void Node::OnWorkerOutput() {
  out_bell_.Drain();
  while (true) {
    DrainShardOutputs();
    FlushDirty();
    out_bell_.Arm();
    // Arm-then-recheck: output pushed between the drain and the arm produced
    // no ring (bell was disarmed), so catch it here and go around again.
    if (!shards_->HasOutput()) {
      break;
    }
  }
}

size_t Node::DrainShardOutputs() { return shards_->DrainOutputs(*this); }

void Node::OnPeerSend(common::ProcessId to, msg::Message& m) {
  auto it = peer_conns_.find(to);
  if (it == peer_conns_.end() || it->second == nullptr || it->second->closed()) {
    return;  // peer down; engines tolerate message loss
  }
  encode_scratch_.Clear();
  encode_scratch_.Reserve(1 + msg::EncodedSize(m));
  encode_scratch_.U8(kFrameMessage);
  msg::Encode(encode_scratch_, m);
  it->second->QueueFrame(encode_scratch_.buffer());
  MarkDirty(it->second.get());
}

void Node::OnClientReply(uint64_t client, uint64_t seq, std::string&& value,
                         bool dropped) {
  CompleteClient(client, seq, value, dropped);
  auto it = waiting_clients_.find(chk::CmdKey{client, seq});
  if (it == waiting_clients_.end()) {
    return;
  }
  Connection* conn = it->second;
  waiting_clients_.erase(it);
  SendReply(conn, client, seq, std::move(value), dropped, /*flush=*/false);
}

void Node::OnCatchupFrame(common::ProcessId to, std::string&& payload) {
  auto it = peer_conns_.find(to);
  if (it == peer_conns_.end() || it->second == nullptr || it->second->closed()) {
    return;  // requester vanished again; it will re-request on its next start
  }
  std::vector<uint8_t> frame;
  frame.reserve(1 + payload.size());
  frame.push_back(kFrameCatchupEntries);
  frame.insert(frame.end(), payload.begin(), payload.end());
  it->second->QueueFrame(frame);
  MarkDirty(it->second.get());
}

// --- Connection loss, reaping and re-dialing --------------------------------

void Node::NoteClosed(Connection* conn) {
  (void)conn;
  if (reap_scheduled_) {
    return;
  }
  // Defer to a zero-delay timer: a connection may notice its own death from
  // inside its read/write callbacks, and destroying it there would free the
  // object under its own stack frame.
  reap_scheduled_ = true;
  loop_.AddTimer(0, [this]() {
    reap_scheduled_ = false;
    ReapConnections();
  });
}

void Node::ForgetConn(Connection* conn) {
  for (auto it = waiting_clients_.begin(); it != waiting_clients_.end();) {
    if (it->second == conn) {
      // The command may still execute; on durable nodes its result lands in
      // the completion cache for the client's resubmission.
      it = waiting_clients_.erase(it);
    } else {
      ++it;
    }
  }
  dirty_conns_.erase(std::remove(dirty_conns_.begin(), dirty_conns_.end(), conn),
                     dirty_conns_.end());
}

void Node::ReapConnections() {
  for (auto& holder : anonymous_) {
    if (holder->closed()) {
      ForgetConn(holder.get());
      holder = nullptr;
    }
  }
  anonymous_.erase(std::remove(anonymous_.begin(), anonymous_.end(), nullptr),
                   anonymous_.end());
  for (auto it = peer_conns_.begin(); it != peer_conns_.end();) {
    if (it->second != nullptr && it->second->closed()) {
      common::ProcessId peer = it->first;
      ForgetConn(it->second.get());
      it = peer_conns_.erase(it);
      if (peer > self_) {
        // Mesh rule: this node dials higher ids; the lost lower-id peer will
        // re-dial us when it notices the loss (or restarts).
        ScheduleRedial(peer);
      }
    } else {
      ++it;
    }
  }
}

void Node::ScheduleRedial(common::ProcessId p) {
  if (dialing_.find(p) != dialing_.end() ||
      peer_conns_.find(p) != peer_conns_.end()) {
    return;
  }
  common::Duration delay = kRedialFloor;
  auto it = redial_backoff_.find(p);
  if (it != redial_backoff_.end()) {
    delay = it->second;
  }
  redial_backoff_[p] = std::min<common::Duration>(delay * 2, kRedialCap);
  loop_.AddTimer(delay, [this, p]() { DialPeer(p); });
}

void Node::DialPeer(common::ProcessId p) {
  if (dialing_.find(p) != dialing_.end() ||
      peer_conns_.find(p) != peer_conns_.end()) {
    return;  // the peer reconnected to us while we were backing off
  }
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    ScheduleRedial(p);
    return;
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peers_[p].port);
  inet_pton(AF_INET, peers_[p].host.c_str(), &addr.sin_addr);
  int rc = connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    close(fd);
    ScheduleRedial(p);
    return;
  }
  dialing_[p] = fd;
  loop_.WatchFd(fd, EPOLLOUT, [this, p, fd](uint32_t) { OnDialReady(p, fd); });
}

void Node::OnDialReady(common::ProcessId p, int fd) {
  loop_.UnwatchFd(fd);
  dialing_.erase(p);
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
    close(fd);
    ScheduleRedial(p);
    return;
  }
  auto conn = std::make_unique<Connection>(this, fd);
  encode_scratch_.Clear();
  encode_scratch_.U8(kFramePeerHello);
  encode_scratch_.U32(self_);
  conn->SendFrame(encode_scratch_.buffer());
  conn->peer_id = p;
  OnPeerConnected(p, std::move(conn));
}

void Node::MarkDirty(Connection* conn) {
  if (!conn->dirty) {
    conn->dirty = true;
    dirty_conns_.push_back(conn);
  }
}

void Node::FlushDirty() {
  for (Connection* conn : dirty_conns_) {
    conn->dirty = false;
    conn->Flush();
  }
  dirty_conns_.clear();
}

void Node::Stop() { loop_.Stop(); }

// ---------------------------------------------------------------------------

Client::Client(const std::string& host, uint16_t port)
    : Client(host, port, Options()) {}

Client::Client(const std::string& host, uint16_t port, Options opts)
    : host_(host), port_(port), opts_(opts) {}

Client::~Client() { Disconnect(); }

void Client::Disconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

bool Client::Connect() {
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return false;
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  inet_pton(AF_INET, host_.c_str(), &addr.sin_addr);
  if (connect(fd_, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd_);
    fd_ = -1;
    return false;
  }
  SetNoDelay(fd_);
  // Client hello frame.
  codec::Writer w;
  w.U8(kFrameClientHello);
  uint32_t len = static_cast<uint32_t>(w.size());
  std::vector<uint8_t> out(4);
  std::memcpy(out.data(), &len, 4);
  out.insert(out.end(), w.buffer().begin(), w.buffer().end());
  return write(fd_, out.data(), out.size()) == static_cast<ssize_t>(out.size());
}

bool Client::Send(const smr::Command& cmd) {
  if (fd_ < 0) {
    return false;
  }
  msg::ClientRequest req;
  req.cmd = cmd;
  codec::Writer w;
  msg::Message wrapped{std::move(req)};
  w.Reserve(1 + msg::EncodedSize(wrapped));
  w.U8(kFrameMessage);
  msg::Encode(w, wrapped);
  uint32_t len = static_cast<uint32_t>(w.size());
  std::vector<uint8_t> out(4);
  std::memcpy(out.data(), &len, 4);
  out.insert(out.end(), w.buffer().begin(), w.buffer().end());
  return write(fd_, out.data(), out.size()) == static_cast<ssize_t>(out.size());
}

bool Client::RecvReply(uint64_t* seq_out, std::string* result_out) {
  if (fd_ < 0) {
    return false;
  }
  while (true) {
    if (in_.size() >= 4) {
      uint32_t frame_len;
      std::memcpy(&frame_len, in_.data(), 4);
      if (in_.size() - 4 >= frame_len) {
        codec::Reader r(in_.data() + 4, frame_len);
        if (r.U8() != kFrameMessage) {
          return false;
        }
        msg::Message m;
        if (!msg::Decode(r, m)) {
          return false;
        }
        in_.erase(in_.begin(), in_.begin() + 4 + frame_len);
        auto* reply = msg::get_if<msg::ClientReply>(&m);
        if (reply == nullptr) {
          return false;
        }
        if (seq_out != nullptr) {
          *seq_out = reply->seq;
        }
        if (result_out != nullptr) {
          *result_out = reply->dropped ? "<dropped>" : reply->value;
        }
        return true;
      }
    }
    uint8_t buf[4096];
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n <= 0) {
      return false;
    }
    in_.insert(in_.end(), buf, buf + n);
  }
}

bool Client::Call(const smr::Command& cmd, std::string* result_out) {
  for (int attempt = 0;; attempt++) {
    if (attempt > 0) {
      // The socket died mid-request (server killed/restarted). Reconnect and
      // resubmit the same (client, seq): durable nodes deduplicate, answering
      // a completed command from their cache instead of re-executing it.
      Disconnect();
      usleep(static_cast<useconds_t>(opts_.retry_backoff));
    }
    bool ok = fd_ >= 0 || Connect();
    if (ok) {
      ok = Send(cmd);
    }
    if (ok) {
      // With one outstanding request the next reply is ours; skip stale
      // frames (e.g. a pre-disconnect duplicate) defensively all the same.
      uint64_t seq = 0;
      ok = false;
      while (RecvReply(&seq, result_out)) {
        if (seq == cmd.seq) {
          return true;
        }
      }
    }
    if (attempt >= opts_.max_retries) {
      gave_up_++;
      return false;
    }
  }
}

}  // namespace rt
