// Real-runtime replica node: runs one smr::Deployment — bare or sharded — over TCP.
//
// A node listens on one port for both peer and client connections; frames are
// 4-byte little-endian length + codec-encoded payload:
//   message:         [u8 = 0][msg::Message]
//   peer hello:      [u8 = 1][u32 sender_id]
//   client hello:    [u8 = 2]
//   catch-up request [u8 = 3][u32 requester][varint nshards]
//                    [per shard: varint seq_floor, bytes(frontier)]
//   catch-up entries [u8 = 4][varint shard][varint count][count x (dot, cmd)]
// Peers form a full mesh (node i dials every peer j > i; lower ids accept). Client
// ClientRequest commands are routed through the deployment's smr::Partitioner —
// on sharded replicas the command lands directly on its partition's engine, with
// no extra hop — and the reply is sent when the command executes locally. The
// message envelope's shard tag and the shard-tagged timer tokens both round-trip
// through the node unchanged.
//
// Two execution modes, selected by smr::DeploymentOptions::threaded:
//   * single-driver (default): the epoll thread drives every shard engine
//     inline, exactly as the simulator harness does;
//   * thread-per-shard: the epoll thread becomes a pure I/O tier — it decodes
//     envelopes, routes them by shard tag into SPSC mailboxes feeding one
//     worker thread per shard (src/rt/shard_runtime.h), and drains worker
//     output back out, coalescing outbound frames so each socket is written
//     at most once per drain pass no matter how many shards fed it.
//
// Fault tolerance: a lost peer socket is reaped and re-dialed with backoff
// (the dialing side per the mesh rule above; the accepting side waits for the
// fresh hello). A node constructed over a non-empty data_dir recovers its
// stores from disk (snapshot + log tail, see src/dur), then — once the mesh
// re-forms — advertises its per-shard executed-dot frontiers to every peer;
// peers stream back the commits it missed, which apply through the normal
// executed path (the durable admit filter deduplicates). Clients that vanish
// mid-request are reaped too; on durable nodes a reconnecting client may
// resubmit the same (client, seq) and gets the cached result instead of a
// re-execution.
#ifndef SRC_RT_NODE_H_
#define SRC_RT_NODE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/chk/checker.h"
#include "src/codec/codec.h"
#include "src/rt/event_loop.h"
#include "src/rt/shard_runtime.h"
#include "src/smr/deployment.h"

namespace rt {

struct PeerAddress {
  std::string host;
  uint16_t port = 0;
};

class Connection;

class Node final : public smr::Context, public ShardOutputSink {
 public:
  // The deployment (one node's full replica assembly: engine, per-shard stores,
  // batching) is borrowed and must outlive the node.
  Node(common::ProcessId id, std::vector<PeerAddress> peers,
       smr::Deployment* deployment);
  ~Node();

  // Binds the listen socket; returns false on bind failure.
  bool Listen();
  // Dials higher-id peers, waits for lower-id peers, then starts the engine and
  // serves until Stop(). Blocks.
  void Run();
  void Stop();

  uint16_t port() const { return peers_[self_].port; }

  // Client commands applied to this node's stores so far (sub-commands of a batch
  // count individually; noOps excluded). Safe to read from other threads: tests
  // poll it to detect quiescence before stopping the cluster.
  uint64_t applied_ops() const {
    return shards_ != nullptr ? shards_->applied_ops()
                              : applied_ops_.load(std::memory_order_acquire);
  }

  // Thread-per-shard runtime; nullptr in single-driver mode. Exposed for fault
  // drills (tests stop one shard's worker and assert clean node shutdown).
  ShardRuntime* shard_runtime() { return shards_.get(); }

  // smr::Context (single-driver mode; in threaded mode the per-shard workers
  // are the engines' contexts and these are never invoked):
  void Send(common::ProcessId to, msg::Message m) override;
  common::Time Now() const override { return EventLoop::NowUs(); }
  void SetTimer(common::Duration delay, uint64_t token) override;
  void Executed(const common::Dot& dot, const smr::Command& cmd) override;
  void Dropped(const common::Dot& dot, const smr::Command& original) override;

  // ShardOutputSink (threaded mode, I/O thread): queue frames per connection;
  // DrainShardOutputs flushes each touched socket once per pass.
  void OnPeerSend(common::ProcessId to, msg::Message& m) override;
  void OnClientReply(uint64_t client, uint64_t seq, std::string&& value,
                     bool dropped) override;
  void OnCatchupFrame(common::ProcessId to, std::string&& payload) override;

 private:
  friend class Connection;

  void AcceptReady();
  void OnPeerConnected(common::ProcessId peer, std::unique_ptr<Connection> conn);
  void OnFrame(Connection* conn, const uint8_t* data, size_t size);
  void MaybeStartEngine();
  // Connection teardown: a closed socket schedules a reap on the loop (never
  // destroyed mid-callback); the reap scrubs every raw pointer to the
  // connection (waiting_clients_, dirty_conns_) before freeing it, and
  // schedules a backoff re-dial when the lost peer is one this node dials.
  void NoteClosed(Connection* conn);
  void ReapConnections();
  void ForgetConn(Connection* conn);
  void ScheduleRedial(common::ProcessId p);
  void DialPeer(common::ProcessId p);
  void OnDialReady(common::ProcessId p, int fd);
  // Pre-start peer traffic: frames from peers whose engines started before ours
  // are held and replayed in arrival order the moment our engine starts (see
  // pending_peer_frames_).
  void BufferPeerFrame(common::ProcessId from, const uint8_t* data, size_t size);
  void ReplayPendingPeerFrames();
  // Durable restart: advertise recovered frontiers to every peer (once, when
  // the engine starts) so they stream back what this node missed.
  void SendCatchupRequests();
  void HandleCatchupRequest(codec::Reader& r);
  void HandleCatchupEntries(codec::Reader& r);
  // Completion bookkeeping for durable client idempotency (no-op otherwise).
  void CompleteClient(uint64_t client, uint64_t seq, const std::string& value,
                      bool dropped);
  // Threaded mode: routes one decoded input to its shard's inbox, draining
  // worker outboxes while the inbox is full (never a blocking wait; bounded
  // retries, then the input is dropped and counted).
  void RouteInput(common::ProcessId from, msg::Message* m, uint32_t shard,
                  smr::Command* cmd);
  // Threaded mode: doorbell callback — drain outboxes, flush dirty sockets.
  void OnWorkerOutput();
  size_t DrainShardOutputs();
  void MarkDirty(Connection* conn);
  void FlushDirty();
  // Sends a ClientReply frame to the client waiting on (client, seq), if any.
  void ReplyToClient(uint64_t client, uint64_t seq, std::string&& value, bool dropped);
  // Sends a ClientReply frame on a specific connection (rejection path). With
  // `flush` false the frame is queued and the connection marked dirty instead
  // (threaded drain path).
  void SendReply(Connection* conn, uint64_t client, uint64_t seq, std::string&& value,
                 bool dropped, bool flush = true);

  common::ProcessId self_;
  std::vector<PeerAddress> peers_;
  smr::Deployment* deployment_;

  EventLoop loop_;
  int listen_fd_ = -1;
  std::map<common::ProcessId, std::unique_ptr<Connection>> peer_conns_;
  std::vector<std::unique_ptr<Connection>> anonymous_;  // pre-hello + client conns
  // (client, seq) -> connection serving that client.
  std::unordered_map<chk::CmdKey, Connection*, chk::CmdKeyHash> waiting_clients_;
  // Reconnect state: in-progress non-blocking dials (peer -> fd) and the
  // per-peer re-dial backoff (reset on successful connect).
  std::map<common::ProcessId, int> dialing_;
  std::map<common::ProcessId, common::Duration> redial_backoff_;
  bool reap_scheduled_ = false;
  bool catchup_requested_ = false;
  // Durable client idempotency: commands submitted but not yet completed, and
  // each client's last completed (seq, result) for resubmit short-circuiting.
  std::unordered_set<chk::CmdKey, chk::CmdKeyHash> in_flight_;
  std::unordered_map<uint64_t, std::pair<uint64_t, std::string>> client_done_;
  // Client commands that arrived before the peer mesh completed; submitted the
  // moment the engine starts (previously they were dropped and the client hung).
  std::vector<smr::Command> pending_submits_;
  // Peer frames (messages / catch-up) that arrived before this node's own mesh
  // completed, replayed at engine start. Nodes start their engines at different
  // moments — a faster peer's first proposal must not be dropped here: protocols
  // whose commit needs every live replica's ack (Mencius) would wedge that slot
  // forever. Bounded; overflow falls back to the old drop behaviour.
  struct PendingPeerFrame {
    common::ProcessId from;
    std::vector<uint8_t> bytes;  // full frame, kind byte included
  };
  std::vector<PendingPeerFrame> pending_peer_frames_;
  // Reused (clear-not-reallocate) encode scratch for all outbound frames; pre-sized
  // per message via msg::EncodedSize so encoding never grows it mid-message.
  codec::Writer encode_scratch_;
  std::atomic<uint64_t> applied_ops_{0};
  bool engine_started_ = false;

  // Threaded mode only. Declaration order matters: workers ring out_bell_ and
  // reference the deployment, so shards_ (declared last) is destroyed — and its
  // workers joined — first.
  Doorbell out_bell_;
  std::vector<Connection*> dirty_conns_;
  std::unique_ptr<ShardRuntime> shards_;
};

// Minimal synchronous client for examples and tests. Also supports pipelined
// use (a fixed window of outstanding requests per connection) via Send/RecvReply;
// Call is Send + RecvReply with one outstanding request.
//
// With Options::max_retries > 0, Call() survives a dying server socket: it
// reconnects with backoff and resubmits the same (client, seq). Durable nodes
// deduplicate the resubmission (cached result for a completed command,
// re-pointing for one still in flight), so the retry is idempotent. A Call
// that exhausts its retries bumps gave_up() and returns false — the caller
// knows the command's fate is unknown rather than silently hanging.
class Client {
 public:
  struct Options {
    int max_retries = 0;  // reconnect-and-resubmit attempts after a failure
    common::Duration retry_backoff = 100 * common::kMillisecond;
  };

  Client(const std::string& host, uint16_t port);
  Client(const std::string& host, uint16_t port, Options opts);
  ~Client();

  bool Connect();
  void Disconnect();
  bool connected() const { return fd_ >= 0; }
  // Sends cmd and blocks until the reply arrives, reconnecting/resubmitting up
  // to max_retries times. Returns false on connection error or retry exhaustion.
  bool Call(const smr::Command& cmd, std::string* result_out);

  // Calls that exhausted every retry (their outcome is unknown).
  uint64_t gave_up() const { return gave_up_; }

  // Pipelined path: enqueue one request without waiting for its reply.
  bool Send(const smr::Command& cmd);
  // Blocks until the next ClientReply frame arrives. Replies to one connection
  // can arrive out of submission order (commands on different shards complete
  // independently), so the reply's seq is reported for correlation.
  bool RecvReply(uint64_t* seq_out, std::string* result_out);

 private:
  std::string host_;
  uint16_t port_;
  Options opts_;
  int fd_ = -1;
  uint64_t gave_up_ = 0;
  std::vector<uint8_t> in_;  // partial-frame carry across RecvReply calls
};

}  // namespace rt

#endif  // SRC_RT_NODE_H_
