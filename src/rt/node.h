// Real-runtime replica node: runs one smr::Deployment — bare or sharded — over TCP.
//
// A node listens on one port for both peer and client connections; frames are
// 4-byte little-endian length + codec-encoded payload:
//   peer hello:   [u8 = 1][u32 sender_id]
//   client hello: [u8 = 2]
//   message:      [u8 = 0][msg::Message]
// Peers form a full mesh (node i dials every peer j > i; lower ids accept). Client
// ClientRequest commands are routed through the deployment's smr::Partitioner —
// on sharded replicas the command lands directly on its partition's engine, with
// no extra hop — and the reply is sent when the command executes locally. The
// message envelope's shard tag and the shard-tagged timer tokens both round-trip
// through the node unchanged.
//
// Two execution modes, selected by smr::DeploymentOptions::threaded:
//   * single-driver (default): the epoll thread drives every shard engine
//     inline, exactly as the simulator harness does;
//   * thread-per-shard: the epoll thread becomes a pure I/O tier — it decodes
//     envelopes, routes them by shard tag into SPSC mailboxes feeding one
//     worker thread per shard (src/rt/shard_runtime.h), and drains worker
//     output back out, coalescing outbound frames so each socket is written
//     at most once per drain pass no matter how many shards fed it.
//
// Scope: the failure-free data path (reconnect/catch-up on TCP loss is future work;
// the simulator covers failure experiments deterministically).
#ifndef SRC_RT_NODE_H_
#define SRC_RT_NODE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/chk/checker.h"
#include "src/codec/codec.h"
#include "src/rt/event_loop.h"
#include "src/rt/shard_runtime.h"
#include "src/smr/deployment.h"

namespace rt {

struct PeerAddress {
  std::string host;
  uint16_t port = 0;
};

class Connection;

class Node final : public smr::Context, public ShardOutputSink {
 public:
  // The deployment (one node's full replica assembly: engine, per-shard stores,
  // batching) is borrowed and must outlive the node.
  Node(common::ProcessId id, std::vector<PeerAddress> peers,
       smr::Deployment* deployment);
  ~Node();

  // Binds the listen socket; returns false on bind failure.
  bool Listen();
  // Dials higher-id peers, waits for lower-id peers, then starts the engine and
  // serves until Stop(). Blocks.
  void Run();
  void Stop();

  uint16_t port() const { return peers_[self_].port; }

  // Client commands applied to this node's stores so far (sub-commands of a batch
  // count individually; noOps excluded). Safe to read from other threads: tests
  // poll it to detect quiescence before stopping the cluster.
  uint64_t applied_ops() const {
    return shards_ != nullptr ? shards_->applied_ops()
                              : applied_ops_.load(std::memory_order_acquire);
  }

  // Thread-per-shard runtime; nullptr in single-driver mode. Exposed for fault
  // drills (tests stop one shard's worker and assert clean node shutdown).
  ShardRuntime* shard_runtime() { return shards_.get(); }

  // smr::Context (single-driver mode; in threaded mode the per-shard workers
  // are the engines' contexts and these are never invoked):
  void Send(common::ProcessId to, msg::Message m) override;
  common::Time Now() const override { return EventLoop::NowUs(); }
  void SetTimer(common::Duration delay, uint64_t token) override;
  void Executed(const common::Dot& dot, const smr::Command& cmd) override;
  void Dropped(const common::Dot& dot, const smr::Command& original) override;

  // ShardOutputSink (threaded mode, I/O thread): queue frames per connection;
  // DrainShardOutputs flushes each touched socket once per pass.
  void OnPeerSend(common::ProcessId to, msg::Message& m) override;
  void OnClientReply(uint64_t client, uint64_t seq, std::string&& value,
                     bool dropped) override;

 private:
  friend class Connection;

  void AcceptReady();
  void OnPeerConnected(common::ProcessId peer, std::unique_ptr<Connection> conn);
  void OnFrame(Connection* conn, const uint8_t* data, size_t size);
  void MaybeStartEngine();
  // Threaded mode: routes one decoded input to its shard's inbox, draining
  // worker outboxes while the inbox is full (never a blocking wait; bounded
  // retries, then the input is dropped and counted).
  void RouteInput(common::ProcessId from, msg::Message* m, uint32_t shard,
                  smr::Command* cmd);
  // Threaded mode: doorbell callback — drain outboxes, flush dirty sockets.
  void OnWorkerOutput();
  size_t DrainShardOutputs();
  void MarkDirty(Connection* conn);
  void FlushDirty();
  // Sends a ClientReply frame to the client waiting on (client, seq), if any.
  void ReplyToClient(uint64_t client, uint64_t seq, std::string&& value, bool dropped);
  // Sends a ClientReply frame on a specific connection (rejection path). With
  // `flush` false the frame is queued and the connection marked dirty instead
  // (threaded drain path).
  void SendReply(Connection* conn, uint64_t client, uint64_t seq, std::string&& value,
                 bool dropped, bool flush = true);

  common::ProcessId self_;
  std::vector<PeerAddress> peers_;
  smr::Deployment* deployment_;

  EventLoop loop_;
  int listen_fd_ = -1;
  std::map<common::ProcessId, std::unique_ptr<Connection>> peer_conns_;
  std::vector<std::unique_ptr<Connection>> anonymous_;  // pre-hello + client conns
  // (client, seq) -> connection serving that client.
  std::unordered_map<chk::CmdKey, Connection*, chk::CmdKeyHash> waiting_clients_;
  // Client commands that arrived before the peer mesh completed; submitted the
  // moment the engine starts (previously they were dropped and the client hung).
  std::vector<smr::Command> pending_submits_;
  // Reused (clear-not-reallocate) encode scratch for all outbound frames; pre-sized
  // per message via msg::EncodedSize so encoding never grows it mid-message.
  codec::Writer encode_scratch_;
  std::atomic<uint64_t> applied_ops_{0};
  bool engine_started_ = false;

  // Threaded mode only. Declaration order matters: workers ring out_bell_ and
  // reference the deployment, so shards_ (declared last) is destroyed — and its
  // workers joined — first.
  Doorbell out_bell_;
  std::vector<Connection*> dirty_conns_;
  std::unique_ptr<ShardRuntime> shards_;
};

// Minimal synchronous client for examples and tests. Also supports pipelined
// use (a fixed window of outstanding requests per connection) via Send/RecvReply;
// Call is Send + RecvReply with one outstanding request.
class Client {
 public:
  Client(const std::string& host, uint16_t port);
  ~Client();

  bool Connect();
  // Sends cmd and blocks until the reply arrives. Returns false on connection error.
  bool Call(const smr::Command& cmd, std::string* result_out);

  // Pipelined path: enqueue one request without waiting for its reply.
  bool Send(const smr::Command& cmd);
  // Blocks until the next ClientReply frame arrives. Replies to one connection
  // can arrive out of submission order (commands on different shards complete
  // independently), so the reply's seq is reported for correlation.
  bool RecvReply(uint64_t* seq_out, std::string* result_out);

 private:
  std::string host_;
  uint16_t port_;
  int fd_ = -1;
  std::vector<uint8_t> in_;  // partial-frame carry across RecvReply calls
};

}  // namespace rt

#endif  // SRC_RT_NODE_H_
