#include "src/rt/shard_runtime.h"

#include <pthread.h>
#include <sched.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <thread>
#include <utility>

#include "src/codec/codec.h"
#include "src/common/check.h"
#include "src/exec/exec_pool.h"
#include "src/exec/laned_store.h"

namespace rt {

namespace {

common::Time NowUs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<common::Time>(ts.tv_sec) * common::kSecond + ts.tv_nsec / 1000;
}

}  // namespace

// One shard's worker: owns the shard engine, its timer wheel, its submission
// batching state and the mailbox pair tying it to the I/O tier. It is also the
// engine's smr::Context — sends and completions become outbox items, timers
// land in the worker-local wheel (engines only call the Context from within
// their own callbacks, which all run on this thread).
class ShardRuntime::Worker final : public smr::Context {
 public:
  Worker(ShardRuntime* owner, uint32_t shard)
      : owner_(owner),
        shard_(shard),
        inbox_(owner->opts_.mailbox_capacity),
        outbox_(owner->opts_.mailbox_capacity) {
    const smr::DeploymentOptions& d = owner_->deployment_->options();
    // Submission batching mirrors the sharded single-driver path: enabled only
    // at P > 1 (P = 1 stays the unbatched seed configuration).
    batch_window_ = owner_->partitions_ > 1 ? d.batch_window : 0;
    batch_max_ = d.batch_max;
    // Executor pool (ordering/execution split): the engine keeps emitting in
    // deterministic order on this thread; state application fans out across
    // the pool's commute lanes. Completions come back through Poll() in the
    // main loop and turn into the same kReply outputs the inline path pushes.
    exec::LanedStore* laned = owner_->deployment_->laned_store(shard_);
    if (laned != nullptr && d.executor_threads > 0) {
      exec::ExecPool::Options po;
      po.lanes = static_cast<uint32_t>(d.executor_threads);
      po.mailbox_capacity = std::min<size_t>(1024, owner_->opts_.mailbox_capacity);
      po.on_completion = [this](uint64_t client, uint64_t seq,
                                std::string&& value) {
        ShardOutput out;
        out.kind = ShardOutput::Kind::kReply;
        out.client = client;
        out.seq = seq;
        out.value = std::move(value);
        out.dropped = false;
        PushOutput(out);
      };
      po.applied = [this](const smr::Command& sub) {
        // Lane threads (and this thread, for cross-lane barriers): the same
        // counters the inline path bumps, already atomic.
        if (!sub.is_noop()) {
          owner_->applied_ops_.fetch_add(1, std::memory_order_release);
          owner_->deployment_->CountApplied(shard_, sub);
        }
      };
      po.completion_notify = [this]() { bell_.Ring(); };
      pool_ = std::make_unique<exec::ExecPool>(laned, std::move(po));
    }
  }

  Mailbox<ShardInput>& inbox() { return inbox_; }
  Mailbox<ShardOutput>& outbox() { return outbox_; }
  Doorbell& bell() { return bell_; }
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  void Spawn(common::ProcessId self, uint32_t n) {
    self_id_ = self;
    n_ = n;
    thread_ = std::thread([this]() { ThreadMain(); });
    if (owner_->opts_.pin_cores) {
      long ncpu = sysconf(_SC_NPROCESSORS_ONLN);
      if (ncpu > 0) {
        cpu_set_t set;
        CPU_ZERO(&set);
        CPU_SET(static_cast<int>(shard_ % static_cast<uint32_t>(ncpu)), &set);
        pthread_setaffinity_np(thread_.native_handle(), sizeof(set), &set);
      }
    }
  }

  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    bell_.Ring();
  }

  void Join() {
    if (thread_.joinable()) {
      thread_.join();
    }
    stopped_.store(true, std::memory_order_release);
  }

  // smr::Context (worker thread only):
  void Send(common::ProcessId to, msg::Message m) override {
    m.shard = shard_;
    ShardOutput out;
    out.kind = ShardOutput::Kind::kPeerSend;
    out.to = to;
    out.m = std::move(m);
    PushOutput(out);
  }

  common::Time Now() const override { return NowUs(); }

  void SetTimer(common::Duration delay, uint64_t token) override {
    PushTimer(Now() + delay, token, /*is_flush=*/false);
  }

  exec::ExecPool* pool() { return pool_.get(); }

  void Executed(const common::Dot& dot, const smr::Command& cmd) override {
    if (pool_ != nullptr) {
      // Ordering/execution split: hand the (deterministically ordered) command
      // to the executor pool. Counting and replies happen via the pool's
      // applied/on_completion hooks instead of the inline lambda below. The
      // durable admit (dedup + log append) stays on this thread, before the
      // fan-out, so the log records the shard's emission order exactly.
      if (!owner_->deployment_->AdmitDurable(shard_, dot, cmd)) {
        return;
      }
      pool_->Execute(cmd, exec_scratch_);
      if (owner_->deployment_->SnapshotDue(shard_)) {
        // Snapshots need the store quiesced; WaitIdle drains every lane, so
        // the blob reflects all admitted commands up to this point.
        pool_->WaitIdle();
        owner_->deployment_->WriteShardSnapshot(shard_);
      }
      return;
    }
    owner_->deployment_->ApplyExecutedShard(
        shard_, dot, cmd, exec_scratch_,
        [this](uint32_t, const smr::Command& sub, std::string&& result) {
          if (!sub.is_noop()) {
            owner_->applied_ops_.fetch_add(1, std::memory_order_release);
          }
          if (sub.client == 0) {
            return;  // internal command (noOp); no client waits on it
          }
          ShardOutput out;
          out.kind = ShardOutput::Kind::kReply;
          out.client = sub.client;
          out.seq = sub.seq;
          out.value = std::move(result);
          out.dropped = false;
          PushOutput(out);
        });
  }

  // A restarted peer advertised its executed-dot frontier: tell the engine it
  // is back (clearing suspicion below its reserved floor), then stream every
  // log record the peer is missing, batched into kCatchup output frames.
  void HandleCatchupReq(common::ProcessId from, uint64_t seq_floor,
                        const std::string& blob) {
    owner_->deployment_->shard_engine(shard_).OnRestore(from, seq_floor);
    dur::ShardDurability* d = owner_->deployment_->durability(shard_);
    if (d == nullptr) {
      return;
    }
    dur::DotFrontier have;
    codec::Reader r(reinterpret_cast<const uint8_t*>(blob.data()), blob.size());
    // A malformed frontier decodes to empty: we over-stream and the peer's
    // admit filter discards the duplicates.
    have.DecodeFrom(r);
    constexpr size_t kEntriesPerFrame = 256;
    codec::Writer entries;
    size_t count = 0;
    auto flush = [&]() {
      if (count == 0) {
        return;
      }
      codec::Writer frame;
      frame.Varint(shard_);
      frame.Varint(count);
      ShardOutput out;
      out.kind = ShardOutput::Kind::kCatchup;
      out.to = from;
      out.value.assign(
          reinterpret_cast<const char*>(frame.buffer().data()),
          frame.buffer().size());
      out.value.append(
          reinterpret_cast<const char*>(entries.buffer().data()),
          entries.buffer().size());
      PushOutput(out);
      entries.Clear();
      count = 0;
    };
    d->StreamMissing(have, [&](const common::Dot& dot, const smr::Command& cmd) {
      entries.Dot(dot);
      cmd.EncodeTo(entries);
      if (++count >= kEntriesPerFrame) {
        flush();
      }
    });
    flush();
  }

  void Dropped(const common::Dot& dot, const smr::Command& original) override {
    owner_->deployment_->ForEachDropped(original, [this](const smr::Command& sub) {
      if (sub.client == 0) {
        return;
      }
      ShardOutput out;
      out.kind = ShardOutput::Kind::kReply;
      out.client = sub.client;
      out.seq = sub.seq;
      out.dropped = true;
      PushOutput(out);
    });
  }

 private:
  // Worker-local one-shot timer wheel: a binary min-heap of (deadline, token).
  // is_flush marks the wrapper's own batch-drain timer vs engine timers.
  struct TimerEntry {
    common::Time deadline;
    uint64_t seq;  // insertion tiebreak: equal deadlines fire in set order
    uint64_t token;
    bool is_flush;
    bool operator>(const TimerEntry& o) const {
      if (deadline != o.deadline) {
        return deadline > o.deadline;
      }
      return seq > o.seq;
    }
  };

  void PushTimer(common::Time deadline, uint64_t token, bool is_flush) {
    timers_.push_back(TimerEntry{deadline, timer_seq_++, token, is_flush});
    std::push_heap(timers_.begin(), timers_.end(), std::greater<TimerEntry>());
  }

  // Never blocks indefinitely: the I/O thread always drains outboxes before
  // sleeping, so ringing its doorbell and yielding is enough to guarantee the
  // ring frees up. Output is dropped only during shutdown.
  void PushOutput(ShardOutput& out) {
    while (!outbox_.TryPush(out)) {
      NotifyOutput();
      if (stop_.load(std::memory_order_acquire)) {
        return;
      }
      std::this_thread::yield();
    }
    NotifyOutput();
  }

  void NotifyOutput() {
    if (owner_->output_notify_) {
      owner_->output_notify_();
    }
  }

  void SubmitLocal(smr::Command& cmd) {
    smr::Engine& engine = owner_->deployment_->shard_engine(shard_);
    if (batch_window_ == 0) {
      engine.Submit(std::move(cmd));
      return;
    }
    pending_.push_back(std::move(cmd));
    if (pending_.size() >= batch_max_) {
      FlushBatch();
      return;
    }
    if (!flush_armed_) {
      flush_armed_ = true;
      PushTimer(Now() + batch_window_, /*token=*/0, /*is_flush=*/true);
    }
  }

  void FlushBatch() {
    flush_armed_ = false;
    if (pending_.empty()) {
      return;
    }
    smr::Engine& engine = owner_->deployment_->shard_engine(shard_);
    if (pending_.size() == 1) {
      engine.Submit(std::move(pending_[0]));
    } else {
      smr::Command batch;
      smr::MakeBatchInto(pending_, batch_writer_, batch, &batch_pool_);
      engine.Submit(std::move(batch));
    }
    pending_.clear();
  }

  void ThreadMain() {
    smr::Engine& engine = owner_->deployment_->shard_engine(shard_);
    engine.Bind(self_id_, n_, this);
    if (pool_ != nullptr) {
      pool_->Start();
    }
    engine.OnStart();
    if (owner_->deployment_->HasRecoveredState()) {
      // Seed the recovered floors after OnStart so protocol initialization
      // cannot clobber them; fresh submissions then mint dots above anything
      // a prior incarnation may have used.
      engine.ApplyRestartHint(
          owner_->deployment_->RecoveredRestartHints()[shard_]);
    }
    ShardInput in;
    while (!stop_.load(std::memory_order_acquire)) {
      bool worked = false;
      // Due timers first (they were set strictly earlier than now).
      common::Time now = Now();
      while (!timers_.empty() && timers_.front().deadline <= now) {
        std::pop_heap(timers_.begin(), timers_.end(), std::greater<TimerEntry>());
        TimerEntry t = timers_.back();
        timers_.pop_back();
        if (t.is_flush) {
          FlushBatch();
        } else {
          engine.OnTimer(t.token);
        }
        worked = true;
        now = Now();
      }
      // Bounded inbox burst, so a flooded inbox cannot starve timers.
      for (int i = 0; i < 256; i++) {
        if (!inbox_.TryPop(in)) {
          break;
        }
        switch (in.kind) {
          case ShardInput::Kind::kMessage:
            engine.OnMessage(in.from, in.m);
            break;
          case ShardInput::Kind::kSubmit:
            SubmitLocal(in.cmd);
            break;
          case ShardInput::Kind::kCatchupReq:
            HandleCatchupReq(in.from, in.seq_floor, in.blob);
            break;
          case ShardInput::Kind::kCatchupEntry:
            // The normal executed path: the durable admit filter deduplicates
            // (we may have replayed this record from our own log already), and
            // a duplicate's reply simply finds no waiting client.
            Executed(in.dot, in.cmd);
            break;
          case ShardInput::Kind::kNone:
            break;
        }
        worked = true;
      }
      // Executor completions back to the reply path (pool mode only).
      if (pool_ != nullptr && pool_->Poll() > 0) {
        worked = true;
      }
      if (worked) {
        continue;
      }
      // Park until input arrives or the next timer is due. Arm-then-recheck
      // closes the missed-wakeup window (see Doorbell). Executor lanes ring
      // this same bell when completions land, so the recheck covers them too.
      bell_.Arm();
      if (!inbox_.Empty() || (pool_ != nullptr && pool_->HasCompletions()) ||
          stop_.load(std::memory_order_acquire)) {
        continue;
      }
      int64_t timeout_us = -1;
      if (!timers_.empty()) {
        common::Time next = timers_.front().deadline;
        common::Time cur = Now();
        timeout_us = next > cur ? static_cast<int64_t>(next - cur) : 0;
      }
      bell_.Wait(timeout_us);
    }
    if (pool_ != nullptr) {
      // Quiesce the executor lanes before this worker dies: the store reaches
      // its final (inline-equivalent) state, so digests read after Join are
      // stable. Remaining completions drop with the node like queued replies.
      pool_->Stop();
    }
  }

  ShardRuntime* owner_;
  uint32_t shard_;
  common::ProcessId self_id_ = common::kInvalidProcess;
  uint32_t n_ = 0;

  Mailbox<ShardInput> inbox_;
  Mailbox<ShardOutput> outbox_;
  Doorbell bell_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> stopped_{false};

  // Worker-local state (worker thread only).
  std::vector<TimerEntry> timers_;
  uint64_t timer_seq_ = 0;
  common::Duration batch_window_ = 0;
  size_t batch_max_ = 64;
  bool flush_armed_ = false;
  std::vector<smr::Command> pending_;
  codec::Writer batch_writer_;
  smr::PayloadPool batch_pool_;
  std::vector<smr::Command> exec_scratch_;
  // Executor pool (nullptr when executor_threads == 0: inline execution).
  std::unique_ptr<exec::ExecPool> pool_;
};

ShardRuntime::ShardRuntime(smr::Deployment* deployment, Options opts)
    : deployment_(deployment),
      opts_(opts),
      partitions_(deployment->partitions()) {
  CHECK(deployment_ != nullptr);
  CHECK_GE(opts_.mailbox_capacity, 2u);
  for (uint32_t s = 0; s < partitions_; s++) {
    workers_.push_back(std::make_unique<Worker>(this, s));
  }
}

ShardRuntime::~ShardRuntime() { Stop(); }

void ShardRuntime::Start(common::ProcessId self, uint32_t n) {
  CHECK(!started_);
  started_ = true;
  for (uint32_t s = 0; s < partitions_; s++) {
    workers_[s]->Spawn(self, n);
  }
}

void ShardRuntime::Stop() {
  if (!started_) {
    return;
  }
  for (auto& w : workers_) {
    w->RequestStop();
  }
  for (auto& w : workers_) {
    w->Join();
  }
}

bool ShardRuntime::StopOne(uint32_t shard) {
  CHECK_LT(shard, partitions_);
  if (!started_ || workers_[shard]->stopped()) {
    return false;
  }
  workers_[shard]->RequestStop();
  workers_[shard]->Join();
  return true;
}

bool ShardRuntime::StopOneExecutor(uint32_t shard, uint32_t lane) {
  CHECK_LT(shard, partitions_);
  if (!started_ || workers_[shard]->stopped()) {
    return false;
  }
  exec::ExecPool* pool = workers_[shard]->pool();
  if (pool == nullptr || lane >= pool->lanes()) {
    return false;
  }
  return pool->StopOne(lane);
}

bool ShardRuntime::RouteMessage(common::ProcessId from, msg::Message& m) {
  uint32_t shard = m.shard;
  if (shard >= partitions_) {
    return true;  // malformed/foreign tag: swallow, like ShardedEngine does
  }
  Worker& w = *workers_[shard];
  if (w.stopped()) {
    return true;  // dead shard: input is lost, like a crashed replica's would be
  }
  ShardInput in;
  in.kind = ShardInput::Kind::kMessage;
  in.from = from;
  in.m = std::move(m);
  if (!w.inbox().TryPush(in)) {
    m = std::move(in.m);  // hand the message back for the caller's retry
    return false;
  }
  w.bell().Ring();
  return true;
}

bool ShardRuntime::SubmitToShard(uint32_t shard, smr::Command& cmd) {
  CHECK_LT(shard, partitions_);
  Worker& w = *workers_[shard];
  if (w.stopped()) {
    return true;  // dead shard drops the submission (client will time out/retry)
  }
  ShardInput in;
  in.kind = ShardInput::Kind::kSubmit;
  in.cmd = std::move(cmd);
  if (!w.inbox().TryPush(in)) {
    cmd = std::move(in.cmd);
    return false;
  }
  w.bell().Ring();
  return true;
}

bool ShardRuntime::RouteCatchupRequest(uint32_t shard, common::ProcessId from,
                                       uint64_t seq_floor,
                                       std::string& frontier_blob) {
  if (shard >= partitions_) {
    return true;
  }
  Worker& w = *workers_[shard];
  if (w.stopped()) {
    return true;
  }
  ShardInput in;
  in.kind = ShardInput::Kind::kCatchupReq;
  in.from = from;
  in.seq_floor = seq_floor;
  in.blob = std::move(frontier_blob);
  if (!w.inbox().TryPush(in)) {
    frontier_blob = std::move(in.blob);
    return false;
  }
  w.bell().Ring();
  return true;
}

bool ShardRuntime::RouteCatchupEntry(uint32_t shard, const common::Dot& dot,
                                     smr::Command& cmd) {
  if (shard >= partitions_) {
    return true;
  }
  Worker& w = *workers_[shard];
  if (w.stopped()) {
    return true;
  }
  ShardInput in;
  in.kind = ShardInput::Kind::kCatchupEntry;
  in.dot = dot;
  in.cmd = std::move(cmd);
  if (!w.inbox().TryPush(in)) {
    cmd = std::move(in.cmd);
    return false;
  }
  w.bell().Ring();
  return true;
}

size_t ShardRuntime::DrainOutputs(ShardOutputSink& sink) {
  size_t drained = 0;
  ShardOutput out;
  for (auto& w : workers_) {
    while (w->outbox().TryPop(out)) {
      drained++;
      switch (out.kind) {
        case ShardOutput::Kind::kPeerSend:
          sink.OnPeerSend(out.to, out.m);
          break;
        case ShardOutput::Kind::kReply:
          sink.OnClientReply(out.client, out.seq, std::move(out.value),
                             out.dropped);
          break;
        case ShardOutput::Kind::kCatchup:
          sink.OnCatchupFrame(out.to, std::move(out.value));
          break;
        case ShardOutput::Kind::kNone:
          break;
      }
    }
  }
  return drained;
}

bool ShardRuntime::HasOutput() const {
  for (const auto& w : workers_) {
    if (!w->outbox().Empty()) {
      return true;
    }
  }
  return false;
}

}  // namespace rt
