// Thread-per-shard worker tier of the real runtime.
//
// The single-driver rt::Node multiplexed all P shard engines of a deployment
// over one epoll thread, so the 3.3x simulated shard speedup never turned into
// real parallelism (and P=8 regressed from driver contention). ShardRuntime
// splits a replica into the two tiers that parallel SMR designs (Marandi et
// al.'s P-SMR, Whittaker et al.'s compartmentalization) arrive at:
//
//   * the I/O tier (rt::Node's epoll thread) owns sockets: it decodes frames,
//     routes them by the envelope's shard tag into per-shard inboxes without
//     copying payloads, and batches outbound writes per socket across shards;
//   * one worker thread per shard owns that shard's protocol engine, store
//     slice, submission batching and timer wheel. Workers never touch a
//     socket, a lock, or another shard's state;
//   * with smr::DeploymentOptions::executor_threads > 0, a third tier hangs
//     off each shard worker: an exec::ExecPool applying the shard's executed
//     commands concurrently across commute lanes (ordering stays on the shard
//     worker; only state application fans out — see src/exec/exec_pool.h).
//
// Edges between the tiers are bounded SPSC mailboxes (src/rt/mailbox.h): one
// inbox per (I/O -> shard) and one outbox per (shard -> I/O). Cross-shard
// edges are not instantiated — shard engines share no keys and never talk to
// each other (cross-shard commands are the ROADMAP's next gap; they would add
// (shard -> shard) mailboxes to this same topology). Idle workers park on an
// eventfd doorbell with a timeout derived from their own timer wheel, so an
// idle replica burns no CPU.
//
// The simulator path is untouched: threading is a runtime-only property
// selected by smr::DeploymentOptions::threaded, and the engines driven here
// are the same sans-I/O objects the simulator drives single-threadedly (the
// determinism pins and P=1 byte-identity do not move).
#ifndef SRC_RT_SHARD_RUNTIME_H_
#define SRC_RT_SHARD_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/rt/mailbox.h"
#include "src/smr/command.h"
#include "src/smr/deployment.h"

namespace rt {

// One item on an (I/O -> shard) inbox edge. Slots are resident in the mailbox
// ring; pushing moves the decoded message/command in, so slot string capacity
// is recycled across messages (no per-message heap allocation once warm).
struct ShardInput {
  enum class Kind : uint8_t {
    kNone,
    kMessage,
    kSubmit,
    kCatchupReq,    // peer `from` restarted: stream it what it is missing
    kCatchupEntry,  // one (dot, cmd) a peer streamed to us; apply idempotently
  };
  Kind kind = Kind::kNone;
  common::ProcessId from = 0;  // kMessage/kCatchupReq: sending peer
  msg::Message m;              // kMessage
  smr::Command cmd;            // kSubmit/kCatchupEntry
  common::Dot dot;             // kCatchupEntry
  uint64_t seq_floor = 0;      // kCatchupReq: requester's reserved floor
  std::string blob;            // kCatchupReq: requester's encoded DotFrontier
};

// One item on a (shard -> I/O) outbox edge.
struct ShardOutput {
  enum class Kind : uint8_t { kNone, kPeerSend, kReply, kCatchup };
  Kind kind = Kind::kNone;
  common::ProcessId to = 0;  // kPeerSend/kCatchup: destination peer
  msg::Message m;            // kPeerSend
  uint64_t client = 0;       // kReply: completed client command
  uint64_t seq = 0;
  std::string value;         // kReply: result; kCatchup: encoded entries frame
  bool dropped = false;
};

// Consumes drained worker output on the I/O thread. Implementations queue
// frames per connection and flush each touched socket once per drain, so one
// drain pass writes each socket at most once no matter how many shards fed it.
class ShardOutputSink {
 public:
  virtual ~ShardOutputSink() = default;
  virtual void OnPeerSend(common::ProcessId to, msg::Message& m) = 0;
  virtual void OnClientReply(uint64_t client, uint64_t seq, std::string&& value,
                             bool dropped) = 0;
  // Catch-up entries frame for peer `to` (payload: varint shard, varint count,
  // count x (dot, cmd)). Default drop: only the durable TCP node serves these.
  virtual void OnCatchupFrame(common::ProcessId to, std::string&& payload) {}
};

class ShardRuntime {
 public:
  struct Options {
    bool pin_cores = false;      // pin worker s to CPU s % ncpus
    size_t mailbox_capacity = 8192;  // slots per edge
  };

  // The deployment is borrowed and must outlive the runtime. Its per-shard
  // engines/stores are owned by the workers between Start() and Stop(): no
  // other thread may touch them (including stats()) until the workers join.
  ShardRuntime(smr::Deployment* deployment, Options opts);
  ~ShardRuntime();

  // `fn` is invoked from worker threads whenever output lands in an empty
  // outbox; it must be thread-safe and cheap (ring an eventfd the I/O loop
  // watches). Set before Start().
  void set_output_notify(std::function<void()> fn) { output_notify_ = std::move(fn); }

  // Spawns one worker per shard; each binds and starts its engine on its own
  // thread, then serves its inbox/timers until Stop().
  void Start(common::ProcessId self, uint32_t n);
  // Signals every worker and joins them. Idempotent; safe if never started.
  void Stop();
  // Joins a single shard's worker (fault drill: a dead shard thread must not
  // deadlock the node — its inbox fills and further input is dropped). Returns
  // false if already stopped.
  bool StopOne(uint32_t shard);
  // Crash drill one level down: stops one executor lane of one shard's pool
  // (deployment executor_threads > 0 only). The shard stays live; commands
  // routed to the dead lane are lost, everything else keeps applying. Returns
  // false when there is no pool, or the lane/shard is already stopped.
  bool StopOneExecutor(uint32_t shard, uint32_t lane);

  // I/O-thread entry points. Both move their argument into a mailbox slot on
  // success; on a full inbox they leave it untouched and return false — the
  // caller drains outboxes (freeing worker progress) and retries or drops.
  bool RouteMessage(common::ProcessId from, msg::Message& m);
  bool SubmitToShard(uint32_t shard, smr::Command& cmd);

  // Catch-up plumbing (durable deployments). RouteCatchupRequest hands a
  // restarted peer's advert (reserved floor + encoded frontier) to the shard
  // worker, which OnRestore()s its engine and streams the missing log records
  // back as kCatchup outputs; RouteCatchupEntry feeds one streamed record into
  // the shard worker, which applies it through the normal Executed path (the
  // durable admit filter makes re-delivery idempotent). Same full-inbox
  // contract as above.
  bool RouteCatchupRequest(uint32_t shard, common::ProcessId from,
                           uint64_t seq_floor, std::string& frontier_blob);
  bool RouteCatchupEntry(uint32_t shard, const common::Dot& dot,
                         smr::Command& cmd);

  // Drains every outbox into the sink (I/O thread only). Returns items drained.
  size_t DrainOutputs(ShardOutputSink& sink);
  // True if any outbox holds output (I/O-thread recheck after re-arming).
  bool HasOutput() const;

  uint32_t partitions() const { return partitions_; }
  bool started() const { return started_; }
  // Client commands applied across all shards (atomic; readable any time).
  uint64_t applied_ops() const {
    return applied_ops_.load(std::memory_order_acquire);
  }
  // Inputs dropped on full/stopped shard inboxes (monitoring; atomic).
  uint64_t inputs_dropped() const {
    return inputs_dropped_.load(std::memory_order_relaxed);
  }
  void CountDroppedInput() {
    inputs_dropped_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  class Worker;

  smr::Deployment* deployment_;
  Options opts_;
  uint32_t partitions_;
  std::function<void()> output_notify_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> applied_ops_{0};
  std::atomic<uint64_t> inputs_dropped_{0};
  bool started_ = false;
};

}  // namespace rt

#endif  // SRC_RT_SHARD_RUNTIME_H_
