// Bounded lock-free SPSC mailbox + parkable doorbell: the edges of the
// thread-per-shard runtime.
//
// The threaded runtime (src/rt/shard_runtime.h) connects its tiers with
// single-producer/single-consumer edges: one inbox per (I/O thread -> shard
// worker) and one outbox per (shard worker -> I/O thread). Each edge is a
// Mailbox<T>: a fixed-capacity ring whose slots are allocated once at
// construction and recycled forever after — pushing *moves* the item into the
// resident slot, so a slot's string/vector capacity survives reuse and the
// steady state performs no per-message heap allocation (the same recycled-slot
// discipline as the simulator's event pool; pinned by alloc_test).
//
// Progress discipline (deadlock freedom with bounded rings):
//   * the I/O thread never blocks on a full inbox — it drains worker outboxes
//     (making progress for the worker) and retries, or drops;
//   * a worker never blocks on a full outbox without ringing the I/O doorbell
//     first — the I/O thread always drains outboxes before waiting.
//
// The Doorbell lets an idle consumer park in the kernel instead of spinning:
// an eventfd guarded by an "armed" flag, so the producer pays a syscall only
// when the consumer actually went to sleep (one atomic exchange otherwise).
#ifndef SRC_RT_MAILBOX_H_
#define SRC_RT_MAILBOX_H_

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace rt {

// Fixed-capacity single-producer/single-consumer ring. Exactly one thread may
// call TryPush and exactly one thread may call TryPop (they may be different
// threads, or the same thread on both ends during setup/teardown). Capacity is
// rounded up to a power of two; slots are default-constructed once and moved
// in/out, never destroyed until the mailbox itself dies.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_.resize(cap);
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // Moves item into the ring; false (item untouched) when full.
  bool TryPush(T& item) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_cache_;
    if (tail - head >= capacity()) {
      head = head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head >= capacity()) {
        return false;
      }
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Moves the oldest item into out; false when empty.
  bool TryPop(T& out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_cache_;
    if (head >= tail) {
      tail = tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head >= tail) {
        return false;
      }
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer-side view; exact for the consumer, a lower bound for the producer.
  bool Empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  // Approximate occupancy (monitoring only).
  size_t SizeApprox() const {
    uint64_t tail = tail_.load(std::memory_order_acquire);
    uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  // Producer and consumer indexes live on their own cache lines; each side
  // additionally caches the other side's index so the common case touches one
  // shared line per operation, not two.
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer-owned
  uint64_t head_cache_ = 0;                    // producer's view of head_
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer-owned
  uint64_t tail_cache_ = 0;                    // consumer's view of tail_
  alignas(64) size_t mask_ = 0;
  std::vector<T> slots_;
};

// Park/notify primitive for an idle mailbox consumer: an eventfd the consumer
// blocks on (optionally with a timeout, for worker-local timer wheels), armed
// only while it is actually about to sleep. Ring() is safe from any number of
// producer threads; Wait() from the single consumer.
class Doorbell {
 public:
  Doorbell() {
    fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    CHECK_GE(fd_, 0);
  }

  ~Doorbell() {
    if (fd_ >= 0) {
      close(fd_);
    }
  }

  Doorbell(const Doorbell&) = delete;
  Doorbell& operator=(const Doorbell&) = delete;

  // Wakes the consumer if it is parked (or about to park). One atomic exchange
  // when the consumer is awake; the eventfd write only when it went to sleep.
  void Ring() {
    if (armed_.exchange(false, std::memory_order_seq_cst)) {
      uint64_t one = 1;
      ssize_t rc = write(fd_, &one, sizeof(one));
      (void)rc;
    }
  }

  // Arms the bell. The consumer must re-check its mailboxes after arming and
  // before Wait(): a producer that pushed before seeing the armed flag will not
  // ring, and the re-check is what catches its item. (The seq_cst arm/ring pair
  // makes the push visible to that re-check.)
  void Arm() { armed_.store(true, std::memory_order_seq_cst); }

  // The eventfd, for consumers that integrate with an epoll loop instead of
  // blocking in Wait() (arm with Arm(), clear readiness with Drain()).
  int fd() const { return fd_; }

  // Clears the eventfd counter without blocking (epoll-integrated consumers).
  void Drain() {
    uint64_t junk;
    while (read(fd_, &junk, sizeof(junk)) > 0) {
    }
  }

  // Blocks until rung or timeout_us elapses (negative = no timeout). Returns
  // true if rung. Disarms on return.
  bool Wait(int64_t timeout_us) {
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    int timeout_ms =
        timeout_us < 0 ? -1 : static_cast<int>((timeout_us + 999) / 1000);
    int rc = poll(&pfd, 1, timeout_ms);
    armed_.store(false, std::memory_order_seq_cst);
    if (rc > 0) {
      uint64_t junk;
      while (read(fd_, &junk, sizeof(junk)) > 0) {
      }
      return true;
    }
    return false;
  }

 private:
  int fd_ = -1;
  std::atomic<bool> armed_{false};
};

}  // namespace rt

#endif  // SRC_RT_MAILBOX_H_
