// Minimal epoll-based event loop: non-blocking fd callbacks + monotonic timers.
//
// Single-threaded by design (one loop per replica); Post() is only safe from the loop
// thread, except PostFromAnyThread which uses an eventfd wakeup.
#ifndef SRC_RT_EVENT_LOOP_H_
#define SRC_RT_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "src/common/types.h"

namespace rt {

class EventLoop {
 public:
  using FdCallback = std::function<void(uint32_t events)>;
  using TimerCallback = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers fd for the given epoll events (EPOLLIN/EPOLLOUT). Replaces any previous
  // registration.
  void WatchFd(int fd, uint32_t events, FdCallback cb);
  void UnwatchFd(int fd);
  void ModifyFd(int fd, uint32_t events);

  // Monotonic clock, microseconds.
  static common::Time NowUs();

  // One-shot timer.
  uint64_t AddTimer(common::Duration delay, TimerCallback cb);

  // Runs fn on the loop thread (thread-safe).
  void PostFromAnyThread(std::function<void()> fn);

  void Run();   // until Stop()
  void Stop();  // thread-safe

 private:
  void DrainPosted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool running_ = false;

  struct Watch {
    FdCallback cb;
    uint32_t events = 0;
  };
  std::map<int, Watch> watches_;

  struct Timer {
    common::Time deadline;
    uint64_t id;
    TimerCallback cb;
    bool operator>(const Timer& o) const {
      if (deadline != o.deadline) {
        return deadline > o.deadline;
      }
      return id > o.id;
    }
  };
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  uint64_t next_timer_id_ = 1;

  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace rt

#endif  // SRC_RT_EVENT_LOOP_H_
