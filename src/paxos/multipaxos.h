// Leader-based Multi-Paxos with Flexible Paxos quorums [Howard et al., OPODIS'16].
//
// The FPaxos baseline of the paper: a distinguished leader orders all commands in a
// log. In the failure-free case the leader runs phase 2 against a quorum of f+1
// acceptors (mode kFlexible) or a majority (mode kClassic = plain Paxos); fail-over
// runs phase 1 against n-f (resp. majority) acceptors.
//
// Clients pay four message delays: client -> leader (PxForward when submitting at a
// non-leader replica), leader -> phase-2 quorum round trip, plus the commit
// notification back (piggybacked on PxCommit broadcast). This reproduces the latency
// geometry of Figures 5-8.
#ifndef SRC_PAXOS_MULTIPAXOS_H_
#define SRC_PAXOS_MULTIPAXOS_H_

#include <map>
#include <set>
#include <vector>

#include "src/common/quorum.h"
#include "src/common/types.h"
#include "src/msg/message.h"
#include "src/smr/engine.h"

namespace paxos {

enum class QuorumMode {
  kClassic,   // phase 1 and phase 2 use majorities (Paxos)
  kFlexible,  // phase 2 uses f+1, phase 1 uses n-f (FPaxos)
};

struct Config {
  uint32_t n = 3;
  uint32_t f = 1;
  QuorumMode mode = QuorumMode::kFlexible;
  common::ProcessId initial_leader = 0;
  std::vector<common::ProcessId> by_proximity;

  // Leader failure detection is driven by OnSuspect from the harness; the election
  // backoff spaces competing candidacies.
  common::Duration election_retry = 2 * common::kSecond;

  size_t Phase2Size() const {
    return mode == QuorumMode::kFlexible ? f + 1 : n / 2 + 1;
  }
  size_t Phase1Size() const {
    return mode == QuorumMode::kFlexible ? n - f : n / 2 + 1;
  }
};

class PaxosEngine final : public smr::Engine {
 public:
  explicit PaxosEngine(Config config);

  void OnStart() override;
  void Submit(smr::Command cmd) override;
  void OnMessage(common::ProcessId from, const msg::Message& m) override;
  void OnTimer(uint64_t token) override;
  void OnSuspect(common::ProcessId p) override;

  bool IsLeader() const { return leading_; }
  common::ProcessId CurrentLeader() const;
  uint64_t LogLength() const { return next_slot_; }

 private:
  struct SlotState {
    smr::Command cmd;
    common::Ballot accepted_ballot = 0;
    common::Quorum acked;
    bool committed = false;
    bool proposed_by_me = false;
  };

  void HandleForward(common::ProcessId from, const msg::PxForward& m);
  void HandleAccept(common::ProcessId from, const msg::PxAccept& m);
  void HandleAccepted(common::ProcessId from, const msg::PxAccepted& m);
  void HandleCommit(common::ProcessId from, const msg::PxCommit& m);
  void HandlePrepare(common::ProcessId from, const msg::PxPrepare& m);
  void HandlePromise(common::ProcessId from, const msg::PxPromise& m);

  void ProposeInSlot(uint64_t slot, const smr::Command& cmd);
  void CommitSlot(uint64_t slot, const smr::Command& cmd);
  void TryExecute();
  void StartElection();
  common::Quorum Phase2Quorum() const;

  Config config_;

  // Acceptor state.
  common::Ballot promised_ = 0;
  std::map<uint64_t, SlotState> log_;  // ordered: execution walks it sequentially

  // Leader / proposer state.
  bool leading_ = false;
  common::Ballot ballot_ = 0;  // my ballot when leading / candidate
  uint64_t next_slot_ = 0;     // next free slot (leader)

  // Election state.
  bool electing_ = false;
  common::Quorum promises_;
  std::vector<msg::PxPromise> promise_msgs_;
  uint64_t election_from_slot_ = 0;

  // Reusable PxPromise scratch for HandlePrepare: the accepted-entry vector (and each
  // entry's command strings) keep their capacity across prepares, so answering phase 1
  // over a long log performs no per-entry growth allocation (ROADMAP hot-path item).
  msg::PxPromise promise_scratch_;

  uint64_t execute_upto_ = 0;  // next slot to execute
  std::set<common::ProcessId> suspected_;
  static constexpr uint64_t kElectionRetryToken = 2;
};

}  // namespace paxos

#endif  // SRC_PAXOS_MULTIPAXOS_H_
