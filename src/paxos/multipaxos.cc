#include "src/paxos/multipaxos.h"

#include <algorithm>

#include "src/common/check.h"

namespace paxos {

using common::Ballot;
using common::Dot;
using common::ProcessId;
using common::Quorum;

namespace {
// Synthetic process id used in execution Dots for log-ordered protocols (the checker
// keys on (client, seq), the Dot is informational).
constexpr ProcessId kLogProc = 30;
}  // namespace

PaxosEngine::PaxosEngine(Config config) : config_(config) {
  CHECK_GE(config_.n, 3u);
  CHECK_GE(config_.f, 1u);
  CHECK_LE(config_.f, (config_.n - 1) / 2);
}

void PaxosEngine::OnStart() {
  CHECK_EQ(config_.n, n_);
  if (config_.by_proximity.empty()) {
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        config_.by_proximity.push_back(p);
      }
    }
  }
  if (self_ == config_.initial_leader) {
    leading_ = true;
    ballot_ = common::InitialBallot(self_);
    promised_ = ballot_;
  } else {
    promised_ = common::InitialBallot(config_.initial_leader);
  }
}

ProcessId PaxosEngine::CurrentLeader() const {
  return promised_ == 0 ? config_.initial_leader : common::BallotOwner(promised_, n_);
}

Quorum PaxosEngine::Phase2Quorum() const {
  Quorum q;
  q.Add(self_);
  // Closest responsive acceptors first; fall back to suspected ones when fewer than
  // Phase2Size responsive processes remain.
  for (ProcessId p : config_.by_proximity) {
    if (q.size() >= config_.Phase2Size()) {
      return q;
    }
    if (suspected_.count(p) == 0) {
      q.Add(p);
    }
  }
  for (ProcessId p : config_.by_proximity) {
    if (q.size() >= config_.Phase2Size()) {
      break;
    }
    q.Add(p);
  }
  return q;
}

void PaxosEngine::Submit(smr::Command cmd) {
  stats_.submitted++;
  if (leading_) {
    ProposeInSlot(next_slot_++, cmd);
    return;
  }
  msg::PxForward fwd;
  fwd.cmd = std::move(cmd);
  ProcessId leader = CurrentLeader();
  if (leader == self_) {
    // Shouldn't happen (leading_ false but owning the promised ballot); drop into
    // election instead of looping forever.
    StartElection();
    return;
  }
  SendTo(leader, fwd);
}

void PaxosEngine::HandleForward(ProcessId from, const msg::PxForward& m) {
  if (leading_) {
    ProposeInSlot(next_slot_++, m.cmd);
  } else {
    // Re-forward to the current leader (e.g. leadership moved).
    ProcessId leader = CurrentLeader();
    if (leader != self_) {
      SendTo(leader, m);
    }
  }
}

void PaxosEngine::ProposeInSlot(uint64_t slot, const smr::Command& cmd) {
  SlotState& s = log_[slot];
  s.cmd = cmd;
  s.accepted_ballot = ballot_;
  s.proposed_by_me = true;
  s.acked = Quorum();
  msg::PxAccept acc;
  acc.slot = slot;
  acc.ballot = ballot_;
  acc.cmd = cmd;
  for (ProcessId p : Phase2Quorum()) {
    if (p != self_) {
      SendTo(p, acc);
    }
  }
  SendTo(self_, acc);
}

void PaxosEngine::HandleAccept(ProcessId from, const msg::PxAccept& m) {
  if (m.ballot < promised_) {
    return;
  }
  promised_ = m.ballot;
  if (leading_ && common::BallotOwner(m.ballot, n_) != self_) {
    leading_ = false;  // preempted
  }
  SlotState& s = log_[m.slot];
  if (s.committed) {
    // Already decided (e.g. a new leader re-proposing a slot the old leader committed):
    // short-circuit with the decision so the proposer does not stall on our ack.
    msg::PxCommit commit;
    commit.slot = m.slot;
    commit.cmd = s.cmd;
    SendTo(from, commit);
    return;
  }
  s.cmd = m.cmd;
  s.accepted_ballot = m.ballot;
  msg::PxAccepted ack;
  ack.slot = m.slot;
  ack.ballot = m.ballot;
  SendTo(from, ack);
}

void PaxosEngine::HandleAccepted(ProcessId from, const msg::PxAccepted& m) {
  if (!leading_ || m.ballot != ballot_) {
    return;
  }
  auto it = log_.find(m.slot);
  if (it == log_.end() || it->second.committed) {
    return;
  }
  SlotState& s = it->second;
  if (s.acked.Contains(from)) {
    return;
  }
  s.acked.Add(from);
  if (s.acked.size() >= config_.Phase2Size()) {
    msg::PxCommit commit;
    commit.slot = m.slot;
    commit.cmd = s.cmd;
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, commit);
      }
    }
    CommitSlot(m.slot, s.cmd);
  }
}

void PaxosEngine::HandleCommit(ProcessId from, const msg::PxCommit& m) {
  CommitSlot(m.slot, m.cmd);
}

void PaxosEngine::CommitSlot(uint64_t slot, const smr::Command& cmd) {
  SlotState& s = log_[slot];
  if (s.committed) {
    return;
  }
  s.committed = true;
  s.cmd = cmd;
  stats_.committed++;
  ctx_->Committed(Dot{kLogProc, slot}, cmd, /*fast_path=*/false);
  if (leading_) {
    next_slot_ = std::max(next_slot_, slot + 1);
  }
  TryExecute();
}

void PaxosEngine::TryExecute() {
  while (true) {
    auto it = log_.find(execute_upto_);
    if (it == log_.end() || !it->second.committed) {
      return;
    }
    stats_.executed++;
    ctx_->Executed(Dot{kLogProc, execute_upto_}, it->second.cmd);
    execute_upto_++;
  }
}

// ---------------------------------------------------------------------------
// Fail-over: Paxos phase 1 over the phase-1 quorum.
// ---------------------------------------------------------------------------

void PaxosEngine::OnSuspect(ProcessId p) {
  if (p == self_) {
    return;
  }
  suspected_.insert(p);
  if (p != CurrentLeader() || leading_) {
    return;
  }
  StartElection();
}

void PaxosEngine::StartElection() {
  electing_ = true;
  ballot_ = common::NextRecoveryBallot(self_, std::max(promised_, ballot_), n_);
  promises_ = Quorum();
  promise_msgs_.clear();
  election_from_slot_ = execute_upto_;
  msg::PxPrepare prep;
  prep.ballot = ballot_;
  prep.from_slot = election_from_slot_;
  SendAll(prep);
  ctx_->SetTimer(config_.election_retry, kElectionRetryToken);
}

void PaxosEngine::OnTimer(uint64_t token) {
  if (token == kElectionRetryToken && electing_) {
    StartElection();  // retry with a higher ballot
  }
}

void PaxosEngine::HandlePrepare(ProcessId from, const msg::PxPrepare& m) {
  if (m.ballot <= promised_) {
    return;
  }
  promised_ = m.ballot;
  if (leading_ && common::BallotOwner(m.ballot, n_) != self_) {
    leading_ = false;
  }
  // Fill the reusable scratch in place: entries in the stable prefix are overwritten
  // (their command strings reuse capacity) and the vector itself never re-grows below
  // its high-water mark (resize keeps capacity; entries above `count` are re-created
  // empty if a later prepare is longer). The copy into the send envelope is a single
  // sized allocation instead of a growth sequence per prepare.
  msg::PxPromise& promise = promise_scratch_;
  promise.ballot = m.ballot;
  size_t count = 0;
  for (const auto& [slot, s] : log_) {
    if (slot >= m.from_slot && s.accepted_ballot != 0) {
      if (count == promise.accepted.size()) {
        promise.accepted.emplace_back();
      }
      msg::PxPromiseEntry& e = promise.accepted[count++];
      e.slot = slot;
      e.ballot = s.committed ? ~Ballot{0} : s.accepted_ballot;  // committed wins
      e.cmd = s.cmd;
    }
  }
  promise.accepted.resize(count);
  SendTo(from, promise);
}

void PaxosEngine::HandlePromise(ProcessId from, const msg::PxPromise& m) {
  if (!electing_ || m.ballot != ballot_ || promises_.Contains(from)) {
    return;
  }
  promises_.Add(from);
  promise_msgs_.push_back(m);
  if (promises_.size() < config_.Phase1Size()) {
    return;
  }
  electing_ = false;
  leading_ = true;
  promised_ = ballot_;

  // Adopt the highest-ballot accepted value per slot; fill gaps with noOp.
  std::map<uint64_t, std::pair<Ballot, smr::Command>> adopted;
  for (const auto& promise : promise_msgs_) {
    for (const auto& e : promise.accepted) {
      auto it = adopted.find(e.slot);
      if (it == adopted.end() || e.ballot > it->second.first) {
        adopted[e.slot] = {e.ballot, e.cmd};
      }
    }
  }
  uint64_t max_slot = election_from_slot_;
  if (!adopted.empty()) {
    max_slot = std::max(max_slot, adopted.rbegin()->first + 1);
  }
  next_slot_ = max_slot;
  for (uint64_t slot = election_from_slot_; slot < max_slot; slot++) {
    auto it = adopted.find(slot);
    const smr::Command cmd = it != adopted.end() ? it->second.second : smr::MakeNoOp();
    auto lit = log_.find(slot);
    if (lit != log_.end() && lit->second.committed) {
      continue;
    }
    ProposeInSlot(slot, cmd);
  }
}

void PaxosEngine::OnMessage(ProcessId from, const msg::Message& m) {
  if (auto* v = msg::get_if<msg::PxForward>(&m)) {
    HandleForward(from, *v);
  } else if (auto* v = msg::get_if<msg::PxAccept>(&m)) {
    HandleAccept(from, *v);
  } else if (auto* v = msg::get_if<msg::PxAccepted>(&m)) {
    HandleAccepted(from, *v);
  } else if (auto* v = msg::get_if<msg::PxCommit>(&m)) {
    HandleCommit(from, *v);
  } else if (auto* v = msg::get_if<msg::PxPrepare>(&m)) {
    HandlePrepare(from, *v);
  } else if (auto* v = msg::get_if<msg::PxPromise>(&m)) {
    HandlePromise(from, *v);
  }
}

}  // namespace paxos
