// Dependency-graph command executor (Algorithm 3 of the paper).
//
// Committed commands form a directed graph (dot -> its dependencies). The paper's
// execution rule — repeatedly execute the smallest batch S of committed commands whose
// dependencies lie in S or are already executed, ordering commands inside a batch by a
// fixed total order on identifiers — is implemented incrementally:
//
//   * a batch is exactly a strongly connected component of the committed-but-unexecuted
//     subgraph all of whose outgoing edges lead to executed commands;
//   * when a command commits, we run an iterative Tarjan walk from it over committed
//     nodes; if every transitively reachable dependency is committed, all reachable
//     SCCs execute in reverse topological order; otherwise the walk parks the root on
//     the first missing dependency and is retried when that dependency commits.
//
// The same executor serves Atlas (in-batch order: Dot) and EPaxos (in-batch order:
// (seq, Dot)) via the Order parameter. Equivalence with the paper's smallest-batch
// definition is exercised by property tests in tests/exec_test.cc.
#ifndef SRC_EXEC_GRAPH_EXECUTOR_H_
#define SRC_EXEC_GRAPH_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/dep_set.h"
#include "src/common/dot_map.h"
#include "src/common/dot_set.h"
#include "src/common/types.h"
#include "src/smr/command.h"

namespace exec {

enum class BatchOrder {
  kDot,     // Atlas: fixed total order "<" on identifiers
  kSeqDot,  // EPaxos: sequence number, then identifier
};

class GraphExecutor {
 public:
  using ExecuteFn = std::function<void(const common::Dot&, const smr::Command&)>;

  // Ordering/execution split: a sink receives ready commands — still in the
  // deterministic SCC/batch order — and owns what happens next (apply inline,
  // or hand off to an executor pool, src/exec/exec_pool.h). The command is
  // moved out: once emitted, the executor is done with it.
  class ReadySink {
   public:
    virtual ~ReadySink() = default;
    virtual void OnReady(const common::Dot& dot, smr::Command&& cmd,
                         uint64_t seqno) = 0;
  };

  GraphExecutor(BatchOrder order, ExecuteFn execute);
  GraphExecutor(BatchOrder order, ReadySink* sink);

  // Delivers the final (consensus-agreed) command and dependencies for dot.
  // Idempotent: re-commits of the same dot are ignored (Integrity).
  void Commit(const common::Dot& dot, smr::Command cmd, common::DepSet deps,
              uint64_t seqno = 0);

  bool IsCommitted(const common::Dot& dot) const;
  bool IsExecuted(const common::Dot& dot) const { return executed_.Contains(dot); }

  // Committed-but-not-yet-executed commands (blocked on missing dependencies).
  size_t PendingCount() const { return pending_count_; }
  uint64_t ExecutedCount() const { return executed_count_; }
  // Size of the largest batch (SCC) executed so far; ablation metric (§5.5).
  size_t MaxBatch() const { return max_batch_; }

 private:
  struct Node {
    smr::Command cmd;
    common::DepSet deps;
    uint64_t seqno = 0;
    // Tarjan bookkeeping (valid during one TryExecute call, keyed by epoch).
    uint64_t visit_epoch = 0;
    uint32_t index = 0;
    uint32_t lowlink = 0;
    bool on_stack = false;
  };

  // Attempts to execute the SCC closure reachable from root. Returns nullopt on
  // success, or the first uncommitted dependency encountered (root is parked on it).
  std::optional<common::Dot> TryExecute(const common::Dot& root);
  void RunBatch(common::Dot* begin, common::Dot* end);

  BatchOrder order_;
  ExecuteFn execute_;       // callback emission (engines)
  ReadySink* sink_ = nullptr;  // sink emission (executor pools); exclusive

  // Committed-but-unexecuted nodes in an open-addressed flat map (src/common/
  // dot_map.h): the commit/execute hot path allocates no per-node hash buckets, and
  // probes hit one contiguous array. References into it are invalidated by rehash;
  // the walk below only holds them between mutations.
  common::DotMap<Node> nodes_;
  // Executed dots are dense per process, so a bitmap set beats a node-based hash set
  // and inserts without per-element allocation (the execute hot path).
  common::DenseDotSet executed_;
  // dep dot -> dots whose execution attempt parked on it.
  common::DotMap<std::vector<common::Dot>> waiters_;

  uint64_t epoch_ = 0;
  size_t pending_count_ = 0;
  uint64_t executed_count_ = 0;
  size_t max_batch_ = 0;
  // Dots whose waiters must be retried (drained by Commit).
  std::vector<common::Dot> progressed_;

  // Tarjan walk scratch, reused across TryExecute calls so the per-commit steady
  // state performs no allocation (vectors keep their high-water capacity).
  struct Frame {
    common::Dot dot;
    size_t dep_index = 0;
  };
  std::vector<Frame> walk_stack_;
  std::vector<common::Dot> tarjan_stack_;
  // SCCs of one walk, flattened: batch i spans batch_bounds_[i-1]..batch_bounds_[i).
  std::vector<common::Dot> batch_dots_;
  std::vector<size_t> batch_bounds_;
  bool in_walk_ = false;
};

}  // namespace exec

#endif  // SRC_EXEC_GRAPH_EXECUTOR_H_
