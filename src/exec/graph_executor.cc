#include "src/exec/graph_executor.h"

#include <algorithm>

#include "src/common/check.h"

namespace exec {

GraphExecutor::GraphExecutor(BatchOrder order, ExecuteFn execute)
    : order_(order), execute_(std::move(execute)) {
  CHECK(execute_ != nullptr);
}

bool GraphExecutor::IsCommitted(const common::Dot& dot) const {
  return executed_.Contains(dot) || nodes_.count(dot) > 0;
}

void GraphExecutor::Commit(const common::Dot& dot, smr::Command cmd, common::DepSet deps,
                           uint64_t seqno) {
  if (IsCommitted(dot)) {
    return;
  }
  Node node;
  node.cmd = std::move(cmd);
  node.deps = std::move(deps);
  node.seqno = seqno;
  nodes_.emplace(dot, std::move(node));
  pending_count_++;

  std::optional<common::Dot> missing = TryExecute(dot);
  if (missing.has_value()) {
    // `dot` is committed but transitively blocked on `missing` (TryExecute parked it
    // there). Anything parked on `dot` is blocked on `missing` too: transfer the
    // waiter list wholesale instead of re-walking each waiter — this keeps adversarial
    // commit orders (e.g. a long chain committed in reverse) linear instead of cubic.
    auto it = waiters_.find(dot);
    if (it != waiters_.end()) {
      std::vector<common::Dot> moved = std::move(it->second);
      waiters_.erase(it);
      std::vector<common::Dot>& dst = waiters_[*missing];
      if (dst.empty()) {
        dst = std::move(moved);
      } else {
        dst.insert(dst.end(), moved.begin(), moved.end());
      }
    }
    return;
  }
  // Execution happened. Worklist of dots whose state advanced: waiters parked on them
  // must retry. RunBatch appends executed dots via progressed_, so unblocking cascades
  // through long chains without recursion.
  progressed_.push_back(dot);
  while (!progressed_.empty()) {
    common::Dot d = progressed_.back();
    progressed_.pop_back();
    auto it = waiters_.find(d);
    if (it == waiters_.end()) {
      continue;
    }
    std::vector<common::Dot> retry = std::move(it->second);
    waiters_.erase(it);
    for (const common::Dot& w : retry) {
      if (nodes_.count(w) > 0) {
        TryExecute(w);
      }
    }
  }
}

std::optional<common::Dot> GraphExecutor::TryExecute(const common::Dot& root) {
  if (nodes_.count(root) == 0) {
    return std::nullopt;
  }
  epoch_++;

  // Iterative Tarjan over committed nodes. If any reachable dependency is uncommitted,
  // park the root on it and abort; otherwise every reachable SCC is executable and SCCs
  // complete (pop) in reverse topological order — exactly batch order. All walk state
  // lives in member scratch vectors reused across calls (no per-commit allocation).
  // Member scratch is not reentrancy-safe: an execute_ callback must never commit
  // synchronously (drivers schedule follow-up work through their event loop instead).
  CHECK(!in_walk_);
  in_walk_ = true;
  walk_stack_.clear();
  tarjan_stack_.clear();
  batch_dots_.clear();
  batch_bounds_.clear();
  uint32_t next_index = 0;

  auto push_node = [&](const common::Dot& d, Node& node) {
    node.visit_epoch = epoch_;
    node.index = next_index;
    node.lowlink = next_index;
    node.on_stack = true;
    next_index++;
    tarjan_stack_.push_back(d);
    walk_stack_.push_back(Frame{d, 0});
  };

  push_node(root, nodes_.at(root));

  while (!walk_stack_.empty()) {
    Frame& frame = walk_stack_.back();
    Node& node = nodes_.at(frame.dot);
    if (frame.dep_index < node.deps.size()) {
      const common::Dot& dep = node.deps.dots()[frame.dep_index++];
      if (executed_.Contains(dep)) {
        continue;
      }
      auto dep_it = nodes_.find(dep);
      if (dep_it == nodes_.end()) {
        // Uncommitted dependency: the batch containing root cannot form yet.
        waiters_[dep].push_back(root);
        // Clear on_stack flags for a clean next epoch (epoch check handles the rest).
        for (const common::Dot& d : tarjan_stack_) {
          nodes_.at(d).on_stack = false;
        }
        in_walk_ = false;
        return dep;
      }
      Node& dep_node = dep_it->second;
      if (dep_node.visit_epoch != epoch_) {
        push_node(dep, dep_node);
      } else if (dep_node.on_stack) {
        node.lowlink = std::min(node.lowlink, dep_node.index);
      }
      continue;
    }
    // Node finished: propagate lowlink to parent, pop SCC if root of one.
    uint32_t lowlink = node.lowlink;
    uint32_t index = node.index;
    common::Dot done = frame.dot;
    walk_stack_.pop_back();
    if (!walk_stack_.empty()) {
      Node& parent = nodes_.at(walk_stack_.back().dot);
      parent.lowlink = std::min(parent.lowlink, lowlink);
    }
    if (lowlink == index) {
      while (true) {
        common::Dot d = tarjan_stack_.back();
        tarjan_stack_.pop_back();
        nodes_.at(d).on_stack = false;
        batch_dots_.push_back(d);
        if (d == done) {
          break;
        }
      }
      batch_bounds_.push_back(batch_dots_.size());
    }
  }

  // SCCs completed in reverse topological order (dependencies first): execute in that
  // order. The flattened scratch stays valid because RunBatch only sorts in place.
  size_t begin = 0;
  for (size_t bound : batch_bounds_) {
    RunBatch(batch_dots_.data() + begin, batch_dots_.data() + bound);
    begin = bound;
  }
  in_walk_ = false;
  return std::nullopt;
}

void GraphExecutor::RunBatch(common::Dot* begin, common::Dot* end) {
  if (order_ == BatchOrder::kDot) {
    std::sort(begin, end);
  } else {
    std::sort(begin, end, [this](const common::Dot& a, const common::Dot& b) {
      const Node& na = nodes_.at(a);
      const Node& nb = nodes_.at(b);
      if (na.seqno != nb.seqno) {
        return na.seqno < nb.seqno;
      }
      return a < b;
    });
  }
  max_batch_ = std::max(max_batch_, static_cast<size_t>(end - begin));
  for (common::Dot* cur = begin; cur != end; ++cur) {
    const common::Dot& d = *cur;
    auto it = nodes_.find(d);
    CHECK(it != nodes_.end());
    execute_(d, it->second.cmd);
    executed_.Insert(d);
    executed_count_++;
    nodes_.erase(it);
    CHECK_GT(pending_count_, 0u);
    pending_count_--;
    if (waiters_.count(d) > 0) {
      progressed_.push_back(d);
    }
  }
}

}  // namespace exec
