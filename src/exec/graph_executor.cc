#include "src/exec/graph_executor.h"

#include <algorithm>

#include "src/common/check.h"

namespace exec {

GraphExecutor::GraphExecutor(BatchOrder order, ExecuteFn execute)
    : order_(order), execute_(std::move(execute)) {
  CHECK(execute_ != nullptr);
}

GraphExecutor::GraphExecutor(BatchOrder order, ReadySink* sink)
    : order_(order), sink_(sink) {
  CHECK(sink_ != nullptr);
}

bool GraphExecutor::IsCommitted(const common::Dot& dot) const {
  return executed_.Contains(dot) || nodes_.Contains(dot);
}

void GraphExecutor::Commit(const common::Dot& dot, smr::Command cmd, common::DepSet deps,
                           uint64_t seqno) {
  if (IsCommitted(dot)) {
    return;
  }
  Node& node = nodes_[dot];
  node.cmd = std::move(cmd);
  node.deps = std::move(deps);
  node.seqno = seqno;
  pending_count_++;

  std::optional<common::Dot> missing = TryExecute(dot);
  if (missing.has_value()) {
    // `dot` is committed but transitively blocked on `missing` (TryExecute parked it
    // there). Anything parked on `dot` is blocked on `missing` too: transfer the
    // waiter list wholesale instead of re-walking each waiter — this keeps adversarial
    // commit orders (e.g. a long chain committed in reverse) linear instead of cubic.
    std::vector<common::Dot>* parked = waiters_.Find(dot);
    if (parked != nullptr) {
      std::vector<common::Dot> moved = std::move(*parked);
      waiters_.Erase(dot);
      std::vector<common::Dot>& dst = waiters_[*missing];
      if (dst.empty()) {
        dst = std::move(moved);
      } else {
        dst.insert(dst.end(), moved.begin(), moved.end());
      }
    }
    return;
  }
  // Execution happened. Worklist of dots whose state advanced: waiters parked on them
  // must retry. RunBatch appends executed dots via progressed_, so unblocking cascades
  // through long chains without recursion.
  progressed_.push_back(dot);
  while (!progressed_.empty()) {
    common::Dot d = progressed_.back();
    progressed_.pop_back();
    std::vector<common::Dot>* parked = waiters_.Find(d);
    if (parked == nullptr) {
      continue;
    }
    std::vector<common::Dot> retry = std::move(*parked);
    waiters_.Erase(d);
    for (const common::Dot& w : retry) {
      if (nodes_.Contains(w)) {
        TryExecute(w);
      }
    }
  }
}

std::optional<common::Dot> GraphExecutor::TryExecute(const common::Dot& root) {
  Node* root_node = nodes_.Find(root);
  if (root_node == nullptr) {
    return std::nullopt;
  }
  epoch_++;

  // Iterative Tarjan over committed nodes. If any reachable dependency is uncommitted,
  // park the root on it and abort; otherwise every reachable SCC is executable and SCCs
  // complete (pop) in reverse topological order — exactly batch order. All walk state
  // lives in member scratch vectors reused across calls (no per-commit allocation).
  // Member scratch is not reentrancy-safe: an execute_ callback must never commit
  // synchronously (drivers schedule follow-up work through their event loop instead).
  CHECK(!in_walk_);
  in_walk_ = true;
  walk_stack_.clear();
  tarjan_stack_.clear();
  batch_dots_.clear();
  batch_bounds_.clear();
  uint32_t next_index = 0;

  auto push_node = [&](const common::Dot& d, Node& node) {
    node.visit_epoch = epoch_;
    node.index = next_index;
    node.lowlink = next_index;
    node.on_stack = true;
    next_index++;
    tarjan_stack_.push_back(d);
    walk_stack_.push_back(Frame{d, 0});
  };

  push_node(root, *root_node);

  while (!walk_stack_.empty()) {
    Frame& frame = walk_stack_.back();
    // The walk never mutates nodes_ (waiters_ is a separate map), so these
    // references stay valid for the loop body.
    Node& node = *nodes_.Find(frame.dot);
    if (frame.dep_index < node.deps.size()) {
      const common::Dot& dep = node.deps.dots()[frame.dep_index++];
      if (executed_.Contains(dep)) {
        continue;
      }
      Node* dep_found = nodes_.Find(dep);
      if (dep_found == nullptr) {
        // Uncommitted dependency: the batch containing root cannot form yet.
        waiters_[dep].push_back(root);
        // Clear on_stack flags for a clean next epoch (epoch check handles the rest).
        for (const common::Dot& d : tarjan_stack_) {
          nodes_.Find(d)->on_stack = false;
        }
        in_walk_ = false;
        return dep;
      }
      Node& dep_node = *dep_found;
      if (dep_node.visit_epoch != epoch_) {
        push_node(dep, dep_node);
      } else if (dep_node.on_stack) {
        node.lowlink = std::min(node.lowlink, dep_node.index);
      }
      continue;
    }
    // Node finished: propagate lowlink to parent, pop SCC if root of one.
    uint32_t lowlink = node.lowlink;
    uint32_t index = node.index;
    common::Dot done = frame.dot;
    walk_stack_.pop_back();
    if (!walk_stack_.empty()) {
      Node& parent = *nodes_.Find(walk_stack_.back().dot);
      parent.lowlink = std::min(parent.lowlink, lowlink);
    }
    if (lowlink == index) {
      while (true) {
        common::Dot d = tarjan_stack_.back();
        tarjan_stack_.pop_back();
        nodes_.Find(d)->on_stack = false;
        batch_dots_.push_back(d);
        if (d == done) {
          break;
        }
      }
      batch_bounds_.push_back(batch_dots_.size());
    }
  }

  // SCCs completed in reverse topological order (dependencies first): execute in that
  // order. The flattened scratch stays valid because RunBatch only sorts in place.
  size_t begin = 0;
  for (size_t bound : batch_bounds_) {
    RunBatch(batch_dots_.data() + begin, batch_dots_.data() + bound);
    begin = bound;
  }
  in_walk_ = false;
  return std::nullopt;
}

void GraphExecutor::RunBatch(common::Dot* begin, common::Dot* end) {
  if (order_ == BatchOrder::kDot) {
    std::sort(begin, end);
  } else {
    std::sort(begin, end, [this](const common::Dot& a, const common::Dot& b) {
      const Node& na = *nodes_.Find(a);
      const Node& nb = *nodes_.Find(b);
      if (na.seqno != nb.seqno) {
        return na.seqno < nb.seqno;
      }
      return a < b;
    });
  }
  max_batch_ = std::max(max_batch_, static_cast<size_t>(end - begin));
  for (common::Dot* cur = begin; cur != end; ++cur) {
    const common::Dot& d = *cur;
    Node* node = nodes_.Find(d);
    CHECK(node != nullptr);
    if (sink_ != nullptr) {
      // The node is erased right below; the sink takes the command by move.
      sink_->OnReady(d, std::move(node->cmd), node->seqno);
    } else {
      execute_(d, node->cmd);
    }
    executed_.Insert(d);
    executed_count_++;
    nodes_.Erase(d);
    CHECK_GT(pending_count_, 0u);
    pending_count_--;
    if (waiters_.Contains(d)) {
      progressed_.push_back(d);
    }
  }
}

}  // namespace exec
