// Executor thread pool: the execution half of the ordering/execution split.
//
// Compartmentalized SMR designs (Whittaker et al.) observe that once consensus
// has fixed a total order, *applying* the ordered commands is an embarrassingly
// parallel problem for the non-conflicting majority of them. The graph executor
// keeps emitting commands in its deterministic SCC/batch order; ExecPool fans
// the emitted stream out to E executor workers, one per commute lane of an
// exec::LanedStore:
//
//   * a command whose keys all hash to one lane is moved into that lane's
//     bounded SPSC inbox (src/rt/mailbox.h — same recycled-slot rings and
//     eventfd doorbells as the thread-per-shard runtime) and applied by the
//     lane's worker thread. Same key => same lane => applied in emission order;
//     different lanes apply concurrently — exactly the commutation the store
//     admits, so the final state and digest are byte-identical to inline
//     execution at every worker count;
//   * a command spanning lanes (multi-key kScan/kMPut across lanes) is a
//     barrier: the dispatcher waits for every lane to drain (WaitIdle), applies
//     the command inline via the store's cross-lane decomposition, and resumes
//     dispatching. Correct and simple — cross-lane commands are rare under the
//     paper's workloads, and the barrier preserves the emission-order semantics
//     a flat store would have given;
//   * completions {client, seq, value} ride per-lane SPSC outboxes back to the
//     dispatching thread, which forwards them to the replica's reply path from
//     Poll(). Reply *order* across lanes is not the inline order — replies are
//     matched by (client, seq) everywhere — but per-key reply order is.
//
// Deadlock freedom with bounded rings mirrors the shard runtime's discipline:
// the dispatcher never spins on a full lane inbox without draining completions
// (freeing the lane's outbox, hence the lane, hence eventually the inbox), and
// a lane stuck pushing a completion re-checks the stop flag so shutdown always
// breaks the cycle.
//
// The pool is also a GraphExecutor::ReadySink, so an executor can emit straight
// into it (exec_parallel_test drives that seam); the threaded runtime feeds it
// from the engine's Executed callback instead, which is the same stream one
// hop later.
#ifndef SRC_EXEC_EXEC_POOL_H_
#define SRC_EXEC_EXEC_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/types.h"
#include "src/exec/graph_executor.h"
#include "src/exec/laned_store.h"
#include "src/rt/mailbox.h"
#include "src/smr/command.h"

namespace exec {

class ExecPool final : public GraphExecutor::ReadySink {
 public:
  struct Options {
    uint32_t lanes = 1;
    size_t mailbox_capacity = 1024;  // slots per (dispatcher <-> lane) edge
    // Completion sink, invoked on the dispatching thread (from Poll/Execute/
    // WaitIdle) for every applied command with client != 0, plus dropped-lane
    // noop completions. Required.
    std::function<void(uint64_t client, uint64_t seq, std::string&& value)>
        on_completion;
    // Invoked after each apply, on whichever thread applied (lane worker or
    // dispatcher for cross-lane); must be thread-safe (atomic counters). May be
    // null.
    std::function<void(const smr::Command& cmd)> applied;
    // Rung by lane workers when a completion lands, so a parked dispatcher
    // wakes to Poll(). May be null (dispatcher polls anyway).
    std::function<void()> completion_notify;
  };

  ExecPool(LanedStore* store, Options opts);
  ~ExecPool() override;

  void Start();
  // Quiesces live lanes (all dispatched commands applied), joins every worker,
  // then delivers any pending completions. Idempotent.
  void Stop();
  // Crash drill: stops and joins one lane's worker. Its queued commands are
  // lost (like a crashed replica's) — the pool must stay live on other lanes
  // and the dispatcher must never block on the dead lane. Any thread.
  bool StopOne(uint32_t lane);

  // Dispatcher thread: routes one executed engine-level command (kBatch
  // composites unpack through `scratch`, reused across calls).
  void Execute(const smr::Command& cmd, std::vector<smr::Command>& scratch);
  // GraphExecutor::ReadySink — direct executor->pool emission.
  void OnReady(const common::Dot& dot, smr::Command&& cmd,
               uint64_t seqno) override;

  // Dispatcher thread: drains lane completions into on_completion. Returns the
  // number delivered.
  size_t Poll();
  // True if some lane outbox holds completions (park-recheck on the
  // dispatcher's doorbell).
  bool HasCompletions() const;
  // Blocks the dispatcher until every live lane has applied everything
  // dispatched to it, draining completions while it waits.
  void WaitIdle();

  uint32_t lanes() const { return static_cast<uint32_t>(lanes_.size()); }
  bool lane_stopped(uint32_t lane) const {
    return lanes_[lane]->dead.load(std::memory_order_acquire);
  }
  // Barrier count (monitoring: how often cross-lane commands quiesced the pool).
  uint64_t cross_lane_barriers() const { return cross_lane_barriers_; }

 private:
  struct LaneItem {
    smr::Command cmd;
  };
  struct LaneDone {
    uint64_t client = 0;
    uint64_t seq = 0;
    std::string value;
  };
  struct Lane {
    explicit Lane(size_t capacity) : inbox(capacity), done(capacity) {}
    rt::Mailbox<LaneItem> inbox;
    rt::Mailbox<LaneDone> done;
    rt::Doorbell bell;
    std::thread thread;
    std::atomic<bool> stop{false};
    std::atomic<bool> dead{false};
    // applied pairs release (lane, post-apply) with acquire (dispatcher,
    // WaitIdle): quiescence implies the lane's store writes are visible.
    alignas(64) std::atomic<uint64_t> applied{0};
    uint64_t dispatched = 0;  // dispatcher-owned
  };

  void DispatchOne(smr::Command& cmd);
  void LaneMain(uint32_t lane_idx);
  void StopLane(Lane& lane);

  LanedStore* store_;
  Options opts_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<smr::Command> ready_scratch_;  // OnReady's kBatch unpack buffer
  bool started_ = false;
  uint64_t cross_lane_barriers_ = 0;
};

}  // namespace exec

#endif  // SRC_EXEC_EXEC_POOL_H_
