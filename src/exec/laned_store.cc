#include "src/exec/laned_store.h"

#include "src/common/check.h"

namespace exec {

LanedStore::LanedStore(uint32_t lanes) : lanes_(lanes) {
  CHECK_GE(lanes_, 1u);
  stores_.resize(lanes_);
}

bool LanedStore::SingleLane(const smr::Command& cmd, uint32_t* lane) const {
  uint32_t l = LaneOfKey(cmd.key);
  if (lanes_ > 1) {
    for (const std::string& k : cmd.more_keys) {
      if (LaneOfKey(k) != l) {
        return false;
      }
    }
  }
  *lane = l;
  return true;
}

std::string LanedStore::ApplyCrossLane(const smr::Command& cmd) {
  switch (cmd.op) {
    case smr::Op::kScan: {
      // Concatenate in command key order (not lane order) — identical to the
      // flat store's scan.
      std::string out;
      const std::string* v = Lookup(cmd.key);
      if (v != nullptr) {
        out += *v;
      }
      for (const std::string& k : cmd.more_keys) {
        const std::string* mv = Lookup(k);
        if (mv != nullptr) {
          out += *mv;
        }
      }
      return out;
    }
    case smr::Op::kMPut: {
      std::string_view value(cmd.value.data(), cmd.value.size());
      stores_[LaneOfKey(cmd.key)].Put(cmd.key, value);
      for (const std::string& k : cmd.more_keys) {
        stores_[LaneOfKey(k)].Put(k, value);
      }
      return "";
    }
    default:
      // Single-key ops never span lanes; route to the primary key's lane.
      return stores_[LaneOfKey(cmd.key)].Apply(cmd);
  }
}

std::string LanedStore::Apply(const smr::Command& cmd) {
  if (cmd.is_noop()) {
    return "";
  }
  if (cmd.is_batch()) {
    // Composite submission batch, same semantics as KvStore::Apply(kBatch):
    // sub-commands apply in encoded order (sequential here — the inline path).
    std::vector<smr::Command> subs;
    if (smr::UnpackBatch(cmd, subs)) {
      for (const smr::Command& sub : subs) {
        Apply(sub);
      }
    }
    return "";
  }
  uint32_t lane = 0;
  if (SingleLane(cmd, &lane)) {
    return ApplyOnLane(lane, cmd);
  }
  return ApplyCrossLane(cmd);
}

uint64_t LanedStore::StateDigest() const {
  uint64_t digest = 0;
  for (const kvs::KvStore& s : stores_) {
    digest ^= s.StateDigest();
  }
  return digest;
}

size_t LanedStore::size() const {
  size_t total = 0;
  for (const kvs::KvStore& s : stores_) {
    total += s.size();
  }
  return total;
}

}  // namespace exec
