#include "src/exec/laned_store.h"

#include "src/common/check.h"
#include "src/kvs/kvs.h"

namespace exec {

LanedStore::LanedStore(
    uint32_t lanes,
    const std::function<std::unique_ptr<smr::StateMachine>()>& factory)
    : lanes_(lanes) {
  CHECK_GE(lanes_, 1u);
  stores_.reserve(lanes_);
  for (uint32_t l = 0; l < lanes_; l++) {
    stores_.push_back(factory != nullptr ? factory()
                                         : std::make_unique<kvs::KvStore>());
    CHECK(stores_.back() != nullptr);
  }
}

bool LanedStore::SingleLane(const smr::Command& cmd, uint32_t* lane) const {
  // Lane 0 is the routing prototype: every lane is the same concrete backend,
  // and LaneHint only consults command structure plus the router.
  uint32_t hint = stores_[0]->LaneHint(cmd, *this);
  if (hint == smr::kCrossLane) {
    return false;
  }
  *lane = hint;
  return true;
}

std::string LanedStore::ApplyCrossLane(const smr::Command& cmd) {
  return stores_[0]->ApplyAcross(cmd, *this);
}

std::string LanedStore::Apply(const smr::Command& cmd) {
  if (cmd.is_noop()) {
    return "";
  }
  if (cmd.is_batch()) {
    // Composite submission batch, same semantics as the flat backends'
    // Apply(kBatch): sub-commands apply in encoded order (sequential here —
    // the inline path).
    std::vector<smr::Command> subs;
    if (smr::UnpackBatch(cmd, subs)) {
      for (const smr::Command& sub : subs) {
        Apply(sub);
      }
    }
    return "";
  }
  uint32_t lane = 0;
  if (SingleLane(cmd, &lane)) {
    return ApplyOnLane(lane, cmd);
  }
  return ApplyCrossLane(cmd);
}

uint64_t LanedStore::StateDigest() const {
  uint64_t digest = 0;
  for (const auto& s : stores_) {
    digest ^= s->StateDigest();
  }
  return digest;
}

void LanedStore::SnapshotTo(codec::Writer& w) const {
  w.Varint(lanes_);
  for (const auto& s : stores_) {
    s->SnapshotTo(w);
  }
}

bool LanedStore::RestoreFrom(codec::Reader& r) {
  uint64_t lanes = r.Varint();
  if (!r.ok() || lanes != lanes_) {
    // A snapshot taken at a different lane count would scatter keys onto the
    // wrong lanes; recovery must be configured with the lane count that wrote
    // the snapshot (DeploymentOptions::executor_threads).
    return false;
  }
  for (const auto& s : stores_) {
    if (!s->RestoreFrom(r)) {
      return false;
    }
  }
  return true;
}

}  // namespace exec
