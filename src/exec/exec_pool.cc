#include "src/exec/exec_pool.h"

#include <utility>

#include "src/common/check.h"

namespace exec {

ExecPool::ExecPool(LanedStore* store, Options opts)
    : store_(store), opts_(std::move(opts)) {
  CHECK(store_ != nullptr);
  CHECK_GE(opts_.lanes, 1u);
  CHECK_EQ(static_cast<uint64_t>(opts_.lanes),
           static_cast<uint64_t>(store_->lanes()));
  CHECK(opts_.on_completion != nullptr);
  CHECK_GE(opts_.mailbox_capacity, 2u);
  for (uint32_t l = 0; l < opts_.lanes; l++) {
    lanes_.push_back(std::make_unique<Lane>(opts_.mailbox_capacity));
  }
}

ExecPool::~ExecPool() { Stop(); }

void ExecPool::Start() {
  CHECK(!started_);
  started_ = true;
  for (uint32_t l = 0; l < lanes(); l++) {
    lanes_[l]->thread = std::thread([this, l]() { LaneMain(l); });
  }
}

void ExecPool::StopLane(Lane& lane) {
  lane.stop.store(true, std::memory_order_release);
  lane.bell.Ring();
  if (lane.thread.joinable()) {
    lane.thread.join();
  }
}

void ExecPool::Stop() {
  if (!started_) {
    return;
  }
  // Drain: everything dispatched applies before the workers die, so the store
  // is in its final (inline-equivalent) state when the pool's owner reads
  // digests after Stop. Dead lanes are skipped (their queued work is lost by
  // design — the crash drill).
  WaitIdle();
  for (auto& lane : lanes_) {
    StopLane(*lane);
  }
  started_ = false;
  Poll();  // completions that landed between the final WaitIdle poll and join
}

bool ExecPool::StopOne(uint32_t lane) {
  CHECK_LT(lane, lanes());
  Lane& l = *lanes_[lane];
  if (!started_ || l.dead.load(std::memory_order_acquire)) {
    return false;
  }
  StopLane(l);
  return true;
}

void ExecPool::Execute(const smr::Command& cmd,
                       std::vector<smr::Command>& scratch) {
  if (cmd.is_batch()) {
    CHECK(smr::UnpackBatch(cmd, scratch));
    for (smr::Command& sub : scratch) {
      DispatchOne(sub);  // moved into the lane ring; scratch slots are spent
    }
    return;
  }
  // The engine-level command is const (the engine may still log/inspect it);
  // take a copy to move from. Payload values are refcounted, so "copy" bumps a
  // count instead of duplicating bytes.
  smr::Command copy = cmd;
  DispatchOne(copy);
}

void ExecPool::OnReady(const common::Dot& dot, smr::Command&& cmd,
                       uint64_t seqno) {
  (void)dot;
  (void)seqno;
  if (cmd.is_batch()) {
    CHECK(smr::UnpackBatch(cmd, ready_scratch_));
    for (smr::Command& sub : ready_scratch_) {
      DispatchOne(sub);
    }
    return;
  }
  DispatchOne(cmd);
}

void ExecPool::DispatchOne(smr::Command& cmd) {
  if (cmd.is_noop()) {
    // NoOps touch no state; complete inline (client is 0 for protocol-internal
    // noOps, so this is almost always a pure skip).
    if (cmd.client != 0) {
      opts_.on_completion(cmd.client, cmd.seq, std::string());
    }
    return;
  }
  uint32_t lane_idx = 0;
  if (!store_->SingleLane(cmd, &lane_idx)) {
    // Cross-lane command: quiesce the pool, apply inline via the store's
    // per-key decomposition, resume. Emission-order semantics are preserved:
    // everything emitted before this command is applied before it, everything
    // after is dispatched after.
    cross_lane_barriers_++;
    WaitIdle();
    std::string value = store_->ApplyCrossLane(cmd);
    if (opts_.applied) {
      opts_.applied(cmd);
    }
    if (cmd.client != 0) {
      opts_.on_completion(cmd.client, cmd.seq, std::move(value));
    }
    return;
  }
  Lane& lane = *lanes_[lane_idx];
  if (lane.dead.load(std::memory_order_acquire)) {
    return;  // crashed lane: its key range is lost, like a crashed replica's
  }
  LaneItem item;
  item.cmd = std::move(cmd);
  while (!lane.inbox.TryPush(item)) {
    if (lane.dead.load(std::memory_order_acquire)) {
      return;  // lane died while we waited; drop like the pre-push check does
    }
    // Full inbox: drain completions (frees the lane's outbox, so the lane can
    // finish its in-flight apply and pop) rather than deadlocking two full
    // rings against each other.
    Poll();
    std::this_thread::yield();
  }
  lane.dispatched++;
  lane.bell.Ring();
}

size_t ExecPool::Poll() {
  size_t delivered = 0;
  LaneDone done;
  for (auto& lane : lanes_) {
    while (lane->done.TryPop(done)) {
      opts_.on_completion(done.client, done.seq, std::move(done.value));
      delivered++;
    }
  }
  return delivered;
}

bool ExecPool::HasCompletions() const {
  for (const auto& lane : lanes_) {
    if (!lane->done.Empty()) {
      return true;
    }
  }
  return false;
}

void ExecPool::WaitIdle() {
  for (auto& lane : lanes_) {
    while (!lane->dead.load(std::memory_order_acquire) &&
           lane->applied.load(std::memory_order_acquire) < lane->dispatched) {
      Poll();
      std::this_thread::yield();
    }
  }
}

void ExecPool::LaneMain(uint32_t lane_idx) {
  Lane& lane = *lanes_[lane_idx];
  LaneItem item;
  while (!lane.stop.load(std::memory_order_acquire)) {
    bool worked = false;
    while (lane.inbox.TryPop(item)) {
      std::string value = store_->ApplyOnLane(lane_idx, item.cmd);
      if (opts_.applied) {
        opts_.applied(item.cmd);
      }
      // Release-publish the apply before the dispatcher can observe quiescence.
      lane.applied.fetch_add(1, std::memory_order_release);
      if (item.cmd.client != 0) {
        LaneDone done;
        done.client = item.cmd.client;
        done.seq = item.cmd.seq;
        done.value = std::move(value);
        while (!lane.done.TryPush(done)) {
          if (lane.stop.load(std::memory_order_acquire)) {
            break;  // shutdown: the reply is dropped with the rest of the node
          }
          if (opts_.completion_notify) {
            opts_.completion_notify();
          }
          std::this_thread::yield();
        }
        if (opts_.completion_notify) {
          opts_.completion_notify();
        }
      }
      worked = true;
    }
    if (worked) {
      continue;
    }
    // Arm-then-recheck park (see rt::Doorbell): a dispatcher push that missed
    // the armed flag is caught by the recheck.
    lane.bell.Arm();
    if (!lane.inbox.Empty() || lane.stop.load(std::memory_order_acquire)) {
      continue;
    }
    lane.bell.Wait(-1);
  }
  lane.dead.store(true, std::memory_order_release);
}

}  // namespace exec
