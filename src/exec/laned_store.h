// Lane-partitioned service replica: the state side of the parallel execution
// pipeline (ordering/execution split).
//
// The graph executor decides a deterministic total order per shard; the commands
// it emits mostly commute at the *store* level too — a kPut("a") and a kPut("b")
// can apply concurrently without changing any observable state. LanedStore makes
// that concurrency safe to exploit: the shard's key space is partitioned into E
// commute lanes by a stable hash of the key bytes, each lane owning an
// independent backend built by the deployment's state_machine_factory
// (kvs::KvStore by default). Commands whose keys all land in one lane apply on
// that lane alone; executor workers (src/exec/exec_pool.h) pin one thread per
// lane, so two single-lane commands on different lanes run in parallel while
// same-key (hence same-lane) commands stay serialized in emission order.
//
// Which commands are single-lane and how cross-lane commands decompose is the
// *backend's* call, made through the smr::StateMachine LaneHint/ApplyAcross
// seam — LanedStore is pure routing plus the smr::LanePartition view the
// backend decomposes against. Backends must keep StateDigest XOR-decomposable
// (digest of the whole == XOR of lane digests) for the parity gates to hold.
//
// Exactness, not approximation: the XOR of the lane digests equals the digest
// of the flat store bit for bit, at every lane count. The single-threaded
// Apply() path routes through the same lanes, which is the deterministic
// fallback the simulator and non-threaded runtime use: same routing, same
// per-key order, same digests, no threads.
//
// Lane routing deliberately re-mixes the shard hash: shards are assigned by
// HashKey(key) % P, so using the raw hash modulo E again would correlate lanes
// with shards (at E == P every key of shard s would land in lane s % E and one
// lane would absorb the whole shard). A splitmix64 finalizer decorrelates the
// two partitions.
#ifndef SRC_EXEC_LANED_STORE_H_
#define SRC_EXEC_LANED_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/smr/command.h"
#include "src/smr/partitioner.h"
#include "src/smr/state_machine.h"

namespace exec {

class LanedStore final : public smr::StateMachine, public smr::LanePartition {
 public:
  // Builds `lanes` backends from `factory` (nullptr: kvs::KvStore, the
  // historical hard-wiring, now just the default).
  explicit LanedStore(
      uint32_t lanes,
      const std::function<std::unique_ptr<smr::StateMachine>()>& factory =
          nullptr);

  // smr::LanePartition:
  uint32_t lanes() const override { return lanes_; }
  // Stable lane of a key: splitmix64-finalized Partitioner::HashKey, mod E.
  uint32_t LaneOfKey(std::string_view key) const override {
    uint64_t h = smr::Partitioner::HashKey(key);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<uint32_t>(h % lanes_);
  }
  smr::StateMachine& lane(uint32_t lane) override { return *stores_[lane]; }

  // True (with *lane set) iff the backend pins every key of cmd to one lane
  // (smr::StateMachine::LaneHint). Callers handle noOps and kBatch composites
  // before routing (neither names a key).
  bool SingleLane(const smr::Command& cmd, uint32_t* lane) const;

  // Applies a command all of whose keys live in `lane`. Thread-safe across
  // *different* lanes (each lane's store is touched by one executor thread);
  // the caller guarantees per-lane serialization.
  std::string ApplyOnLane(uint32_t lane, const smr::Command& cmd) {
    return stores_[lane]->Apply(cmd);
  }

  // Applies a command whose keys span lanes, decomposed by the backend
  // (smr::StateMachine::ApplyAcross). Caller must have quiesced every lane (no
  // executor worker mid-apply): this runs on the dispatching thread as a
  // barrier operation. Result matches the flat backend's Apply exactly.
  std::string ApplyCrossLane(const smr::Command& cmd);

  // smr::StateMachine — the inline single-threaded path (simulator,
  // non-threaded runtime): same lane routing, applied sequentially.
  std::string Apply(const smr::Command& cmd) override;
  // XOR of the lane digests == flat-store digest (see header comment).
  uint64_t StateDigest() const override;
  // Lane count followed by each lane's blob in lane order. Restore requires
  // the same lane count (lane routing determines which blob holds which key).
  void SnapshotTo(codec::Writer& w) const override;
  bool RestoreFrom(codec::Reader& r) override;

  const std::string* LookupKey(const std::string& key) const override {
    return stores_[LaneOfKey(key)]->LookupKey(key);
  }
  const std::string* Lookup(const std::string& key) const {
    return LookupKey(key);
  }
  smr::StateMachine& lane_store(uint32_t lane) { return *stores_[lane]; }

 private:
  uint32_t lanes_;
  std::vector<std::unique_ptr<smr::StateMachine>> stores_;
};

}  // namespace exec

#endif  // SRC_EXEC_LANED_STORE_H_
