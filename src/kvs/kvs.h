// Replicated key-value store: the state machine used throughout the paper's evaluation
// (§5.7) and the examples.
#ifndef SRC_KVS_KVS_H_
#define SRC_KVS_KVS_H_

#include <string>
#include <unordered_map>

#include "src/smr/command.h"
#include "src/smr/state_machine.h"

namespace kvs {

// In-memory KVS. Supported commands:
//   kGet   -> returns the value stored under key ("" if absent)
//   kPut   -> stores value under key, returns ""
//   kRmw   -> appends value to the current value, returns the previous value
//   kScan  -> returns the concatenation of values under key + more_keys
//   kMPut  -> stores value under key and every key in more_keys
//   kNoOp  -> no effect
class KvStore final : public smr::StateMachine {
 public:
  std::string Apply(const smr::Command& cmd) override;
  uint64_t StateDigest() const override;

  size_t size() const { return map_.size(); }
  const std::string* Lookup(const std::string& key) const;

 private:
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace kvs

#endif  // SRC_KVS_KVS_H_
