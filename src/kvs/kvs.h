// Replicated key-value store: the state machine used throughout the paper's evaluation
// (§5.7) and the examples.
#ifndef SRC_KVS_KVS_H_
#define SRC_KVS_KVS_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "src/smr/command.h"
#include "src/smr/state_machine.h"

namespace kvs {

// In-memory KVS. Supported commands:
//   kGet   -> returns the value stored under key ("" if absent)
//   kPut   -> stores value under key, returns ""
//   kRmw   -> appends value to the current value, returns the previous value
//   kScan  -> returns the concatenation of values under key + more_keys
//   kMPut  -> stores value under key and every key in more_keys
//   kRange -> "" (ordered iteration is not defined on a hash map; see OrderedKvs)
//   kNoOp  -> no effect
class KvStore final : public smr::StateMachine {
 public:
  std::string Apply(const smr::Command& cmd) override;
  uint64_t StateDigest() const override;
  void SnapshotTo(codec::Writer& w) const override;
  bool RestoreFrom(codec::Reader& r) override;

  size_t size() const { return map_.size(); }
  const std::string* Lookup(const std::string& key) const;

  // Single-key assignment, bypassing Command construction: the lane-partitioned
  // store (src/exec/laned_store.h) decomposes multi-key writes per key and needs
  // an allocation-free way to land one key's mutation on its lane.
  void Put(const std::string& key, std::string_view value) {
    map_[key].assign(value.data(), value.size());
  }

  // Lane primitives for the default cross-lane decomposition
  // (smr::StateMachine::ApplyAcross).
  const std::string* LookupKey(const std::string& key) const override {
    return Lookup(key);
  }
  void PutKey(const std::string& key, std::string_view value) override {
    Put(key, value);
  }

 private:
  std::unordered_map<std::string, std::string> map_;
};

}  // namespace kvs

#endif  // SRC_KVS_KVS_H_
