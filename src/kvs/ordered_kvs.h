// Ordered-map backend: the second state machine behind the redesigned
// smr::StateMachine seam, proving the deployment composes with backends other
// than the hash-map KvStore (including under the lane-partitioned executor —
// register it via DeploymentOptions::state_machine_factory).
//
// Same command set as KvStore plus kRange: an ordered scan over [key,
// more_keys[0]) returning the concatenation of values in key order. Under lane
// partitioning a range's footprint is an interval that crosses lanes by
// construction (lanes hash keys), so OrderedKvs overrides ApplyAcross to merge
// the in-range entries of every lane in global key order — bit-identical to
// the flat ordered store at any lane count.
#ifndef SRC_KVS_ORDERED_KVS_H_
#define SRC_KVS_ORDERED_KVS_H_

#include <map>
#include <string>
#include <string_view>

#include "src/smr/command.h"
#include "src/smr/state_machine.h"

namespace kvs {

class OrderedKvs final : public smr::StateMachine {
 public:
  std::string Apply(const smr::Command& cmd) override;
  // Same per-entry hash fold as KvStore: order-independent and
  // partition-decomposable, so laned digests XOR to the flat digest and the
  // two backends are digest-comparable over range-free histories.
  uint64_t StateDigest() const override;
  void SnapshotTo(codec::Writer& w) const override;
  bool RestoreFrom(codec::Reader& r) override;

  // Range merge across lanes (see header comment); other ops use the default
  // decomposition through LookupKey/PutKey.
  std::string ApplyAcross(const smr::Command& cmd,
                          smr::LanePartition& lanes) override;

  const std::string* LookupKey(const std::string& key) const override;
  void PutKey(const std::string& key, std::string_view value) override {
    map_[key].assign(value.data(), value.size());
  }

  size_t size() const { return map_.size(); }
  const std::map<std::string, std::string>& entries() const { return map_; }

 private:
  // Appends this store's entries in [begin, end) to out, in key order.
  void AppendRange(const std::string& begin, const std::string& end,
                   std::string& out) const;

  std::map<std::string, std::string> map_;
};

}  // namespace kvs

#endif  // SRC_KVS_ORDERED_KVS_H_
