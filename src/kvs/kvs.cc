#include "src/kvs/kvs.h"

namespace kvs {

std::string KvStore::Apply(const smr::Command& cmd) {
  switch (cmd.op) {
    case smr::Op::kNoOp:
      return "";
    case smr::Op::kGet: {
      auto it = map_.find(cmd.key);
      return it == map_.end() ? "" : it->second;
    }
    case smr::Op::kPut:
      map_[cmd.key].assign(cmd.value.data(), cmd.value.size());
      return "";
    case smr::Op::kRmw: {
      std::string& v = map_[cmd.key];
      std::string prev = v;
      v.append(cmd.value.data(), cmd.value.size());
      return prev;
    }
    case smr::Op::kScan: {
      std::string out;
      auto it = map_.find(cmd.key);
      if (it != map_.end()) {
        out += it->second;
      }
      for (const auto& k : cmd.more_keys) {
        auto jt = map_.find(k);
        if (jt != map_.end()) {
          out += jt->second;
        }
      }
      return out;
    }
    case smr::Op::kMPut: {
      map_[cmd.key].assign(cmd.value.data(), cmd.value.size());
      for (const auto& k : cmd.more_keys) {
        map_[k].assign(cmd.value.data(), cmd.value.size());
      }
      return "";
    }
    case smr::Op::kBatch: {
      // Composite submission batch: apply the sub-commands in encoded order.
      // (The cluster harness unpacks batches itself for per-client completion; this
      // path serves direct StateMachine users like the real runtime.)
      std::vector<smr::Command> subs;
      if (smr::UnpackBatch(cmd, subs)) {
        for (const smr::Command& sub : subs) {
          Apply(sub);
        }
      }
      return "";
    }
    case smr::Op::kRange:
      // Ordered iteration is undefined on a hash map; the ordered backend
      // (kvs::OrderedKvs) implements ranges.
      return "";
  }
  return "";
}

uint64_t KvStore::StateDigest() const {
  // Order-independent digest: XOR of per-entry hashes, so iteration order of the
  // unordered_map does not matter.
  uint64_t digest = 0;
  std::hash<std::string> h;
  for (const auto& [k, v] : map_) {
    uint64_t e = h(k) * 0x9e3779b97f4a7c15ull ^ h(v);
    e ^= e >> 29;
    e *= 0xbf58476d1ce4e5b9ull;
    digest ^= e;
  }
  return digest;
}

const std::string* KvStore::Lookup(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void KvStore::SnapshotTo(codec::Writer& w) const {
  // Entry count then (key, value) pairs; iteration order does not matter for
  // the digest (XOR) or the restored map, so no sort is needed. The format is
  // self-delimiting: RestoreFrom consumes exactly count pairs.
  w.Varint(map_.size());
  for (const auto& [k, v] : map_) {
    w.Bytes(k);
    w.Bytes(v);
  }
}

bool KvStore::RestoreFrom(codec::Reader& r) {
  map_.clear();
  uint64_t n = r.Varint();
  if (!r.ok() || n > r.remaining()) {
    return false;
  }
  for (uint64_t i = 0; i < n; i++) {
    std::string k = r.Bytes();
    std::string v = r.Bytes();
    if (!r.ok()) {
      map_.clear();
      return false;
    }
    map_[std::move(k)] = std::move(v);
  }
  return true;
}

}  // namespace kvs
