#include "src/kvs/ordered_kvs.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace kvs {

std::string OrderedKvs::Apply(const smr::Command& cmd) {
  switch (cmd.op) {
    case smr::Op::kNoOp:
      return "";
    case smr::Op::kGet: {
      auto it = map_.find(cmd.key);
      return it == map_.end() ? "" : it->second;
    }
    case smr::Op::kPut:
      map_[cmd.key].assign(cmd.value.data(), cmd.value.size());
      return "";
    case smr::Op::kRmw: {
      std::string& v = map_[cmd.key];
      std::string prev = v;
      v.append(cmd.value.data(), cmd.value.size());
      return prev;
    }
    case smr::Op::kScan: {
      std::string out;
      auto it = map_.find(cmd.key);
      if (it != map_.end()) {
        out += it->second;
      }
      for (const auto& k : cmd.more_keys) {
        auto jt = map_.find(k);
        if (jt != map_.end()) {
          out += jt->second;
        }
      }
      return out;
    }
    case smr::Op::kMPut: {
      map_[cmd.key].assign(cmd.value.data(), cmd.value.size());
      for (const auto& k : cmd.more_keys) {
        map_[k].assign(cmd.value.data(), cmd.value.size());
      }
      return "";
    }
    case smr::Op::kBatch: {
      std::vector<smr::Command> subs;
      if (smr::UnpackBatch(cmd, subs)) {
        for (const smr::Command& sub : subs) {
          Apply(sub);
        }
      }
      return "";
    }
    case smr::Op::kRange: {
      if (cmd.more_keys.empty()) {
        return "";
      }
      std::string out;
      AppendRange(cmd.key, cmd.more_keys[0], out);
      return out;
    }
  }
  return "";
}

void OrderedKvs::AppendRange(const std::string& begin, const std::string& end,
                             std::string& out) const {
  for (auto it = map_.lower_bound(begin); it != map_.end() && it->first < end;
       ++it) {
    out += it->second;
  }
}

std::string OrderedKvs::ApplyAcross(const smr::Command& cmd,
                                    smr::LanePartition& lanes) {
  if (cmd.op != smr::Op::kRange) {
    return StateMachine::ApplyAcross(cmd, lanes);
  }
  if (cmd.more_keys.empty()) {
    return "";
  }
  // Every lane holds a disjoint slice of the key space (keys are hashed to
  // lanes), so the global range is the key-ordered merge of per-lane ranges.
  // Lanes are homogeneous by construction (one factory builds them all), so
  // the downcast is safe.
  std::vector<std::pair<const std::string*, const std::string*>> hits;
  const std::string& end = cmd.more_keys[0];
  for (uint32_t l = 0; l < lanes.lanes(); l++) {
    const auto& lane = static_cast<const OrderedKvs&>(lanes.lane(l));
    for (auto it = lane.map_.lower_bound(cmd.key);
         it != lane.map_.end() && it->first < end; ++it) {
      hits.emplace_back(&it->first, &it->second);
    }
  }
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  std::string out;
  for (const auto& [k, v] : hits) {
    (void)k;
    out += *v;
  }
  return out;
}

uint64_t OrderedKvs::StateDigest() const {
  // Identical per-entry fold to KvStore::StateDigest (order-independent XOR).
  uint64_t digest = 0;
  std::hash<std::string> h;
  for (const auto& [k, v] : map_) {
    uint64_t e = h(k) * 0x9e3779b97f4a7c15ull ^ h(v);
    e ^= e >> 29;
    e *= 0xbf58476d1ce4e5b9ull;
    digest ^= e;
  }
  return digest;
}

void OrderedKvs::SnapshotTo(codec::Writer& w) const {
  w.Varint(map_.size());
  for (const auto& [k, v] : map_) {
    w.Bytes(k);
    w.Bytes(v);
  }
}

bool OrderedKvs::RestoreFrom(codec::Reader& r) {
  map_.clear();
  uint64_t n = r.Varint();
  if (!r.ok() || n > r.remaining()) {
    return false;
  }
  for (uint64_t i = 0; i < n; i++) {
    std::string k = r.Bytes();
    std::string v = r.Bytes();
    if (!r.ok()) {
      map_.clear();
      return false;
    }
    map_[std::move(k)] = std::move(v);
  }
  return true;
}

const std::string* OrderedKvs::LookupKey(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

}  // namespace kvs
