// Protocol messages for all four SMR protocols plus the client RPCs of the real
// runtime, wrapped in a single envelope: a std::variant body plus a partition (shard)
// tag that routes the message to the right per-partition engine on sharded replicas
// (smr::ShardedEngine). Unsharded deployments leave the tag at 0.
//
// Every message is fully serializable through src/codec (exercised by the TCP transport
// and round-trip tests); the discrete-event simulator passes Message values directly but
// charges the wire size computed by EncodedSize().
#ifndef SRC_MSG_MESSAGE_H_
#define SRC_MSG_MESSAGE_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <variant>

#include "src/common/dep_set.h"
#include "src/common/quorum.h"
#include "src/common/types.h"
#include "src/smr/command.h"

namespace msg {

using common::Ballot;
using common::DepSet;
using common::Dot;
using common::Quorum;

// ---------------------------------------------------------------------------
// Atlas (Algorithm 1 + Algorithm 2)
// ---------------------------------------------------------------------------

struct MCollect {
  Dot dot;
  smr::Command cmd;
  DepSet past;     // coordinator's conflicts(c)
  Quorum quorum;   // the fast quorum Q
  bool nfr = false;  // command processed via the NFR read optimization (§4)
};

struct MCollectAck {
  Dot dot;
  DepSet deps;
};

struct MConsensus {
  Dot dot;
  smr::Command cmd;
  DepSet deps;
  Ballot ballot = 0;
};

struct MConsensusAck {
  Dot dot;
  Ballot ballot = 0;
};

struct MCommit {
  Dot dot;
  smr::Command cmd;
  DepSet deps;
};

struct MRec {
  Dot dot;
  smr::Command cmd;  // noOp when the recoverer never saw the payload
  Ballot ballot = 0;
};

struct MRecAck {
  Dot dot;
  smr::Command cmd;
  DepSet deps;
  Quorum quorum;      // fast quorum if this process saw MCollect, empty otherwise
  Ballot accepted_ballot = 0;  // abal: last ballot at which a proposal was accepted
  Ballot ballot = 0;
};

// ---------------------------------------------------------------------------
// EPaxos (commit protocol; same message flow, different fast-path rule)
// ---------------------------------------------------------------------------

struct EpPreAccept {
  Dot dot;
  smr::Command cmd;
  DepSet deps;
  uint64_t seqno = 0;
  Quorum quorum;     // the fast quorum chosen by the command leader
  bool nfr = false;  // command processed via the NFR read optimization (§4)
};

struct EpPreAcceptAck {
  Dot dot;
  DepSet deps;
  uint64_t seqno = 0;
};

struct EpAccept {
  Dot dot;
  smr::Command cmd;
  DepSet deps;
  uint64_t seqno = 0;
  Ballot ballot = 0;
};

struct EpAcceptAck {
  Dot dot;
  Ballot ballot = 0;
};

struct EpCommit {
  Dot dot;
  smr::Command cmd;
  DepSet deps;
  uint64_t seqno = 0;
};

struct EpPrepare {
  Dot dot;
  Ballot ballot = 0;
  // The payload, when the recoverer knows it. Carrying it lets every replier report
  // its *current* conflicts against the command (EpPrepareAck::fresh_deps), which is
  // what makes a recovery-chosen value intersect the quorum of every conflicting
  // commit — the recoverer's local index alone cannot guarantee that.
  smr::Command cmd;
  bool has_cmd = false;
};

struct EpPrepareAck {
  Dot dot;
  smr::Command cmd;
  DepSet deps;
  uint64_t seqno = 0;
  uint8_t phase = 0;  // 0=never seen, 1=preaccepted, 2=accepted, 3=committed
  Ballot accepted_ballot = 0;
  Ballot ballot = 0;
  bool was_initial_coordinator_reply = false;  // preaccepted at the command leader
  DepSet fresh_deps;         // replier's current conflicts of the prepare's payload
  uint64_t fresh_seqno = 0;  // 1 + the max conflict seqno behind fresh_deps
};

// ---------------------------------------------------------------------------
// Multi-Paxos / Flexible Paxos (leader-based log)
// ---------------------------------------------------------------------------

struct PxForward {  // non-leader replica forwards a client command to the leader
  smr::Command cmd;
};

struct PxAccept {  // Paxos phase 2a for a log slot
  uint64_t slot = 0;
  Ballot ballot = 0;
  smr::Command cmd;
};

struct PxAccepted {  // phase 2b
  uint64_t slot = 0;
  Ballot ballot = 0;
};

struct PxCommit {  // learn notification, broadcast to all for execution
  uint64_t slot = 0;
  smr::Command cmd;
};

struct PxPrepare {  // phase 1a (leader election / fail-over)
  Ballot ballot = 0;
  uint64_t from_slot = 0;
};

struct PxPromiseEntry {
  uint64_t slot = 0;
  Ballot ballot = 0;
  smr::Command cmd;
};

struct PxPromise {  // phase 1b
  Ballot ballot = 0;
  std::vector<PxPromiseEntry> accepted;
};

struct PxHeartbeat {
  Ballot ballot = 0;
  uint64_t committed_upto = 0;
};

// ---------------------------------------------------------------------------
// Mencius (round-robin slot ownership with skips)
// ---------------------------------------------------------------------------

struct MnPropose {
  uint64_t slot = 0;
  smr::Command cmd;
  uint64_t own_next = 0;  // proposer's next owned slot, for implicit-skip tracking
};

struct MnAck {
  uint64_t slot = 0;
  uint64_t own_next = 0;  // acker's next owned slot after skipping past `slot`
};

struct MnCommit {
  uint64_t slot = 0;
  smr::Command cmd;
};

struct MnSkipRange {  // owner skipped its own slots in [from, to)
  common::ProcessId owner = 0;
  uint64_t from = 0;
  uint64_t to = 0;
};

// Mencius revocation (classic Paxos per slot, used when the slot's owner is
// suspected). The owner's MnPropose doubles as an accept at ballot 0; a revoker runs
// Prepare/Promise/Accept/Accepted with a higher ballot to decide either the owner's
// command (if any acceptor saw it) or a skip.
struct MnRevoke {  // phase 1a for one revoked slot
  uint64_t slot = 0;
  Ballot ballot = 0;
};

struct MnRevokePromise {  // phase 1b
  uint64_t slot = 0;
  Ballot ballot = 0;
  Ballot vbal = 0;    // highest ballot at which this process accepted a value
  uint8_t vkind = 0;  // 0 = nothing accepted, 1 = cmd below, 2 = skip
  smr::Command cmd;
};

struct MnRevokeAccept {  // phase 2a
  uint64_t slot = 0;
  Ballot ballot = 0;
  uint8_t choice = 0;  // 1 = cmd below, 2 = skip
  smr::Command cmd;
};

struct MnRevokeAccepted {  // phase 2b
  uint64_t slot = 0;
  Ballot ballot = 0;
};

struct MnRevokeSkip {  // learn notification: the slot was decided as a skip
  uint64_t slot = 0;
};

// ---------------------------------------------------------------------------
// Client RPCs (real runtime)
// ---------------------------------------------------------------------------

struct ClientRequest {
  smr::Command cmd;
};

struct ClientReply {
  uint64_t client = 0;
  uint64_t seq = 0;
  std::string value;
  bool dropped = false;  // command was replaced by noOp during recovery
};

// ---------------------------------------------------------------------------

// Message envelope: protocol body plus the partition tag. Engines construct messages
// from any body type implicitly (`msg::MCommit c; SendTo(p, c);`); the shard tag is
// stamped by the sharded replica's per-partition context, never by protocol code.
struct Message {
  using Body = std::variant<
      MCollect, MCollectAck, MConsensus, MConsensusAck, MCommit, MRec, MRecAck,
      EpPreAccept, EpPreAcceptAck, EpAccept, EpAcceptAck, EpCommit, EpPrepare,
      EpPrepareAck, PxForward, PxAccept, PxAccepted, PxCommit, PxPrepare, PxPromise,
      PxHeartbeat, MnPropose, MnAck, MnCommit, MnSkipRange, ClientRequest, ClientReply,
      MnRevoke, MnRevokePromise, MnRevokeAccept, MnRevokeAccepted, MnRevokeSkip>;

  Body body;
  uint32_t shard = 0;  // destination partition on sharded replicas; 0 otherwise

  Message() = default;
  template <class T, class = std::enable_if_t<
                         !std::is_same_v<std::decay_t<T>, Message> &&
                         std::is_constructible_v<Body, T&&>>>
  Message(T&& alt) : body(std::forward<T>(alt)) {}  // NOLINT: implicit by design

  size_t index() const { return body.index(); }
};

// std::get / std::get_if analogs for the envelope (std's overloads cannot deduce
// through the wrapping struct).
template <class T>
T* get_if(Message* m) {
  return std::get_if<T>(&m->body);
}
template <class T>
const T* get_if(const Message* m) {
  return std::get_if<T>(&m->body);
}
template <class T>
T& get(Message& m) {
  return std::get<T>(m.body);
}
template <class T>
const T& get(const Message& m) {
  return std::get<T>(m.body);
}

// Human-readable message type name, for traces and debugging.
const char* TypeName(const Message& m);

// Serialization. Encode writes a type tag followed by the payload; Decode returns
// nullopt on malformed input.
void Encode(codec::Writer& w, const Message& m);
bool Decode(codec::Reader& r, Message& out);

// Size of the encoded representation, used by the simulator's bandwidth/latency model.
size_t EncodedSize(const Message& m);

}  // namespace msg

#endif  // SRC_MSG_MESSAGE_H_
