#include "src/msg/message.h"

#include "src/common/check.h"

namespace msg {

namespace {

// Wire type tags. Never reorder: the tag is the wire contract.
enum class Tag : uint8_t {
  kMCollect = 0,
  kMCollectAck = 1,
  kMConsensus = 2,
  kMConsensusAck = 3,
  kMCommit = 4,
  kMRec = 5,
  kMRecAck = 6,
  kEpPreAccept = 7,
  kEpPreAcceptAck = 8,
  kEpAccept = 9,
  kEpAcceptAck = 10,
  kEpCommit = 11,
  kEpPrepare = 12,
  kEpPrepareAck = 13,
  kPxForward = 14,
  kPxAccept = 15,
  kPxAccepted = 16,
  kPxCommit = 17,
  kPxPrepare = 18,
  kPxPromise = 19,
  kPxHeartbeat = 20,
  kMnPropose = 21,
  kMnAck = 22,
  kMnCommit = 23,
  kMnSkipRange = 24,
  kClientRequest = 25,
  kClientReply = 26,
  kMnRevoke = 27,
  kMnRevokePromise = 28,
  kMnRevokeAccept = 29,
  kMnRevokeAccepted = 30,
  kMnRevokeSkip = 31,
};

template <class W>
void Put(W& w, const MCollect& m) {
  w.Dot(m.dot);
  m.cmd.EncodeTo(w);
  w.Deps(m.past);
  w.U32(m.quorum.mask());
  w.Bool(m.nfr);
}
MCollect GetMCollect(codec::Reader& r) {
  MCollect m;
  m.dot = r.Dot();
  m.cmd = smr::Command::Decode(r);
  m.past = r.Deps();
  m.quorum = Quorum(r.U32());
  m.nfr = r.Bool();
  return m;
}

template <class W>
void Put(W& w, const MCollectAck& m) {
  w.Dot(m.dot);
  w.Deps(m.deps);
}
MCollectAck GetMCollectAck(codec::Reader& r) {
  MCollectAck m;
  m.dot = r.Dot();
  m.deps = r.Deps();
  return m;
}

template <class W>
void Put(W& w, const MConsensus& m) {
  w.Dot(m.dot);
  m.cmd.EncodeTo(w);
  w.Deps(m.deps);
  w.Varint(m.ballot);
}
MConsensus GetMConsensus(codec::Reader& r) {
  MConsensus m;
  m.dot = r.Dot();
  m.cmd = smr::Command::Decode(r);
  m.deps = r.Deps();
  m.ballot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const MConsensusAck& m) {
  w.Dot(m.dot);
  w.Varint(m.ballot);
}
MConsensusAck GetMConsensusAck(codec::Reader& r) {
  MConsensusAck m;
  m.dot = r.Dot();
  m.ballot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const MCommit& m) {
  w.Dot(m.dot);
  m.cmd.EncodeTo(w);
  w.Deps(m.deps);
}
MCommit GetMCommit(codec::Reader& r) {
  MCommit m;
  m.dot = r.Dot();
  m.cmd = smr::Command::Decode(r);
  m.deps = r.Deps();
  return m;
}

template <class W>
void Put(W& w, const MRec& m) {
  w.Dot(m.dot);
  m.cmd.EncodeTo(w);
  w.Varint(m.ballot);
}
MRec GetMRec(codec::Reader& r) {
  MRec m;
  m.dot = r.Dot();
  m.cmd = smr::Command::Decode(r);
  m.ballot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const MRecAck& m) {
  w.Dot(m.dot);
  m.cmd.EncodeTo(w);
  w.Deps(m.deps);
  w.U32(m.quorum.mask());
  w.Varint(m.accepted_ballot);
  w.Varint(m.ballot);
}
MRecAck GetMRecAck(codec::Reader& r) {
  MRecAck m;
  m.dot = r.Dot();
  m.cmd = smr::Command::Decode(r);
  m.deps = r.Deps();
  m.quorum = Quorum(r.U32());
  m.accepted_ballot = r.Varint();
  m.ballot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const EpPreAccept& m) {
  w.Dot(m.dot);
  m.cmd.EncodeTo(w);
  w.Deps(m.deps);
  w.Varint(m.seqno);
  w.U32(m.quorum.mask());
  w.Bool(m.nfr);
}
EpPreAccept GetEpPreAccept(codec::Reader& r) {
  EpPreAccept m;
  m.dot = r.Dot();
  m.cmd = smr::Command::Decode(r);
  m.deps = r.Deps();
  m.seqno = r.Varint();
  m.quorum = Quorum(r.U32());
  m.nfr = r.Bool();
  return m;
}

template <class W>
void Put(W& w, const EpPreAcceptAck& m) {
  w.Dot(m.dot);
  w.Deps(m.deps);
  w.Varint(m.seqno);
}
EpPreAcceptAck GetEpPreAcceptAck(codec::Reader& r) {
  EpPreAcceptAck m;
  m.dot = r.Dot();
  m.deps = r.Deps();
  m.seqno = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const EpAccept& m) {
  w.Dot(m.dot);
  m.cmd.EncodeTo(w);
  w.Deps(m.deps);
  w.Varint(m.seqno);
  w.Varint(m.ballot);
}
EpAccept GetEpAccept(codec::Reader& r) {
  EpAccept m;
  m.dot = r.Dot();
  m.cmd = smr::Command::Decode(r);
  m.deps = r.Deps();
  m.seqno = r.Varint();
  m.ballot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const EpAcceptAck& m) {
  w.Dot(m.dot);
  w.Varint(m.ballot);
}
EpAcceptAck GetEpAcceptAck(codec::Reader& r) {
  EpAcceptAck m;
  m.dot = r.Dot();
  m.ballot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const EpCommit& m) {
  w.Dot(m.dot);
  m.cmd.EncodeTo(w);
  w.Deps(m.deps);
  w.Varint(m.seqno);
}
EpCommit GetEpCommit(codec::Reader& r) {
  EpCommit m;
  m.dot = r.Dot();
  m.cmd = smr::Command::Decode(r);
  m.deps = r.Deps();
  m.seqno = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const EpPrepare& m) {
  w.Dot(m.dot);
  w.Varint(m.ballot);
  w.Bool(m.has_cmd);
  if (m.has_cmd) {
    m.cmd.EncodeTo(w);
  }
}
EpPrepare GetEpPrepare(codec::Reader& r) {
  EpPrepare m;
  m.dot = r.Dot();
  m.ballot = r.Varint();
  m.has_cmd = r.Bool();
  if (m.has_cmd) {
    m.cmd = smr::Command::Decode(r);
  }
  return m;
}

template <class W>
void Put(W& w, const EpPrepareAck& m) {
  w.Dot(m.dot);
  m.cmd.EncodeTo(w);
  w.Deps(m.deps);
  w.Varint(m.seqno);
  w.U8(m.phase);
  w.Varint(m.accepted_ballot);
  w.Varint(m.ballot);
  w.Bool(m.was_initial_coordinator_reply);
  w.Deps(m.fresh_deps);
  w.Varint(m.fresh_seqno);
}
EpPrepareAck GetEpPrepareAck(codec::Reader& r) {
  EpPrepareAck m;
  m.dot = r.Dot();
  m.cmd = smr::Command::Decode(r);
  m.deps = r.Deps();
  m.seqno = r.Varint();
  m.phase = r.U8();
  m.accepted_ballot = r.Varint();
  m.ballot = r.Varint();
  m.was_initial_coordinator_reply = r.Bool();
  m.fresh_deps = r.Deps();
  m.fresh_seqno = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const PxForward& m) { m.cmd.EncodeTo(w); }
PxForward GetPxForward(codec::Reader& r) {
  PxForward m;
  m.cmd = smr::Command::Decode(r);
  return m;
}

template <class W>
void Put(W& w, const PxAccept& m) {
  w.Varint(m.slot);
  w.Varint(m.ballot);
  m.cmd.EncodeTo(w);
}
PxAccept GetPxAccept(codec::Reader& r) {
  PxAccept m;
  m.slot = r.Varint();
  m.ballot = r.Varint();
  m.cmd = smr::Command::Decode(r);
  return m;
}

template <class W>
void Put(W& w, const PxAccepted& m) {
  w.Varint(m.slot);
  w.Varint(m.ballot);
}
PxAccepted GetPxAccepted(codec::Reader& r) {
  PxAccepted m;
  m.slot = r.Varint();
  m.ballot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const PxCommit& m) {
  w.Varint(m.slot);
  m.cmd.EncodeTo(w);
}
PxCommit GetPxCommit(codec::Reader& r) {
  PxCommit m;
  m.slot = r.Varint();
  m.cmd = smr::Command::Decode(r);
  return m;
}

template <class W>
void Put(W& w, const PxPrepare& m) {
  w.Varint(m.ballot);
  w.Varint(m.from_slot);
}
PxPrepare GetPxPrepare(codec::Reader& r) {
  PxPrepare m;
  m.ballot = r.Varint();
  m.from_slot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const PxPromise& m) {
  w.Varint(m.ballot);
  w.Varint(m.accepted.size());
  for (const auto& e : m.accepted) {
    w.Varint(e.slot);
    w.Varint(e.ballot);
    e.cmd.EncodeTo(w);
  }
}
PxPromise GetPxPromise(codec::Reader& r) {
  PxPromise m;
  m.ballot = r.Varint();
  uint64_t n = r.Varint();
  if (n > r.remaining()) {
    return m;
  }
  m.accepted.reserve(n);
  for (uint64_t i = 0; i < n; i++) {
    PxPromiseEntry e;
    e.slot = r.Varint();
    e.ballot = r.Varint();
    e.cmd = smr::Command::Decode(r);
    m.accepted.push_back(std::move(e));
  }
  return m;
}

template <class W>
void Put(W& w, const PxHeartbeat& m) {
  w.Varint(m.ballot);
  w.Varint(m.committed_upto);
}
PxHeartbeat GetPxHeartbeat(codec::Reader& r) {
  PxHeartbeat m;
  m.ballot = r.Varint();
  m.committed_upto = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const MnPropose& m) {
  w.Varint(m.slot);
  m.cmd.EncodeTo(w);
  w.Varint(m.own_next);
}
MnPropose GetMnPropose(codec::Reader& r) {
  MnPropose m;
  m.slot = r.Varint();
  m.cmd = smr::Command::Decode(r);
  m.own_next = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const MnAck& m) {
  w.Varint(m.slot);
  w.Varint(m.own_next);
}
MnAck GetMnAck(codec::Reader& r) {
  MnAck m;
  m.slot = r.Varint();
  m.own_next = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const MnCommit& m) {
  w.Varint(m.slot);
  m.cmd.EncodeTo(w);
}
MnCommit GetMnCommit(codec::Reader& r) {
  MnCommit m;
  m.slot = r.Varint();
  m.cmd = smr::Command::Decode(r);
  return m;
}

template <class W>
void Put(W& w, const MnSkipRange& m) {
  w.Varint(m.owner);
  w.Varint(m.from);
  w.Varint(m.to);
}
MnSkipRange GetMnSkipRange(codec::Reader& r) {
  MnSkipRange m;
  m.owner = static_cast<common::ProcessId>(r.Varint());
  m.from = r.Varint();
  m.to = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const MnRevoke& m) {
  w.Varint(m.slot);
  w.Varint(m.ballot);
}
MnRevoke GetMnRevoke(codec::Reader& r) {
  MnRevoke m;
  m.slot = r.Varint();
  m.ballot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const MnRevokePromise& m) {
  w.Varint(m.slot);
  w.Varint(m.ballot);
  w.Varint(m.vbal);
  w.U8(m.vkind);
  m.cmd.EncodeTo(w);
}
MnRevokePromise GetMnRevokePromise(codec::Reader& r) {
  MnRevokePromise m;
  m.slot = r.Varint();
  m.ballot = r.Varint();
  m.vbal = r.Varint();
  m.vkind = r.U8();
  m.cmd = smr::Command::Decode(r);
  return m;
}

template <class W>
void Put(W& w, const MnRevokeAccept& m) {
  w.Varint(m.slot);
  w.Varint(m.ballot);
  w.U8(m.choice);
  m.cmd.EncodeTo(w);
}
MnRevokeAccept GetMnRevokeAccept(codec::Reader& r) {
  MnRevokeAccept m;
  m.slot = r.Varint();
  m.ballot = r.Varint();
  m.choice = r.U8();
  m.cmd = smr::Command::Decode(r);
  return m;
}

template <class W>
void Put(W& w, const MnRevokeAccepted& m) {
  w.Varint(m.slot);
  w.Varint(m.ballot);
}
MnRevokeAccepted GetMnRevokeAccepted(codec::Reader& r) {
  MnRevokeAccepted m;
  m.slot = r.Varint();
  m.ballot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const MnRevokeSkip& m) { w.Varint(m.slot); }
MnRevokeSkip GetMnRevokeSkip(codec::Reader& r) {
  MnRevokeSkip m;
  m.slot = r.Varint();
  return m;
}

template <class W>
void Put(W& w, const ClientRequest& m) { m.cmd.EncodeTo(w); }
ClientRequest GetClientRequest(codec::Reader& r) {
  ClientRequest m;
  m.cmd = smr::Command::Decode(r);
  return m;
}

template <class W>
void Put(W& w, const ClientReply& m) {
  w.Varint(m.client);
  w.Varint(m.seq);
  w.Bytes(m.value);
  w.Bool(m.dropped);
}
ClientReply GetClientReply(codec::Reader& r) {
  ClientReply m;
  m.client = r.Varint();
  m.seq = r.Varint();
  m.value = r.Bytes();
  m.dropped = r.Bool();
  return m;
}

}  // namespace

const char* TypeName(const Message& m) {
  static constexpr const char* kNames[] = {
      "MCollect",    "MCollectAck",   "MConsensus", "MConsensusAck", "MCommit",
      "MRec",        "MRecAck",       "EpPreAccept", "EpPreAcceptAck", "EpAccept",
      "EpAcceptAck", "EpCommit",      "EpPrepare",  "EpPrepareAck",  "PxForward",
      "PxAccept",    "PxAccepted",    "PxCommit",   "PxPrepare",     "PxPromise",
      "PxHeartbeat", "MnPropose",     "MnAck",      "MnCommit",      "MnSkipRange",
      "ClientRequest", "ClientReply",  "MnRevoke",   "MnRevokePromise",
      "MnRevokeAccept", "MnRevokeAccepted", "MnRevokeSkip"};
  return kNames[m.index()];
}

void Encode(codec::Writer& w, const Message& m) {
  // Envelope: partition tag (varint, 1 byte for unsharded deployments), type tag, body.
  w.Varint(m.shard);
  w.U8(static_cast<uint8_t>(m.index()));
  std::visit([&w](const auto& body) { Put(w, body); }, m.body);
}

bool Decode(codec::Reader& r, Message& out) {
  uint32_t shard = static_cast<uint32_t>(r.Varint());
  Tag tag = static_cast<Tag>(r.U8());
  if (!r.ok()) {
    return false;
  }
  switch (tag) {
    case Tag::kMCollect:
      out = GetMCollect(r);
      break;
    case Tag::kMCollectAck:
      out = GetMCollectAck(r);
      break;
    case Tag::kMConsensus:
      out = GetMConsensus(r);
      break;
    case Tag::kMConsensusAck:
      out = GetMConsensusAck(r);
      break;
    case Tag::kMCommit:
      out = GetMCommit(r);
      break;
    case Tag::kMRec:
      out = GetMRec(r);
      break;
    case Tag::kMRecAck:
      out = GetMRecAck(r);
      break;
    case Tag::kEpPreAccept:
      out = GetEpPreAccept(r);
      break;
    case Tag::kEpPreAcceptAck:
      out = GetEpPreAcceptAck(r);
      break;
    case Tag::kEpAccept:
      out = GetEpAccept(r);
      break;
    case Tag::kEpAcceptAck:
      out = GetEpAcceptAck(r);
      break;
    case Tag::kEpCommit:
      out = GetEpCommit(r);
      break;
    case Tag::kEpPrepare:
      out = GetEpPrepare(r);
      break;
    case Tag::kEpPrepareAck:
      out = GetEpPrepareAck(r);
      break;
    case Tag::kPxForward:
      out = GetPxForward(r);
      break;
    case Tag::kPxAccept:
      out = GetPxAccept(r);
      break;
    case Tag::kPxAccepted:
      out = GetPxAccepted(r);
      break;
    case Tag::kPxCommit:
      out = GetPxCommit(r);
      break;
    case Tag::kPxPrepare:
      out = GetPxPrepare(r);
      break;
    case Tag::kPxPromise:
      out = GetPxPromise(r);
      break;
    case Tag::kPxHeartbeat:
      out = GetPxHeartbeat(r);
      break;
    case Tag::kMnPropose:
      out = GetMnPropose(r);
      break;
    case Tag::kMnAck:
      out = GetMnAck(r);
      break;
    case Tag::kMnCommit:
      out = GetMnCommit(r);
      break;
    case Tag::kMnSkipRange:
      out = GetMnSkipRange(r);
      break;
    case Tag::kClientRequest:
      out = GetClientRequest(r);
      break;
    case Tag::kClientReply:
      out = GetClientReply(r);
      break;
    case Tag::kMnRevoke:
      out = GetMnRevoke(r);
      break;
    case Tag::kMnRevokePromise:
      out = GetMnRevokePromise(r);
      break;
    case Tag::kMnRevokeAccept:
      out = GetMnRevokeAccept(r);
      break;
    case Tag::kMnRevokeAccepted:
      out = GetMnRevokeAccepted(r);
      break;
    case Tag::kMnRevokeSkip:
      out = GetMnRevokeSkip(r);
      break;
    default:
      return false;
  }
  out.shard = shard;  // the switch above overwrote the envelope; restore the tag
  return r.ok();
}

size_t EncodedSize(const Message& m) {
  // Size-only visitor: no buffer, no allocation — the simulator calls this per send.
  codec::SizeWriter w;
  w.Varint(m.shard);
  w.U8(static_cast<uint8_t>(m.index()));
  std::visit([&w](const auto& body) { Put(w, body); }, m.body);
  return w.size();
}

}  // namespace msg
