#include "src/core/atlas.h"

#include <algorithm>

#include "src/common/check.h"

namespace atlas {

using common::Ballot;
using common::DepSet;
using common::Dot;
using common::ProcessId;
using common::Quorum;

AtlasEngine::AtlasEngine(Config config)
    : config_(config),
      index_(smr::MakeKeyIndex(config.index_mode)),
      executor_(exec::BatchOrder::kDot,
                [this](const Dot& dot, const smr::Command& cmd) {
                  OnExecuteFromGraph(dot, cmd);
                }) {
  config_.Validate();
}

void AtlasEngine::OnStart() {
  if (config_.by_proximity.empty()) {
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        config_.by_proximity.push_back(p);
      }
    }
  }
  CHECK_EQ(config_.by_proximity.size(), static_cast<size_t>(n_) - 1);
  CHECK_EQ(config_.n, n_);
  commit_horizon_.assign(n_, 0);
}

Quorum AtlasEngine::PickFastQuorum(bool nfr_read) const {
  // Fast quorum: self plus the closest responsive peers, size floor(n/2)+f (line 4),
  // or a plain majority for NFR reads (§4).
  size_t size = nfr_read ? config_.MajoritySize() : config_.FastQuorumSize();
  return PickQuorum(size);
}

Quorum AtlasEngine::PickSlowQuorum() const { return PickQuorum(config_.SlowQuorumSize()); }

Quorum AtlasEngine::PickQuorum(size_t size) const {
  Quorum q;
  q.Add(self_);
  // Prefer the closest non-suspected peers; fall back to suspected ones if fewer than
  // `size` responsive processes remain (the protocol then blocks, which is the
  // documented behaviour when more than f sites are unreachable).
  for (ProcessId p : config_.by_proximity) {
    if (q.size() >= size) {
      return q;
    }
    if (suspected_.count(p) == 0) {
      q.Add(p);
    }
  }
  for (ProcessId p : config_.by_proximity) {
    if (q.size() >= size) {
      break;
    }
    q.Add(p);
  }
  return q;
}

bool AtlasEngine::CommittedOrExecuted(const Dot& dot) const {
  return executor_.IsCommitted(dot);
}

AtlasEngine::Phase AtlasEngine::PhaseOf(const Dot& dot) const {
  if (executor_.IsExecuted(dot)) {
    return Phase::kExecute;
  }
  if (executor_.IsCommitted(dot)) {
    return Phase::kCommit;
  }
  const Info* info = infos_.Find(dot);
  return info == nullptr ? Phase::kStart : info->phase;
}

DepSet AtlasEngine::CommittedDeps(const Dot& dot) const {
  const Decided* d = decided_.Find(dot);
  return d == nullptr ? DepSet{} : d->deps;
}

// ---------------------------------------------------------------------------
// Start + collect phases (lines 1-19)
// ---------------------------------------------------------------------------

void AtlasEngine::Submit(smr::Command cmd) {
  stats_.submitted++;
  Dot dot{self_, next_seq_++};  // line 2
  bool nfr = NfrRead(cmd);

  Info& info = GetInfo(dot);
  info.locally_submitted = true;
  info.submitted_cmd = cmd;

  Quorum q = PickFastQuorum(nfr);  // line 4

  msg::MCollect collect;
  collect.dot = dot;
  collect.cmd = std::move(cmd);
  index_->CollectInto(collect.cmd, dot, collect.past);  // line 3
  collect.quorum = q;
  collect.nfr = nfr;
  // Line 5: send MCollect to the fast quorum (self-delivery is inline and runs the
  // MCollect handler below, which stores the command and acks).
  for (ProcessId p : q) {
    if (p != self_) {
      SendTo(p, collect);
    }
  }
  SendTo(self_, collect);
  if (config_.commit_timeout > 0) {
    ctx_->SetTimer(config_.commit_timeout, (dot.seq << 2) | kCommitTimeoutToken);
  }
}

void AtlasEngine::HandleMCollect(ProcessId from, const msg::MCollect& m) {
  Info& info = GetInfo(m.dot);
  if (info.phase != Phase::kStart) {  // precondition, line 7
    return;
  }
  if (m.dot.proc != self_) {
    // Fast-quorum member: watch for the commit so a lost MCommit (or a partitioned
    // coordinator) cannot leave this command pending here forever.
    ArmWatch(m.dot, info);
  }
  // Line 8: dep[id] <- conflicts(c) ∪ past, collected straight into the per-command
  // state (no temporary set).
  index_->CollectInto(m.cmd, m.dot, info.deps);
  info.deps.UnionWith(m.past);
  // NFR reads are excluded from dependency tracking (they can never block a later
  // command), so they are not recorded in the conflict index (§4).
  if (!m.nfr) {
    index_->Record(m.dot, m.cmd);
  }
  info.cmd = m.cmd;          // line 9
  info.quorum = m.quorum;
  info.nfr = m.nfr;
  info.phase = Phase::kCollect;  // line 10
  msg::MCollectAck ack;
  ack.dot = m.dot;
  ack.deps = info.deps;
  SendTo(from, ack);  // line 11
}

void AtlasEngine::HandleMCollectAck(ProcessId from, const msg::MCollectAck& m) {
  Info* found = infos_.Find(m.dot);
  if (found == nullptr) {
    return;
  }
  Info& info = *found;
  // Preconditions (line 13): still in collect phase at the coordinator, ack from a fast
  // quorum member, not a duplicate.
  if (info.phase != Phase::kCollect || m.dot.proc != self_ ||
      !info.quorum.Contains(from) || info.collect_acked.Contains(from)) {
    return;
  }
  info.collect_acked.Add(from);
  info.collect_deps.push_back(m.deps);
  if (info.collect_acked == info.quorum) {  // "from all j in Q"
    FinishCollect(m.dot, info);
  }
}

void AtlasEngine::FinishCollect(const Dot& dot, Info& info) {
  if (info.nfr) {
    // NFR (§4): commit immediately after one round trip to a majority, taking the plain
    // union of the reported dependencies.
    common::UnionInto(info.collect_deps, scratch_deps_);
    stats_.fast_paths++;
    CommitAndBroadcast(dot, info, info.cmd, scratch_deps_, /*fast_path=*/true);
    return;
  }
  // Line 15: fast path iff every reported dependency was reported by >= f quorum
  // members (∪Q dep == ∪fQ dep).
  if (common::FastPathCondition(info.collect_deps, config_.f, dep_scratch_)) {
    common::UnionInto(info.collect_deps, scratch_deps_);  // line 14
    stats_.fast_paths++;
    CommitAndBroadcast(dot, info, info.cmd, scratch_deps_, /*fast_path=*/true);  // line 16
    return;
  }
  // Slow path (lines 17-19). With the §4 pruning optimization the coordinator proposes
  // ∪fQ dep, dropping dependencies reported by fewer than f quorum members. The
  // paper's per-identifier counting is only sound when conflicts() reports every
  // conflicting identifier (full index); under dependency compression quorum members
  // may report different aliases of one conflict chain, so the counting must be
  // per originating process instead (see ThresholdUnionByProc and DESIGN.md §7).
  stats_.slow_paths++;
  if (!config_.prune_slow_path) {
    common::UnionInto(info.collect_deps, scratch_deps_);
  } else if (config_.index_mode == smr::IndexMode::kFull) {
    common::ThresholdUnionInto(info.collect_deps, config_.f, dep_scratch_,
                               scratch_deps_);
  } else {
    common::ThresholdUnionByProcInto(info.collect_deps, config_.f, dep_scratch_,
                                     scratch_deps_);
  }
  ProposeConsensus(dot, info, info.cmd, scratch_deps_, common::InitialBallot(self_));
}

// ---------------------------------------------------------------------------
// Consensus (slow path + recovery proposals, lines 20-27)
// ---------------------------------------------------------------------------

void AtlasEngine::ProposeConsensus(const Dot& dot, Info& info, const smr::Command& cmd,
                                   DepSet deps, Ballot ballot) {
  info.proposal_ballot = ballot;
  info.consensus_acked = Quorum();
  msg::MConsensus prop;
  prop.dot = dot;
  prop.cmd = cmd;
  prop.deps = std::move(deps);
  prop.ballot = ballot;
  if (ballot == common::InitialBallot(self_)) {
    // Initial coordinator: Paxos phase 2 to a slow quorum of f+1 (line 18-19).
    for (ProcessId p : PickSlowQuorum()) {
      if (p != self_) {
        SendTo(p, prop);
      }
    }
    SendTo(self_, prop);
  } else {
    // Recovery proposals go to all (lines 48-53): any f+1 acceptors suffice and the
    // recoverer does not know which processes are reachable.
    SendAll(prop);
  }
}

void AtlasEngine::HandleMConsensus(ProcessId from, const msg::MConsensus& m) {
  if (CommittedOrExecuted(m.dot)) {
    // The value is already decided; tell the proposer directly (mirrors lines 34-36).
    const Decided* d = decided_.Find(m.dot);
    if (d != nullptr) {
      msg::MCommit commit;
      commit.dot = m.dot;
      commit.cmd = d->cmd;
      commit.deps = d->deps;
      SendTo(from, commit);
    }
    return;
  }
  Info& info = GetInfo(m.dot);
  if (info.bal > m.ballot) {  // precondition, line 21
    return;
  }
  info.cmd = m.cmd;  // line 22
  info.deps = m.deps;
  info.bal = m.ballot;  // line 23
  info.abal = m.ballot;
  msg::MConsensusAck ack;
  ack.dot = m.dot;
  ack.ballot = m.ballot;
  SendTo(from, ack);  // line 24
}

void AtlasEngine::HandleMConsensusAck(ProcessId from, const msg::MConsensusAck& m) {
  Info* found = infos_.Find(m.dot);
  if (found == nullptr) {
    return;
  }
  Info& info = *found;
  // Precondition (line 26): the ack matches my outstanding proposal and nothing with a
  // higher ballot has preempted me.
  if (info.proposal_ballot != m.ballot || info.bal != m.ballot ||
      info.consensus_acked.Contains(from)) {
    return;
  }
  info.consensus_acked.Add(from);
  if (info.consensus_acked.size() == config_.SlowQuorumSize()) {  // |Q| = f+1
    CommitAndBroadcast(m.dot, info, info.cmd, info.deps, /*fast_path=*/false);  // line 27
  }
}

// ---------------------------------------------------------------------------
// Commit (lines 28-30)
// ---------------------------------------------------------------------------

void AtlasEngine::CommitAndBroadcast(const Dot& dot, Info& info, const smr::Command& cmd,
                                     const DepSet& deps, bool fast_path) {
  msg::MCommit commit;
  commit.dot = dot;
  commit.cmd = cmd;
  commit.deps = deps;
  for (ProcessId p = 0; p < n_; p++) {
    if (p != self_) {
      SendTo(p, commit);
    }
  }
  // `info` may be invalidated by self-commit (execution erases entries); apply last.
  ApplyCommit(dot, cmd, deps, fast_path);
}

void AtlasEngine::HandleMCommit(ProcessId from, const msg::MCommit& m) {
  ApplyCommit(m.dot, m.cmd, m.deps, /*fast_path=*/false);
}

void AtlasEngine::ApplyCommit(const Dot& dot, const smr::Command& cmd, const DepSet& deps,
                              bool fast_path) {
  if (CommittedOrExecuted(dot)) {  // precondition, line 29
    return;
  }
  // Copy into per-engine scratch before touching infos_: the slow-path and recovery
  // flows pass references into Info storage, which the flat map moves on rehash.
  // The scratch reuses its capacity, so this allocates nothing in steady state.
  commit_cmd_scratch_ = cmd;
  commit_deps_scratch_ = deps;
  Info& info = GetInfo(dot);
  info.cmd = commit_cmd_scratch_;
  info.deps = commit_deps_scratch_;
  info.phase = Phase::kCommit;  // line 30
  const bool was_locally_submitted = info.locally_submitted;
  Decided& d = decided_[dot];
  d.cmd = commit_cmd_scratch_;
  d.deps = commit_deps_scratch_;
  decided_order_.push_back(dot);
  while (decided_order_.size() > decided_cache_limit_) {
    decided_.Erase(decided_order_.front());
    decided_order_.pop_front();
  }
  // Commands learned only at commit time still enter the conflict index: they are
  // non-start identifiers, so later conflicts() calls must report them. NFR reads are
  // never tracked.
  if (!NfrRead(commit_cmd_scratch_)) {
    index_->Record(dot, commit_cmd_scratch_);
  }
  stats_.committed++;
  if (commit_cmd_scratch_.is_noop()) {
    stats_.noops_committed++;
  }
  ctx_->Committed(dot, commit_cmd_scratch_, fast_path);
  if (was_locally_submitted && commit_cmd_scratch_.is_noop() &&
      !info.submitted_cmd.is_noop()) {
    // Recovery replaced our submitted command with noOp before any process saw its
    // payload: it will never execute under this dot. The driver may resubmit.
    ctx_->Dropped(dot, info.submitted_cmd);
  }
  // Every dependency must eventually commit for `dot` to execute; make sure we track
  // unknown dependencies so the recovery scan can find them if their coordinator
  // fails. Inserting may rehash infos_, so `info` is dead from here on.
  for (const Dot& dep : commit_deps_scratch_) {
    if (!CommittedOrExecuted(dep)) {
      Info& di = GetInfo(dep);
      // A committed command is blocked on this dependency; if its commit never
      // arrives (lost on the wire), the watch recovers it without requiring the
      // coordinator to be suspected.
      ArmWatch(dep, di);
      bool needs_scan = suspected_.count(dep.proc) > 0;
      if (!peer_floors_.empty()) {
        auto it = peer_floors_.find(dep.proc);
        if (it != peer_floors_.end() && dep.seq < it->second) {
          // Dependency owned by a dead incarnation: nobody will finish it for us.
          di.orphaned = true;
          any_orphaned_ = true;
          needs_scan = true;
        }
      }
      if (restarted_) {
        if (di.next_recovery_at == 0) {
          // Grace before this engine recovers it: the dep may simply be in flight.
          di.next_recovery_at = ctx_->Now() + config_.recovery_retry_interval;
        }
        needs_scan = true;
      }
      if (needs_scan) {
        ArmScanTimer();
      }
    }
  }
  // Identifier-space gap watch: per-process identifiers are dense, so committing q:s
  // while earlier identifiers of q are unknown here means their commits were lost
  // (e.g. dropped across a partition). Watch them all *now* — per-process-compressed
  // dependency sets only reveal the newest missing identifier, so waiting for dep
  // chains would recover one identifier per commit_timeout and wedge the executor
  // for gap×timeout (tens of seconds after a few seconds of partition).
  if (config_.commit_timeout > 0 && dot.proc != self_) {
    uint64_t& horizon = commit_horizon_[dot.proc];
    for (uint64_t s = dot.seq; s > horizon + 1;) {
      Dot missing{dot.proc, --s};
      if (!CommittedOrExecuted(missing)) {
        ArmWatch(missing, GetInfo(missing));
      }
    }
    horizon = std::max(horizon, dot.seq);
  }
  // This call may execute `dot` (and others), erasing their infos_ entries.
  executor_.Commit(dot, commit_cmd_scratch_, commit_deps_scratch_);
}

void AtlasEngine::OnExecuteFromGraph(const Dot& dot, const smr::Command& cmd) {
  stats_.executed++;
  infos_.Erase(dot);  // phase tracked by the executor from here on
  ctx_->Executed(dot, cmd);
}

// ---------------------------------------------------------------------------
// Recovery (Algorithm 2, lines 31-53)
// ---------------------------------------------------------------------------

void AtlasEngine::Recover(const Dot& dot) {
  if (CommittedOrExecuted(dot)) {
    return;
  }
  Info& info = GetInfo(dot);
  stats_.recoveries_started++;
  Ballot b = common::NextRecoveryBallot(self_, info.bal, n_);  // line 32
  info.rec_ballot = b;
  info.rec_acked = Quorum();
  info.rec_acks.clear();
  info.next_recovery_at = ctx_->Now() + config_.recovery_retry_interval;
  msg::MRec rec;
  rec.dot = dot;
  rec.cmd = info.cmd;  // noOp unless this process saw the payload
  rec.ballot = b;
  SendAll(rec);  // line 33
}

void AtlasEngine::HandleMRec(ProcessId from, const msg::MRec& m) {
  // Lines 34-36: already decided, short-circuit with MCommit.
  if (CommittedOrExecuted(m.dot)) {
    const Decided* d = decided_.Find(m.dot);
    if (d != nullptr) {
      msg::MCommit commit;
      commit.dot = m.dot;
      commit.cmd = d->cmd;
      commit.deps = d->deps;
      SendTo(from, commit);
    }
    // Beyond the decided cache horizon: stay silent; the recoverer learns the value
    // from a replica that still caches it (recovering ancient commands is rare).
    return;
  }
  Info& info = GetInfo(m.dot);
  if (info.bal >= m.ballot) {  // precondition, line 38
    return;
  }
  if (info.bal == 0 && info.phase == Phase::kStart) {  // line 39
    index_->CollectInto(m.cmd, m.dot, info.deps);  // line 40
    info.cmd = m.cmd;                              // line 41
    if (!NfrRead(m.cmd)) {
      index_->Record(m.dot, m.cmd);
    }
  }
  info.bal = m.ballot;           // line 42
  info.phase = Phase::kRecover;  // line 43
  msg::MRecAck ack;              // line 44
  ack.dot = m.dot;
  ack.cmd = info.cmd;
  ack.deps = info.deps;
  ack.quorum = info.quorum;
  ack.accepted_ballot = info.abal;
  ack.ballot = m.ballot;
  SendTo(from, ack);
}

void AtlasEngine::HandleMRecAck(ProcessId from, const msg::MRecAck& m) {
  Info* found = infos_.Find(m.dot);
  if (found == nullptr) {
    return;
  }
  Info& info = *found;
  // Precondition (line 46): acks for my outstanding recovery ballot, not preempted.
  if (info.rec_ballot != m.ballot || info.bal != m.ballot ||
      info.rec_acked.Contains(from)) {
    return;
  }
  info.rec_acked.Add(from);
  info.rec_acks.emplace_back(from, m);
  if (info.rec_acked.size() < config_.RecoveryQuorumSize()) {  // |Q| = n - f
    return;
  }

  const Ballot b = m.ballot;
  // Case 1 (lines 47-49): some process accepted a consensus proposal; by Paxos rules
  // adopt the one accepted at the highest ballot.
  const msg::MRecAck* best = nullptr;
  for (const auto& [sender, ack] : info.rec_acks) {
    if (ack.accepted_ballot != 0 &&
        (best == nullptr || ack.accepted_ballot > best->accepted_ballot)) {
      best = &ack;
    }
  }
  if (best != nullptr) {
    ProposeConsensus(m.dot, info, best->cmd, best->deps, b);
    return;
  }
  // Case 2 (lines 50-52): nobody accepted a proposal, but some process saw the fast
  // quorum (and hence the payload).
  const msg::MRecAck* with_quorum = nullptr;
  for (const auto& [sender, ack] : info.rec_acks) {
    if (!ack.quorum.empty()) {
      with_quorum = &ack;
      break;
    }
  }
  if (with_quorum != nullptr) {
    const ProcessId initial = m.dot.proc;
    Quorum selected;
    if (info.rec_acked.Contains(initial)) {
      // Line 51, first case: the initial coordinator replied, so it never took (and
      // will never take) the fast path; the union over all n-f >= floor(n/2)+1 ackers
      // is a valid choice by Property 1.
      selected = info.rec_acked;
    } else {
      // Line 51, second case: the initial coordinator may have taken the fast path.
      // Q' = Q ∩ Q0 contains at least floor(n/2) fast-quorum members; by Property 2
      // the union of their reported dependencies reconstructs any fast-path proposal.
      selected = info.rec_acked.Intersect(with_quorum->quorum);
    }
    DepSet deps;
    for (const auto& [sender, ack] : info.rec_acks) {
      if (selected.Contains(sender)) {
        deps.UnionWith(ack.deps);
      }
    }
    ProposeConsensus(m.dot, info, with_quorum->cmd, std::move(deps), b);  // line 52
    return;
  }
  // Case 3 (line 53): nobody saw the payload; replace the command with noOp.
  ProposeConsensus(m.dot, info, smr::MakeNoOp(), DepSet(), b);
}

void AtlasEngine::OnSuspect(ProcessId p) {
  if (p == self_ || !suspected_.insert(p).second) {
    return;
  }
  if (RecoveryScan()) {
    ArmScanTimer();
  }
}

void AtlasEngine::OnRestore(ProcessId p, uint64_t seq_floor) {
  if (p == self_) {
    return;
  }
  suspected_.erase(p);
  uint64_t& floor = peer_floors_[p];
  floor = std::max(floor, seq_floor);
  // The restarted incarnation will never finish its predecessor's identifiers below
  // the floor: keep any we know about scan-eligible.
  std::vector<Dot> stale;
  infos_.ForEach([&](const Dot& dot, const Info& info) {
    if (dot.proc == p && dot.seq < seq_floor && !info.orphaned &&
        info.phase != Phase::kCommit && info.phase != Phase::kExecute) {
      stale.push_back(dot);
    }
  });
  for (const Dot& dot : stale) {
    GetInfo(dot).orphaned = true;
    any_orphaned_ = true;
  }
  if (!stale.empty()) {
    ArmScanTimer();
  }
}

smr::RestartHint AtlasEngine::restart_hint() const {
  return smr::RestartHint{next_seq_, 0};
}

void AtlasEngine::ApplyRestartHint(const smr::RestartHint& hint) {
  next_seq_ = std::max(next_seq_, hint.seq_floor);
  restart_floor_ = next_seq_;
  restarted_ = true;
  // Old commands resurface as dependencies of new commits; the scan recovers them.
  ArmScanTimer();
}

void AtlasEngine::ArmScanTimer() {
  if (!scan_timer_armed_) {
    scan_timer_armed_ = true;
    ctx_->SetTimer(config_.recovery_scan_interval, kRecoveryScanToken);
  }
}

void AtlasEngine::OnTimer(uint64_t token) {
  if (token == kRecoveryScanToken) {
    scan_timer_armed_ = false;
    if (RecoveryScan()) {
      ArmScanTimer();
    }
    return;
  }
  if ((token & 3) == kCommitTimeoutToken) {
    Dot dot{self_, token >> 2};
    if (!CommittedOrExecuted(dot)) {
      Recover(dot);
      ctx_->SetTimer(config_.commit_timeout, token);
    }
    return;
  }
  if ((token & 3) == kWatchToken) {
    uint64_t packed = token >> 2;
    Dot dot{static_cast<ProcessId>(packed >> 44), packed & ((uint64_t{1} << 44) - 1)};
    if (!CommittedOrExecuted(dot)) {
      // The commit outcome never reached us within the timeout: take over recovery
      // (safe against a live coordinator — MRec runs at a higher ballot and the
      // recovery quorum intersects the fast quorum, so a committed payload is
      // always seen and re-proposed, never replaced by noOp).
      Recover(dot);
      ctx_->SetTimer(config_.commit_timeout, token);
    }
  }
}

void AtlasEngine::ArmWatch(const Dot& dot, Info& info) {
  if (config_.commit_timeout <= 0 || info.watched) {
    return;
  }
  CHECK_LT(dot.seq, uint64_t{1} << 44);
  info.watched = true;
  ctx_->SetTimer(config_.commit_timeout,
                 (((static_cast<uint64_t>(dot.proc) << 44) | dot.seq) << 2) |
                     kWatchToken);
}

bool AtlasEngine::RecoveryScan() {
  if (suspected_.empty() && !restarted_ && !any_orphaned_) {
    return false;
  }
  // Recover every known uncommitted command coordinated by a suspected process (or
  // orphaned by a restart; or, on a restarted engine, any pending identifier that is
  // not one of our own new commands). New ballots are only started if the previous
  // attempt has had time to finish.
  std::vector<Dot> to_recover;
  std::vector<Dot> grace;
  bool any_pending = false;
  common::Time now = ctx_->Now();
  infos_.ForEach([&](const Dot& dot, const Info& info) {
    if (info.phase == Phase::kCommit || info.phase == Phase::kExecute) {
      return;
    }
    bool direct = suspected_.count(dot.proc) > 0 || info.orphaned;
    if (!direct && !(restarted_ &&
                     !(dot.proc == self_ && dot.seq >= restart_floor_))) {
      return;
    }
    any_pending = true;
    if (!direct && info.next_recovery_at == 0) {
      // Restart-driven eligibility gets a grace period: the command may simply be
      // in flight at its live coordinator.
      grace.push_back(dot);
      return;
    }
    if (info.next_recovery_at > now) {
      return;
    }
    to_recover.push_back(dot);
  });
  for (const Dot& dot : grace) {
    GetInfo(dot).next_recovery_at = now + config_.recovery_retry_interval;
  }
  // Flat-map iteration order depends on the table layout; recover in canonical dot
  // order so seeded crash runs stay reproducible across map implementations.
  std::sort(to_recover.begin(), to_recover.end());
  for (const Dot& dot : to_recover) {
    Recover(dot);
  }
  return any_pending;
}

// ---------------------------------------------------------------------------

void AtlasEngine::OnMessage(ProcessId from, const msg::Message& m) {
  switch (m.index()) {
    case 0:
      HandleMCollect(from, msg::get<msg::MCollect>(m));
      break;
    case 1:
      HandleMCollectAck(from, msg::get<msg::MCollectAck>(m));
      break;
    case 2:
      HandleMConsensus(from, msg::get<msg::MConsensus>(m));
      break;
    case 3:
      HandleMConsensusAck(from, msg::get<msg::MConsensusAck>(m));
      break;
    case 4:
      HandleMCommit(from, msg::get<msg::MCommit>(m));
      break;
    case 5:
      HandleMRec(from, msg::get<msg::MRec>(m));
      break;
    case 6:
      HandleMRecAck(from, msg::get<msg::MRecAck>(m));
      break;
    default:
      break;  // not an Atlas message
  }
}

}  // namespace atlas
