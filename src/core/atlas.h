// The Atlas protocol engine (the paper's core contribution).
//
// Implements Algorithm 4 (the full protocol: Algorithm 1 failure-free path + Algorithm 2
// recovery + Algorithm 3 execution) plus both §4 optimizations:
//   - slow-path dependency pruning (propose the f-threshold union to consensus);
//   - NFR: non-fault-tolerant reads over plain majority quorums.
//
// The engine is sans-I/O (src/smr/engine.h): drivers deliver messages/timers and receive
// sends/commit/execute notifications. Line references in comments are to Algorithm 4 in
// the paper's appendix.
#ifndef SRC_CORE_ATLAS_H_
#define SRC_CORE_ATLAS_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/dep_set.h"
#include "src/common/dot_map.h"
#include "src/common/quorum.h"
#include "src/common/types.h"
#include "src/core/config.h"
#include "src/exec/graph_executor.h"
#include "src/msg/message.h"
#include "src/smr/conflict_index.h"
#include "src/smr/engine.h"

namespace atlas {

class AtlasEngine final : public smr::Engine {
 public:
  explicit AtlasEngine(Config config);

  void OnStart() override;
  void Submit(smr::Command cmd) override;
  void OnMessage(common::ProcessId from, const msg::Message& m) override;
  void OnTimer(uint64_t token) override;
  void OnSuspect(common::ProcessId p) override;
  void OnRestore(common::ProcessId p, uint64_t seq_floor) override;
  smr::RestartHint restart_hint() const override;
  void ApplyRestartHint(const smr::RestartHint& hint) override;

  // Starts recovery of `dot` explicitly (tests / harness). No-op if already committed.
  void Recover(const common::Dot& dot);

  const Config& config() const { return config_; }

  // Introspection for tests and benches.
  enum class Phase : uint8_t { kStart, kCollect, kRecover, kCommit, kExecute };
  Phase PhaseOf(const common::Dot& dot) const;
  common::DepSet CommittedDeps(const common::Dot& dot) const;
  size_t PendingExecution() const { return executor_.PendingCount(); }
  size_t MaxBatch() const { return executor_.MaxBatch(); }

 private:
  struct Info {
    Phase phase = Phase::kStart;
    smr::Command cmd;  // noOp until the payload is learned
    common::DepSet deps;
    common::Quorum quorum;  // fast quorum; empty if MCollect not seen
    common::Ballot bal = 0;
    common::Ballot abal = 0;
    bool nfr = false;  // processed via the NFR read path

    // Initial-coordinator state (collect phase).
    common::Quorum collect_acked;
    std::vector<common::DepSet> collect_deps;

    // Proposer state (slow path / recovery consensus at ballot `proposal_ballot`).
    common::Ballot proposal_ballot = 0;
    common::Quorum consensus_acked;

    // Recovery-coordinator state. rec_acks pairs each ack with its sender.
    common::Ballot rec_ballot = 0;
    common::Quorum rec_acked;
    std::vector<std::pair<common::ProcessId, msg::MRecAck>> rec_acks;
    common::Time next_recovery_at = 0;
    // Owned by a dead incarnation of a since-restarted process: stays eligible for
    // the recovery scan even though its owner is no longer suspected.
    bool orphaned = false;
    // A commit-outcome watch timer is pending for this dot (see ArmWatch).
    bool watched = false;

    // Original submitted payload (set at the initial coordinator only), used to report
    // commands that recovery replaced with noOp.
    bool locally_submitted = false;
    smr::Command submitted_cmd;
  };

  // Message handlers (Algorithm 4 line references in the implementations).
  void HandleMCollect(common::ProcessId from, const msg::MCollect& m);
  void HandleMCollectAck(common::ProcessId from, const msg::MCollectAck& m);
  void HandleMConsensus(common::ProcessId from, const msg::MConsensus& m);
  void HandleMConsensusAck(common::ProcessId from, const msg::MConsensusAck& m);
  void HandleMCommit(common::ProcessId from, const msg::MCommit& m);
  void HandleMRec(common::ProcessId from, const msg::MRec& m);
  void HandleMRecAck(common::ProcessId from, const msg::MRecAck& m);

  void FinishCollect(const common::Dot& dot, Info& info);
  void ProposeConsensus(const common::Dot& dot, Info& info, const smr::Command& cmd,
                        common::DepSet deps, common::Ballot ballot);
  void CommitAndBroadcast(const common::Dot& dot, Info& info, const smr::Command& cmd,
                          const common::DepSet& deps, bool fast_path);
  void ApplyCommit(const common::Dot& dot, const smr::Command& cmd,
                   const common::DepSet& deps, bool fast_path);
  void OnExecuteFromGraph(const common::Dot& dot, const smr::Command& cmd);
  // Returns true while uncommitted commands owned by suspected processes remain.
  bool RecoveryScan();
  void ArmScanTimer();

  // DotMap references are invalidated by later inserts/erases (rehash moves slots);
  // handlers must not hold the returned reference across calls that may mutate
  // infos_ (see ApplyCommit's copy-into-scratch discipline).
  Info& GetInfo(const common::Dot& dot) { return infos_[dot]; }
  bool CommittedOrExecuted(const common::Dot& dot) const;

  common::Quorum PickFastQuorum(bool nfr_read) const;
  common::Quorum PickSlowQuorum() const;
  common::Quorum PickQuorum(size_t size) const;

  // True when the command must bypass dependency recording per NFR (§4).
  bool NfrRead(const smr::Command& cmd) const { return config_.nfr && cmd.is_read(); }

  Config config_;
  std::unique_ptr<smr::ConflictIndex> index_;
  exec::GraphExecutor executor_;
  // Reusable scratch for quorum-reply set algebra and conflict collection: the
  // steady-state submit/collect/commit path performs no heap allocation.
  common::DepScratch dep_scratch_;
  common::DepSet scratch_deps_;
  // Commit-path scratch: ApplyCommit's cmd/deps arguments may alias storage inside
  // infos_ (the slow-path/recovery flows pass info.cmd / info.deps), which a DotMap
  // rehash would move; the values are copied here first. Capacity is reused, so the
  // copies allocate nothing in steady state.
  smr::Command commit_cmd_scratch_;
  common::DepSet commit_deps_scratch_;

  uint64_t next_seq_ = 1;
  // Open-addressed flat maps (see dot_map.h): per-command protocol state and the
  // decided-value cache were the last per-command node allocations on the hot path.
  common::DotMap<Info> infos_;
  std::unordered_set<common::ProcessId> suspected_;
  bool scan_timer_armed_ = false;

  // Restart bookkeeping. A restarted engine (ApplyRestartHint) re-learns decided
  // commands through the recovery path: every pending identifier except its own new
  // ones is scan-eligible (with a grace period so in-flight commands commit first).
  // peer_floors_ records restarted peers' sequence floors so their abandoned dots
  // stay recoverable after suspicion clears (per-Info `orphaned`).
  bool restarted_ = false;
  uint64_t restart_floor_ = 0;
  // Highest committed identifier seen per process; commits above the horizon arm
  // watches on every unknown identifier in the gap (lost-commit catch-up).
  std::vector<uint64_t> commit_horizon_;
  bool any_orphaned_ = false;
  std::unordered_map<common::ProcessId, uint64_t> peer_floors_;

  // Bounded cache of decided (committed) values, answering late MRec/MConsensus after
  // the command executed and its Info was reclaimed. Full stability-based GC is out of
  // scope; the cache makes recovery of recently executed commands exact and falls back
  // to silence (the recoverer learns from another replica) beyond the horizon.
  struct Decided {
    smr::Command cmd;
    common::DepSet deps;
  };
  common::DotMap<Decided> decided_;
  std::deque<common::Dot> decided_order_;
  size_t decided_cache_limit_ = 1 << 17;

  // Arms a commit-outcome watch for a dot this replica knows about but did not
  // coordinate: if the commit has not arrived after commit_timeout (lost MCommit,
  // partitioned coordinator), the watcher recovers the dot itself. No-op unless
  // commit timeouts are configured, so failure-free deployments are unaffected.
  void ArmWatch(const common::Dot& dot, Info& info);

  static constexpr uint64_t kRecoveryScanToken = 1;
  static constexpr uint64_t kCommitTimeoutToken = 2;  // low bits of per-dot timers
  // Watch timers pack the full dot: ((proc << 44) | seq) << 2 | kWatchToken.
  static constexpr uint64_t kWatchToken = 3;
};

}  // namespace atlas

#endif  // SRC_CORE_ATLAS_H_
