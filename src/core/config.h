// Atlas protocol configuration.
#ifndef SRC_CORE_CONFIG_H_
#define SRC_CORE_CONFIG_H_

#include <cstdint>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/smr/conflict_index.h"

namespace atlas {

struct Config {
  uint32_t n = 3;
  // Maximum number of concurrent site failures tolerated; 1 <= f <= floor((n-1)/2).
  uint32_t f = 1;

  // §4 optimizations.
  bool nfr = false;              // non-fault-tolerant reads
  bool prune_slow_path = true;   // propose the f-threshold union on the slow path

  // Dependency tracking mode (see src/smr/conflict_index.h).
  smr::IndexMode index_mode = smr::IndexMode::kCompressed;

  // Peers of this process ordered by increasing network distance (self excluded).
  // Quorums are chosen greedily from this list; when empty, id order is used.
  std::vector<common::ProcessId> by_proximity;

  // Recovery pacing: how often a replica re-scans for uncommitted commands owned by
  // suspected processes, and the per-command gap between recovery attempts.
  common::Duration recovery_scan_interval = 500 * common::kMillisecond;
  common::Duration recovery_retry_interval = 1 * common::kSecond;

  // When > 0, a coordinator that cannot commit its own command within this delay
  // re-runs the recovery protocol for it (covers lost messages / transient partitions
  // of the coordinator itself). 0 disables the timer.
  common::Duration commit_timeout = 0;

  void Validate() const {
    CHECK_GE(n, 3u);
    CHECK_GE(f, 1u);
    CHECK_LE(f, (n - 1) / 2);
  }

  size_t FastQuorumSize() const { return n / 2 + f; }
  size_t SlowQuorumSize() const { return f + 1; }
  size_t MajoritySize() const { return n / 2 + 1; }
  size_t RecoveryQuorumSize() const { return n - f; }
};

}  // namespace atlas

#endif  // SRC_CORE_CONFIG_H_
