// Deterministic fault injector: the sim::FaultHook implementation behind the
// scenario packs (tools/fault_campaign.cc).
//
// Buggify-style: each inter-process send rolls against a per-scenario probability
// table (drop, duplicate, delay, truncate) from the injector's OWN seeded generator —
// never the simulator's, whose draw sequence the determinism pins freeze. Timer
// registrations can be stretched by a bounded factor (grey-failure clock skew).
// Every decision is folded into a running schedule digest, so two runs of the same
// (pack, seed) can be checked for byte-identical fault schedules without recording
// the schedule itself.
//
// Truncation re-encodes the message through src/codec, cuts the buffer at a random
// point, and feeds the prefix back through msg::Decode — exercising the decoder's
// bounds checking on every injected corruption. A prefix that still decodes replaces
// the in-flight message; one that does not (the overwhelmingly common case, since
// every field read is length-checked) is dropped and attributed to `corrupted` in
// the simulator's DropStats.
#ifndef SRC_FAULT_INJECTOR_H_
#define SRC_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/sim/simulator.h"

namespace fault {

// Per-scenario fault mix. Probabilities are per send (or per timer registration);
// zero disables the fault class entirely (and skips its rng draw, keeping profiles
// with fewer fault classes cheap).
struct FaultProfile {
  double drop = 0;       // lose the message on the wire
  double duplicate = 0;  // deliver 1-2 extra copies, outside the FIFO clamp
  double delay = 0;      // shift delivery by extra_delay in [delay_min, delay_max]
  double truncate = 0;   // cut the encoded payload at a random byte
  double timer_skew = 0; // stretch an engine timer by [1, 1 + timer_skew_frac]

  common::Duration delay_min = 0;
  common::Duration delay_max = 0;
  common::Duration dup_delay_max = 0;
  double timer_skew_frac = 0;

  bool AnyMessageFault() const {
    return drop > 0 || duplicate > 0 || delay > 0 || truncate > 0;
  }
};

class Injector final : public sim::FaultHook {
 public:
  struct Counters {
    uint64_t sends_seen = 0;
    uint64_t dropped = 0;
    uint64_t duplicated = 0;  // sends that got >= 1 extra copy
    uint64_t delayed = 0;
    uint64_t truncated = 0;   // truncations whose prefix still decoded (mutated)
    uint64_t corrupted = 0;   // truncations rejected by the decoder (dropped)
    uint64_t timers_skewed = 0;
  };

  // The generator is seeded from (seed, salt) so distinct scenario packs draw
  // unrelated streams even under the same campaign seed.
  Injector(uint64_t seed, uint64_t salt, const FaultProfile& profile);

  // Message-fault window control: while disarmed, sends pass through untouched
  // (no rng draws) — scheduled heals use this so the drain phase is fault-free.
  // Timer skew stays active regardless; it models a property of the node's clock,
  // not of the network.
  void Arm() { armed_ = true; }
  void Disarm() { armed_ = false; }
  bool armed() const { return armed_; }

  void OnSend(common::ProcessId from, common::ProcessId to, msg::Message& m,
              sim::FaultPlan& plan) override;
  common::Duration OnTimer(common::ProcessId p, common::Duration delay) override;

  // Order-sensitive fold of every injection decision (and the send/timer it applied
  // to). Equal digests across two runs mean the fault schedules were identical.
  uint64_t schedule_digest() const { return digest_; }
  const Counters& counters() const { return counters_; }

 private:
  void Mix(uint64_t v);

  FaultProfile profile_;
  common::Rng rng_;
  bool armed_ = true;
  uint64_t digest_;
  Counters counters_;
};

}  // namespace fault

#endif  // SRC_FAULT_INJECTOR_H_
