#include "src/fault/injector.h"

#include "src/codec/codec.h"
#include "src/msg/message.h"

namespace fault {

namespace {

// SplitMix64 finalizer, used as the digest mixing step.
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Injector::Injector(uint64_t seed, uint64_t salt, const FaultProfile& profile)
    : profile_(profile),
      rng_(Mix64(seed * 0x9e3779b97f4a7c15ull ^ salt)),
      digest_(Mix64(seed ^ Mix64(salt))) {}

void Injector::Mix(uint64_t v) { digest_ = Mix64(digest_ ^ v); }

void Injector::OnSend(common::ProcessId from, common::ProcessId to, msg::Message& m,
                      sim::FaultPlan& plan) {
  counters_.sends_seen++;
  if (!armed_ || !profile_.AnyMessageFault()) {
    return;
  }
  // One fold per send regardless of outcome, so the digest pins the full decision
  // sequence (including "no fault"), not just the faults.
  Mix((static_cast<uint64_t>(from) << 32) | to);
  Mix(static_cast<uint64_t>(m.body.index()));

  if (profile_.drop > 0 && rng_.Chance(profile_.drop)) {
    plan.drop = true;
    counters_.dropped++;
    Mix(1);
    return;  // a lost message cannot also be duplicated or delayed
  }
  if (profile_.truncate > 0 && rng_.Chance(profile_.truncate)) {
    codec::Writer w;
    msg::Encode(w, m);
    // Cut strictly inside the buffer: [1, size-1] keeps at least the tag byte and
    // guarantees the prefix is a strict truncation.
    if (w.size() >= 2) {
      size_t cut = static_cast<size_t>(rng_.Range(1, static_cast<int64_t>(w.size()) - 1));
      codec::Reader r(w.buffer().data(), cut);
      msg::Message decoded;
      if (msg::Decode(r, decoded)) {
        // The prefix happened to parse as a complete message: deliver that instead
        // (a shorter-but-well-formed corruption).
        m = std::move(decoded);
        counters_.truncated++;
        Mix(2);
      } else {
        // Bounds-checked decoder rejected the prefix — the replica would discard the
        // frame. Model that as a corruption drop.
        plan.drop = true;
        plan.corrupted = true;
        counters_.corrupted++;
        Mix(3);
      }
      Mix(cut);
      return;
    }
  }
  if (profile_.duplicate > 0 && rng_.Chance(profile_.duplicate)) {
    plan.duplicates = static_cast<uint32_t>(rng_.Range(1, 2));
    plan.dup_delay = profile_.dup_delay_max > 0
                         ? rng_.Range(0, profile_.dup_delay_max)
                         : 0;
    counters_.duplicated++;
    Mix(4);
    Mix((static_cast<uint64_t>(plan.duplicates) << 32) ^
        static_cast<uint64_t>(plan.dup_delay));
  }
  if (profile_.delay > 0 && rng_.Chance(profile_.delay)) {
    plan.extra_delay = rng_.Range(profile_.delay_min, profile_.delay_max);
    counters_.delayed++;
    Mix(5);
    Mix(static_cast<uint64_t>(plan.extra_delay));
  }
}

common::Duration Injector::OnTimer(common::ProcessId p, common::Duration delay) {
  if (profile_.timer_skew <= 0 || profile_.timer_skew_frac <= 0) {
    return delay;
  }
  // Clock skew is a node property, not a network one: active even while message
  // faults are disarmed (heal windows).
  if (!rng_.Chance(profile_.timer_skew)) {
    return delay;
  }
  common::Duration skewed =
      delay + static_cast<common::Duration>(static_cast<double>(delay) *
                                            profile_.timer_skew_frac *
                                            rng_.NextDouble());
  counters_.timers_skewed++;
  Mix(6);
  Mix((static_cast<uint64_t>(p) << 48) ^ static_cast<uint64_t>(skewed));
  return skewed;
}

}  // namespace fault
