#include "src/fault/scenario.h"

namespace fault {

namespace {

constexpr common::Duration kMs = common::kMillisecond;
constexpr common::Duration kS = common::kSecond;

std::vector<Scenario> BuildScenarios() {
  std::vector<Scenario> packs;

  {
    // One replica dies mid-load, comes back 3s later with amnesia, and must
    // rejoin via the protocols' recovery paths without corrupting the history.
    Scenario s;
    s.name = "kill_one_replica";
    s.description = "crash one seed-chosen replica at 2s, restart it at 5s";
    Scenario::CrashEvent c;
    c.victim_rank = 0;
    c.at = 2 * kS;
    c.detection_timeout = 500 * kMs;
    c.restart = true;
    c.down_for = 3 * kS;
    s.crashes.push_back(c);
    s.run_for = 12 * kS;
    packs.push_back(std::move(s));
  }

  {
    // A region is cut off (both directions, all peers) while commands are in
    // flight; after the heal, commit latency must return to normal — the stuck
    // coordinator's commands are recovered via commit timeouts.
    Scenario s;
    s.name = "partition_region_mid_commit";
    s.description = "isolate one region for 2.5s starting at 2s, then heal";
    s.partition = true;
    s.partition_at = 2 * kS;
    s.partition_for = 2500 * kMs;
    s.run_for = 14 * kS;
    s.measure_from = 6 * kS;  // 1.5s of slack after the 4.5s heal
    s.max_commit_latency_after_heal = 3 * kS;
    packs.push_back(std::move(s));
  }

  {
    // No crashes: pure message-level chaos. Duplicates are posted outside the
    // FIFO clamp, so they both re-deliver and reorder — the dup-safety guards in
    // every handler are what this pack exercises.
    Scenario s;
    s.name = "dup_and_reorder";
    s.description = "15% duplicate + 10% delayed delivery for the whole run";
    s.profile.duplicate = 0.15;
    s.profile.dup_delay_max = 60 * kMs;
    s.profile.delay = 0.10;
    s.profile.delay_min = 5 * kMs;
    s.profile.delay_max = 120 * kMs;
    s.run_for = 10 * kS;
    packs.push_back(std::move(s));
  }

  {
    // Two staggered crash/restart cycles on different replicas: the second victim
    // goes down while the cluster is still absorbing the first restart.
    Scenario s;
    s.name = "rolling_restarts";
    s.description = "crash/restart two different replicas back to back";
    Scenario::CrashEvent a;
    a.victim_rank = 0;
    a.at = 2 * kS;
    a.detection_timeout = 500 * kMs;
    a.restart = true;
    a.down_for = 2500 * kMs;
    s.crashes.push_back(a);
    Scenario::CrashEvent b;
    b.victim_rank = 1;
    b.at = 6 * kS;
    b.detection_timeout = 500 * kMs;
    b.restart = true;
    b.down_for = 2500 * kMs;
    s.crashes.push_back(b);
    s.run_for = 15 * kS;
    packs.push_back(std::move(s));
  }

  {
    // §5.1-style grey failure: no process dies, but one directed link turns slow
    // and the victim's clock drifts; a light loss rate and payload corruption run
    // underneath. Faults heal at 6s; the post-heal latency gate must pass.
    Scenario s;
    s.name = "grey_failure_slow_link";
    s.description = "one slow link + timer skew + 2% loss, healing at 6s";
    s.slow_link = true;
    s.slow_from = 2 * kS;
    s.slow_for = 4 * kS;
    s.slow_extra = 150 * kMs;
    s.profile.drop = 0.02;
    s.profile.truncate = 0.01;
    s.profile.timer_skew = 0.3;
    s.profile.timer_skew_frac = 0.25;
    s.fault_from = 2 * kS;
    s.fault_until = 6 * kS;  // heal: drain must not race a lossy network
    s.run_for = 14 * kS;
    s.measure_from = 8 * kS;
    s.max_commit_latency_after_heal = 3 * kS;
    packs.push_back(std::move(s));
  }

  return packs;
}

}  // namespace

const std::vector<Scenario>& AllScenarios() {
  static const std::vector<Scenario>* packs =
      new std::vector<Scenario>(BuildScenarios());
  return *packs;
}

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& s : AllScenarios()) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

}  // namespace fault
