// Scenario packs: named, self-contained fault campaigns. Each pack declares the
// fault mix (fault::FaultProfile plus crash/partition/slow-link schedules), the
// workload that runs under it, and the acceptance gates the run must pass:
//   - checker-clean history (the §2 SMR specification, via chk::HistoryChecker);
//   - equal per-shard store digests across all full replicas after drain;
//   - no stuck client commands (every issued op completes or is accounted for,
//     and nothing gives up after bounded retries);
//   - bounded commit latency after the scheduled heal (packs with a heal).
// Packs are pure data; src/fault/campaign.cc interprets them against a seeded
// harness::Cluster, so one (pack, seed, protocol, partitions) tuple fully
// determines a run.
#ifndef SRC_FAULT_SCENARIO_H_
#define SRC_FAULT_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/fault/injector.h"

namespace fault {

struct Scenario {
  std::string name;
  std::string description;

  // Message-level fault mix, active in [fault_from, fault_until) sim time.
  // fault_until == 0 keeps the injector armed for the whole run (drain included) —
  // only safe for mixes that cannot lose messages (dup/delay/skew).
  FaultProfile profile;
  common::Time fault_from = 0;
  common::Time fault_until = 0;

  // Crash/restart schedule. victim_rank is an offset folded with the campaign seed
  // into a concrete site, so different seeds kill different replicas. A crash with
  // restart == false leaves the site down for the rest of the run (f must cover it).
  struct CrashEvent {
    uint32_t victim_rank = 0;
    common::Time at = 0;
    common::Duration detection_timeout = 0;
    bool restart = false;
    common::Duration down_for = 0;  // restart at `at + down_for`
  };
  std::vector<CrashEvent> crashes;

  // Directed partition: isolates one seed-chosen site from every peer (both
  // directions) during [partition_at, partition_at + partition_for), then heals.
  bool partition = false;
  common::Time partition_at = 0;
  common::Duration partition_for = 0;

  // Grey failure: one seed-chosen directed link gets slow_extra of added latency
  // during [slow_from, slow_from + slow_for), then heals.
  bool slow_link = false;
  common::Time slow_from = 0;
  common::Duration slow_for = 0;
  common::Duration slow_extra = 0;

  // Workload: one closed-loop client per site, each issuing ops_per_client §5.2
  // microbenchmark commands, with bounded client-side retry.
  uint64_t ops_per_client = 60;
  double conflict_rate = 0.3;
  common::Duration retry_timeout = 800 * common::kMillisecond;
  uint32_t max_client_retries = 12;

  // Sim time after which clients stop and the run drains.
  common::Duration run_for = 12 * common::kSecond;

  // Gate: p99 commit latency of ops submitted after every scheduled fault has
  // healed must stay under this bound (0 disables the gate; packs without a heal
  // leave it off).
  common::Duration max_commit_latency_after_heal = 0;
  // Start of the post-heal measurement window (0 = no window).
  common::Time measure_from = 0;
};

// The registry, in stable order (campaign sweeps iterate it).
const std::vector<Scenario>& AllScenarios();

// nullptr if unknown.
const Scenario* FindScenario(const std::string& name);

}  // namespace fault

#endif  // SRC_FAULT_SCENARIO_H_
