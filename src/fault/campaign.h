// Campaign runner: interprets a (pack, seed, protocol, partitions) tuple against a
// seeded harness::Cluster with a fault::Injector attached, evaluates the pack's
// acceptance gates, and returns a structured result. One tuple fully determines a
// run — two executions produce byte-identical fault schedules and store digests
// (the determinism test pins this).
#ifndef SRC_FAULT_CAMPAIGN_H_
#define SRC_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/injector.h"
#include "src/fault/scenario.h"
#include "src/harness/cluster.h"
#include "src/sim/simulator.h"

namespace fault {

struct RunSpec {
  std::string pack;
  uint64_t seed = 1;
  harness::Protocol protocol = harness::Protocol::kAtlas;
  uint32_t partitions = 1;
  // When non-empty, every site persists its commit log + snapshots under
  // data_dir/site-N (see src/dur) and scheduled restarts recover from disk
  // instead of restarting with amnesia. The pack's gates are unchanged — a
  // durable run must pass the same acceptance criteria.
  std::string data_dir;
};

struct RunResult {
  bool pass = false;
  std::vector<std::string> failures;

  // Determinism fingerprints: the injector's decision fold and a fold of every
  // full (non-restarted, alive) replica's per-shard (applied count, store digest).
  uint64_t schedule_digest = 0;
  uint64_t store_digest = 0;

  uint64_t completed = 0;
  uint64_t gave_up = 0;
  uint64_t stuck_clients = 0;
  Injector::Counters inject;
  sim::Simulator::DropStats drops;
  uint64_t delivered = 0;
  // p99 of the post-heal commit-latency window, microseconds (0 when the pack has
  // no latency gate or nothing was measured).
  uint64_t commit_p99_us = 0;
};

// Runs one scenario-pack instance. Unknown pack names fail with a message rather
// than aborting (the campaign tool surfaces them).
RunResult RunScenario(const RunSpec& spec);

// "atlas" / "epaxos" / "mencius" — the protocols the packs sweep.
std::optional<harness::Protocol> ParseProtocol(const std::string& name);
const char* ProtocolFlagName(harness::Protocol p);

// One-line rerun command for a failing tuple.
std::string RerunCommand(const RunSpec& spec);

}  // namespace fault

#endif  // SRC_FAULT_CAMPAIGN_H_
