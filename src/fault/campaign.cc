#include "src/fault/campaign.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/check.h"
#include "src/sim/regions.h"
#include "src/wl/workload.h"

namespace fault {

namespace {

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::optional<harness::Protocol> ParseProtocol(const std::string& name) {
  if (name == "atlas") {
    return harness::Protocol::kAtlas;
  }
  if (name == "epaxos") {
    return harness::Protocol::kEPaxos;
  }
  if (name == "mencius") {
    return harness::Protocol::kMencius;
  }
  return std::nullopt;
}

const char* ProtocolFlagName(harness::Protocol p) {
  switch (p) {
    case harness::Protocol::kAtlas:
      return "atlas";
    case harness::Protocol::kEPaxos:
      return "epaxos";
    case harness::Protocol::kMencius:
      return "mencius";
    default:
      return "?";
  }
}

std::string RerunCommand(const RunSpec& spec) {
  std::string cmd = "fault_campaign --pack " + spec.pack + " --seed " +
                    std::to_string(spec.seed) + " --protocol " +
                    ProtocolFlagName(spec.protocol) + " --partitions " +
                    std::to_string(spec.partitions);
  if (!spec.data_dir.empty()) {
    cmd += " --data-dir " + spec.data_dir;
  }
  return cmd;
}

RunResult RunScenario(const RunSpec& spec) {
  RunResult result;
  const Scenario* sc = FindScenario(spec.pack);
  if (sc == nullptr) {
    result.failures.push_back("unknown scenario pack: " + spec.pack);
    return result;
  }

  harness::ClusterOptions opts;
  opts.protocol = spec.protocol;
  opts.f = 1;
  opts.site_regions = sim::ThreeSites();
  opts.seed = spec.seed;
  opts.enable_checker = true;
  opts.partitions = spec.partitions;
  // Recovery machinery a fault run relies on: commit-outcome watches (so a lost
  // commit cannot wedge a replica) plus paced recovery scans after crashes.
  opts.commit_timeout = 1 * common::kSecond;
  opts.recovery_scan_interval = 400 * common::kMillisecond;
  opts.recovery_retry_interval = 800 * common::kMillisecond;
  opts.revoke_retry_interval = 400 * common::kMillisecond;
  opts.max_client_retries = sc->max_client_retries;
  if (!spec.data_dir.empty()) {
    // Keep tuples from clobbering each other when one campaign sweeps many
    // (pack, protocol, partitions, seed) combinations over a shared directory.
    opts.data_dir = spec.data_dir + "/" + sc->name + "-" +
                    ProtocolFlagName(spec.protocol) + "-p" +
                    std::to_string(spec.partitions) + "-s" +
                    std::to_string(spec.seed);
  }

  harness::Cluster cluster(opts);
  const uint32_t n = cluster.n();

  // The injector's stream is keyed off (seed, pack, protocol, partitions): every
  // tuple draws an unrelated deterministic schedule.
  uint64_t salt = Fnv1a(sc->name) ^ (static_cast<uint64_t>(spec.protocol) << 8) ^
                  spec.partitions;
  Injector injector(spec.seed, salt, sc->profile);
  sim::Simulator& sim = cluster.simulator();
  sim.SetFaultHook(&injector);

  // Message-fault arming window.
  if (sc->fault_from > 0) {
    injector.Disarm();
    sim.Post(sc->fault_from, [&injector]() { injector.Arm(); });
  }
  if (sc->fault_until > 0) {
    sim.Post(sc->fault_until, [&injector]() { injector.Disarm(); });
  }

  // Crash / restart schedule; victims rotate with the seed.
  for (const Scenario::CrashEvent& c : sc->crashes) {
    common::ProcessId victim =
        static_cast<common::ProcessId>((spec.seed + c.victim_rank) % n);
    cluster.ScheduleCrash(victim, c.at, c.detection_timeout);
    if (c.restart) {
      cluster.ScheduleRestart(victim, c.at + c.down_for);
    }
  }

  // Directed region partition (both directions, all peers), with a scheduled heal.
  if (sc->partition) {
    common::ProcessId victim = static_cast<common::ProcessId>(spec.seed % n);
    sim.Post(sc->partition_at, [&sim, victim, n]() {
      for (common::ProcessId p = 0; p < n; p++) {
        if (p != victim) {
          sim.SetLinkDown(victim, p, true);
          sim.SetLinkDown(p, victim, true);
        }
      }
    });
    sim.Post(sc->partition_at + sc->partition_for, [&sim, victim, n]() {
      for (common::ProcessId p = 0; p < n; p++) {
        if (p != victim) {
          sim.SetLinkDown(victim, p, false);
          sim.SetLinkDown(p, victim, false);
        }
      }
    });
  }

  // Grey failure: one seed-chosen directed link turns slow, then heals.
  if (sc->slow_link) {
    common::ProcessId a = static_cast<common::ProcessId>(spec.seed % n);
    common::ProcessId b = static_cast<common::ProcessId>((spec.seed + 1) % n);
    common::Duration extra = sc->slow_extra;
    sim.Post(sc->slow_from, [&sim, a, b, extra]() { sim.SetLinkDelay(a, b, extra); });
    sim.Post(sc->slow_from + sc->slow_for,
             [&sim, a, b]() { sim.SetLinkDelay(a, b, 0); });
  }

  // Workload: one closed-loop client per site, bounded retry.
  std::shared_ptr<wl::Workload> workload;
  if (spec.partitions > 1) {
    workload = std::make_shared<wl::PartitionedMicroWorkload>(
        spec.partitions, sc->conflict_rate, /*value_size=*/16);
  } else {
    workload =
        std::make_shared<wl::MicroWorkload>(sc->conflict_rate, /*value_size=*/16);
  }
  for (uint32_t i = 0; i < n; i++) {
    harness::ClientSpec client;
    client.region = opts.site_regions[i];
    client.workload = workload;
    client.max_ops = sc->ops_per_client;
    client.retry_timeout = sc->retry_timeout;
    cluster.AddClients(client, 1);
  }

  if (sc->measure_from > 0) {
    cluster.SetMeasureWindow(sc->measure_from, sc->run_for);
  }

  cluster.Start();
  cluster.RunFor(sc->run_for);
  cluster.StopClients();
  chk::CheckResult check = cluster.Finish(/*abort_on_error=*/false);
  sim.SetFaultHook(nullptr);

  // --- Gate evaluation -----------------------------------------------------
  result.failures = check.errors;

  // Debug aid: FAULT_DUMP_TRACE=<key-prefix> dumps the per-process execution
  // order of matching keys after a failing run (not part of any gate).
  if (const char* want = std::getenv("FAULT_DUMP_TRACE")) {
    for (const harness::Cluster::ExecRecord& r : cluster.ExecTrace()) {
      if (r.cmd.key.rfind(want, 0) == 0) {
        std::fprintf(stderr, "[trace] p=%u dot=%u:%llu key=%s client=%llu seq=%llu\n",
                     r.process, r.dot.proc,
                     static_cast<unsigned long long>(r.dot.seq), r.cmd.key.c_str(),
                     static_cast<unsigned long long>(r.cmd.client),
                     static_cast<unsigned long long>(r.cmd.seq));
      }
    }
  }

  result.stuck_clients = cluster.InFlightClients();
  if (result.stuck_clients > 0) {
    result.failures.push_back("liveness: " + std::to_string(result.stuck_clients) +
                              " client(s) wedged on an operation after drain");
  }

  // Equal per-shard digests across every full replica (alive and never restarted):
  // after a complete drain they must agree on the state. Applied *counts* may
  // legitimately differ — a dropped commit of a command that conflicts with nothing
  // applied later (e.g. a read) is never pulled in by dependency chains, so a
  // replica can finish one command short with an identical digest. Counts still
  // feed the determinism fold: same seed must reproduce the same counts.
  uint64_t fold = Mix64(spec.seed ^ Fnv1a(sc->name));
  for (uint32_t s = 0; s < spec.partitions; s++) {
    bool have_ref = false;
    uint64_t ref_digest = 0;
    for (common::ProcessId p = 0; p < n; p++) {
      if (sim.IsCrashed(p) || cluster.Restarted(p)) {
        continue;
      }
      uint64_t count = cluster.replica(p).applied_count(s);
      uint64_t digest = cluster.store(p, s).StateDigest();
      fold = Mix64(fold ^ count);
      fold = Mix64(fold ^ digest);
      if (!have_ref) {
        have_ref = true;
        ref_digest = digest;
      } else if (digest != ref_digest) {
        result.failures.push_back(
            "convergence: shard " + std::to_string(s) + " replica " +
            std::to_string(p) + " digest " + std::to_string(digest) +
            " vs reference " + std::to_string(ref_digest));
      }
    }
  }
  result.store_digest = fold;

  harness::Metrics metrics = cluster.Snapshot();
  if (sc->max_commit_latency_after_heal > 0 && metrics.commit_latency.count() > 0) {
    result.commit_p99_us = static_cast<uint64_t>(metrics.commit_latency.Percentile(99));
    if (result.commit_p99_us >
        static_cast<uint64_t>(sc->max_commit_latency_after_heal)) {
      result.failures.push_back(
          "latency: post-heal commit p99 " + std::to_string(result.commit_p99_us) +
          "us exceeds the pack bound " +
          std::to_string(sc->max_commit_latency_after_heal) + "us");
    }
  }

  result.schedule_digest = injector.schedule_digest();
  result.completed = cluster.total_completed();
  result.gave_up = cluster.gave_up();
  result.inject = injector.counters();
  result.drops = sim.drop_stats();
  result.delivered = sim.messages_delivered();
  result.pass = result.failures.empty();
  return result;
}

}  // namespace fault
