#include "src/harness/linkmon.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/sim/regions.h"

namespace harness {

namespace {

// Minimum number of sites covering all edges in `links` (exact for the tiny failed-link
// graphs this study produces; greedy fallback beyond 2).
uint32_t MinSiteCover(const std::set<std::pair<uint32_t, uint32_t>>& links) {
  if (links.empty()) {
    return 0;
  }
  // Try 1 site: some site incident to every failed link.
  std::map<uint32_t, size_t> incidence;
  for (const auto& [a, b] : links) {
    incidence[a]++;
    incidence[b]++;
  }
  for (const auto& [site, count] : incidence) {
    if (count == links.size()) {
      return 1;
    }
  }
  // Try 2 sites.
  for (const auto& [s1, c1] : incidence) {
    for (const auto& [s2, c2] : incidence) {
      if (s1 >= s2) {
        continue;
      }
      bool covers = true;
      for (const auto& [a, b] : links) {
        if (a != s1 && b != s1 && a != s2 && b != s2) {
          covers = false;
          break;
        }
      }
      if (covers) {
        return 2;
      }
    }
  }
  // Greedy upper bound.
  std::set<std::pair<uint32_t, uint32_t>> remaining = links;
  uint32_t cover = 0;
  while (!remaining.empty()) {
    std::map<uint32_t, size_t> inc;
    for (const auto& [a, b] : remaining) {
      inc[a]++;
      inc[b]++;
    }
    uint32_t best = inc.begin()->first;
    for (const auto& [site, count] : inc) {
      if (count > inc[best]) {
        best = site;
      }
    }
    for (auto it = remaining.begin(); it != remaining.end();) {
      if (it->first == best || it->second == best) {
        it = remaining.erase(it);
      } else {
        ++it;
      }
    }
    cover++;
  }
  return cover;
}

}  // namespace

LinkMonResult RunLinkFailureStudy(const LinkMonOptions& options) {
  common::Rng rng(options.seed);
  LinkMonResult result;
  const common::Time campaign = static_cast<common::Time>(options.days) * 24 * 60 * 60 *
                                common::kSecond;

  // 1. Generate site degradation episodes.
  uint32_t episodes = 0;
  {
    // Poisson(mean) via sequential Bernoulli thinning over days.
    double mean = options.episodes_mean;
    double p_per_day = mean / static_cast<double>(options.days);
    for (uint32_t d = 0; d < options.days; d++) {
      if (rng.Chance(p_per_day)) {
        episodes++;
        EpisodeRecord e;
        e.site = static_cast<uint32_t>(rng.Below(options.sites));
        double log_min = std::log(static_cast<double>(options.episode_min));
        double log_max = std::log(static_cast<double>(options.episode_max));
        double u = rng.NextDouble();
        e.duration = static_cast<common::Duration>(
            std::exp(log_min + u * (log_max - log_min)));
        e.start = static_cast<common::Time>(d) * 24 * 60 * 60 * common::kSecond +
                  static_cast<common::Time>(rng.Below(24 * 60 * 60)) * common::kSecond;
        result.episodes.push_back(e);
      }
    }
  }

  // 2. Background blips: isolated single-ping latencies above 3s on random links.
  const uint64_t links = static_cast<uint64_t>(options.sites) *
                         (options.sites - 1) / 2;
  const uint64_t total_pings = links * static_cast<uint64_t>(campaign / common::kSecond);
  // Expected blips = total_pings * p; sample the count then place uniformly.
  double expected = static_cast<double>(total_pings) * options.background_blip_per_ping;
  uint32_t blips = 0;
  {
    // Poisson sampling via Knuth for small expected counts.
    double l = std::exp(-expected);
    double p = 1.0;
    while (true) {
      p *= rng.NextDouble();
      if (p <= l) {
        break;
      }
      blips++;
    }
  }
  result.background_blips = blips;

  struct Failure {
    common::Time start;
    common::Time end;
    uint32_t a, b;  // link endpoints
  };
  std::vector<std::vector<Failure>> failures(options.thresholds.size());

  for (uint32_t i = 0; i < blips; i++) {
    common::Time t = static_cast<common::Time>(rng.Below(
                         static_cast<uint64_t>(campaign / common::kSecond))) *
                     common::kSecond;
    uint32_t a = static_cast<uint32_t>(rng.Below(options.sites));
    uint32_t b = static_cast<uint32_t>(rng.Below(options.sites));
    if (a == b) {
      b = (b + 1) % options.sites;
    }
    // Blips are full timeouts: latency in the 11-30s range (crosses every threshold).
    double latency_s = 11.0 + std::min(rng.Pareto(1.0, 1.3), 19.0);
    for (size_t ti = 0; ti < options.thresholds.size(); ti++) {
      double thr_s = static_cast<double>(options.thresholds[ti]) /
                     static_cast<double>(common::kSecond);
      if (latency_s > thr_s) {
        failures[ti].push_back(
            {t + options.thresholds[ti],
             t + static_cast<common::Duration>(latency_s * common::kSecond),
             std::min(a, b), std::max(a, b)});
      }
    }
  }

  // 3. Episode sampling: during an episode every link incident to the site draws a
  // latency per ping; consecutive over-threshold pings merge into failure intervals.
  for (const auto& e : result.episodes) {
    for (uint32_t other = 0; other < options.sites; other++) {
      if (other == e.site) {
        continue;
      }
      uint32_t a = std::min(e.site, other);
      uint32_t b = std::max(e.site, other);
      std::vector<common::Time> over_start(options.thresholds.size(), -1);
      for (common::Time t = e.start; t < e.start + e.duration; t += common::kSecond) {
        double latency_s = std::min(rng.Exponential(options.episode_latency_mean_s),
                                    options.episode_latency_cap_s);
        for (size_t ti = 0; ti < options.thresholds.size(); ti++) {
          double thr_s = static_cast<double>(options.thresholds[ti]) /
                         static_cast<double>(common::kSecond);
          bool over = latency_s > thr_s;
          if (over && over_start[ti] < 0) {
            over_start[ti] = t;
          } else if (!over && over_start[ti] >= 0) {
            // The link looks failed from threshold expiry of the first missed ping
            // until the last over-threshold ping (t - 1s) also resolves at its own
            // threshold expiry.
            failures[ti].push_back({over_start[ti] + options.thresholds[ti],
                                    t + options.thresholds[ti], a, b});
            over_start[ti] = -1;
          }
        }
      }
      for (size_t ti = 0; ti < options.thresholds.size(); ti++) {
        if (over_start[ti] >= 0) {
          failures[ti].push_back({over_start[ti] + options.thresholds[ti],
                                  e.start + e.duration + options.thresholds[ti], a, b});
        }
      }
    }
  }

  // 4. Sweep each threshold's failure intervals to compute simultaneity stats.
  result.f_bound = 0;
  for (size_t ti = 0; ti < options.thresholds.size(); ti++) {
    ThresholdSummary s;
    s.threshold = options.thresholds[ti];
    struct Edge {
      common::Time t;
      int delta;
      uint32_t a, b;
    };
    std::vector<Edge> edges;
    for (const auto& f : failures[ti]) {
      if (f.end <= f.start) {
        continue;
      }
      edges.push_back({f.start, +1, f.a, f.b});
      edges.push_back({f.end, -1, f.a, f.b});
      s.failed_link_seconds += static_cast<uint64_t>((f.end - f.start) / common::kSecond);
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
      if (x.t != y.t) {
        return x.t < y.t;
      }
      return x.delta < y.delta;  // process closings first
    });
    std::map<std::pair<uint32_t, uint32_t>, int> active;
    uint32_t current = 0;
    bool in_event = false;
    for (const auto& ed : edges) {
      auto key = std::make_pair(ed.a, ed.b);
      active[key] += ed.delta;
      if (active[key] <= 0) {
        active.erase(key);
      }
      std::set<std::pair<uint32_t, uint32_t>> live;
      for (const auto& [k, v] : active) {
        live.insert(k);
      }
      current = static_cast<uint32_t>(live.size());
      if (current > 0 && !in_event) {
        in_event = true;
        s.failure_events++;
      } else if (current == 0) {
        in_event = false;
      }
      s.max_simultaneous = std::max(s.max_simultaneous, current);
      s.max_sites_to_cover = std::max(s.max_sites_to_cover, MinSiteCover(live));
    }
    result.f_bound = std::max(result.f_bound, s.max_sites_to_cover);
    result.per_threshold.push_back(s);
  }
  return result;
}

std::string FormatLinkMonReport(const LinkMonOptions& options, const LinkMonResult& r) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "Link-failure study: %u sites, %u days, 1 ping/s per link\n",
                options.sites, options.days);
  out += buf;
  std::snprintf(buf, sizeof(buf), "Degradation episodes: %zu, background blips: %u\n",
                r.episodes.size(), r.background_blips);
  out += buf;
  for (const auto& e : r.episodes) {
    std::snprintf(buf, sizeof(buf), "  day %lld site %s slow for %llds\n",
                  static_cast<long long>(e.start / common::kSecond / 86400),
                  sim::AllRegions()[e.site % sim::AllRegions().size()].label,
                  static_cast<long long>(e.duration / common::kSecond));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%-10s %10s %14s %16s %12s\n", "threshold", "events",
                "max-simult", "failed-link-sec", "sites-cover");
  out += buf;
  for (const auto& s : r.per_threshold) {
    std::snprintf(buf, sizeof(buf), "%7llds %10u %14u %16llu %12u\n",
                  static_cast<long long>(s.threshold / common::kSecond),
                  s.failure_events, s.max_simultaneous,
                  static_cast<unsigned long long>(s.failed_link_seconds),
                  s.max_sites_to_cover);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "=> crashing %u site(s) always covers all slow links: f <= %u held "
                "throughout the campaign\n",
                r.f_bound, r.f_bound);
  out += buf;
  return out;
}

}  // namespace harness
