// Topology helpers: latency-derived quorum geometry, optimal-latency bounds and the
// fairest-leader rule used when benchmarking FPaxos (§5).
#ifndef SRC_HARNESS_TOPOLOGY_H_
#define SRC_HARNESS_TOPOLOGY_H_

#include <memory>
#include <vector>

#include "src/common/types.h"
#include "src/sim/latency.h"

namespace harness {

// Builds the WAN latency model for sites placed at the given regions (indexes into
// sim::AllRegions()).
std::unique_ptr<sim::MatrixLatency> BuildLatency(const std::vector<size_t>& site_regions,
                                                 double jitter_frac);

// Peers of site i sorted by increasing one-way base latency (ties by id; i excluded).
std::vector<common::ProcessId> ByProximity(const sim::LatencyModel& latency, uint32_t n,
                                           common::ProcessId i);

// One-way base delay between a client region and a site region (same region: 1ms RTT/2
// floor, modeling co-located but distinct machines).
common::Duration ClientOneWay(size_t client_region, size_t site_region);

// The paper's optimal latency for leaderless protocols (Figure 5, black bar): average
// over clients of round trip to the closest site plus that site's round trip to its
// closest majority quorum.
common::Duration OptimalLatency(const std::vector<size_t>& site_regions,
                                const std::vector<size_t>& client_regions);

// Index of the closest deployed site for a client region.
size_t ClosestSite(size_t client_region, const std::vector<size_t>& site_regions);

// The FPaxos leader: the site minimizing the standard deviation of client-perceived
// latency (client->leader RTT + leader->phase-2-quorum RTT), per §5.
common::ProcessId FairestLeader(const std::vector<size_t>& site_regions,
                                const std::vector<size_t>& client_regions,
                                size_t phase2_size);

}  // namespace harness

#endif  // SRC_HARNESS_TOPOLOGY_H_
