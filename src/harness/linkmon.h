// Link-failure measurement study (Figure 3 / §5.1).
//
// The paper ran a 3-month ping campaign among 17 GCP sites (1 ping per second per
// link) and counted simultaneous link failures under timeout thresholds of 3s/5s/10s,
// concluding that timeouts only ever clustered on links incident to a single site
// (hence f <= 1 in practice).
//
// Substitution (DESIGN.md): we cannot rerun GCP for three months, so we generate a
// synthetic campaign with the same structure the paper reports:
//   - rare site-level degradation episodes (all links incident to one site become slow
//     for minutes-to-hours), matching the two events the paper observed (QC on Nov 7,
//     TW on Dec 8);
//   - a heavy-tailed per-ping background jitter that occasionally crosses the lowest
//     threshold on isolated links.
// The monitor pipeline (threshold sweep, simultaneous-failure counting, minimum
// site-cover bound for f) is exercised end to end on this trace.
#ifndef SRC_HARNESS_LINKMON_H_
#define SRC_HARNESS_LINKMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace harness {

struct LinkMonOptions {
  uint64_t seed = 3;
  uint32_t sites = 17;
  uint32_t days = 90;
  // Site degradation episodes per campaign (Poisson mean). The paper observed two
  // (QC for ~2h, TW for ~2min).
  double episodes_mean = 2.0;
  // Episode duration: log-uniform between these bounds.
  common::Duration episode_min = 2 * 60 * common::kSecond;
  common::Duration episode_max = 3 * 60 * 60 * common::kSecond;
  // During an episode, per-ping latency on affected links ~ Exponential(mean), capped:
  // the paper's degradations were "slow links" in the seconds range — they show at the
  // 3s/5s thresholds but (almost) never at 10s.
  double episode_latency_mean_s = 4.0;
  double episode_latency_cap_s = 9.5;
  // Background: per-link probability that a given ping times out entirely (isolated
  // single-link blips; these are what the 10s threshold still sees).
  double background_blip_per_ping = 2e-9;
  std::vector<common::Duration> thresholds = {3 * common::kSecond, 5 * common::kSecond,
                                              10 * common::kSecond};
};

struct ThresholdSummary {
  common::Duration threshold = 0;
  uint32_t failure_events = 0;      // maximal intervals with >= 1 failed link
  uint32_t max_simultaneous = 0;    // peak number of concurrently failed links
  uint64_t failed_link_seconds = 0;
  uint32_t max_sites_to_cover = 0;  // minimum site cover of failed links, peak (=> f)
};

struct EpisodeRecord {
  uint32_t site = 0;
  common::Time start = 0;
  common::Duration duration = 0;
};

struct LinkMonResult {
  std::vector<ThresholdSummary> per_threshold;
  std::vector<EpisodeRecord> episodes;
  uint32_t background_blips = 0;
  // Smallest k such that, at every instant, crashing k sites would cover all slow
  // links (the paper's bound on f), under the lowest threshold.
  uint32_t f_bound = 0;
};

LinkMonResult RunLinkFailureStudy(const LinkMonOptions& options);

std::string FormatLinkMonReport(const LinkMonOptions& options, const LinkMonResult& r);

}  // namespace harness

#endif  // SRC_HARNESS_LINKMON_H_
