#include "src/harness/topology.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/sim/regions.h"

namespace harness {

std::unique_ptr<sim::MatrixLatency> BuildLatency(const std::vector<size_t>& site_regions,
                                                 double jitter_frac) {
  return std::make_unique<sim::MatrixLatency>(sim::OneWayMatrix(site_regions),
                                              jitter_frac);
}

std::vector<common::ProcessId> ByProximity(const sim::LatencyModel& latency, uint32_t n,
                                           common::ProcessId i) {
  std::vector<common::ProcessId> peers;
  for (common::ProcessId p = 0; p < n; p++) {
    if (p != i) {
      peers.push_back(p);
    }
  }
  std::sort(peers.begin(), peers.end(),
            [&](common::ProcessId a, common::ProcessId b) {
              common::Duration da = latency.BasePropagation(i, a);
              common::Duration db = latency.BasePropagation(i, b);
              if (da != db) {
                return da < db;
              }
              return a < b;
            });
  return peers;
}

common::Duration ClientOneWay(size_t client_region, size_t site_region) {
  const auto& regions = sim::AllRegions();
  common::Duration rtt =
      sim::ModeledRtt(regions[client_region], regions[site_region]);
  if (client_region == site_region) {
    rtt = common::kMillisecond;  // distinct machines in the same data center
  }
  return rtt / 2;
}

size_t ClosestSite(size_t client_region, const std::vector<size_t>& site_regions) {
  CHECK(!site_regions.empty());
  size_t best = 0;
  common::Duration best_d = ClientOneWay(client_region, site_regions[0]);
  for (size_t s = 1; s < site_regions.size(); s++) {
    common::Duration d = ClientOneWay(client_region, site_regions[s]);
    if (d < best_d) {
      best_d = d;
      best = s;
    }
  }
  return best;
}

namespace {

// Round trip from site s to its closest quorum of `quorum_size` sites (including s).
common::Duration QuorumRtt(const std::vector<size_t>& site_regions, size_t s,
                           size_t quorum_size) {
  const auto& regions = sim::AllRegions();
  std::vector<common::Duration> rtts;
  for (size_t j = 0; j < site_regions.size(); j++) {
    if (j == s) {
      continue;
    }
    rtts.push_back(sim::ModeledRtt(regions[site_regions[s]], regions[site_regions[j]]));
  }
  std::sort(rtts.begin(), rtts.end());
  CHECK_GE(quorum_size, 1u);
  if (quorum_size == 1) {
    return 0;
  }
  // The quorum includes s itself, so we need quorum_size - 1 peers; latency is the
  // round trip to the farthest of them.
  CHECK_LE(quorum_size - 1, rtts.size());
  return rtts[quorum_size - 2];
}

}  // namespace

common::Duration OptimalLatency(const std::vector<size_t>& site_regions,
                                const std::vector<size_t>& client_regions) {
  size_t majority = site_regions.size() / 2 + 1;
  double sum = 0;
  for (size_t cr : client_regions) {
    size_t s = ClosestSite(cr, site_regions);
    common::Duration client_rtt = 2 * ClientOneWay(cr, site_regions[s]);
    sum += static_cast<double>(client_rtt + QuorumRtt(site_regions, s, majority));
  }
  return static_cast<common::Duration>(sum / static_cast<double>(client_regions.size()));
}

common::ProcessId FairestLeader(const std::vector<size_t>& site_regions,
                                const std::vector<size_t>& client_regions,
                                size_t phase2_size) {
  common::ProcessId best = 0;
  double best_stddev = -1;
  for (size_t L = 0; L < site_regions.size(); L++) {
    common::Duration quorum_rtt = QuorumRtt(site_regions, L, phase2_size);
    std::vector<double> lats;
    for (size_t cr : client_regions) {
      common::Duration client_rtt = 2 * ClientOneWay(cr, site_regions[L]);
      lats.push_back(static_cast<double>(client_rtt + quorum_rtt));
    }
    double mean = 0;
    for (double v : lats) {
      mean += v;
    }
    mean /= static_cast<double>(lats.size());
    double var = 0;
    for (double v : lats) {
      var += (v - mean) * (v - mean);
    }
    double stddev = std::sqrt(var / static_cast<double>(lats.size()));
    if (best_stddev < 0 || stddev < best_stddev) {
      best_stddev = stddev;
      best = static_cast<common::ProcessId>(L);
    }
  }
  return best;
}

}  // namespace harness
