// Simulated cluster harness: builds a protocol deployment over the WAN model, attaches
// closed-loop clients, failure injection and metrics — the machinery behind every
// benchmark and integration test.
#ifndef SRC_HARNESS_CLUSTER_H_
#define SRC_HARNESS_CLUSTER_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/chk/checker.h"
#include "src/common/histogram.h"
#include "src/common/timeseries.h"
#include "src/common/types.h"
#include "src/kvs/kvs.h"
#include "src/sim/simulator.h"
#include "src/smr/conflict_index.h"
#include "src/smr/deployment.h"
#include "src/smr/engine.h"
#include "src/wl/workload.h"

namespace harness {

// Protocol selection lives with the replica assembly layer now; the harness names
// are aliases so existing call sites (tests, benches) read unchanged.
using Protocol = smr::Protocol;
using smr::ProtocolName;

struct ClusterOptions {
  Protocol protocol = Protocol::kAtlas;
  uint32_t f = 1;
  bool nfr = false;
  bool prune_slow_path = true;
  smr::IndexMode index_mode = smr::IndexMode::kCompressed;

  // Site placement: indexes into sim::AllRegions().
  std::vector<size_t> site_regions;

  uint64_t seed = 1;
  double jitter_frac = 0.02;
  bool fifo_links = true;

  // Egress model (0 = unconstrained). ~128 MB/s with a 25us per-message CPU cost
  // approximates the paper's n1-standard-8 nodes closely enough to reproduce the
  // saturation shapes of Figures 6 and 7.
  double egress_bytes_per_sec = 0;
  common::Duration per_message_cost = 0;

  // FPaxos/Paxos leader; kInvalidProcess selects the fairest site automatically.
  common::ProcessId leader = common::kInvalidProcess;

  // Record histories and verify the SMR specification at Finish().
  bool enable_checker = false;

  // Recovery knobs forwarded to every site's deployment (see DeploymentOptions);
  // all 0 keeps the failure-free defaults.
  common::Duration commit_timeout = 0;
  common::Duration recovery_scan_interval = 0;
  common::Duration recovery_retry_interval = 0;
  common::Duration revoke_retry_interval = 0;

  // Bounds client-side resubmission (ClientSpec::retry_timeout): after this many
  // retries of one operation the client gives up on it and moves on, bumping
  // gave_up() — which Finish() reports as a liveness failure when the checker is
  // enabled. 0 keeps the legacy unbounded behaviour.
  uint32_t max_client_retries = 0;

  // Durable persistence (see src/dur): when non-empty, every site commit-logs
  // its executed commands and snapshots under data_dir/site-N, and a scheduled
  // restart recovers that site's stores from disk (snapshot + log tail) instead
  // of rebuilding them empty. Simulations default to no real fsync — the
  // simulated crash model only needs the on-disk bytes, not their ordering
  // against power loss; the TCP runtime picks its own mode.
  std::string data_dir;
  uint64_t snapshot_every = 4096;
  dur::FsyncMode fsync_mode = dur::FsyncMode::kNone;

  // Partitioned replicas: each site runs `partitions` independent engines behind a
  // smr::ShardedEngine, with per-(site, partition) stores and per-partition checkers.
  // partitions == 1 builds exactly the classic single-engine deployment (seeded runs
  // stay byte-identical; the determinism pins enforce this).
  uint32_t partitions = 1;
  // Submission batching on sharded replicas (ignored when partitions == 1, which
  // must stay identical to the unbatched seed): commands arriving at one (site,
  // partition) within the window coalesce into a single kBatch protocol command.
  common::Duration batch_window = 0;
  size_t batch_max = 64;
};

struct ClientSpec {
  size_t region = 0;  // index into sim::AllRegions()
  std::shared_ptr<wl::Workload> workload;
  uint64_t max_ops = ~uint64_t{0};
  common::Duration think_time = 0;
  // Client-side retry: if an operation does not complete within this delay, it is
  // resubmitted under a fresh sequence number (at-least-once). 0 disables retries.
  common::Duration retry_timeout = 0;
};

struct Metrics {
  common::Histogram latency;         // client-perceived, within the measure window
  common::Histogram commit_latency;  // submit -> commit at the submitting site
  // Unweighted average of per-client mean latencies (closed-loop clients complete ops
  // at different rates, so the per-op mean under-weights slow clients; the paper's
  // "average latency" and optimal bars are per-client).
  double per_client_mean_us = 0;
  uint64_t completed_in_window = 0;
  double window_seconds = 0;
  uint64_t bytes_sent = 0;     // total wire bytes, whole run
  double fast_path_ratio = 0;  // over coordinated commands, whole run
  uint64_t fast_paths = 0;
  uint64_t slow_paths = 0;
  uint64_t total_executions = 0;  // engine-level; a kBatch counts once
  size_t max_batch = 0;
  // Partitioned deployments: engine stats aggregated across sites, one entry per
  // partition (empty when partitions == 1). Load balance across shards is the
  // fig-shard sweep's sanity metric.
  std::vector<smr::EngineStats> per_shard;

  double ThroughputOpsPerSec() const {
    return window_seconds > 0 ? static_cast<double>(completed_in_window) / window_seconds
                              : 0;
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts);
  ~Cluster();

  // Adds `count` clients with the given spec. Call before Start().
  void AddClients(const ClientSpec& spec, size_t count);

  // Builds engines and starts client loops. Call once.
  void Start();

  // Advances simulated time.
  void RunFor(common::Duration d);

  // Sets the measurement window for latency/throughput metrics (absolute sim times).
  void SetMeasureWindow(common::Time start, common::Time end);

  // Crashes a site at `at`; all surviving replicas suspect it (and clients of that
  // site reconnect to their closest alive site) after `detection_timeout`.
  void ScheduleCrash(common::ProcessId site, common::Time at,
                     common::Duration detection_timeout);

  // Restarts a previously crashed site at `at`: tears down its deployment, builds a
  // fresh one (crash-stop with amnesia), seeds the dead incarnation's stable-storage
  // floors, gives the new incarnation its own checker column, and notifies the
  // surviving replicas (OnRestore) so they clear suspicion and take over recovery of
  // the dead incarnation's abandoned commands.
  void ScheduleRestart(common::ProcessId site, common::Time at);

  // Stops clients from issuing new commands (lets the system drain).
  void StopClients();

  Metrics Snapshot() const;
  // Per-site completed ops, 1-second buckets (Figure 8).
  const common::TimeSeries& SiteThroughput(common::ProcessId site) const;
  common::TimeSeries AggregateThroughput() const;

  // Drains in-flight work and validates the execution history (requires
  // enable_checker); aborts the process on violation when `abort_on_error`.
  chk::CheckResult Finish(bool abort_on_error = true);

  // Execution trace (recorded when the checker is enabled), for debugging and tests.
  struct ExecRecord {
    common::ProcessId process;
    common::Dot dot;
    smr::Command cmd;
  };
  const std::vector<ExecRecord>& ExecTrace() const { return exec_trace_; }

  sim::Simulator& simulator() { return *sim_; }
  smr::Engine& engine(common::ProcessId p) { return replicas_[p]->engine(); }
  smr::Deployment& replica(common::ProcessId p) { return *replicas_[p]; }
  // Per-(site, partition) service replica. The one-argument form is partition 0 —
  // the whole store in unsharded deployments. The harness always deploys the
  // default state machine, so the KvStore downcast is safe.
  const kvs::KvStore& store(common::ProcessId p, uint32_t shard = 0) const {
    return static_cast<const kvs::KvStore&>(replicas_[p]->store(shard));
  }
  uint32_t n() const { return static_cast<uint32_t>(opts_.site_regions.size()); }
  uint32_t partitions() const { return opts_.partitions; }
  common::ProcessId leader() const { return leader_; }
  uint64_t total_completed() const { return total_completed_; }
  // Operations abandoned after max_client_retries unsuccessful resubmissions.
  uint64_t gave_up() const { return gave_up_; }
  // Whether the site has been through a crash/restart cycle (its store digests are
  // not comparable to full replicas; see Finish).
  bool Restarted(common::ProcessId site) const { return site_restarted_[site]; }
  // Clients still waiting on an operation. Nonzero after Finish() means an op is
  // wedged: neither completed, resubmitted, nor given up.
  uint64_t InFlightClients() const {
    uint64_t stuck = 0;
    for (const auto& c : clients_) {
      if (c.in_flight) {
        stuck++;
      }
    }
    return stuck;
  }

 private:
  struct Client {
    uint64_t id = 0;
    size_t region = 0;
    size_t site = 0;  // index into site_regions
    std::shared_ptr<wl::Workload> workload;
    uint64_t next_seq = 1;
    uint64_t issued = 0;
    uint64_t max_ops = ~uint64_t{0};
    common::Duration think_time = 0;
    common::Duration retry_timeout = 0;
    uint64_t attempts = 0;  // retry-timeout resubmissions of the current op
    bool in_flight = false;
    bool stopped = false;
    common::Time submit_time = 0;     // measured from client submit
    smr::Command current;             // in-flight command
    double window_latency_sum = 0;    // within the measure window
    uint64_t window_latency_count = 0;
  };

  void BuildReplicas();
  smr::DeploymentOptions MakeDeploymentOptions(common::ProcessId site) const;
  void RestartSite(common::ProcessId site);
  void IssueNext(uint64_t client_index);
  void OnExecuted(common::ProcessId p, const common::Dot& dot, const smr::Command& cmd);
  // Accounts one applied (non-composite) command at site p: checker history,
  // execution trace, client completion. Store apply and applied counts already
  // happened inside the site's Deployment.
  void AccountExecuted(common::ProcessId p, const common::Dot& dot, uint32_t shard,
                       const smr::Command& cmd);
  void OnCommitted(common::ProcessId p, const common::Dot& dot, const smr::Command& cmd,
                   bool fast);
  void CommitOne(common::ProcessId p, const smr::Command& cmd);
  void OnDropped(common::ProcessId p, const common::Dot& dot, const smr::Command& orig);
  void DropOne(const smr::Command& orig);
  void CompleteClient(uint64_t client_index, common::Time completion_time);
  void MigrateClients(common::ProcessId dead_site);

  // Partition of a command's key, for checker routing. Delegates to the replica
  // assembly layer so the key-to-shard policy has one definition (every site's
  // deployment shares the same partitioner configuration).
  uint32_t ShardOfCmd(const smr::Command& cmd) const {
    return replicas_[0]->ShardOfCmd(cmd);
  }

  ClusterOptions opts_;
  std::unique_ptr<sim::Simulator> sim_;
  // One Deployment per site: the replica assembly layer owns engines, per-shard
  // stores, applied counts and the kBatch unpack scratch. The harness adds only
  // what the simulation needs on top (checkers, clients, metrics).
  std::vector<std::unique_ptr<smr::Deployment>> replicas_;
  // One history checker per partition: commands in different partitions never
  // conflict, so each partition's history is independently checkable.
  std::vector<std::unique_ptr<chk::HistoryChecker>> checkers_;

  std::vector<Client> clients_;
  // (client, seq) -> client index, for completion routing.
  std::unordered_map<chk::CmdKey, uint64_t, chk::CmdKeyHash> pending_;

  common::ProcessId leader_ = common::kInvalidProcess;
  common::Time measure_start_ = 0;
  common::Time measure_end_ = 0;

  Metrics metrics_;
  std::vector<ExecRecord> exec_trace_;
  std::vector<common::TimeSeries> site_throughput_;
  std::vector<bool> site_alive_;
  // Checker process column per site: identity until a site restarts, after which the
  // new incarnation writes history under a fresh column (see AddRestartColumn).
  std::vector<uint32_t> checker_col_;
  std::vector<bool> site_restarted_;
  uint64_t total_completed_ = 0;
  uint64_t gave_up_ = 0;
  bool started_ = false;
};

}  // namespace harness

#endif  // SRC_HARNESS_CLUSTER_H_
