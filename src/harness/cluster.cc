#include "src/harness/cluster.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/atlas.h"
#include "src/harness/topology.h"
#include "src/paxos/multipaxos.h"
#include "src/sim/regions.h"

namespace harness {

Cluster::Cluster(ClusterOptions opts)
    : opts_(std::move(opts)) {
  CHECK_GE(opts_.site_regions.size(), 3u);
  CHECK_GE(opts_.partitions, 1u);
  sim::Simulator::Options sim_opts;
  sim_opts.seed = opts_.seed;
  sim_opts.fifo_links = opts_.fifo_links;
  sim_opts.egress_bytes_per_sec = opts_.egress_bytes_per_sec;
  sim_opts.per_message_cost = opts_.per_message_cost;
  sim_ = std::make_unique<sim::Simulator>(
      BuildLatency(opts_.site_regions, opts_.jitter_frac), sim_opts);

  uint32_t n = this->n();
  for (uint32_t i = 0; i < n; i++) {
    site_throughput_.emplace_back(common::kSecond);
  }
  site_alive_.assign(n, true);
  site_restarted_.assign(n, false);
  checker_col_.resize(n);
  for (uint32_t i = 0; i < n; i++) {
    checker_col_[i] = i;
  }
  if (opts_.enable_checker) {
    for (uint32_t s = 0; s < opts_.partitions; s++) {
      checkers_.push_back(std::make_unique<chk::HistoryChecker>(n));
      checkers_.back()->SetNfrMode(opts_.nfr);
    }
  }
  BuildReplicas();
}

Cluster::~Cluster() = default;

smr::DeploymentOptions Cluster::MakeDeploymentOptions(common::ProcessId site) const {
  smr::DeploymentOptions d;
  d.protocol = opts_.protocol;
  d.n = n();
  d.f = opts_.f;
  d.nfr = opts_.nfr;
  d.prune_slow_path = opts_.prune_slow_path;
  d.index_mode = opts_.index_mode;
  d.by_proximity = ByProximity(sim_->latency(), n(), site);
  d.leader = leader_;
  d.partitions = opts_.partitions;
  d.batch_window = opts_.batch_window;
  d.batch_max = opts_.batch_max;
  d.commit_timeout = opts_.commit_timeout;
  d.recovery_scan_interval = opts_.recovery_scan_interval;
  d.recovery_retry_interval = opts_.recovery_retry_interval;
  d.revoke_retry_interval = opts_.revoke_retry_interval;
  if (!opts_.data_dir.empty()) {
    d.data_dir = opts_.data_dir + "/site-" + std::to_string(site);
    d.snapshot_every = opts_.snapshot_every;
    d.fsync_mode = opts_.fsync_mode;
  }
  return d;
}

void Cluster::BuildReplicas() {
  uint32_t n = this->n();

  // Leader selection needs the latency model and client placement, so it stays a
  // harness concern; the chosen leader is handed to the assembly layer. The quorum
  // geometry used to pick the fairest leader is the one the engines run.
  if (opts_.protocol == Protocol::kFPaxos || opts_.protocol == Protocol::kPaxos) {
    paxos::Config paxos_base;
    paxos_base.n = n;
    paxos_base.f = opts_.f;
    paxos_base.mode = opts_.protocol == Protocol::kFPaxos
                          ? paxos::QuorumMode::kFlexible
                          : paxos::QuorumMode::kClassic;
    leader_ = opts_.leader != common::kInvalidProcess
                  ? opts_.leader
                  : FairestLeader(opts_.site_regions, sim::ClientSites(),
                                  paxos_base.Phase2Size());
  }

  // All replica assembly goes through smr::Deployment — the harness builds no
  // engine (bare or sharded) directly.
  for (uint32_t i = 0; i < n; i++) {
    replicas_.push_back(
        std::make_unique<smr::Deployment>(MakeDeploymentOptions(i)));
  }

  for (auto& r : replicas_) {
    sim_->AddEngine(&r->engine());
  }
  sim_->SetExecutedHandler([this](common::ProcessId p, const common::Dot& d,
                                  const smr::Command& c) { OnExecuted(p, d, c); });
  sim_->SetCommittedHandler([this](common::ProcessId p, const common::Dot& d,
                                   const smr::Command& c,
                                   bool fast) { OnCommitted(p, d, c, fast); });
  sim_->SetDroppedHandler([this](common::ProcessId p, const common::Dot& d,
                                 const smr::Command& c) { OnDropped(p, d, c); });
}

void Cluster::AddClients(const ClientSpec& spec, size_t count) {
  CHECK(!started_);
  CHECK(spec.workload != nullptr);
  for (size_t i = 0; i < count; i++) {
    Client c;
    c.id = clients_.size() + 1;
    c.region = spec.region;
    c.site = ClosestSite(spec.region, opts_.site_regions);
    c.workload = spec.workload;
    c.max_ops = spec.max_ops;
    c.think_time = spec.think_time;
    c.retry_timeout = spec.retry_timeout;
    clients_.push_back(std::move(c));
  }
}

void Cluster::Start() {
  CHECK(!started_);
  started_ = true;
  sim_->Start();
  for (uint64_t i = 0; i < clients_.size(); i++) {
    IssueNext(i);
  }
}

void Cluster::IssueNext(uint64_t client_index) {
  Client& c = clients_[client_index];
  if (c.stopped || c.issued >= c.max_ops || c.in_flight) {
    return;
  }
  c.in_flight = true;
  c.issued++;
  c.current = c.workload->Next(c.id, c.next_seq++, sim_->rng());
  c.submit_time = sim_->Now();
  pending_[chk::CmdKey{c.current.client, c.current.seq}] = client_index;
  if (!checkers_.empty()) {
    checkers_[ShardOfCmd(c.current)]->OnSubmit(
        c.current, c.submit_time,
        static_cast<common::ProcessId>(checker_col_[c.site]));
  }
  common::Duration oneway =
      ClientOneWay(c.region, opts_.site_regions[c.site]);
  common::ProcessId site = static_cast<common::ProcessId>(c.site);
  // Typed ClientOp event: no closure allocation per issued command. If the site
  // crashed while the request was in flight, the submission is skipped and the
  // client's migration logic resubmits it elsewhere.
  sim_->PostSubmitIn(oneway, site, c.current);
  if (c.retry_timeout > 0) {
    // Pack (client_index, seq) into one word so the retry closure fits libstdc++'s
    // inline std::function storage (16 bytes) and needs no heap allocation.
    uint64_t packed = (client_index << 44) | c.current.seq;
    CHECK_LT(client_index, 1u << 20);
    CHECK_LT(c.current.seq, 1ull << 44);
    sim_->PostIn(c.retry_timeout, [this, packed]() {
      uint64_t client_index = packed >> 44;
      uint64_t seq = packed & ((1ull << 44) - 1);
      Client& cl = clients_[client_index];
      if (!cl.in_flight || cl.current.seq != seq) {
        return;  // already completed or superseded
      }
      pending_.erase(chk::CmdKey{cl.current.client, cl.current.seq});
      cl.in_flight = false;
      if (opts_.max_client_retries > 0 &&
          ++cl.attempts >= opts_.max_client_retries) {
        // Bounded retry exhausted: the operation is stuck (not merely delayed).
        // Give it up — Finish() reports any gave-up op as a liveness failure —
        // and let the client move on to its next operation.
        gave_up_++;
        cl.attempts = 0;
        IssueNext(client_index);
        return;
      }
      // Abandon the stuck operation (its command may have died with a crashed
      // leader/coordinator) and resubmit under a fresh sequence number.
      cl.issued--;
      IssueNext(client_index);
    });
  }
}

void Cluster::OnCommitted(common::ProcessId p, const common::Dot& dot,
                          const smr::Command& cmd, bool fast) {
  // A batch commit commits every client command it carries; record each one's
  // commit latency.
  replicas_[p]->ForEachCommitted(
      cmd, [this, p](const smr::Command& sub) { CommitOne(p, sub); });
}

void Cluster::CommitOne(common::ProcessId p, const smr::Command& cmd) {
  auto it = pending_.find(chk::CmdKey{cmd.client, cmd.seq});
  if (it == pending_.end()) {
    return;
  }
  Client& c = clients_[it->second];
  if (static_cast<common::ProcessId>(c.site) != p || !c.in_flight) {
    return;
  }
  common::Time now = sim_->Now();
  if (now >= measure_start_ && (measure_end_ == 0 || now < measure_end_)) {
    metrics_.commit_latency.Record(now - c.submit_time);
  }
}

void Cluster::OnExecuted(common::ProcessId p, const common::Dot& dot,
                         const smr::Command& cmd) {
  // The site's Deployment applies the command (unpacking composite submission
  // batches) to its per-shard stores and counts; the harness accounts each client
  // command on top — checker history, execution trace, client completion.
  replicas_[p]->ApplyExecuted(
      dot, cmd,
      [this, p, &dot](uint32_t shard, const smr::Command& sub, std::string&&) {
        AccountExecuted(p, dot, shard, sub);
      });
}

void Cluster::AccountExecuted(common::ProcessId p, const common::Dot& dot,
                              uint32_t shard, const smr::Command& cmd) {
  if (!checkers_.empty()) {
    checkers_[shard]->OnExecute(static_cast<common::ProcessId>(checker_col_[p]), cmd,
                                sim_->Now());
    exec_trace_.push_back(ExecRecord{p, dot, cmd});
  }
  if (cmd.is_noop()) {
    return;
  }
  auto it = pending_.find(chk::CmdKey{cmd.client, cmd.seq});
  if (it == pending_.end()) {
    return;
  }
  uint64_t client_index = it->second;
  Client& c = clients_[client_index];
  if (static_cast<common::ProcessId>(c.site) != p || !c.in_flight) {
    return;
  }
  pending_.erase(it);
  common::Duration oneway = ClientOneWay(c.region, opts_.site_regions[c.site]);
  // The completion time is exactly the event's firing time, so the closure only
  // captures (this, client_index) — small enough for std::function's inline storage.
  sim_->PostIn(oneway, [this, client_index]() {
    CompleteClient(client_index, sim_->Now());
  });
}

void Cluster::CompleteClient(uint64_t client_index, common::Time completion_time) {
  Client& c = clients_[client_index];
  if (!c.in_flight) {
    return;
  }
  c.in_flight = false;
  c.attempts = 0;
  total_completed_++;
  site_throughput_[c.site].Record(completion_time);
  common::Time now = completion_time;
  if (now >= measure_start_ && (measure_end_ == 0 || now < measure_end_)) {
    metrics_.latency.Record(now - c.submit_time);
    metrics_.completed_in_window++;
    c.window_latency_sum += static_cast<double>(now - c.submit_time);
    c.window_latency_count++;
  }
  if (c.think_time > 0) {
    sim_->PostIn(c.think_time, [this, client_index]() { IssueNext(client_index); });
  } else {
    IssueNext(client_index);
  }
}

void Cluster::OnDropped(common::ProcessId p, const common::Dot& dot,
                        const smr::Command& orig) {
  // A dropped batch drops every client command it carried; resubmit each.
  replicas_[p]->ForEachDropped(orig,
                               [this](const smr::Command& sub) { DropOne(sub); });
}

void Cluster::DropOne(const smr::Command& orig) {
  // The command was replaced by noOp during recovery and will never execute; resubmit
  // it under a fresh sequence number if its client is still waiting.
  auto it = pending_.find(chk::CmdKey{orig.client, orig.seq});
  if (it == pending_.end()) {
    return;
  }
  uint64_t client_index = it->second;
  pending_.erase(it);
  Client& c = clients_[client_index];
  if (!c.in_flight) {
    return;
  }
  c.in_flight = false;
  c.issued--;  // retry does not count as a new op
  IssueNext(client_index);
}

void Cluster::SetMeasureWindow(common::Time start, common::Time end) {
  measure_start_ = start;
  measure_end_ = end;
  metrics_.window_seconds =
      static_cast<double>(end - start) / static_cast<double>(common::kSecond);
}

void Cluster::ScheduleCrash(common::ProcessId site, common::Time at,
                            common::Duration detection_timeout) {
  CHECK_LT(site, n());
  sim_->Post(at, [this, site]() {
    sim_->Crash(site);
    site_alive_[site] = false;
  });
  sim_->Post(at + detection_timeout, [this, site]() {
    for (uint32_t p = 0; p < n(); p++) {
      if (p != site && !sim_->IsCrashed(p)) {
        replicas_[p]->engine().OnSuspect(site);
      }
    }
    MigrateClients(site);
  });
}

void Cluster::ScheduleRestart(common::ProcessId site, common::Time at) {
  CHECK_LT(site, n());
  sim_->Post(at, [this, site]() { RestartSite(site); });
}

void Cluster::RestartSite(common::ProcessId site) {
  CHECK(sim_->IsCrashed(site));
  // Crash-stop with amnesia: the only state that survives is the per-shard
  // stable-storage floors (smr::RestartHint). Everything else — protocol state,
  // stores, conflict indexes — is rebuilt empty and re-learned via recovery.
  std::vector<smr::RestartHint> hints = replicas_[site]->RestartHints();
  // Destroy the dead incarnation before constructing its replacement: the
  // durable deployment flushes its buffered commit-log tail on destruction,
  // and the fresh one reads the data_dir in its constructor.
  replicas_[site].reset();
  auto fresh = std::make_unique<smr::Deployment>(MakeDeploymentOptions(site));
  if (fresh->HasRecoveredState()) {
    // Durable restart: the new incarnation restored its stores from disk, and
    // the persisted seq-floor reservations supersede the dead incarnation's
    // in-memory floors (they are what a real power loss would leave behind).
    hints = fresh->RecoveredRestartHints();
  }
  // Binds + starts the new engine under a new incarnation; in-flight messages and
  // timers addressed to the dead incarnation are dropped on delivery.
  sim_->Restart(site, &fresh->engine());
  replicas_[site] = std::move(fresh);
  replicas_[site]->ApplyRestartHints(hints);
  site_alive_[site] = true;
  site_restarted_[site] = true;
  // The new incarnation records history as a fresh process: the amnesia model lets
  // it re-execute commands the dead incarnation already executed.
  if (!checkers_.empty()) {
    uint32_t col = 0;
    for (auto& checker : checkers_) {
      col = checker->AddRestartColumn();
    }
    checker_col_[site] = col;
  }
  // Surviving replicas clear suspicion of `site` and adopt recovery of the dead
  // incarnation's abandoned commands (below the seq floors).
  for (uint32_t p = 0; p < n(); p++) {
    if (p != site && !sim_->IsCrashed(p)) {
      replicas_[p]->NotifyRestore(site, hints);
    }
  }
}

void Cluster::MigrateClients(common::ProcessId dead_site) {
  for (uint64_t i = 0; i < clients_.size(); i++) {
    Client& c = clients_[i];
    if (static_cast<common::ProcessId>(c.site) != dead_site) {
      continue;
    }
    // Reconnect to the closest alive site.
    size_t best = c.site;
    common::Duration best_d = 0;
    bool found = false;
    for (size_t s = 0; s < opts_.site_regions.size(); s++) {
      if (!site_alive_[s]) {
        continue;
      }
      common::Duration d = ClientOneWay(c.region, opts_.site_regions[s]);
      if (!found || d < best_d) {
        best = s;
        best_d = d;
        found = true;
      }
    }
    CHECK(found);
    c.site = best;
    if (c.in_flight) {
      // Retry the in-flight command at the new site under a fresh sequence number
      // (at-least-once on fail-over; client sessions would dedup in a production stack).
      pending_.erase(chk::CmdKey{c.current.client, c.current.seq});
      c.in_flight = false;
      c.issued--;
      IssueNext(i);
    }
  }
}

void Cluster::StopClients() {
  for (auto& c : clients_) {
    c.stopped = true;
  }
}

void Cluster::RunFor(common::Duration d) { sim_->RunFor(d); }

Metrics Cluster::Snapshot() const {
  Metrics m = metrics_;
  uint64_t fast = 0;
  uint64_t slow = 0;
  uint64_t executed = 0;
  size_t max_batch = 0;
  if (opts_.partitions > 1) {
    m.per_shard.assign(opts_.partitions, smr::EngineStats{});
  }
  for (uint32_t p = 0; p < n(); p++) {
    const smr::Deployment& replica = *replicas_[p];
    smr::EngineStats s = replica.stats();
    fast += s.fast_paths;
    slow += s.slow_paths;
    executed += s.executed;
    for (uint32_t shard = 0; shard < opts_.partitions; shard++) {
      if (opts_.partitions > 1) {
        m.per_shard[shard] += replica.shard_stats(shard);
      }
      if (opts_.protocol == Protocol::kAtlas) {
        max_batch = std::max(max_batch,
                             static_cast<const atlas::AtlasEngine&>(
                                 replica.shard_engine(shard))
                                 .MaxBatch());
      }
    }
  }
  m.fast_paths = fast;
  m.slow_paths = slow;
  m.total_executions = executed;
  m.max_batch = max_batch;
  m.bytes_sent = sim_->bytes_sent();
  m.fast_path_ratio =
      (fast + slow) > 0 ? static_cast<double>(fast) / static_cast<double>(fast + slow)
                        : 0;
  double sum = 0;
  uint64_t clients_with_data = 0;
  for (const auto& c : clients_) {
    if (c.window_latency_count > 0) {
      sum += c.window_latency_sum / static_cast<double>(c.window_latency_count);
      clients_with_data++;
    }
  }
  m.per_client_mean_us = clients_with_data > 0
                             ? sum / static_cast<double>(clients_with_data)
                             : 0;
  return m;
}

const common::TimeSeries& Cluster::SiteThroughput(common::ProcessId site) const {
  CHECK_LT(site, site_throughput_.size());
  return site_throughput_[site];
}

common::TimeSeries Cluster::AggregateThroughput() const {
  common::TimeSeries agg(common::kSecond);
  for (const auto& ts : site_throughput_) {
    for (size_t b = 0; b < ts.num_buckets(); b++) {
      agg.Record(static_cast<common::Time>(b) * common::kSecond, ts.buckets()[b]);
    }
  }
  return agg;
}

chk::CheckResult Cluster::Finish(bool abort_on_error) {
  // Clients with finite max_ops are allowed to run to completion; open-ended clients
  // are stopped so the simulation can drain.
  bool all_finite = true;
  for (const auto& c : clients_) {
    if (c.max_ops == ~uint64_t{0}) {
      all_finite = false;
      break;
    }
  }
  if (!all_finite) {
    StopClients();
  }
  sim_->RunUntilIdle();
  chk::CheckResult result;
  if (!checkers_.empty()) {
    for (uint32_t p = 0; p < n(); p++) {
      if (sim_->IsCrashed(p) || site_restarted_[p]) {
        // Restarted sites rebuilt their stores mid-history and re-execute only what
        // recovery resurfaces; their digests are not comparable to full replicas.
        continue;
      }
      if (opts_.partitions == 1) {
        // Classic deployment: one store, engine-level executed count (as seeded).
        checkers_[0]->OnStateDigest(p, replicas_[p]->store().StateDigest(),
                                    replicas_[p]->stats().executed);
      } else {
        // Replica convergence holds per partition: replicas may interleave shard
        // streams differently, but each (site, shard) store must match its peers
        // that applied the same number of that shard's commands.
        for (uint32_t s = 0; s < opts_.partitions; s++) {
          checkers_[s]->OnStateDigest(p, replicas_[p]->store(s).StateDigest(),
                                      replicas_[p]->applied_count(s));
        }
      }
    }
    for (auto& checker : checkers_) {
      chk::CheckResult r = checker->Validate();
      if (!r.ok) {
        result.ok = false;
        for (auto& e : r.errors) {
          result.Fail(std::move(e));
        }
      }
    }
    if (gave_up_ > 0) {
      result.Fail("Liveness: " + std::to_string(gave_up_) +
                  " client operation(s) gave up after " +
                  std::to_string(opts_.max_client_retries) + " retries");
    }
    if (!result.ok && abort_on_error) {
      std::fprintf(stderr, "%s\n", result.Describe().c_str());
      CHECK(result.ok);
    }
  }
  return result;
}

}  // namespace harness
