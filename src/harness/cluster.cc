#include "src/harness/cluster.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/core/atlas.h"
#include "src/epaxos/epaxos.h"
#include "src/harness/topology.h"
#include "src/mencius/mencius.h"
#include "src/paxos/multipaxos.h"
#include "src/sim/regions.h"

namespace harness {

const char* ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kAtlas:
      return "Atlas";
    case Protocol::kEPaxos:
      return "EPaxos";
    case Protocol::kFPaxos:
      return "FPaxos";
    case Protocol::kPaxos:
      return "Paxos";
    case Protocol::kMencius:
      return "Mencius";
  }
  return "?";
}

Cluster::Cluster(ClusterOptions opts)
    : opts_(std::move(opts)), partitioner_(opts_.partitions) {
  CHECK_GE(opts_.site_regions.size(), 3u);
  CHECK_GE(opts_.partitions, 1u);
  CHECK_LE(opts_.partitions, smr::ShardedEngine::kMaxPartitions);
  sim::Simulator::Options sim_opts;
  sim_opts.seed = opts_.seed;
  sim_opts.fifo_links = opts_.fifo_links;
  sim_opts.egress_bytes_per_sec = opts_.egress_bytes_per_sec;
  sim_opts.per_message_cost = opts_.per_message_cost;
  sim_ = std::make_unique<sim::Simulator>(
      BuildLatency(opts_.site_regions, opts_.jitter_frac), sim_opts);

  uint32_t n = this->n();
  for (uint32_t i = 0; i < n; i++) {
    for (uint32_t s = 0; s < opts_.partitions; s++) {
      stores_.push_back(std::make_unique<kvs::KvStore>());
    }
    site_throughput_.emplace_back(common::kSecond);
  }
  applied_counts_.assign(static_cast<size_t>(n) * opts_.partitions, 0);
  site_alive_.assign(n, true);
  if (opts_.enable_checker) {
    for (uint32_t s = 0; s < opts_.partitions; s++) {
      checkers_.push_back(std::make_unique<chk::HistoryChecker>(n));
      checkers_.back()->SetNfrMode(opts_.nfr);
    }
  }
  BuildEngines();
}

Cluster::~Cluster() = default;

void Cluster::BuildEngines() {
  uint32_t n = this->n();
  const sim::LatencyModel& lat = sim_->latency();

  std::vector<size_t> client_regions = sim::ClientSites();
  // One base Paxos config shared by leader selection and engine construction, so the
  // quorum geometry used to pick the fairest leader is the one the engines run.
  paxos::Config paxos_base;
  paxos_base.n = n;
  paxos_base.f = opts_.f;
  paxos_base.mode = opts_.protocol == Protocol::kFPaxos ? paxos::QuorumMode::kFlexible
                                                        : paxos::QuorumMode::kClassic;
  if (opts_.protocol == Protocol::kFPaxos || opts_.protocol == Protocol::kPaxos) {
    leader_ = opts_.leader != common::kInvalidProcess
                  ? opts_.leader
                  : FairestLeader(opts_.site_regions, client_regions,
                                  paxos_base.Phase2Size());
  }

  // One protocol engine for site i (one partition's worth of it on sharded
  // deployments; every partition of a site gets an identical configuration).
  auto make_engine = [&, this](uint32_t i) -> std::unique_ptr<smr::Engine> {
    switch (opts_.protocol) {
      case Protocol::kAtlas: {
        atlas::Config cfg;
        cfg.n = n;
        cfg.f = opts_.f;
        cfg.nfr = opts_.nfr;
        cfg.prune_slow_path = opts_.prune_slow_path;
        cfg.index_mode = opts_.index_mode;
        cfg.by_proximity = ByProximity(lat, n, i);
        return std::make_unique<atlas::AtlasEngine>(cfg);
      }
      case Protocol::kEPaxos: {
        epaxos::Config cfg;
        cfg.n = n;
        cfg.nfr = opts_.nfr;
        cfg.index_mode = opts_.index_mode;
        cfg.by_proximity = ByProximity(lat, n, i);
        return std::make_unique<epaxos::EPaxosEngine>(cfg);
      }
      case Protocol::kFPaxos:
      case Protocol::kPaxos: {
        paxos::Config cfg = paxos_base;
        cfg.initial_leader = leader_;
        cfg.by_proximity = ByProximity(lat, n, i);
        return std::make_unique<paxos::PaxosEngine>(cfg);
      }
      case Protocol::kMencius: {
        mencius::Config cfg;
        cfg.n = n;
        return std::make_unique<mencius::MenciusEngine>(cfg);
      }
    }
    return nullptr;
  };

  for (uint32_t i = 0; i < n; i++) {
    if (opts_.partitions == 1) {
      // Classic single-engine replica: exactly the seeded deployment, no wrapper in
      // the message path (the determinism pins rely on this).
      engines_.push_back(make_engine(i));
    } else {
      smr::ShardedOptions so;
      so.partitions = opts_.partitions;
      so.batch_window = opts_.batch_window;
      so.batch_max = opts_.batch_max;
      engines_.push_back(std::make_unique<smr::ShardedEngine>(
          so, [&make_engine, i](uint32_t) { return make_engine(i); }));
    }
  }

  for (auto& e : engines_) {
    sim_->AddEngine(e.get());
  }
  sim_->SetExecutedHandler([this](common::ProcessId p, const common::Dot& d,
                                  const smr::Command& c) { OnExecuted(p, d, c); });
  sim_->SetCommittedHandler([this](common::ProcessId p, const common::Dot& d,
                                   const smr::Command& c,
                                   bool fast) { OnCommitted(p, d, c, fast); });
  sim_->SetDroppedHandler([this](common::ProcessId p, const common::Dot& d,
                                 const smr::Command& c) { OnDropped(p, d, c); });
}

void Cluster::AddClients(const ClientSpec& spec, size_t count) {
  CHECK(!started_);
  CHECK(spec.workload != nullptr);
  for (size_t i = 0; i < count; i++) {
    Client c;
    c.id = clients_.size() + 1;
    c.region = spec.region;
    c.site = ClosestSite(spec.region, opts_.site_regions);
    c.workload = spec.workload;
    c.max_ops = spec.max_ops;
    c.think_time = spec.think_time;
    c.retry_timeout = spec.retry_timeout;
    clients_.push_back(std::move(c));
  }
}

void Cluster::Start() {
  CHECK(!started_);
  started_ = true;
  sim_->Start();
  for (uint64_t i = 0; i < clients_.size(); i++) {
    IssueNext(i);
  }
}

void Cluster::IssueNext(uint64_t client_index) {
  Client& c = clients_[client_index];
  if (c.stopped || c.issued >= c.max_ops || c.in_flight) {
    return;
  }
  c.in_flight = true;
  c.issued++;
  c.current = c.workload->Next(c.id, c.next_seq++, sim_->rng());
  c.submit_time = sim_->Now();
  pending_[chk::CmdKey{c.current.client, c.current.seq}] = client_index;
  if (!checkers_.empty()) {
    checkers_[ShardOfCmd(c.current)]->OnSubmit(c.current, c.submit_time,
                                               static_cast<common::ProcessId>(c.site));
  }
  common::Duration oneway =
      ClientOneWay(c.region, opts_.site_regions[c.site]);
  common::ProcessId site = static_cast<common::ProcessId>(c.site);
  // Typed ClientOp event: no closure allocation per issued command. If the site
  // crashed while the request was in flight, the submission is skipped and the
  // client's migration logic resubmits it elsewhere.
  sim_->PostSubmitIn(oneway, site, c.current);
  if (c.retry_timeout > 0) {
    // Pack (client_index, seq) into one word so the retry closure fits libstdc++'s
    // inline std::function storage (16 bytes) and needs no heap allocation.
    uint64_t packed = (client_index << 44) | c.current.seq;
    CHECK_LT(client_index, 1u << 20);
    CHECK_LT(c.current.seq, 1ull << 44);
    sim_->PostIn(c.retry_timeout, [this, packed]() {
      uint64_t client_index = packed >> 44;
      uint64_t seq = packed & ((1ull << 44) - 1);
      Client& cl = clients_[client_index];
      if (!cl.in_flight || cl.current.seq != seq) {
        return;  // already completed or superseded
      }
      // Abandon the stuck operation (its command may have died with a crashed
      // leader/coordinator) and resubmit under a fresh sequence number.
      pending_.erase(chk::CmdKey{cl.current.client, cl.current.seq});
      cl.in_flight = false;
      cl.issued--;
      IssueNext(client_index);
    });
  }
}

void Cluster::OnCommitted(common::ProcessId p, const common::Dot& dot,
                          const smr::Command& cmd, bool fast) {
  if (cmd.is_batch()) {
    // A batch commit commits every client command it carries; record each one's
    // commit latency (its own scratch: the Committed hook fires mid-ApplyCommit,
    // and OnExecuted may unpack into batch_scratch_ later in the same call chain).
    CHECK(smr::UnpackBatch(cmd, commit_batch_scratch_));
    for (const smr::Command& sub : commit_batch_scratch_) {
      CommitOne(p, sub);
    }
    return;
  }
  CommitOne(p, cmd);
}

void Cluster::CommitOne(common::ProcessId p, const smr::Command& cmd) {
  auto it = pending_.find(chk::CmdKey{cmd.client, cmd.seq});
  if (it == pending_.end()) {
    return;
  }
  Client& c = clients_[it->second];
  if (static_cast<common::ProcessId>(c.site) != p || !c.in_flight) {
    return;
  }
  common::Time now = sim_->Now();
  if (now >= measure_start_ && (measure_end_ == 0 || now < measure_end_)) {
    metrics_.commit_latency.Record(now - c.submit_time);
  }
}

void Cluster::OnExecuted(common::ProcessId p, const common::Dot& dot,
                         const smr::Command& cmd) {
  if (cmd.is_batch()) {
    // Composite submission batch (sharded replicas): unpack and account each client
    // command individually — store apply, checker history, client completion.
    CHECK(smr::UnpackBatch(cmd, batch_scratch_));
    for (const smr::Command& sub : batch_scratch_) {
      ApplyExecuted(p, dot, sub);
    }
    return;
  }
  ApplyExecuted(p, dot, cmd);
}

void Cluster::ApplyExecuted(common::ProcessId p, const common::Dot& dot,
                            const smr::Command& cmd) {
  uint32_t shard = ShardOfCmd(cmd);
  stores_[StoreIndex(p, shard)]->Apply(cmd);
  if (!cmd.is_noop()) {
    applied_counts_[StoreIndex(p, shard)]++;
  }
  if (!checkers_.empty()) {
    checkers_[shard]->OnExecute(p, cmd, sim_->Now());
    exec_trace_.push_back(ExecRecord{p, dot, cmd});
  }
  if (cmd.is_noop()) {
    return;
  }
  auto it = pending_.find(chk::CmdKey{cmd.client, cmd.seq});
  if (it == pending_.end()) {
    return;
  }
  uint64_t client_index = it->second;
  Client& c = clients_[client_index];
  if (static_cast<common::ProcessId>(c.site) != p || !c.in_flight) {
    return;
  }
  pending_.erase(it);
  common::Duration oneway = ClientOneWay(c.region, opts_.site_regions[c.site]);
  // The completion time is exactly the event's firing time, so the closure only
  // captures (this, client_index) — small enough for std::function's inline storage.
  sim_->PostIn(oneway, [this, client_index]() {
    CompleteClient(client_index, sim_->Now());
  });
}

void Cluster::CompleteClient(uint64_t client_index, common::Time completion_time) {
  Client& c = clients_[client_index];
  if (!c.in_flight) {
    return;
  }
  c.in_flight = false;
  total_completed_++;
  site_throughput_[c.site].Record(completion_time);
  common::Time now = completion_time;
  if (now >= measure_start_ && (measure_end_ == 0 || now < measure_end_)) {
    metrics_.latency.Record(now - c.submit_time);
    metrics_.completed_in_window++;
    c.window_latency_sum += static_cast<double>(now - c.submit_time);
    c.window_latency_count++;
  }
  if (c.think_time > 0) {
    sim_->PostIn(c.think_time, [this, client_index]() { IssueNext(client_index); });
  } else {
    IssueNext(client_index);
  }
}

void Cluster::OnDropped(common::ProcessId p, const common::Dot& dot,
                        const smr::Command& orig) {
  if (orig.is_batch()) {
    // A dropped batch drops every client command it carried; resubmit each.
    std::vector<smr::Command> subs;  // not batch_scratch_: DropOne may reenter via Submit
    CHECK(smr::UnpackBatch(orig, subs));
    for (const smr::Command& sub : subs) {
      DropOne(sub);
    }
    return;
  }
  DropOne(orig);
}

void Cluster::DropOne(const smr::Command& orig) {
  // The command was replaced by noOp during recovery and will never execute; resubmit
  // it under a fresh sequence number if its client is still waiting.
  auto it = pending_.find(chk::CmdKey{orig.client, orig.seq});
  if (it == pending_.end()) {
    return;
  }
  uint64_t client_index = it->second;
  pending_.erase(it);
  Client& c = clients_[client_index];
  if (!c.in_flight) {
    return;
  }
  c.in_flight = false;
  c.issued--;  // retry does not count as a new op
  IssueNext(client_index);
}

void Cluster::SetMeasureWindow(common::Time start, common::Time end) {
  measure_start_ = start;
  measure_end_ = end;
  metrics_.window_seconds =
      static_cast<double>(end - start) / static_cast<double>(common::kSecond);
}

void Cluster::ScheduleCrash(common::ProcessId site, common::Time at,
                            common::Duration detection_timeout) {
  CHECK_LT(site, n());
  sim_->Post(at, [this, site]() {
    sim_->Crash(site);
    site_alive_[site] = false;
  });
  sim_->Post(at + detection_timeout, [this, site]() {
    for (uint32_t p = 0; p < n(); p++) {
      if (p != site && !sim_->IsCrashed(p)) {
        engines_[p]->OnSuspect(site);
      }
    }
    MigrateClients(site);
  });
}

void Cluster::MigrateClients(common::ProcessId dead_site) {
  for (uint64_t i = 0; i < clients_.size(); i++) {
    Client& c = clients_[i];
    if (static_cast<common::ProcessId>(c.site) != dead_site) {
      continue;
    }
    // Reconnect to the closest alive site.
    size_t best = c.site;
    common::Duration best_d = 0;
    bool found = false;
    for (size_t s = 0; s < opts_.site_regions.size(); s++) {
      if (!site_alive_[s]) {
        continue;
      }
      common::Duration d = ClientOneWay(c.region, opts_.site_regions[s]);
      if (!found || d < best_d) {
        best = s;
        best_d = d;
        found = true;
      }
    }
    CHECK(found);
    c.site = best;
    if (c.in_flight) {
      // Retry the in-flight command at the new site under a fresh sequence number
      // (at-least-once on fail-over; client sessions would dedup in a production stack).
      pending_.erase(chk::CmdKey{c.current.client, c.current.seq});
      c.in_flight = false;
      c.issued--;
      IssueNext(i);
    }
  }
}

void Cluster::StopClients() {
  for (auto& c : clients_) {
    c.stopped = true;
  }
}

void Cluster::RunFor(common::Duration d) { sim_->RunFor(d); }

Metrics Cluster::Snapshot() const {
  Metrics m = metrics_;
  uint64_t fast = 0;
  uint64_t slow = 0;
  uint64_t executed = 0;
  size_t max_batch = 0;
  if (opts_.partitions > 1) {
    m.per_shard.assign(opts_.partitions, smr::EngineStats{});
  }
  for (uint32_t p = 0; p < n(); p++) {
    const smr::EngineStats& s = engines_[p]->stats();
    fast += s.fast_paths;
    slow += s.slow_paths;
    executed += s.executed;
    if (opts_.partitions == 1) {
      if (opts_.protocol == Protocol::kAtlas) {
        max_batch = std::max(
            max_batch, static_cast<const atlas::AtlasEngine&>(*engines_[p]).MaxBatch());
      }
      continue;
    }
    const auto& sharded = static_cast<const smr::ShardedEngine&>(*engines_[p]);
    for (uint32_t shard = 0; shard < opts_.partitions; shard++) {
      m.per_shard[shard] += sharded.shard_stats(shard);
      if (opts_.protocol == Protocol::kAtlas) {
        max_batch = std::max(
            max_batch,
            static_cast<const atlas::AtlasEngine&>(sharded.shard(shard)).MaxBatch());
      }
    }
  }
  m.fast_paths = fast;
  m.slow_paths = slow;
  m.total_executions = executed;
  m.max_batch = max_batch;
  m.bytes_sent = sim_->bytes_sent();
  m.fast_path_ratio =
      (fast + slow) > 0 ? static_cast<double>(fast) / static_cast<double>(fast + slow)
                        : 0;
  double sum = 0;
  uint64_t clients_with_data = 0;
  for (const auto& c : clients_) {
    if (c.window_latency_count > 0) {
      sum += c.window_latency_sum / static_cast<double>(c.window_latency_count);
      clients_with_data++;
    }
  }
  m.per_client_mean_us = clients_with_data > 0
                             ? sum / static_cast<double>(clients_with_data)
                             : 0;
  return m;
}

const common::TimeSeries& Cluster::SiteThroughput(common::ProcessId site) const {
  CHECK_LT(site, site_throughput_.size());
  return site_throughput_[site];
}

common::TimeSeries Cluster::AggregateThroughput() const {
  common::TimeSeries agg(common::kSecond);
  for (const auto& ts : site_throughput_) {
    for (size_t b = 0; b < ts.num_buckets(); b++) {
      agg.Record(static_cast<common::Time>(b) * common::kSecond, ts.buckets()[b]);
    }
  }
  return agg;
}

chk::CheckResult Cluster::Finish(bool abort_on_error) {
  // Clients with finite max_ops are allowed to run to completion; open-ended clients
  // are stopped so the simulation can drain.
  bool all_finite = true;
  for (const auto& c : clients_) {
    if (c.max_ops == ~uint64_t{0}) {
      all_finite = false;
      break;
    }
  }
  if (!all_finite) {
    StopClients();
  }
  sim_->RunUntilIdle();
  chk::CheckResult result;
  if (!checkers_.empty()) {
    for (uint32_t p = 0; p < n(); p++) {
      if (sim_->IsCrashed(p)) {
        continue;
      }
      if (opts_.partitions == 1) {
        // Classic deployment: one store, engine-level executed count (as seeded).
        checkers_[0]->OnStateDigest(p, stores_[p]->StateDigest(),
                                    engines_[p]->stats().executed);
      } else {
        // Replica convergence holds per partition: replicas may interleave shard
        // streams differently, but each (site, shard) store must match its peers
        // that applied the same number of that shard's commands.
        for (uint32_t s = 0; s < opts_.partitions; s++) {
          checkers_[s]->OnStateDigest(p, stores_[StoreIndex(p, s)]->StateDigest(),
                                      applied_counts_[StoreIndex(p, s)]);
        }
      }
    }
    for (auto& checker : checkers_) {
      chk::CheckResult r = checker->Validate();
      if (!r.ok) {
        result.ok = false;
        for (auto& e : r.errors) {
          result.Fail(std::move(e));
        }
      }
    }
    if (!result.ok && abort_on_error) {
      std::fprintf(stderr, "%s\n", result.Describe().c_str());
      CHECK(result.ok);
    }
  }
  return result;
}

}  // namespace harness
