// Machine-readable benchmark output: a tiny JSON writer so the perf trajectory of the
// hot paths is tracked across PRs (BENCH_*.json files) instead of only stdout tables.
//
// Two entry points:
//   * BenchJsonWriter       — collect {name, ns/op, bytes/sec, items/sec} rows and
//                             write them as a JSON array; used by the figure benches.
//   * JsonTeeReporter       — a google-benchmark reporter that prints the usual
//                             console table AND records every run into a
//                             BenchJsonWriter; used by micro_core.
//
// The output path defaults to BENCH_<tag>.json in the working directory and can be
// redirected with the ATLAS_BENCH_JSON_DIR environment variable.
#ifndef BENCH_BENCH_JSON_H_
#define BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace bench {

inline std::string JsonPathFor(const std::string& tag) {
  const char* dir = std::getenv("ATLAS_BENCH_JSON_DIR");
  std::string path = dir != nullptr ? std::string(dir) + "/" : std::string();
  return path + "BENCH_" + tag + ".json";
}

class BenchJsonWriter {
 public:
  // `tag` names the output file: BENCH_<tag>.json.
  explicit BenchJsonWriter(std::string tag) : path_(JsonPathFor(tag)) {}

  void Add(const std::string& name, double ns_per_op, double bytes_per_sec = 0,
           double items_per_sec = 0) {
    rows_.push_back(Row{name, ns_per_op, bytes_per_sec, items_per_sec});
  }

  // Writes the collected rows; returns false (and warns) on I/O failure.
  bool WriteOut() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < rows_.size(); i++) {
      const Row& r = rows_[i];
      std::fprintf(f, "  {\"name\": \"%s\", \"ns_per_op\": %.3f", r.name.c_str(),
                   r.ns_per_op);
      if (r.bytes_per_sec > 0) {
        std::fprintf(f, ", \"bytes_per_sec\": %.1f", r.bytes_per_sec);
      }
      if (r.items_per_sec > 0) {
        std::fprintf(f, ", \"items_per_sec\": %.1f", r.items_per_sec);
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("bench_json: wrote %zu entries to %s\n", rows_.size(), path_.c_str());
    return true;
  }

  const std::string& path() const { return path_; }

 private:
  struct Row {
    std::string name;
    double ns_per_op;
    double bytes_per_sec;
    double items_per_sec;
  };
  std::string path_;
  std::vector<Row> rows_;
};

}  // namespace bench

// google-benchmark was included before us: offer the tee reporter.
#ifdef BENCHMARK_BENCHMARK_H_

namespace bench {

class JsonTeeReporter final : public benchmark::ConsoleReporter {
 public:
  explicit JsonTeeReporter(BenchJsonWriter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      double ns = run.GetAdjustedRealTime();  // already in ns (default time unit)
      double bytes_per_sec = 0;
      double items_per_sec = 0;
      auto it = run.counters.find("bytes_per_second");
      if (it != run.counters.end()) {
        bytes_per_sec = static_cast<double>(it->second.value);
      }
      it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        items_per_sec = static_cast<double>(it->second.value);
      }
      json_->Add(run.benchmark_name(), ns, bytes_per_sec, items_per_sec);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchJsonWriter* json_;
};

}  // namespace bench

#endif  // BENCHMARK_H_

#endif  // BENCH_BENCH_JSON_H_
