// Ablation bench: isolates the contribution of each Atlas design choice called out in
// DESIGN.md — the flexible fast-path condition (vs EPaxos-style matching), slow-path
// dependency pruning (§4), NFR (§4), and dependency compression (implementation-level).
#include <cstdio>

#include "bench/bench_common.h"

using bench::RunOnce;
using bench::RunSpec;
using bench::ScaledClients;

namespace {

harness::Metrics Run(bool prune, bool nfr, smr::IndexMode mode, double conflicts,
                     double read_pct, uint32_t f) {
  RunSpec spec;
  spec.opts.protocol = harness::Protocol::kAtlas;
  spec.opts.f = f;
  spec.opts.nfr = nfr;
  spec.opts.prune_slow_path = prune;
  spec.opts.index_mode = mode;
  spec.opts.site_regions = sim::ScaleOutSites(5);
  spec.opts.seed = 11;
  spec.client_regions = spec.opts.site_regions;
  spec.clients_per_region = ScaledClients(32);
  if (read_pct > 0) {
    spec.workload = std::make_shared<wl::YcsbWorkload>(10'000, read_pct, 100);
  } else {
    spec.workload = std::make_shared<wl::MicroWorkload>(conflicts, 100);
  }
  spec.warmup = 2 * common::kSecond;
  spec.measure = 5 * common::kSecond;
  return RunOnce(spec);
}

void Report(const char* name, const harness::Metrics& m) {
  std::printf("%-34s %9.0f op/s %8.1fms mean %8.0f%% fast  max-batch %-5zu %6.1f MB\n",
              name, m.ThroughputOpsPerSec(), m.latency.Mean() / 1000.0,
              m.fast_path_ratio * 100, m.max_batch,
              static_cast<double>(m.bytes_sent) / (1024.0 * 1024.0));
}

}  // namespace

int main() {
  std::printf("=== ATLAS ablations (5 sites) ===\n\n");

  std::printf("-- slow-path dependency pruning (§4), f=2, 50%% conflicts --\n");
  std::printf("   (per-identifier pruning requires the full index; under compression "
              "only the\n    conservative per-process rule is sound — see DESIGN.md "
              "§7)\n");
  Report("full index + per-dot pruning",
         Run(true, false, smr::IndexMode::kFull, 0.5, 0, 2));
  Report("full index, no pruning",
         Run(false, false, smr::IndexMode::kFull, 0.5, 0, 2));
  Report("compressed + per-proc pruning",
         Run(true, false, smr::IndexMode::kCompressed, 0.5, 0, 2));
  Report("compressed, no pruning",
         Run(false, false, smr::IndexMode::kCompressed, 0.5, 0, 2));

  std::printf("\n-- NFR reads (§4), f=2, YCSB 80%% reads --\n");
  Report("NFR ON", Run(true, true, smr::IndexMode::kCompressed, 0, 0.8, 2));
  Report("NFR OFF", Run(true, false, smr::IndexMode::kCompressed, 0, 0.8, 2));

  std::printf("\n-- dependency compression, f=1, 100%% conflicts --\n");
  Report("compressed index", Run(true, false, smr::IndexMode::kCompressed, 1.0, 0, 1));
  Report("full index", Run(true, false, smr::IndexMode::kFull, 1.0, 0, 1));

  std::printf("\n-- fault-tolerance level, 10%% conflicts --\n");
  Report("f=1 (majority fast quorum)",
         Run(true, false, smr::IndexMode::kCompressed, 0.1, 0, 1));
  Report("f=2 (majority+1 fast quorum)",
         Run(true, false, smr::IndexMode::kCompressed, 0.1, 0, 2));
  return 0;
}
