// Figure 6 (§5.4, "expanding the service"): latency penalty vs the optimal when the
// service grows to new locations and every new site brings its own clients; 128
// clients/site in the paper, 3KB payloads, 1% conflicts.
//
// Paper shape: FPaxos degrades sharply from ~9 sites (leader saturates broadcasting
// 3KB commands to everyone: penalty up to 4.7x); EPaxos near-optimal at 3-5 sites but
// >=1.5x from 11 sites (large fast quorums); Atlas stays within 4% (f=1) / 26% (f=2)
// of optimal because it spreads the broadcast cost across coordinators.
#include <cstdio>

#include "bench/bench_common.h"

using bench::Ms;
using bench::RunOnce;
using bench::RunSpec;
using bench::ScaledClients;

namespace {

// Egress model approximating an n1-standard-8 site for this message volume:
// 64 MB/s usable egress plus 20us/message CPU. See DESIGN.md (substitutions).
constexpr double kEgressBytesPerSec = 64.0 * 1024 * 1024;
constexpr common::Duration kPerMessageCost = 20;

double PenaltyX(harness::Protocol protocol, uint32_t f, uint32_t sites,
                size_t clients_per_site, double optimal_ms) {
  RunSpec spec;
  spec.opts.protocol = protocol;
  spec.opts.f = f;
  spec.opts.site_regions = sim::ScaleOutSites(sites);
  spec.opts.seed = 6;
  spec.opts.egress_bytes_per_sec = kEgressBytesPerSec;
  spec.opts.per_message_cost = kPerMessageCost;
  spec.client_regions = spec.opts.site_regions;  // clients follow the deployment
  spec.clients_per_region = clients_per_site;
  spec.workload = std::make_shared<wl::MicroWorkload>(0.01, 3 * 1024);
  spec.warmup = 3 * common::kSecond;
  spec.measure = 6 * common::kSecond;
  harness::Metrics m = RunOnce(spec);
  return m.per_client_mean_us / 1000.0 / optimal_ms;
}

}  // namespace

int main() {
  const size_t clients = ScaledClients(32);  // paper: 128/site
  std::printf("=== Figure 6: latency penalty vs optimal when expanding 3->13 sites ===\n");
  std::printf("(%zu clients per deployed site, 1%% conflicts, 3KB payloads, egress-"
              "constrained sites)\n\n", clients);
  const uint32_t deployments[] = {3, 5, 7, 9, 11, 13};
  std::printf("%-12s", "protocol");
  for (uint32_t n : deployments) {
    std::printf("   n=%-3u", n);
  }
  std::printf("\n");

  struct Row {
    const char* name;
    harness::Protocol protocol;
    uint32_t f;
  };
  const Row rows[] = {
      {"FPaxos f=1", harness::Protocol::kFPaxos, 1},
      {"FPaxos f=2", harness::Protocol::kFPaxos, 2},
      {"Mencius", harness::Protocol::kMencius, 1},
      {"EPaxos", harness::Protocol::kEPaxos, 1},
      {"ATLAS f=1", harness::Protocol::kAtlas, 1},
      {"ATLAS f=2", harness::Protocol::kAtlas, 2},
  };
  for (const Row& row : rows) {
    std::printf("%-12s", row.name);
    for (uint32_t n : deployments) {
      if (row.f >= (n + 1) / 2) {
        std::printf("   %-5s", "-");
        continue;
      }
      // Optimal for clients co-located with the deployed sites.
      std::vector<size_t> sites = sim::ScaleOutSites(n);
      double optimal_ms = Ms(harness::OptimalLatency(sites, sites));
      double x = PenaltyX(row.protocol, row.f, n, clients, optimal_ms);
      std::printf("  %5.2fx", x);
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: FPaxos penalty grows sharply past 9 sites (leader "
              "saturation); EPaxos\ndegrades from 11 sites; ATLAS f=1 stays ~1.0x and "
              "f=2 within ~1.3x.\n");
  return 0;
}
