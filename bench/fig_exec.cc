// Closed-loop benchmark of the parallel execution pipeline (ordering/execution
// split): GraphExecutor emitting ready commands into an exec::ExecPool over a
// lane-partitioned store, swept over conflict rate x executor threads.
//
// This isolates the execution tier the way fig_wallclock isolates the runtime
// tier: no sockets, no protocol rounds — one dispatcher thread commits a fixed
// command stream through the graph executor (empty dependencies, so emission
// order is commit order) and E lane threads apply them. The dispatcher is
// closed-loop against the pool's bounded SPSC rings: a full lane inbox makes
// it drain completions and retry, so offered load is always matched to apply
// capacity (no unbounded queueing). The inline baseline (E = 0) is the seed's
// execution path — the same GraphExecutor applying synchronously to a flat
// kvs::KvStore on the dispatcher thread.
//
// The conflict-rate sweep shows the commute-lane contract directly:
//   * low  (0% hot):  disjoint keys spread over all lanes — the parallel case;
//   * mid  (10% hot): a hot key serializes a tenth of the stream on one lane;
//   * high (100% hot): every command hits one key, one lane does all the work
//     and the pool degrades to sequential application plus handoff overhead.
//
// Every point's final store digest must equal the inline baseline's for the
// same workload (the byte-identity contract, enforced here with process exit,
// not just in tests). Emits BENCH_exec.json with per-point throughput, the
// low-conflict E=4 vs inline ratio, and the host core count as provenance:
// lane parallelism needs real cores, so the acceptance gate is ratio >= 2.0
// only on hosts with >= 4 cores; below that the lanes time-slice one core and
// the gate is "not catastrophically worse than inline" (>= 0.5x — the handoff-and-timeslice
// overhead bound), with the core count recorded so the two regimes are never
// conflated when diffing checked-in results. --smoke shrinks the stream for CI.
#include <cstdio>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/exec/exec_pool.h"
#include "src/exec/graph_executor.h"
#include "src/exec/laned_store.h"
#include "src/kvs/kvs.h"
#include "src/smr/command.h"

namespace {

struct WorkloadSpec {
  const char* name;
  uint32_t hot_percent;  // % of commands hitting the single hot key
};

// Deterministic command stream: 64B values, 1/3 kRmw (append) 2/3 kPut, keys
// uniform over a space much larger than any lane count so low-conflict runs
// spread evenly.
std::vector<smr::Command> BuildWorkload(size_t n, uint32_t hot_percent) {
  std::vector<smr::Command> cmds;
  cmds.reserve(n);
  const std::string value(64, 'v');
  uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (uint64_t i = 1; i <= n; i++) {
    uint64_t r = next();
    std::string key = (r % 100) < hot_percent
                          ? "hot"
                          : "k" + std::to_string(next() % 65536);
    cmds.push_back((r % 3 == 0) ? smr::MakeRmw(1, i, std::move(key), value)
                                : smr::MakePut(1, i, std::move(key), value));
  }
  return cmds;
}

struct PointResult {
  double throughput = 0;  // applied commands per wall-clock second
  uint64_t digest = 0;
  uint64_t completions = 0;
};

// Inline baseline: the pre-split execution path — GraphExecutor applying
// synchronously on the committing thread to a flat store.
PointResult RunInline(const std::vector<smr::Command>& cmds) {
  PointResult res;
  kvs::KvStore store;
  exec::GraphExecutor executor(
      exec::BatchOrder::kDot,
      [&](const common::Dot&, const smr::Command& cmd) {
        store.Apply(cmd);
        res.completions++;
      });
  auto t0 = std::chrono::steady_clock::now();
  uint64_t seq = 0;
  for (const smr::Command& cmd : cmds) {
    executor.Commit(common::Dot{0, ++seq}, cmd, common::DepSet());
  }
  double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  res.throughput = sec > 0 ? static_cast<double>(cmds.size()) / sec : 0;
  res.digest = store.StateDigest();
  return res;
}

// Pool point: same commit stream, E lane threads applying concurrently.
PointResult RunPooled(const std::vector<smr::Command>& cmds, uint32_t lanes) {
  PointResult res;
  exec::LanedStore store(lanes);
  exec::ExecPool::Options po;
  po.lanes = lanes;
  po.on_completion = [&res](uint64_t, uint64_t, std::string&&) {
    res.completions++;
  };
  exec::ExecPool pool(&store, po);
  exec::GraphExecutor executor(exec::BatchOrder::kDot, &pool);
  pool.Start();
  auto t0 = std::chrono::steady_clock::now();
  uint64_t seq = 0;
  for (const smr::Command& cmd : cmds) {
    executor.Commit(common::Dot{0, ++seq}, cmd, common::DepSet());
  }
  pool.WaitIdle();
  double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  pool.Stop();
  res.throughput = sec > 0 ? static_cast<double>(cmds.size()) / sec : 0;
  res.digest = store.StateDigest();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const size_t kOps = smoke ? 50000 : 400000;
  // Best-of-3: each point's stream is tens of milliseconds at smoke scale, so
  // a single run is at the mercy of the scheduler (especially when E lanes
  // time-slice one core). Parity is asserted on every repeat; throughput is
  // the best repeat — the standard way to estimate the capacity of the code
  // rather than the noise of the host.
  const int kRepeats = 3;
  const unsigned cores = std::thread::hardware_concurrency();

  const WorkloadSpec workloads[] = {
      {"low", 0}, {"mid", 10}, {"high", 100}};
  const uint32_t lane_sweep[] = {1, 2, 4};

  std::printf("=== Execution pipeline: GraphExecutor -> ExecPool, %zu ops ===\n",
              kOps);
  std::printf("(64B values, 1/3 rmw; host cores: %u)\n\n", cores);
  std::printf("%-6s  %-8s  %12s  %8s\n", "wl", "mode", "ops/sec", "digest");

  bench::BenchJsonWriter json("exec");
  bool all_ok = true;
  double low_inline_tp = 0;
  double low_e4_tp = 0;
  for (const WorkloadSpec& wl : workloads) {
    std::vector<smr::Command> cmds = BuildWorkload(kOps, wl.hot_percent);
    PointResult base;
    for (int rep = 0; rep < kRepeats; rep++) {
      PointResult r = RunInline(cmds);
      all_ok = all_ok && r.completions == kOps;
      if (rep == 0 || r.throughput > base.throughput) {
        base = r;
      }
    }
    std::printf("%-6s  %-8s  %12.0f  %08llx\n", wl.name, "inline",
                base.throughput,
                static_cast<unsigned long long>(base.digest & 0xffffffff));
    char name[64];
    std::snprintf(name, sizeof(name), "exec_%s_inline", wl.name);
    json.Add(name, 0, 0, base.throughput);
    if (wl.hot_percent == 0) {
      low_inline_tp = base.throughput;
    }
    for (uint32_t lanes : lane_sweep) {
      PointResult r;
      bool parity = true;
      for (int rep = 0; rep < kRepeats; rep++) {
        PointResult one = RunPooled(cmds, lanes);
        parity = parity && one.digest == base.digest && one.completions == kOps;
        if (rep == 0 || one.throughput > r.throughput) {
          r = one;
        }
      }
      if (!parity) {
        std::fprintf(stderr,
                     "fig_exec: DIGEST/COMPLETION PARITY BROKEN at %s E=%u\n",
                     wl.name, lanes);
        all_ok = false;
      }
      std::printf("%-6s  E=%-6u  %12.0f  %08llx%s\n", wl.name, lanes,
                  r.throughput,
                  static_cast<unsigned long long>(r.digest & 0xffffffff),
                  parity ? "" : "  <- MISMATCH");
      std::snprintf(name, sizeof(name), "exec_%s_e%u", wl.name, lanes);
      json.Add(name, 0, 0, r.throughput);
      if (wl.hot_percent == 0 && lanes == 4) {
        low_e4_tp = r.throughput;
      }
    }
  }

  // The acceptance gate (see header): parallel speedup needs parallel hardware.
  double ratio = low_inline_tp > 0 ? low_e4_tp / low_inline_tp : 0;
  double floor = cores >= 4 ? 2.0 : 0.5;
  bool gate_ok = ratio >= floor;
  std::printf("\nlow-conflict E=4 vs inline: %.2fx (floor %.1fx on %u cores)%s\n",
              ratio, floor, cores, gate_ok ? "" : "  <- BELOW FLOOR");
  json.Add("exec_low_e4_vs_inline", 0, 0, ratio);
  json.Add("exec_host_cores", 0, 0, static_cast<double>(cores));
  json.Add("exec_digest_parity", 0, 0, all_ok ? 1.0 : 0.0);
  json.WriteOut();
  return (all_ok && gate_ok) ? 0 : 1;
}
