// Figure 5 (§5.4, "bringing the service closer to clients"): average client-perceived
// latency as the deployment scales out from 3 to 13 sites; fixed client population
// spread over the 13 client locations; 2% conflicts; 100-byte payloads.
//
// Paper shape: Atlas improves as sites are added (f=1 ends ~13% above optimal, f=2
// ~32%); FPaxos is ~2x slower than Atlas with the same f; EPaxos stays ~flat around
// 300ms (large fast quorums); Mencius is the slowest (speed of the slowest replica).
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"
#include "bench/bench_json.h"

using bench::Ms;
using bench::RunOnce;
using bench::RunSpec;
using bench::ScaledClients;

namespace {

// Simulated commands completed across all runs and the wall-clock time spent, the
// "simulated commands/sec" perf number tracked in BENCH_fig5.json across PRs.
uint64_t g_total_completed = 0;
double g_total_wall_sec = 0;

double AvgLatencyMs(harness::Protocol protocol, uint32_t f, uint32_t sites,
                    size_t clients_per_region) {
  RunSpec spec;
  spec.opts.protocol = protocol;
  spec.opts.f = f;
  spec.opts.site_regions = sim::ScaleOutSites(sites);
  spec.opts.seed = 5;
  // Sites are real machines: charge per-message CPU so that funneling every command
  // through one leader costs what it cost the paper's n1-standard-8 nodes.
  spec.opts.per_message_cost = 25;
  spec.opts.egress_bytes_per_sec = 64.0 * 1024 * 1024;
  spec.client_regions = sim::ClientSites();  // clients stay at all 13 locations
  spec.clients_per_region = clients_per_region;
  spec.workload = std::make_shared<wl::MicroWorkload>(0.02, 100);
  spec.warmup = 3 * common::kSecond;
  spec.measure = 6 * common::kSecond;
  auto wall_start = std::chrono::steady_clock::now();
  harness::Metrics m = RunOnce(spec);
  g_total_wall_sec +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  g_total_completed += m.completed_in_window;
  return m.per_client_mean_us / 1000.0;
}

}  // namespace

int main() {
  // Paper: 1000 clients across 13 sites => 77 per site.
  const size_t clients = ScaledClients(77);
  std::printf("=== Figure 5: latency scaling out 3->13 sites ===\n");
  std::printf("(%zu clients per client-region x 13 regions, 2%% conflicts, 100B)\n\n",
              clients);
  const uint32_t deployments[] = {3, 5, 7, 9, 11, 13};

  std::printf("%-12s", "protocol");
  for (uint32_t n : deployments) {
    std::printf("  n=%-2u        ", n);
  }
  std::printf("\n");

  std::vector<double> optimal;
  for (uint32_t n : deployments) {
    optimal.push_back(
        Ms(harness::OptimalLatency(sim::ScaleOutSites(n), sim::ClientSites())));
  }

  struct Row {
    const char* name;
    harness::Protocol protocol;
    uint32_t f;
  };
  const Row rows[] = {
      {"FPaxos f=1", harness::Protocol::kFPaxos, 1},
      {"FPaxos f=2", harness::Protocol::kFPaxos, 2},
      {"Mencius", harness::Protocol::kMencius, 1},
      {"EPaxos", harness::Protocol::kEPaxos, 1},
      {"ATLAS f=1", harness::Protocol::kAtlas, 1},
      {"ATLAS f=2", harness::Protocol::kAtlas, 2},
  };
  for (const Row& row : rows) {
    std::printf("%-12s", row.name);
    for (size_t i = 0; i < 6; i++) {
      uint32_t n = deployments[i];
      if (row.f >= (n + 1) / 2) {  // f must satisfy f <= floor((n-1)/2)
        std::printf("  %-12s", "-");
        continue;
      }
      double ms = AvgLatencyMs(row.protocol, row.f, n, clients);
      std::printf("  %5.0fms %+4.0f%%", ms, (ms / optimal[i] - 1.0) * 100.0);
    }
    std::printf("\n");
  }
  std::printf("%-12s", "optimal");
  for (double o : optimal) {
    std::printf("  %5.0fms      ", o);
  }
  std::printf("\n\nPaper shape: ATLAS latency falls as sites are added (f=1 within "
              "~13%% of optimal at 13\nsites); FPaxos ~2x ATLAS at equal f; EPaxos "
              "flat ~300ms; Mencius slowest.\n");

  double cmds_per_sec =
      g_total_wall_sec > 0 ? static_cast<double>(g_total_completed) / g_total_wall_sec
                           : 0;
  std::printf("\nsim throughput: %llu commands in %.1fs wall = %.0f sim-commands/sec\n",
              static_cast<unsigned long long>(g_total_completed), g_total_wall_sec,
              cmds_per_sec);
  bench::BenchJsonWriter json("fig5");
  json.Add("fig5_scale_out_sim_commands",
           g_total_completed > 0
               ? g_total_wall_sec * 1e9 / static_cast<double>(g_total_completed)
               : 0,
           /*bytes_per_sec=*/0, /*items_per_sec=*/cmds_per_sec);
  json.WriteOut();
  return 0;
}
