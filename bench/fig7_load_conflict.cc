// Figure 7 (§5.5): throughput vs latency at 5 sites as the per-site client count
// doubles from 8 to 512, under moderate (10%) and high (100%) conflict rates, 3KB
// payloads.
//
// Paper shape: Atlas f=1 is the fastest until saturation; EPaxos degrades faster with
// load and collapses at 100% conflicts (latency >= 780ms); FPaxos is load-stable but
// slower until the leader saturates; at the highest load Atlas f=2 overtakes f=1
// because slow-path pruning (§4) shrinks execution batches.
#include <cstdio>

#include "bench/bench_common.h"

using bench::RunOnce;
using bench::RunSpec;
using bench::ScaledClients;

namespace {

constexpr double kEgressBytesPerSec = 64.0 * 1024 * 1024;
constexpr common::Duration kPerMessageCost = 20;

struct Point {
  double throughput = 0;
  double latency_ms = 0;
};

Point Run(harness::Protocol protocol, uint32_t f, size_t clients_per_site,
          double conflicts) {
  RunSpec spec;
  spec.opts.protocol = protocol;
  spec.opts.f = f;
  spec.opts.site_regions = sim::ScaleOutSites(5);
  spec.opts.seed = 7 + clients_per_site;
  spec.opts.egress_bytes_per_sec = kEgressBytesPerSec;
  spec.opts.per_message_cost = kPerMessageCost;
  spec.client_regions = spec.opts.site_regions;
  spec.clients_per_region = clients_per_site;
  spec.workload = std::make_shared<wl::MicroWorkload>(conflicts, 3 * 1024);
  spec.warmup = 3 * common::kSecond;
  spec.measure = 5 * common::kSecond;
  harness::Metrics m = RunOnce(spec);
  return Point{m.ThroughputOpsPerSec(), m.per_client_mean_us / 1000.0};
}

}  // namespace

int main() {
  std::printf("=== Figure 7: throughput vs latency, 5 sites, growing load ===\n");
  std::printf("(3KB payloads; per-site clients double 8..256; left: 10%% conflicts, "
              "right: 100%%)\n\n");
  struct Row {
    const char* name;
    harness::Protocol protocol;
    uint32_t f;
  };
  const Row rows[] = {
      {"FPaxos f=1", harness::Protocol::kFPaxos, 1},
      {"EPaxos", harness::Protocol::kEPaxos, 1},
      {"ATLAS f=1", harness::Protocol::kAtlas, 1},
      {"ATLAS f=2", harness::Protocol::kAtlas, 2},
  };
  const size_t loads[] = {8, 16, 32, 64, 128, 256};
  for (double conflicts : {0.10, 1.0}) {
    std::printf("--- conflict rate %.0f%% ---\n", conflicts * 100);
    std::printf("%-12s %-10s", "protocol", "clients");
    std::printf("%14s %12s\n", "throughput", "latency");
    for (const Row& row : rows) {
      for (size_t load : loads) {
        size_t per_site = ScaledClients(load);
        Point p = Run(row.protocol, row.f, per_site, conflicts);
        std::printf("%-12s %-10zu%11.0f op/s %9.0fms\n", row.name, per_site * 5,
                    p.throughput, p.latency_ms);
      }
    }
    std::printf("\n");
  }
  std::printf("Paper shape: ATLAS f=1 fastest until saturation; EPaxos latency blows "
              "up at 100%%\nconflicts; ATLAS f=2 degrades more gracefully at the "
              "highest load (slow-path pruning).\n");
  return 0;
}
