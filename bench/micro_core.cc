// Microbenchmarks (google-benchmark) for the library's hot paths: dependency-set
// algebra, codec, conflict index, the graph executor, the simulator deliver path, and
// Zipfian sampling. Results are mirrored to BENCH_micro.json (see bench_json.h).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_json.h"
#include "src/codec/codec.h"
#include "src/common/dep_set.h"
#include "src/common/rng.h"
#include "src/exec/graph_executor.h"
#include "src/msg/message.h"
#include "src/sim/simulator.h"
#include "src/smr/conflict_index.h"

namespace {

using common::DepSet;
using common::Dot;

std::vector<DepSet> MakeReplies(size_t quorum, size_t deps_per_reply, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<DepSet> replies(quorum);
  for (auto& r : replies) {
    for (size_t i = 0; i < deps_per_reply; i++) {
      r.Insert(Dot{static_cast<common::ProcessId>(rng.Below(5)), 1 + rng.Below(32)});
    }
  }
  return replies;
}

// The engines keep per-engine scratch and call the *Into variants; measure that
// steady-state (allocation-free) path.
void BM_DepSetUnion(benchmark::State& state) {
  auto replies = MakeReplies(static_cast<size_t>(state.range(0)), 8, 1);
  DepSet out;
  for (auto _ : state) {
    common::UnionInto(replies, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_DepSetUnion)->Arg(4)->Arg(8);

void BM_DepSetThresholdUnion(benchmark::State& state) {
  auto replies = MakeReplies(static_cast<size_t>(state.range(0)), 8, 2);
  common::DepScratch scratch;
  DepSet out;
  for (auto _ : state) {
    common::ThresholdUnionInto(replies, 2, scratch, out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_DepSetThresholdUnion)->Arg(4)->Arg(8);

void BM_FastPathCondition(benchmark::State& state) {
  auto replies = MakeReplies(7, static_cast<size_t>(state.range(0)), 3);
  common::DepScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::FastPathCondition(replies, 2, scratch));
  }
}
BENCHMARK(BM_FastPathCondition)->Arg(2)->Arg(16);

void BM_MessageEncodeDecode(benchmark::State& state) {
  msg::MCollect m;
  m.dot = Dot{3, 12345};
  m.cmd = smr::MakePut(7, 99, "user001234", std::string(static_cast<size_t>(
                                                state.range(0)), 'x'));
  m.past = DepSet{Dot{0, 1}, Dot{1, 2}, Dot{2, 3}};
  m.quorum = common::Quorum::Of({0, 1, 2, 3});
  msg::Message wrapped = m;
  for (auto _ : state) {
    codec::Writer w;
    msg::Encode(w, wrapped);
    codec::Reader r(w.buffer());
    msg::Message out;
    bool ok = msg::Decode(r, out);
    benchmark::DoNotOptimize(ok);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(msg::EncodedSize(wrapped)));
}
BENCHMARK(BM_MessageEncodeDecode)->Arg(100)->Arg(3072);

void BM_ConflictIndex(benchmark::State& state) {
  bool compressed = state.range(0) == 1;
  smr::KeyConflictIndex idx(compressed ? smr::IndexMode::kCompressed
                                       : smr::IndexMode::kFull);
  common::Rng rng(5);
  uint64_t seq = 1;
  DepSet scratch;  // engines collect into a reusable scratch set; measure that path
  for (auto _ : state) {
    Dot dot{static_cast<common::ProcessId>(rng.Below(5)), seq++};
    smr::Command cmd = smr::MakePut(1, seq, "key" + std::to_string(rng.Below(64)), "v");
    idx.CollectInto(cmd, dot, scratch);
    benchmark::DoNotOptimize(scratch.size());
    idx.Record(dot, cmd);
  }
}
// Arg(0) = full mode, Arg(1) = compressed; both must stay visible so a regression in
// either indexing strategy shows up.
BENCHMARK(BM_ConflictIndex)->Arg(0)->Arg(1)->ArgName("compressed");

// Simulator deliver path: one Submit broadcasts to the other n-1 processes and the sim
// drains. Exercises the event queue, the egress/FIFO bookkeeping, EncodedSize, and the
// delivery dispatch — the per-message cost every sim-driven bench pays.
class BroadcastEngine final : public smr::Engine {
 public:
  void Submit(smr::Command cmd) override {
    msg::MCommit m;
    m.cmd = std::move(cmd);
    m.dot = Dot{self_, ++seq_};
    m.deps = DepSet{Dot{0, 1}, Dot{1, 2}, Dot{2, 3}};
    for (common::ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, m);
      }
    }
  }
  void OnMessage(common::ProcessId from, const msg::Message& m) override { received_++; }

 private:
  uint64_t seq_ = 0;
  uint64_t received_ = 0;
};

void BM_SimulatorDeliver(benchmark::State& state) {
  const uint32_t n = 5;
  sim::Simulator::Options opts;
  opts.seed = 7;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(common::kMillisecond, 0),
                     opts);
  std::vector<BroadcastEngine> engines(n);
  for (auto& e : engines) {
    sim.AddEngine(&e);
  }
  sim.Start();
  uint64_t client_seq = 0;
  for (auto _ : state) {
    sim.Submit(0, smr::MakePut(1, ++client_seq, "key42", "value"));
    sim.RunUntilIdle();
  }
  state.SetItemsProcessed(static_cast<int64_t>(sim.messages_delivered()));
}
BENCHMARK(BM_SimulatorDeliver);

void BM_GraphExecutorChain(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    uint64_t executed = 0;
    exec::GraphExecutor ex(exec::BatchOrder::kDot,
                           [&](const Dot&, const smr::Command&) { executed++; });
    state.ResumeTiming();
    const uint64_t n = 1000;
    for (uint64_t i = 1; i <= n; i++) {
      DepSet deps;
      if (i > 1) {
        deps.Insert(Dot{0, i - 1});
      }
      ex.Commit(Dot{0, i}, smr::MakePut(1, i, "k", "v"), deps);
    }
    benchmark::DoNotOptimize(executed);
  }
}
BENCHMARK(BM_GraphExecutorChain);

void BM_Zipf(benchmark::State& state) {
  common::Zipf zipf(1'000'000, 0.99);
  common::Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Sample(rng));
  }
}
BENCHMARK(BM_Zipf);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  bench::BenchJsonWriter json("micro");
  bench::JsonTeeReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  json.WriteOut();
  benchmark::Shutdown();
  return 0;
}
