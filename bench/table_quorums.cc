// Quorum-size table (§3.3 and §6 discussion): fast/slow quorum sizes of Atlas vs the
// EPaxos-class protocols across deployment sizes, plus the analytic closest-quorum
// latency they imply on the 13-site WAN (why smaller quorums matter).
#include <cstdio>

#include "src/core/config.h"
#include "src/epaxos/epaxos.h"
#include "src/harness/topology.h"
#include "src/sim/regions.h"

namespace {

common::Duration QuorumRttFrom(size_t site, const std::vector<size_t>& sites,
                               size_t quorum_size) {
  const auto& regions = sim::AllRegions();
  std::vector<common::Duration> rtts;
  for (size_t j = 0; j < sites.size(); j++) {
    if (j != site) {
      rtts.push_back(sim::ModeledRtt(regions[sites[site]], regions[sites[j]]));
    }
  }
  std::sort(rtts.begin(), rtts.end());
  if (quorum_size <= 1) {
    return 0;
  }
  return rtts[quorum_size - 2];
}

}  // namespace

int main() {
  std::printf("=== Quorum sizes: ATLAS floor(n/2)+f vs EPaxos ~3n/4 (§3.3) ===\n\n");
  std::printf("%4s %10s %10s %10s %10s %10s %12s\n", "n", "majority", "ATLAS f=1",
              "ATLAS f=2", "ATLAS f=3", "EPaxos", "ATLAS slow");
  for (uint32_t n : {3u, 5u, 7u, 9u, 11u, 13u}) {
    epaxos::Config ep;
    ep.n = n;
    std::printf("%4u %10zu", n, static_cast<size_t>(n / 2 + 1));
    for (uint32_t f : {1u, 2u, 3u}) {
      if (f <= (n - 1) / 2) {
        atlas::Config cfg;
        cfg.n = n;
        cfg.f = f;
        std::printf(" %10zu", cfg.FastQuorumSize());
      } else {
        std::printf(" %10s", "-");
      }
    }
    atlas::Config slow;
    slow.n = n;
    slow.f = 2 <= (n - 1) / 2 ? 2 : 1;
    std::printf(" %10zu %11zu\n", ep.FastQuorumSize(), slow.SlowQuorumSize());
  }

  std::printf("\n=== Implied closest-fast-quorum RTT per coordinator (13 sites) ===\n\n");
  auto sites = sim::ScaleOutSites(13);
  atlas::Config a1, a2;
  a1.n = 13;
  a1.f = 1;
  a2.n = 13;
  a2.f = 2;
  epaxos::Config ep;
  ep.n = 13;
  std::printf("%-6s %14s %14s %14s\n", "site", "ATLAS f=1", "ATLAS f=2", "EPaxos");
  double sum[3] = {0, 0, 0};
  for (size_t s = 0; s < sites.size(); s++) {
    double v1 = static_cast<double>(QuorumRttFrom(s, sites, a1.FastQuorumSize())) / 1000;
    double v2 = static_cast<double>(QuorumRttFrom(s, sites, a2.FastQuorumSize())) / 1000;
    double v3 = static_cast<double>(QuorumRttFrom(s, sites, ep.FastQuorumSize())) / 1000;
    sum[0] += v1;
    sum[1] += v2;
    sum[2] += v3;
    std::printf("%-6s %12.0fms %12.0fms %12.0fms\n", sim::AllRegions()[sites[s]].label,
                v1, v2, v3);
  }
  std::printf("%-6s %12.0fms %12.0fms %12.0fms\n", "avg", sum[0] / 13, sum[1] / 13,
              sum[2] / 13);
  std::printf("\nSmaller f => smaller fast quorums => closer quorums => lower latency "
              "(the core\nATLAS trade-off: fault tolerance for scalability).\n");
  return 0;
}
