// Figure 9 (§5.7): YCSB throughput over the replicated KVS, 7 and 13 sites, four
// read/write mixes, with and without the NFR optimization (* prefix).
//
// Paper shape: Atlas f=1 ~1.7x vanilla EPaxos on update-heavy; NFR adds up to ~33%
// (most in read-only, where *EPaxos / *ATLAS f=2 match vanilla ATLAS f=1); overall
// ATLAS+NFR beats vanilla EPaxos by 1.5-2.3x.
#include <cstdio>

#include "bench/bench_common.h"

using bench::RunOnce;
using bench::RunSpec;
using bench::ScaledClients;

namespace {

double ThroughputKops(harness::Protocol protocol, uint32_t f, bool nfr, uint32_t sites,
                      double read_pct, size_t clients_per_site) {
  RunSpec spec;
  spec.opts.protocol = protocol;
  spec.opts.f = f;
  spec.opts.nfr = nfr;
  spec.opts.site_regions = sim::ScaleOutSites(sites);
  spec.opts.seed = 9 + sites + static_cast<uint64_t>(read_pct * 10);
  spec.client_regions = spec.opts.site_regions;
  spec.clients_per_region = clients_per_site;
  spec.workload = std::make_shared<wl::YcsbWorkload>(1'000'000, read_pct, 100);
  spec.warmup = 3 * common::kSecond;
  spec.measure = 6 * common::kSecond;
  harness::Metrics m = RunOnce(spec);
  return m.ThroughputOpsPerSec() / 1000.0;
}

}  // namespace

int main() {
  const size_t clients = ScaledClients(24);  // paper: 128 YCSB threads per site
  std::printf("=== Figure 9: YCSB throughput (Kops/s), %zu clients/site ===\n",
              clients);
  std::printf("(1M records, Zipfian; * = NFR optimization enabled; speedup vs vanilla "
              "EPaxos in parens)\n\n");
  struct Mix {
    const char* name;
    double read_pct;
  };
  const Mix mixes[] = {{"20%-80%", 0.2}, {"50%-50%", 0.5}, {"80%-20%", 0.8},
                       {"100%-0%", 1.0}};
  struct Row {
    const char* name;
    harness::Protocol protocol;
    uint32_t f;
    bool nfr;
  };
  const Row rows[] = {
      {"EPaxos", harness::Protocol::kEPaxos, 0, false},
      {"*EPaxos", harness::Protocol::kEPaxos, 0, true},
      {"ATLAS f=1", harness::Protocol::kAtlas, 1, false},
      {"*ATLAS f=1", harness::Protocol::kAtlas, 1, true},
      {"ATLAS f=2", harness::Protocol::kAtlas, 2, false},
      {"*ATLAS f=2", harness::Protocol::kAtlas, 2, true},
  };
  for (uint32_t sites : {7u, 13u}) {
    std::printf("--- %u sites ---\n", sites);
    std::printf("%-12s", "protocol");
    for (const Mix& mix : mixes) {
      std::printf("%18s", mix.name);
    }
    std::printf("\n");
    double epaxos_base[4] = {0, 0, 0, 0};
    for (const Row& row : rows) {
      std::printf("%-12s", row.name);
      for (size_t mi = 0; mi < 4; mi++) {
        uint32_t f = row.f == 0 ? 1 : row.f;  // EPaxos ignores f
        double kops =
            ThroughputKops(row.protocol, f, row.nfr, sites, mixes[mi].read_pct,
                           clients);
        if (row.protocol == harness::Protocol::kEPaxos && !row.nfr) {
          epaxos_base[mi] = kops;
        }
        double speedup = epaxos_base[mi] > 0 ? kops / epaxos_base[mi] : 1.0;
        std::printf("%10.1fK (%.1fx)", kops, speedup);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Paper shape: ATLAS f=1 ~1.7x EPaxos update-heavy; NFR adds up to 33%% "
              "(read-only:\n*EPaxos/*ATLAS f=2 match vanilla ATLAS f=1); ATLAS+NFR "
              "1.5-2.3x vanilla EPaxos.\n");
  return 0;
}
