// Figure 8 (§5.6): availability under a site failure. 3 sites (TW, FI, SC), 128
// clients per site, half on the shared key 0 and half on per-client keys. At t=30s the
// TW site (the Paxos leader) is halted; the failure-detection timeout is 10s.
//
// Paper shape: Paxos blocks entirely until the new leader (SC) is elected ~40s; Atlas
// keeps executing throughout (commuting commands are undisturbed; key-0 commands stall
// only until the dead coordinator's commands are recovered). Atlas's aggregate
// throughput is roughly 2x Paxos before the failure.
#include <cstdio>

#include "bench/bench_common.h"

using bench::ScaledClients;

namespace {

struct Timeline {
  std::vector<double> per_site[3];
  std::vector<double> total;
};

Timeline Run(harness::Protocol protocol) {
  harness::ClusterOptions opts;
  opts.protocol = protocol;
  opts.f = 1;
  opts.site_regions = sim::ThreeSites();  // TW, FI, SC
  opts.leader = 0;                        // Paxos leader at TW (the site that dies)
  opts.seed = 8;
  harness::Cluster cluster(opts);
  const size_t per_site = ScaledClients(128);
  auto shared_wl = std::make_shared<wl::FixedKeyWorkload>(true, 100);
  auto unique_wl = std::make_shared<wl::FixedKeyWorkload>(false, 100);
  for (size_t r = 0; r < 3; r++) {
    harness::ClientSpec spec;
    spec.region = opts.site_regions[r];
    // Clients retry stuck operations after 12s (> the 10s detection timeout), like
    // the paper's closed-loop clients reconnecting after the failure is detected.
    spec.retry_timeout = 12 * common::kSecond;
    spec.workload = shared_wl;
    cluster.AddClients(spec, per_site / 2);
    spec.workload = unique_wl;
    cluster.AddClients(spec, per_site - per_site / 2);
  }
  cluster.ScheduleCrash(/*site=*/0, /*at=*/30 * common::kSecond,
                        /*detection_timeout=*/10 * common::kSecond);
  cluster.Start();
  cluster.RunFor(70 * common::kSecond);

  Timeline t;
  for (int s = 0; s < 3; s++) {
    for (int sec = 0; sec < 70; sec++) {
      t.per_site[s].push_back(
          cluster.SiteThroughput(static_cast<common::ProcessId>(s))
              .RatePerSecond(sec * common::kSecond));
    }
  }
  auto agg = cluster.AggregateThroughput();
  for (int sec = 0; sec < 70; sec++) {
    t.total.push_back(agg.RatePerSecond(sec * common::kSecond));
  }
  return t;
}

void PrintSeries(const char* name, const std::vector<double>& paxos,
                 const std::vector<double>& atlas) {
  std::printf("--- %s (ops/s per 1s bucket) ---\n", name);
  std::printf("%6s %10s %10s\n", "t(s)", "Paxos", "ATLAS");
  for (size_t sec = 0; sec < paxos.size(); sec += 5) {
    std::printf("%6zu %10.0f %10.0f\n", sec, paxos[sec], atlas[sec]);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 8: throughput under a site failure (3 sites, f=1) ===\n");
  std::printf("(TW crashes at t=30s; detection timeout 10s; TW is the Paxos leader)\n\n");
  Timeline paxos = Run(harness::Protocol::kPaxos);
  Timeline atlas = Run(harness::Protocol::kAtlas);
  const char* site_names[3] = {"TW (crashes)", "FI", "SC"};
  for (int s = 0; s < 3; s++) {
    PrintSeries(site_names[s], paxos.per_site[s], atlas.per_site[s]);
    std::printf("\n");
  }
  PrintSeries("all sites", paxos.total, atlas.total);

  // Summary numbers for EXPERIMENTS.md.
  auto avg = [](const std::vector<double>& v, size_t from, size_t to) {
    double s = 0;
    for (size_t i = from; i < to && i < v.size(); i++) {
      s += v[i];
    }
    return s / static_cast<double>(to - from);
  };
  std::printf("\nBefore failure (5-30s):  Paxos %.0f op/s, ATLAS %.0f op/s (%.1fx)\n",
              avg(paxos.total, 5, 30), avg(atlas.total, 5, 30),
              avg(atlas.total, 5, 30) / std::max(1.0, avg(paxos.total, 5, 30)));
  std::printf("During outage (31-40s):  Paxos %.0f op/s, ATLAS %.0f op/s\n",
              avg(paxos.total, 31, 40), avg(atlas.total, 31, 40));
  std::printf("After recovery (45-70s): Paxos %.0f op/s, ATLAS %.0f op/s\n",
              avg(paxos.total, 45, 70), avg(atlas.total, 45, 70));
  std::printf("\nPaper shape: Paxos drops to 0 during the 10s detection window and "
              "until the new\nleader is elected; ATLAS continues (reduced) service "
              "throughout and is ~2x before\nthe failure.\n");
  return 0;
}
