// Partition scale-out sweep (beyond the paper: ROADMAP sharding/batching item).
//
// Fig5-style deployment — 5 sites, f=1, §5.2 microbenchmark at 2% conflicts, 100-byte
// payloads, per-message CPU cost and egress bandwidth modeling the paper's
// n1-standard-8 nodes — swept over the number of partitions P per replica. P=1 is the
// classic single-pipeline replica (the seeded baseline, byte-identical to PR-1 runs);
// P>1 runs smr::ShardedEngine with per-partition engines and submission batching
// (commands arriving at one (site, partition) within a short window share one
// protocol round).
//
// Closed-loop scale-out methodology (as the paper's Fig 5 scales clients with
// sites): offered load and batch window scale with the provisioned capacity P,
// holding the per-(site, shard) client cohort constant. A fixed client
// population would instead shrink per-shard cohorts as 1/P — high-P replicas
// would pay more protocol rounds per command purely because the workload
// starved their batches, which measures the workload, not the replica.
//
// The tracked number is simulated throughput: commands completed per simulated
// second in the measure window. It is fully deterministic (seeded simulation),
// so the checked-in BENCH_shard.json is reproducible bit-for-bit on any
// machine — unlike the sim-commands-per-wall-second metric this bench used to
// record, which measured the simulator driver's event-heap overhead (it grows
// with the in-flight population, so high-P points lost on driver cost, not
// replica cost: the recorded P=8 < P=2 inversion, compounded by per-shard
// flush-timer storms chopping high-P batches — see ShardedEngine's single
// drain timer). Wall-clock seconds per sweep point are still printed as a
// driver-efficiency diagnostic; real wall-clock scaling of the thread-per-shard
// runtime is fig_wallclock's job. Emits BENCH_shard.json: per-P throughput, the
// P=4 vs P=1 speedup (acceptance floor: 1.5x) and the P=8 vs P=2 ratio
// (acceptance: >= 1.0).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"

using bench::Ms;
using bench::RunSpec;
using bench::ScaledClients;

namespace {

struct SweepPoint {
  uint32_t partitions = 1;
  double throughput = 0;  // completed commands per simulated second (deterministic)
  double mean_latency_ms = 0;
  uint64_t completed = 0;
  double wall_sec = 0;       // driver diagnostic only (noisy; not recorded)
  double measure_sec = 0;    // simulated measure window, seconds
  double shard_balance = 0;  // min/max executed across shards (1.0 = perfect)
  size_t max_batch = 0;
  double cmds_per_dot = 0;  // submission-batch amortization: client cmds per dot
};

SweepPoint RunPoint(uint32_t partitions, size_t clients_per_region) {
  RunSpec spec;
  spec.opts.protocol = harness::Protocol::kAtlas;
  spec.opts.f = 1;
  spec.opts.site_regions = sim::ScaleOutSites(5);
  spec.opts.seed = 5;
  spec.opts.per_message_cost = 25;
  spec.opts.egress_bytes_per_sec = 64.0 * 1024 * 1024;
  spec.opts.partitions = partitions;
  // Submission batching rides the sharded path only; P=1 stays the unbatched seed
  // configuration. The window scales with capacity like the client population
  // does: a closed-loop cohort turns over once per ~150ms WAN commit cycle, so a
  // wider window on a bigger in-flight population captures more of each shard's
  // cohort per round. 10ms x P stays well under the commit latency sweep-wide.
  spec.opts.batch_window =
      partitions > 1 ? 10 * partitions * common::kMillisecond : 0;
  spec.client_regions = sim::ClientSites();
  spec.clients_per_region = clients_per_region;
  spec.workload =
      std::make_shared<wl::PartitionedMicroWorkload>(partitions, 0.02, 100);
  spec.warmup = 3 * common::kSecond;
  spec.measure = 6 * common::kSecond;

  harness::Cluster cluster(spec.opts);
  for (size_t region : spec.client_regions) {
    harness::ClientSpec cs;
    cs.region = region;
    cs.workload = spec.workload;
    cluster.AddClients(cs, spec.clients_per_region);
  }
  cluster.SetMeasureWindow(spec.warmup, spec.warmup + spec.measure);
  auto wall_start = std::chrono::steady_clock::now();
  cluster.Start();
  cluster.RunFor(spec.warmup);
  uint64_t executions_at_warmup = cluster.Snapshot().total_executions;
  cluster.RunFor(spec.measure);
  double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  harness::Metrics m = cluster.Snapshot();

  SweepPoint p;
  p.partitions = partitions;
  p.completed = m.completed_in_window;
  p.wall_sec = wall_sec;
  p.measure_sec = static_cast<double>(spec.measure) / common::kSecond;
  p.throughput = static_cast<double>(m.completed_in_window) / p.measure_sec;
  p.mean_latency_ms = m.per_client_mean_us / 1000.0;
  p.max_batch = m.max_batch;
  // Every replica executes every dot, so dots in the measure window ~=
  // (executions delta) / n. Client commands per dot is the protocol-round
  // amortization submission batching bought (1.0 = unbatched).
  double dots =
      static_cast<double>(m.total_executions - executions_at_warmup) / 5.0;
  p.cmds_per_dot =
      dots > 0 ? static_cast<double>(m.completed_in_window) / dots : 0;
  if (!m.per_shard.empty()) {
    uint64_t lo = ~uint64_t{0};
    uint64_t hi = 0;
    for (const smr::EngineStats& s : m.per_shard) {
      lo = std::min(lo, s.executed);
      hi = std::max(hi, s.executed);
    }
    p.shard_balance = hi > 0 ? static_cast<double>(lo) / static_cast<double>(hi) : 0;
  } else {
    p.shard_balance = 1.0;
  }
  return p;
}

}  // namespace

int main() {
  std::printf("=== Partition scale-out: P engines per replica, batched submission ===\n");
  std::printf("(5 sites, f=1, 24 x P clients x 13 regions, 2%% conflicts, 100B payloads)\n\n");
  std::printf("%-4s  %12s  %12s  %10s  %9s  %9s  %9s  %7s\n", "P", "cmds/sec",
              "latency", "completed", "balance", "max-batch", "cmds/dot", "wall");

  const uint32_t sweep[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  for (uint32_t partitions : sweep) {
    // Offered load scales with capacity: 24 clients/region per partition keeps
    // every (site, shard) cohort at the same size across the sweep.
    SweepPoint p = RunPoint(partitions, ScaledClients(24 * partitions));
    std::printf("%-4u  %12.0f  %10.0fms  %10llu  %9.2f  %9zu  %9.1f  %6.2fs\n",
                p.partitions, p.throughput, p.mean_latency_ms,
                static_cast<unsigned long long>(p.completed), p.shard_balance,
                p.max_batch, p.cmds_per_dot, p.wall_sec);
    points.push_back(p);
  }

  // Look the acceptance points up by partition count, not sweep position, so editing
  // the sweep cannot silently change what the speedup metric compares.
  auto point_for = [&points](uint32_t partitions) -> const SweepPoint* {
    for (const SweepPoint& p : points) {
      if (p.partitions == partitions) {
        return &p;
      }
    }
    return nullptr;
  };
  const SweepPoint* p1 = point_for(1);
  const SweepPoint* p2 = point_for(2);
  const SweepPoint* p4 = point_for(4);
  const SweepPoint* p8 = point_for(8);
  double speedup = (p1 != nullptr && p4 != nullptr && p1->throughput > 0)
                       ? p4->throughput / p1->throughput
                       : 0;
  double p8_vs_p2 = (p2 != nullptr && p8 != nullptr && p2->throughput > 0)
                        ? p8->throughput / p2->throughput
                        : 0;
  std::printf("\nP=4 vs P=1: %.2fx commands/sec (acceptance floor: 1.5x)\n", speedup);
  std::printf("P=8 vs P=2: %.2fx commands/sec (acceptance floor: 1.0x)\n", p8_vs_p2);

  bench::BenchJsonWriter json("shard");
  for (const SweepPoint& p : points) {
    char name[64];
    std::snprintf(name, sizeof(name), "shard_sweep_p%u", p.partitions);
    json.Add(name,
             p.completed > 0
                 ? p.measure_sec * 1e9 / static_cast<double>(p.completed)
                 : 0,
             /*bytes_per_sec=*/0, /*items_per_sec=*/p.throughput);
  }
  json.Add("shard_sweep_speedup_p4_vs_p1", 0, 0, speedup);
  json.Add("shard_sweep_speedup_p8_vs_p2", 0, 0, p8_vs_p2);
  json.WriteOut();
  return 0;
}
