// Partition scale-out sweep (beyond the paper: ROADMAP sharding/batching item).
//
// Fig5-style deployment — 5 sites, f=1, §5.2 microbenchmark at 2% conflicts, 100-byte
// payloads, per-message CPU cost and egress bandwidth modeling the paper's
// n1-standard-8 nodes — swept over the number of partitions P per replica. P=1 is the
// classic single-pipeline replica (the seeded baseline, byte-identical to PR-1 runs);
// P>1 runs smr::ShardedEngine with per-partition engines and submission batching
// (commands arriving at one (site, partition) within a short window share one
// protocol round). The tracked number is simulated commands per wall-clock second:
// how much replica work one simulator core drives per second, i.e. the per-node
// pipeline cost a real deployment would pay in CPU.
//
// Emits BENCH_shard.json: per-P throughput plus the P=4 vs P=1 speedup (the PR's
// acceptance metric: >= 1.5x on this workload).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "bench/bench_json.h"

using bench::Ms;
using bench::RunSpec;
using bench::ScaledClients;

namespace {

struct SweepPoint {
  uint32_t partitions = 1;
  double sim_commands_per_sec = 0;
  double mean_latency_ms = 0;
  uint64_t completed = 0;
  double wall_sec = 0;
  double shard_balance = 0;  // min/max executed across shards (1.0 = perfect)
  size_t max_batch = 0;
};

SweepPoint RunPoint(uint32_t partitions, size_t clients_per_region) {
  RunSpec spec;
  spec.opts.protocol = harness::Protocol::kAtlas;
  spec.opts.f = 1;
  spec.opts.site_regions = sim::ScaleOutSites(5);
  spec.opts.seed = 5;
  spec.opts.per_message_cost = 25;
  spec.opts.egress_bytes_per_sec = 64.0 * 1024 * 1024;
  spec.opts.partitions = partitions;
  // Submission batching rides the sharded path only; P=1 stays the unbatched seed
  // configuration. 20ms is small against the ~150ms WAN commit latencies here.
  spec.opts.batch_window = partitions > 1 ? 20 * common::kMillisecond : 0;
  spec.client_regions = sim::ClientSites();
  spec.clients_per_region = clients_per_region;
  spec.workload =
      std::make_shared<wl::PartitionedMicroWorkload>(partitions, 0.02, 100);
  spec.warmup = 3 * common::kSecond;
  spec.measure = 6 * common::kSecond;

  harness::Cluster cluster(spec.opts);
  for (size_t region : spec.client_regions) {
    harness::ClientSpec cs;
    cs.region = region;
    cs.workload = spec.workload;
    cluster.AddClients(cs, spec.clients_per_region);
  }
  cluster.SetMeasureWindow(spec.warmup, spec.warmup + spec.measure);
  auto wall_start = std::chrono::steady_clock::now();
  cluster.Start();
  cluster.RunFor(spec.warmup + spec.measure);
  double wall_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  harness::Metrics m = cluster.Snapshot();

  SweepPoint p;
  p.partitions = partitions;
  p.completed = m.completed_in_window;
  p.wall_sec = wall_sec;
  p.sim_commands_per_sec =
      wall_sec > 0 ? static_cast<double>(m.completed_in_window) / wall_sec : 0;
  p.mean_latency_ms = m.per_client_mean_us / 1000.0;
  p.max_batch = m.max_batch;
  if (!m.per_shard.empty()) {
    uint64_t lo = ~uint64_t{0};
    uint64_t hi = 0;
    for (const smr::EngineStats& s : m.per_shard) {
      lo = std::min(lo, s.executed);
      hi = std::max(hi, s.executed);
    }
    p.shard_balance = hi > 0 ? static_cast<double>(lo) / static_cast<double>(hi) : 0;
  } else {
    p.shard_balance = 1.0;
  }
  return p;
}

}  // namespace

int main() {
  const size_t clients = ScaledClients(77);
  std::printf("=== Partition scale-out: P engines per replica, batched submission ===\n");
  std::printf("(5 sites, f=1, %zu clients x 13 regions, 2%% conflicts, 100B payloads)\n\n",
              clients);
  std::printf("%-4s  %14s  %12s  %10s  %9s  %9s\n", "P", "sim-cmds/sec", "latency",
              "completed", "balance", "max-batch");

  const uint32_t sweep[] = {1, 2, 4, 8};
  std::vector<SweepPoint> points;
  for (uint32_t partitions : sweep) {
    SweepPoint p = RunPoint(partitions, clients);
    std::printf("%-4u  %14.0f  %10.0fms  %10llu  %9.2f  %9zu\n", p.partitions,
                p.sim_commands_per_sec, p.mean_latency_ms,
                static_cast<unsigned long long>(p.completed), p.shard_balance,
                p.max_batch);
    points.push_back(p);
  }

  // Look the acceptance points up by partition count, not sweep position, so editing
  // the sweep cannot silently change what the speedup metric compares.
  auto point_for = [&points](uint32_t partitions) -> const SweepPoint* {
    for (const SweepPoint& p : points) {
      if (p.partitions == partitions) {
        return &p;
      }
    }
    return nullptr;
  };
  const SweepPoint* p1 = point_for(1);
  const SweepPoint* p4 = point_for(4);
  double speedup = (p1 != nullptr && p4 != nullptr && p1->sim_commands_per_sec > 0)
                       ? p4->sim_commands_per_sec / p1->sim_commands_per_sec
                       : 0;
  std::printf("\nP=4 vs P=1: %.2fx sim-commands/sec (acceptance floor: 1.5x)\n",
              speedup);

  bench::BenchJsonWriter json("shard");
  for (const SweepPoint& p : points) {
    char name[64];
    std::snprintf(name, sizeof(name), "shard_sweep_p%u", p.partitions);
    json.Add(name,
             p.completed > 0 ? p.wall_sec * 1e9 / static_cast<double>(p.completed) : 0,
             /*bytes_per_sec=*/0, /*items_per_sec=*/p.sim_commands_per_sec);
  }
  json.Add("shard_sweep_speedup_p4_vs_p1", 0, 0, speedup);
  json.WriteOut();
  return 0;
}
