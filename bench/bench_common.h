// Shared benchmark harness: builds a cluster per the paper's methodology (closed-loop
// clients at fixed regions, warmup + measurement window) and returns its metrics.
//
// All benches accept an optional scale factor through the ATLAS_BENCH_SCALE
// environment variable (default 1.0): client counts are multiplied and measurement
// windows stretched accordingly, letting CI run quick passes and workstations run
// paper-sized loads.
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/harness/cluster.h"
#include "src/harness/topology.h"
#include "src/sim/regions.h"
#include "src/wl/workload.h"

namespace bench {

inline double ScaleFactor() {
  const char* env = std::getenv("ATLAS_BENCH_SCALE");
  if (env == nullptr) {
    return 1.0;
  }
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline size_t ScaledClients(size_t base) {
  double v = static_cast<double>(base) * ScaleFactor();
  return v < 1 ? 1 : static_cast<size_t>(v);
}

struct RunSpec {
  harness::ClusterOptions opts;
  // Clients are placed per region (defaults to the 13 paper client locations
  // restricted by placement below).
  std::vector<size_t> client_regions;
  size_t clients_per_region = 1;
  std::shared_ptr<wl::Workload> workload;
  common::Duration warmup = 2 * common::kSecond;
  common::Duration measure = 5 * common::kSecond;
};

inline harness::Metrics RunOnce(const RunSpec& spec) {
  harness::Cluster cluster(spec.opts);
  for (size_t region : spec.client_regions) {
    harness::ClientSpec cs;
    cs.region = region;
    cs.workload = spec.workload;
    cluster.AddClients(cs, spec.clients_per_region);
  }
  cluster.SetMeasureWindow(spec.warmup, spec.warmup + spec.measure);
  cluster.Start();
  cluster.RunFor(spec.warmup + spec.measure);
  return cluster.Snapshot();
}

inline const char* Pct(double ratio) {
  static thread_local char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", ratio * 100.0);
  return buf;
}

inline double Ms(common::Duration d) {
  return static_cast<double>(d) / static_cast<double>(common::kMillisecond);
}

}  // namespace bench

#endif  // BENCH_BENCH_COMMON_H_
