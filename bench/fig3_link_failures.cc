// Figure 3 (§5.1): number of simultaneous link failures among 17 GCP sites as a
// function of the failure-detection timeout threshold, over a 90-day campaign.
//
// Paper result: with a 10s threshold only two single-link events occur; with 3s/5s
// thresholds two noticeable events appear (QC on Nov 7, TW on Dec 8), but at every
// instant all slow links are incident to at most ONE site => f <= 1 held throughout.
//
// Substitution (see DESIGN.md): synthetic campaign with the same event structure.
#include <cstdio>

#include "src/harness/linkmon.h"

int main() {
  std::printf("=== Figure 3: simultaneous link failures vs timeout threshold ===\n");
  std::printf("(17 sites, 90 days, 1 ping/s per link; synthetic campaign, "
              "see DESIGN.md)\n\n");
  harness::LinkMonOptions opts;
  harness::LinkMonResult result = harness::RunLinkFailureStudy(opts);
  std::printf("%s\n", harness::FormatLinkMonReport(opts, result).c_str());

  std::printf("Paper: timeouts were only ever reported on links incident to a single "
              "site,\nso f <= 1 held during the whole experiment. Reproduced: f <= %u.\n",
              result.f_bound);
  return 0;
}
