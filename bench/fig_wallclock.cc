// Closed-loop wall-clock benchmark over loopback TCP (thread-per-shard runtime).
//
// Real sockets, real threads, real time — the wall-clock counterpart to the
// deterministic simulated sweeps: 3 replicas on 127.0.0.1 running the threaded
// runtime (smr::DeploymentOptions::threaded — P worker threads per node behind
// SPSC mailboxes), swept over P ∈ {1, 2, 4, 8} × protocol {atlas, epaxos,
// mencius}. The workload shape follows FoundationDB's Throughput-style
// closed-loop clients: one pipelined client per node with a fixed window of
// outstanding 100-byte puts over private keys (closed loop with concurrency W,
// not open-loop arrivals — a reply immediately funds the next request).
// Throughput is completions per second in the measure window; per-op sojourn
// latency percentiles come from common::Histogram.
//
// Offered load scales with provisioned capacity (window W ∝ P), the same
// closed-loop scale-out methodology as fig_shard: per-(node, shard) in-flight
// cohorts stay constant across the sweep, so high-P points are not starved of
// batching by construction. P = 1 is the unbatched single-worker baseline (the
// deployment ignores the batch window at P = 1, matching the seed semantics);
// P > 1 amortizes the per-command protocol round — dependency bookkeeping plus
// ~4(n-1) message encodes/decodes per command — over submission batches. The
// I/O-tier syscall coalescing (per-socket write batching, burst reads) helps
// every point equally, so the sweep isolates the batching + multi-worker
// effect; on single-core CI runners parallelism contributes nothing and the
// remaining speedup is round amortization alone.
//
// A second sweep re-runs P in {2, 4, 8} with executor_threads = 2 (the
// parallel execution pipeline, src/exec/exec_pool.h) to record what the
// ordering/execution split buys — or costs — end to end on this host.
//
// Emits BENCH_wallclock.json: per-point throughput + p50/p95/p99, plus the
// acceptance ratios per protocol. Gates: P=8 strictly > P=2 (the inversion
// gate — it holds everywhere), and P=8 vs P=1 ≥ 3x, which needs ≥ 4 real
// cores: on a single-core host parallelism contributes nothing, the entire
// speedup is round amortization, and its ceiling is per-op fixed cost
// (execution at every replica + client I/O, ~10us/op here) over batched round
// cost — measured at 1.1–1.5x. The checked-in JSON records the host's core
// count alongside the ratios so the two regimes aren't conflated. --smoke
// shrinks the windows for CI.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "src/common/histogram.h"
#include "src/rt/node.h"
#include "src/smr/deployment.h"

namespace {

constexpr uint32_t kNodes = 3;
// Outstanding requests per partition per client connection: window W = this x P,
// keeping each (node, shard) in-flight cohort constant across the sweep.
constexpr size_t kWindowPerPartition = 16;

struct PointSpec {
  smr::Protocol protocol = smr::Protocol::kAtlas;
  const char* proto_name = "atlas";
  uint32_t partitions = 1;
  size_t executor_threads = 0;  // per-shard execution lanes (0 = inline apply)
  size_t window = 0;  // outstanding ops per client connection
  double warmup_sec = 1.0;
  double measure_sec = 4.0;
  uint16_t port_base = 0;
  std::string data_dir;  // non-empty = durable replicas (commit log + snapshots)
};

struct PointResult {
  double throughput = 0;  // completed ops per wall-clock second (measure window)
  uint64_t completed = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  bool ok = false;
};

// One sweep point: brings up a fresh 3-node threaded cluster on loopback,
// drives it with closed-loop client threads, measures a wall-clock window.
PointResult RunPoint(const PointSpec& spec) {
  PointResult res;
  for (int attempt = 0; attempt < 5; attempt++) {
    uint16_t base = static_cast<uint16_t>(spec.port_base + attempt * 4 +
                                          (getpid() % 512));
    std::vector<rt::PeerAddress> addrs;
    for (uint32_t i = 0; i < kNodes; i++) {
      addrs.push_back(rt::PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    smr::DeploymentOptions d;
    d.protocol = spec.protocol;
    d.n = kNodes;
    d.f = 1;
    d.partitions = spec.partitions;
    // Ignored at P = 1 (unbatched baseline); at P > 1 every worker drains its
    // submission batch once per window. 1ms is far above the doorbell's poll
    // granularity and far below client-visible latency targets.
    d.batch_window = 1 * common::kMillisecond;
    d.threaded = true;
    d.executor_threads = spec.executor_threads;
    std::vector<std::unique_ptr<smr::Deployment>> replicas;
    if (!spec.data_dir.empty()) {
      // Fresh subtree per attempt so a retried bind never recovers the state a
      // failed attempt logged.
      d.data_dir = spec.data_dir + "/try" + std::to_string(attempt);
    }
    std::vector<std::unique_ptr<rt::Node>> nodes;
    bool bind_ok = true;
    for (uint32_t i = 0; i < kNodes; i++) {
      smr::DeploymentOptions di = d;
      if (!di.data_dir.empty()) {
        di.data_dir += "/site-" + std::to_string(i);
      }
      replicas.push_back(std::make_unique<smr::Deployment>(std::move(di)));
      nodes.push_back(std::make_unique<rt::Node>(i, addrs, replicas[i].get()));
      if (!nodes.back()->Listen()) {
        bind_ok = false;
        break;
      }
    }
    if (!bind_ok) {
      continue;  // port block in use; try the next one
    }
    std::vector<std::thread> node_threads;
    for (uint32_t i = 0; i < kNodes; i++) {
      node_threads.emplace_back([&, i]() { nodes[i]->Run(); });
    }

    // 0 = warmup, 1 = measuring, 2 = stop. An op counts toward the window iff
    // its reply arrived inside it (per-op sojourn latency under pipelining).
    std::atomic<int> phase{0};
    std::atomic<uint64_t> completed{0};
    std::atomic<int> failures{0};
    std::vector<common::Histogram> hists(kNodes);
    std::vector<std::thread> clients;
    const std::string value(100, 'x');
    for (uint32_t c = 0; c < kNodes; c++) {
      clients.emplace_back([&, c]() {
        rt::Client client("127.0.0.1", addrs[c].port);
        bool connected = false;
        for (int i = 0; i < 200 && !connected; i++) {
          connected = client.Connect();
          if (!connected) {
            usleep(20 * 1000);
          }
        }
        if (!connected) {
          failures.fetch_add(1);
          return;
        }
        uint64_t seq = 0;
        // Send timestamps keyed by seq slot; replies on one connection can
        // complete out of order (independent shards), but never lap the window.
        std::vector<std::chrono::steady_clock::time_point> sent(2 * spec.window);
        auto send_next = [&]() {
          seq++;
          // Private per-client keys, hot-slot cycle: single-key (shard-local)
          // commands that the hash partitioner spreads over every partition.
          std::string key =
              "c" + std::to_string(c) + "-k" + std::to_string(seq % 64);
          sent[seq % sent.size()] = std::chrono::steady_clock::now();
          return client.Send(smr::MakePut(c + 1, seq, std::move(key), value));
        };
        for (size_t i = 0; i < spec.window; i++) {
          if (!send_next()) {
            failures.fetch_add(1);
            return;
          }
        }
        std::string result;
        uint64_t got_seq = 0;
        while (phase.load(std::memory_order_relaxed) != 2) {
          if (!client.RecvReply(&got_seq, &result)) {
            failures.fetch_add(1);
            return;
          }
          if (phase.load(std::memory_order_relaxed) == 1) {
            auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() -
                          sent[got_seq % sent.size()])
                          .count();
            hists[c].Record(us);
            completed.fetch_add(1, std::memory_order_relaxed);
          }
          if (!send_next()) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }

    auto sleep_sec = [](double s) {
      usleep(static_cast<useconds_t>(s * 1e6));
    };
    sleep_sec(spec.warmup_sec);
    phase.store(1);
    auto m0 = std::chrono::steady_clock::now();
    sleep_sec(spec.measure_sec);
    phase.store(2);
    double measured =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - m0)
            .count();
    for (auto& t : clients) {
      t.join();
    }
    for (auto& node : nodes) {
      node->Stop();
    }
    for (auto& t : node_threads) {
      t.join();
    }
    if (failures.load() != 0) {
      std::fprintf(stderr, "fig_wallclock: %d client failures at %s P=%u\n",
                   failures.load(), spec.proto_name, spec.partitions);
      return res;
    }
    common::Histogram all;
    for (const auto& h : hists) {
      all.Merge(h);
    }
    res.completed = completed.load();
    res.throughput = measured > 0 ? static_cast<double>(res.completed) / measured : 0;
    res.p50_ms = static_cast<double>(all.Percentile(50)) / 1000.0;
    res.p95_ms = static_cast<double>(all.Percentile(95)) / 1000.0;
    res.p99_ms = static_cast<double>(all.Percentile(99)) / 1000.0;
    res.ok = true;
    return res;
  }
  std::fprintf(stderr, "fig_wallclock: could not bind a port block (%s P=%u)\n",
               spec.proto_name, spec.partitions);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const double warmup_sec = smoke ? 0.3 : 1.0;
  const double measure_sec = smoke ? 0.8 : 4.0;

  struct Proto {
    smr::Protocol protocol;
    const char* name;
  };
  const Proto protos[] = {{smr::Protocol::kAtlas, "atlas"},
                          {smr::Protocol::kEPaxos, "epaxos"},
                          {smr::Protocol::kMencius, "mencius"}};
  const uint32_t sweep[] = {1, 2, 4, 8};

  std::printf("=== Wall-clock loopback TCP: thread-per-shard runtime ===\n");
  std::printf(
      "(3 nodes, f=1, 1 pipelined client/node, window = %zu x P each, 100B "
      "puts, %s)\n\n",
      kWindowPerPartition, smoke ? "smoke windows" : "full windows");
  std::printf("%-8s  %-3s  %8s  %10s  %9s  %9s  %9s\n", "proto", "P", "inflight",
              "ops/sec", "p50", "p95", "p99");

  bench::BenchJsonWriter json("wallclock");
  bool all_ok = true;
  uint16_t port_block = 47000;
  // Throwaway root for the durability points' logs/snapshots.
  char dur_template[] = "/tmp/atlas_wallclock_dur_XXXXXX";
  const char* mk = mkdtemp(dur_template);
  const std::string dur_root = mk != nullptr ? mk : "/tmp/atlas_wallclock_dur";
  for (const Proto& proto : protos) {
    double tp[9] = {0};  // throughput indexed by P
    for (uint32_t partitions : sweep) {
      PointSpec spec;
      spec.protocol = proto.protocol;
      spec.proto_name = proto.name;
      spec.partitions = partitions;
      spec.window = kWindowPerPartition * partitions;
      spec.warmup_sec = warmup_sec;
      spec.measure_sec = measure_sec;
      spec.port_base = port_block;
      port_block = static_cast<uint16_t>(port_block + 24);
      PointResult r = RunPoint(spec);
      all_ok = all_ok && r.ok;
      tp[partitions] = r.throughput;
      std::printf("%-8s  %-3u  %8zu  %10.0f  %7.1fms  %7.1fms  %7.1fms\n",
                  proto.name, partitions, spec.window * kNodes, r.throughput,
                  r.p50_ms, r.p95_ms, r.p99_ms);
      char name[64];
      std::snprintf(name, sizeof(name), "wallclock_%s_p%u", proto.name, partitions);
      json.Add(name, r.p50_ms * 1e6, /*bytes_per_sec=*/0,
               /*items_per_sec=*/r.throughput);
      std::snprintf(name, sizeof(name), "wallclock_%s_p%u_p95", proto.name,
                    partitions);
      json.Add(name, r.p95_ms * 1e6, 0, 0);
      std::snprintf(name, sizeof(name), "wallclock_%s_p%u_p99", proto.name,
                    partitions);
      json.Add(name, r.p99_ms * 1e6, 0, 0);
    }
    double p8_vs_p1 = tp[1] > 0 ? tp[8] / tp[1] : 0;
    double p8_vs_p2 = tp[2] > 0 ? tp[8] / tp[2] : 0;
    std::printf("%-8s  P=8 vs P=1: %.2fx (floor 3x)   P=8 vs P=2: %.2fx (floor 1x)\n",
                proto.name, p8_vs_p1, p8_vs_p2);
    char name[64];
    std::snprintf(name, sizeof(name), "wallclock_%s_p8_vs_p1", proto.name);
    json.Add(name, 0, 0, p8_vs_p1);
    std::snprintf(name, sizeof(name), "wallclock_%s_p8_vs_p2", proto.name);
    json.Add(name, 0, 0, p8_vs_p2);

    // The executor column: same sweep points with 2 execution lanes per shard
    // (smr::DeploymentOptions::executor_threads). On multi-core hosts this
    // shows what moving state application off the shard worker buys end to
    // end; on single-core hosts it measures the handoff overhead. Recorded,
    // not gated — the pipeline's own gates live in fig_exec.
    for (uint32_t partitions : {2u, 4u, 8u}) {
      PointSpec spec;
      spec.protocol = proto.protocol;
      spec.proto_name = proto.name;
      spec.partitions = partitions;
      spec.executor_threads = 2;
      spec.window = kWindowPerPartition * partitions;
      spec.warmup_sec = warmup_sec;
      spec.measure_sec = measure_sec;
      spec.port_base = port_block;
      port_block = static_cast<uint16_t>(port_block + 24);
      PointResult r = RunPoint(spec);
      all_ok = all_ok && r.ok;
      double vs_base = tp[partitions] > 0 ? r.throughput / tp[partitions] : 0;
      std::printf(
          "%-8s  %u+E2  %6zu  %10.0f  %7.1fms  %7.1fms  %7.1fms  (%.2fx "
          "inline-apply)\n",
          proto.name, partitions, spec.window * kNodes, r.throughput, r.p50_ms,
          r.p95_ms, r.p99_ms, vs_base);
      std::snprintf(name, sizeof(name), "wallclock_%s_p%u_e2", proto.name,
                    partitions);
      json.Add(name, r.p50_ms * 1e6, 0, r.throughput);
      std::snprintf(name, sizeof(name), "wallclock_%s_p%u_e2_vs_inline",
                    proto.name, partitions);
      json.Add(name, 0, 0, vs_base);
    }

    // The durability column: the P=4 point again with the per-shard commit
    // log + snapshots on (batched fsync, the default). Records what
    // persistence costs end to end on this host's filesystem; warn-only in
    // bench_check — raw fsync behaviour is too host-dependent to gate.
    {
      PointSpec spec;
      spec.protocol = proto.protocol;
      spec.proto_name = proto.name;
      spec.partitions = 4;
      spec.window = kWindowPerPartition * 4;
      spec.warmup_sec = warmup_sec;
      spec.measure_sec = measure_sec;
      spec.port_base = port_block;
      port_block = static_cast<uint16_t>(port_block + 24);
      spec.data_dir = dur_root + "/" + proto.name;
      PointResult r = RunPoint(spec);
      all_ok = all_ok && r.ok;
      double vs_inline = tp[4] > 0 ? r.throughput / tp[4] : 0;
      std::printf(
          "%-8s  4+dur %6zu  %10.0f  %7.1fms  %7.1fms  %7.1fms  (%.2fx "
          "inline, fsync=batch)\n",
          proto.name, spec.window * kNodes, r.throughput, r.p50_ms, r.p95_ms,
          r.p99_ms, vs_inline);
      std::snprintf(name, sizeof(name), "wallclock_%s_p4_durable", proto.name);
      json.Add(name, r.p50_ms * 1e6, 0, r.throughput);
      std::snprintf(name, sizeof(name), "wallclock_%s_p4_durable_vs_inline",
                    proto.name);
      json.Add(name, 0, 0, vs_inline);
    }
  }
  // Provenance: P>1 speedups are amortization-only below ~4 cores (see header).
  json.Add("wallclock_host_cores", 0, 0,
           static_cast<double>(std::thread::hardware_concurrency()));
  json.WriteOut();
  std::error_code ec;
  std::filesystem::remove_all(dur_root, ec);
  return all_ok ? 0 : 1;
}
