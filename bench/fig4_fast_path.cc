// Figure 4 (§5.3): ratio of fast paths for varying conflict rates.
//
// Setup per the paper: 3 sites for f=1, 5 sites for f=2, 7 sites for f=3; one client
// per site; conflict rates 0..100%. Paper shape: Atlas f=1 is always 100%; for f=2/3
// Atlas degrades about half as fast as EPaxos; at 100% conflicts EPaxos almost never
// takes the fast path while Atlas still does for ~50% of commands.
#include <cstdio>

#include "bench/bench_common.h"

using bench::RunOnce;
using bench::RunSpec;

namespace {

double FastPathRatio(harness::Protocol protocol, uint32_t f, uint32_t sites,
                     double conflicts) {
  RunSpec spec;
  spec.opts.protocol = protocol;
  spec.opts.f = f;
  spec.opts.site_regions = sim::ScaleOutSites(sites);
  spec.opts.seed = 42 + static_cast<uint64_t>(conflicts * 100);
  spec.client_regions = spec.opts.site_regions;
  spec.clients_per_region = 1;
  spec.workload = std::make_shared<wl::MicroWorkload>(conflicts, 100);
  spec.warmup = 2 * common::kSecond;
  spec.measure = 15 * common::kSecond;
  harness::Metrics m = RunOnce(spec);
  return m.fast_path_ratio;
}

}  // namespace

int main() {
  std::printf("=== Figure 4: fast-path ratio vs conflict rate ===\n");
  std::printf("(single client per site; n=3 for f=1, n=5 for f=2, n=7 for f=3)\n\n");
  const double rates[] = {0.0, 0.10, 0.20, 0.40, 0.60, 0.80, 1.0};
  std::printf("%-10s", "conflict");
  for (double r : rates) {
    std::printf("%8.0f%%", r * 100);
  }
  std::printf("\n");

  struct Row {
    const char* name;
    harness::Protocol protocol;
    uint32_t f;
    uint32_t sites;
  };
  const Row rows[] = {
      {"ATLAS f=1", harness::Protocol::kAtlas, 1, 3},
      {"ATLAS f=2", harness::Protocol::kAtlas, 2, 5},
      {"ATLAS f=3", harness::Protocol::kAtlas, 3, 7},
      {"EPaxos n=5", harness::Protocol::kEPaxos, 2, 5},
      {"EPaxos n=7", harness::Protocol::kEPaxos, 3, 7},
  };
  for (const Row& row : rows) {
    std::printf("%-10s", row.name);
    for (double r : rates) {
      double ratio = FastPathRatio(row.protocol, row.f, row.sites, r);
      std::printf("%8.0f%%", ratio * 100);
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: ATLAS f=1 stays at 100%%; at 100%% conflicts ATLAS f=2 "
              "keeps ~50%% fast paths\nwhile EPaxos drops towards 0%%.\n");
  return 0;
}
