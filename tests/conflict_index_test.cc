#include "src/smr/conflict_index.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace smr {
namespace {

using common::DepSet;
using common::Dot;

TEST(ConflictModelTest, KeyModel) {
  KeyConflictModel m;
  Command w1 = MakePut(1, 1, "a", "v");
  Command w2 = MakePut(1, 2, "a", "v");
  Command w3 = MakePut(1, 3, "b", "v");
  Command r1 = MakeGet(1, 4, "a");
  Command r2 = MakeGet(1, 5, "a");
  Command noop = MakeNoOp();
  EXPECT_TRUE(m.Conflicts(w1, w2));   // same key writes
  EXPECT_FALSE(m.Conflicts(w1, w3));  // different keys
  EXPECT_TRUE(m.Conflicts(w1, r1));   // read-write same key
  EXPECT_FALSE(m.Conflicts(r1, r2));  // reads commute
  EXPECT_TRUE(m.Conflicts(noop, r1));
  EXPECT_TRUE(m.Conflicts(w1, noop));
}

TEST(ConflictModelTest, MultiKey) {
  KeyConflictModel m;
  Command scan = MakeGet(1, 1, "a");
  scan.op = Op::kScan;
  scan.more_keys = {"b", "c"};
  Command w = MakePut(1, 2, "c", "v");
  EXPECT_TRUE(m.Conflicts(scan, w));
  Command w2 = MakePut(1, 3, "d", "v");
  EXPECT_FALSE(m.Conflicts(scan, w2));
}

TEST(KeyConflictIndexTest, FullModeReturnsAllConflicting) {
  KeyConflictIndex idx(IndexMode::kFull);
  Dot d1{0, 1}, d2{1, 1}, d3{2, 1};
  idx.Record(d1, MakePut(1, 1, "a", "v"));
  idx.Record(d2, MakePut(2, 1, "a", "v"));
  idx.Record(d3, MakePut(3, 1, "b", "v"));
  DepSet deps = idx.Conflicts(MakePut(4, 1, "a", "v"), Dot{3, 1});
  EXPECT_EQ(deps.size(), 2u);
  EXPECT_TRUE(deps.Contains(d1));
  EXPECT_TRUE(deps.Contains(d2));
}

TEST(KeyConflictIndexTest, ExcludesSelf) {
  KeyConflictIndex idx(IndexMode::kFull);
  Dot d1{0, 1};
  idx.Record(d1, MakePut(1, 1, "a", "v"));
  DepSet deps = idx.Conflicts(MakePut(1, 1, "a", "v"), d1);
  EXPECT_TRUE(deps.empty());
}

TEST(KeyConflictIndexTest, RecordIdempotent) {
  KeyConflictIndex idx(IndexMode::kFull);
  Dot d1{0, 1};
  idx.Record(d1, MakePut(1, 1, "a", "v"));
  idx.Record(d1, MakePut(1, 1, "a", "v"));
  EXPECT_EQ(idx.RecordedCount(), 1u);
  DepSet deps = idx.Conflicts(MakePut(2, 1, "a", "v"), Dot{9, 9});
  EXPECT_EQ(deps.size(), 1u);
}

TEST(KeyConflictIndexTest, CompressedKeepsLatestPerProcess) {
  KeyConflictIndex idx(IndexMode::kCompressed);
  idx.Record(Dot{0, 1}, MakePut(1, 1, "a", "v"));
  idx.Record(Dot{0, 2}, MakePut(1, 2, "a", "v"));  // replaces {0,1}
  idx.Record(Dot{1, 1}, MakePut(2, 1, "a", "v"));
  DepSet deps = idx.Conflicts(MakePut(3, 1, "a", "v"), Dot{9, 9});
  EXPECT_EQ(deps.size(), 2u);
  EXPECT_TRUE(deps.Contains(Dot{0, 2}));
  EXPECT_TRUE(deps.Contains(Dot{1, 1}));
  EXPECT_FALSE(deps.Contains(Dot{0, 1}));
}

TEST(KeyConflictIndexTest, ReadsConflictWithWritesOnly) {
  KeyConflictIndex idx(IndexMode::kFull);
  Dot w{0, 1}, r{1, 1};
  idx.Record(w, MakePut(1, 1, "a", "v"));
  idx.Record(r, MakeGet(2, 1, "a"));
  // A read depends only on the write.
  DepSet rd = idx.Conflicts(MakeGet(3, 1, "a"), Dot{9, 9});
  EXPECT_EQ(rd.size(), 1u);
  EXPECT_TRUE(rd.Contains(w));
  // A write depends on both.
  DepSet wd = idx.Conflicts(MakePut(3, 1, "a", "v"), Dot{9, 9});
  EXPECT_EQ(wd.size(), 2u);
}

TEST(KeyConflictIndexTest, NoOpConflictsWithEverything) {
  KeyConflictIndex idx(IndexMode::kFull);
  idx.Record(Dot{0, 1}, MakePut(1, 1, "a", "v"));
  idx.Record(Dot{1, 1}, MakeGet(2, 1, "b"));
  idx.Record(Dot{2, 1}, MakeNoOp());
  DepSet noop_deps = idx.Conflicts(MakeNoOp(), Dot{9, 9});
  EXPECT_EQ(noop_deps.size(), 3u);
  // And everything depends on the recorded noOp.
  DepSet w_deps = idx.Conflicts(MakePut(3, 1, "zzz", "v"), Dot{9, 9});
  EXPECT_TRUE(w_deps.Contains(Dot{2, 1}));
}

// Cross-validation: full-mode key index must agree exactly with the linear scan.
TEST(KeyConflictIndexTest, FullModeMatchesLinearScan) {
  common::Rng rng(11);
  KeyConflictModel model;
  for (int trial = 0; trial < 50; trial++) {
    KeyConflictIndex key_idx(IndexMode::kFull);
    LinearConflictIndex lin_idx(&model);
    for (int i = 0; i < 60; i++) {
      Dot dot{static_cast<common::ProcessId>(rng.Below(3)), 1 + rng.Below(1000)};
      std::string key(1, static_cast<char>('a' + rng.Below(4)));
      Command cmd;
      uint64_t kind = rng.Below(10);
      if (kind == 0) {
        cmd = MakeNoOp();
        cmd.client = 1;
        cmd.seq = static_cast<uint64_t>(i) + 1;
      } else if (kind < 4) {
        cmd = MakeGet(1, static_cast<uint64_t>(i) + 1, key);
      } else {
        cmd = MakePut(1, static_cast<uint64_t>(i) + 1, key, "v");
      }
      Dot self{9, 9};
      EXPECT_EQ(key_idx.Conflicts(cmd, self), lin_idx.Conflicts(cmd, self))
          << "trial " << trial << " step " << i;
      key_idx.Record(dot, cmd);
      lin_idx.Record(dot, cmd);
    }
  }
}

// The compressed index must chain-cover: every conflicting prior command is reachable
// from the new command's deps by following deps transitively.
TEST(KeyConflictIndexTest, CompressedChainCoversHistory) {
  common::Rng rng(13);
  for (int trial = 0; trial < 30; trial++) {
    KeyConflictIndex idx(IndexMode::kCompressed);
    KeyConflictModel model;
    std::vector<std::pair<Dot, Command>> history;
    std::unordered_map<Dot, DepSet, common::DotHash> dep_of;
    for (int i = 0; i < 50; i++) {
      Dot dot{static_cast<common::ProcessId>(rng.Below(3)),
              static_cast<uint64_t>(trial) * 1000 + static_cast<uint64_t>(i) + 1};
      std::string key(1, static_cast<char>('a' + rng.Below(2)));
      Command cmd = rng.Chance(0.3) ? MakeGet(1, dot.seq, key)
                                    : MakePut(1, dot.seq, key, "v");
      DepSet deps = idx.Conflicts(cmd, dot);
      idx.Record(dot, cmd);
      dep_of[dot] = deps;
      // Check: every conflicting command in history is transitively reachable.
      for (const auto& [prev_dot, prev_cmd] : history) {
        if (!model.Conflicts(cmd, prev_cmd)) {
          continue;
        }
        // BFS through deps.
        std::vector<Dot> stack(deps.begin(), deps.end());
        std::unordered_map<Dot, bool, common::DotHash> seen;
        bool found = false;
        while (!stack.empty()) {
          Dot d = stack.back();
          stack.pop_back();
          if (seen[d]) {
            continue;
          }
          seen[d] = true;
          if (d == prev_dot) {
            found = true;
            break;
          }
          auto it = dep_of.find(d);
          if (it != dep_of.end()) {
            stack.insert(stack.end(), it->second.begin(), it->second.end());
          }
        }
        EXPECT_TRUE(found) << "command " << cmd.ToString()
                           << " does not chain-cover " << prev_cmd.ToString();
      }
      history.emplace_back(dot, cmd);
    }
  }
}

}  // namespace
}  // namespace smr
