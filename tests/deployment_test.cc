// Replica assembly (smr::Deployment): the single construction site both drivers
// (simulator harness, TCP runtime) build replicas through.
//
//  * P=1 assembly is byte-identical to hand-built seed engines: a seeded run
//    produces exactly the same message/byte/stats counters (extending the
//    determinism pins, which run the full harness through Deployment);
//  * P>1 assembly is identical to a hand-rolled ShardedEngine;
//  * executed/committed/dropped demultiplexing unpacks kBatch composites onto
//    the right per-shard stores with correct applied counts.
#include "src/smr/deployment.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/atlas.h"
#include "src/sim/simulator.h"
#include "src/smr/sharded_engine.h"

namespace {

using common::ProcessId;

struct Counters {
  uint64_t delivered = 0;
  uint64_t bytes = 0;
  std::vector<smr::EngineStats> per_site;
};

enum class Build { kBareSeed, kHandRolledSharded, kDeployment };

// Drives a 3-site Atlas triad with a seeded submission mix and returns its
// counters. kBareSeed constructs engines exactly as the seed did; kDeployment
// goes through the assembly layer; kHandRolledSharded wires a ShardedEngine by
// hand (what harness/cluster.cc used to do before Deployment).
Counters RunTriad(Build build, uint32_t partitions) {
  sim::Simulator::Options opts;
  opts.seed = 99;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(10 * common::kMillisecond,
                                                           common::kMillisecond),
                     opts);
  auto make_atlas = [] {
    atlas::Config cfg;
    cfg.n = 3;
    cfg.f = 1;
    return std::make_unique<atlas::AtlasEngine>(cfg);
  };
  std::vector<std::unique_ptr<smr::Engine>> engines;
  std::vector<std::unique_ptr<smr::Deployment>> replicas;
  for (int i = 0; i < 3; i++) {
    switch (build) {
      case Build::kBareSeed:
        engines.push_back(make_atlas());
        break;
      case Build::kHandRolledSharded: {
        smr::ShardedOptions so;
        so.partitions = partitions;
        engines.push_back(std::make_unique<smr::ShardedEngine>(
            so, [&make_atlas](uint32_t) { return make_atlas(); }));
        break;
      }
      case Build::kDeployment: {
        smr::DeploymentOptions d;
        d.protocol = smr::Protocol::kAtlas;
        d.n = 3;
        d.f = 1;
        d.partitions = partitions;
        replicas.push_back(std::make_unique<smr::Deployment>(std::move(d)));
        break;
      }
    }
  }
  for (auto& e : engines) {
    sim.AddEngine(e.get());
  }
  for (auto& r : replicas) {
    sim.AddEngine(&r->engine());
  }
  sim.Start();

  common::Rng rng(4242);
  for (uint64_t i = 1; i <= 150; i++) {
    ProcessId site = static_cast<ProcessId>(i % 3);
    std::string key = rng.Chance(0.2) ? "shared" : "k" + std::to_string(i % 10);
    sim.Submit(site, smr::MakePut(100 + site, i, key, "value"));
    if (i % 5 == 0) {
      sim.RunFor(5 * common::kMillisecond);
    }
  }
  sim.RunUntilIdle();

  Counters c;
  c.delivered = sim.messages_delivered();
  c.bytes = sim.bytes_sent();
  for (auto& e : engines) {
    c.per_site.push_back(e->stats());
  }
  for (auto& r : replicas) {
    c.per_site.push_back(r->stats());
  }
  return c;
}

void ExpectSameCounters(const Counters& a, const Counters& b) {
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.bytes, b.bytes);
  ASSERT_EQ(a.per_site.size(), b.per_site.size());
  for (size_t i = 0; i < a.per_site.size(); i++) {
    EXPECT_EQ(a.per_site[i].submitted, b.per_site[i].submitted) << "site " << i;
    EXPECT_EQ(a.per_site[i].committed, b.per_site[i].committed) << "site " << i;
    EXPECT_EQ(a.per_site[i].executed, b.per_site[i].executed) << "site " << i;
    EXPECT_EQ(a.per_site[i].fast_paths, b.per_site[i].fast_paths) << "site " << i;
    EXPECT_EQ(a.per_site[i].slow_paths, b.per_site[i].slow_paths) << "site " << i;
    EXPECT_EQ(a.per_site[i].messages_sent, b.per_site[i].messages_sent)
        << "site " << i;
  }
}

TEST(DeploymentTest, P1AssemblyMatchesSeedEnginesExactly) {
  Counters bare = RunTriad(Build::kBareSeed, 1);
  Counters assembled = RunTriad(Build::kDeployment, 1);
  ExpectSameCounters(bare, assembled);
  EXPECT_GT(bare.per_site[0].committed, 0u);
}

TEST(DeploymentTest, ShardedAssemblyMatchesHandRolledShardedEngine) {
  Counters hand = RunTriad(Build::kHandRolledSharded, 4);
  Counters assembled = RunTriad(Build::kDeployment, 4);
  ExpectSameCounters(hand, assembled);
}

TEST(DeploymentTest, ApplyExecutedRoutesToPerShardStores) {
  smr::DeploymentOptions d;
  d.protocol = smr::Protocol::kAtlas;
  d.partitions = 4;
  smr::Deployment dep(std::move(d));

  // Find two keys in different shards.
  std::string key_a = "a0";
  std::string key_b;
  for (int i = 0; key_b.empty() && i < 1000; i++) {
    std::string k = "b" + std::to_string(i);
    if (dep.partitioner().ShardOf(k) != dep.partitioner().ShardOf(key_a)) {
      key_b = k;
    }
  }
  ASSERT_FALSE(key_b.empty());
  uint32_t shard_a = dep.partitioner().ShardOf(key_a);
  uint32_t shard_b = dep.partitioner().ShardOf(key_b);

  std::vector<std::pair<uint32_t, smr::Command>> seen;
  auto record = [&seen](uint32_t shard, const smr::Command& sub, std::string&&) {
    seen.emplace_back(shard, sub);
  };
  dep.ApplyExecuted(common::Dot{}, smr::MakePut(1, 1, key_a, "va"), record);
  dep.ApplyExecuted(common::Dot{}, smr::MakePut(1, 2, key_b, "vb"), record);

  // A batch (all sub-commands shard-local by construction) unpacks in encoded
  // order and lands on its shard's store.
  std::vector<smr::Command> subs;
  subs.push_back(smr::MakeRmw(2, 1, key_a, "+1"));
  subs.push_back(smr::MakeRmw(2, 2, key_a, "+2"));
  dep.ApplyExecuted(common::Dot{}, smr::MakeBatch(subs), record);

  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0].first, shard_a);
  EXPECT_EQ(seen[1].first, shard_b);
  EXPECT_EQ(seen[2].first, shard_a);
  EXPECT_EQ(seen[2].second, subs[0]);
  EXPECT_EQ(seen[3].second, subs[1]);

  EXPECT_EQ(dep.applied_count(shard_a), 3u);
  EXPECT_EQ(dep.applied_count(shard_b), 1u);
  // The stores really are partitioned: each key exists only in its shard's store.
  EXPECT_EQ(dep.store(shard_a).Apply(smr::MakeGet(9, 1, key_a)), "va+1+2");
  EXPECT_EQ(dep.store(shard_b).Apply(smr::MakeGet(9, 2, key_a)), "");
  EXPECT_EQ(dep.store(shard_b).Apply(smr::MakeGet(9, 3, key_b)), "vb");

  // noOps apply nowhere and don't count, but still reach the callback (checker
  // histories include them).
  dep.ApplyExecuted(common::Dot{}, smr::MakeNoOp(), record);
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(dep.applied_count(0) + dep.applied_count(1) + dep.applied_count(2) +
                dep.applied_count(3),
            4u);
}

TEST(DeploymentTest, ForEachCommittedAndDroppedUnpackBatches) {
  smr::DeploymentOptions d;
  d.protocol = smr::Protocol::kAtlas;
  d.partitions = 2;
  smr::Deployment dep(std::move(d));

  std::vector<smr::Command> subs;
  subs.push_back(smr::MakePut(1, 1, "x", "1"));
  subs.push_back(smr::MakePut(2, 7, "x", "2"));
  smr::Command batch = smr::MakeBatch(subs);

  std::vector<smr::Command> committed;
  dep.ForEachCommitted(batch,
                       [&](const smr::Command& c) { committed.push_back(c); });
  ASSERT_EQ(committed.size(), 2u);
  EXPECT_EQ(committed[0], subs[0]);
  EXPECT_EQ(committed[1], subs[1]);

  std::vector<smr::Command> dropped;
  dep.ForEachDropped(batch, [&](const smr::Command& c) { dropped.push_back(c); });
  ASSERT_EQ(dropped.size(), 2u);
  EXPECT_EQ(dropped[1].seq, 7u);

  // Non-batch commands pass through unmodified, and dropping never touched the
  // stores or counts.
  committed.clear();
  dep.ForEachCommitted(subs[0],
                       [&](const smr::Command& c) { committed.push_back(c); });
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(dep.applied_count(0), 0u);
  EXPECT_EQ(dep.applied_count(1), 0u);
}

}  // namespace
