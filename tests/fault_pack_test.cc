// Tests for the scenario-pack registry (src/fault/scenario.h) and the campaign
// runner's contract (src/fault/campaign.h): the registry is complete and stable,
// unknown packs fail with a message instead of aborting, rerun commands are exact,
// and a sample of (pack, protocol) tuples passes every acceptance gate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/campaign.h"
#include "src/fault/scenario.h"

namespace {

TEST(FaultPackTest, RegistryIsCompleteAndStable) {
  // Campaign sweeps iterate the registry in order; CI rerun lines reference packs
  // by name. Renaming or reordering breaks recorded reproductions, so the list is
  // pinned.
  const std::vector<std::string> expected = {
      "kill_one_replica", "partition_region_mid_commit", "dup_and_reorder",
      "rolling_restarts", "grey_failure_slow_link"};
  const std::vector<fault::Scenario>& all = fault::AllScenarios();
  ASSERT_EQ(all.size(), expected.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(all[i].name, expected[i]);
    EXPECT_FALSE(all[i].description.empty());
    // Every pack must actually schedule some fault and run long enough to drain.
    bool has_fault = all[i].profile.AnyMessageFault() ||
                     all[i].profile.timer_skew > 0 || !all[i].crashes.empty() ||
                     all[i].partition || all[i].slow_link;
    EXPECT_TRUE(has_fault) << all[i].name;
    EXPECT_GT(all[i].run_for, 0) << all[i].name;
    EXPECT_GT(all[i].ops_per_client, 0u) << all[i].name;
    const fault::Scenario* found = fault::FindScenario(expected[i]);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, expected[i]);
  }
  EXPECT_EQ(fault::FindScenario("no_such_pack"), nullptr);
}

TEST(FaultPackTest, UnknownPackFailsWithMessage) {
  fault::RunSpec spec;
  spec.pack = "no_such_pack";
  fault::RunResult r = fault::RunScenario(spec);
  EXPECT_FALSE(r.pass);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].find("unknown scenario pack"), std::string::npos);
  EXPECT_NE(r.failures[0].find("no_such_pack"), std::string::npos);
}

TEST(FaultPackTest, ProtocolNamesRoundTrip) {
  for (const char* name : {"atlas", "epaxos", "mencius"}) {
    auto p = fault::ParseProtocol(name);
    ASSERT_TRUE(p.has_value()) << name;
    EXPECT_STREQ(fault::ProtocolFlagName(*p), name);
  }
  EXPECT_FALSE(fault::ParseProtocol("paxos").has_value());
  EXPECT_FALSE(fault::ParseProtocol("").has_value());
}

TEST(FaultPackTest, RerunCommandIsExact) {
  fault::RunSpec spec;
  spec.pack = "rolling_restarts";
  spec.seed = 42;
  spec.protocol = harness::Protocol::kEPaxos;
  spec.partitions = 4;
  EXPECT_EQ(fault::RerunCommand(spec),
            "fault_campaign --pack rolling_restarts --seed 42 --protocol epaxos "
            "--partitions 4");
}

// A small gate-level smoke: one crash/restart pack and one message-chaos pack,
// across all three protocols. The full seeds x packs x protocols x partitions
// sweep lives in tools/fault_campaign.cc (CI runs `fault_campaign --smoke`); this
// keeps a representative slice inside ctest.
TEST(FaultPackTest, SampleTuplesPassAllGates) {
  for (harness::Protocol proto :
       {harness::Protocol::kAtlas, harness::Protocol::kEPaxos,
        harness::Protocol::kMencius}) {
    for (const char* pack : {"kill_one_replica", "dup_and_reorder"}) {
      fault::RunSpec spec;
      spec.pack = pack;
      spec.seed = 1;
      spec.protocol = proto;
      fault::RunResult r = fault::RunScenario(spec);
      EXPECT_TRUE(r.pass) << fault::RerunCommand(spec) << ": "
                          << (r.failures.empty() ? "" : r.failures[0]);
      EXPECT_EQ(r.gave_up, 0u) << fault::RerunCommand(spec);
      EXPECT_EQ(r.stuck_clients, 0u) << fault::RerunCommand(spec);
      EXPECT_GT(r.completed, 0u);
      // The run must have actually exercised the pack's faults.
      if (std::string(pack) == "kill_one_replica") {
        EXPECT_GT(r.drops.src_crashed + r.drops.dest_crashed, 0u)
            << fault::RerunCommand(spec);
      } else {
        EXPECT_GT(r.inject.duplicated + r.inject.delayed, 0u)
            << fault::RerunCommand(spec);
      }
    }
  }
}

}  // namespace
