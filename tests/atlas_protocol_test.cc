// Atlas protocol tests: quorum sizing, fast/slow path behaviour (Figure 2 scenarios),
// dependency agreement (Invariants 1 and 2), NFR, slow-path pruning.
#include "src/core/atlas.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"

namespace atlas {
namespace {

using common::Dot;
using common::kMillisecond;
using common::ProcessId;

TEST(AtlasConfigTest, QuorumSizesMatchPaper) {
  // Table from §3.3: fast quorum floor(n/2)+f, slow quorum f+1.
  struct Case {
    uint32_t n, f;
    size_t fast, slow;
  };
  const Case cases[] = {
      {3, 1, 2, 2},  {5, 1, 3, 2},  {5, 2, 4, 3},  {7, 1, 4, 2},  {7, 2, 5, 3},
      {7, 3, 6, 4},  {13, 1, 7, 2}, {13, 2, 8, 3}, {13, 3, 9, 4},
  };
  for (const auto& c : cases) {
    Config cfg;
    cfg.n = c.n;
    cfg.f = c.f;
    cfg.Validate();
    EXPECT_EQ(cfg.FastQuorumSize(), c.fast) << "n=" << c.n << " f=" << c.f;
    EXPECT_EQ(cfg.SlowQuorumSize(), c.slow);
    EXPECT_EQ(cfg.RecoveryQuorumSize(), c.n - c.f);
  }
  // With f = 1 the fast quorum is a plain majority.
  for (uint32_t n : {3u, 5u, 7u, 9u, 11u, 13u}) {
    Config cfg;
    cfg.n = n;
    cfg.f = 1;
    EXPECT_EQ(cfg.FastQuorumSize(), cfg.MajoritySize());
  }
}

struct TestCluster {
  explicit TestCluster(uint32_t n, uint32_t f, bool nfr = false, bool prune = true,
                       common::Duration one_way = 10 * kMillisecond) {
    sim::Simulator::Options opts;
    opts.seed = 7;
    sim = std::make_unique<sim::Simulator>(
        std::make_unique<sim::UniformLatency>(one_way, 0), opts);
    for (uint32_t i = 0; i < n; i++) {
      Config cfg;
      cfg.n = n;
      cfg.f = f;
      cfg.nfr = nfr;
      cfg.prune_slow_path = prune;
      engines.push_back(std::make_unique<AtlasEngine>(cfg));
      sim->AddEngine(engines.back().get());
    }
    sim->SetExecutedHandler([this](ProcessId p, const Dot& d, const smr::Command& c) {
      executed.emplace_back(p, c);
    });
    sim->SetCommittedHandler(
        [this](ProcessId p, const Dot& d, const smr::Command& c, bool fast) {
          if (fast) {
            fast_commits++;
          }
        });
    sim->Start();
  }

  // Execution order of (client, seq) pairs at process p.
  std::vector<std::pair<uint64_t, uint64_t>> OrderAt(ProcessId p) const {
    std::vector<std::pair<uint64_t, uint64_t>> out;
    for (const auto& [proc, cmd] : executed) {
      if (proc == p && !cmd.is_noop()) {
        out.emplace_back(cmd.client, cmd.seq);
      }
    }
    return out;
  }

  std::unique_ptr<sim::Simulator> sim;
  std::vector<std::unique_ptr<AtlasEngine>> engines;
  std::vector<std::pair<ProcessId, smr::Command>> executed;
  int fast_commits = 0;
};

TEST(AtlasProtocolTest, SingleCommandCommitsOnFastPathAndExecutesEverywhere) {
  TestCluster tc(3, 1);
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunUntilIdle();
  EXPECT_EQ(tc.executed.size(), 3u);  // executed at all replicas
  EXPECT_EQ(tc.engines[0]->stats().fast_paths, 1u);
  EXPECT_EQ(tc.engines[0]->stats().slow_paths, 0u);
  // Commit after exactly one round trip to the closest majority: 2 * 10ms.
  EXPECT_EQ(tc.engines[0]->PhaseOf(Dot{0, 1}), AtlasEngine::Phase::kExecute);
}

TEST(AtlasProtocolTest, F1AlwaysFastPathEvenUnderFullConflicts) {
  TestCluster tc(5, 1);
  // All processes submit conflicting commands concurrently.
  for (ProcessId p = 0; p < 5; p++) {
    for (int i = 0; i < 10; i++) {
      tc.sim->Submit(p, smr::MakePut(p + 1, static_cast<uint64_t>(i) + 1, "hot", "v"));
    }
  }
  tc.sim->RunUntilIdle();
  uint64_t fast = 0, slow = 0;
  for (const auto& e : tc.engines) {
    fast += e->stats().fast_paths;
    slow += e->stats().slow_paths;
  }
  EXPECT_EQ(fast, 50u);
  EXPECT_EQ(slow, 0u);
  EXPECT_EQ(tc.executed.size(), 50u * 5);
}

TEST(AtlasProtocolTest, ConflictingCommandsExecuteInSameOrderEverywhere) {
  TestCluster tc(5, 2);
  for (ProcessId p = 0; p < 5; p++) {
    for (int i = 0; i < 20; i++) {
      tc.sim->Submit(p, smr::MakePut(p + 1, static_cast<uint64_t>(i) + 1, "hot", "v"));
    }
  }
  tc.sim->RunUntilIdle();
  auto ref = tc.OrderAt(0);
  EXPECT_EQ(ref.size(), 100u);
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.OrderAt(p), ref) << "replica " << p << " diverged";
  }
}

TEST(AtlasProtocolTest, NonConflictingCommandsAlwaysFastEvenF2) {
  TestCluster tc(5, 2);
  for (ProcessId p = 0; p < 5; p++) {
    for (int i = 0; i < 10; i++) {
      tc.sim->Submit(p, smr::MakePut(p + 1, static_cast<uint64_t>(i) + 1,
                                     "key" + std::to_string(p), "v"));
    }
  }
  tc.sim->RunUntilIdle();
  uint64_t slow = 0;
  for (const auto& e : tc.engines) {
    slow += e->stats().slow_paths;
  }
  EXPECT_EQ(slow, 0u);
}

// Figure 1 scenario: with f=2, a dependency reported by a single fast-quorum process
// forces the slow path at one coordinator while the other can still go fast.
TEST(AtlasProtocolTest, SlowPathTriggersWhenDependencyUnderReported) {
  // n=5, f=2, fast quorums of 4 (id order under uniform latency): b at 4 uses
  // {4,0,1,2}, a at 0 uses {0,1,2,3}. Slowing links 4->0 and 4->1 makes b reach
  // process 2 early and processes 0,1 late, so exactly one member of a's quorum
  // reports b: count(b) = 1 < f.
  TestCluster tc(5, 2, false, true, 10 * kMillisecond);
  tc.sim->SetLinkDelay(4, 0, 100 * kMillisecond);
  tc.sim->SetLinkDelay(4, 1, 100 * kMillisecond);
  tc.sim->Submit(4, smr::MakePut(5, 1, "hot", "v"));  // command b
  tc.sim->RunFor(15 * kMillisecond);                  // b reached process 2 only
  tc.sim->Submit(0, smr::MakePut(1, 1, "hot", "v"));  // command a
  tc.sim->RunUntilIdle();
  // Both commands execute at all replicas in a consistent order.
  auto ref = tc.OrderAt(0);
  EXPECT_EQ(ref.size(), 2u);
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.OrderAt(p), ref);
  }
  // a's coordinator saw b under-reported and had to use consensus.
  EXPECT_GE(tc.engines[0]->stats().slow_paths, 1u);
}

TEST(AtlasProtocolTest, NfrReadsCommitAfterMajorityAndAreNotDependencies) {
  TestCluster tc(5, 2, /*nfr=*/true);
  // A write, then a read, then another write on the same key.
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v1"));
  tc.sim->RunUntilIdle();
  tc.sim->Submit(1, smr::MakeGet(2, 1, "k"));
  tc.sim->RunUntilIdle();
  tc.sim->Submit(2, smr::MakePut(3, 1, "k", "v2"));
  tc.sim->RunUntilIdle();
  // All commands executed; reads never forced slow paths.
  uint64_t slow = 0;
  for (const auto& e : tc.engines) {
    slow += e->stats().slow_paths;
  }
  EXPECT_EQ(slow, 0u);
  // The second write's dependencies must not include the read <2,1>: its committed
  // deps contain only the first write.
  common::DepSet deps = tc.engines[2]->CommittedDeps(Dot{2, 1});
  EXPECT_EQ(deps.size(), 1u);
  EXPECT_TRUE(deps.Contains(Dot{0, 1}));
}

TEST(AtlasProtocolTest, WithoutNfrReadsAreDependencies) {
  TestCluster tc(5, 2, /*nfr=*/false);
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v1"));
  tc.sim->RunUntilIdle();
  tc.sim->Submit(1, smr::MakeGet(2, 1, "k"));
  tc.sim->RunUntilIdle();
  tc.sim->Submit(2, smr::MakePut(3, 1, "k", "v2"));
  tc.sim->RunUntilIdle();
  common::DepSet deps = tc.engines[2]->CommittedDeps(Dot{2, 1});
  EXPECT_TRUE(deps.Contains(Dot{1, 1}));  // the read is a dependency
}

// Invariant 1: all replicas agree on the committed dependencies of every command.
TEST(AtlasProtocolTest, CommittedDepsAgreeAcrossReplicas) {
  TestCluster tc(5, 2);
  for (ProcessId p = 0; p < 5; p++) {
    for (int i = 0; i < 5; i++) {
      tc.sim->Submit(p, smr::MakePut(p + 1, static_cast<uint64_t>(i) + 1, "hot", "v"));
    }
  }
  tc.sim->RunUntilIdle();
  for (ProcessId p = 0; p < 5; p++) {
    for (uint64_t s = 1; s <= 5; s++) {
      Dot dot{p, s};
      common::DepSet ref = tc.engines[0]->CommittedDeps(dot);
      for (ProcessId q = 1; q < 5; q++) {
        EXPECT_EQ(tc.engines[q]->CommittedDeps(dot), ref)
            << "deps of " << common::ToString(dot) << " disagree at " << q;
      }
    }
  }
}

// §4 pruning: a dependency reported by fewer than f fast-quorum processes is pruned
// from the slow-path proposal, so dependency sets shrink (Figure 1's dep[a] = {}).
TEST(AtlasProtocolTest, SlowPathPruningDropsUnderReportedDeps) {
  for (bool prune : {false, true}) {
    TestCluster tc(5, 2, false, prune);
    tc.sim->SetLinkDelay(4, 0, 100 * kMillisecond);
    tc.sim->SetLinkDelay(4, 1, 100 * kMillisecond);
    tc.sim->Submit(4, smr::MakePut(5, 1, "hot", "v"));  // b: reaches only process 2
    tc.sim->RunFor(15 * kMillisecond);
    tc.sim->Submit(0, smr::MakePut(1, 1, "hot", "v"));  // a: slow path, count(b)=1
    tc.sim->RunUntilIdle();
    common::DepSet deps_a = tc.engines[0]->CommittedDeps(Dot{0, 1});
    common::DepSet deps_b = tc.engines[0]->CommittedDeps(Dot{4, 1});
    EXPECT_GE(tc.engines[0]->stats().slow_paths, 1u);
    // Invariant 2' must hold either way.
    EXPECT_TRUE(deps_a.Contains(Dot{4, 1}) || deps_b.Contains(Dot{0, 1}));
    if (prune) {
      // Figure 1: b was reported by fewer than f processes, so a's proposal prunes it;
      // Invariant 2' holds through dep[b] ∋ a.
      EXPECT_FALSE(deps_a.Contains(Dot{4, 1}));
      EXPECT_TRUE(deps_b.Contains(Dot{0, 1}));
    } else {
      EXPECT_TRUE(deps_a.Contains(Dot{4, 1}));
    }
  }
}

TEST(AtlasProtocolTest, CommandsLearnedViaCommitEnterConflictIndex) {
  // Process 4 is outside the fast quorum of 0 (n=5, f=1, quorum = closest 3 = {0,1,2}).
  TestCluster tc(5, 1);
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunUntilIdle();
  // Now 4 submits a conflicting command; it must list <0,1> as dependency even though
  // it only learned of it via MCommit.
  tc.sim->Submit(4, smr::MakePut(2, 1, "k", "v"));
  tc.sim->RunUntilIdle();
  common::DepSet deps = tc.engines[0]->CommittedDeps(Dot{4, 1});
  EXPECT_TRUE(deps.Contains(Dot{0, 1}));
}

}  // namespace
}  // namespace atlas
