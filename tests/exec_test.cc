// Graph executor tests, including the equivalence of the incremental SCC execution
// with the paper's "smallest batch" definition (Algorithm 3) and cross-replica
// execution-order consistency (Invariants 3, 4 and Lemma 1).
#include "src/exec/graph_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/common/rng.h"

namespace exec {
namespace {

using common::DepSet;
using common::Dot;

smr::Command Cmd(uint64_t id) { return smr::MakePut(1, id, "k", "v"); }

struct Recorder {
  std::vector<Dot> order;
  GraphExecutor::ExecuteFn fn() {
    return [this](const Dot& d, const smr::Command&) { order.push_back(d); };
  }
};

TEST(GraphExecutorTest, IndependentCommandsExecuteImmediately) {
  Recorder rec;
  GraphExecutor ex(BatchOrder::kDot, rec.fn());
  ex.Commit(Dot{0, 1}, Cmd(1), DepSet{});
  ex.Commit(Dot{1, 1}, Cmd(2), DepSet{});
  EXPECT_EQ(rec.order.size(), 2u);
  EXPECT_EQ(ex.PendingCount(), 0u);
  EXPECT_TRUE(ex.IsExecuted(Dot{0, 1}));
}

TEST(GraphExecutorTest, WaitsForDependency) {
  Recorder rec;
  GraphExecutor ex(BatchOrder::kDot, rec.fn());
  Dot a{0, 1}, b{1, 1};
  ex.Commit(b, Cmd(2), DepSet{a});  // b depends on a, a not yet committed
  EXPECT_EQ(rec.order.size(), 0u);
  EXPECT_EQ(ex.PendingCount(), 1u);
  ex.Commit(a, Cmd(1), DepSet{});
  ASSERT_EQ(rec.order.size(), 2u);
  EXPECT_EQ(rec.order[0], a);
  EXPECT_EQ(rec.order[1], b);
}

TEST(GraphExecutorTest, CycleFormsOneBatchOrderedByDot) {
  Recorder rec;
  GraphExecutor ex(BatchOrder::kDot, rec.fn());
  Dot a{0, 1}, b{1, 1};
  ex.Commit(b, Cmd(2), DepSet{a});
  ex.Commit(a, Cmd(1), DepSet{b});  // mutual deps: one SCC
  ASSERT_EQ(rec.order.size(), 2u);
  EXPECT_EQ(rec.order[0], a);  // a < b in Dot order
  EXPECT_EQ(rec.order[1], b);
  EXPECT_EQ(ex.MaxBatch(), 2u);
}

TEST(GraphExecutorTest, SeqDotOrderInsideBatch) {
  Recorder rec;
  GraphExecutor ex(BatchOrder::kSeqDot, rec.fn());
  Dot a{0, 1}, b{1, 1};
  // b has lower seqno than a, so despite a < b in Dot order, b executes first.
  ex.Commit(b, Cmd(2), DepSet{a}, /*seqno=*/1);
  ex.Commit(a, Cmd(1), DepSet{b}, /*seqno=*/2);
  ASSERT_EQ(rec.order.size(), 2u);
  EXPECT_EQ(rec.order[0], b);
  EXPECT_EQ(rec.order[1], a);
}

TEST(GraphExecutorTest, LongChainExecutesInOrder) {
  Recorder rec;
  GraphExecutor ex(BatchOrder::kDot, rec.fn());
  const uint64_t kN = 5000;  // also exercises the iterative (non-recursive) Tarjan
  for (uint64_t i = kN; i >= 1; i--) {
    DepSet deps;
    if (i > 1) {
      deps.Insert(Dot{0, i - 1});
    }
    ex.Commit(Dot{0, i}, Cmd(i), deps);
    if (i > 1) {
      EXPECT_EQ(rec.order.size(), 0u);
    }
  }
  ASSERT_EQ(rec.order.size(), kN);
  for (uint64_t i = 0; i < kN; i++) {
    EXPECT_EQ(rec.order[i], (Dot{0, i + 1}));
  }
}

TEST(GraphExecutorTest, RecommitIgnored) {
  Recorder rec;
  GraphExecutor ex(BatchOrder::kDot, rec.fn());
  ex.Commit(Dot{0, 1}, Cmd(1), DepSet{});
  ex.Commit(Dot{0, 1}, Cmd(1), DepSet{});
  EXPECT_EQ(rec.order.size(), 1u);
  EXPECT_EQ(ex.ExecutedCount(), 1u);
}

TEST(GraphExecutorTest, DiamondExecutesDepsFirst) {
  Recorder rec;
  GraphExecutor ex(BatchOrder::kDot, rec.fn());
  Dot a{0, 1}, b{1, 2}, c{2, 3}, d{3, 4};
  ex.Commit(d, Cmd(4), DepSet{b, c});
  ex.Commit(b, Cmd(2), DepSet{a});
  ex.Commit(c, Cmd(3), DepSet{a});
  EXPECT_TRUE(rec.order.empty());
  ex.Commit(a, Cmd(1), DepSet{});
  ASSERT_EQ(rec.order.size(), 4u);
  EXPECT_EQ(rec.order[0], a);
  EXPECT_EQ(rec.order[3], d);
}

// Reference implementation of Algorithm 3: repeatedly find the smallest batch
// S ⊆ committed with deps(S) ⊆ S ∪ executed, execute its members in Dot order.
struct ReferenceExecutor {
  std::map<Dot, std::pair<smr::Command, DepSet>> committed;
  std::vector<Dot> executed_order;
  std::set<Dot> executed;

  void Commit(const Dot& d, smr::Command c, DepSet deps) {
    committed[d] = {std::move(c), std::move(deps)};
    while (RunOnce()) {
    }
  }

  // Smallest batch containing a given dot is its SCC-closure; the smallest batch
  // overall is the minimal closed set. We brute-force: try to find any minimal set by
  // iterating dots and computing the closure of "must be in S with it".
  bool RunOnce() {
    for (const auto& [root, _] : committed) {
      // Closure: start from root, add uncommitted-blocked detection.
      std::vector<Dot> stack{root};
      std::set<Dot> closure;
      bool blocked = false;
      while (!stack.empty()) {
        Dot d = stack.back();
        stack.pop_back();
        if (closure.count(d) > 0 || executed.count(d) > 0) {
          continue;
        }
        auto it = committed.find(d);
        if (it == committed.end()) {
          blocked = true;
          break;
        }
        closure.insert(d);
        for (const Dot& dep : it->second.second) {
          stack.push_back(dep);
        }
      }
      if (blocked || closure.empty()) {
        continue;
      }
      // `closure` is executable; but it may be larger than the smallest batch
      // containing root. Executing a closed superset in Dot-respecting topological
      // batches is equivalent; for the equivalence test we execute the whole closure
      // as nested SCC batches via recursive shrink: find a dot in closure whose own
      // closure is minimal. Simplest: repeatedly pick the dot whose closure size is
      // smallest.
      Dot best = root;
      size_t best_size = closure.size();
      for (const Dot& cand : closure) {
        std::vector<Dot> st{cand};
        std::set<Dot> cl;
        while (!st.empty()) {
          Dot d = st.back();
          st.pop_back();
          if (cl.count(d) > 0 || executed.count(d) > 0) {
            continue;
          }
          cl.insert(d);
          for (const Dot& dep : committed.at(d).second) {
            st.push_back(dep);
          }
        }
        if (cl.size() < best_size) {
          best_size = cl.size();
          best = cand;
        }
      }
      // Execute the smallest closure in Dot order.
      std::vector<Dot> st{best};
      std::set<Dot> batch;
      while (!st.empty()) {
        Dot d = st.back();
        st.pop_back();
        if (batch.count(d) > 0 || executed.count(d) > 0) {
          continue;
        }
        batch.insert(d);
        for (const Dot& dep : committed.at(d).second) {
          st.push_back(dep);
        }
      }
      for (const Dot& d : batch) {
        executed_order.push_back(d);
        executed.insert(d);
      }
      // batch iterated via std::set -> already Dot-sorted.
      for (const Dot& d : batch) {
        committed.erase(d);
      }
      return true;
    }
    return false;
  }
};

// Cross-replica consistency: two executors receiving the same committed (cmd, deps)
// in different orders must execute conflicting (= dependency-related) commands in the
// same relative order.
TEST(GraphExecutorTest, OrderConsistencyAcrossCommitOrders) {
  common::Rng rng(21);
  for (int trial = 0; trial < 200; trial++) {
    // Build a random dependency graph over k dots satisfying Invariant 2 on a single
    // conflict class: for every pair, one depends on the other.
    size_t k = 2 + rng.Below(7);
    std::vector<Dot> dots;
    for (size_t i = 0; i < k; i++) {
      dots.push_back(Dot{static_cast<common::ProcessId>(rng.Below(3)),
                         static_cast<uint64_t>(trial) * 100 + i + 1});
    }
    std::map<Dot, DepSet> deps;
    for (size_t i = 0; i < k; i++) {
      for (size_t j = i + 1; j < k; j++) {
        if (rng.Chance(0.5)) {
          deps[dots[i]].Insert(dots[j]);
        } else {
          deps[dots[j]].Insert(dots[i]);
        }
        if (rng.Chance(0.2)) {  // sometimes both (cycle)
          deps[dots[i]].Insert(dots[j]);
          deps[dots[j]].Insert(dots[i]);
        }
      }
    }
    auto run = [&](uint64_t seed) {
      Recorder rec;
      GraphExecutor ex(BatchOrder::kDot, rec.fn());
      std::vector<Dot> order = dots;
      common::Rng r2(seed);
      for (size_t i = order.size(); i > 1; i--) {
        std::swap(order[i - 1], order[r2.Below(i)]);
      }
      for (const Dot& d : order) {
        ex.Commit(d, Cmd(d.seq), deps[d]);
      }
      EXPECT_EQ(rec.order.size(), k);
      return rec.order;
    };
    auto o1 = run(1000 + static_cast<uint64_t>(trial));
    auto o2 = run(2000 + static_cast<uint64_t>(trial));
    EXPECT_EQ(o1, o2) << "divergent execution order, trial " << trial;
  }
}

// Equivalence with the smallest-batch reference on random commit schedules.
TEST(GraphExecutorTest, MatchesSmallestBatchReference) {
  common::Rng rng(23);
  for (int trial = 0; trial < 100; trial++) {
    size_t k = 2 + rng.Below(6);
    std::vector<Dot> dots;
    for (size_t i = 0; i < k; i++) {
      dots.push_back(Dot{0, static_cast<uint64_t>(i) + 1});
    }
    std::map<Dot, DepSet> deps;
    for (size_t i = 0; i < k; i++) {
      for (size_t j = i + 1; j < k; j++) {
        if (rng.Chance(0.6)) {
          deps[dots[j]].Insert(dots[i]);
        } else {
          deps[dots[i]].Insert(dots[j]);
        }
      }
    }
    std::vector<Dot> order = dots;
    for (size_t i = order.size(); i > 1; i--) {
      std::swap(order[i - 1], order[rng.Below(i)]);
    }
    Recorder rec;
    GraphExecutor ex(BatchOrder::kDot, rec.fn());
    ReferenceExecutor ref;
    for (const Dot& d : order) {
      ex.Commit(d, Cmd(d.seq), deps[d]);
      ref.Commit(d, Cmd(d.seq), deps[d]);
    }
    EXPECT_EQ(rec.order, ref.executed_order) << "trial " << trial;
  }
}

}  // namespace
}  // namespace exec
