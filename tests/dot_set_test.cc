// DenseDotSet: bitmap-backed membership for dense dots, hash overflow for outliers.
#include "src/common/dot_set.h"

#include <gtest/gtest.h>

namespace common {
namespace {

TEST(DenseDotSetTest, InsertContainsEraseDense) {
  DenseDotSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.Insert(Dot{0, 1}));
  EXPECT_FALSE(s.Insert(Dot{0, 1}));  // duplicate
  EXPECT_TRUE(s.Insert(Dot{2, 7}));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(Dot{0, 1}));
  EXPECT_TRUE(s.Contains(Dot{2, 7}));
  EXPECT_FALSE(s.Contains(Dot{1, 1}));
  s.Erase(Dot{0, 1});
  EXPECT_FALSE(s.Contains(Dot{0, 1}));
  EXPECT_EQ(s.size(), 1u);
  s.Erase(Dot{0, 1});  // idempotent
  EXPECT_EQ(s.size(), 1u);
}

TEST(DenseDotSetTest, SequentialGrowthStaysCorrect) {
  DenseDotSet s;
  for (uint64_t i = 1; i <= 200000; i++) {
    EXPECT_TRUE(s.Insert(Dot{1, i}));
  }
  EXPECT_EQ(s.size(), 200000u);
  EXPECT_TRUE(s.Contains(Dot{1, 1}));
  EXPECT_TRUE(s.Contains(Dot{1, 200000}));
  EXPECT_FALSE(s.Contains(Dot{1, 200001}));
}

// Malformed/adversarial dots (huge seq or proc, e.g. decoded from a corrupt network
// message) must not blow up memory: they land in the overflow set, and membership
// semantics stay exact. This guards the "malformed input cannot crash a replica"
// codec promise end to end.
TEST(DenseDotSetTest, AdversarialDotsDoNotExplodeMemory) {
  DenseDotSet s;
  Dot huge_seq{0, 1ull << 60};
  Dot huge_proc{1u << 30, 5};
  EXPECT_TRUE(s.Insert(huge_seq));
  EXPECT_TRUE(s.Insert(huge_proc));
  EXPECT_FALSE(s.Insert(huge_seq));  // duplicate detection still exact
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(huge_seq));
  EXPECT_TRUE(s.Contains(huge_proc));
  EXPECT_FALSE(s.Contains(Dot{0, (1ull << 60) + 1}));
  // Dense dots keep working alongside outliers.
  EXPECT_TRUE(s.Insert(Dot{0, 1}));
  EXPECT_TRUE(s.Contains(Dot{0, 1}));
  s.Erase(huge_seq);
  EXPECT_FALSE(s.Contains(huge_seq));
  EXPECT_EQ(s.size(), 2u);
}

}  // namespace
}  // namespace common
