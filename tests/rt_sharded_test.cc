// Sharded replicas over real TCP: 3 nodes, P=4 partitions, mixed kPut/kRmw.
//
// The same smr::Deployment assembly runs on the simulator and the epoll runtime,
// so a fixed workload must produce the same replicated state on both:
//  * every (node, shard) store digest converges across the 3 TCP nodes;
//  * per-shard digests and applied counts match a simulator run of the identical
//    command script (counter parity between the two drivers);
//  * with submission batching enabled, the shard-tagged flush timers route
//    through the runtime's timer wheel end-to-end and the final state is
//    unchanged.
//
// Each client owns a disjoint key set and blocks on every call, so the per-key
// apply order is the client's program order in every run — which is what makes
// cross-driver digest comparison exact even for order-sensitive kRmw.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/rt/node.h"
#include "src/sim/simulator.h"
#include "src/smr/deployment.h"

namespace rt {
namespace {

constexpr uint32_t kNodes = 3;
constexpr uint32_t kPartitions = 4;
constexpr uint64_t kClients = 4;
constexpr uint64_t kOpsPerClient = 20;

smr::DeploymentOptions MakeOptions(common::Duration batch_window) {
  smr::DeploymentOptions d;
  d.protocol = smr::Protocol::kAtlas;
  d.n = kNodes;
  d.f = 1;
  d.partitions = kPartitions;
  d.batch_window = batch_window;
  d.batch_max = 16;
  return d;
}

// The fixed command script: client c's op i (1-based). Keys are client-owned
// (disjoint across clients) and cycle over 5 keys so kRmw appends stack up.
smr::Command ScriptedOp(uint64_t client, uint64_t i) {
  std::string key = "c" + std::to_string(client) + "-k" + std::to_string(i % 5);
  std::string value = "v" + std::to_string(i);
  return (i % 2 == 1) ? smr::MakePut(client, i, key, std::move(value))
                      : smr::MakeRmw(client, i, key, std::move(value));
}

struct ShardState {
  std::vector<uint64_t> digests;  // per (node, shard)
  std::vector<uint64_t> counts;
};

// Runs the identical script on the discrete-event simulator through the same
// Deployment assembly, and returns the per-(node, shard) digests/counts.
ShardState SimulatorReference() {
  sim::Simulator::Options opts;
  opts.seed = 7;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(5 * common::kMillisecond,
                                                           common::kMillisecond),
                     opts);
  std::vector<std::unique_ptr<smr::Deployment>> replicas;
  for (uint32_t i = 0; i < kNodes; i++) {
    replicas.push_back(std::make_unique<smr::Deployment>(MakeOptions(0)));
    sim.AddEngine(&replicas[i]->engine());
  }
  sim.SetExecutedHandler([&](common::ProcessId p, const common::Dot& dot,
                             const smr::Command& cmd) {
    replicas[p]->ApplyExecuted(
        dot, cmd, [](uint32_t, const smr::Command&, std::string&&) {});
  });
  sim.Start();

  // Same-site, in-order submission per client: the conflict index dependencies
  // force the per-key execution order to match the blocking TCP clients'.
  for (uint64_t c = 1; c <= kClients; c++) {
    for (uint64_t i = 1; i <= kOpsPerClient; i++) {
      sim.Submit(static_cast<common::ProcessId>(c % kNodes), ScriptedOp(c, i));
    }
  }
  sim.RunUntilIdle();

  ShardState st;
  for (uint32_t p = 0; p < kNodes; p++) {
    for (uint32_t s = 0; s < kPartitions; s++) {
      st.digests.push_back(replicas[p]->store(s).StateDigest());
      st.counts.push_back(replicas[p]->applied_count(s));
    }
  }
  return st;
}

// Brings up a 3-node loopback TCP cluster at P=4, drives the script through
// blocking clients (one thread per client), waits for every node to apply all
// commands, and returns the per-(node, shard) state.
void RunTcpCluster(common::Duration batch_window, ShardState* out) {
  for (int attempt = 0; attempt < 5; attempt++) {
    uint16_t base =
        static_cast<uint16_t>(43000 + attempt * 16 + (getpid() % 512));
    std::vector<PeerAddress> addrs;
    for (uint32_t i = 0; i < kNodes; i++) {
      addrs.push_back(PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    std::vector<std::unique_ptr<smr::Deployment>> replicas;
    std::vector<std::unique_ptr<Node>> nodes;
    bool bind_ok = true;
    for (uint32_t i = 0; i < kNodes; i++) {
      replicas.push_back(std::make_unique<smr::Deployment>(MakeOptions(batch_window)));
      nodes.push_back(std::make_unique<Node>(i, addrs, replicas[i].get()));
      if (!nodes.back()->Listen()) {
        bind_ok = false;
        break;
      }
    }
    if (!bind_ok) {
      continue;  // port collision; retry with the next block
    }
    std::vector<std::thread> node_threads;
    for (uint32_t i = 0; i < kNodes; i++) {
      node_threads.emplace_back([&, i]() { nodes[i]->Run(); });
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> client_threads;
    for (uint64_t c = 1; c <= kClients; c++) {
      client_threads.emplace_back([&, c]() {
        Client client("127.0.0.1", addrs[c % kNodes].port);
        bool connected = false;
        for (int i = 0; i < 200 && !connected; i++) {
          connected = client.Connect();
          if (!connected) {
            usleep(20 * 1000);
          }
        }
        if (!connected) {
          failures.fetch_add(1);
          return;
        }
        std::string result;
        for (uint64_t i = 1; i <= kOpsPerClient; i++) {
          if (!client.Call(ScriptedOp(c, i), &result)) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : client_threads) {
      t.join();
    }

    // Every node executes every command; wait (with a guard) for the commit
    // stream to drain everywhere before stopping the loops. Nodes are always
    // stopped and joined before any assertion fires — a fatal failure with
    // joinable node threads would std::terminate the whole binary.
    const uint64_t expected = kClients * kOpsPerClient;
    if (failures.load() == 0) {
      auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
      bool drained = false;
      while (!drained && std::chrono::steady_clock::now() < deadline) {
        drained = true;
        for (auto& node : nodes) {
          if (node->applied_ops() < expected) {
            drained = false;
            break;
          }
        }
        if (!drained) {
          usleep(10 * 1000);
        }
      }
    }
    for (auto& node : nodes) {
      node->Stop();
    }
    for (auto& t : node_threads) {
      t.join();
    }
    ASSERT_EQ(failures.load(), 0) << "client calls failed";
    for (auto& node : nodes) {
      EXPECT_EQ(node->applied_ops(), expected) << "node failed to drain";
    }

    for (uint32_t p = 0; p < kNodes; p++) {
      for (uint32_t s = 0; s < kPartitions; s++) {
        out->digests.push_back(replicas[p]->store(s).StateDigest());
        out->counts.push_back(replicas[p]->applied_count(s));
      }
    }
    return;  // success
  }
  FAIL() << "could not bind a port block after 5 attempts";
}

void ExpectConvergedAndMatching(const ShardState& tcp, const ShardState& ref) {
  ASSERT_EQ(tcp.digests.size(), kNodes * kPartitions);
  // Convergence: all 3 nodes agree per shard.
  for (uint32_t s = 0; s < kPartitions; s++) {
    for (uint32_t p = 1; p < kNodes; p++) {
      EXPECT_EQ(tcp.digests[p * kPartitions + s], tcp.digests[s])
          << "node " << p << " diverged on shard " << s;
      EXPECT_EQ(tcp.counts[p * kPartitions + s], tcp.counts[s])
          << "node " << p << " count mismatch on shard " << s;
    }
  }
  // Parity with the simulator driving the same assembly over the same script.
  EXPECT_EQ(tcp.digests, ref.digests);
  EXPECT_EQ(tcp.counts, ref.counts);
  // The workload really is spread over multiple partitions.
  uint32_t busy = 0;
  for (uint32_t s = 0; s < kPartitions; s++) {
    if (tcp.counts[s] > 0) {
      busy++;
    }
  }
  EXPECT_GE(busy, 2u);
}

TEST(RtShardedTest, FourPartitionsConvergeAndMatchSimulator) {
  ShardState ref = SimulatorReference();
  ShardState tcp;
  RunTcpCluster(/*batch_window=*/0, &tcp);
  if (HasFatalFailure()) {
    return;
  }
  ExpectConvergedAndMatching(tcp, ref);
}

// Batching rides the shard-tagged flush timers through the runtime's timer
// wheel; grouping must not change the final replicated state.
TEST(RtShardedTest, BatchedSubmissionConvergesToSameState) {
  ShardState ref = SimulatorReference();
  ShardState tcp;
  RunTcpCluster(/*batch_window=*/2 * common::kMillisecond, &tcp);
  if (HasFatalFailure()) {
    return;
  }
  ExpectConvergedAndMatching(tcp, ref);
}

// Cross-partition client commands cannot be ordered by one shard; the node must
// reject them cleanly (dropped reply) instead of crashing the replica.
TEST(RtShardedTest, UnroutableClientCommandIsRejected) {
  for (int attempt = 0; attempt < 5; attempt++) {
    uint16_t base =
        static_cast<uint16_t>(44000 + attempt * 16 + (getpid() % 512));
    std::vector<PeerAddress> addrs;
    for (uint32_t i = 0; i < kNodes; i++) {
      addrs.push_back(PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    std::vector<std::unique_ptr<smr::Deployment>> replicas;
    std::vector<std::unique_ptr<Node>> nodes;
    bool bind_ok = true;
    for (uint32_t i = 0; i < kNodes; i++) {
      replicas.push_back(std::make_unique<smr::Deployment>(MakeOptions(0)));
      nodes.push_back(std::make_unique<Node>(i, addrs, replicas[i].get()));
      if (!nodes.back()->Listen()) {
        bind_ok = false;
        break;
      }
    }
    if (!bind_ok) {
      continue;
    }
    std::vector<std::thread> node_threads;
    for (uint32_t i = 0; i < kNodes; i++) {
      node_threads.emplace_back([&, i]() { nodes[i]->Run(); });
    }
    // Run all client calls first, then stop and join the node threads before any
    // assertion fires (a fatal failure with joinable threads would terminate).
    bool connected = false;
    bool split_ok = false;
    bool routable_ok = false;
    std::string split_result;
    std::string routable_result;
    std::string other;
    {
      Client client("127.0.0.1", addrs[0].port);
      for (int i = 0; i < 200 && !connected; i++) {
        connected = client.Connect();
        if (!connected) {
          usleep(20 * 1000);
        }
      }
      if (connected) {
        // Find two keys in different partitions and span them with one kMPut.
        smr::Partitioner part(kPartitions);
        for (int i = 0; other.empty() && i < 1000; i++) {
          std::string k = "x" + std::to_string(i);
          if (part.ShardOf(k) != part.ShardOf("base")) {
            other = k;
          }
        }
        smr::Command split = smr::MakePut(1, 1, "base", "v");
        split.op = smr::Op::kMPut;
        split.more_keys.push_back(other);
        split_ok = client.Call(split, &split_result);
        // The replica is still healthy: a routable command completes normally.
        routable_ok = client.Call(smr::MakePut(1, 2, "base", "v"), &routable_result);
      }
    }
    for (auto& node : nodes) {
      node->Stop();
    }
    for (auto& t : node_threads) {
      t.join();
    }
    ASSERT_TRUE(connected);
    ASSERT_FALSE(other.empty());
    ASSERT_TRUE(split_ok);
    EXPECT_EQ(split_result, "<dropped>");
    ASSERT_TRUE(routable_ok);
    EXPECT_EQ(routable_result, "");
    return;
  }
  FAIL() << "could not bind a port block after 5 attempts";
}

}  // namespace
}  // namespace rt
