// Multi-Paxos / FPaxos baseline tests: log replication, forwarding, quorum modes,
// leader fail-over with noOp gap filling.
#include "src/paxos/multipaxos.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"

namespace paxos {
namespace {

using common::Dot;
using common::kMillisecond;
using common::kSecond;
using common::ProcessId;

struct TestCluster {
  explicit TestCluster(uint32_t n, uint32_t f, QuorumMode mode,
                       ProcessId leader = 0) {
    sim::Simulator::Options opts;
    opts.seed = 5;
    sim = std::make_unique<sim::Simulator>(
        std::make_unique<sim::UniformLatency>(10 * kMillisecond, 0), opts);
    for (uint32_t i = 0; i < n; i++) {
      Config cfg;
      cfg.n = n;
      cfg.f = f;
      cfg.mode = mode;
      cfg.initial_leader = leader;
      engines.push_back(std::make_unique<PaxosEngine>(cfg));
      sim->AddEngine(engines.back().get());
    }
    sim->SetExecutedHandler([this](ProcessId p, const Dot& d, const smr::Command& c) {
      executed.emplace_back(p, c);
    });
    sim->Start();
  }

  std::vector<std::pair<uint64_t, uint64_t>> OrderAt(ProcessId p,
                                                     bool skip_noops = true) const {
    std::vector<std::pair<uint64_t, uint64_t>> out;
    for (const auto& [proc, cmd] : executed) {
      if (proc == p && (!skip_noops || !cmd.is_noop())) {
        out.emplace_back(cmd.client, cmd.seq);
      }
    }
    return out;
  }

  std::unique_ptr<sim::Simulator> sim;
  std::vector<std::unique_ptr<PaxosEngine>> engines;
  std::vector<std::pair<ProcessId, smr::Command>> executed;
};

TEST(PaxosTest, LeaderCommitsAndAllExecuteInSlotOrder) {
  TestCluster tc(5, 1, QuorumMode::kFlexible);
  for (int i = 0; i < 10; i++) {
    tc.sim->Submit(0, smr::MakePut(1, static_cast<uint64_t>(i) + 1, "k", "v"));
  }
  tc.sim->RunUntilIdle();
  auto ref = tc.OrderAt(0);
  EXPECT_EQ(ref.size(), 10u);
  for (size_t i = 0; i < ref.size(); i++) {
    EXPECT_EQ(ref[i].second, i + 1);  // submission order preserved
  }
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.OrderAt(p), ref);
  }
}

TEST(PaxosTest, NonLeaderForwardsToLeader) {
  TestCluster tc(3, 1, QuorumMode::kFlexible, /*leader=*/1);
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->Submit(2, smr::MakePut(2, 1, "k", "v"));
  tc.sim->RunUntilIdle();
  EXPECT_EQ(tc.OrderAt(0).size(), 2u);
  EXPECT_EQ(tc.OrderAt(0), tc.OrderAt(1));
  EXPECT_EQ(tc.OrderAt(0), tc.OrderAt(2));
  EXPECT_TRUE(tc.engines[1]->IsLeader());
  EXPECT_FALSE(tc.engines[0]->IsLeader());
}

TEST(PaxosTest, FlexibleQuorumIsSmaller) {
  Config flexible;
  flexible.n = 13;
  flexible.f = 2;
  flexible.mode = QuorumMode::kFlexible;
  EXPECT_EQ(flexible.Phase2Size(), 3u);
  EXPECT_EQ(flexible.Phase1Size(), 11u);
  Config classic = flexible;
  classic.mode = QuorumMode::kClassic;
  EXPECT_EQ(classic.Phase2Size(), 7u);
  EXPECT_EQ(classic.Phase1Size(), 7u);
}

TEST(PaxosTest, LeaderFailoverElectsNewLeaderAndResumesService) {
  TestCluster tc(3, 1, QuorumMode::kFlexible, /*leader=*/1);
  for (int i = 0; i < 5; i++) {
    tc.sim->Submit(1, smr::MakePut(1, static_cast<uint64_t>(i) + 1, "k", "v"));
  }
  tc.sim->RunUntilIdle();
  tc.sim->Crash(1);
  for (ProcessId p : {0u, 2u}) {
    tc.engines[p]->OnSuspect(1);
  }
  tc.sim->RunFor(5 * kSecond);
  // Someone is leader now.
  EXPECT_TRUE(tc.engines[0]->IsLeader() || tc.engines[2]->IsLeader());
  ProcessId new_leader = tc.engines[0]->IsLeader() ? 0 : 2;
  // Service resumes through the new leader.
  tc.sim->Submit(new_leader, smr::MakePut(2, 1, "k", "v"));
  tc.sim->RunUntilIdle();
  auto o0 = tc.OrderAt(0);
  auto o2 = tc.OrderAt(2);
  EXPECT_EQ(o0, o2);
  EXPECT_EQ(o0.size(), 6u);
}

TEST(PaxosTest, FailoverRecoversInFlightCommandOrFillsNoOp) {
  TestCluster tc(3, 1, QuorumMode::kFlexible, /*leader=*/0);
  // Leader proposes but crashes immediately; the accept may or may not have reached
  // a quorum member.
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunFor(11 * kMillisecond);  // PxAccept delivered to the f+1 quorum member
  tc.sim->Crash(0);
  tc.engines[1]->OnSuspect(0);
  tc.engines[2]->OnSuspect(0);
  tc.sim->RunFor(10 * kSecond);
  // New leader adopted the accepted command (it reached a quorum member's log).
  tc.sim->Submit(1, smr::MakePut(2, 1, "k", "v"));
  tc.sim->Submit(2, smr::MakePut(3, 1, "k", "v"));
  tc.sim->RunUntilIdle();
  auto o1 = tc.OrderAt(1);
  auto o2 = tc.OrderAt(2);
  EXPECT_EQ(o1, o2);
  EXPECT_GE(o1.size(), 2u);  // the two new commands, plus possibly the recovered one
}

TEST(PaxosTest, ClassicMajorityMode) {
  TestCluster tc(5, 2, QuorumMode::kClassic);
  for (int i = 0; i < 5; i++) {
    tc.sim->Submit(0, smr::MakePut(1, static_cast<uint64_t>(i) + 1, "k", "v"));
  }
  tc.sim->RunUntilIdle();
  for (ProcessId p = 0; p < 5; p++) {
    EXPECT_EQ(tc.OrderAt(p).size(), 5u);
  }
}

}  // namespace
}  // namespace paxos
