#include "src/common/dep_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace common {
namespace {

Dot D(ProcessId p, uint64_t s) { return Dot{p, s}; }

TEST(DepSetTest, InsertContainsSorted) {
  DepSet s;
  EXPECT_TRUE(s.empty());
  s.Insert(D(2, 5));
  s.Insert(D(1, 7));
  s.Insert(D(2, 5));  // duplicate
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(D(2, 5)));
  EXPECT_TRUE(s.Contains(D(1, 7)));
  EXPECT_FALSE(s.Contains(D(1, 5)));
  // Sorted by (seq, proc).
  EXPECT_EQ(s.dots()[0], D(2, 5));
  EXPECT_EQ(s.dots()[1], D(1, 7));
}

TEST(DepSetTest, UnionWith) {
  DepSet a{D(0, 1), D(1, 2)};
  DepSet b{D(1, 2), D(2, 3)};
  a.UnionWith(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.Contains(D(0, 1)));
  EXPECT_TRUE(a.Contains(D(1, 2)));
  EXPECT_TRUE(a.Contains(D(2, 3)));
}

TEST(DepSetTest, Remove) {
  DepSet a{D(0, 1), D(1, 2)};
  a.Remove(D(0, 1));
  EXPECT_FALSE(a.Contains(D(0, 1)));
  a.Remove(D(9, 9));  // absent: no-op
  EXPECT_EQ(a.size(), 1u);
}

TEST(DepSetTest, UnionOfReplies) {
  std::vector<DepSet> replies = {{D(0, 1)}, {D(0, 1), D(1, 1)}, {}};
  DepSet u = Union(replies);
  EXPECT_EQ(u.size(), 2u);
}

TEST(DepSetTest, ThresholdUnionCountsOccurrences) {
  std::vector<DepSet> replies = {{D(0, 1), D(1, 1)}, {D(0, 1)}, {D(0, 1), D(2, 1)}};
  EXPECT_EQ(ThresholdUnion(replies, 1), Union(replies));
  DepSet t2 = ThresholdUnion(replies, 2);
  EXPECT_EQ(t2.size(), 1u);
  EXPECT_TRUE(t2.Contains(D(0, 1)));
  EXPECT_TRUE(ThresholdUnion(replies, 3).Contains(D(0, 1)));
  EXPECT_EQ(ThresholdUnion(replies, 4).size(), 0u);
}

// The four examples of Figure 2 in the paper (n = 5).
TEST(DepSetTest, Figure2aFastPathTakenWithNonMatchingReplies) {
  // deps reported by processes 1..4: {a}, {a,b,c}, {a,b,d}, {a,c,d} with f = 2.
  Dot a = D(0, 1), b = D(1, 1), c = D(2, 1), d = D(3, 1);
  std::vector<DepSet> replies = {{a}, {a, b, c}, {a, b, d}, {a, c, d}};
  EXPECT_TRUE(FastPathCondition(replies, 2));
  EXPECT_EQ(ThresholdUnion(replies, 2), Union(replies));
}

TEST(DepSetTest, Figure2bFastPathNotTaken) {
  // {}, {}, {b} with f = 2: b reported once -> slow path.
  Dot b = D(1, 1);
  std::vector<DepSet> replies = {{}, {}, {b}, {}};
  EXPECT_FALSE(FastPathCondition(replies, 2));
}

TEST(DepSetTest, Figure2cAtlasF1AlwaysFast) {
  Dot a = D(0, 1), b = D(1, 1), c = D(2, 1);
  std::vector<DepSet> replies = {{a}, {a, b}, {a, c}};
  EXPECT_TRUE(FastPathCondition(replies, 1));  // f=1: always
}

TEST(DepSetTest, Figure2dMatchingReplies) {
  Dot a = D(0, 1);
  std::vector<DepSet> replies = {{a}, {a}, {a}};
  EXPECT_TRUE(FastPathCondition(replies, 2));
  EXPECT_TRUE(FastPathCondition(replies, 3));
}

// Property 1 of the paper: dependencies computed as unions over majorities intersect.
TEST(DepSetTest, Property1MajorityUnionsSeeEachOther) {
  // Simulate: n processes each receive two conflicting commands A and B in some order.
  // A's deps computed over majority QA, B's over majority QB. One of the two commands
  // must appear in the other's dependencies.
  Rng rng(7);
  const uint32_t n = 5;
  Dot A = D(0, 1), B = D(1, 1);
  for (int trial = 0; trial < 2000; trial++) {
    // order[p] = true means p saw A before B.
    std::vector<bool> a_first(n);
    for (auto&& v : a_first) {
      v = rng.Chance(0.5);
    }
    auto majority = [&](uint64_t salt) {
      std::vector<uint32_t> procs;
      for (uint32_t p = 0; p < n; p++) {
        procs.push_back(p);
      }
      // random 3-subset
      for (size_t i = 0; i < procs.size(); i++) {
        std::swap(procs[i], procs[rng.Below(procs.size())]);
      }
      procs.resize(3);
      return procs;
    };
    DepSet dep_a, dep_b;
    for (uint32_t p : majority(1)) {
      if (!a_first[p]) {
        dep_a.Insert(B);  // p saw B before A, so it reports B as dependency of A
      }
    }
    for (uint32_t p : majority(2)) {
      if (a_first[p]) {
        dep_b.Insert(A);
      }
    }
    EXPECT_TRUE(dep_a.Contains(B) || dep_b.Contains(A));
  }
}

TEST(DepSetTest, ThresholdUnionByProcCountsProcessesNotDots) {
  // Two replies report different dots of process 2's conflict chain (aliases under
  // dependency compression): per-dot counting would prune both; per-process counting
  // keeps them.
  Dot c23 = D(2, 3), c24 = D(2, 4), other = D(0, 9);
  std::vector<DepSet> replies = {{c23}, {c24}, {other}, {}};
  DepSet per_dot = ThresholdUnion(replies, 2);
  EXPECT_TRUE(per_dot.empty());  // every dot has count 1
  DepSet per_proc = ThresholdUnionByProc(replies, 2);
  EXPECT_TRUE(per_proc.Contains(c23));
  EXPECT_TRUE(per_proc.Contains(c24));
  EXPECT_FALSE(per_proc.Contains(other));  // process 0 reported by one reply only
}

TEST(DepSetTest, ThresholdUnionByProcCountsReplyOncePerProcess) {
  // One reply with two dots of the same process contributes a single count.
  Dot a1 = D(1, 1), a2 = D(1, 2);
  std::vector<DepSet> replies = {{a1, a2}, {}, {}};
  EXPECT_TRUE(ThresholdUnionByProc(replies, 2).empty());
}

// Per-process counting is strictly more conservative: it keeps every dot the per-dot
// rule keeps (soundness of the §4 pruning under compression relies on this).
TEST(DepSetTest, ThresholdUnionByProcSupersetOfPerDot) {
  Rng rng(123);
  for (int trial = 0; trial < 500; trial++) {
    size_t q = 2 + rng.Below(5);
    size_t threshold = 1 + rng.Below(3);
    std::vector<DepSet> replies(q);
    for (auto& r : replies) {
      size_t k = rng.Below(5);
      for (size_t i = 0; i < k; i++) {
        r.Insert(D(static_cast<ProcessId>(rng.Below(3)), 1 + rng.Below(4)));
      }
    }
    DepSet per_dot = ThresholdUnion(replies, threshold);
    DepSet per_proc = ThresholdUnionByProc(replies, threshold);
    for (const Dot& d : per_dot) {
      EXPECT_TRUE(per_proc.Contains(d));
    }
    // And it never keeps anything outside the plain union.
    DepSet all = Union(replies);
    for (const Dot& d : per_proc) {
      EXPECT_TRUE(all.Contains(d));
    }
  }
}

// --- Small-buffer boundary cases -------------------------------------------------

// Spill at exactly kInlineCapacity: contents and ordering survive the inline->heap
// transition, and further growth keeps working.
TEST(DepSetTest, SmallBufferSpillAtCapacity) {
  DepSet s;
  for (uint64_t i = 1; i <= DepSet::kInlineCapacity; i++) {
    s.Insert(D(0, i));
  }
  EXPECT_EQ(s.size(), static_cast<size_t>(DepSet::kInlineCapacity));
  s.Insert(D(0, 100));  // forces the heap spill
  s.Insert(D(0, 50));
  EXPECT_EQ(s.size(), DepSet::kInlineCapacity + 2u);
  for (uint64_t i = 1; i <= DepSet::kInlineCapacity; i++) {
    EXPECT_TRUE(s.Contains(D(0, i)));
  }
  EXPECT_TRUE(s.Contains(D(0, 50)));
  EXPECT_TRUE(s.Contains(D(0, 100)));
  // Still sorted.
  for (size_t i = 1; i < s.size(); i++) {
    EXPECT_TRUE(s.dots()[i - 1] < s.dots()[i]);
  }
}

// UnionWith across representations: inline+inline spilling, heap+inline, inline+heap.
TEST(DepSetTest, SmallBufferUnionAcrossRepresentations) {
  DepSet inline_a{D(0, 1), D(0, 3), D(0, 5)};
  DepSet inline_b{D(0, 2), D(0, 4), D(0, 6)};
  DepSet merged = inline_a;
  merged.UnionWith(inline_b);  // 6 dots: spills mid-union
  EXPECT_EQ(merged.size(), 6u);
  for (uint64_t i = 1; i <= 6; i++) {
    EXPECT_TRUE(merged.Contains(D(0, i)));
  }

  DepSet heap;
  for (uint64_t i = 10; i < 30; i++) {
    heap.Insert(D(1, i));
  }
  DepSet heap_plus_inline = heap;
  heap_plus_inline.UnionWith(inline_a);  // heap absorbs inline
  EXPECT_EQ(heap_plus_inline.size(), 23u);
  DepSet inline_plus_heap = inline_a;
  inline_plus_heap.UnionWith(heap);  // inline spills to absorb heap
  EXPECT_EQ(inline_plus_heap, heap_plus_inline);
}

// Equality must not depend on the storage representation: a set that grew to the heap
// and shrank back compares equal to one that never left the inline buffer.
TEST(DepSetTest, SmallBufferEqualityAcrossRepresentations) {
  DepSet grew{D(0, 1), D(0, 2)};
  for (uint64_t i = 10; i < 20; i++) {
    grew.Insert(D(0, i));
  }
  for (uint64_t i = 10; i < 20; i++) {
    grew.Remove(D(0, i));
  }
  DepSet stayed{D(0, 1), D(0, 2)};
  EXPECT_EQ(grew, stayed);
  EXPECT_EQ(stayed, grew);
}

// Copies and moves across representations preserve contents and leave usable sources.
TEST(DepSetTest, SmallBufferCopyAndMoveSemantics) {
  DepSet small{D(0, 1), D(0, 2)};
  DepSet big;
  for (uint64_t i = 1; i <= 10; i++) {
    big.Insert(D(1, i));
  }

  DepSet small_copy = small;
  DepSet big_copy = big;
  EXPECT_EQ(small_copy, small);
  EXPECT_EQ(big_copy, big);

  DepSet small_moved = std::move(small_copy);
  DepSet big_moved = std::move(big_copy);
  EXPECT_EQ(small_moved, small);
  EXPECT_EQ(big_moved, big);

  // Moved-from sets are empty and reusable.
  EXPECT_TRUE(small_copy.empty());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(big_copy.empty());    // NOLINT(bugprone-use-after-move)
  small_copy.Insert(D(2, 7));
  big_copy.Insert(D(2, 8));
  EXPECT_TRUE(small_copy.Contains(D(2, 7)));
  EXPECT_TRUE(big_copy.Contains(D(2, 8)));

  // Assignment in both directions across representations.
  small_moved = big;
  EXPECT_EQ(small_moved, big);
  big_moved = DepSet{D(3, 1)};
  EXPECT_EQ(big_moved.size(), 1u);
  EXPECT_TRUE(big_moved.Contains(D(3, 1)));
}

// Randomized cross-check of the whole DepSet API against std::set semantics, with
// sizes straddling the inline capacity so every representation transition is hit.
TEST(DepSetTest, SmallBufferRandomizedAgainstReference) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; trial++) {
    DepSet s;
    std::vector<Dot> reference;  // kept sorted/unique manually
    for (int op = 0; op < 40; op++) {
      Dot d = D(static_cast<ProcessId>(rng.Below(3)), 1 + rng.Below(8));
      if (rng.Below(4) == 0) {
        s.Remove(d);
        auto it = std::find(reference.begin(), reference.end(), d);
        if (it != reference.end()) {
          reference.erase(it);
        }
      } else {
        s.Insert(d);
        if (std::find(reference.begin(), reference.end(), d) == reference.end()) {
          reference.push_back(d);
        }
      }
    }
    std::sort(reference.begin(), reference.end());
    ASSERT_EQ(s.size(), reference.size());
    for (size_t i = 0; i < reference.size(); i++) {
      EXPECT_EQ(s.dots()[i], reference[i]);
    }
  }
}

// Randomized: threshold union == union iff every dot reported >= threshold times.
TEST(DepSetTest, FastPathConditionMatchesDefinition) {
  Rng rng(99);
  for (int trial = 0; trial < 500; trial++) {
    size_t q = 2 + rng.Below(5);
    size_t threshold = 1 + rng.Below(3);
    std::vector<DepSet> replies(q);
    for (auto& r : replies) {
      size_t k = rng.Below(4);
      for (size_t i = 0; i < k; i++) {
        r.Insert(D(static_cast<ProcessId>(rng.Below(3)), 1 + rng.Below(3)));
      }
    }
    bool expected = ThresholdUnion(replies, threshold) == Union(replies);
    EXPECT_EQ(FastPathCondition(replies, threshold), expected);
  }
}

}  // namespace
}  // namespace common
