#include "src/common/dep_set.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace common {
namespace {

Dot D(ProcessId p, uint64_t s) { return Dot{p, s}; }

TEST(DepSetTest, InsertContainsSorted) {
  DepSet s;
  EXPECT_TRUE(s.empty());
  s.Insert(D(2, 5));
  s.Insert(D(1, 7));
  s.Insert(D(2, 5));  // duplicate
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(D(2, 5)));
  EXPECT_TRUE(s.Contains(D(1, 7)));
  EXPECT_FALSE(s.Contains(D(1, 5)));
  // Sorted by (seq, proc).
  EXPECT_EQ(s.dots()[0], D(2, 5));
  EXPECT_EQ(s.dots()[1], D(1, 7));
}

TEST(DepSetTest, UnionWith) {
  DepSet a{D(0, 1), D(1, 2)};
  DepSet b{D(1, 2), D(2, 3)};
  a.UnionWith(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_TRUE(a.Contains(D(0, 1)));
  EXPECT_TRUE(a.Contains(D(1, 2)));
  EXPECT_TRUE(a.Contains(D(2, 3)));
}

TEST(DepSetTest, Remove) {
  DepSet a{D(0, 1), D(1, 2)};
  a.Remove(D(0, 1));
  EXPECT_FALSE(a.Contains(D(0, 1)));
  a.Remove(D(9, 9));  // absent: no-op
  EXPECT_EQ(a.size(), 1u);
}

TEST(DepSetTest, UnionOfReplies) {
  std::vector<DepSet> replies = {{D(0, 1)}, {D(0, 1), D(1, 1)}, {}};
  DepSet u = Union(replies);
  EXPECT_EQ(u.size(), 2u);
}

TEST(DepSetTest, ThresholdUnionCountsOccurrences) {
  std::vector<DepSet> replies = {{D(0, 1), D(1, 1)}, {D(0, 1)}, {D(0, 1), D(2, 1)}};
  EXPECT_EQ(ThresholdUnion(replies, 1), Union(replies));
  DepSet t2 = ThresholdUnion(replies, 2);
  EXPECT_EQ(t2.size(), 1u);
  EXPECT_TRUE(t2.Contains(D(0, 1)));
  EXPECT_TRUE(ThresholdUnion(replies, 3).Contains(D(0, 1)));
  EXPECT_EQ(ThresholdUnion(replies, 4).size(), 0u);
}

// The four examples of Figure 2 in the paper (n = 5).
TEST(DepSetTest, Figure2aFastPathTakenWithNonMatchingReplies) {
  // deps reported by processes 1..4: {a}, {a,b,c}, {a,b,d}, {a,c,d} with f = 2.
  Dot a = D(0, 1), b = D(1, 1), c = D(2, 1), d = D(3, 1);
  std::vector<DepSet> replies = {{a}, {a, b, c}, {a, b, d}, {a, c, d}};
  EXPECT_TRUE(FastPathCondition(replies, 2));
  EXPECT_EQ(ThresholdUnion(replies, 2), Union(replies));
}

TEST(DepSetTest, Figure2bFastPathNotTaken) {
  // {}, {}, {b} with f = 2: b reported once -> slow path.
  Dot b = D(1, 1);
  std::vector<DepSet> replies = {{}, {}, {b}, {}};
  EXPECT_FALSE(FastPathCondition(replies, 2));
}

TEST(DepSetTest, Figure2cAtlasF1AlwaysFast) {
  Dot a = D(0, 1), b = D(1, 1), c = D(2, 1);
  std::vector<DepSet> replies = {{a}, {a, b}, {a, c}};
  EXPECT_TRUE(FastPathCondition(replies, 1));  // f=1: always
}

TEST(DepSetTest, Figure2dMatchingReplies) {
  Dot a = D(0, 1);
  std::vector<DepSet> replies = {{a}, {a}, {a}};
  EXPECT_TRUE(FastPathCondition(replies, 2));
  EXPECT_TRUE(FastPathCondition(replies, 3));
}

// Property 1 of the paper: dependencies computed as unions over majorities intersect.
TEST(DepSetTest, Property1MajorityUnionsSeeEachOther) {
  // Simulate: n processes each receive two conflicting commands A and B in some order.
  // A's deps computed over majority QA, B's over majority QB. One of the two commands
  // must appear in the other's dependencies.
  Rng rng(7);
  const uint32_t n = 5;
  Dot A = D(0, 1), B = D(1, 1);
  for (int trial = 0; trial < 2000; trial++) {
    // order[p] = true means p saw A before B.
    std::vector<bool> a_first(n);
    for (auto&& v : a_first) {
      v = rng.Chance(0.5);
    }
    auto majority = [&](uint64_t salt) {
      std::vector<uint32_t> procs;
      for (uint32_t p = 0; p < n; p++) {
        procs.push_back(p);
      }
      // random 3-subset
      for (size_t i = 0; i < procs.size(); i++) {
        std::swap(procs[i], procs[rng.Below(procs.size())]);
      }
      procs.resize(3);
      return procs;
    };
    DepSet dep_a, dep_b;
    for (uint32_t p : majority(1)) {
      if (!a_first[p]) {
        dep_a.Insert(B);  // p saw B before A, so it reports B as dependency of A
      }
    }
    for (uint32_t p : majority(2)) {
      if (a_first[p]) {
        dep_b.Insert(A);
      }
    }
    EXPECT_TRUE(dep_a.Contains(B) || dep_b.Contains(A));
  }
}

TEST(DepSetTest, ThresholdUnionByProcCountsProcessesNotDots) {
  // Two replies report different dots of process 2's conflict chain (aliases under
  // dependency compression): per-dot counting would prune both; per-process counting
  // keeps them.
  Dot c23 = D(2, 3), c24 = D(2, 4), other = D(0, 9);
  std::vector<DepSet> replies = {{c23}, {c24}, {other}, {}};
  DepSet per_dot = ThresholdUnion(replies, 2);
  EXPECT_TRUE(per_dot.empty());  // every dot has count 1
  DepSet per_proc = ThresholdUnionByProc(replies, 2);
  EXPECT_TRUE(per_proc.Contains(c23));
  EXPECT_TRUE(per_proc.Contains(c24));
  EXPECT_FALSE(per_proc.Contains(other));  // process 0 reported by one reply only
}

TEST(DepSetTest, ThresholdUnionByProcCountsReplyOncePerProcess) {
  // One reply with two dots of the same process contributes a single count.
  Dot a1 = D(1, 1), a2 = D(1, 2);
  std::vector<DepSet> replies = {{a1, a2}, {}, {}};
  EXPECT_TRUE(ThresholdUnionByProc(replies, 2).empty());
}

// Per-process counting is strictly more conservative: it keeps every dot the per-dot
// rule keeps (soundness of the §4 pruning under compression relies on this).
TEST(DepSetTest, ThresholdUnionByProcSupersetOfPerDot) {
  Rng rng(123);
  for (int trial = 0; trial < 500; trial++) {
    size_t q = 2 + rng.Below(5);
    size_t threshold = 1 + rng.Below(3);
    std::vector<DepSet> replies(q);
    for (auto& r : replies) {
      size_t k = rng.Below(5);
      for (size_t i = 0; i < k; i++) {
        r.Insert(D(static_cast<ProcessId>(rng.Below(3)), 1 + rng.Below(4)));
      }
    }
    DepSet per_dot = ThresholdUnion(replies, threshold);
    DepSet per_proc = ThresholdUnionByProc(replies, threshold);
    for (const Dot& d : per_dot) {
      EXPECT_TRUE(per_proc.Contains(d));
    }
    // And it never keeps anything outside the plain union.
    DepSet all = Union(replies);
    for (const Dot& d : per_proc) {
      EXPECT_TRUE(all.Contains(d));
    }
  }
}

// Randomized: threshold union == union iff every dot reported >= threshold times.
TEST(DepSetTest, FastPathConditionMatchesDefinition) {
  Rng rng(99);
  for (int trial = 0; trial < 500; trial++) {
    size_t q = 2 + rng.Below(5);
    size_t threshold = 1 + rng.Below(3);
    std::vector<DepSet> replies(q);
    for (auto& r : replies) {
      size_t k = rng.Below(4);
      for (size_t i = 0; i < k; i++) {
        r.Insert(D(static_cast<ProcessId>(rng.Below(3)), 1 + rng.Below(3)));
      }
    }
    bool expected = ThresholdUnion(replies, threshold) == Union(replies);
    EXPECT_EQ(FastPathCondition(replies, threshold), expected);
  }
}

}  // namespace
}  // namespace common
