// Recovery-under-crash tests: Atlas and Mencius runs with an injected replica
// crash (the kill_one_replica scenario pack: crash at 2s, restart 3s later,
// driven through the fault machinery) must pass every acceptance gate —
// checker-clean history against the §2 SMR specification, equal store digests
// across the surviving replicas after drain, no wedged clients, and no client
// exhausting its bounded retries.
//
// On "digests match a fault-free run of the same script": the two runs cannot be
// compared digest-for-digest, by design. A client that retries abandons the
// timed-out operation and reissues under a fresh sequence number, and the
// workload draws each command from (client, seq, rng) — so the faulted run's
// committed-command *set* legitimately differs from the fault-free run's the
// moment any retry fires. What must hold instead, and what this test asserts, is
// that both runs independently satisfy the same correctness contract: each is
// checker-clean and internally convergent (every replica's store digest equal),
// and the faulted run completes no more work than the fault-free control. The
// cross-run digest reproducibility claim — same (pack, seed) tuple, same final
// digests — is pinned separately in determinism_test.
#include <gtest/gtest.h>

#include <memory>

#include "src/fault/campaign.h"
#include "src/fault/scenario.h"
#include "src/harness/cluster.h"
#include "src/sim/regions.h"
#include "src/wl/workload.h"

namespace {

struct ControlRun {
  bool checker_ok = false;
  bool converged = false;
  uint64_t completed = 0;
  uint64_t gave_up = 0;
};

// The kill_one_replica script with the faults removed: same protocol, seed,
// topology, recovery knobs, workload, and duration as fault::RunScenario uses —
// no injector, no crash.
ControlRun FaultFreeControl(harness::Protocol proto, uint64_t seed,
                            const fault::Scenario& sc) {
  harness::ClusterOptions opts;
  opts.protocol = proto;
  opts.f = 1;
  opts.site_regions = sim::ThreeSites();
  opts.seed = seed;
  opts.enable_checker = true;
  opts.commit_timeout = 1 * common::kSecond;
  opts.recovery_scan_interval = 400 * common::kMillisecond;
  opts.recovery_retry_interval = 800 * common::kMillisecond;
  opts.revoke_retry_interval = 400 * common::kMillisecond;
  opts.max_client_retries = sc.max_client_retries;

  harness::Cluster cluster(opts);
  auto workload =
      std::make_shared<wl::MicroWorkload>(sc.conflict_rate, /*value_size=*/16);
  for (uint32_t i = 0; i < cluster.n(); i++) {
    harness::ClientSpec client;
    client.region = opts.site_regions[i];
    client.workload = workload;
    client.max_ops = sc.ops_per_client;
    client.retry_timeout = sc.retry_timeout;
    cluster.AddClients(client, 1);
  }
  cluster.Start();
  cluster.RunFor(sc.run_for);
  cluster.StopClients();
  chk::CheckResult check = cluster.Finish(/*abort_on_error=*/false);

  ControlRun out;
  out.checker_ok = check.ok;
  out.completed = cluster.total_completed();
  out.gave_up = cluster.gave_up();
  out.converged = true;
  uint64_t ref = cluster.store(0).StateDigest();
  for (common::ProcessId p = 1; p < cluster.n(); p++) {
    if (cluster.store(p).StateDigest() != ref) {
      out.converged = false;
    }
  }
  return out;
}

void RunCrashRecovery(harness::Protocol proto) {
  // seed 3 on n=3 makes the victim (seed + rank 0) % 3 = replica 0 — the very
  // replica that coordinates (Atlas/EPaxos) or owns the round-robin slots
  // (Mencius) for the site-0 client's in-flight commands at crash time.
  fault::RunSpec spec;
  spec.pack = "kill_one_replica";
  spec.seed = 3;
  spec.protocol = proto;

  fault::RunResult faulted = fault::RunScenario(spec);
  ASSERT_TRUE(faulted.pass) << fault::RerunCommand(spec) << ": "
                            << (faulted.failures.empty() ? ""
                                                         : faulted.failures[0]);
  EXPECT_EQ(faulted.gave_up, 0u);
  EXPECT_EQ(faulted.stuck_clients, 0u);
  // The crash must have actually bitten: messages to/from the dead replica were
  // dropped while it was down.
  EXPECT_GT(faulted.drops.src_crashed + faulted.drops.dest_crashed, 0u);
  EXPECT_GT(faulted.completed, 0u);

  const fault::Scenario* sc = fault::FindScenario(spec.pack);
  ASSERT_NE(sc, nullptr);
  ControlRun control = FaultFreeControl(proto, spec.seed, *sc);
  EXPECT_TRUE(control.checker_ok);
  EXPECT_TRUE(control.converged);
  EXPECT_EQ(control.gave_up, 0u);
  // A crash can only cost throughput, never add it: the closed-loop clients of
  // the faulted run complete at most as many operations as the fault-free
  // control of the same script (deterministic for the pinned tuple).
  EXPECT_LE(faulted.completed, control.completed);
  EXPECT_GT(control.completed, 0u);
}

TEST(FaultRecoveryTest, AtlasRecoversFromCoordinatorCrash) {
  RunCrashRecovery(harness::Protocol::kAtlas);
}

TEST(FaultRecoveryTest, MenciusRecoversFromOwnerCrash) {
  RunCrashRecovery(harness::Protocol::kMencius);
}

// The remaining leaderless protocol rides the same machinery; covering it here
// keeps the crash-recovery matrix complete across all three protocols.
TEST(FaultRecoveryTest, EPaxosRecoversFromCommandLeaderCrash) {
  RunCrashRecovery(harness::Protocol::kEPaxos);
}

// Rolling restarts: two staggered crash/restart cycles (ranks 0 and 1). Passing
// gates here means a replica that restarts while another is still catching up
// re-learns decided commands without wedging either executor.
TEST(FaultRecoveryTest, AtlasSurvivesRollingRestarts) {
  fault::RunSpec spec;
  spec.pack = "rolling_restarts";
  spec.seed = 2;
  spec.protocol = harness::Protocol::kAtlas;
  fault::RunResult r = fault::RunScenario(spec);
  EXPECT_TRUE(r.pass) << fault::RerunCommand(spec) << ": "
                      << (r.failures.empty() ? "" : r.failures[0]);
  EXPECT_EQ(r.gave_up, 0u);
  EXPECT_GT(r.drops.src_crashed + r.drops.dest_crashed, 0u);
}

}  // namespace
