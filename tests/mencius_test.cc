// Mencius baseline tests: round-robin ownership, skip propagation, total order.
#include "src/mencius/mencius.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/simulator.h"

namespace mencius {
namespace {

using common::Dot;
using common::kMillisecond;
using common::ProcessId;

struct TestCluster {
  explicit TestCluster(uint32_t n) {
    sim::Simulator::Options opts;
    opts.seed = 29;
    sim = std::make_unique<sim::Simulator>(
        std::make_unique<sim::UniformLatency>(10 * kMillisecond, 0), opts);
    for (uint32_t i = 0; i < n; i++) {
      Config cfg;
      cfg.n = n;
      engines.push_back(std::make_unique<MenciusEngine>(cfg));
      sim->AddEngine(engines.back().get());
    }
    sim->SetExecutedHandler([this](ProcessId p, const Dot& d, const smr::Command& c) {
      executed.emplace_back(p, c);
    });
    sim->Start();
  }

  std::vector<std::pair<uint64_t, uint64_t>> OrderAt(ProcessId p) const {
    std::vector<std::pair<uint64_t, uint64_t>> out;
    for (const auto& [proc, cmd] : executed) {
      if (proc == p && !cmd.is_noop()) {
        out.emplace_back(cmd.client, cmd.seq);
      }
    }
    return out;
  }

  std::unique_ptr<sim::Simulator> sim;
  std::vector<std::unique_ptr<MenciusEngine>> engines;
  std::vector<std::pair<ProcessId, smr::Command>> executed;
};

TEST(MenciusTest, SingleCommandExecutesEverywhere) {
  TestCluster tc(3);
  tc.sim->Submit(1, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunUntilIdle();
  EXPECT_EQ(tc.executed.size(), 3u);
  // Idle processes 0 and 2 skipped their lower slots so slot 1 could execute.
  EXPECT_GE(tc.engines[0]->ExecutedUpto(), 2u);
}

TEST(MenciusTest, TotalOrderAcrossReplicas) {
  TestCluster tc(5);
  for (ProcessId p = 0; p < 5; p++) {
    for (int i = 0; i < 10; i++) {
      tc.sim->Submit(p, smr::MakePut(p + 1, static_cast<uint64_t>(i) + 1, "k", "v"));
    }
  }
  tc.sim->RunUntilIdle();
  auto ref = tc.OrderAt(0);
  EXPECT_EQ(ref.size(), 50u);
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.OrderAt(p), ref) << "replica " << p;  // Mencius gives a TOTAL order
  }
}

TEST(MenciusTest, InterleavedSubmissionsKeepSlotOrder) {
  TestCluster tc(3);
  // Replica 0 sends a burst; replicas 1 and 2 interleave.
  for (int round = 0; round < 5; round++) {
    tc.sim->Submit(0, smr::MakePut(1, static_cast<uint64_t>(round) + 1, "a", "v"));
    tc.sim->RunFor(3 * kMillisecond);
    tc.sim->Submit(1, smr::MakePut(2, static_cast<uint64_t>(round) + 1, "b", "v"));
    tc.sim->RunFor(3 * kMillisecond);
    tc.sim->Submit(2, smr::MakePut(3, static_cast<uint64_t>(round) + 1, "c", "v"));
    tc.sim->RunFor(3 * kMillisecond);
  }
  tc.sim->RunUntilIdle();
  auto ref = tc.OrderAt(0);
  EXPECT_EQ(ref.size(), 15u);
  EXPECT_EQ(tc.OrderAt(1), ref);
  EXPECT_EQ(tc.OrderAt(2), ref);
}

TEST(MenciusTest, CommitRequiresAllReplicas) {
  // With one replica partitioned away, nothing can commit (Mencius runs at the speed
  // of the slowest replica).
  TestCluster tc(3);
  tc.sim->SetLinkDown(2, 0, true);  // 2's acks to 0 dropped
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunFor(500 * kMillisecond);
  EXPECT_EQ(tc.executed.size(), 0u);
  tc.sim->SetLinkDown(2, 0, false);
  // A later submission triggers a fresh propose/ack exchange; the stalled slot still
  // lacks its ack from 2 (the earlier MnAck was dropped, not retransmitted), so
  // re-propose is modeled by a new command from 0.
  tc.sim->Submit(2, smr::MakePut(2, 1, "k", "v"));
  tc.sim->RunUntilIdle();
  // The second command cannot execute before the first (slot order), and the first is
  // stuck without its ack: acceptable for this failure-free baseline. What must hold:
  // no divergence.
  auto o0 = tc.OrderAt(0);
  auto o1 = tc.OrderAt(1);
  EXPECT_EQ(o0, o1);
}

TEST(MenciusTest, SubmitDoesNotClobberAcceptedRevocationState) {
  // Regression: the owner's Submit is an implicit self-accept at ballot 0. If the
  // owner already promised a revocation ballot and accepted a skip for its next own
  // slot (and the MnRevokeSkip learn was lost), Submit must move to the next owned
  // slot instead of overwriting the accepted skip with cmd@0 — otherwise a later
  // revocation can decide the command for a slot others executed as a skip.
  TestCluster tc(3);
  common::Ballot b = common::NextRecoveryBallot(1, 0, 3);
  msg::MnRevoke rev;
  rev.slot = 0;
  rev.ballot = b;
  tc.engines[0]->OnMessage(1, rev);  // owner promises ballot b for slot 0
  msg::MnRevokeAccept acc;
  acc.slot = 0;
  acc.ballot = b;
  acc.choice = 2;  // skip
  tc.engines[0]->OnMessage(1, acc);  // owner accepts skip@b; the learn is "lost"
  tc.engines[0]->Submit(smr::MakePut(1, 1, "k", "v"));  // must go to slot 3, not 0
  // The revocation's decision eventually reaches everyone.
  msg::MnRevokeSkip sk;
  sk.slot = 0;
  for (int p = 0; p < 3; p++) {
    tc.engines[p]->OnMessage(1, sk);
  }
  tc.sim->RunUntilIdle();
  ASSERT_EQ(tc.executed.size(), 3u);  // the command survives, once per replica
  auto ref = tc.OrderAt(0);
  ASSERT_EQ(ref.size(), 1u);
  EXPECT_EQ(tc.OrderAt(1), ref);
  EXPECT_EQ(tc.OrderAt(2), ref);
  EXPECT_GE(tc.engines[0]->ExecutedUpto(), 4u);  // slots 0-2 skipped, 3 committed
}

TEST(MenciusTest, IdleReplicasDoNotBlockExecution) {
  TestCluster tc(5);
  // Only replica 3 submits; everyone else is idle and must skip.
  for (int i = 0; i < 20; i++) {
    tc.sim->Submit(3, smr::MakePut(1, static_cast<uint64_t>(i) + 1, "k", "v"));
  }
  tc.sim->RunUntilIdle();
  for (ProcessId p = 0; p < 5; p++) {
    EXPECT_EQ(tc.OrderAt(p).size(), 20u) << "replica " << p;
  }
}

}  // namespace
}  // namespace mencius
