// SPSC mailbox + doorbell unit and stress tests (src/rt/mailbox.h).
//
//  * capacity: rounds up to a power of two; TryPush fails (item untouched) on a
//    full ring and recovers after one pop — the backpressure contract the
//    threaded runtime's deadlock-freedom discipline is built on;
//  * slot residency: items move through resident slots across many wraps with
//    payloads intact (the allocation-free pin for this path lives in
//    alloc_test, which counts heap traffic through the same cycle);
//  * FIFO under real concurrency: a producer thread and a consumer thread move
//    a large sequenced stream through a small ring; order and completeness
//    must survive the backpressure-induced retries on both sides;
//  * doorbell: Ring wakes a parked consumer; a ring while disarmed is
//    swallowed (that is the point — the armed flag makes the common awake case
//    syscall-free, and the consumer's arm-then-recheck covers the gap).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/rt/mailbox.h"

namespace rt {
namespace {

TEST(MailboxTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(Mailbox<int>(1).capacity(), 1u);
  EXPECT_EQ(Mailbox<int>(2).capacity(), 2u);
  EXPECT_EQ(Mailbox<int>(5).capacity(), 8u);
  EXPECT_EQ(Mailbox<int>(8).capacity(), 8u);
  EXPECT_EQ(Mailbox<int>(8192).capacity(), 8192u);
}

TEST(MailboxTest, PushFailsWhenFullAndRecoversAfterPop) {
  Mailbox<int> box(4);
  for (int i = 0; i < 4; i++) {
    int v = i;
    ASSERT_TRUE(box.TryPush(v)) << "push " << i;
  }
  int overflow = 99;
  EXPECT_FALSE(box.TryPush(overflow));
  EXPECT_EQ(overflow, 99);  // a failed push leaves the item untouched
  EXPECT_EQ(box.SizeApprox(), 4u);

  int out = -1;
  ASSERT_TRUE(box.TryPop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(box.TryPush(overflow));  // one pop frees exactly one slot

  for (int expected : {1, 2, 3, 99}) {
    ASSERT_TRUE(box.TryPop(out));
    EXPECT_EQ(out, expected);
  }
  EXPECT_FALSE(box.TryPop(out));
  EXPECT_TRUE(box.Empty());
}

// Payloads survive many ring wraps through the same resident slots, including
// strings large enough to live on the heap (moved, never copied or corrupted).
TEST(MailboxTest, SlotsCarryPayloadsAcrossWraps) {
  Mailbox<std::string> box(4);
  std::string item;
  std::string out;
  const std::string big(512, 'x');  // well past SSO
  for (int round = 0; round < 1000; round++) {
    item = big + std::to_string(round);
    ASSERT_TRUE(box.TryPush(item));
    ASSERT_TRUE(box.TryPop(out));
    EXPECT_EQ(out, big + std::to_string(round));
  }
  EXPECT_TRUE(box.Empty());
}

// One producer thread, one consumer thread, a ring far smaller than the
// stream: every item arrives exactly once, in order, through sustained
// backpressure on both sides.
TEST(MailboxTest, TwoThreadFifoStress) {
  Mailbox<uint64_t> box(64);
  const uint64_t kItems = 200000;

  std::thread producer([&box]() {
    for (uint64_t i = 0; i < kItems;) {
      uint64_t v = i;
      if (box.TryPush(v)) {
        i++;
      } else {
        std::this_thread::yield();
      }
    }
  });

  uint64_t next = 0;
  uint64_t out = 0;
  while (next < kItems) {
    if (box.TryPop(out)) {
      ASSERT_EQ(out, next) << "FIFO order broken";
      next++;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(box.Empty());
  EXPECT_EQ(next, kItems);
}

TEST(MailboxTest, DoorbellWakesParkedConsumer) {
  Doorbell bell;
  std::atomic<bool> rung{false};
  std::thread consumer([&]() {
    bell.Arm();
    rung.store(bell.Wait(/*timeout_us=*/5 * 1000 * 1000));
  });
  // Ring until the consumer reports the wakeup: a ring while it has not armed
  // yet is a no-op by design, so keep ringing like a retrying producer would.
  while (!rung.load()) {
    bell.Ring();
    std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(rung.load());
}

TEST(MailboxTest, DoorbellWaitTimesOutWhenNotRung) {
  Doorbell bell;
  bell.Arm();
  EXPECT_FALSE(bell.Wait(/*timeout_us=*/2000));
}

// A ring with the bell disarmed is swallowed: the consumer's contract is to
// re-check its mailboxes after Arm() rather than trust a pending ring.
TEST(MailboxTest, RingWhileDisarmedIsSwallowed) {
  Doorbell bell;
  bell.Ring();  // disarmed: no wakeup is recorded
  bell.Arm();
  EXPECT_FALSE(bell.Wait(/*timeout_us=*/2000));
}

}  // namespace
}  // namespace rt
