// Exhaustive small-scale invariant checks: Property 2 over all crash subsets, and
// Invariant 2' across workload / timing / configuration sweeps (parameterized).
#include <gtest/gtest.h>

#include <memory>

#include "src/core/atlas.h"
#include "src/sim/simulator.h"

namespace atlas {
namespace {

using common::DepSet;
using common::Dot;
using common::kMillisecond;
using common::ProcessId;
using common::Quorum;

struct MiniCluster {
  MiniCluster(uint32_t n, uint32_t f, uint64_t seed, common::Duration jitter = 0,
              bool prune = true) {
    sim::Simulator::Options opts;
    opts.seed = seed;
    sim = std::make_unique<sim::Simulator>(
        std::make_unique<sim::UniformLatency>(10 * kMillisecond, jitter), opts);
    for (uint32_t i = 0; i < n; i++) {
      Config cfg;
      cfg.n = n;
      cfg.f = f;
      cfg.prune_slow_path = prune;
      cfg.recovery_scan_interval = 100 * kMillisecond;
      cfg.recovery_retry_interval = 200 * kMillisecond;
      engines.push_back(std::make_unique<AtlasEngine>(cfg));
      sim->AddEngine(engines.back().get());
    }
    sim->SetExecutedHandler(
        [this](ProcessId p, const Dot& d, const smr::Command& c) {
          executed.emplace_back(p, d, c);
        });
    sim->Start();
  }

  std::unique_ptr<sim::Simulator> sim;
  std::vector<std::unique_ptr<AtlasEngine>> engines;
  std::vector<std::tuple<ProcessId, Dot, smr::Command>> executed;
};

// Property 2, exhaustively: after a fast-path commit known ONLY to the coordinator,
// crash the coordinator plus every possible choice of f-1 other fast-quorum members;
// the survivors must always recover exactly the committed dependencies.
TEST(AtlasInvariantTest, Property2AllCrashSubsets) {
  const uint32_t n = 5;
  const uint32_t f = 2;
  // Fast quorum of coordinator 0 under uniform latency is {0,1,2,3}.
  const ProcessId coordinator = 0;
  const std::vector<ProcessId> other_members = {1, 2, 3};
  for (ProcessId second_crash : other_members) {
    MiniCluster tc(n, f, 1000 + second_crash);
    // A conflicting command from process 4 seeds nonempty dependencies.
    tc.sim->Submit(4, smr::MakePut(9, 1, "k", "v0"));
    tc.sim->RunUntilIdle();
    // Coordinator commits on the fast path but its MCommit reaches nobody.
    tc.sim->Submit(coordinator, smr::MakePut(1, 1, "k", "v1"));
    tc.sim->RunFor(19 * kMillisecond);
    for (ProcessId p = 1; p < n; p++) {
      tc.sim->SetLinkDown(coordinator, p, true);
    }
    tc.sim->RunFor(5 * kMillisecond);
    ASSERT_EQ(tc.engines[coordinator]->PhaseOf(Dot{0, 1}),
              AtlasEngine::Phase::kExecute);
    DepSet committed = tc.engines[coordinator]->CommittedDeps(Dot{0, 1});
    tc.sim->Crash(coordinator);
    tc.sim->Crash(second_crash);
    for (ProcessId p = 0; p < n; p++) {
      if (!tc.sim->IsCrashed(p)) {
        tc.engines[p]->OnSuspect(coordinator);
        tc.engines[p]->OnSuspect(second_crash);
      }
    }
    tc.sim->RunUntilIdle();
    for (ProcessId p = 0; p < n; p++) {
      if (tc.sim->IsCrashed(p)) {
        continue;
      }
      EXPECT_EQ(tc.engines[p]->PhaseOf(Dot{0, 1}), AtlasEngine::Phase::kExecute)
          << "survivor " << p << " (crashed " << second_crash << ")";
      EXPECT_EQ(tc.engines[p]->CommittedDeps(Dot{0, 1}), committed)
          << "survivor " << p << " (crashed " << second_crash
          << ") recovered different dependencies: Property 2 violated";
    }
  }
}

struct SweepParam {
  uint32_t n;
  uint32_t f;
  bool prune;
  uint64_t seed;
};

class InvariantSweep : public ::testing::TestWithParam<SweepParam> {};

// Invariant 2' + execution consistency under concurrent conflicting submissions with
// jittered delivery: for every conflicting pair, a dependency path must exist in one
// direction, and all replicas must execute the hot key's writes identically.
TEST_P(InvariantSweep, ConflictingPairsAlwaysConnected) {
  const SweepParam param = GetParam();
  MiniCluster tc(param.n, param.f, param.seed, /*jitter=*/8 * kMillisecond,
                 param.prune);
  const int kPerProc = 6;
  for (ProcessId p = 0; p < param.n; p++) {
    for (int i = 0; i < kPerProc; i++) {
      tc.sim->Submit(p, smr::MakePut(p + 1, static_cast<uint64_t>(i) + 1, "hot", "v"));
      if (i % 2 == 0) {
        tc.sim->RunFor(3 * kMillisecond);  // partial overlap between submissions
      }
    }
  }
  tc.sim->RunUntilIdle();

  // Collect all hot-key dots and their agreed deps.
  std::vector<Dot> dots;
  for (ProcessId p = 0; p < param.n; p++) {
    for (uint64_t s = 1; s <= kPerProc; s++) {
      dots.push_back(Dot{p, s});
    }
  }
  std::unordered_map<Dot, DepSet, common::DotHash> deps;
  for (const Dot& d : dots) {
    DepSet ref = tc.engines[0]->CommittedDeps(d);
    deps[d] = ref;
    for (uint32_t p = 1; p < param.n; p++) {
      ASSERT_EQ(tc.engines[p]->CommittedDeps(d), ref)
          << "Invariant 1 violated at " << common::ToString(d);
    }
  }
  // Connectivity: for each pair, BFS in either direction.
  auto reaches = [&](const Dot& from, const Dot& to) {
    std::vector<Dot> stack{from};
    std::unordered_map<Dot, bool, common::DotHash> seen;
    while (!stack.empty()) {
      Dot d = stack.back();
      stack.pop_back();
      if (d == to) {
        return true;
      }
      if (seen[d]) {
        continue;
      }
      seen[d] = true;
      auto it = deps.find(d);
      if (it != deps.end()) {
        stack.insert(stack.end(), it->second.begin(), it->second.end());
      }
    }
    return false;
  };
  for (size_t i = 0; i < dots.size(); i++) {
    for (size_t j = i + 1; j < dots.size(); j++) {
      EXPECT_TRUE(reaches(dots[i], dots[j]) || reaches(dots[j], dots[i]))
          << common::ToString(dots[i]) << " and " << common::ToString(dots[j])
          << " are conflicting but unordered (Invariant 2' chain broken)";
    }
  }
  // Execution order of the hot key identical at all replicas.
  auto order_at = [&](ProcessId p) {
    std::vector<Dot> out;
    for (const auto& [proc, dot, cmd] : tc.executed) {
      if (proc == p) {
        out.push_back(dot);
      }
    }
    return out;
  };
  auto ref = order_at(0);
  EXPECT_EQ(ref.size(), dots.size());
  for (uint32_t p = 1; p < param.n; p++) {
    EXPECT_EQ(order_at(p), ref);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, InvariantSweep,
    ::testing::Values(SweepParam{3, 1, true, 1}, SweepParam{5, 1, true, 2},
                      SweepParam{5, 2, true, 3}, SweepParam{5, 2, false, 4},
                      SweepParam{7, 2, true, 5}, SweepParam{7, 3, true, 6},
                      SweepParam{7, 3, false, 7}, SweepParam{9, 4, true, 8}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "n" + std::to_string(info.param.n) + "f" + std::to_string(info.param.f) +
             (info.param.prune ? "p" : "np") + "s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace atlas
