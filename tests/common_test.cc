// Tests for rng, zipf, histogram, timeseries, quorum, ballot arithmetic.
#include <gtest/gtest.h>

#include "src/common/histogram.h"
#include "src/common/quorum.h"
#include "src/common/rng.h"
#include "src/common/timeseries.h"
#include "src/common/types.h"

namespace common {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; i++) {
    if (a2.Next() != c.Next()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BelowBounds) {
  Rng rng(1);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.Below(7), 7u);
  }
  for (int i = 0; i < 1000; i++) {
    int64_t v = rng.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(2);
  for (int i = 0; i < 100; i++) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ExponentialMean) {
  Rng rng(3);
  double sum = 0;
  const int kN = 200000;
  for (int i = 0; i < kN; i++) {
    sum += rng.Exponential(10.0);
  }
  EXPECT_NEAR(sum / kN, 10.0, 0.2);
}

TEST(ZipfTest, SkewAndBounds) {
  Rng rng(4);
  Zipf zipf(1000, 0.99);
  std::vector<uint64_t> counts(1000, 0);
  const int kN = 200000;
  for (int i = 0; i < kN; i++) {
    uint64_t v = zipf.Sample(rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Rank 0 is the most popular and far above uniform.
  EXPECT_GT(counts[0], counts[500] * 5);
  EXPECT_GT(counts[0], static_cast<uint64_t>(kN) / 1000 * 10);
  // Monotone-ish decrease between widely separated ranks.
  EXPECT_GT(counts[1], counts[100]);
}

TEST(ZipfTest, Theta0IsRoughlyUniform) {
  Rng rng(5);
  Zipf zipf(100, 0.01);
  std::vector<uint64_t> counts(100, 0);
  for (int i = 0; i < 100000; i++) {
    counts[zipf.Sample(rng)]++;
  }
  EXPECT_LT(counts[0], counts[50] * 3);
}

TEST(HistogramTest, PercentilesAndMean) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) {
    h.Record(i * 1000);  // 1ms..1000ms
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.Mean(), 500500.0, 1.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500000.0, 20000.0);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990000.0, 40000.0);
  EXPECT_EQ(h.Percentile(0), h.min());
  EXPECT_EQ(h.Percentile(100), h.max());
}

TEST(HistogramTest, MergeEqualsCombinedRecording) {
  Histogram a, b, c;
  Rng rng(6);
  for (int i = 0; i < 5000; i++) {
    int64_t v = static_cast<int64_t>(rng.Below(1000000));
    if (i % 2 == 0) {
      a.Record(v);
    } else {
      b.Record(v);
    }
    c.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), c.count());
  EXPECT_EQ(a.min(), c.min());
  EXPECT_EQ(a.max(), c.max());
  EXPECT_NEAR(a.Mean(), c.Mean(), 1e-6);
  EXPECT_EQ(a.Percentile(50), c.Percentile(50));
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(TimeSeriesTest, BucketsAndRates) {
  TimeSeries ts(kSecond);
  ts.Record(100 * kMillisecond);
  ts.Record(900 * kMillisecond);
  ts.Record(1 * kSecond + 1);
  EXPECT_EQ(ts.At(0), 2u);
  EXPECT_EQ(ts.At(1 * kSecond), 1u);
  EXPECT_EQ(ts.At(5 * kSecond), 0u);
  EXPECT_DOUBLE_EQ(ts.RatePerSecond(0), 2.0);
}

TEST(QuorumTest, Basics) {
  Quorum q;
  EXPECT_TRUE(q.empty());
  q.Add(0);
  q.Add(5);
  q.Add(31);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_TRUE(q.Contains(5));
  EXPECT_FALSE(q.Contains(1));
  q.Remove(5);
  EXPECT_FALSE(q.Contains(5));
  auto members = Quorum::Of({1, 2, 4}).Members();
  EXPECT_EQ(members, (std::vector<ProcessId>{1, 2, 4}));
}

TEST(QuorumTest, Intersect) {
  Quorum a = Quorum::Of({0, 1, 2, 3});
  Quorum b = Quorum::Of({2, 3, 4});
  EXPECT_EQ(a.Intersect(b), Quorum::Of({2, 3}));
}

TEST(BallotTest, InitialAndRecovery) {
  const uint32_t n = 5;
  for (ProcessId i = 0; i < n; i++) {
    Ballot init = InitialBallot(i);
    EXPECT_EQ(BallotOwner(init, n), i);
    EXPECT_GE(init, 1u);
    EXPECT_LE(init, n);
  }
  // Recovery ballots strictly increase, stay owned by the recoverer, and exceed n.
  for (ProcessId i = 0; i < n; i++) {
    Ballot cur = InitialBallot(3);
    for (int round = 0; round < 5; round++) {
      Ballot next = NextRecoveryBallot(i, cur, n);
      EXPECT_GT(next, cur);
      EXPECT_GT(next, static_cast<Ballot>(n));
      EXPECT_EQ(BallotOwner(next, n), i);
      cur = next;
    }
  }
}

TEST(BallotTest, DistinctOwnersNeverCollide) {
  const uint32_t n = 7;
  Ballot base = InitialBallot(2);
  for (ProcessId i = 0; i < n; i++) {
    for (ProcessId j = i + 1; j < n; j++) {
      EXPECT_NE(NextRecoveryBallot(i, base, n), NextRecoveryBallot(j, base, n));
    }
  }
}

TEST(DotTest, OrderingAndHash) {
  Dot a{0, 1}, b{1, 1}, c{0, 2};
  EXPECT_LT(a, b);  // same seq, proc breaks tie
  EXPECT_LT(b, c);  // seq dominates
  DotHash h;
  EXPECT_NE(h(a), h(b));
  EXPECT_EQ(h(a), h(Dot{0, 1}));
}

}  // namespace
}  // namespace common
