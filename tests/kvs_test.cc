#include "src/kvs/kvs.h"

#include <gtest/gtest.h>

namespace kvs {
namespace {

TEST(KvStoreTest, PutGet) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(smr::MakeGet(1, 1, "a")), "");
  kv.Apply(smr::MakePut(1, 2, "a", "v1"));
  EXPECT_EQ(kv.Apply(smr::MakeGet(1, 3, "a")), "v1");
  kv.Apply(smr::MakePut(1, 4, "a", "v2"));
  EXPECT_EQ(kv.Apply(smr::MakeGet(1, 5, "a")), "v2");
  EXPECT_EQ(kv.size(), 1u);
}

TEST(KvStoreTest, RmwAppendsAndReturnsPrevious) {
  KvStore kv;
  EXPECT_EQ(kv.Apply(smr::MakeRmw(1, 1, "a", "x")), "");
  EXPECT_EQ(kv.Apply(smr::MakeRmw(1, 2, "a", "y")), "x");
  EXPECT_EQ(kv.Apply(smr::MakeGet(1, 3, "a")), "xy");
}

TEST(KvStoreTest, ScanAndMPut) {
  KvStore kv;
  smr::Command mput = smr::MakePut(1, 1, "a", "v");
  mput.op = smr::Op::kMPut;
  mput.more_keys = {"b", "c"};
  kv.Apply(mput);
  EXPECT_EQ(kv.size(), 3u);
  smr::Command scan = smr::MakeGet(1, 2, "a");
  scan.op = smr::Op::kScan;
  scan.more_keys = {"b", "c", "missing"};
  EXPECT_EQ(kv.Apply(scan), "vvv");
}

TEST(KvStoreTest, NoOpHasNoEffect) {
  KvStore kv;
  kv.Apply(smr::MakePut(1, 1, "a", "v"));
  uint64_t digest = kv.StateDigest();
  EXPECT_EQ(kv.Apply(smr::MakeNoOp()), "");
  EXPECT_EQ(kv.StateDigest(), digest);
}

TEST(KvStoreTest, DigestIsOrderIndependentForCommutingOps) {
  KvStore a, b;
  a.Apply(smr::MakePut(1, 1, "x", "1"));
  a.Apply(smr::MakePut(1, 2, "y", "2"));
  b.Apply(smr::MakePut(1, 2, "y", "2"));
  b.Apply(smr::MakePut(1, 1, "x", "1"));
  EXPECT_EQ(a.StateDigest(), b.StateDigest());
}

TEST(KvStoreTest, DigestDetectsDivergence) {
  KvStore a, b;
  a.Apply(smr::MakePut(1, 1, "x", "1"));
  b.Apply(smr::MakePut(1, 1, "x", "2"));
  EXPECT_NE(a.StateDigest(), b.StateDigest());
}

TEST(KvStoreTest, Lookup) {
  KvStore kv;
  EXPECT_EQ(kv.Lookup("a"), nullptr);
  kv.Apply(smr::MakePut(1, 1, "a", "v"));
  ASSERT_NE(kv.Lookup("a"), nullptr);
  EXPECT_EQ(*kv.Lookup("a"), "v");
}

}  // namespace
}  // namespace kvs
