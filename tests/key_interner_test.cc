// KeyInterner unit tests plus a randomized equivalence proof: the interned
// KeyConflictIndex must return byte-identical conflict sets to the original
// string-keyed implementation (reproduced here as the reference) over a long mixed
// workload, in both IndexModes.
#include "src/smr/key_interner.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/rng.h"
#include "src/smr/conflict_index.h"

namespace smr {
namespace {

using common::DepSet;
using common::Dot;
using common::ProcessId;
using common::Rng;

TEST(KeyInternerTest, AssignsDenseIdsInFirstSightOrder) {
  KeyInterner interner;
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("beta"), 1u);
  EXPECT_EQ(interner.Intern("alpha"), 0u);
  EXPECT_EQ(interner.Intern("gamma"), 2u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.KeyOf(1), "beta");
}

TEST(KeyInternerTest, FindDoesNotCreate) {
  KeyInterner interner;
  EXPECT_EQ(interner.Find("missing"), KeyInterner::kNotFound);
  interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), 0u);
  EXPECT_EQ(interner.Find("missing"), KeyInterner::kNotFound);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(KeyInternerTest, SurvivesRehashWithManyKeys) {
  KeyInterner interner;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 5000; i++) {
    ids.push_back(interner.Intern("key-" + std::to_string(i)));
  }
  for (int i = 0; i < 5000; i++) {
    EXPECT_EQ(interner.Find("key-" + std::to_string(i)), ids[i]);
    EXPECT_EQ(interner.KeyOf(ids[i]), "key-" + std::to_string(i));
  }
  // Empty string and binary-ish keys behave like any other key.
  uint32_t empty_id = interner.Intern("");
  std::string binary("\x00\x01\xff", 3);
  uint32_t binary_id = interner.Intern(binary);
  EXPECT_EQ(interner.Find(""), empty_id);
  EXPECT_EQ(interner.Find(binary), binary_id);
  EXPECT_NE(empty_id, binary_id);
}

// ---------------------------------------------------------------------------
// Reference implementation: the pre-interning string-keyed KeyConflictIndex
// (unordered_map<std::string, PerKey>), byte-for-byte the old semantics.
// ---------------------------------------------------------------------------

class StringKeyedIndex {
 public:
  explicit StringKeyedIndex(IndexMode mode) : mode_(mode) {}

  DepSet Conflicts(const Command& cmd, const Dot& self) const {
    DepSet out;
    if (cmd.is_noop()) {
      for (const auto& [key, per_key] : keys_) {
        CollectAll(per_key.writes, self, out);
        CollectAll(per_key.reads, self, out);
      }
      CollectAll(noops_, self, out);
      return out;
    }
    CollectKey(cmd.key, cmd.is_read(), self, out);
    for (const auto& k : cmd.more_keys) {
      CollectKey(k, cmd.is_read(), self, out);
    }
    CollectAll(noops_, self, out);
    return out;
  }

  void Record(const Dot& dot, const Command& cmd) {
    if (!seen_.insert(dot).second) {
      return;
    }
    if (cmd.is_noop()) {
      AddEntry(noops_, dot, mode_);
      return;
    }
    RecordKey(cmd.key, cmd.is_read(), dot);
    for (const auto& k : cmd.more_keys) {
      RecordKey(k, cmd.is_read(), dot);
    }
  }

 private:
  using Entry = std::pair<ProcessId, Dot>;

  static void CollectAll(const std::vector<Entry>& entries, const Dot& self,
                         DepSet& out) {
    for (const auto& [proc, dot] : entries) {
      if (dot != self) {
        out.Insert(dot);
      }
    }
  }

  static void AddEntry(std::vector<Entry>& entries, const Dot& dot, IndexMode mode) {
    if (mode == IndexMode::kCompressed) {
      for (auto& [proc, d] : entries) {
        if (proc == dot.proc) {
          if (d < dot) {
            d = dot;
          }
          return;
        }
      }
    }
    entries.emplace_back(dot.proc, dot);
  }

  struct PerKey {
    std::vector<Entry> writes;
    std::vector<Entry> reads;
  };

  void CollectKey(const std::string& key, bool cmd_is_read, const Dot& self,
                  DepSet& out) const {
    auto it = keys_.find(key);
    if (it == keys_.end()) {
      return;
    }
    CollectAll(it->second.writes, self, out);
    if (!cmd_is_read) {
      CollectAll(it->second.reads, self, out);
    }
  }

  void RecordKey(const std::string& key, bool is_read, const Dot& dot) {
    PerKey& pk = keys_[key];
    if (is_read) {
      AddEntry(pk.reads, dot, IndexMode::kFull);
    } else {
      AddEntry(pk.writes, dot, mode_);
      if (mode_ == IndexMode::kCompressed) {
        pk.reads.clear();
      }
    }
  }

  IndexMode mode_;
  std::unordered_map<std::string, PerKey> keys_;
  std::vector<Entry> noops_;
  std::unordered_set<Dot, common::DotHash> seen_;
};

Command RandomCommand(Rng& rng, uint64_t seq) {
  auto key = [&rng]() { return "k" + std::to_string(rng.Below(48)); };
  Command c;
  c.client = 1 + rng.Below(8);
  c.seq = seq;
  switch (rng.Below(12)) {
    case 0:  // noop
      c.op = Op::kNoOp;
      break;
    case 1:
    case 2:
    case 3: {  // read
      c.op = Op::kGet;
      c.key = key();
      break;
    }
    case 4: {  // multi-key read
      c.op = Op::kScan;
      c.key = key();
      c.more_keys = {key(), key()};
      break;
    }
    case 5: {  // multi-key write (may repeat a key: Record must stay idempotent)
      c.op = Op::kMPut;
      c.key = key();
      c.more_keys = {key(), c.key};
      c.value = "v";
      break;
    }
    case 6: {  // read-modify-write
      c.op = Op::kRmw;
      c.key = key();
      c.value = "v";
      break;
    }
    default: {  // write
      c.op = Op::kPut;
      c.key = key();
      c.value = "v";
      break;
    }
  }
  return c;
}

// 10k mixed read/write/multi-key/noop commands: at every step the interned index and
// the string-keyed reference must agree exactly, in both index modes.
TEST(KeyInternerTest, ConflictIndexEquivalentToStringKeyedReference) {
  for (IndexMode mode : {IndexMode::kFull, IndexMode::kCompressed}) {
    KeyConflictIndex interned(mode);
    StringKeyedIndex reference(mode);
    Rng rng(mode == IndexMode::kFull ? 7 : 8);
    DepSet scratch;
    uint64_t next_seq[5] = {1, 1, 1, 1, 1};
    for (int step = 0; step < 10000; step++) {
      ProcessId proc = static_cast<ProcessId>(rng.Below(5));
      Dot dot{proc, next_seq[proc]++};
      Command cmd = RandomCommand(rng, dot.seq);

      interned.CollectInto(cmd, dot, scratch);
      DepSet expected = reference.Conflicts(cmd, dot);
      ASSERT_EQ(scratch, expected)
          << "mode=" << (mode == IndexMode::kFull ? "full" : "compressed")
          << " step=" << step << " cmd=" << cmd.ToString()
          << " got=" << scratch.ToString() << " want=" << expected.ToString();
      // The allocating wrapper agrees with the scratch API.
      ASSERT_EQ(interned.Conflicts(cmd, dot), expected);

      interned.Record(dot, cmd);
      reference.Record(dot, cmd);
      if (rng.Below(10) == 0) {
        interned.Record(dot, cmd);  // duplicate records must be ignored
        reference.Record(dot, cmd);
      }
      ASSERT_TRUE(interned.Seen(dot));
    }
    EXPECT_EQ(interned.RecordedCount(), 10000u);  // every dot recorded exactly once
  }
}

}  // namespace
}  // namespace smr
