// Atlas recovery tests (Algorithm 2): coordinator failure at every interesting point,
// Property 2 (fast-path proposals recoverable from floor(n/2) surviving fast-quorum
// members), noOp replacement, duelling recoverers, and Invariant 1 under recovery.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/atlas.h"
#include "src/sim/simulator.h"

namespace atlas {
namespace {

using common::DepSet;
using common::Dot;
using common::kMillisecond;
using common::kSecond;
using common::ProcessId;

struct RecCluster {
  explicit RecCluster(uint32_t n, uint32_t f, uint64_t seed = 7) {
    sim::Simulator::Options opts;
    opts.seed = seed;
    sim = std::make_unique<sim::Simulator>(
        std::make_unique<sim::UniformLatency>(10 * kMillisecond, 0), opts);
    for (uint32_t i = 0; i < n; i++) {
      Config cfg;
      cfg.n = n;
      cfg.f = f;
      cfg.recovery_scan_interval = 100 * kMillisecond;
      cfg.recovery_retry_interval = 300 * kMillisecond;
      cfg.commit_timeout = 500 * kMillisecond;
      engines.push_back(std::make_unique<AtlasEngine>(cfg));
      sim->AddEngine(engines.back().get());
    }
    sim->SetExecutedHandler([this](ProcessId p, const Dot& d, const smr::Command& c) {
      executed.emplace_back(p, d, c);
    });
    sim->Start();
  }

  void SuspectEverywhere(ProcessId dead) {
    for (size_t p = 0; p < engines.size(); p++) {
      if (!sim->IsCrashed(static_cast<ProcessId>(p))) {
        engines[p]->OnSuspect(dead);
      }
    }
  }

  size_t ExecCountAt(ProcessId p, bool include_noops = false) const {
    size_t k = 0;
    for (const auto& [proc, dot, cmd] : executed) {
      if (proc == p && (include_noops || !cmd.is_noop())) {
        k++;
      }
    }
    return k;
  }

  std::unique_ptr<sim::Simulator> sim;
  std::vector<std::unique_ptr<AtlasEngine>> engines;
  std::vector<std::tuple<ProcessId, Dot, smr::Command>> executed;
};

// The coordinator crashes after its MCollect reached the fast quorum but before any
// MCommit: survivors must recover the command itself (not a noOp).
TEST(AtlasRecoveryTest, RecoversCommandWhenQuorumSawCollect) {
  RecCluster tc(5, 2);
  // Block coordinator 0's acks so it cannot commit, but let MCollect through.
  // Easiest: let MCollects be delivered, then crash 0 before acks return.
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunFor(11 * kMillisecond);  // MCollect delivered at quorum, acks in flight
  tc.sim->Crash(0);
  tc.SuspectEverywhere(0);
  tc.sim->RunUntilIdle();
  // All survivors executed the real command.
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.ExecCountAt(p), 1u) << "process " << p;
  }
  // And agree it committed with the payload, not noOp.
  for (const auto& [proc, dot, cmd] : tc.executed) {
    EXPECT_FALSE(cmd.is_noop());
    EXPECT_EQ(cmd.key, "k");
  }
}

// The coordinator crashes before anyone saw the payload: survivors must agree on noOp
// (line 53) so that dependent commands are not blocked forever.
TEST(AtlasRecoveryTest, ReplacesUnseenCommandWithNoOp) {
  RecCluster tc(5, 2);
  // Cut all of 0's outgoing links, then submit at 0: nobody sees MCollect.
  for (ProcessId p = 1; p < 5; p++) {
    tc.sim->SetLinkDown(0, p, true);
  }
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunFor(5 * kMillisecond);
  tc.sim->Crash(0);

  // Survivors later learn the dot exists through a conflicting command's deps? They
  // cannot (no message escaped). Simulate an observer knowing the dot (e.g. client
  // retry surface): trigger recovery explicitly at process 1.
  tc.engines[1]->Recover(Dot{0, 1});
  tc.sim->RunUntilIdle();
  // The dot must be committed as noOp at survivors (executed as no-effect).
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.engines[p]->PhaseOf(Dot{0, 1}), AtlasEngine::Phase::kExecute);
    EXPECT_EQ(tc.ExecCountAt(p), 0u);                      // no real command executed
    EXPECT_GE(tc.engines[p]->stats().noops_committed, 1u);
  }
}

// Property 2 end-to-end: coordinator takes the fast path and crashes together with
// f-1 other fast-quorum members right after commit was sent only to itself. The
// recovery quorum must reconstruct the exact fast-path dependencies.
TEST(AtlasRecoveryTest, FastPathDecisionSurvivesFFailures) {
  RecCluster tc(5, 2);
  // First, commit a conflicting command from process 4 so dependencies are nonempty.
  tc.sim->Submit(4, smr::MakePut(9, 1, "k", "v0"));
  tc.sim->RunUntilIdle();
  // Now 0 submits; let the full fast-path round trip complete, but block 0's outgoing
  // MCommit to everyone: 0 commits locally, nobody else learns.
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v1"));
  tc.sim->RunFor(19 * kMillisecond);  // acks received at 20ms; not yet
  for (ProcessId p = 1; p < 5; p++) {
    tc.sim->SetLinkDown(0, p, true);
  }
  tc.sim->RunFor(5 * kMillisecond);  // 0 commits locally at 20ms, MCommit blocked
  EXPECT_EQ(tc.engines[0]->PhaseOf(Dot{0, 1}), AtlasEngine::Phase::kExecute);
  DepSet committed_deps = tc.engines[0]->CommittedDeps(Dot{0, 1});
  tc.sim->Crash(0);
  tc.SuspectEverywhere(0);
  tc.sim->RunUntilIdle();
  // Survivors must commit <0,1> with exactly the same dependencies 0 decided
  // (Invariant 1 across the crash).
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.engines[p]->PhaseOf(Dot{0, 1}), AtlasEngine::Phase::kExecute);
    EXPECT_EQ(tc.engines[p]->CommittedDeps(Dot{0, 1}), committed_deps)
        << "process " << p;
  }
}

// Several processes start recovery concurrently; ballots arbitrate and exactly one
// decision is reached (Invariant 1).
TEST(AtlasRecoveryTest, DuellingRecoverersAgree) {
  RecCluster tc(5, 2);
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunFor(11 * kMillisecond);
  tc.sim->Crash(0);
  // Everyone recovers at once (no staggering).
  for (ProcessId p = 1; p < 5; p++) {
    tc.engines[p]->Recover(Dot{0, 1});
  }
  tc.sim->RunUntilIdle();
  DepSet ref = tc.engines[1]->CommittedDeps(Dot{0, 1});
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.engines[p]->PhaseOf(Dot{0, 1}), AtlasEngine::Phase::kExecute);
    EXPECT_EQ(tc.engines[p]->CommittedDeps(Dot{0, 1}), ref);
  }
}

// A recovery racing the (alive but slow) initial coordinator: whatever is decided,
// there is exactly one decision (Invariant 1). We recover while the coordinator is
// merely partitioned, then heal the partition.
TEST(AtlasRecoveryTest, RecoveryRacesSlowCoordinator) {
  RecCluster tc(5, 2);
  tc.sim->Submit(0, smr::MakePut(1, 1, "k", "v"));
  tc.sim->RunFor(11 * kMillisecond);  // MCollect out; acks on the way back
  // Partition 0 (acks will be dropped at delivery; 0 cannot commit).
  for (ProcessId p = 1; p < 5; p++) {
    tc.sim->SetLinkDown(0, p, true);
    tc.sim->SetLinkDown(p, 0, true);
  }
  tc.engines[2]->Recover(Dot{0, 1});
  tc.sim->RunFor(2 * kSecond);
  // Heal.
  for (ProcessId p = 1; p < 5; p++) {
    tc.sim->SetLinkDown(0, p, false);
    tc.sim->SetLinkDown(p, 0, false);
  }
  tc.sim->RunUntilIdle();
  // All five replicas executed the command exactly once with equal deps.
  DepSet ref = tc.engines[2]->CommittedDeps(Dot{0, 1});
  for (ProcessId p = 0; p < 5; p++) {
    EXPECT_EQ(tc.engines[p]->PhaseOf(Dot{0, 1}), AtlasEngine::Phase::kExecute);
    EXPECT_EQ(tc.engines[p]->CommittedDeps(Dot{0, 1}), ref) << "process " << p;
    EXPECT_EQ(tc.ExecCountAt(p), 1u);
  }
}

// After recovery, dependent commands from other clients proceed (no permanent block).
TEST(AtlasRecoveryTest, DependentCommandsUnblockAfterRecovery) {
  RecCluster tc(5, 2);
  // 0 submits and reaches only its fast quorum, then dies.
  tc.sim->Submit(0, smr::MakePut(1, 1, "hot", "v"));
  tc.sim->RunFor(11 * kMillisecond);
  tc.sim->Crash(0);
  // A survivor submits a conflicting command: its deps include the dead dot, so it
  // blocks in execution until recovery commits <0,1>.
  tc.sim->Submit(1, smr::MakePut(2, 1, "hot", "v"));
  tc.sim->RunFor(200 * kMillisecond);
  EXPECT_EQ(tc.ExecCountAt(1), 0u);  // blocked
  tc.SuspectEverywhere(0);
  tc.sim->RunUntilIdle();
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_GE(tc.ExecCountAt(p), 1u) << "process " << p << " still blocked";
  }
}

// Automatic recovery through OnSuspect + periodic scan (no explicit Recover calls).
TEST(AtlasRecoveryTest, SuspectScanRecoversAllPendingDots) {
  RecCluster tc(5, 1);
  for (uint64_t i = 1; i <= 5; i++) {
    tc.sim->Submit(0, smr::MakePut(1, i, "key" + std::to_string(i), "v"));
  }
  tc.sim->RunFor(11 * kMillisecond);  // MCollects delivered, no commits yet
  tc.sim->Crash(0);
  tc.SuspectEverywhere(0);
  tc.sim->RunUntilIdle();
  for (ProcessId p = 1; p < 5; p++) {
    EXPECT_EQ(tc.ExecCountAt(p), 5u) << "process " << p;
  }
}

}  // namespace
}  // namespace atlas
