// Thread-per-shard runtime over real TCP: 3 nodes, P=4, one worker thread per
// shard behind SPSC mailboxes (smr::DeploymentOptions::threaded).
//
// The threaded I/O tier must be a pure transport change: the same fixed
// command script produces byte-identical per-(node, shard) store digests and
// applied counts as (a) the single-driver TCP runtime and (b) the
// discrete-event simulator driving the same Deployment assembly. Each client
// owns a disjoint key set and blocks on every call, so the per-key apply order
// is the client's program order in every run — which is what makes the
// cross-driver digest comparison exact even for order-sensitive kRmw.
//
// The crash drill stops one shard's worker thread mid-run: the dead shard's
// input is dropped (never wedging the I/O thread), every other shard keeps
// committing across all three nodes, and full-cluster shutdown still joins
// cleanly (the 120s ctest timeout is the deadlock guard).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/rt/node.h"
#include "src/sim/simulator.h"
#include "src/smr/deployment.h"
#include "src/smr/partitioner.h"

namespace rt {
namespace {

constexpr uint32_t kNodes = 3;
constexpr uint32_t kPartitions = 4;
constexpr uint64_t kClients = 4;
constexpr uint64_t kOpsPerClient = 20;

smr::DeploymentOptions MakeOptions(common::Duration batch_window, bool threaded) {
  smr::DeploymentOptions d;
  d.protocol = smr::Protocol::kAtlas;
  d.n = kNodes;
  d.f = 1;
  d.partitions = kPartitions;
  d.batch_window = batch_window;
  d.batch_max = 16;
  d.threaded = threaded;
  return d;
}

// The fixed command script: client c's op i (1-based), client-owned keys
// cycling over 5 slots so kRmw appends stack up (same script as rt_sharded_test).
smr::Command ScriptedOp(uint64_t client, uint64_t i) {
  std::string key = "c" + std::to_string(client) + "-k" + std::to_string(i % 5);
  std::string value = "v" + std::to_string(i);
  return (i % 2 == 1) ? smr::MakePut(client, i, key, std::move(value))
                      : smr::MakeRmw(client, i, key, std::move(value));
}

struct ShardState {
  std::vector<uint64_t> digests;  // per (node, shard)
  std::vector<uint64_t> counts;
};

// The identical script on the discrete-event simulator through the same
// Deployment assembly (single-threaded by construction).
ShardState SimulatorReference() {
  sim::Simulator::Options opts;
  opts.seed = 7;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(5 * common::kMillisecond,
                                                           common::kMillisecond),
                     opts);
  std::vector<std::unique_ptr<smr::Deployment>> replicas;
  for (uint32_t i = 0; i < kNodes; i++) {
    replicas.push_back(
        std::make_unique<smr::Deployment>(MakeOptions(0, /*threaded=*/false)));
    sim.AddEngine(&replicas[i]->engine());
  }
  sim.SetExecutedHandler([&](common::ProcessId p, const common::Dot& dot,
                             const smr::Command& cmd) {
    replicas[p]->ApplyExecuted(
        dot, cmd, [](uint32_t, const smr::Command&, std::string&&) {});
  });
  sim.Start();
  for (uint64_t c = 1; c <= kClients; c++) {
    for (uint64_t i = 1; i <= kOpsPerClient; i++) {
      sim.Submit(static_cast<common::ProcessId>(c % kNodes), ScriptedOp(c, i));
    }
  }
  sim.RunUntilIdle();

  ShardState st;
  for (uint32_t p = 0; p < kNodes; p++) {
    for (uint32_t s = 0; s < kPartitions; s++) {
      st.digests.push_back(replicas[p]->store(s).StateDigest());
      st.counts.push_back(replicas[p]->applied_count(s));
    }
  }
  return st;
}

// Brings up a 3-node loopback cluster (threaded or single-driver), drives the
// script through blocking clients, drains, and returns per-(node, shard) state.
void RunTcpCluster(common::Duration batch_window, bool threaded, uint16_t port_base,
                   ShardState* out) {
  for (int attempt = 0; attempt < 5; attempt++) {
    uint16_t base =
        static_cast<uint16_t>(port_base + attempt * 16 + (getpid() % 512));
    std::vector<PeerAddress> addrs;
    for (uint32_t i = 0; i < kNodes; i++) {
      addrs.push_back(PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    std::vector<std::unique_ptr<smr::Deployment>> replicas;
    std::vector<std::unique_ptr<Node>> nodes;
    bool bind_ok = true;
    for (uint32_t i = 0; i < kNodes; i++) {
      replicas.push_back(
          std::make_unique<smr::Deployment>(MakeOptions(batch_window, threaded)));
      nodes.push_back(std::make_unique<Node>(i, addrs, replicas[i].get()));
      if (!nodes.back()->Listen()) {
        bind_ok = false;
        break;
      }
    }
    if (!bind_ok) {
      continue;
    }
    std::vector<std::thread> node_threads;
    for (uint32_t i = 0; i < kNodes; i++) {
      node_threads.emplace_back([&, i]() { nodes[i]->Run(); });
    }

    std::atomic<int> failures{0};
    std::vector<std::thread> client_threads;
    for (uint64_t c = 1; c <= kClients; c++) {
      client_threads.emplace_back([&, c]() {
        Client client("127.0.0.1", addrs[c % kNodes].port);
        bool connected = false;
        for (int i = 0; i < 200 && !connected; i++) {
          connected = client.Connect();
          if (!connected) {
            usleep(20 * 1000);
          }
        }
        if (!connected) {
          failures.fetch_add(1);
          return;
        }
        std::string result;
        for (uint64_t i = 1; i <= kOpsPerClient; i++) {
          if (!client.Call(ScriptedOp(c, i), &result)) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : client_threads) {
      t.join();
    }

    const uint64_t expected = kClients * kOpsPerClient;
    if (failures.load() == 0) {
      auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
      bool drained = false;
      while (!drained && std::chrono::steady_clock::now() < deadline) {
        drained = true;
        for (auto& node : nodes) {
          if (node->applied_ops() < expected) {
            drained = false;
            break;
          }
        }
        if (!drained) {
          usleep(10 * 1000);
        }
      }
    }
    for (auto& node : nodes) {
      node->Stop();
    }
    for (auto& t : node_threads) {
      t.join();
    }
    ASSERT_EQ(failures.load(), 0) << "client calls failed";
    for (auto& node : nodes) {
      EXPECT_EQ(node->applied_ops(), expected) << "node failed to drain";
    }
    // Workers are joined (Run returned), so per-shard state is safe to read.
    for (uint32_t p = 0; p < kNodes; p++) {
      for (uint32_t s = 0; s < kPartitions; s++) {
        out->digests.push_back(replicas[p]->store(s).StateDigest());
        out->counts.push_back(replicas[p]->applied_count(s));
      }
    }
    return;
  }
  FAIL() << "could not bind a port block after 5 attempts";
}

void ExpectConvergedAndMatching(const ShardState& got, const ShardState& ref) {
  ASSERT_EQ(got.digests.size(), kNodes * kPartitions);
  for (uint32_t s = 0; s < kPartitions; s++) {
    for (uint32_t p = 1; p < kNodes; p++) {
      EXPECT_EQ(got.digests[p * kPartitions + s], got.digests[s])
          << "node " << p << " diverged on shard " << s;
      EXPECT_EQ(got.counts[p * kPartitions + s], got.counts[s])
          << "node " << p << " count mismatch on shard " << s;
    }
  }
  EXPECT_EQ(got.digests, ref.digests);
  EXPECT_EQ(got.counts, ref.counts);
}

// The tentpole parity gate: threaded TCP == single-driver TCP == simulator,
// per (node, shard), digests and counts.
TEST(RtThreadedTest, ThreadedMatchesSingleDriverAndSimulator) {
  ShardState ref = SimulatorReference();
  ShardState single;
  RunTcpCluster(/*batch_window=*/0, /*threaded=*/false, 45000, &single);
  if (HasFatalFailure()) {
    return;
  }
  ShardState threaded;
  RunTcpCluster(/*batch_window=*/0, /*threaded=*/true, 45200, &threaded);
  if (HasFatalFailure()) {
    return;
  }
  ExpectConvergedAndMatching(single, ref);
  ExpectConvergedAndMatching(threaded, ref);
  EXPECT_EQ(threaded.digests, single.digests);
  EXPECT_EQ(threaded.counts, single.counts);
}

// Worker-local submission batching (the flush timer lives in the worker's own
// timer wheel, not the I/O loop) must not change the final replicated state.
TEST(RtThreadedTest, ThreadedBatchedSubmissionConvergesToSameState) {
  ShardState ref = SimulatorReference();
  ShardState threaded;
  RunTcpCluster(/*batch_window=*/2 * common::kMillisecond, /*threaded=*/true,
                45400, &threaded);
  if (HasFatalFailure()) {
    return;
  }
  ExpectConvergedAndMatching(threaded, ref);
}

// Crash drill: stop one shard's worker thread on node 0 mid-run. The other
// shards keep committing on ALL nodes (including node 0 — a dead shard must
// not wedge its node's I/O thread), and full shutdown joins cleanly.
TEST(RtThreadedTest, CrashedShardThreadDoesNotWedgeNodeAndJoinsCleanly) {
  for (int attempt = 0; attempt < 5; attempt++) {
    uint16_t base =
        static_cast<uint16_t>(46000 + attempt * 16 + (getpid() % 512));
    std::vector<PeerAddress> addrs;
    for (uint32_t i = 0; i < kNodes; i++) {
      addrs.push_back(PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    std::vector<std::unique_ptr<smr::Deployment>> replicas;
    std::vector<std::unique_ptr<Node>> nodes;
    bool bind_ok = true;
    for (uint32_t i = 0; i < kNodes; i++) {
      replicas.push_back(
          std::make_unique<smr::Deployment>(MakeOptions(0, /*threaded=*/true)));
      nodes.push_back(std::make_unique<Node>(i, addrs, replicas[i].get()));
      if (!nodes.back()->Listen()) {
        bind_ok = false;
        break;
      }
    }
    if (!bind_ok) {
      continue;
    }
    std::vector<std::thread> node_threads;
    for (uint32_t i = 0; i < kNodes; i++) {
      node_threads.emplace_back([&, i]() { nodes[i]->Run(); });
    }

    const uint32_t dead = 2;
    smr::Partitioner part(kPartitions);
    // Keys that avoid the to-be-killed shard, for the post-crash phase.
    std::vector<std::string> live_keys;
    for (int i = 0; live_keys.size() < 8 && i < 10000; i++) {
      std::string k = "live" + std::to_string(i);
      if (part.ShardOf(k) != dead) {
        live_keys.push_back(k);
      }
    }

    bool connected = false;
    uint64_t phase1_ok = 0;
    uint64_t phase2_ok = 0;
    bool stop_one = false;
    bool stop_again = true;
    const uint64_t kPhaseOps = 8;
    auto drained_to = [&nodes](uint64_t target) {
      auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (std::chrono::steady_clock::now() < deadline) {
        bool ok = true;
        for (auto& node : nodes) {
          if (node->applied_ops() < target) {
            ok = false;
            break;
          }
        }
        if (ok) {
          return true;
        }
        usleep(10 * 1000);
      }
      return false;
    };
    bool drain1 = false;
    bool drain2 = false;
    {
      Client client("127.0.0.1", addrs[1].port);
      for (int i = 0; i < 200 && !connected; i++) {
        connected = client.Connect();
        if (!connected) {
          usleep(20 * 1000);
        }
      }
      if (connected) {
        std::string result;
        // Phase 1: ops across every shard, all healthy.
        for (uint64_t i = 1; i <= kPhaseOps; i++) {
          if (client.Call(ScriptedOp(1, i), &result)) {
            phase1_ok++;
          }
        }
        drain1 = drained_to(kPhaseOps);

        // Kill shard `dead`'s worker on node 0 (a thread-level fault, not a
        // process crash: the node's I/O loop and other workers keep running).
        stop_one = nodes[0]->shard_runtime()->StopOne(dead);
        stop_again = nodes[0]->shard_runtime()->StopOne(dead);

        // Phase 2: ops confined to surviving shards complete on all nodes —
        // node 0 included, via commit messages its live workers still process.
        for (uint64_t i = 0; i < kPhaseOps; i++) {
          smr::Command cmd = smr::MakePut(
              2, i + 1, live_keys[i % live_keys.size()], "after-crash");
          if (client.Call(cmd, &result)) {
            phase2_ok++;
          }
        }
        drain2 = drained_to(kPhaseOps * 2);
      }
    }
    for (auto& node : nodes) {
      node->Stop();
    }
    for (auto& t : node_threads) {
      t.join();  // the clean-shutdown assertion: a wedged node hangs here
    }
    ASSERT_TRUE(connected);
    ASSERT_GE(live_keys.size(), 8u);
    EXPECT_TRUE(stop_one) << "StopOne should stop a running worker";
    EXPECT_FALSE(stop_again) << "second StopOne must report already-stopped";
    EXPECT_EQ(phase1_ok, kPhaseOps);
    EXPECT_TRUE(drain1) << "healthy phase failed to drain";
    EXPECT_EQ(phase2_ok, kPhaseOps);
    EXPECT_TRUE(drain2) << "post-crash phase failed to drain on all nodes";
    return;
  }
  FAIL() << "could not bind a port block after 5 attempts";
}

}  // namespace
}  // namespace rt
