// End-to-end integration tests: every protocol on a WAN cluster with closed-loop
// clients, validated against the SMR specification by the history checker
// (Validity/Integrity/Ordering + convergence => linearizability, per §3.4/§B).
#include <gtest/gtest.h>

#include <memory>

#include "src/harness/cluster.h"
#include "src/paxos/multipaxos.h"
#include "src/sim/regions.h"
#include "src/wl/workload.h"

namespace harness {
namespace {

using common::kMillisecond;
using common::kSecond;

struct ProtoParam {
  Protocol protocol;
  uint32_t f;
  bool nfr;
};

class ProtocolIntegrationTest : public ::testing::TestWithParam<ProtoParam> {};

TEST_P(ProtocolIntegrationTest, ConflictHeavyWorkloadSatisfiesSmrSpec) {
  const ProtoParam param = GetParam();
  ClusterOptions opts;
  opts.protocol = param.protocol;
  opts.f = param.f;
  opts.nfr = param.nfr;
  opts.site_regions = sim::ScaleOutSites(5);
  opts.seed = 31;
  opts.enable_checker = true;
  Cluster cluster(opts);
  auto hot = std::make_shared<wl::MicroWorkload>(0.5, 64);
  for (size_t r = 0; r < 5; r++) {
    ClientSpec spec;
    spec.region = opts.site_regions[r];
    spec.workload = hot;
    spec.max_ops = 20;
    cluster.AddClients(spec, 2);
  }
  cluster.Start();
  auto result = cluster.Finish();
  EXPECT_TRUE(result.ok) << result.Describe();
  EXPECT_EQ(cluster.total_completed(), 5u * 2 * 20);
  // All replicas converge to the same state.
  uint64_t digest = cluster.store(0).StateDigest();
  for (uint32_t p = 1; p < cluster.n(); p++) {
    EXPECT_EQ(cluster.store(p).StateDigest(), digest);
  }
}

TEST_P(ProtocolIntegrationTest, YcsbMixSatisfiesSmrSpec) {
  const ProtoParam param = GetParam();
  ClusterOptions opts;
  opts.protocol = param.protocol;
  opts.f = param.f;
  opts.nfr = param.nfr;
  opts.site_regions = sim::ScaleOutSites(5);
  opts.seed = 33;
  opts.enable_checker = true;
  Cluster cluster(opts);
  auto ycsb = std::make_shared<wl::YcsbWorkload>(100, 0.5, 64);  // tiny keyspace: hot
  for (size_t r = 0; r < 5; r++) {
    ClientSpec spec;
    spec.region = opts.site_regions[r];
    spec.workload = ycsb;
    spec.max_ops = 15;
    cluster.AddClients(spec, 2);
  }
  cluster.Start();
  auto result = cluster.Finish();
  EXPECT_TRUE(result.ok) << result.Describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ProtocolIntegrationTest,
    ::testing::Values(ProtoParam{Protocol::kAtlas, 1, false},
                      ProtoParam{Protocol::kAtlas, 2, false},
                      ProtoParam{Protocol::kAtlas, 1, true},
                      ProtoParam{Protocol::kAtlas, 2, true},
                      ProtoParam{Protocol::kEPaxos, 2, false},
                      ProtoParam{Protocol::kEPaxos, 2, true},
                      ProtoParam{Protocol::kFPaxos, 1, false},
                      ProtoParam{Protocol::kFPaxos, 2, false},
                      ProtoParam{Protocol::kPaxos, 2, false},
                      ProtoParam{Protocol::kMencius, 2, false}),
    [](const ::testing::TestParamInfo<ProtoParam>& info) {
      std::string name = ProtocolName(info.param.protocol);
      name += "_f" + std::to_string(info.param.f);
      if (info.param.nfr) {
        name += "_nfr";
      }
      return name;
    });

// Seed sweep: Atlas under randomized jitter and both index modes must satisfy the
// spec for every seed (property-style schedule exploration).
class AtlasScheduleSweep : public ::testing::TestWithParam<int> {};

TEST_P(AtlasScheduleSweep, RandomSchedulesSatisfySpec) {
  for (smr::IndexMode mode : {smr::IndexMode::kCompressed, smr::IndexMode::kFull}) {
    ClusterOptions opts;
    opts.protocol = Protocol::kAtlas;
    opts.f = 2;
    opts.index_mode = mode;
    opts.site_regions = sim::ScaleOutSites(5);
    opts.seed = 1000 + static_cast<uint64_t>(GetParam());
    opts.jitter_frac = 0.5;  // violent jitter: many interleavings
    opts.enable_checker = true;
    Cluster cluster(opts);
    auto hot = std::make_shared<wl::MicroWorkload>(0.8, 16);
    for (size_t r = 0; r < 5; r++) {
      ClientSpec spec;
      spec.region = opts.site_regions[r];
      spec.workload = hot;
      spec.max_ops = 12;
      cluster.AddClients(spec, 2);
    }
    cluster.Start();
    auto result = cluster.Finish();
    EXPECT_TRUE(result.ok) << "seed " << opts.seed << ": " << result.Describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtlasScheduleSweep, ::testing::Range(0, 16));

// Crash integration: coordinator site dies mid-load; survivors recover and the
// history stays valid (the Figure 8 scenario as a correctness test).
TEST(CrashIntegrationTest, AtlasSurvivesSiteCrash) {
  ClusterOptions opts;
  opts.protocol = Protocol::kAtlas;
  opts.f = 1;
  opts.site_regions = sim::ThreeSites();  // TW, FI, SC
  opts.seed = 77;
  opts.enable_checker = true;
  Cluster cluster(opts);
  auto shared = std::make_shared<wl::FixedKeyWorkload>(true, 32);
  auto unique = std::make_shared<wl::FixedKeyWorkload>(false, 32);
  for (size_t r = 0; r < 3; r++) {
    ClientSpec spec;
    spec.region = opts.site_regions[r];
    spec.workload = shared;
    cluster.AddClients(spec, 2);
    spec.workload = unique;
    cluster.AddClients(spec, 2);
  }
  cluster.ScheduleCrash(/*site=*/0, /*at=*/2 * kSecond,
                        /*detection_timeout=*/1 * kSecond);
  cluster.Start();
  cluster.RunFor(10 * kSecond);
  uint64_t before_drain = cluster.total_completed();
  EXPECT_GT(before_drain, 0u);
  auto result = cluster.Finish();
  EXPECT_TRUE(result.ok) << result.Describe();
  // Clients from the crashed site kept making progress after migration.
  const auto& ts1 = cluster.SiteThroughput(1);
  const auto& ts2 = cluster.SiteThroughput(2);
  uint64_t late = 0;
  for (common::Time t = 5 * kSecond; t < 10 * kSecond; t += kSecond) {
    late += ts1.At(t) + ts2.At(t);
  }
  EXPECT_GT(late, 0u) << "no progress after the crash";
}

TEST(CrashIntegrationTest, PaxosLeaderFailoverUnderLoad) {
  ClusterOptions opts;
  opts.protocol = Protocol::kPaxos;
  opts.f = 1;
  opts.site_regions = sim::ThreeSites();
  opts.leader = 0;  // TW leads, then dies
  opts.seed = 78;
  opts.enable_checker = true;
  Cluster cluster(opts);
  auto w = std::make_shared<wl::MicroWorkload>(0.2, 32);
  for (size_t r = 0; r < 3; r++) {
    ClientSpec spec;
    spec.region = opts.site_regions[r];
    spec.workload = w;
    cluster.AddClients(spec, 3);
  }
  cluster.ScheduleCrash(0, 2 * kSecond, 1 * kSecond);
  cluster.Start();
  cluster.RunFor(15 * kSecond);
  auto result = cluster.Finish();
  EXPECT_TRUE(result.ok) << result.Describe();
  // A new leader took over.
  bool leader_alive = false;
  for (uint32_t p = 1; p < 3; p++) {
    if (static_cast<paxos::PaxosEngine&>(cluster.engine(p)).IsLeader()) {
      leader_alive = true;
    }
  }
  EXPECT_TRUE(leader_alive);
}

// Non-FIFO stress: protocols must tolerate message reordering.
TEST(ReorderingIntegrationTest, AtlasToleratesNonFifoLinks) {
  ClusterOptions opts;
  opts.protocol = Protocol::kAtlas;
  opts.f = 2;
  opts.site_regions = sim::ScaleOutSites(5);
  opts.seed = 90;
  opts.fifo_links = false;
  opts.jitter_frac = 1.0;
  opts.enable_checker = true;
  Cluster cluster(opts);
  auto hot = std::make_shared<wl::MicroWorkload>(0.6, 16);
  for (size_t r = 0; r < 5; r++) {
    ClientSpec spec;
    spec.region = opts.site_regions[r];
    spec.workload = hot;
    spec.max_ops = 10;
    cluster.AddClients(spec, 2);
  }
  cluster.Start();
  auto result = cluster.Finish();
  EXPECT_TRUE(result.ok) << result.Describe();
}

}  // namespace
}  // namespace harness
