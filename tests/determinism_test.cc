// Pins the exact counters of seeded simulator runs. The discrete-event simulator
// promises bit-for-bit reproducibility for a fixed seed, and the hot-path work
// (typed events, interned conflict keys, small-buffer DepSets, codec reuse) must not
// change protocol outcomes. These tests assert one seeded run's counters so any
// behavioural drift — reordered events, different conflict sets, changed fast-path
// decisions — fails loudly rather than silently shifting benchmark results.
//
// The pinned values were captured from the pre-refactor (allocating) implementation;
// the allocation-free hot path reproduces them exactly.
#include <gtest/gtest.h>

#include "src/fault/campaign.h"
#include "src/harness/cluster.h"
#include "src/sim/regions.h"
#include "src/wl/workload.h"

namespace {

struct RunCounters {
  uint64_t messages_delivered = 0;
  uint64_t fast_paths = 0;
  uint64_t slow_paths = 0;
  uint64_t total_executions = 0;
  uint64_t completed = 0;
  uint64_t digest0 = 0;
};

RunCounters SeededRun(harness::Protocol protocol, smr::IndexMode mode) {
  harness::ClusterOptions opts;
  opts.protocol = protocol;
  // f=2 with 5 sites: the fast-path condition is non-trivial (threshold 2), so these
  // runs exercise slow paths, threshold unions, and dependency pruning too.
  opts.f = 2;
  opts.index_mode = mode;
  opts.site_regions = sim::ScaleOutSites(5);
  opts.seed = 42;
  opts.enable_checker = true;

  harness::Cluster cluster(opts);
  auto workload = std::make_shared<wl::MicroWorkload>(0.10, 64);
  for (size_t region : sim::ClientSites()) {
    harness::ClientSpec cs;
    cs.region = region;
    cs.workload = workload;
    cs.max_ops = 20;
    cluster.AddClients(cs, 2);
  }
  cluster.SetMeasureWindow(0, 10 * common::kSecond);
  cluster.Start();
  cluster.RunFor(10 * common::kSecond);
  chk::CheckResult result = cluster.Finish(/*abort_on_error=*/false);
  EXPECT_TRUE(result.ok) << result.Describe();

  RunCounters c;
  c.messages_delivered = cluster.simulator().messages_delivered();
  harness::Metrics m = cluster.Snapshot();
  c.fast_paths = m.fast_paths;
  c.slow_paths = m.slow_paths;
  c.total_executions = m.total_executions;
  c.completed = cluster.total_completed();
  c.digest0 = cluster.store(0).StateDigest();
  return c;
}

// Pinned counters for seed 42 (captured from the pre-refactor implementation).
constexpr uint64_t kPinDelivered = 5284;
constexpr uint64_t kPinFast = 499;
constexpr uint64_t kPinSlow = 21;
constexpr uint64_t kPinExec = 2600;
constexpr uint64_t kPinCompleted = 520;
constexpr uint64_t kPinDigest0 = 16319399153968832379ull;
constexpr uint64_t kPinFullDelivered = 5236;
constexpr uint64_t kPinFullFast = 511;
constexpr uint64_t kPinFullSlow = 9;

// Two identical runs must agree on everything (sanity for the pins below).
TEST(DeterminismTest, SameSeedSameCounters) {
  RunCounters a = SeededRun(harness::Protocol::kAtlas, smr::IndexMode::kCompressed);
  RunCounters b = SeededRun(harness::Protocol::kAtlas, smr::IndexMode::kCompressed);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.fast_paths, b.fast_paths);
  EXPECT_EQ(a.slow_paths, b.slow_paths);
  EXPECT_EQ(a.total_executions, b.total_executions);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.digest0, b.digest0);
}

TEST(DeterminismTest, PinnedAtlasCompressed) {
  RunCounters c = SeededRun(harness::Protocol::kAtlas, smr::IndexMode::kCompressed);
  std::printf("atlas/compressed: delivered=%llu fast=%llu slow=%llu exec=%llu "
              "completed=%llu digest0=%llu\n",
              (unsigned long long)c.messages_delivered, (unsigned long long)c.fast_paths,
              (unsigned long long)c.slow_paths, (unsigned long long)c.total_executions,
              (unsigned long long)c.completed, (unsigned long long)c.digest0);
  EXPECT_EQ(c.messages_delivered, kPinDelivered);
  EXPECT_EQ(c.fast_paths, kPinFast);
  EXPECT_EQ(c.slow_paths, kPinSlow);
  EXPECT_EQ(c.total_executions, kPinExec);
  EXPECT_EQ(c.completed, kPinCompleted);
  EXPECT_EQ(c.digest0, kPinDigest0);
}

TEST(DeterminismTest, PinnedAtlasFull) {
  RunCounters c = SeededRun(harness::Protocol::kAtlas, smr::IndexMode::kFull);
  std::printf("atlas/full: delivered=%llu fast=%llu slow=%llu exec=%llu "
              "completed=%llu digest0=%llu\n",
              (unsigned long long)c.messages_delivered, (unsigned long long)c.fast_paths,
              (unsigned long long)c.slow_paths, (unsigned long long)c.total_executions,
              (unsigned long long)c.completed, (unsigned long long)c.digest0);
  EXPECT_EQ(c.messages_delivered, kPinFullDelivered);
  EXPECT_EQ(c.fast_paths, kPinFullFast);
  EXPECT_EQ(c.slow_paths, kPinFullSlow);
}

// The fault-campaign reproducibility contract: one (pack, seed, protocol,
// partitions) tuple fully determines a run. Two executions must produce
// byte-identical fault schedules (the injector's decision fold) and identical
// final state (the fold over every full replica's per-shard applied count and
// store digest), so a failing tuple printed by `fault_campaign` reruns exactly.
TEST(DeterminismTest, FaultPackSameSeedSameScheduleAndDigests) {
  for (harness::Protocol proto :
       {harness::Protocol::kAtlas, harness::Protocol::kEPaxos,
        harness::Protocol::kMencius}) {
    fault::RunSpec spec;
    spec.pack = "kill_one_replica";
    spec.seed = 7;
    spec.protocol = proto;
    fault::RunResult a = fault::RunScenario(spec);
    fault::RunResult b = fault::RunScenario(spec);
    ASSERT_TRUE(a.pass) << fault::RerunCommand(spec) << ": "
                        << (a.failures.empty() ? "" : a.failures[0]);
    EXPECT_EQ(a.schedule_digest, b.schedule_digest) << fault::RerunCommand(spec);
    EXPECT_EQ(a.store_digest, b.store_digest) << fault::RerunCommand(spec);
    EXPECT_EQ(a.completed, b.completed) << fault::RerunCommand(spec);
    EXPECT_EQ(a.delivered, b.delivered) << fault::RerunCommand(spec);
    EXPECT_EQ(a.inject.sends_seen, b.inject.sends_seen);
    EXPECT_EQ(a.inject.dropped, b.inject.dropped);
  }
  // And a different seed must draw a different schedule: equal digests above are
  // only meaningful if the digest actually varies with the tuple.
  fault::RunSpec other;
  other.pack = "kill_one_replica";
  other.seed = 8;
  fault::RunResult base = fault::RunScenario(
      fault::RunSpec{"kill_one_replica", 7, harness::Protocol::kAtlas, 1});
  fault::RunResult moved = fault::RunScenario(other);
  EXPECT_NE(base.schedule_digest, moved.schedule_digest);
  EXPECT_NE(base.store_digest, moved.store_digest);
}

}  // namespace
