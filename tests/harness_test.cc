// Topology, link-monitor (Figure 3 substrate) and workload generator tests.
#include <gtest/gtest.h>

#include <map>

#include "src/harness/linkmon.h"
#include "src/harness/topology.h"
#include "src/sim/regions.h"
#include "src/wl/workload.h"

namespace harness {
namespace {

using common::kMillisecond;

TEST(TopologyTest, ByProximitySortedByLatency) {
  auto sites = sim::ScaleOutSites(13);
  auto lat = BuildLatency(sites, 0);
  for (common::ProcessId i = 0; i < 13; i++) {
    auto peers = ByProximity(*lat, 13, i);
    ASSERT_EQ(peers.size(), 12u);
    for (size_t k = 1; k < peers.size(); k++) {
      EXPECT_LE(lat->BasePropagation(i, peers[k - 1]),
                lat->BasePropagation(i, peers[k]));
    }
  }
}

TEST(TopologyTest, ClosestSiteIsSelfWhenDeployed) {
  auto sites = sim::ScaleOutSites(13);
  for (size_t i = 0; i < sites.size(); i++) {
    EXPECT_EQ(ClosestSite(sites[i], sites), i);
  }
}

TEST(TopologyTest, OptimalLatencyShrinksWithMoreSites) {
  auto clients = sim::ClientSites();
  common::Duration prev = 0;
  for (size_t k : {3u, 5u, 7u, 9u, 11u, 13u}) {
    common::Duration opt = OptimalLatency(sim::ScaleOutSites(k), clients);
    if (prev != 0) {
      EXPECT_LT(opt, prev) << "optimal latency should improve with " << k << " sites";
    }
    prev = opt;
  }
  // Paper: optimal at 13 sites ~ 151ms; our model should be in the same ballpark.
  common::Duration opt13 = OptimalLatency(sim::ScaleOutSites(13), clients);
  EXPECT_GT(opt13, 80 * kMillisecond);
  EXPECT_LT(opt13, 260 * kMillisecond);
}

TEST(TopologyTest, FairestLeaderIsCentral) {
  auto sites = sim::ScaleOutSites(13);
  auto clients = sim::ClientSites();
  common::ProcessId leader = FairestLeader(sites, clients, 2);
  EXPECT_LT(leader, 13u);
  // The fairest leader should not be in Oceania/South America (geographic extremes).
  const char* label = sim::AllRegions()[sites[leader]].label;
  EXPECT_STRNE(label, "SY");
  EXPECT_STRNE(label, "SP");
}

TEST(LinkMonTest, DefaultCampaignBoundsFByOne) {
  LinkMonOptions opts;
  LinkMonResult r = RunLinkFailureStudy(opts);
  ASSERT_EQ(r.per_threshold.size(), 3u);
  // Larger thresholds see no more failures than smaller ones.
  EXPECT_GE(r.per_threshold[0].failed_link_seconds,
            r.per_threshold[1].failed_link_seconds);
  EXPECT_GE(r.per_threshold[1].failed_link_seconds,
            r.per_threshold[2].failed_link_seconds);
  // The paper's conclusion: slow links always covered by crashing one site.
  EXPECT_LE(r.f_bound, 1u);
  // Report renders.
  std::string report = FormatLinkMonReport(opts, r);
  EXPECT_NE(report.find("f <= "), std::string::npos);
}

TEST(LinkMonTest, Deterministic) {
  LinkMonOptions opts;
  opts.seed = 123;
  LinkMonResult a = RunLinkFailureStudy(opts);
  LinkMonResult b = RunLinkFailureStudy(opts);
  EXPECT_EQ(a.episodes.size(), b.episodes.size());
  ASSERT_EQ(a.per_threshold.size(), b.per_threshold.size());
  for (size_t i = 0; i < a.per_threshold.size(); i++) {
    EXPECT_EQ(a.per_threshold[i].failed_link_seconds,
              b.per_threshold[i].failed_link_seconds);
    EXPECT_EQ(a.per_threshold[i].max_simultaneous, b.per_threshold[i].max_simultaneous);
  }
}

TEST(WorkloadTest, MicroConflictRate) {
  common::Rng rng(3);
  wl::MicroWorkload w(0.3, 100);
  int shared = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; i++) {
    smr::Command c = w.Next(1, static_cast<uint64_t>(i) + 1, rng);
    EXPECT_EQ(c.op, smr::Op::kPut);
    EXPECT_EQ(c.value.size(), 100u);
    if (c.key == "00000000") {
      shared++;
    } else {
      EXPECT_EQ(c.key, "c1");
    }
  }
  EXPECT_NEAR(static_cast<double>(shared) / kN, 0.3, 0.02);
}

TEST(WorkloadTest, MicroZeroAndFullConflicts) {
  common::Rng rng(4);
  wl::MicroWorkload none(0.0, 8);
  wl::MicroWorkload all(1.0, 8);
  for (int i = 0; i < 100; i++) {
    EXPECT_NE(none.Next(2, static_cast<uint64_t>(i) + 1, rng).key, "00000000");
    EXPECT_EQ(all.Next(2, static_cast<uint64_t>(i) + 1, rng).key, "00000000");
  }
}

TEST(WorkloadTest, YcsbMixAndSkew) {
  common::Rng rng(5);
  wl::YcsbWorkload w(1000000, 0.8, 100);
  int reads = 0;
  std::map<std::string, int> counts;
  const int kN = 20000;
  for (int i = 0; i < kN; i++) {
    smr::Command c = w.Next(1, static_cast<uint64_t>(i) + 1, rng);
    if (c.is_read()) {
      reads++;
    }
    counts[c.key]++;
  }
  EXPECT_NEAR(static_cast<double>(reads) / kN, 0.8, 0.02);
  // Hot key dominance (paper: first 12 records ~20% of accesses).
  int top = 0;
  for (const auto& [k, v] : counts) {
    top = std::max(top, v);
  }
  EXPECT_GT(top, kN / 100);  // hottest record way above uniform (1/1e6)
}

TEST(WorkloadTest, FixedKeyWorkloads) {
  common::Rng rng(6);
  wl::FixedKeyWorkload shared(true, 16);
  wl::FixedKeyWorkload priv(false, 16);
  EXPECT_EQ(shared.Next(7, 1, rng).key, "00000000");
  EXPECT_EQ(priv.Next(7, 1, rng).key, "c7");
}

}  // namespace
}  // namespace harness
