// Unit tests for the seeded fault injector (src/fault/injector.h) and for the
// simulator's per-link drop accounting it feeds into. The contract under test:
//   - (seed, salt, profile) fully determines the injection schedule — two injectors
//     fed the same send sequence produce identical schedule digests and counters;
//   - Disarm() makes message sends pass through untouched (no rng draws, no digest
//     movement), which the scenario packs rely on for fault-free drain windows;
//   - timer skew stretches delays by at most timer_skew_frac and never shrinks them;
//   - every drop, whatever its cause, is attributed both per (from, to) link and to
//     exactly one DropStats reason, with the totals agreeing.
#include <gtest/gtest.h>

#include "src/common/types.h"
#include "src/fault/injector.h"
#include "src/harness/cluster.h"
#include "src/msg/message.h"
#include "src/sim/regions.h"
#include "src/sim/simulator.h"
#include "src/wl/workload.h"

namespace {

// A synthetic but varied send sequence: different links and message bodies so the
// digest folds over non-constant inputs.
msg::Message SampleMessage(uint64_t i) {
  if (i % 2 == 0) {
    msg::MCollectAck a;
    a.dot = common::Dot{static_cast<common::ProcessId>(i % 3), i + 1};
    a.deps.Insert(common::Dot{0, i + 2});
    return msg::Message(a);
  }
  msg::MnCommit c;
  c.slot = i;
  c.cmd.op = smr::Op::kPut;
  c.cmd.key = "k" + std::to_string(i % 7);
  c.cmd.value = "v";
  c.cmd.client = 1;
  c.cmd.seq = i;
  return msg::Message(c);
}

fault::FaultProfile MixedProfile() {
  fault::FaultProfile p;
  p.drop = 0.2;
  p.duplicate = 0.2;
  p.dup_delay_max = 50 * common::kMillisecond;
  p.delay = 0.2;
  p.delay_min = 1 * common::kMillisecond;
  p.delay_max = 20 * common::kMillisecond;
  p.truncate = 0.1;
  return p;
}

struct Replay {
  uint64_t digest = 0;
  fault::Injector::Counters counters;
};

Replay ReplaySends(fault::Injector& inj, uint64_t n) {
  for (uint64_t i = 0; i < n; i++) {
    msg::Message m = SampleMessage(i);
    sim::FaultPlan plan;
    inj.OnSend(static_cast<common::ProcessId>(i % 3),
               static_cast<common::ProcessId>((i + 1) % 3), m, plan);
  }
  return Replay{inj.schedule_digest(), inj.counters()};
}

TEST(FaultInjectorTest, SameSeedSameScheduleDigestAndCounters) {
  fault::Injector a(/*seed=*/7, /*salt=*/0xabc, MixedProfile());
  fault::Injector b(/*seed=*/7, /*salt=*/0xabc, MixedProfile());
  Replay ra = ReplaySends(a, 500);
  Replay rb = ReplaySends(b, 500);
  EXPECT_EQ(ra.digest, rb.digest);
  EXPECT_EQ(ra.counters.sends_seen, rb.counters.sends_seen);
  EXPECT_EQ(ra.counters.dropped, rb.counters.dropped);
  EXPECT_EQ(ra.counters.duplicated, rb.counters.duplicated);
  EXPECT_EQ(ra.counters.delayed, rb.counters.delayed);
  EXPECT_EQ(ra.counters.truncated, rb.counters.truncated);
  EXPECT_EQ(ra.counters.corrupted, rb.counters.corrupted);
  // The mixed profile at 500 sends must have actually injected something, or the
  // equalities above are vacuous.
  EXPECT_GT(ra.counters.dropped, 0u);
  EXPECT_GT(ra.counters.duplicated + ra.counters.delayed, 0u);
}

TEST(FaultInjectorTest, DifferentSeedOrSaltDivergesSchedule) {
  fault::Injector base(7, 0xabc, MixedProfile());
  fault::Injector other_seed(8, 0xabc, MixedProfile());
  fault::Injector other_salt(7, 0xabd, MixedProfile());
  uint64_t d0 = ReplaySends(base, 500).digest;
  EXPECT_NE(d0, ReplaySends(other_seed, 500).digest);
  EXPECT_NE(d0, ReplaySends(other_salt, 500).digest);
}

TEST(FaultInjectorTest, DisarmedSendsPassThroughUntouched) {
  fault::FaultProfile p;
  p.drop = 1.0;  // would drop every send if armed
  fault::Injector inj(1, 2, p);
  inj.Disarm();
  uint64_t digest_before = inj.schedule_digest();
  for (uint64_t i = 0; i < 100; i++) {
    msg::Message m = SampleMessage(i);
    sim::FaultPlan plan;
    inj.OnSend(0, 1, m, plan);
    EXPECT_FALSE(plan.drop);
    EXPECT_EQ(plan.duplicates, 0u);
    EXPECT_EQ(plan.extra_delay, 0);
  }
  // Sends are still observed (the counter is bookkeeping, not a fault), but no
  // decision is folded: re-arming later must continue the same rng stream as if
  // the disarmed window never drew.
  EXPECT_EQ(inj.counters().sends_seen, 100u);
  EXPECT_EQ(inj.counters().dropped, 0u);
  EXPECT_EQ(inj.schedule_digest(), digest_before);

  inj.Arm();
  msg::Message m = SampleMessage(0);
  sim::FaultPlan plan;
  inj.OnSend(0, 1, m, plan);
  EXPECT_TRUE(plan.drop);  // drop = 1.0 applies again once armed
}

TEST(FaultInjectorTest, TimerSkewBoundedAndOptional) {
  fault::FaultProfile p;
  p.timer_skew = 1.0;
  p.timer_skew_frac = 0.5;
  fault::Injector inj(3, 4, p);
  const common::Duration base = 100 * common::kMillisecond;
  for (int i = 0; i < 50; i++) {
    common::Duration skewed = inj.OnTimer(0, base);
    EXPECT_GE(skewed, base);
    EXPECT_LE(skewed, base + base / 2);
  }
  EXPECT_EQ(inj.counters().timers_skewed, 50u);

  // Zero-probability profile: the exact delay comes back and nothing is counted.
  fault::Injector off(3, 4, fault::FaultProfile{});
  EXPECT_EQ(off.OnTimer(0, base), base);
  EXPECT_EQ(off.counters().timers_skewed, 0u);
}

// --- Simulator-side drop attribution (per-link accounting) -------------------

harness::ClusterOptions SmallCluster() {
  harness::ClusterOptions opts;
  opts.protocol = harness::Protocol::kAtlas;
  opts.f = 1;
  opts.site_regions = sim::ThreeSites();
  opts.seed = 11;
  opts.enable_checker = false;  // liveness is not under test here
  return opts;
}

void AddOneClient(harness::Cluster& cluster, size_t region) {
  harness::ClientSpec cs;
  cs.region = region;
  cs.workload = std::make_shared<wl::MicroWorkload>(0.3, 16);
  cs.max_ops = 50;
  cs.retry_timeout = 300 * common::kMillisecond;
  cluster.AddClients(cs, 1);
}

TEST(FaultInjectorTest, LinkDownDropsAttributedPerLink) {
  harness::ClusterOptions opts = SmallCluster();
  harness::Cluster cluster(opts);
  AddOneClient(cluster, opts.site_regions[0]);
  cluster.Start();

  sim::Simulator& sim = cluster.simulator();
  sim.SetLinkDown(0, 1, true);  // directed: 0->1 black-holed, 1->0 still up
  cluster.RunFor(3 * common::kSecond);

  const sim::Simulator::DropStats& stats = sim.drop_stats();
  EXPECT_GT(sim.messages_dropped(0, 1), 0u);
  EXPECT_EQ(sim.messages_dropped(1, 0), 0u);
  EXPECT_EQ(sim.messages_dropped(0, 2), 0u);
  // The only drop cause in this run is the downed link, and every drop lands on
  // exactly that link.
  EXPECT_EQ(stats.link_down, sim.messages_dropped(0, 1));
  uint64_t per_link_sum = 0;
  for (common::ProcessId a = 0; a < cluster.n(); a++) {
    for (common::ProcessId b = 0; b < cluster.n(); b++) {
      per_link_sum += sim.messages_dropped(a, b);
    }
  }
  EXPECT_EQ(per_link_sum, sim.messages_dropped());
  EXPECT_EQ(stats.link_down + stats.src_crashed + stats.dest_crashed +
                stats.stale_incarnation + stats.injected + stats.corrupted,
            sim.messages_dropped());
}

TEST(FaultInjectorTest, InjectedDropsAttributedPerLink) {
  harness::ClusterOptions opts = SmallCluster();
  harness::Cluster cluster(opts);
  AddOneClient(cluster, opts.site_regions[0]);

  fault::FaultProfile p;
  p.drop = 1.0;  // lose every inter-process message
  fault::Injector inj(5, 6, p);
  sim::Simulator& sim = cluster.simulator();
  sim.SetFaultHook(&inj);

  cluster.Start();
  cluster.RunFor(2 * common::kSecond);
  sim.SetFaultHook(nullptr);

  const sim::Simulator::DropStats& stats = sim.drop_stats();
  EXPECT_GT(stats.injected, 0u);
  // One simulator-side attribution per injector-side drop decision.
  EXPECT_EQ(stats.injected, inj.counters().dropped);
  uint64_t per_link_sum = 0;
  for (common::ProcessId a = 0; a < cluster.n(); a++) {
    for (common::ProcessId b = 0; b < cluster.n(); b++) {
      per_link_sum += sim.messages_dropped(a, b);
    }
  }
  EXPECT_EQ(per_link_sum, sim.messages_dropped());
}

}  // namespace
