// The checker must accept valid histories and reject each class of violation.
#include "src/chk/checker.h"

#include <gtest/gtest.h>

namespace chk {
namespace {

using common::ProcessId;

smr::Command W(uint64_t client, uint64_t seq, const std::string& key) {
  return smr::MakePut(client, seq, key, "v");
}
smr::Command R(uint64_t client, uint64_t seq, const std::string& key) {
  return smr::MakeGet(client, seq, key);
}

TEST(CheckerTest, AcceptsConsistentHistory) {
  HistoryChecker chk(3);
  auto w1 = W(1, 1, "a");
  auto w2 = W(2, 1, "a");
  chk.OnSubmit(w1, 0);
  chk.OnSubmit(w2, 10);
  for (ProcessId p = 0; p < 3; p++) {
    chk.OnExecute(p, w1, 100 + p);
    chk.OnExecute(p, w2, 200 + p);
  }
  EXPECT_TRUE(chk.Validate().ok);
}

TEST(CheckerTest, RejectsWriteOrderDivergence) {
  HistoryChecker chk(2);
  auto w1 = W(1, 1, "a");
  auto w2 = W(2, 1, "a");
  chk.OnSubmit(w1, 0);
  chk.OnSubmit(w2, 0);
  chk.OnExecute(0, w1, 100);
  chk.OnExecute(0, w2, 101);
  chk.OnExecute(1, w2, 100);
  chk.OnExecute(1, w1, 101);
  EXPECT_FALSE(chk.Validate().ok);
}

TEST(CheckerTest, AcceptsReadReorderingBetweenWrites) {
  // Two reads between the same writes may execute in either relative order.
  HistoryChecker chk(2);
  auto w = W(1, 1, "a");
  auto r1 = R(2, 1, "a");
  auto r2 = R(3, 1, "a");
  for (const auto& c : {w, r1, r2}) {
    chk.OnSubmit(c, 0);
  }
  chk.OnExecute(0, w, 10);
  chk.OnExecute(0, r1, 11);
  chk.OnExecute(0, r2, 12);
  chk.OnExecute(1, w, 10);
  chk.OnExecute(1, r2, 11);
  chk.OnExecute(1, r1, 12);
  EXPECT_TRUE(chk.Validate().ok);
}

TEST(CheckerTest, RejectsReadWriteReordering) {
  HistoryChecker chk(2);
  auto w1 = W(1, 1, "a");
  auto w2 = W(2, 1, "a");
  auto r = R(3, 1, "a");
  for (const auto& c : {w1, w2, r}) {
    chk.OnSubmit(c, 0);
  }
  // p0: w1, r, w2 ; p1: w1, w2, r — r observes different states.
  chk.OnExecute(0, w1, 10);
  chk.OnExecute(0, r, 11);
  chk.OnExecute(0, w2, 12);
  chk.OnExecute(1, w1, 10);
  chk.OnExecute(1, w2, 11);
  chk.OnExecute(1, r, 12);
  EXPECT_FALSE(chk.Validate().ok);
}

TEST(CheckerTest, RejectsUnsubmittedExecution) {
  HistoryChecker chk(1);
  chk.OnExecute(0, W(1, 1, "a"), 10);
  EXPECT_FALSE(chk.Validate().ok);
}

TEST(CheckerTest, RejectsDuplicateExecution) {
  HistoryChecker chk(1);
  auto w = W(1, 1, "a");
  chk.OnSubmit(w, 0);
  chk.OnExecute(0, w, 10);
  chk.OnExecute(0, w, 11);
  EXPECT_FALSE(chk.Validate().ok);
}

TEST(CheckerTest, RejectsRealTimeViolation) {
  HistoryChecker chk(2);
  auto w1 = W(1, 1, "a");
  auto w2 = W(2, 1, "a");
  chk.OnSubmit(w1, 0);
  chk.OnExecute(0, w1, 50);   // w1 executed at t=50
  chk.OnSubmit(w2, 100);      // w2 submitted after w1 executed
  chk.OnExecute(0, w2, 150);
  // Process 1 executes them in the wrong order.
  chk.OnExecute(1, w2, 140);
  chk.OnExecute(1, w1, 160);
  EXPECT_FALSE(chk.Validate().ok);
}

TEST(CheckerTest, RejectsDigestDivergence) {
  HistoryChecker chk(2);
  chk.OnStateDigest(0, 111, 10);
  chk.OnStateDigest(1, 222, 10);
  EXPECT_FALSE(chk.Validate().ok);
}

TEST(CheckerTest, AcceptsDigestsAtDifferentProgress) {
  HistoryChecker chk(2);
  chk.OnStateDigest(0, 111, 10);
  chk.OnStateDigest(1, 222, 9);  // fewer executions: digests may differ
  EXPECT_TRUE(chk.Validate().ok);
}

TEST(CheckerTest, NoOpsIgnored) {
  HistoryChecker chk(1);
  chk.OnExecute(0, smr::MakeNoOp(), 10);
  EXPECT_TRUE(chk.Validate().ok);
}

TEST(CheckerTest, NfrModeIgnoresRemoteReadExecutions) {
  // Under NFR, a read's execution at a replica other than its home carries no
  // ordering obligation; the same history must fail in strict mode.
  for (bool nfr : {true, false}) {
    HistoryChecker chk(2);
    chk.SetNfrMode(nfr);
    auto w1 = W(1, 1, "a");
    auto w2 = W(2, 1, "a");
    auto r = R(3, 1, "a");
    chk.OnSubmit(w1, 0, /*home=*/0);
    chk.OnSubmit(w2, 0, /*home=*/0);
    chk.OnSubmit(r, 0, /*home=*/0);
    // Home replica 0: w1, r, w2 — the externally visible order.
    chk.OnExecute(0, w1, 10);
    chk.OnExecute(0, r, 11);
    chk.OnExecute(0, w2, 12);
    // Replica 1 slots the read elsewhere (legal only under NFR).
    chk.OnExecute(1, w1, 10);
    chk.OnExecute(1, w2, 11);
    chk.OnExecute(1, r, 12);
    EXPECT_EQ(chk.Validate().ok, nfr);
  }
}

TEST(CheckerTest, NfrModeStillChecksHomeReads) {
  // Even under NFR, the read's home-site execution must respect write order.
  HistoryChecker chk(2);
  chk.SetNfrMode(true);
  auto w1 = W(1, 1, "a");
  auto w2 = W(2, 1, "a");
  auto r = R(3, 1, "a");
  chk.OnSubmit(w1, 0, 0);
  chk.OnSubmit(w2, 0, 0);
  chk.OnSubmit(r, 0, /*home=*/1);
  chk.OnExecute(0, w1, 10);
  chk.OnExecute(0, w2, 11);
  // Home replica 1 diverges on the WRITES (not allowed even in NFR mode).
  chk.OnExecute(1, w2, 10);
  chk.OnExecute(1, r, 11);
  chk.OnExecute(1, w1, 12);
  EXPECT_FALSE(chk.Validate().ok);
}

TEST(CheckerTest, PrefixExecutionAccepted) {
  // A crashed replica executed only a prefix: fine as long as orders agree.
  HistoryChecker chk(2);
  auto w1 = W(1, 1, "a");
  auto w2 = W(2, 1, "a");
  chk.OnSubmit(w1, 0);
  chk.OnSubmit(w2, 0);
  chk.OnExecute(0, w1, 10);
  chk.OnExecute(0, w2, 11);
  chk.OnExecute(1, w1, 10);  // replica 1 crashed before w2
  EXPECT_TRUE(chk.Validate().ok);
}

}  // namespace
}  // namespace chk
