// Partitioned replicas: Partitioner routing, ShardedEngine equivalence and
// multi-shard correctness.
//
//  * routing is a pure deterministic function of the key bytes;
//  * a P=1 ShardedEngine produces exactly the unsharded engine's counters on a
//    seeded run (the wrapper adds no protocol behaviour);
//  * randomized multi-shard cluster runs (with and without submission batching)
//    pass the linearizability checker, and batching strictly reduces message count.
#include "src/smr/sharded_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/core/atlas.h"
#include "src/harness/cluster.h"
#include "src/sim/regions.h"
#include "src/sim/simulator.h"
#include "src/smr/partitioner.h"
#include "src/wl/workload.h"

namespace {

using common::ProcessId;

TEST(PartitionerTest, RoutingIsDeterministicAndComplete) {
  smr::Partitioner a(4);
  smr::Partitioner b(4);
  std::set<uint32_t> seen;
  for (int i = 0; i < 256; i++) {
    std::string key = "key" + std::to_string(i);
    uint32_t s = a.ShardOf(key);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, b.ShardOf(key)) << "routing must not depend on the instance";
    EXPECT_EQ(s, a.ShardOf(key)) << "routing must be stable across calls";
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 4u) << "256 keys should cover all 4 shards";

  // P=1 sends everything to shard 0.
  smr::Partitioner one(1);
  for (int i = 0; i < 16; i++) {
    EXPECT_EQ(one.ShardOf("key" + std::to_string(i)), 0u);
  }
}

TEST(PartitionerTest, SingleShardCommands) {
  smr::Partitioner part(8);
  uint32_t shard = 77;
  // Single-key commands always route.
  smr::Command put = smr::MakePut(1, 1, "some-key", "v");
  ASSERT_TRUE(part.SingleShard(put, &shard));
  EXPECT_EQ(shard, part.ShardOf("some-key"));

  // noOps conflict with every partition: not routable.
  EXPECT_FALSE(part.SingleShard(smr::MakeNoOp(), &shard));

  // Multi-key commands route iff all keys are co-located. Find two keys in the same
  // shard and one elsewhere.
  std::string base = "k0";
  std::string same;
  std::string other;
  for (int i = 1; (same.empty() || other.empty()) && i < 10000; i++) {
    std::string k = "k" + std::to_string(i);
    if (part.ShardOf(k) == part.ShardOf(base)) {
      if (same.empty()) {
        same = k;
      }
    } else if (other.empty()) {
      other = k;
    }
  }
  ASSERT_FALSE(same.empty());
  ASSERT_FALSE(other.empty());
  smr::Command colocated = smr::MakePut(1, 2, base, "v");
  colocated.op = smr::Op::kMPut;
  colocated.more_keys.push_back(same);
  ASSERT_TRUE(part.SingleShard(colocated, &shard));
  EXPECT_EQ(shard, part.ShardOf(base));

  smr::Command split = colocated;
  split.more_keys.push_back(other);
  EXPECT_FALSE(part.SingleShard(split, &shard));
}

// Drives a 3-site Atlas deployment and returns its counters. `partitions == 0`
// means "no wrapper": the engines run bare, exactly as the seeded harness builds
// them. Otherwise each site runs a ShardedEngine with that many partitions (no
// batching), which for P=1 must be behaviour-identical to bare engines.
struct Counters {
  uint64_t delivered = 0;
  uint64_t bytes = 0;
  std::vector<smr::EngineStats> per_site;
};

Counters RunAtlasTriad(uint32_t partitions) {
  sim::Simulator::Options opts;
  opts.seed = 99;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(10 * common::kMillisecond,
                                                           common::kMillisecond),
                     opts);
  auto make_atlas = [] {
    atlas::Config cfg;
    cfg.n = 3;
    cfg.f = 1;
    return std::make_unique<atlas::AtlasEngine>(cfg);
  };
  std::vector<std::unique_ptr<smr::Engine>> engines;
  for (int i = 0; i < 3; i++) {
    if (partitions == 0) {
      engines.push_back(make_atlas());
    } else {
      smr::ShardedOptions so;
      so.partitions = partitions;
      engines.push_back(std::make_unique<smr::ShardedEngine>(
          so, [&make_atlas](uint32_t) { return make_atlas(); }));
    }
  }
  for (auto& e : engines) {
    sim.AddEngine(e.get());
  }
  sim.Start();

  // Seeded submissions: a mix of per-client and shared keys so collect/commit,
  // fast paths and dependency chains are all exercised.
  common::Rng rng(4242);
  for (uint64_t i = 1; i <= 150; i++) {
    ProcessId site = static_cast<ProcessId>(i % 3);
    std::string key = rng.Chance(0.2) ? "shared" : "k" + std::to_string(i % 10);
    sim.Submit(site, smr::MakePut(100 + site, i, key, "value"));
    if (i % 5 == 0) {
      sim.RunFor(5 * common::kMillisecond);
    }
  }
  sim.RunUntilIdle();

  Counters c;
  c.delivered = sim.messages_delivered();
  c.bytes = sim.bytes_sent();
  for (auto& e : engines) {
    c.per_site.push_back(e->stats());
  }
  return c;
}

TEST(ShardedEngineTest, P1MatchesUnshardedEngineCounters) {
  Counters bare = RunAtlasTriad(0);
  Counters wrapped = RunAtlasTriad(1);
  EXPECT_EQ(bare.delivered, wrapped.delivered);
  EXPECT_EQ(bare.bytes, wrapped.bytes);
  ASSERT_EQ(bare.per_site.size(), wrapped.per_site.size());
  for (size_t i = 0; i < bare.per_site.size(); i++) {
    const smr::EngineStats& a = bare.per_site[i];
    const smr::EngineStats& b = wrapped.per_site[i];
    EXPECT_EQ(a.submitted, b.submitted) << "site " << i;
    EXPECT_EQ(a.committed, b.committed) << "site " << i;
    EXPECT_EQ(a.executed, b.executed) << "site " << i;
    EXPECT_EQ(a.fast_paths, b.fast_paths) << "site " << i;
    EXPECT_EQ(a.slow_paths, b.slow_paths) << "site " << i;
    EXPECT_EQ(a.messages_sent, b.messages_sent) << "site " << i;
  }
  // Sanity: the run did real work.
  EXPECT_GT(bare.per_site[0].committed, 0u);
}

// A multi-shard run must still be a correct SMR: all client commands complete and
// the per-partition histories satisfy the §2 specification (checker-validated),
// including per-(site, shard) replica convergence.
chk::CheckResult RunShardedCluster(uint32_t partitions, common::Duration batch_window,
                                   uint64_t seed, harness::Metrics* out_metrics,
                                   uint64_t* out_completed,
                                   uint64_t* out_delivered) {
  harness::ClusterOptions opts;
  opts.protocol = harness::Protocol::kAtlas;
  opts.f = 1;
  opts.site_regions = sim::ScaleOutSites(5);
  opts.seed = seed;
  opts.enable_checker = true;
  opts.partitions = partitions;
  opts.batch_window = batch_window;

  harness::Cluster cluster(opts);
  auto workload =
      std::make_shared<wl::PartitionedMicroWorkload>(partitions, 0.10, 64);
  for (size_t region : sim::ClientSites()) {
    harness::ClientSpec cs;
    cs.region = region;
    cs.workload = workload;
    cs.max_ops = 25;
    cluster.AddClients(cs, 2);
  }
  cluster.SetMeasureWindow(0, 20 * common::kSecond);
  cluster.Start();
  cluster.RunFor(20 * common::kSecond);
  chk::CheckResult result = cluster.Finish(/*abort_on_error=*/false);
  if (out_metrics != nullptr) {
    *out_metrics = cluster.Snapshot();
  }
  if (out_completed != nullptr) {
    *out_completed = cluster.total_completed();
  }
  if (out_delivered != nullptr) {
    *out_delivered = cluster.simulator().messages_delivered();
  }
  return result;
}

TEST(ShardedEngineTest, MultiShardRunPassesChecker) {
  for (uint64_t seed : {7u, 1234u, 777777u}) {
    harness::Metrics m;
    uint64_t completed = 0;
    chk::CheckResult result =
        RunShardedCluster(4, /*batch_window=*/0, seed, &m, &completed, nullptr);
    EXPECT_TRUE(result.ok) << "seed " << seed << ": " << result.Describe();
    EXPECT_EQ(completed, 13u * 2u * 25u) << "seed " << seed;
    // Work must actually spread across partitions.
    ASSERT_EQ(m.per_shard.size(), 4u);
    for (uint32_t s = 0; s < 4; s++) {
      EXPECT_GT(m.per_shard[s].executed, 0u) << "shard " << s << " idle, seed " << seed;
    }
  }
}

TEST(ShardedEngineTest, BatchingPassesCheckerAndCutsMessages) {
  uint64_t completed_plain = 0;
  uint64_t delivered_plain = 0;
  chk::CheckResult plain = RunShardedCluster(4, 0, 31337, nullptr, &completed_plain,
                                             &delivered_plain);
  EXPECT_TRUE(plain.ok) << plain.Describe();

  uint64_t completed_batched = 0;
  uint64_t delivered_batched = 0;
  chk::CheckResult batched =
      RunShardedCluster(4, 20 * common::kMillisecond, 31337, nullptr,
                        &completed_batched, &delivered_batched);
  EXPECT_TRUE(batched.ok) << batched.Describe();

  EXPECT_EQ(completed_plain, completed_batched);
  EXPECT_LT(delivered_batched, delivered_plain)
      << "coalesced submission must reduce protocol message count";
}

}  // namespace
