// Durability tier (src/dur) + restart-from-disk pins.
//
// Layer by layer: the DotFrontier dedup set, the CRC-framed segmented commit
// log (replay determinism, torn-tail truncation, corrupt-frame poisoning),
// snapshot round-trips through the redesigned smr::StateMachine seam for BOTH
// backends (hash-map KvStore and ordered-map OrderedKvs), the per-shard
// ShardDurability facade (snapshot + log-tail recovery, duplicate admission),
// and finally whole-replica pins: a Deployment rebuilt over the same data_dir
// recovers byte-equal store digests, and a simulated cluster that crashes a
// site and restarts it from disk converges to the fault-free control digests
// for all three leaderless protocols.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/dur/commit_log.h"
#include "src/dur/frontier.h"
#include "src/dur/shard_durability.h"
#include "src/kvs/kvs.h"
#include "src/kvs/ordered_kvs.h"
#include "src/sim/simulator.h"
#include "src/smr/command.h"
#include "src/smr/deployment.h"

namespace dur {
namespace {

namespace fs = std::filesystem;

// Fresh per-test scratch directory, removed on destruction.
struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("atlas_dur_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

common::Dot D(common::ProcessId p, uint64_t seq) { return common::Dot{p, seq}; }

// ---------------------------------------------------------------------------
// DotFrontier

TEST(DotFrontierTest, InsertCoversAndFiltersDuplicates) {
  DotFrontier f;
  EXPECT_TRUE(f.Empty());
  EXPECT_TRUE(f.Insert(D(0, 1)));
  EXPECT_FALSE(f.Insert(D(0, 1)));
  EXPECT_TRUE(f.Covers(D(0, 1)));
  EXPECT_FALSE(f.Covers(D(0, 2)));
  EXPECT_FALSE(f.Covers(D(1, 1)));
}

TEST(DotFrontierTest, ContiguousExtrasCompactIntoFloor) {
  DotFrontier f;
  // Out of order: 3, 1, 2 — once 1..3 are contiguous the floor absorbs them.
  EXPECT_TRUE(f.Insert(D(2, 3)));
  EXPECT_EQ(f.floor(2), 0u);
  EXPECT_TRUE(f.Insert(D(2, 1)));
  EXPECT_TRUE(f.Insert(D(2, 2)));
  EXPECT_EQ(f.floor(2), 3u);
  EXPECT_EQ(f.extras(), 0u);
  for (uint64_t s = 1; s <= 3; s++) {
    EXPECT_TRUE(f.Covers(D(2, s)));
  }
}

TEST(DotFrontierTest, StridedDotsStayInExtras) {
  // Mencius-style strides (proc p owns slots p, p+n, p+2n, ...): gaps never
  // close, so the overlay must hold them without floor movement.
  DotFrontier f;
  for (uint64_t s = 2; s <= 20; s += 3) {
    EXPECT_TRUE(f.Insert(D(1, s)));
  }
  EXPECT_EQ(f.floor(1), 0u);
  EXPECT_TRUE(f.Covers(D(1, 14)));
  EXPECT_FALSE(f.Covers(D(1, 15)));
}

TEST(DotFrontierTest, EncodeDecodeRoundTrip) {
  DotFrontier f;
  f.Insert(D(0, 1));
  f.Insert(D(0, 2));
  f.Insert(D(3, 7));  // extra above floor 0
  codec::Writer w;
  f.EncodeTo(w);

  DotFrontier g;
  codec::Reader r(w.buffer().data(), w.size());
  ASSERT_TRUE(g.DecodeFrom(r));
  EXPECT_EQ(g.floor(0), 2u);
  EXPECT_TRUE(g.Covers(D(3, 7)));
  EXPECT_FALSE(g.Covers(D(3, 6)));

  DotFrontier bad;
  const uint8_t garbage[] = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  codec::Reader br(garbage, sizeof(garbage));
  EXPECT_FALSE(bad.DecodeFrom(br));
}

// ---------------------------------------------------------------------------
// CommitLog

std::vector<std::pair<common::Dot, smr::Command>> ScriptedRecords(size_t n) {
  std::vector<std::pair<common::Dot, smr::Command>> recs;
  for (size_t i = 1; i <= n; i++) {
    recs.emplace_back(D(i % 3, (i / 3) + 1),
                      smr::MakePut(/*client=*/7, /*seq=*/i,
                                   "k" + std::to_string(i % 11),
                                   "value-" + std::to_string(i)));
  }
  return recs;
}

size_t ReplayAll(CommitLog& log,
                 std::vector<std::pair<common::Dot, smr::Command>>& out) {
  out.clear();
  return log.Replay([&](const common::Dot& d, const smr::Command& c) {
    out.emplace_back(d, c);
  });
}

TEST(CommitLogTest, ReplayIsDeterministicAcrossReopenAndSegmentRolls) {
  TempDir dir("log_reopen");
  CommitLog::Options opts;
  opts.fsync_mode = FsyncMode::kNone;
  opts.segment_bytes = 256;  // force multi-segment rolls with tiny records
  auto recs = ScriptedRecords(64);
  {
    CommitLog log(dir.path, opts);
    ASSERT_TRUE(log.Open());
    for (auto& [d, c] : recs) {
      log.Append(d, c);
    }
    std::vector<std::pair<common::Dot, smr::Command>> got;
    ASSERT_EQ(ReplayAll(log, got), recs.size());
    EXPECT_GT(log.position().segment, 1u);  // the roll actually happened
  }
  // A fresh incarnation over the same directory replays the same sequence.
  CommitLog log(dir.path, opts);
  ASSERT_TRUE(log.Open());
  std::vector<std::pair<common::Dot, smr::Command>> got;
  ASSERT_EQ(ReplayAll(log, got), recs.size());
  for (size_t i = 0; i < recs.size(); i++) {
    EXPECT_EQ(got[i].first, recs[i].first) << "dot mismatch at " << i;
    EXPECT_EQ(got[i].second.key, recs[i].second.key);
    EXPECT_EQ(got[i].second.seq, recs[i].second.seq);
  }
}

// Kill-9 mid-write leaves a torn frame at the tail; Open() must truncate it
// and resume appends at the last clean boundary.
TEST(CommitLogTest, TornTailIsTruncatedOnReopen) {
  TempDir dir("log_torn");
  CommitLog::Options opts;
  opts.fsync_mode = FsyncMode::kNone;
  auto recs = ScriptedRecords(8);
  std::string seg_path;
  {
    CommitLog log(dir.path, opts);
    ASSERT_TRUE(log.Open());
    for (auto& [d, c] : recs) {
      log.Append(d, c);
    }
    log.Sync();
    seg_path = dir.path + "/log-00000001.seg";
  }
  // Tear the last record: chop a few bytes off the file tail.
  uint64_t full = fs::file_size(seg_path);
  fs::resize_file(seg_path, full - 5);

  CommitLog log(dir.path, opts);
  ASSERT_TRUE(log.Open());
  std::vector<std::pair<common::Dot, smr::Command>> got;
  EXPECT_EQ(ReplayAll(log, got), recs.size() - 1);

  // Appends resume cleanly after the truncated tail.
  log.Append(D(2, 99), smr::MakePut(7, 99, "post-tear", "v"));
  EXPECT_EQ(ReplayAll(log, got), recs.size());
  EXPECT_EQ(got.back().second.key, "post-tear");
}

// A corrupt byte mid-log (bit rot, not a torn tail) fails the frame CRC and
// poisons the rest of the log: replay stops rather than applying garbage.
TEST(CommitLogTest, CorruptFrameStopsReplayAtCrcBoundary) {
  TempDir dir("log_corrupt");
  CommitLog::Options opts;
  opts.fsync_mode = FsyncMode::kNone;
  auto recs = ScriptedRecords(8);
  std::string seg_path = dir.path + "/log-00000001.seg";
  {
    CommitLog log(dir.path, opts);
    ASSERT_TRUE(log.Open());
    for (auto& [d, c] : recs) {
      log.Append(d, c);
    }
    log.Sync();
  }
  // Flip one payload byte somewhere inside the third record's frame.
  std::fstream f(seg_path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  uint64_t size = fs::file_size(seg_path);
  uint64_t target = (size / recs.size()) * 2 + 10;  // inside record ~3
  f.seekg(static_cast<std::streamoff>(target));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5a);
  f.seekp(static_cast<std::streamoff>(target));
  f.write(&b, 1);
  f.close();

  CommitLog log(dir.path, opts);
  ASSERT_TRUE(log.Open());
  std::vector<std::pair<common::Dot, smr::Command>> got;
  size_t delivered = ReplayAll(log, got);
  EXPECT_LT(delivered, recs.size());
  for (size_t i = 0; i < delivered; i++) {
    EXPECT_EQ(got[i].second.seq, recs[i].second.seq);  // clean prefix only
  }
}

// ---------------------------------------------------------------------------
// Snapshot round-trips through the StateMachine seam, both backends.

template <class Store>
void FillStore(Store& s) {
  for (int i = 0; i < 50; i++) {
    s.Apply(smr::MakePut(1, i + 1, "key-" + std::to_string(i),
                         "val-" + std::to_string(i * 17)));
  }
  s.Apply(smr::MakeRmw(1, 51, "key-7", "-appended"));
}

template <class Store>
void ExpectSnapshotRoundTrip() {
  Store original;
  FillStore(original);
  codec::Writer w;
  original.SnapshotTo(w);

  Store restored;
  codec::Reader r(w.buffer().data(), w.size());
  ASSERT_TRUE(restored.RestoreFrom(r));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.StateDigest(), original.StateDigest());
  EXPECT_EQ(restored.Apply(smr::MakeGet(1, 100, "key-7")),
            original.Apply(smr::MakeGet(1, 100, "key-7")));

  // Malformed input must report failure, not crash.
  Store trash;
  const uint8_t garbage[] = {0x9c, 0xff, 0x01};
  codec::Reader bad(garbage, sizeof(garbage));
  EXPECT_FALSE(trash.RestoreFrom(bad));
}

TEST(SnapshotTest, KvStoreRoundTripPreservesDigest) {
  ExpectSnapshotRoundTrip<kvs::KvStore>();
}

TEST(SnapshotTest, OrderedKvsRoundTripPreservesDigest) {
  ExpectSnapshotRoundTrip<kvs::OrderedKvs>();
}

TEST(SnapshotTest, OrderedKvsRoundTripPreservesRangeReads) {
  kvs::OrderedKvs original;
  FillStore(original);
  codec::Writer w;
  original.SnapshotTo(w);
  kvs::OrderedKvs restored;
  codec::Reader r(w.buffer().data(), w.size());
  ASSERT_TRUE(restored.RestoreFrom(r));
  smr::Command range = smr::MakeRange(1, 200, "key-1", "key-3");
  EXPECT_EQ(restored.Apply(range), original.Apply(range));
  EXPECT_NE(restored.Apply(range), "");
}

// ---------------------------------------------------------------------------
// ShardDurability: snapshot + log-tail recovery, duplicate admission.

template <class Store>
void ExpectShardRecovery(const std::string& tag) {
  TempDir dir(tag);
  ShardDurability::Options opts;
  opts.log.fsync_mode = FsyncMode::kNone;
  opts.snapshot_every = 0;  // explicit snapshots only: we want a real tail
  uint64_t live_digest = 0;
  uint64_t live_applied = 0;
  {
    Store store;
    ShardDurability d(dir.path, opts);
    ASSERT_TRUE(d.Open());
    EXPECT_FALSE(d.had_state());
    // 30 admitted+applied commands, snapshot at 20, then a 10-record tail.
    for (uint64_t i = 1; i <= 30; i++) {
      smr::Command cmd =
          smr::MakePut(3, i, "k" + std::to_string(i % 13), "v" + std::to_string(i));
      ASSERT_TRUE(d.Admit(D(i % 3, (i / 3) + 1), cmd));
      store.Apply(cmd);
      if (i == 20) {
        ASSERT_TRUE(d.WriteSnapshot(store));
      }
    }
    live_digest = store.StateDigest();
    live_applied = d.applied_count();
    d.log().Sync();
  }

  Store recovered;
  ShardDurability d(dir.path, opts);
  ASSERT_TRUE(d.Open());
  EXPECT_TRUE(d.had_state());
  EXPECT_EQ(d.Recover(recovered), live_applied);
  EXPECT_EQ(recovered.StateDigest(), live_digest);
  // Every executed dot is remembered: re-delivery is filtered...
  for (uint64_t i = 1; i <= 30; i++) {
    EXPECT_FALSE(d.Admit(D(i % 3, (i / 3) + 1),
                         smr::MakePut(3, i, "k", "v")))
        << "dot " << i << " re-admitted after recovery";
  }
  // ...while genuinely new dots pass.
  EXPECT_TRUE(d.Admit(D(0, 1000), smr::MakePut(3, 31, "fresh", "v")));
}

TEST(ShardDurabilityTest, KvStoreRecoversSnapshotPlusLogTail) {
  ExpectShardRecovery<kvs::KvStore>("shard_kv");
}

TEST(ShardDurabilityTest, OrderedKvsRecoversSnapshotPlusLogTail) {
  ExpectShardRecovery<kvs::OrderedKvs>("shard_okv");
}

TEST(ShardDurabilityTest, SeqFloorReservationSurvivesRestart) {
  TempDir dir("shard_floor");
  ShardDurability::Options opts;
  opts.log.fsync_mode = FsyncMode::kNone;
  opts.floor_slack = 100;
  opts.floor_refresh = 50;
  {
    ShardDurability d(dir.path, opts);
    ASSERT_TRUE(d.Open());
    d.NoteSeqFloor(10);  // first note always persists: reserve 110
    EXPECT_EQ(d.persisted_seq_floor(), 110u);
    d.NoteSeqFloor(40);  // still > refresh distance away: no rewrite
    EXPECT_EQ(d.persisted_seq_floor(), 110u);
    d.NoteSeqFloor(70);  // within 50 of 110: re-reserve at 170
    EXPECT_EQ(d.persisted_seq_floor(), 170u);
  }
  ShardDurability d(dir.path, opts);
  ASSERT_TRUE(d.Open());
  EXPECT_TRUE(d.had_state());
  EXPECT_EQ(d.persisted_seq_floor(), 170u);
}

// ---------------------------------------------------------------------------
// Deployment-level restart-from-disk.

// Drives the same fixed script the rt tests use through a 3-site simulated
// cluster of Deployments with persistence on, then rebuilds each Deployment
// over its data_dir and expects byte-equal per-shard digests with no traffic.
void ExpectDeploymentRestartFromDisk(
    std::function<std::unique_ptr<smr::StateMachine>()> factory,
    const std::string& tag, size_t executor_threads = 0) {
  TempDir dir(tag);
  constexpr uint32_t kNodes = 3;
  constexpr uint32_t kPartitions = 2;
  auto make_opts = [&](uint32_t site) {
    smr::DeploymentOptions d;
    d.n = kNodes;
    d.f = 1;
    d.partitions = kPartitions;
    d.state_machine_factory = factory;
    d.executor_threads = executor_threads;
    d.data_dir = dir.path + "/site-" + std::to_string(site);
    d.snapshot_every = 16;  // small: exercise snapshot + tail, not just replay
    d.fsync_mode = FsyncMode::kNone;
    return d;
  };

  std::vector<uint64_t> live_digests;
  std::vector<uint64_t> live_counts;
  {
    sim::Simulator::Options sopts;
    sopts.seed = 11;
    sim::Simulator sim(
        std::make_unique<sim::UniformLatency>(5 * common::kMillisecond,
                                              common::kMillisecond),
        sopts);
    std::vector<std::unique_ptr<smr::Deployment>> replicas;
    for (uint32_t i = 0; i < kNodes; i++) {
      replicas.push_back(std::make_unique<smr::Deployment>(make_opts(i)));
      EXPECT_FALSE(replicas.back()->HasRecoveredState());
      sim.AddEngine(&replicas[i]->engine());
    }
    sim.SetExecutedHandler([&](common::ProcessId p, const common::Dot& dot,
                               const smr::Command& cmd) {
      replicas[p]->ApplyExecuted(
          dot, cmd, [](uint32_t, const smr::Command&, std::string&&) {});
    });
    sim.Start();
    for (uint64_t c = 1; c <= 4; c++) {
      for (uint64_t i = 1; i <= 20; i++) {
        std::string key = "c" + std::to_string(c) + "-k" + std::to_string(i % 5);
        sim.Submit(static_cast<common::ProcessId>(c % kNodes),
                   (i % 2 == 1)
                       ? smr::MakePut(c, i, key, "v" + std::to_string(i))
                       : smr::MakeRmw(c, i, key, "v" + std::to_string(i)));
      }
    }
    sim.RunUntilIdle();
    for (uint32_t p = 0; p < kNodes; p++) {
      for (uint32_t s = 0; s < kPartitions; s++) {
        live_digests.push_back(replicas[p]->store(s).StateDigest());
        live_counts.push_back(replicas[p]->applied_count(s));
      }
    }
  }  // every Deployment destroyed: only the data_dirs survive

  for (uint32_t p = 0; p < kNodes; p++) {
    smr::Deployment recovered(make_opts(p));
    ASSERT_TRUE(recovered.HasRecoveredState());
    for (uint32_t s = 0; s < kPartitions; s++) {
      EXPECT_EQ(recovered.store(s).StateDigest(),
                live_digests[p * kPartitions + s])
          << "site " << p << " shard " << s << " digest drifted on recovery";
      EXPECT_EQ(recovered.applied_count(s), live_counts[p * kPartitions + s]);
    }
    // The catch-up advert matches the recovered frontier (what the TCP node
    // sends to peers on restart).
    ASSERT_EQ(recovered.catchup_advert().shards.size(), kPartitions);
    for (uint32_t s = 0; s < kPartitions; s++) {
      EXPECT_FALSE(recovered.catchup_advert().shards[s].frontier.empty());
    }
  }
}

TEST(DeploymentDurabilityTest, KvStoreRestartFromDiskMatchesLiveState) {
  ExpectDeploymentRestartFromDisk(nullptr, "dep_kv");
}

TEST(DeploymentDurabilityTest, OrderedKvsRestartFromDiskMatchesLiveState) {
  ExpectDeploymentRestartFromDisk(
      []() { return std::make_unique<kvs::OrderedKvs>(); }, "dep_okv");
}

TEST(DeploymentDurabilityTest, LanedStoreComposesWithFactoryAndRecovers) {
  // The redesigned seam: executor lanes + a non-default backend + persistence,
  // all at once (the old deployment CHECK-failed on the first combination).
  // The simulator drives the laned store inline, so the digest pin holds.
  ExpectDeploymentRestartFromDisk(
      []() { return std::make_unique<kvs::OrderedKvs>(); }, "dep_laned",
      /*executor_threads=*/2);
}

// ---------------------------------------------------------------------------
// Whole-cluster pin: crash a site mid-run, restart it from disk, and the
// cluster converges to the fault-free control digests — per protocol.

struct ClusterDigests {
  std::vector<uint64_t> per_site_shard;  // [site * P + shard]
};

// Runs the two-phase script; when `crash` the victim site goes down between
// the phases (traffic quiesced while down — commits it would miss are covered
// by the TCP catch-up tests) and restarts from its data_dir.
ClusterDigests RunSimCluster(smr::Protocol protocol, bool crash,
                             const std::string& dir) {
  constexpr uint32_t kNodes = 3;
  constexpr uint32_t kPartitions = 2;
  constexpr common::ProcessId kVictim = 0;
  auto make_opts = [&](uint32_t site) {
    smr::DeploymentOptions d;
    d.protocol = protocol;
    d.n = kNodes;
    d.f = 1;
    d.partitions = kPartitions;
    if (!dir.empty()) {
      d.data_dir = dir + "/site-" + std::to_string(site);
      d.snapshot_every = 8;
      d.fsync_mode = FsyncMode::kNone;
    }
    return d;
  };

  sim::Simulator::Options sopts;
  sopts.seed = 23;
  sim::Simulator sim(
      std::make_unique<sim::UniformLatency>(5 * common::kMillisecond,
                                            common::kMillisecond),
      sopts);
  std::vector<std::unique_ptr<smr::Deployment>> replicas;
  for (uint32_t i = 0; i < kNodes; i++) {
    replicas.push_back(std::make_unique<smr::Deployment>(make_opts(i)));
    sim.AddEngine(&replicas[i]->engine());
  }
  sim.SetExecutedHandler([&](common::ProcessId p, const common::Dot& dot,
                             const smr::Command& cmd) {
    replicas[p]->ApplyExecuted(
        dot, cmd, [](uint32_t, const smr::Command&, std::string&&) {});
  });
  sim.Start();

  uint64_t seq = 0;
  auto submit_phase = [&](uint64_t ops_per_client) {
    for (uint64_t c = 1; c <= 3; c++) {
      for (uint64_t i = 1; i <= ops_per_client; i++) {
        seq++;
        std::string key = "c" + std::to_string(c) + "-k" + std::to_string(seq % 4);
        sim.Submit(static_cast<common::ProcessId>(c % kNodes),
                   smr::MakePut(c, seq, key, "v" + std::to_string(seq)));
      }
    }
    sim.RunUntilIdle();
  };

  submit_phase(10);

  if (crash) {
    sim.Crash(kVictim);
    // Quiesced downtime, then restart-from-disk: destroy the dead incarnation
    // (flushing its buffered log tail), build a fresh Deployment over the same
    // data_dir — which recovers the stores — and rebind the new incarnation.
    replicas[kVictim].reset();
    auto fresh = std::make_unique<smr::Deployment>(make_opts(kVictim));
    EXPECT_TRUE(fresh->HasRecoveredState());
    std::vector<smr::RestartHint> hints = fresh->RecoveredRestartHints();
    sim.Restart(kVictim, &fresh->engine());
    replicas[kVictim] = std::move(fresh);
    replicas[kVictim]->ApplyRestartHints(hints);
    for (uint32_t p = 0; p < kNodes; p++) {
      if (p != kVictim) {
        replicas[p]->NotifyRestore(kVictim, hints);
      }
    }
  }

  submit_phase(10);

  ClusterDigests out;
  for (uint32_t p = 0; p < kNodes; p++) {
    for (uint32_t s = 0; s < kPartitions; s++) {
      out.per_site_shard.push_back(replicas[p]->store(s).StateDigest());
    }
  }
  return out;
}

void ExpectRestartFromDiskMatchesControl(smr::Protocol protocol,
                                         const std::string& tag) {
  TempDir dir(tag);
  ClusterDigests control = RunSimCluster(protocol, /*crash=*/false, "");
  ClusterDigests crashed = RunSimCluster(protocol, /*crash=*/true, dir.path);
  ASSERT_EQ(crashed.per_site_shard.size(), control.per_site_shard.size());
  // All sites converge (including the restarted one), and the converged state
  // is the fault-free control state.
  EXPECT_EQ(crashed.per_site_shard, control.per_site_shard);
}

TEST(RestartFromDiskTest, AtlasMatchesFaultFreeControl) {
  ExpectRestartFromDiskMatchesControl(smr::Protocol::kAtlas, "ctl_atlas");
}

TEST(RestartFromDiskTest, EPaxosMatchesFaultFreeControl) {
  ExpectRestartFromDiskMatchesControl(smr::Protocol::kEPaxos, "ctl_epaxos");
}

TEST(RestartFromDiskTest, MenciusMatchesFaultFreeControl) {
  ExpectRestartFromDiskMatchesControl(smr::Protocol::kMencius, "ctl_mencius");
}

}  // namespace
}  // namespace dur
