// Targeted edge cases across modules: codec robustness against corrupted valid
// messages, command model corners, engine behaviour on malformed or unexpected input,
// and simulator boundary conditions.
#include <gtest/gtest.h>

#include <memory>

#include "src/codec/codec.h"
#include "src/common/rng.h"
#include "src/core/atlas.h"
#include "src/msg/message.h"
#include "src/sim/simulator.h"

namespace {

using common::Dot;
using common::kMillisecond;
using common::ProcessId;

// Bit-flipping a valid encoding must never crash the decoder (it may still decode to
// a different valid message; engines tolerate bogus-but-well-formed input).
TEST(EdgeCaseTest, CodecSurvivesBitFlips) {
  msg::MCollect m;
  m.dot = Dot{2, 77};
  m.cmd = smr::MakePut(5, 6, "key", "value-payload");
  m.past = common::DepSet{Dot{0, 1}, Dot{1, 2}};
  m.quorum = common::Quorum::Of({0, 1, 2});
  codec::Writer w;
  msg::Encode(w, msg::Message{m});
  common::Rng rng(7);
  for (int trial = 0; trial < 2000; trial++) {
    std::vector<uint8_t> buf = w.buffer();
    size_t pos = rng.Below(buf.size());
    buf[pos] ^= static_cast<uint8_t>(1u << rng.Below(8));
    codec::Reader r(buf.data(), buf.size());
    msg::Message out;
    msg::Decode(r, out);  // must not crash or hang
  }
}

TEST(EdgeCaseTest, EmptyAndHugeCommands) {
  // Empty key, empty value.
  smr::Command c = smr::MakePut(1, 1, "", "");
  codec::Writer w;
  c.Encode(w);
  codec::Reader r(w.buffer());
  EXPECT_EQ(smr::Command::Decode(r), c);
  EXPECT_TRUE(r.ok());
  // 1 MB value round-trips.
  smr::Command big = smr::MakePut(1, 2, "k", std::string(1 << 20, 'z'));
  codec::Writer w2;
  big.Encode(w2);
  codec::Reader r2(w2.buffer());
  EXPECT_EQ(smr::Command::Decode(r2), big);
}

TEST(EdgeCaseTest, CommandPayloadSizeCountsAllKeys) {
  smr::Command c = smr::MakePut(1, 1, "abc", "0123456789");
  c.more_keys = {"xy", "z"};
  EXPECT_EQ(c.PayloadSize(), 3u + 10u + 2u + 1u);
}

// An Atlas engine must ignore messages of other protocols without crashing (mixed
// deployments / versioning accidents).
TEST(EdgeCaseTest, AtlasIgnoresForeignMessages) {
  sim::Simulator::Options opts;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(kMillisecond, 0), opts);
  std::vector<std::unique_ptr<atlas::AtlasEngine>> engines;
  for (int i = 0; i < 3; i++) {
    atlas::Config cfg;
    cfg.n = 3;
    cfg.f = 1;
    engines.push_back(std::make_unique<atlas::AtlasEngine>(cfg));
    sim.AddEngine(engines.back().get());
  }
  sim.Start();
  msg::EpPreAccept foreign;
  foreign.dot = Dot{0, 1};
  foreign.cmd = smr::MakePut(1, 1, "k", "v");
  engines[0]->OnMessage(1, msg::Message{foreign});
  msg::PxAccept paxos_msg;
  paxos_msg.slot = 3;
  engines[0]->OnMessage(1, msg::Message{paxos_msg});
  // Still functional afterwards.
  sim.Submit(0, smr::MakePut(2, 1, "k", "v"));
  sim.RunUntilIdle();
  EXPECT_EQ(engines[0]->stats().executed, 1u);
}

// Duplicated and replayed protocol messages must not double-execute (Integrity).
TEST(EdgeCaseTest, ReplayedCommitIsIdempotent) {
  sim::Simulator::Options opts;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(kMillisecond, 0), opts);
  std::vector<std::unique_ptr<atlas::AtlasEngine>> engines;
  for (int i = 0; i < 3; i++) {
    atlas::Config cfg;
    cfg.n = 3;
    cfg.f = 1;
    engines.push_back(std::make_unique<atlas::AtlasEngine>(cfg));
    sim.AddEngine(engines.back().get());
  }
  int executions = 0;
  sim.SetExecutedHandler(
      [&](ProcessId p, const Dot&, const smr::Command&) { executions++; });
  sim.Start();
  sim.Submit(0, smr::MakePut(1, 1, "k", "v"));
  sim.RunUntilIdle();
  EXPECT_EQ(executions, 3);
  // Replay a commit at process 2.
  msg::MCommit replay;
  replay.dot = Dot{0, 1};
  replay.cmd = smr::MakePut(1, 1, "k", "v");
  engines[2]->OnMessage(0, msg::Message{replay});
  sim.RunUntilIdle();
  EXPECT_EQ(executions, 3);  // unchanged
}

TEST(EdgeCaseTest, SimulatorZeroLatencySelfConsistent) {
  sim::Simulator::Options opts;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(0, 0), opts);
  std::vector<std::unique_ptr<atlas::AtlasEngine>> engines;
  for (int i = 0; i < 3; i++) {
    atlas::Config cfg;
    cfg.n = 3;
    cfg.f = 1;
    engines.push_back(std::make_unique<atlas::AtlasEngine>(cfg));
    sim.AddEngine(engines.back().get());
  }
  sim.Start();
  for (int i = 0; i < 50; i++) {
    sim.Submit(static_cast<ProcessId>(i % 3),
               smr::MakePut(1, static_cast<uint64_t>(i) + 1, "k", "v"));
  }
  sim.RunUntilIdle();
  EXPECT_EQ(sim.Now(), 0);  // everything at t=0, no time travel
  EXPECT_EQ(engines[0]->stats().executed, 50u);
}

TEST(EdgeCaseTest, BallotOwnershipExhaustive) {
  for (uint32_t n : {3u, 5u, 7u, 13u, 17u}) {
    for (ProcessId p = 0; p < n; p++) {
      common::Ballot b = common::InitialBallot(p);
      for (int k = 0; k < 4; k++) {
        EXPECT_EQ(common::BallotOwner(b, n), p);
        common::Ballot next = common::NextRecoveryBallot(p, b, n);
        EXPECT_GT(next, b);
        b = next;
      }
    }
  }
}

// Quorum fallback: when more than f peers are suspected, quorum selection must still
// return a full-size quorum (protocol blocks, but never crashes).
TEST(EdgeCaseTest, SuspectingEveryoneStillFormsQuorums) {
  sim::Simulator::Options opts;
  sim::Simulator sim(std::make_unique<sim::UniformLatency>(kMillisecond, 0), opts);
  std::vector<std::unique_ptr<atlas::AtlasEngine>> engines;
  for (int i = 0; i < 5; i++) {
    atlas::Config cfg;
    cfg.n = 5;
    cfg.f = 2;
    engines.push_back(std::make_unique<atlas::AtlasEngine>(cfg));
    sim.AddEngine(engines.back().get());
  }
  sim.Start();
  for (ProcessId p = 1; p < 5; p++) {
    engines[0]->OnSuspect(p);
    sim.Crash(p);
  }
  sim.Submit(0, smr::MakePut(1, 1, "k", "v"));  // must not abort
  sim.RunFor(common::kSecond);
  EXPECT_EQ(engines[0]->stats().executed, 0u);  // blocked, as documented
}

}  // namespace
