// NFR (non-fault-tolerant reads, §4/§B.4) deep-dive tests: real-time read freshness,
// majority quorums, and interaction with the fast path — for both Atlas and EPaxos.
#include <gtest/gtest.h>

#include <memory>

#include "src/core/atlas.h"
#include "src/epaxos/epaxos.h"
#include "src/kvs/kvs.h"
#include "src/sim/simulator.h"

namespace {

using common::Dot;
using common::kMillisecond;
using common::ProcessId;

// A cluster of 5 replicas with KVS state machines where we can observe read results.
struct NfrCluster {
  explicit NfrCluster(bool nfr, bool epaxos = false) {
    sim::Simulator::Options opts;
    opts.seed = 51;
    sim = std::make_unique<sim::Simulator>(
        std::make_unique<sim::UniformLatency>(10 * kMillisecond, 0), opts);
    stores.resize(5);
    for (uint32_t i = 0; i < 5; i++) {
      if (epaxos) {
        epaxos::Config cfg;
        cfg.n = 5;
        cfg.nfr = nfr;
        engines.push_back(std::make_unique<epaxos::EPaxosEngine>(cfg));
      } else {
        atlas::Config cfg;
        cfg.n = 5;
        cfg.f = 2;
        cfg.nfr = nfr;
        engines.push_back(std::make_unique<atlas::AtlasEngine>(cfg));
      }
      sim->AddEngine(engines.back().get());
    }
    sim->SetExecutedHandler([this](ProcessId p, const Dot& d, const smr::Command& c) {
      std::string result = stores[p].Apply(c);
      results.emplace_back(p, c, result);
    });
    sim->Start();
  }

  // Result of command (client, seq) as executed at process p ("" when absent).
  std::string ResultAt(ProcessId p, uint64_t client, uint64_t seq) const {
    for (const auto& [proc, cmd, result] : results) {
      if (proc == p && cmd.client == client && cmd.seq == seq) {
        return result;
      }
    }
    return "<missing>";
  }

  std::unique_ptr<sim::Simulator> sim;
  std::vector<std::unique_ptr<smr::Engine>> engines;
  std::vector<kvs::KvStore> stores;
  std::vector<std::tuple<ProcessId, smr::Command, std::string>> results;
};

// Real-time freshness: a write that completed before a read was submitted must be
// visible to the read, even though the read commits non-fault-tolerantly. (The
// majority read quorum intersects the write's fast quorum, §B.4.)
TEST(NfrTest, CompletedWriteVisibleToSubsequentRead) {
  for (bool epaxos : {false, true}) {
    NfrCluster tc(/*nfr=*/true, epaxos);
    tc.sim->Submit(0, smr::MakePut(1, 1, "x", "fresh"));
    tc.sim->RunUntilIdle();  // write fully executed everywhere
    tc.sim->Submit(4, smr::MakeGet(2, 1, "x"));
    tc.sim->RunUntilIdle();
    EXPECT_EQ(tc.ResultAt(4, 2, 1), "fresh") << (epaxos ? "epaxos" : "atlas");
  }
}

TEST(NfrTest, ReadCommitsInOneRoundTripToMajority) {
  NfrCluster tc(/*nfr=*/true);
  tc.sim->Submit(0, smr::MakeGet(1, 1, "x"));
  // Majority quorum of {0,1,2}: acks at 2 * 10ms; commit immediately after.
  common::Time start = tc.sim->Now();
  tc.sim->RunUntilIdle();
  // The read executed at its coordinator within ~one round trip (20ms + delivery).
  bool found = false;
  for (const auto& [proc, cmd, result] : tc.results) {
    if (proc == 0 && cmd.is_read()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_LE(tc.sim->Now() - start, 45 * kMillisecond);  // commit bcast tail included
}

// A concurrent read never blocks a later write: writes exclude reads from their
// dependencies under NFR, so a stalled read coordinator cannot wedge the system.
TEST(NfrTest, StalledReadDoesNotBlockWrites) {
  NfrCluster tc(/*nfr=*/true);
  // Cut the read coordinator's links so its read stays uncommitted.
  for (ProcessId p = 1; p < 5; p++) {
    tc.sim->SetLinkDown(0, p, true);
  }
  tc.sim->Submit(0, smr::MakeGet(1, 1, "x"));
  tc.sim->RunFor(50 * kMillisecond);
  for (ProcessId p = 1; p < 5; p++) {
    tc.sim->SetLinkDown(0, p, false);
  }
  // Writes proceed at other replicas despite the wedged read.
  tc.sim->Submit(1, smr::MakePut(2, 1, "x", "v1"));
  tc.sim->Submit(2, smr::MakePut(3, 1, "x", "v2"));
  tc.sim->RunUntilIdle();
  // Both writes executed at every live replica.
  int writes_at_3 = 0;
  for (const auto& [proc, cmd, result] : tc.results) {
    if (proc == 3 && cmd.is_write()) {
      writes_at_3++;
    }
  }
  EXPECT_EQ(writes_at_3, 2);
}

// Without NFR, reads are fault-tolerant but carry full dependencies; the same
// sequence still works and the read sees the write.
TEST(NfrTest, VanillaReadsStillLinearizable) {
  NfrCluster tc(/*nfr=*/false);
  tc.sim->Submit(0, smr::MakePut(1, 1, "x", "v"));
  tc.sim->RunUntilIdle();
  tc.sim->Submit(3, smr::MakeGet(2, 1, "x"));
  tc.sim->RunUntilIdle();
  EXPECT_EQ(tc.ResultAt(3, 2, 1), "v");
}

// Reads racing a write: whatever the outcome, the read must return either the old or
// the new value, and the write must execute everywhere.
TEST(NfrTest, ReadRacingWriteReturnsOldOrNew) {
  NfrCluster tc(/*nfr=*/true);
  tc.sim->Submit(0, smr::MakePut(1, 1, "x", "old"));
  tc.sim->RunUntilIdle();
  tc.sim->Submit(1, smr::MakePut(2, 1, "x", "new"));
  tc.sim->Submit(4, smr::MakeGet(3, 1, "x"));  // concurrent with the write
  tc.sim->RunUntilIdle();
  std::string read = tc.ResultAt(4, 3, 1);
  EXPECT_TRUE(read == "old" || read == "new") << "read returned: " << read;
  // All stores converge on "new".
  for (ProcessId p = 0; p < 5; p++) {
    ASSERT_NE(tc.stores[p].Lookup("x"), nullptr);
    EXPECT_EQ(*tc.stores[p].Lookup("x"), "new");
  }
}

}  // namespace
