// Locks in the PR's core invariant: steady-state message delivery through the
// simulator performs no per-message heap allocation. Global operator new/delete are
// overridden in this binary to count allocations; after a warmup pass (slot pool,
// event queue, and engine scratch reach their high-water marks) a burst of
// submit->broadcast->deliver traffic must allocate (almost) nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "src/epaxos/epaxos.h"
#include "src/paxos/multipaxos.h"
#include "src/rt/shard_runtime.h"
#include "src/sim/simulator.h"
#include "src/smr/sharded_engine.h"

namespace {

std::atomic<uint64_t> g_allocs{0};

}  // namespace

void* operator new(size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace sim {
namespace {

using common::DepSet;
using common::Dot;
using common::ProcessId;

class BroadcastEngine final : public smr::Engine {
 public:
  void Submit(smr::Command cmd) override {
    msg::MCommit m;
    m.cmd = std::move(cmd);
    m.dot = Dot{self_, ++seq_};
    m.deps = DepSet{Dot{0, 1}, Dot{1, 2}, Dot{2, 3}};
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, m);
      }
    }
  }
  void OnMessage(ProcessId from, const msg::Message& m) override { received_++; }

 private:
  uint64_t seq_ = 0;
  uint64_t received_ = 0;
};

TEST(AllocTest, SteadyStateDeliveryIsAllocationFree) {
  Simulator::Options opts;
  opts.seed = 3;
  Simulator sim(std::make_unique<UniformLatency>(common::kMillisecond, 0), opts);
  std::vector<BroadcastEngine> engines(5);
  for (auto& e : engines) {
    sim.AddEngine(&e);
  }
  sim.Start();

  // Warmup: grow the slot pool, queue, and FIFO bookkeeping to their high-water
  // marks. Keys/values are small (SSO), deps fit the DepSet inline buffer.
  for (uint64_t i = 1; i <= 200; i++) {
    sim.Submit(0, smr::MakePut(1, i, "key42", "value"));
    sim.RunUntilIdle();
  }

  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  uint64_t delivered_before = sim.messages_delivered();
  for (uint64_t i = 1000; i < 2000; i++) {
    sim.Submit(0, smr::MakePut(1, i, "key42", "value"));
    sim.RunUntilIdle();
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  uint64_t delivered = sim.messages_delivered() - delivered_before;

  EXPECT_EQ(delivered, 4000u);  // 4 peers x 1000 submits
  // Zero is the design target; allow a little slack for one-off container growth so
  // the test does not depend on libstdc++ internals.
  EXPECT_LE(allocs, 8u) << "steady-state deliveries allocated " << allocs
                        << " times for " << delivered << " messages";
}

// Discards engine output; lets us drive an engine directly and count only its own
// allocations (no simulator, no delivery queue).
class NullContext final : public smr::Context {
 public:
  void Send(common::ProcessId to, msg::Message m) override {}
  common::Time Now() const override { return 0; }
  void SetTimer(common::Duration delay, uint64_t token) override {}
  void Executed(const common::Dot& dot, const smr::Command& cmd) override {}
};

// Pins the PxPromise fix (ROADMAP hot-path item): answering Paxos phase 1 over a long
// log must reuse the engine's promise scratch instead of growing a fresh
// accepted-entry vector per prepare. Warm steady state: one sized allocation for the
// copy into the send envelope, nothing per entry.
TEST(AllocTest, PaxosPromiseReusesAcceptedScratch) {
  paxos::Config cfg;
  cfg.n = 3;
  cfg.f = 1;
  cfg.initial_leader = 0;
  paxos::PaxosEngine engine(cfg);
  NullContext ctx;
  engine.Bind(/*self=*/1, /*n=*/3, &ctx);
  engine.OnStart();

  // Fill the log as a follower: 256 accepted-but-uncommitted slots. Keys/values are
  // SSO-small so entry copies never need the heap.
  const uint64_t kSlots = 256;
  for (uint64_t slot = 0; slot < kSlots; slot++) {
    msg::PxAccept acc;
    acc.slot = slot;
    acc.ballot = common::InitialBallot(0);
    acc.cmd = smr::MakePut(1, slot + 1, "k", "v");
    engine.OnMessage(0, acc);
  }

  // Warmup prepare: grows the scratch to its high-water mark.
  common::Ballot ballot = 100;
  msg::PxPrepare prep;
  prep.ballot = ballot;
  prep.from_slot = 0;
  engine.OnMessage(0, prep);

  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const uint64_t kPrepares = 50;
  for (uint64_t i = 1; i <= kPrepares; i++) {
    prep.ballot = ballot + i * 3;  // strictly increasing, owned by process 2
    engine.OnMessage(0, prep);
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  // Per prepare: one sized vector allocation when the promise is copied into the send
  // envelope. The old code added a growth sequence (~log2(slots) reallocations) per
  // prepare on top.
  EXPECT_LE(allocs, kPrepares * 3) << "phase-1 promises allocated " << allocs
                                   << " times for " << kPrepares << " prepares over "
                                   << kSlots << " slots";
}

// Pins the EPaxos DotMap migration (ROADMAP known-allocation: the last engine on
// hash-map nodes). A replica processing the pre-accept -> commit -> execute stream
// for a steady series of commands must not allocate per command: infos_ slots are
// recycled on execution and seqnos_ grows only on amortized table rehashes —
// unordered_map allocated two fresh hash nodes per command here.
TEST(AllocTest, EPaxosReplicaSteadyStateIsAllocationFree) {
  epaxos::Config cfg;
  cfg.n = 3;
  epaxos::EPaxosEngine engine(cfg);
  NullContext ctx;
  engine.Bind(/*self=*/1, /*n=*/3, &ctx);
  engine.OnStart();

  auto drive_one = [&engine](uint64_t seq) {
    common::Dot dot{0, seq};
    smr::Command cmd = smr::MakePut(1, seq, "key42", "value");
    msg::EpPreAccept pre;
    pre.dot = dot;
    pre.cmd = cmd;
    pre.seqno = seq;
    engine.OnMessage(0, pre);
    msg::EpCommit commit;
    commit.dot = dot;
    commit.cmd = cmd;
    commit.seqno = seq;
    engine.OnMessage(0, commit);  // empty deps: executes immediately, erases infos_
  };

  // Warmup: tables and executor scratch reach their high-water marks.
  for (uint64_t seq = 1; seq <= 512; seq++) {
    drive_one(seq);
  }
  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const uint64_t kCommands = 1000;
  for (uint64_t seq = 1000; seq < 1000 + kCommands; seq++) {
    drive_one(seq);
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  // Only seqnos_ growth remains (it keeps every command's sequence number): a
  // couple of rehashes across 1000 commands, not two nodes per command.
  EXPECT_LE(allocs, 16u) << "EPaxos replica path allocated " << allocs
                         << " times for " << kCommands << " commands";
}

// Pins the leader-side pre-accept ack aggregation: a full EPaxos cluster round
// (Submit -> EpPreAccept fan-out -> acks back -> fast-path commit -> execute) must
// not allocate per command on any replica. The command leader used to store every
// EpPreAcceptAck in a per-Info vector until the quorum completed (1-2 vector
// growths per command); acks are now folded into running aggregates (union /
// max / all-match) on arrival, so the whole protocol round is allocation-free
// modulo amortized table growth.
TEST(AllocTest, EPaxosLeaderQuorumPathIsAllocationFree) {
  Simulator::Options opts;
  opts.seed = 7;
  Simulator sim(std::make_unique<UniformLatency>(common::kMillisecond, 0), opts);
  epaxos::Config cfg;
  cfg.n = 3;
  std::vector<std::unique_ptr<epaxos::EPaxosEngine>> engines;
  for (uint32_t i = 0; i < cfg.n; i++) {
    engines.push_back(std::make_unique<epaxos::EPaxosEngine>(cfg));
    sim.AddEngine(engines.back().get());
  }
  sim.Start();

  // Same-key commands: every round carries a real dependency chain, so the acks
  // the leader aggregates have non-empty deps (the case the old code buffered).
  for (uint64_t i = 1; i <= 512; i++) {
    sim.Submit(0, smr::MakePut(1, i, "key42", "value"));
    sim.RunUntilIdle();
  }
  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const uint64_t kCommands = 1000;
  for (uint64_t i = 1000; i < 1000 + kCommands; i++) {
    sim.Submit(0, smr::MakePut(1, i, "key42", "value"));
    sim.RunUntilIdle();
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  // Remaining: amortized seqnos_/executed-set growth across three replicas. The
  // old leader-side ack vector alone was ~2 allocations per command.
  EXPECT_LE(allocs, 64u) << "EPaxos cluster rounds allocated " << allocs
                         << " times for " << kCommands << " commands";
}

// Pins the refcounted payload pool (src/smr/payload.h): values beyond the inline
// small-buffer threshold land in pooled PayloadBufs that are recycled once the
// last holder drops its reference — copying a Payload bumps a refcount instead of
// duplicating bytes, and steady-state Make() reuses a quiesced slot's capacity.
TEST(AllocTest, PayloadPoolRecyclesLargeValueBuffers) {
  smr::PayloadPool pool;
  std::string big(4096, 'x');  // far beyond Payload::kInlineMax
  auto cycle = [&pool, &big](uint64_t seq) {
    smr::Payload p = pool.Make(big);
    smr::Payload copy = p;  // refcount bump, no byte duplication
    smr::Command cmd = smr::MakePut(1, seq, "k", "v");
    cmd.value = std::move(copy);  // ride through a Command like the flush path
    // cmd, copy, p all die here; the pooled buffer quiesces back to refcount 1.
  };
  for (uint64_t i = 1; i <= 64; i++) {
    cycle(i);  // warmup: pool slots reach their high-water capacity
  }
  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const uint64_t kRounds = 1000;
  for (uint64_t i = 100; i < 100 + kRounds; i++) {
    cycle(i);
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_LE(allocs, 8u) << "pooled payload cycling allocated " << allocs
                        << " times for " << kRounds << " rounds";
}

// Pins the kBatch encode-scratch reuse (ROADMAP known-allocation): flushing a
// submission batch encodes through the shard's reused writer, so steady-state
// flushes allocate only the composite's own payload string and key-union vector,
// not a fresh growth sequence of encode buffers per flush.
TEST(AllocTest, BatchEncodeReusesPerShardScratch) {
  // Inner sink engine: swallows submissions (the protocol round is exercised
  // elsewhere; here only the wrapper's batching path is under test).
  class SinkEngine final : public smr::Engine {
   public:
    void Submit(smr::Command cmd) override { submitted_++; }
    void OnMessage(common::ProcessId from, const msg::Message& m) override {}

   private:
    uint64_t submitted_ = 0;
  };

  smr::ShardedOptions so;
  so.partitions = 2;
  so.batch_window = common::kMillisecond;
  so.batch_max = 8;
  smr::ShardedEngine engine(so, [](uint32_t) { return std::make_unique<SinkEngine>(); });
  NullContext ctx;
  engine.Bind(/*self=*/0, /*n=*/3, &ctx);
  engine.OnStart();

  // 8 SSO keys that all route to one shard: every 8th Submit flushes a full batch.
  smr::Partitioner part(so.partitions);
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < 8 && i < 10000; i++) {
    std::string k = "k" + std::to_string(i);
    if (part.ShardOf(k) == 0) {
      keys.push_back(k);
    }
  }
  ASSERT_EQ(keys.size(), 8u);

  auto flush_once = [&engine, &keys](uint64_t round) {
    for (size_t i = 0; i < keys.size(); i++) {
      engine.Submit(smr::MakePut(1, round * 8 + i + 1, keys[i], "value"));
    }
  };
  for (uint64_t round = 1; round <= 32; round++) {
    flush_once(round);  // warmup: writer + pending buffers reach high-water marks
  }
  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const uint64_t kFlushes = 100;
  for (uint64_t round = 100; round < 100 + kFlushes; round++) {
    flush_once(round);
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  // Per flush: one sized more_keys vector. The composite's payload now comes from
  // the wrapper's PayloadPool (the inner engine drops the batch, quiescing the
  // buffer for reuse); before the pool it was a fresh heap string per flush, and
  // before the writer scratch a ~log2(payload) growth sequence on top.
  EXPECT_LE(allocs, kFlushes * 2) << "batch flushes allocated " << allocs
                                  << " times for " << kFlushes << " flushes";
}

// Pins the threaded runtime's mailbox edges to the same recycled-slot
// discipline as the simulator's event pool: moving decoded inputs through a
// bounded SPSC ring (src/rt/mailbox.h) must not heap-allocate per message once
// the ring's resident slots are warm. Items are ShardInput envelopes carrying
// real msg::Message payloads — the exact type the I/O thread pushes — cycled
// through the ring the way the routing/worker pair does (several in flight, so
// distinct slots wrap).
TEST(AllocTest, MailboxSteadyStateIsAllocationFree) {
  rt::Mailbox<rt::ShardInput> box(8);

  // Four in-flight envelopes, as a busy I/O thread would keep: each carries an
  // MCommit with SSO-small key/value and inline deps.
  std::vector<rt::ShardInput> inflight(4);
  for (uint64_t i = 0; i < inflight.size(); i++) {
    msg::MCommit m;
    m.cmd = smr::MakePut(1, i + 1, "key42", "value");
    m.dot = common::Dot{0, i + 1};
    m.deps = common::DepSet{common::Dot{0, 1}};
    inflight[i].kind = rt::ShardInput::Kind::kMessage;
    inflight[i].from = 0;
    inflight[i].m = msg::Message{std::move(m)};
  }

  auto cycle = [&box, &inflight]() {
    for (auto& in : inflight) {
      ASSERT_TRUE(box.TryPush(in));
    }
    for (auto& in : inflight) {
      ASSERT_TRUE(box.TryPop(in));  // moved back out into the same envelope
    }
  };

  for (int i = 0; i < 64; i++) {
    cycle();  // warmup: resident slots absorb the payload buffers
  }
  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const int kCycles = 1000;
  for (int i = 0; i < kCycles; i++) {
    cycle();
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  EXPECT_LE(allocs, 8u) << "mailbox push/pop allocated " << allocs << " times for "
                        << kCycles * inflight.size() << " message transits";
}

}  // namespace
}  // namespace sim
