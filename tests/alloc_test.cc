// Locks in the PR's core invariant: steady-state message delivery through the
// simulator performs no per-message heap allocation. Global operator new/delete are
// overridden in this binary to count allocations; after a warmup pass (slot pool,
// event queue, and engine scratch reach their high-water marks) a burst of
// submit->broadcast->deliver traffic must allocate (almost) nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "src/paxos/multipaxos.h"
#include "src/sim/simulator.h"

namespace {

std::atomic<uint64_t> g_allocs{0};

}  // namespace

void* operator new(size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace sim {
namespace {

using common::DepSet;
using common::Dot;
using common::ProcessId;

class BroadcastEngine final : public smr::Engine {
 public:
  void Submit(smr::Command cmd) override {
    msg::MCommit m;
    m.cmd = std::move(cmd);
    m.dot = Dot{self_, ++seq_};
    m.deps = DepSet{Dot{0, 1}, Dot{1, 2}, Dot{2, 3}};
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, m);
      }
    }
  }
  void OnMessage(ProcessId from, const msg::Message& m) override { received_++; }

 private:
  uint64_t seq_ = 0;
  uint64_t received_ = 0;
};

TEST(AllocTest, SteadyStateDeliveryIsAllocationFree) {
  Simulator::Options opts;
  opts.seed = 3;
  Simulator sim(std::make_unique<UniformLatency>(common::kMillisecond, 0), opts);
  std::vector<BroadcastEngine> engines(5);
  for (auto& e : engines) {
    sim.AddEngine(&e);
  }
  sim.Start();

  // Warmup: grow the slot pool, queue, and FIFO bookkeeping to their high-water
  // marks. Keys/values are small (SSO), deps fit the DepSet inline buffer.
  for (uint64_t i = 1; i <= 200; i++) {
    sim.Submit(0, smr::MakePut(1, i, "key42", "value"));
    sim.RunUntilIdle();
  }

  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  uint64_t delivered_before = sim.messages_delivered();
  for (uint64_t i = 1000; i < 2000; i++) {
    sim.Submit(0, smr::MakePut(1, i, "key42", "value"));
    sim.RunUntilIdle();
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  uint64_t delivered = sim.messages_delivered() - delivered_before;

  EXPECT_EQ(delivered, 4000u);  // 4 peers x 1000 submits
  // Zero is the design target; allow a little slack for one-off container growth so
  // the test does not depend on libstdc++ internals.
  EXPECT_LE(allocs, 8u) << "steady-state deliveries allocated " << allocs
                        << " times for " << delivered << " messages";
}

// Discards engine output; lets us drive an engine directly and count only its own
// allocations (no simulator, no delivery queue).
class NullContext final : public smr::Context {
 public:
  void Send(common::ProcessId to, msg::Message m) override {}
  common::Time Now() const override { return 0; }
  void SetTimer(common::Duration delay, uint64_t token) override {}
  void Executed(const common::Dot& dot, const smr::Command& cmd) override {}
};

// Pins the PxPromise fix (ROADMAP hot-path item): answering Paxos phase 1 over a long
// log must reuse the engine's promise scratch instead of growing a fresh
// accepted-entry vector per prepare. Warm steady state: one sized allocation for the
// copy into the send envelope, nothing per entry.
TEST(AllocTest, PaxosPromiseReusesAcceptedScratch) {
  paxos::Config cfg;
  cfg.n = 3;
  cfg.f = 1;
  cfg.initial_leader = 0;
  paxos::PaxosEngine engine(cfg);
  NullContext ctx;
  engine.Bind(/*self=*/1, /*n=*/3, &ctx);
  engine.OnStart();

  // Fill the log as a follower: 256 accepted-but-uncommitted slots. Keys/values are
  // SSO-small so entry copies never need the heap.
  const uint64_t kSlots = 256;
  for (uint64_t slot = 0; slot < kSlots; slot++) {
    msg::PxAccept acc;
    acc.slot = slot;
    acc.ballot = common::InitialBallot(0);
    acc.cmd = smr::MakePut(1, slot + 1, "k", "v");
    engine.OnMessage(0, acc);
  }

  // Warmup prepare: grows the scratch to its high-water mark.
  common::Ballot ballot = 100;
  msg::PxPrepare prep;
  prep.ballot = ballot;
  prep.from_slot = 0;
  engine.OnMessage(0, prep);

  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  const uint64_t kPrepares = 50;
  for (uint64_t i = 1; i <= kPrepares; i++) {
    prep.ballot = ballot + i * 3;  // strictly increasing, owned by process 2
    engine.OnMessage(0, prep);
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  // Per prepare: one sized vector allocation when the promise is copied into the send
  // envelope. The old code added a growth sequence (~log2(slots) reallocations) per
  // prepare on top.
  EXPECT_LE(allocs, kPrepares * 3) << "phase-1 promises allocated " << allocs
                                   << " times for " << kPrepares << " prepares over "
                                   << kSlots << " slots";
}

}  // namespace
}  // namespace sim
