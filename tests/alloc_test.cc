// Locks in the PR's core invariant: steady-state message delivery through the
// simulator performs no per-message heap allocation. Global operator new/delete are
// overridden in this binary to count allocations; after a warmup pass (slot pool,
// event queue, and engine scratch reach their high-water marks) a burst of
// submit->broadcast->deliver traffic must allocate (almost) nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "src/sim/simulator.h"

namespace {

std::atomic<uint64_t> g_allocs{0};

}  // namespace

void* operator new(size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }

namespace sim {
namespace {

using common::DepSet;
using common::Dot;
using common::ProcessId;

class BroadcastEngine final : public smr::Engine {
 public:
  void Submit(smr::Command cmd) override {
    msg::MCommit m;
    m.cmd = std::move(cmd);
    m.dot = Dot{self_, ++seq_};
    m.deps = DepSet{Dot{0, 1}, Dot{1, 2}, Dot{2, 3}};
    for (ProcessId p = 0; p < n_; p++) {
      if (p != self_) {
        SendTo(p, m);
      }
    }
  }
  void OnMessage(ProcessId from, const msg::Message& m) override { received_++; }

 private:
  uint64_t seq_ = 0;
  uint64_t received_ = 0;
};

TEST(AllocTest, SteadyStateDeliveryIsAllocationFree) {
  Simulator::Options opts;
  opts.seed = 3;
  Simulator sim(std::make_unique<UniformLatency>(common::kMillisecond, 0), opts);
  std::vector<BroadcastEngine> engines(5);
  for (auto& e : engines) {
    sim.AddEngine(&e);
  }
  sim.Start();

  // Warmup: grow the slot pool, queue, and FIFO bookkeeping to their high-water
  // marks. Keys/values are small (SSO), deps fit the DepSet inline buffer.
  for (uint64_t i = 1; i <= 200; i++) {
    sim.Submit(0, smr::MakePut(1, i, "key42", "value"));
    sim.RunUntilIdle();
  }

  uint64_t before = g_allocs.load(std::memory_order_relaxed);
  uint64_t delivered_before = sim.messages_delivered();
  for (uint64_t i = 1000; i < 2000; i++) {
    sim.Submit(0, smr::MakePut(1, i, "key42", "value"));
    sim.RunUntilIdle();
  }
  uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - before;
  uint64_t delivered = sim.messages_delivered() - delivered_before;

  EXPECT_EQ(delivered, 4000u);  // 4 peers x 1000 submits
  // Zero is the design target; allow a little slack for one-off container growth so
  // the test does not depend on libstdc++ internals.
  EXPECT_LE(allocs, 8u) << "steady-state deliveries allocated " << allocs
                        << " times for " << delivered << " messages";
}

}  // namespace
}  // namespace sim
