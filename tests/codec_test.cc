#include "src/codec/codec.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/msg/message.h"

namespace {

using common::DepSet;
using common::Dot;

TEST(CodecTest, PrimitivesRoundTrip) {
  codec::Writer w;
  w.U8(0xab);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefull);
  w.Varint(0);
  w.Varint(127);
  w.Varint(128);
  w.Varint(0xffffffffffffffffull);
  w.Bool(true);
  w.Bytes("hello");
  w.Bytes("");
  codec::Reader r(w.buffer());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.Varint(), 0u);
  EXPECT_EQ(r.Varint(), 127u);
  EXPECT_EQ(r.Varint(), 128u);
  EXPECT_EQ(r.Varint(), 0xffffffffffffffffull);
  EXPECT_TRUE(r.Bool());
  EXPECT_EQ(r.Bytes(), "hello");
  EXPECT_EQ(r.Bytes(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, TruncatedInputPoisonsReader) {
  codec::Writer w;
  w.U64(42);
  for (size_t cut = 0; cut < 8; cut++) {
    codec::Reader r(w.buffer().data(), cut);
    r.U64();
    EXPECT_FALSE(r.ok());
  }
}

TEST(CodecTest, DepSetRoundTrip) {
  DepSet deps{Dot{0, 1}, Dot{3, 99}, Dot{2, 7}};
  codec::Writer w;
  w.Deps(deps);
  codec::Reader r(w.buffer());
  EXPECT_EQ(r.Deps(), deps);
  EXPECT_TRUE(r.ok());
}

TEST(CodecTest, CommandRoundTrip) {
  smr::Command c = smr::MakePut(7, 42, "key", std::string(3000, 'v'));
  c.more_keys = {"k2", "k3"};
  codec::Writer w;
  c.Encode(w);
  codec::Reader r(w.buffer());
  smr::Command d = smr::Command::Decode(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(c, d);
}

msg::Message SampleMessage(size_t index) {
  using namespace msg;
  smr::Command cmd = smr::MakePut(1, 2, "k", "value");
  DepSet deps{Dot{0, 1}, Dot{1, 2}};
  common::Quorum q = common::Quorum::Of({0, 1, 3});
  switch (index) {
    case 0:
      return MCollect{Dot{0, 1}, cmd, deps, q, true};
    case 1:
      return MCollectAck{Dot{0, 1}, deps};
    case 2:
      return MConsensus{Dot{0, 1}, cmd, deps, 17};
    case 3:
      return MConsensusAck{Dot{0, 1}, 17};
    case 4:
      return MCommit{Dot{0, 1}, cmd, deps};
    case 5:
      return MRec{Dot{0, 1}, cmd, 23};
    case 6:
      return MRecAck{Dot{0, 1}, cmd, deps, q, 11, 23};
    case 7:
      return EpPreAccept{Dot{0, 1}, cmd, deps, 5, q, false};
    case 8:
      return EpPreAcceptAck{Dot{0, 1}, deps, 5};
    case 9:
      return EpAccept{Dot{0, 1}, cmd, deps, 5, 9};
    case 10:
      return EpAcceptAck{Dot{0, 1}, 9};
    case 11:
      return EpCommit{Dot{0, 1}, cmd, deps, 5};
    case 12:
      return EpPrepare{Dot{0, 1}, 31};
    case 13:
      return EpPrepareAck{Dot{0, 1}, cmd, deps, 5, 2, 7, 31, true};
    case 14:
      return PxForward{cmd};
    case 15:
      return PxAccept{9, 3, cmd};
    case 16:
      return PxAccepted{9, 3};
    case 17:
      return PxCommit{9, cmd};
    case 18:
      return PxPrepare{12, 4};
    case 19: {
      PxPromise p;
      p.ballot = 12;
      p.accepted.push_back(PxPromiseEntry{4, 3, cmd});
      p.accepted.push_back(PxPromiseEntry{5, 2, smr::MakeNoOp()});
      return p;
    }
    case 20:
      return PxHeartbeat{12, 88};
    case 21:
      return MnPropose{7, cmd, 10};
    case 22:
      return MnAck{7, 10};
    case 23:
      return MnCommit{7, cmd};
    case 24:
      return MnSkipRange{2, 5, 17};
    case 25:
      return ClientRequest{cmd};
    case 26:
      return ClientReply{1, 2, "result", false};
    case 27:
      return MnRevoke{7, 13};
    case 28:
      return MnRevokePromise{7, 13, 0, 1, cmd};
    case 29:
      return MnRevokeAccept{7, 13, 2, smr::MakeNoOp()};
    case 30:
      return MnRevokeAccepted{7, 13};
    case 31:
      return MnRevokeSkip{7};
    default:
      return MCollectAck{};
  }
}

TEST(CodecTest, AllMessageTypesRoundTrip) {
  constexpr size_t kTypes = std::variant_size_v<msg::Message::Body>;
  for (size_t i = 0; i < kTypes; i++) {
    msg::Message m = SampleMessage(i);
    ASSERT_EQ(m.index(), i) << "SampleMessage(" << i << ") builds wrong alternative";
    codec::Writer w;
    msg::Encode(w, m);
    codec::Reader r(w.buffer());
    msg::Message out;
    ASSERT_TRUE(msg::Decode(r, out)) << msg::TypeName(m);
    EXPECT_EQ(out.index(), i) << msg::TypeName(m);
    EXPECT_EQ(msg::EncodedSize(m), w.size());
  }
}

// Decoding arbitrary garbage must never crash and must report failure for truncations.
TEST(CodecTest, FuzzDecodeIsSafe) {
  common::Rng rng(1234);
  for (int trial = 0; trial < 5000; trial++) {
    size_t len = rng.Below(64);
    std::vector<uint8_t> buf(len);
    for (auto& b : buf) {
      b = static_cast<uint8_t>(rng.Below(256));
    }
    codec::Reader r(buf.data(), buf.size());
    msg::Message m;
    msg::Decode(r, m);  // must not crash
  }
}

// Truncating a valid encoding at any point must fail cleanly, never crash.
TEST(CodecTest, TruncatedMessagesFailCleanly) {
  constexpr size_t kTypes = std::variant_size_v<msg::Message::Body>;
  for (size_t i = 0; i < kTypes; i++) {
    msg::Message m = SampleMessage(i);
    codec::Writer w;
    msg::Encode(w, m);
    for (size_t cut = 0; cut + 1 < w.size(); cut += std::max<size_t>(1, w.size() / 13)) {
      codec::Reader r(w.buffer().data(), cut);
      msg::Message out;
      msg::Decode(r, out);  // may fail; must not crash
    }
  }
}

}  // namespace
