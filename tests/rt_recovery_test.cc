// Kill + restart drills on the real threaded TCP cluster, with persistence on.
//
// The drills are parameterized from the PR-4 fault scenario packs
// (kill_one_replica, rolling_restarts): each pack's crash schedule is replayed
// against a 3-node loopback cluster running thread-per-shard deployments with
// P=4 shards, 2 executor lanes and a data_dir per node. A victim node is torn
// down completely (node + deployment destroyed — process-death equivalent; the
// commit log's torn-tail handling is pinned separately in durability_test),
// traffic continues on the survivors, and the victim restarts from its
// data_dir: the fresh deployment recovers snapshot + log tail, the mesh
// re-dials, the restarted node advertises its executed-dot frontiers, and
// peers stream the commits it missed. The gate: every node — including the
// restarted one — converges to per-(node, shard) store digests equal to the
// discrete-event simulator running the identical command script fault-free.
//
// The client drill exercises the other half of the reconnect story: a client
// with bounded retries survives its serving node dying mid-stream (reconnect,
// resubmit, durable-node idempotency), and a client whose server never comes
// back gives up with gave_up() accounting instead of hanging.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/fault/scenario.h"
#include "src/rt/node.h"
#include "src/sim/simulator.h"
#include "src/smr/deployment.h"

namespace rt {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kNodes = 3;
constexpr uint32_t kPartitions = 4;
constexpr size_t kExecutorLanes = 2;
constexpr uint64_t kClients = 4;
// Folds a pack's victim_rank into a concrete node id (the sim campaign folds
// the seed the same way); 2 makes the first victim the highest id, so the
// drill covers both mesh directions: survivors re-dial a restarted high id,
// while a restarted low id dials out itself.
constexpr uint32_t kDrillSeed = 2;

struct TempDir {
  explicit TempDir(const std::string& tag) {
    path = (fs::temp_directory_path() /
            ("atlas_rtrec_" + tag + "_" + std::to_string(::getpid())))
               .string();
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

smr::DeploymentOptions MakeOptions(smr::Protocol protocol,
                                   const std::string& data_dir, uint32_t site) {
  smr::DeploymentOptions d;
  d.protocol = protocol;
  d.n = kNodes;
  d.f = 1;
  d.partitions = kPartitions;
  d.threaded = true;
  d.executor_threads = kExecutorLanes;
  d.data_dir = data_dir + "/site-" + std::to_string(site);
  d.snapshot_every = 32;  // small: restarts recover snapshot + tail, not just log
  d.fsync_mode = dur::FsyncMode::kNone;  // survives process death, which is
                                         // what the drill simulates
  // Recovery machinery the crash cycles rely on (the sim fault campaign sets
  // the same knobs): the TCP runtime has no failure detector, so a commit
  // waiting on a dead fast-quorum member must time out and recover via the
  // slow path instead of stalling forever. Which survivors' default quorums
  // contain the victim depends on the victim's id, so some crash cycles pass
  // without this and others wedge.
  d.commit_timeout = 300 * common::kMillisecond;
  d.recovery_scan_interval = 100 * common::kMillisecond;
  d.recovery_retry_interval = 200 * common::kMillisecond;
  d.revoke_retry_interval = 100 * common::kMillisecond;
  return d;
}

// The full command script, precomputed so the TCP run and the simulator
// reference submit the identical sequence. Each client owns disjoint keys and
// runs blocking calls, so per-key order is client program order in any driver.
struct Op {
  uint64_t client;
  uint64_t seq;
  smr::Command cmd;
};

smr::Command ScriptedOp(uint64_t client, uint64_t seq) {
  std::string key = "c" + std::to_string(client) + "-k" + std::to_string(seq % 5);
  std::string value = "v" + std::to_string(seq);
  return (seq % 2 == 1) ? smr::MakePut(client, seq, key, std::move(value))
                        : smr::MakeRmw(client, seq, key, std::move(value));
}

// One traffic phase: `ops_per_client` ops for each listed client, submitted
// through blocking TCP clients pointed at `target_node_of(client)`.
struct Phase {
  std::vector<uint64_t> clients;
  uint64_t ops_per_client;
};

class Script {
 public:
  // Appends a phase; returns the ops, bumping each client's running seq.
  std::vector<Op> Extend(const Phase& phase) {
    std::vector<Op> ops;
    for (uint64_t c : phase.clients) {
      if (next_seq_.size() <= c) {
        next_seq_.resize(c + 1, 1);
      }
      for (uint64_t i = 0; i < phase.ops_per_client; i++) {
        uint64_t seq = next_seq_[c]++;
        ops.push_back(Op{c, seq, ScriptedOp(c, seq)});
      }
    }
    all_.insert(all_.end(), ops.begin(), ops.end());
    return ops;
  }
  const std::vector<Op>& all() const { return all_; }

 private:
  std::vector<uint64_t> next_seq_;
  std::vector<Op> all_;
};

struct ShardState {
  std::vector<uint64_t> digests;  // [node * kPartitions + shard]
  std::vector<uint64_t> counts;
};

// The same script through the discrete-event simulator, fault-free, through
// the same Deployment assembly (single-threaded, no persistence).
ShardState SimulatorReference(smr::Protocol protocol, const std::vector<Op>& ops) {
  sim::Simulator::Options sopts;
  sopts.seed = 7;
  sim::Simulator sim(
      std::make_unique<sim::UniformLatency>(5 * common::kMillisecond,
                                            common::kMillisecond),
      sopts);
  std::vector<std::unique_ptr<smr::Deployment>> replicas;
  for (uint32_t i = 0; i < kNodes; i++) {
    smr::DeploymentOptions d;
    d.protocol = protocol;
    d.n = kNodes;
    d.f = 1;
    d.partitions = kPartitions;
    replicas.push_back(std::make_unique<smr::Deployment>(d));
    sim.AddEngine(&replicas[i]->engine());
  }
  sim.SetExecutedHandler([&](common::ProcessId p, const common::Dot& dot,
                             const smr::Command& cmd) {
    replicas[p]->ApplyExecuted(
        dot, cmd, [](uint32_t, const smr::Command&, std::string&&) {});
  });
  sim.Start();
  for (const Op& op : ops) {
    sim.Submit(static_cast<common::ProcessId>(op.client % kNodes), op.cmd);
  }
  sim.RunUntilIdle();

  ShardState st;
  for (uint32_t p = 0; p < kNodes; p++) {
    for (uint32_t s = 0; s < kPartitions; s++) {
      st.digests.push_back(replicas[p]->store(s).StateDigest());
      st.counts.push_back(replicas[p]->applied_count(s));
    }
  }
  return st;
}

// ---------------------------------------------------------------------------
// The live cluster under drill.

class DrillCluster {
 public:
  DrillCluster(smr::Protocol protocol, const std::string& data_dir,
               uint16_t port_base)
      : protocol_(protocol), data_dir_(data_dir) {
    uint16_t base =
        static_cast<uint16_t>(port_base + (getpid() % 512));
    for (uint32_t i = 0; i < kNodes; i++) {
      addrs_.push_back(PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    replicas_.resize(kNodes);
    nodes_.resize(kNodes);
    threads_.resize(kNodes);
    for (uint32_t i = 0; i < kNodes; i++) {
      ok_ = ok_ && StartNode(i, /*expect_recovery=*/false);
    }
  }

  ~DrillCluster() { StopAll(); }

  bool ok() const { return ok_; }
  uint16_t port(uint32_t n) const { return addrs_[n].port; }

  bool StartNode(uint32_t i, bool expect_recovery) {
    replicas_[i] = std::make_unique<smr::Deployment>(
        MakeOptions(protocol_, data_dir_, i));
    if (expect_recovery && !replicas_[i]->HasRecoveredState()) {
      ADD_FAILURE() << "node " << i << " found no state to recover";
      return false;
    }
    nodes_[i] = std::make_unique<Node>(i, addrs_, replicas_[i].get());
    // The freed listen port can lag a moment behind the old node's teardown.
    bool listening = false;
    for (int attempt = 0; attempt < 50 && !listening; attempt++) {
      listening = nodes_[i]->Listen();
      if (!listening) {
        usleep(20 * 1000);
      }
    }
    if (!listening) {
      ADD_FAILURE() << "node " << i << " could not bind port " << addrs_[i].port;
      return false;
    }
    threads_[i] = std::thread([this, i]() { nodes_[i]->Run(); });
    return true;
  }

  // Full teardown of one node — the process-death stand-in. The deployment's
  // destructor flushes the buffered commit-log tail (a literal kill-9 instead
  // loses up to one unflushed buffer, which Open() truncates to the last clean
  // record boundary — the torn-tail pins in durability_test cover that).
  void KillNode(uint32_t i) {
    nodes_[i]->Stop();
    threads_[i].join();
    nodes_[i].reset();
    replicas_[i].reset();
  }

  void StopAll() {
    for (uint32_t i = 0; i < kNodes; i++) {
      if (nodes_[i] != nullptr) {
        nodes_[i]->Stop();
      }
    }
    for (uint32_t i = 0; i < kNodes; i++) {
      if (threads_[i].joinable()) {
        threads_[i].join();
      }
    }
  }

  // Runs one phase of blocking client traffic. Each op's client routes to
  // client % kNodes unless that node is the current victim, in which case it
  // shifts to the next live node. Returns false on any failed call.
  bool RunPhase(const std::vector<Op>& ops, int victim) {
    // Group ops per client (each client is a thread with its own connection).
    std::vector<std::vector<const Op*>> per_client(kClients + 1);
    for (const Op& op : ops) {
      per_client[op.client].push_back(&op);
    }
    std::atomic<int> failures{0};
    std::vector<std::thread> client_threads;
    for (uint64_t c = 1; c <= kClients; c++) {
      if (per_client[c].empty()) {
        continue;
      }
      client_threads.emplace_back([&, c]() {
        uint32_t target = static_cast<uint32_t>(c % kNodes);
        while (victim >= 0 && target == static_cast<uint32_t>(victim)) {
          target = (target + 1) % kNodes;
        }
        Client client("127.0.0.1", addrs_[target].port);
        bool connected = false;
        for (int i = 0; i < 250 && !connected; i++) {
          connected = client.Connect();
          if (!connected) {
            usleep(20 * 1000);
          }
        }
        if (!connected) {
          failures.fetch_add(1);
          return;
        }
        std::string result;
        for (const Op* op : per_client[c]) {
          if (!client.Call(op->cmd, &result)) {
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (auto& t : client_threads) {
      t.join();
    }
    return failures.load() == 0;
  }

  // Waits until node `i` has applied `expected` client ops (recovered ops
  // included — the per-shard applied counts are atomics, safe to poll).
  bool WaitApplied(uint32_t i, uint64_t expected, int deadline_sec = 30) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(deadline_sec);
    while (std::chrono::steady_clock::now() < deadline) {
      uint64_t total = 0;
      for (uint32_t s = 0; s < kPartitions; s++) {
        total += replicas_[i]->applied_count(s);
      }
      if (total >= expected) {
        return true;
      }
      usleep(10 * 1000);
    }
    ADD_FAILURE() << "node " << i << " stuck below " << expected << " applied ops";
    return false;
  }

  bool WaitAllApplied(uint64_t expected) {
    bool ok = true;
    for (uint32_t i = 0; i < kNodes; i++) {
      if (nodes_[i] != nullptr) {
        ok = WaitApplied(i, expected) && ok;
      }
    }
    return ok;
  }

  // Read per-(node, shard) state. Only valid after StopAll (workers joined).
  ShardState CollectState() {
    ShardState st;
    for (uint32_t p = 0; p < kNodes; p++) {
      for (uint32_t s = 0; s < kPartitions; s++) {
        st.digests.push_back(replicas_[p]->store(s).StateDigest());
        st.counts.push_back(replicas_[p]->applied_count(s));
      }
    }
    return st;
  }

 private:
  smr::Protocol protocol_;
  std::string data_dir_;
  std::vector<PeerAddress> addrs_;
  std::vector<std::unique_ptr<smr::Deployment>> replicas_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::thread> threads_;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// The pack-parameterized drill.

// Replays `pack`'s crash schedule against a live TCP cluster:
//   phase A (all clients) -> for each CrashEvent: kill victim, [traffic on the
//   survivors], restart victim from disk, wait for catch-up -> phase C (all
//   clients) -> drain -> digests == fault-free simulator reference.
// `traffic_while_down` is off for Mencius: the TCP runtime has no failure
// detector, and Mencius needs the victim's slots revoked to commit without it.
void RunPackDrill(const fault::Scenario& pack, smr::Protocol protocol,
                  uint16_t port_base, bool traffic_while_down,
                  const std::string& tag) {
  TempDir dir(tag);
  DrillCluster cluster(protocol, dir.path, port_base);
  ASSERT_TRUE(cluster.ok());

  Script script;
  uint64_t expected = 0;
  auto run_phase = [&](const Phase& phase, int victim) {
    std::vector<Op> ops = script.Extend(phase);
    expected += ops.size();
    ASSERT_TRUE(cluster.RunPhase(ops, victim)) << "client calls failed";
  };

  run_phase(Phase{{1, 2, 3, 4}, 8}, /*victim=*/-1);
  ASSERT_TRUE(cluster.WaitAllApplied(expected));

  for (const fault::Scenario::CrashEvent& ev : pack.crashes) {
    ASSERT_TRUE(ev.restart) << "TCP drill packs must restart their victims";
    uint32_t victim = (kDrillSeed + ev.victim_rank) % kNodes;
    cluster.KillNode(victim);

    if (traffic_while_down) {
      run_phase(Phase{{1, 2}, 6}, static_cast<int>(victim));
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
    // Scaled-down real downtime (the sim pack's seconds become milliseconds).
    usleep(static_cast<useconds_t>(ev.down_for / 10000));

    ASSERT_TRUE(cluster.StartNode(victim, /*expect_recovery=*/true));
    // The restarted node must converge to everything committed so far: its
    // recovered state plus the catch-up stream for what it missed.
    ASSERT_TRUE(cluster.WaitApplied(victim, expected));
  }

  run_phase(Phase{{1, 2, 3, 4}, 6}, /*victim=*/-1);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  ASSERT_TRUE(cluster.WaitAllApplied(expected));

  cluster.StopAll();
  ShardState got = cluster.CollectState();
  ShardState ref = SimulatorReference(protocol, script.all());
  EXPECT_EQ(got.digests, ref.digests)
      << "TCP cluster with kill+restart diverged from fault-free simulator";
  EXPECT_EQ(got.counts, ref.counts);
}

const fault::Scenario& Pack(const std::string& name) {
  const fault::Scenario* s = fault::FindScenario(name);
  CHECK(s != nullptr);
  return *s;
}

TEST(RtRecoveryTest, KillOneReplicaAtlas) {
  RunPackDrill(Pack("kill_one_replica"), smr::Protocol::kAtlas, 47000,
               /*traffic_while_down=*/true, "kill_atlas");
}

TEST(RtRecoveryTest, KillOneReplicaEPaxos) {
  RunPackDrill(Pack("kill_one_replica"), smr::Protocol::kEPaxos, 47100,
               /*traffic_while_down=*/true, "kill_epaxos");
}

TEST(RtRecoveryTest, KillOneReplicaMencius) {
  RunPackDrill(Pack("kill_one_replica"), smr::Protocol::kMencius, 47200,
               /*traffic_while_down=*/false, "kill_mencius");
}

TEST(RtRecoveryTest, RollingRestartsAtlas) {
  RunPackDrill(Pack("rolling_restarts"), smr::Protocol::kAtlas, 47300,
               /*traffic_while_down=*/true, "rolling_atlas");
}

// ---------------------------------------------------------------------------
// Client reconnect-and-resubmit.

// A retrying client survives its serving node dying mid-stream: the node is
// killed after the client's third call and restarted from disk ~300ms later;
// every call completes (reconnect + resubmit), nothing gives up, and the
// cluster still converges. Puts only: a resubmitted command re-executes under
// a fresh dot on the restarted node (the durable idempotency cache dies with
// the incarnation), which is at-least-once — value-idempotent for kPut.
TEST(RtRecoveryTest, ClientReconnectsAndResubmitsAcrossNodeRestart) {
  TempDir dir("client_retry");
  DrillCluster cluster(smr::Protocol::kAtlas, dir.path, 47400);
  ASSERT_TRUE(cluster.ok());

  constexpr uint32_t kVictim = 2;
  constexpr uint64_t kOps = 10;
  std::atomic<uint64_t> completed{0};
  std::atomic<int> failures{0};

  std::thread client_thread([&]() {
    Client::Options copts;
    copts.max_retries = 300;  // ~30s of 100ms-backoff retries
    Client client("127.0.0.1", cluster.port(kVictim), copts);
    for (int i = 0; i < 250 && !client.connected(); i++) {
      if (!client.Connect()) {
        usleep(20 * 1000);
      }
    }
    if (!client.connected()) {
      failures.fetch_add(1);
      return;
    }
    std::string result;
    for (uint64_t seq = 1; seq <= kOps; seq++) {
      if (!client.Call(smr::MakePut(9, seq, "retry-k" + std::to_string(seq),
                                    "v" + std::to_string(seq)),
                       &result)) {
        failures.fetch_add(1);
        return;
      }
      completed.fetch_add(1);
    }
    if (client.gave_up() != 0) {
      failures.fetch_add(1);
    }
  });

  // Kill the serving node once the client is mid-stream, then bring it back.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (completed.load() < 3 && std::chrono::steady_clock::now() < deadline) {
    usleep(5 * 1000);
  }
  ASSERT_GE(completed.load(), 3u) << "client never got off the ground";
  cluster.KillNode(kVictim);
  usleep(300 * 1000);
  ASSERT_TRUE(cluster.StartNode(kVictim, /*expect_recovery=*/true));

  client_thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load(), kOps);

  // Everything drains (>= : a resubmission that raced the kill may legally
  // re-execute, see header comment) and the cluster converges.
  ASSERT_TRUE(cluster.WaitAllApplied(kOps));
  cluster.StopAll();
  ShardState st = cluster.CollectState();
  for (uint32_t s = 0; s < kPartitions; s++) {
    for (uint32_t p = 1; p < kNodes; p++) {
      EXPECT_EQ(st.digests[p * kPartitions + s], st.digests[s])
          << "node " << p << " diverged on shard " << s;
    }
  }
}

// A client whose server never comes back exhausts its retries and reports it,
// instead of hanging forever or pretending success.
TEST(RtRecoveryTest, ClientGivesUpAfterBoundedRetries) {
  Client::Options copts;
  copts.max_retries = 2;
  copts.retry_backoff = 10 * common::kMillisecond;
  // A port with (almost certainly) no listener.
  Client client("127.0.0.1", 47999, copts);
  std::string result;
  EXPECT_FALSE(client.Call(smr::MakePut(1, 1, "k", "v"), &result));
  EXPECT_EQ(client.gave_up(), 1u);
  EXPECT_FALSE(client.Call(smr::MakePut(1, 2, "k", "v"), &result));
  EXPECT_EQ(client.gave_up(), 2u);
}

}  // namespace
}  // namespace rt
