// Real-runtime tests: the Atlas engine over actual TCP sockets on localhost.
#include "src/rt/node.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <thread>

#include "src/core/atlas.h"
#include "src/kvs/kvs.h"

namespace rt {
namespace {

TEST(RtTest, ThreeNodeClusterServesClients) {
  const uint32_t n = 3;
  // Fixed port block chosen from the ephemeral range; retried on collision.
  for (int attempt = 0; attempt < 5; attempt++) {
    uint16_t base = static_cast<uint16_t>(42000 + attempt * 16 + (getpid() % 512));
    std::vector<PeerAddress> addrs;
    for (uint32_t i = 0; i < n; i++) {
      addrs.push_back(PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    std::vector<std::unique_ptr<atlas::AtlasEngine>> engines;
    std::vector<std::unique_ptr<kvs::KvStore>> stores;
    std::vector<std::unique_ptr<Node>> nodes;
    bool bind_ok = true;
    for (uint32_t i = 0; i < n; i++) {
      atlas::Config cfg;
      cfg.n = n;
      cfg.f = 1;
      engines.push_back(std::make_unique<atlas::AtlasEngine>(cfg));
      stores.push_back(std::make_unique<kvs::KvStore>());
      nodes.push_back(
          std::make_unique<Node>(i, addrs, engines[i].get(), stores[i].get()));
      if (!nodes.back()->Listen()) {
        bind_ok = false;
        break;
      }
    }
    if (!bind_ok) {
      continue;  // port collision; retry with the next block
    }
    std::vector<std::thread> threads;
    for (uint32_t i = 0; i < n; i++) {
      threads.emplace_back([&, i]() { nodes[i]->Run(); });
    }

    Client client("127.0.0.1", addrs[0].port);
    // The cluster needs a moment to mesh up; retry connection.
    bool connected = false;
    for (int i = 0; i < 100 && !connected; i++) {
      connected = client.Connect();
      if (!connected) {
        usleep(20 * 1000);
      }
    }
    ASSERT_TRUE(connected);

    std::string result;
    ASSERT_TRUE(client.Call(smr::MakePut(1, 1, "k", "hello"), &result));
    ASSERT_TRUE(client.Call(smr::MakeGet(1, 2, "k"), &result));
    EXPECT_EQ(result, "hello");
    ASSERT_TRUE(client.Call(smr::MakeRmw(1, 3, "k", "!"), &result));
    EXPECT_EQ(result, "hello");
    ASSERT_TRUE(client.Call(smr::MakeGet(1, 4, "k"), &result));
    EXPECT_EQ(result, "hello!");

    // A second client at another replica observes the same data (linearizable read
    // via SMR execution at that site).
    Client client2("127.0.0.1", addrs[1].port);
    ASSERT_TRUE(client2.Connect());
    ASSERT_TRUE(client2.Call(smr::MakeGet(2, 1, "k"), &result));
    EXPECT_EQ(result, "hello!");

    for (auto& node : nodes) {
      node->Stop();
    }
    for (auto& t : threads) {
      t.join();
    }
    // The replicas that served clients applied identical state.
    EXPECT_EQ(stores[0]->StateDigest(), stores[1]->StateDigest());
    return;  // success
  }
  FAIL() << "could not bind a port block after 5 attempts";
}

}  // namespace
}  // namespace rt
