// Real-runtime tests: a P=1 Atlas deployment over actual TCP sockets on localhost
// (framing and behavior must stay exactly as seeded; rt_sharded_test covers P>1).
#include "src/rt/node.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <thread>

#include "src/smr/deployment.h"

namespace rt {
namespace {

TEST(RtTest, ThreeNodeClusterServesClients) {
  const uint32_t n = 3;
  // Fixed port block chosen from the ephemeral range; retried on collision.
  for (int attempt = 0; attempt < 5; attempt++) {
    uint16_t base = static_cast<uint16_t>(42000 + attempt * 16 + (getpid() % 512));
    std::vector<PeerAddress> addrs;
    for (uint32_t i = 0; i < n; i++) {
      addrs.push_back(PeerAddress{"127.0.0.1", static_cast<uint16_t>(base + i)});
    }
    std::vector<std::unique_ptr<smr::Deployment>> replicas;
    std::vector<std::unique_ptr<Node>> nodes;
    bool bind_ok = true;
    for (uint32_t i = 0; i < n; i++) {
      smr::DeploymentOptions d;
      d.protocol = smr::Protocol::kAtlas;
      d.n = n;
      d.f = 1;
      replicas.push_back(std::make_unique<smr::Deployment>(std::move(d)));
      nodes.push_back(std::make_unique<Node>(i, addrs, replicas[i].get()));
      if (!nodes.back()->Listen()) {
        bind_ok = false;
        break;
      }
    }
    if (!bind_ok) {
      continue;  // port collision; retry with the next block
    }
    std::vector<std::thread> threads;
    for (uint32_t i = 0; i < n; i++) {
      threads.emplace_back([&, i]() { nodes[i]->Run(); });
    }

    Client client("127.0.0.1", addrs[0].port);
    // The cluster needs a moment to mesh up; retry connection.
    bool connected = false;
    for (int i = 0; i < 100 && !connected; i++) {
      connected = client.Connect();
      if (!connected) {
        usleep(20 * 1000);
      }
    }
    ASSERT_TRUE(connected);

    std::string result;
    ASSERT_TRUE(client.Call(smr::MakePut(1, 1, "k", "hello"), &result));
    ASSERT_TRUE(client.Call(smr::MakeGet(1, 2, "k"), &result));
    EXPECT_EQ(result, "hello");
    ASSERT_TRUE(client.Call(smr::MakeRmw(1, 3, "k", "!"), &result));
    EXPECT_EQ(result, "hello");
    ASSERT_TRUE(client.Call(smr::MakeGet(1, 4, "k"), &result));
    EXPECT_EQ(result, "hello!");

    // A second client at another replica observes the same data (linearizable read
    // via SMR execution at that site).
    Client client2("127.0.0.1", addrs[1].port);
    ASSERT_TRUE(client2.Connect());
    ASSERT_TRUE(client2.Call(smr::MakeGet(2, 1, "k"), &result));
    EXPECT_EQ(result, "hello!");

    // kBatch is an internal composite; a client injecting one (here with a
    // garbage payload that would fail the deployment's unpack CHECK) must be
    // rejected at the node, not crash the cluster.
    smr::Command bogus_batch;
    bogus_batch.client = 2;
    bogus_batch.seq = 2;
    bogus_batch.op = smr::Op::kBatch;
    bogus_batch.key = "k";
    ASSERT_TRUE(client2.Call(bogus_batch, &result));
    EXPECT_EQ(result, "<dropped>");
    ASSERT_TRUE(client2.Call(smr::MakeGet(2, 3, "k"), &result));
    EXPECT_EQ(result, "hello!");

    for (auto& node : nodes) {
      node->Stop();
    }
    for (auto& t : threads) {
      t.join();
    }
    // The replicas that served clients applied identical state.
    EXPECT_EQ(replicas[0]->store().StateDigest(), replicas[1]->store().StateDigest());
    return;  // success
  }
  FAIL() << "could not bind a port block after 5 attempts";
}

}  // namespace
}  // namespace rt
